// Command maxinfo inspects a MAXelerator configuration: the FSM
// schedule (Figs. 2–3), the §4.3 performance formulas, the Table 1
// resource model and device fit, and the RNG battery of the simulated
// label-generator entropy source (§5.2).
//
// Usage:
//
//	maxinfo -b 32              # schedule + performance + resources
//	maxinfo -b 16 -units 4     # multi-unit fit on the VCU108
//	maxinfo -rng               # run the NIST-style battery
//	maxinfo -trend             # perf trajectory across BENCH_PR*.json
package main

import (
	"flag"
	"fmt"
	"os"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/report"
	"maxelerator/internal/rng"
	"maxelerator/internal/sched"
)

func main() {
	width := flag.Int("b", 32, "operand bit-width")
	units := flag.Int("units", 1, "parallel MAC units")
	runRNG := flag.Bool("rng", false, "run the RNG statistical battery")
	rngBits := flag.Int("rngbits", 20000, "bit-stream length for the battery")
	trace := flag.Int("trace", 0, "run the cycle-level memory/PCIe trace for this many MACs")
	drain := flag.Int("drain", 4, "output-port drain rate in bytes/cycle for -trace")
	timeline := flag.Int("timeline", 0, "render the pipeline timeline for this many MACs")
	trend := flag.Bool("trend", false, "render the perf trajectory across committed BENCH_PR*.json grids")
	trendDir := flag.String("trend-dir", ".", "directory holding the BENCH_PR*.json grids")
	flag.Parse()

	if *trend {
		if err := trendReport(*trendDir); err != nil {
			fmt.Fprintln(os.Stderr, "maxinfo:", err)
			os.Exit(1)
		}
		return
	}
	if *timeline > 0 {
		out, err := report.Timeline(*width, *timeline, 100)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maxinfo:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		return
	}
	if *trace > 0 {
		if err := traceReport(*width, *trace, *drain); err != nil {
			fmt.Fprintln(os.Stderr, "maxinfo:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*width, *units, *runRNG, *rngBits); err != nil {
		fmt.Fprintln(os.Stderr, "maxinfo:", err)
		os.Exit(1)
	}
}

// traceReport runs the cycle-level trace: per-core production, memory
// occupancy and output-port stalls at the given drain rate.
func traceReport(width, macs, drain int) error {
	sim, err := maxsim.New(maxsim.Config{Width: width})
	if err != nil {
		return err
	}
	res, err := sim.Trace(maxsim.TraceConfig{MACs: macs, DrainBytesPerCycle: drain, MemoryBytesPerCore: 4096})
	if err != nil {
		return err
	}
	fmt.Printf("cycle-level trace: b=%d, %d MACs, drain %d B/cycle (sustainable: %d B/cycle)\n",
		width, macs, drain, sim.SustainableDrainBytesPerCycle())
	fmt.Printf("  cycles           : %d (busy %d, stalled %d — %.1f%%)\n",
		res.Cycles, res.BusyCycles, res.StallCycles, 100*res.StallFraction())
	fmt.Printf("  tables produced  : %d (%d B)\n", res.TablesProduced, res.BytesProduced)
	fmt.Printf("  peak memory      : %d B across %d core blocks\n", res.PeakOccupancyBytes, sim.Schedule().NumCores())
	t := report.NewTable("per-core production", "core", "segment", "tables")
	for i, c := range sim.Schedule().Cores {
		t.AddRow(fmt.Sprint(i), c.Segment.String(), fmt.Sprint(res.PerCoreTables[i]))
	}
	fmt.Println(t)
	return nil
}

func run(width, units int, runRNG bool, rngBits int) error {
	if runRNG {
		return rngReport(rngBits)
	}
	s, err := sched.Build(width)
	if err != nil {
		return err
	}
	fmt.Println(s.RenderTree())
	fmt.Println(s.RenderStageGrid())

	sim, err := maxsim.New(maxsim.Config{Width: width, MACUnits: units})
	if err != nil {
		return err
	}
	res, err := sim.Resources()
	if err != nil {
		return err
	}
	dev := sim.Config().Device
	maxUnits, err := dev.MaxMACUnits(width)
	if err != nil {
		return err
	}
	fmt.Printf("device: %s @ %.0f MHz\n", dev.Name, dev.MaxClockMHz)
	fmt.Printf("resources (%d unit(s)): %d LUT, %d LUTRAM, %d FF (%.1f%% of scarcest fabric resource)\n",
		units, res.LUT, res.LUTRAM, res.FlipFlop, 100*dev.Utilization(res))
	fmt.Printf("device fits at most %d MAC unit(s) at b=%d\n", maxUnits, width)
	fmt.Printf("throughput: %s MAC/s total, %s MAC/s per GC core, %s per MAC\n",
		report.Sci(sim.ThroughputMACsPerSec()), report.Sci(sim.ThroughputPerCoreMACsPerSec()), report.Dur(sim.TimePerMAC()))
	fmt.Printf("worst-case label entropy demand: %d bits/cycle (k=128)\n", s.WorstCaseRNGBitsPerCycle(128))
	return nil
}

func rngReport(bits int) error {
	r, err := rng.New(rng.Config{Seed: 1})
	if err != nil {
		return err
	}
	stream := r.Bits(bits)
	fmt.Printf("Wold–Tan RO RNG simulation: %d oscillators × %d inverters, %d sampled bits\n",
		rng.DefaultOscillators, rng.DefaultInverters, bits)
	t := report.NewTable("NIST-style battery (α = 0.01)", "test", "p-value", "pass", "detail")
	for _, res := range rng.Battery(stream) {
		t.AddRow(res.Name, fmt.Sprintf("%.4f", res.PValue), fmt.Sprint(res.Pass), res.Detail)
	}
	fmt.Println(t)
	return nil
}
