// Latency mode (-latency): measures what a client actually waits for
// per request — the online path of the Fig. 1 protocol — over a
// multiplexed in-memory session, and reports p50/p95/p99/mean. With
// -precompute the same workload runs twice, inline and against a warm
// precompute pool (refills happen off the clock, as the offline
// phase), so the offline/online split's win is visible in one
// invocation:
//
//	maxbench -latency -rows 16 -cols 16 -b 16 -requests 30 -precompute
//	maxbench -latency -precompute -json   # machine-readable
package main

import (
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/precompute"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

// latencyConfig gathers the -latency mode knobs.
type latencyConfig struct {
	rows, cols int
	width      int
	requests   int
	precompute bool
	pool       int
	jsonOut    bool
}

// latencyResult is one measured pass; all times in milliseconds so the
// JSON needs no unit parsing.
type latencyResult struct {
	Mode     string  `json:"mode"` // "inline" or "precomputed"
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// latencyReport is the full -latency artefact.
type latencyReport struct {
	Rows       int             `json:"rows"`
	Cols       int             `json:"cols"`
	Width      int             `json:"width"`
	Results    []latencyResult `json:"results"`
	SpeedupP50 float64         `json:"speedup_p50,omitempty"`
}

func runLatency(lc latencyConfig, w io.Writer) error {
	if lc.rows <= 0 || lc.cols <= 0 {
		return fmt.Errorf("latency: rows and cols must be positive (got %dx%d)", lc.rows, lc.cols)
	}
	if lc.requests <= 0 {
		return fmt.Errorf("latency: requests must be positive (got %d)", lc.requests)
	}

	rep := latencyReport{Rows: lc.rows, Cols: lc.cols, Width: lc.width}
	inline, err := measureLatency(lc, false)
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, inline)
	if lc.precompute {
		pre, err := measureLatency(lc, true)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, pre)
		if pre.P50Ms > 0 {
			rep.SpeedupP50 = inline.P50Ms / pre.P50Ms
		}
	}

	if lc.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "Online request latency, %d×%d matvec at b=%d (%d requests per pass)\n\n",
		lc.rows, lc.cols, lc.width, lc.requests)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "mode", "p50", "p95", "p99", "mean")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-12s %9.1fms %9.1fms %9.1fms %9.1fms\n",
			r.Mode, r.P50Ms, r.P95Ms, r.P99Ms, r.MeanMs)
	}
	if rep.SpeedupP50 > 0 {
		fmt.Fprintf(w, "\nwarm-pool speedup (p50): %.2f×\n", rep.SpeedupP50)
	}
	return nil
}

// measureLatency runs lc.requests matvec requests over one multiplexed
// session and clocks each request round trip. The connection handshake
// and OT setup are paid once, outside the clocked region, in both
// passes; in the precomputed pass each request is preceded by an
// unclocked Prefill — that garbling is exactly the work the offline
// phase moves off the request path.
func measureLatency(lc latencyConfig, warm bool) (latencyResult, error) {
	res := latencyResult{Mode: "inline", Requests: lc.requests}
	if warm {
		res.Mode = "precomputed"
	}
	cfg := maxsim.Config{Width: lc.width, AccWidth: 2 * lc.width, Signed: true}
	A := make([][]int64, lc.rows)
	y := make([]int64, lc.cols)
	for i := range A {
		A[i] = make([]int64, lc.cols)
		for j := range A[i] {
			A[i][j] = int64((i*31+j*17)%200 - 100)
		}
	}
	for j := range y {
		y[j] = int64(j%16 - 8)
	}
	req := protocol.Request{Matrix: A, OT: protocol.OTBatched}
	shape := precompute.Shape{Rows: lc.rows, Cols: lc.cols, Width: lc.width,
		Signed: true, Mode: "matvec", OT: protocol.OTBatched.String()}

	srv, err := protocol.NewServer(cfg)
	if err != nil {
		return res, err
	}
	var eng *precompute.Engine
	if warm {
		eng, err = precompute.New(precompute.Config{Sim: cfg, PoolSize: lc.pool})
		if err != nil {
			return res, err
		}
		defer eng.Stop()
		srv.WithPrecompute(eng)
	}
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		return res, err
	}

	ca, cb := wire.Pipe()
	defer ca.Close()
	defer cb.Close()
	srvDone := make(chan error, 1)
	go func() {
		sess, err := srv.NewSession(ca, protocol.SessionConfig{})
		if err != nil {
			srvDone <- err
			return
		}
		defer sess.Close()
		for {
			if _, err := sess.Serve(req); err != nil {
				if errors.Is(err, protocol.ErrSessionEnded) {
					err = nil
				}
				srvDone <- err
				return
			}
		}
	}()
	cs, err := cli.Dial(cb)
	if err != nil {
		return res, err
	}

	samples := make([]time.Duration, 0, lc.requests)
	for i := 0; i < lc.requests; i++ {
		if eng != nil {
			if err := eng.Prefill(shape, 1); err != nil {
				return res, err
			}
		}
		start := time.Now()
		if _, err := cs.Do(y); err != nil {
			return res, err
		}
		samples = append(samples, time.Since(start))
	}
	if err := cs.Close(); err != nil {
		return res, err
	}
	if err := <-srvDone; err != nil {
		return res, err
	}

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	res.P50Ms = ms(percentile(samples, 50))
	res.P95Ms = ms(percentile(samples, 95))
	res.P99Ms = ms(percentile(samples, 99))
	res.MeanMs = ms(sum / time.Duration(len(samples)))
	return res, nil
}

// percentile reads the nearest-rank percentile from sorted samples.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
