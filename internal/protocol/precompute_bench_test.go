package protocol

// BenchmarkOnlinePath measures the offline/online split's headline win
// (ISSUE 5 acceptance): the per-request latency of a 16×16 matvec at
// 16-bit over a multiplexed session, served from a warm precompute pool
// (OT extension, table streaming and decode only) against the same
// request garbled inline on the request path. The connection handshake
// and base-OT setup are amortized once per connection in both runs —
// exactly how a warm server takes traffic — so the clock isolates what
// a client actually waits for per request. Pool refills run under
// StopTimer: they are the offline phase.
//
// CI runs this once (-benchtime=1x) under -race as a smoke test that
// the online path stays alive.

import (
	"crypto/rand"
	"errors"
	"testing"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/precompute"
	"maxelerator/internal/wire"
)

func BenchmarkOnlinePath(b *testing.B) {
	const n = 16
	cfg := maxsim.Config{Width: 16, AccWidth: 48, Signed: true}
	A := make([][]int64, n)
	y := make([]int64, n)
	for i := range A {
		A[i] = make([]int64, n)
		y[i] = int64(i%16 - 8)
		for j := range A[i] {
			A[i][j] = int64((i*31+j*17)%200 - 100)
		}
	}
	req := Request{Matrix: A, OT: OTBatched}
	shape := precompute.Shape{Rows: n, Cols: n, Width: 16, Signed: true, Mode: "matvec", OT: OTBatched.String()}

	run := func(b *testing.B, eng *precompute.Engine) {
		b.Helper()
		srv, err := NewServer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if eng != nil {
			srv.WithPrecompute(eng)
		}
		cli, err := NewClient(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		ca, cb := wire.Pipe()
		defer ca.Close()
		defer cb.Close()
		srvDone := make(chan error, 1)
		go func() {
			sess, err := srv.NewSession(ca, SessionConfig{})
			if err != nil {
				srvDone <- err
				return
			}
			defer sess.Close()
			for {
				if _, err := sess.Serve(req); err != nil {
					if errors.Is(err, ErrSessionEnded) {
						err = nil
					}
					srvDone <- err
					return
				}
			}
		}()
		cs, err := cli.Dial(cb)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if eng != nil {
				b.StopTimer()
				if err := eng.Prefill(shape, 1); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			if _, err := cs.Do(y); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := cs.Close(); err != nil {
			b.Fatal(err)
		}
		if err := <-srvDone; err != nil {
			b.Fatal(err)
		}
	}

	b.Run("precomputed", func(b *testing.B) {
		eng, err := precompute.New(precompute.Config{Sim: cfg, PoolSize: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Stop()
		run(b, eng)
	})

	b.Run("inline", func(b *testing.B) {
		run(b, nil)
	})
}
