package load

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"maxelerator/internal/obs"
)

// FetchSnapshot pulls the machine-readable metrics snapshot from a
// live daemon's /histz endpoint. base is the observability base URL
// ("http://host:port"); a trailing slash or an explicit /histz path
// are both accepted.
func FetchSnapshot(base string) (*obs.Snapshot, error) {
	url := strings.TrimSuffix(base, "/")
	if !strings.HasSuffix(url, "/histz") {
		url += "/histz"
	}
	cli := &http.Client{Timeout: 5 * time.Second}
	resp, err := cli.Get(url)
	if err != nil {
		return nil, fmt.Errorf("load: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: scraping %s: status %s", url, resp.Status)
	}
	snap, err := obs.DecodeSnapshot(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("load: decoding %s: %w", url, err)
	}
	return snap, nil
}

// PoolFromSnapshot reads the cumulative precompute pool counters out
// of a snapshot. A target without a precompute engine reports zeros,
// which NewPoolStats renders as a zero hit-rate.
func PoolFromSnapshot(snap *obs.Snapshot) *PoolStats {
	if snap == nil {
		return nil
	}
	return NewPoolStats(
		snap.CounterSum("precompute_hits_total", nil),
		snap.CounterSum("precompute_misses_total", nil),
	)
}
