package maxsim

import (
	"testing"

	"maxelerator/internal/label"
)

func TestLabelGeneratorValidation(t *testing.T) {
	for _, w := range []int{0, 2, 3, 7} {
		if _, err := NewLabelGenerator(w, 1); err == nil {
			t.Fatalf("width %d accepted", w)
		}
	}
}

func TestLabelGeneratorCapacity(t *testing.T) {
	g, err := NewLabelGenerator(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	// §5.2 worst case: k·(b/2) = 128·16 bits per cycle.
	if got := g.CapacityBitsPerCycle(); got != 128*16 {
		t.Fatalf("capacity = %d bits/cycle", got)
	}
}

func TestDrawLabelsDistinctAndCounted(t *testing.T) {
	g, err := NewLabelGenerator(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := g.DrawLabels(64)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[label.Label]bool)
	for _, l := range ls {
		if seen[l] {
			t.Fatal("duplicate label from oscillator array")
		}
		seen[l] = true
	}
	if st := g.Stats(); st.BitsDrawn != 64*label.Bits {
		t.Fatalf("bits drawn = %d", st.BitsDrawn)
	}
}

func TestGatingStatistics(t *testing.T) {
	g, err := NewLabelGenerator(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Draw 10 labels over 100 cycles: demand far below the 4-lane
	// worst case, so most capacity is gated off.
	if _, err := g.DrawLabels(10); err != nil {
		t.Fatal(err)
	}
	g.AccountCycles(100)
	st := g.Stats()
	if st.CapacityBits != 128*4*100 {
		t.Fatalf("capacity bits = %d", st.CapacityBits)
	}
	if st.GatedFraction <= 0.9 || st.GatedFraction >= 1 {
		t.Fatalf("gated fraction = %v, want most capacity gated", st.GatedFraction)
	}
	if st.ActiveRNGsAverage <= 0 || st.ActiveRNGsAverage >= 4 {
		t.Fatalf("active lanes = %v", st.ActiveRNGsAverage)
	}
}

func TestGatingSaturatesAtFullDemand(t *testing.T) {
	g, err := NewLabelGenerator(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Draw more than capacity for 1 cycle: gating clamps at 0.
	if _, err := g.DrawLabels(8); err != nil {
		t.Fatal(err)
	}
	g.AccountCycles(1)
	if st := g.Stats(); st.GatedFraction != 0 {
		t.Fatalf("over-demand gated fraction = %v, want 0", st.GatedFraction)
	}
}

func TestZeroCyclesSafe(t *testing.T) {
	g, err := NewLabelGenerator(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.GatedFraction != 0 || st.CapacityBits != 0 {
		t.Fatalf("zero-cycle stats = %+v", st)
	}
}

func TestLabelGeneratorSelfTest(t *testing.T) {
	g, err := NewLabelGenerator(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range g.SelfTest(20000) {
		if !res.Pass {
			t.Errorf("label generator failed %s: p=%v", res.Name, res.PValue)
		}
	}
}
