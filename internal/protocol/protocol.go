// Package protocol runs the paper's system configuration (Fig. 1, §3)
// between two real endpoints: the cloud server — host CPU plus
// MAXelerator, acting as the garbler — and the client, acting as the
// evaluator. The accelerator simulator produces the garbled tables and
// input labels; the host streams them to the client over a wire.Conn
// (in-memory pipe or TCP); the client obtains its input labels through
// IKNP oblivious transfer and evaluates round by round, exactly the
// sequential-GC flow that lets memory-constrained clients hold only
// one round of labels at a time.
//
// The threat model is honest-but-curious, matching the paper.
package protocol

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/ot"
	"maxelerator/internal/seqgc"
	"maxelerator/internal/wire"
)

// hello is the handshake the server opens every session with: the
// client needs the netlist parameters to rebuild the MAC circuit and
// the shape of the computation.
type hello struct {
	// Width, AccWidth and Signed mirror the accelerator configuration.
	Width, AccWidth int
	Signed          bool
	// Scheme names the AND-garbling scheme.
	Scheme string
	// Rows and Cols describe the server matrix: Rows dot products of
	// length Cols. A plain dot product has Rows == 1.
	Rows, Cols int
	// BatchedOT selects the §3 tradeoff: true transfers the labels of
	// every round in one OT-extension batch ("send all the inputs at
	// once through OT extension"), false runs OT round by round so a
	// memory-constrained evaluator stores only one round of labels.
	BatchedOT bool
	// CorrelatedOT halves the label-transfer traffic by letting the OT
	// choose the FALSE labels (free-XOR pairs differ by Δ, so one
	// correction ciphertext per wire suffices).
	CorrelatedOT bool
}

// result is the client's final report back to the server (the paper's
// output-sharing step: "Alice and Bob share their output maps to
// learn the output z").
type result struct {
	Values []int64
}

func sendGob(conn wire.Conn, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("protocol: encoding %T: %w", v, err)
	}
	return conn.SendMsg(buf.Bytes())
}

func recvGob(conn wire.Conn, v any) error {
	msg, err := conn.RecvMsg()
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(msg)).Decode(v); err != nil {
		return fmt.Errorf("protocol: decoding %T: %w", v, err)
	}
	return nil
}

// sendMaterial ships garbled material in the explicit binary wire
// format of gc.MarshalMaterial (language-agnostic, unlike gob).
func sendMaterial(conn wire.Conn, m *gc.Material) error {
	enc, err := gc.MarshalMaterial(m)
	if err != nil {
		return err
	}
	return conn.SendMsg(enc)
}

func recvMaterial(conn wire.Conn) (*gc.Material, error) {
	msg, err := conn.RecvMsg()
	if err != nil {
		return nil, err
	}
	return gc.UnmarshalMaterial(msg)
}

func schemeByName(name string) (gc.Scheme, error) {
	switch name {
	case "half-gates":
		return gc.HalfGates{}, nil
	case "grr3":
		return gc.GRR3{}, nil
	case "four-row":
		return gc.FourRow{}, nil
	default:
		return nil, fmt.Errorf("protocol: unknown garbling scheme %q", name)
	}
}

// Server is the garbler endpoint: it owns the accelerator
// configuration and the model data. Serve methods may be called from
// concurrent goroutines — each session instantiates its own simulator
// with a fresh free-XOR offset, as the paper requires ("new labels are
// required for every garbling operation to ensure security").
type Server struct {
	cfg maxsim.Config
	obs *obs.Obs
}

// NewServer builds a server around an accelerator configuration.
func NewServer(cfg maxsim.Config) (*Server, error) {
	// Validate eagerly so misconfiguration surfaces at startup, not on
	// the first client.
	if _, err := maxsim.New(cfg); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg}, nil
}

// WithObs attaches an observability hub: every session is counted,
// phase-traced (handshake → ot_setup → rounds → decode) and timed, and
// the per-session simulators record their hardware accounting into the
// hub's registry. Call before serving; returns s for chaining.
func (s *Server) WithObs(o *obs.Obs) *Server {
	s.obs = o
	s.cfg.Metrics = o.Metrics()
	return s
}

// maxRowSpans bounds the per-row garbling spans retained in one
// session trace; larger matrices keep only the aggregate rounds span.
const maxRowSpans = 64

// session is the per-session observability state shared by the matvec,
// correlated and serial serving paths. Every field is nil-safe, so the
// uninstrumented server pays only a few nil checks.
type session struct {
	tr     *obs.SessionTrace
	reg    *obs.Registry
	active *obs.Gauge
	start  time.Time
	kind   string
}

func (s *Server) beginSession(kind string, conn wire.Conn, tr *obs.SessionTrace) *session {
	reg := s.obs.Metrics()
	if tr == nil {
		tr = s.obs.Traces().StartSession(kind, wire.PeerAddr(conn))
	}
	reg.Counter("sessions_total", "protocol sessions accepted", obs.L("kind", kind)).Inc()
	active := reg.Gauge("sessions_active", "protocol sessions currently in flight")
	active.Add(1)
	return &session{tr: tr, reg: reg, active: active, start: time.Now(), kind: kind}
}

// finish closes the session against the (named-return) error pointer.
func (ss *session) finish(errp *error) {
	ss.active.Add(-1)
	err := *errp
	ss.tr.Finish(err)
	ss.reg.Histogram("session_seconds", "end-to-end session duration", nil,
		obs.L("kind", ss.kind)).Observe(time.Since(ss.start).Seconds())
	if err != nil {
		ss.reg.Counter("session_errors_total", "sessions that ended in error",
			obs.L("kind", ss.kind)).Inc()
	}
}

// observeOTSetup times the base-OT + IKNP extension setup.
func (ss *session) observeOTSetup(d time.Duration) {
	ss.reg.Histogram("ot_setup_seconds", "base-OT plus IKNP extension setup time", nil).
		Observe(d.Seconds())
}

// Stats of the last served computation.
type Stats = maxsim.Stats

// Options refine a served session.
type Options struct {
	// BatchedOT transfers every round's labels in one OT-extension
	// batch instead of one batch per round. Fewer round trips, but the
	// client must hold all labels at once (§3).
	BatchedOT bool
	// CorrelatedOT uses correlated OT for the label transfers: one
	// ciphertext per input wire instead of two. Mutually exclusive
	// with BatchedOT in this implementation.
	CorrelatedOT bool
	// Trace, when non-nil, is a caller-opened session trace the
	// protocol annotates with its phase spans instead of opening its
	// own — this is how the daemon correlates its structured session
	// logs with /debug/sessions entries.
	Trace *obs.SessionTrace
}

// ServeDotProduct runs one dot-product session over conn with the
// server-held vector x. It returns the client-reported result and the
// accelerator statistics.
func (s *Server) ServeDotProduct(conn wire.Conn, x []int64) (int64, Stats, error) {
	out, st, err := s.serve(conn, [][]int64{x}, Options{})
	if err != nil {
		return 0, Stats{}, err
	}
	return out[0], st, nil
}

// ServeMatVec runs a matrix-vector session: each row of A is one
// sequential MAC chain over the client's vector.
func (s *Server) ServeMatVec(conn wire.Conn, A [][]int64) ([]int64, Stats, error) {
	return s.serve(conn, A, Options{})
}

// ServeMatVecOpts is ServeMatVec with explicit options.
func (s *Server) ServeMatVecOpts(conn wire.Conn, A [][]int64, opts Options) ([]int64, Stats, error) {
	return s.serve(conn, A, opts)
}

func (s *Server) serve(conn wire.Conn, A [][]int64, opts Options) (out []int64, st Stats, err error) {
	ss := s.beginSession("matvec", conn, opts.Trace)
	defer ss.finish(&err)

	sim, err := maxsim.New(s.cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	if len(A) == 0 || len(A[0]) == 0 {
		return nil, Stats{}, fmt.Errorf("protocol: empty server matrix")
	}
	cols := len(A[0])
	for i, row := range A {
		if len(row) != cols {
			return nil, Stats{}, fmt.Errorf("protocol: row %d has %d columns, want %d", i, len(row), cols)
		}
	}
	if opts.BatchedOT && opts.CorrelatedOT {
		return nil, Stats{}, fmt.Errorf("protocol: batched and correlated OT are mutually exclusive")
	}
	cfg := sim.Config()
	ss.tr.SetAttr("rows", fmt.Sprint(len(A)))
	ss.tr.SetAttr("cols", fmt.Sprint(cols))
	ss.tr.SetAttr("scheme", cfg.Params.Scheme.Name())
	h := hello{
		Width: cfg.Width, AccWidth: cfg.AccWidth, Signed: cfg.Signed,
		Scheme: cfg.Params.Scheme.Name(),
		Rows:   len(A), Cols: cols,
		BatchedOT:    opts.BatchedOT,
		CorrelatedOT: opts.CorrelatedOT,
	}
	hs := ss.tr.StartSpan("handshake")
	err = sendGob(conn, h)
	hs.End()
	if err != nil {
		return nil, Stats{}, err
	}

	// OT session setup: the garbler is the extension sender.
	otSpan := ss.tr.StartSpan("ot_setup")
	sender, err := ot.NewExtensionSender(conn, cfg.Rand)
	ss.observeOTSetup(otSpan.End())
	if err != nil {
		return nil, Stats{}, err
	}
	if opts.CorrelatedOT {
		return s.serveCorrelated(conn, sim, A, sender, ss)
	}

	rounds := ss.tr.StartSpan("rounds")
	var agg Stats
	var allPairs []label.Pair // batched mode: every round's pairs, in order
	runs := make([]*maxsim.DotProductRun, 0, len(A))
	for i, row := range A {
		var rowSpan *obs.Span
		if i < maxRowSpans {
			rowSpan = ss.tr.StartSpan(fmt.Sprintf("round_garble[%d]", i))
		}
		run, err := sim.GarbleDotProduct(row)
		if err != nil {
			rounds.End()
			return nil, Stats{}, err
		}
		runs = append(runs, run)
		agg.MACs += run.Stats.MACs
		agg.Cycles += run.Stats.Cycles
		agg.Stages += run.Stats.Stages
		agg.TablesGarbled += run.Stats.TablesGarbled
		agg.TablesScheduled += run.Stats.TablesScheduled
		agg.TableBytes += run.Stats.TableBytes
		agg.IdleSlots += run.Stats.IdleSlots
		agg.RNGBitsDrawn += run.Stats.RNGBitsDrawn
		agg.ModeledTime += run.Stats.ModeledTime
		agg.PCIeTime += run.Stats.PCIeTime
		if opts.BatchedOT {
			for _, gb := range run.Rounds {
				allPairs = append(allPairs, gb.EvalPairs...)
			}
			rowSpan.End()
			continue
		}
		for _, gb := range run.Rounds {
			if err := sendMaterial(conn, &gb.Material); err != nil {
				rounds.End()
				return nil, Stats{}, err
			}
			if err := ot.SendLabels(sender, gb.EvalPairs); err != nil {
				rounds.End()
				return nil, Stats{}, err
			}
		}
		rowSpan.End()
	}
	if opts.BatchedOT {
		if err := ot.SendLabels(sender, allPairs); err != nil {
			rounds.End()
			return nil, Stats{}, err
		}
		for _, run := range runs {
			for _, gb := range run.Rounds {
				if err := sendMaterial(conn, &gb.Material); err != nil {
					rounds.End()
					return nil, Stats{}, err
				}
			}
		}
	}
	rounds.End()
	ss.tr.SetAttr("macs", fmt.Sprint(agg.MACs))
	ss.tr.SetAttr("table_bytes", fmt.Sprint(agg.TableBytes))

	decode := ss.tr.StartSpan("decode")
	defer decode.End()
	var res result
	if err := recvGob(conn, &res); err != nil {
		return nil, Stats{}, fmt.Errorf("protocol: reading client result: %w", err)
	}
	if len(res.Values) != len(A) {
		return nil, Stats{}, fmt.Errorf("protocol: client reported %d values, want %d", len(res.Values), len(A))
	}
	return res.Values, agg, nil
}

// serveCorrelated is the correlated-OT session flow: each round, the
// OT fixes the evaluator-input FALSE labels first, then the round is
// garbled around them and the material streamed. A dedicated
// sequential-GC session (fresh Δ) drives the garbling so the OT
// corrections and the circuit share one offset.
func (s *Server) serveCorrelated(conn wire.Conn, sim *maxsim.Simulator, A [][]int64, sender *ot.ExtensionSender, ss *session) ([]int64, Stats, error) {
	cfg := sim.Config()
	gs, err := seqgc.NewGarblerSession(cfg.Params, cfg.Rand, sim.Circuit())
	if err != nil {
		return nil, Stats{}, err
	}
	rounds := ss.tr.StartSpan("rounds")
	var agg Stats
	for i, row := range A {
		var rowSpan *obs.Span
		if i < maxRowSpans {
			rowSpan = ss.tr.StartSpan(fmt.Sprintf("round_garble[%d]", i))
		}
		gs.Reset()
		for _, xi := range row {
			if err := checkRange(xi, cfg.Width, cfg.Signed); err != nil {
				return nil, Stats{}, fmt.Errorf("protocol: %w", err)
			}
			labels, err := sender.SendCorrelatedLabels(cfg.Width, gs.Delta())
			if err != nil {
				return nil, Stats{}, err
			}
			gb, err := gs.NextRoundWithEvalLabels(circuit.Int64ToBits(xi, cfg.Width), labels)
			if err != nil {
				return nil, Stats{}, err
			}
			if err := sendMaterial(conn, &gb.Material); err != nil {
				return nil, Stats{}, err
			}
			agg.MACs++
			agg.TablesGarbled += uint64(len(gb.Material.Tables))
			agg.TableBytes += uint64(gb.Material.CiphertextBytes())
		}
		rowSpan.End()
	}
	rounds.End()
	// Timing follows the same schedule model as the plain path.
	mm, err := sim.MatMulStats(len(A), len(A[0]), 1)
	if err != nil {
		return nil, Stats{}, err
	}
	agg.Cycles = mm.Cycles
	agg.Stages = mm.Stages
	agg.TablesScheduled = mm.TablesScheduled
	agg.IdleSlots = mm.IdleSlots
	agg.CoreUtilization = mm.CoreUtilization
	agg.ModeledTime = mm.ModeledTime
	agg.PCIeTime = cfg.PCIe.TransferTime(int(agg.TableBytes))
	// This path assembles its Stats by hand, so it publishes them to
	// the registry explicitly (GarbleDotProduct is never called).
	sim.RecordStats(&agg)
	ss.tr.SetAttr("macs", fmt.Sprint(agg.MACs))

	decode := ss.tr.StartSpan("decode")
	defer decode.End()
	var res result
	if err := recvGob(conn, &res); err != nil {
		return nil, Stats{}, fmt.Errorf("protocol: reading client result: %w", err)
	}
	if len(res.Values) != len(A) {
		return nil, Stats{}, fmt.Errorf("protocol: client reported %d values, want %d", len(res.Values), len(A))
	}
	return res.Values, agg, nil
}

// Client is the evaluator endpoint.
type Client struct {
	// Rand supplies OT randomness; nil means crypto/rand via the
	// underlying layers' defaults is NOT applied here, so it must be
	// set by NewClient.
	rnd randReader
}

type randReader interface{ Read([]byte) (int, error) }

// NewClient builds a client drawing OT randomness from rnd (pass
// crypto/rand.Reader in production).
func NewClient(rnd randReader) (*Client, error) {
	if rnd == nil {
		return nil, fmt.Errorf("protocol: nil random source")
	}
	return &Client{rnd: rnd}, nil
}

// Run executes the evaluator side with the client vector y and returns
// the decoded outputs (one per server matrix row).
func (c *Client) Run(conn wire.Conn, y []int64) ([]int64, error) {
	var h hello
	if err := recvGob(conn, &h); err != nil {
		return nil, fmt.Errorf("protocol: reading handshake: %w", err)
	}
	if h.Cols != len(y) {
		return nil, fmt.Errorf("protocol: server expects a %d-element vector, client holds %d", h.Cols, len(y))
	}
	scheme, err := schemeByName(h.Scheme)
	if err != nil {
		return nil, err
	}
	params := gc.DefaultParams()
	params.Scheme = scheme
	ckt, err := circuit.MAC(circuit.MACConfig{Width: h.Width, AccWidth: h.AccWidth, Signed: h.Signed})
	if err != nil {
		return nil, fmt.Errorf("protocol: rebuilding MAC netlist: %w", err)
	}

	receiver, err := ot.NewExtensionReceiver(conn, c.rnd)
	if err != nil {
		return nil, err
	}

	// Pre-encode the choice bits per round.
	bitsPerRound := make([][]bool, len(y))
	for i, v := range y {
		if err := checkRange(v, h.Width, h.Signed); err != nil {
			return nil, fmt.Errorf("protocol: element %d: %w", i, err)
		}
		bitsPerRound[i] = circuit.Int64ToBits(v, h.Width)
	}

	// Batched mode: obtain every round's labels in one OT batch before
	// any material arrives — faster, but the client holds
	// Rows·Cols·Width labels at once (§3's memory tradeoff).
	var batched []label.Label
	if h.BatchedOT {
		choices := make([]bool, 0, h.Rows*h.Cols*h.Width)
		for row := 0; row < h.Rows; row++ {
			for round := 0; round < h.Cols; round++ {
				choices = append(choices, bitsPerRound[round]...)
			}
		}
		batched, err = ot.ReceiveLabels(receiver, choices)
		if err != nil {
			return nil, fmt.Errorf("protocol: batched OT: %w", err)
		}
	}

	outs := make([]int64, h.Rows)
	for row := 0; row < h.Rows; row++ {
		var stateAct []label.Label
		var last *gc.EvalResult
		for round := 0; round < h.Cols; round++ {
			var active []label.Label
			if h.CorrelatedOT {
				// Correlated mode fixes the labels before the round is
				// garbled, so the OT precedes the material.
				active, err = receiver.ReceiveCorrelatedLabels(bitsPerRound[round])
				if err != nil {
					return nil, fmt.Errorf("protocol: row %d round %d correlated OT: %w", row, round, err)
				}
			}
			m, err := recvMaterial(conn)
			if err != nil {
				return nil, fmt.Errorf("protocol: row %d round %d material: %w", row, round, err)
			}
			switch {
			case h.CorrelatedOT:
				// labels already in hand
			case h.BatchedOT:
				off := (row*h.Cols + round) * h.Width
				active = batched[off : off+h.Width]
			default:
				active, err = ot.ReceiveLabels(receiver, bitsPerRound[round])
				if err != nil {
					return nil, fmt.Errorf("protocol: row %d round %d OT: %w", row, round, err)
				}
			}
			res, err := gc.Evaluate(params, ckt, m, active, stateAct)
			if err != nil {
				return nil, fmt.Errorf("protocol: row %d round %d evaluate: %w", row, round, err)
			}
			stateAct = res.StateActive
			last = res
		}
		if h.Signed {
			outs[row] = circuit.BitsToInt64(last.Outputs)
		} else {
			outs[row] = int64(circuit.BitsToUint64(last.Outputs))
		}
	}
	if err := sendGob(conn, result{Values: outs}); err != nil {
		return nil, err
	}
	return outs, nil
}

func checkRange(v int64, width int, signed bool) error {
	if signed {
		lo, hi := -(int64(1) << (width - 1)), int64(1)<<(width-1)-1
		if v < lo || v > hi {
			return fmt.Errorf("value %d outside signed %d-bit range", v, width)
		}
		return nil
	}
	if v < 0 || v >= int64(1)<<width {
		return fmt.Errorf("value %d outside unsigned %d-bit range", v, width)
	}
	return nil
}
