package load

import "sort"

// Percentiles summarizes a latency sample set in milliseconds, using
// the same nearest-rank convention as cmd/maxbench so numbers are
// comparable across the toolchain.
type Percentiles struct {
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
	// Samples is the population size the percentiles were cut from.
	Samples int `json:"samples"`
}

// Summarize reduces latency samples (seconds) to Percentiles. Empty
// input yields the zero value.
func Summarize(seconds []float64) Percentiles {
	if len(seconds) == 0 {
		return Percentiles{}
	}
	s := append([]float64(nil), seconds...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	ms := func(v float64) float64 { return v * 1000 }
	return Percentiles{
		P50Ms:   ms(nearestRank(s, 50)),
		P90Ms:   ms(nearestRank(s, 90)),
		P95Ms:   ms(nearestRank(s, 95)),
		P99Ms:   ms(nearestRank(s, 99)),
		MeanMs:  ms(sum / float64(len(s))),
		MaxMs:   ms(s[len(s)-1]),
		Samples: len(s),
	}
}

// nearestRank picks the p-th percentile from sorted samples with
// maxbench's rounding: idx = (p·n + 99) / 100, clamped into [1, n].
func nearestRank(sorted []float64, p int) float64 {
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// PoolStats is the precompute warm-pool outcome of a run.
type PoolStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// HitRate is Hits / (Hits + Misses); 0 when the pool saw no
	// traffic.
	HitRate float64 `json:"hit_rate"`
}

// NewPoolStats derives the rate from the counters.
func NewPoolStats(hits, misses uint64) *PoolStats {
	ps := &PoolStats{Hits: hits, Misses: misses}
	if t := hits + misses; t > 0 {
		ps.HitRate = float64(hits) / float64(t)
	}
	return ps
}

// Report is the outcome of one load run — the shared shape of the live
// generator's measurement and (embedded in capmodel.Result) the
// simulator's prediction.
type Report struct {
	// Target is the dialed address ("" for a simulated run).
	Target string `json:"target,omitempty"`
	// Scenario echoes the driving scenario.
	Scenario Scenario `json:"scenario"`

	// Offered counts scheduled arrivals; OfferedRate is
	// Offered/DurationSec.
	Offered     int     `json:"offered"`
	OfferedRate float64 `json:"offered_rate"`
	// Started counts sessions actually launched (arrivals minus
	// Skipped).
	Started int `json:"started"`
	// Skipped counts arrivals dropped at the client-side MaxInflight
	// cap — open-loop pressure the fleet never saw.
	Skipped int `json:"skipped"`
	// Succeeded, Shed, Failed partition the started sessions: clean
	// result, BUSY rejection, hard error.
	Succeeded int `json:"succeeded"`
	Shed      int `json:"shed"`
	Failed    int `json:"failed"`
	// AchievedRate is Succeeded/DurationSec — the rate the fleet
	// actually sustained against the offered load.
	AchievedRate float64 `json:"achieved_rate"`

	// Latency summarizes successful sessions, arrival to result.
	Latency Percentiles `json:"latency"`
	// Pool is the warm-pool outcome when the target's metrics surface
	// was readable (or the simulator's pool model); nil otherwise.
	Pool *PoolStats `json:"pool,omitempty"`
}

// Finalize fills the derived fields from the raw counters.
func (r *Report) Finalize(latencySeconds []float64) {
	r.Latency = Summarize(latencySeconds)
	if r.Scenario.DurationSec > 0 {
		r.OfferedRate = float64(r.Offered) / r.Scenario.DurationSec
		// AchievedRate is normalized by the scenario window, not the
		// wall clock, so live and simulated runs divide by the same
		// denominator.
		r.AchievedRate = float64(r.Succeeded) / r.Scenario.DurationSec
	}
}
