// Grid mode (-grid): the canonical benchmark sweep — OT mode × matrix
// shape × bit-width × precompute on/off — emitted in the versioned
// internal/benchgrid schema. Compare mode (-compare old.json new.json)
// diffs two grid artifacts under explicit tolerances and exits
// non-zero on any regression; together they make the repository's perf
// trajectory a committed, gated artifact (BENCH_PR<k>.json at the repo
// root, the bench-gate CI job):
//
//	maxbench -grid -json > BENCH_PR6.json
//	maxbench -grid -json -grid-sizes 4x4 -grid-widths 8   # reduced CI grid
//	maxbench -compare BENCH_PR6.json new.json
//	maxbench -compare -tol-latency 3 -tol-throughput -1 base.json new.json
package main

import (
	"fmt"
	"strconv"
	"strings"

	"maxelerator/internal/benchgrid"
	"maxelerator/internal/protocol"
)

// gridConfig fixes one sweep.
type gridConfig struct {
	ots      []protocol.OTMode
	sizes    [][2]int // rows, cols
	widths   []int
	requests int
	// pool is unused by prefillAll passes but kept so a future partial
	// warm sweep can thread it through.
}

// parseOTModes parses a comma-separated OT mode list ("per-round,batched").
func parseOTModes(csv string) ([]protocol.OTMode, error) {
	var out []protocol.OTMode
	for _, name := range strings.Split(csv, ",") {
		switch strings.TrimSpace(name) {
		case "per-round":
			out = append(out, protocol.OTPerRound)
		case "batched":
			out = append(out, protocol.OTBatched)
		case "correlated":
			out = append(out, protocol.OTCorrelated)
		case "":
		default:
			return nil, fmt.Errorf("grid: unknown OT mode %q (want per-round, batched or correlated)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("grid: no OT modes selected")
	}
	return out, nil
}

// parseSizes parses a comma-separated RxC list ("4x4,16x16").
func parseSizes(csv string) ([][2]int, error) {
	var out [][2]int
	for _, tok := range strings.Split(csv, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		rc := strings.SplitN(tok, "x", 2)
		if len(rc) != 2 {
			return nil, fmt.Errorf("grid: size %q is not RxC", tok)
		}
		r, err1 := strconv.Atoi(rc[0])
		c, err2 := strconv.Atoi(rc[1])
		if err1 != nil || err2 != nil || r <= 0 || c <= 0 {
			return nil, fmt.Errorf("grid: size %q is not a positive RxC", tok)
		}
		out = append(out, [2]int{r, c})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("grid: no sizes selected")
	}
	return out, nil
}

// parseWidths parses a comma-separated bit-width list ("8,16").
func parseWidths(csv string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(csv, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		w, err := strconv.Atoi(tok)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("grid: width %q is not a positive integer", tok)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("grid: no widths selected")
	}
	return out, nil
}

// runGrid sweeps every cell and writes the artifact: JSON (the
// benchgrid schema) with -json, a human table otherwise. Progress goes
// to stderr either way, one line per cell.
func runGrid(gc gridConfig, out *output) error {
	if gc.requests <= 0 {
		return fmt.Errorf("grid: requests must be positive (got %d)", gc.requests)
	}
	grid := benchgrid.New("maxbench -grid")
	total := 0
	for _, ot := range gc.ots {
		warmModes := 2
		if ot == protocol.OTCorrelated {
			warmModes = 1 // correlated OT fixes labels interactively; not poolable
		}
		total += warmModes * len(gc.sizes) * len(gc.widths)
	}
	done := 0
	for _, ot := range gc.ots {
		for _, size := range gc.sizes {
			for _, width := range gc.widths {
				for _, warm := range []bool{false, true} {
					if warm && ot == protocol.OTCorrelated {
						continue
					}
					done++
					out.progressf("grid: cell %d/%d ot=%s %dx%d b=%d precompute=%t (%d requests)...",
						done, total, ot, size[0], size[1], width, warm, gc.requests)
					ps, err := measurePass(passConfig{
						rows: size[0], cols: size[1], width: width, ot: ot,
						requests: gc.requests, warm: warm, prefillAll: warm, memstats: true,
					})
					if err != nil {
						return fmt.Errorf("grid: cell ot=%s %dx%d b=%d precompute=%t: %w",
							ot, size[0], size[1], width, warm, err)
					}
					cell := benchgrid.Cell{
						OT: ot.String(), Rows: size[0], Cols: size[1], Width: width,
						Precompute: warm, Requests: gc.requests,
						P50Ms:       ms(percentile(ps.samples, 50)),
						P95Ms:       ms(percentile(ps.samples, 95)),
						P99Ms:       ms(percentile(ps.samples, 99)),
						MeanMs:      ms(ps.mean()),
						BytesPerOp:  ps.bytesPerOp,
						AllocsPerOp: ps.allocsPerOp,
					}
					if secs := ps.onlineSeconds(); secs > 0 {
						cell.TablesPerSec = float64(ps.tables) / secs
					}
					// A warm cell must hit the pool on every clocked request;
					// any miss means part of the loop ran inline, so the
					// cell's numbers describe a mixed regime. Flag it rather
					// than publish a throughput figure the serving mode
					// didn't produce.
					if warm && ps.poolMisses > 0 {
						cell.Degraded = true
						out.progressf("grid: cell ot=%s %dx%d b=%d marked degraded: pool hit %d/%d requests",
							ot, size[0], size[1], width, ps.poolHits, gc.requests)
					}
					grid.Cells = append(grid.Cells, cell)
				}
			}
		}
	}
	if err := grid.Validate(); err != nil {
		return fmt.Errorf("grid: produced an invalid artifact: %w", err)
	}

	if out.json {
		return out.emitJSON(grid)
	}
	w := out.data
	fmt.Fprintf(w, "Benchmark grid (%d requests per cell, %s %s/%s, %d CPUs)\n\n",
		gc.requests, grid.Env.GoVersion, grid.Env.GOOS, grid.Env.GOARCH, grid.Env.NumCPU)
	fmt.Fprintf(w, "%-11s %-8s %4s %5s %10s %10s %10s %12s %12s %10s\n",
		"ot", "size", "b", "warm", "p50", "p95", "p99", "tables/s", "bytes/op", "allocs/op")
	for _, c := range grid.Cells {
		mark := ""
		if c.Degraded {
			mark = "  DEGRADED"
		}
		fmt.Fprintf(w, "%-11s %-8s %4d %5t %9.1fms %9.1fms %9.1fms %12.0f %12d %10d%s\n",
			c.OT, fmt.Sprintf("%dx%d", c.Rows, c.Cols), c.Width, c.Precompute,
			c.P50Ms, c.P95Ms, c.P99Ms, c.TablesPerSec, c.BytesPerOp, c.AllocsPerOp, mark)
	}
	return nil
}

// compareReport is the -compare -json artifact.
type compareReport struct {
	Base        string                 `json:"base"`
	New         string                 `json:"new"`
	Tolerances  benchgrid.Tolerances   `json:"tolerances"`
	Regressions []benchgrid.Regression `json:"regressions"`
	OK          bool                   `json:"ok"`
}

// errRegressions is the sentinel runCompare returns when the verdict
// is a breach; main converts it to a non-zero exit without re-printing.
var errRegressions = fmt.Errorf("benchmark regressions beyond tolerance")

// runCompare loads both grids, diffs them and prints the verdict. A
// breach returns errRegressions so the process exits non-zero — the
// contract the CI bench-gate job keys on.
func runCompare(basePath, newPath string, tol benchgrid.Tolerances, out *output) error {
	base, err := benchgrid.Load(basePath)
	if err != nil {
		return err
	}
	cur, err := benchgrid.Load(newPath)
	if err != nil {
		return err
	}
	if base.Env != cur.Env {
		out.progressf("compare: environments differ (base %s/%s %d cpu, new %s/%s %d cpu) — latency cells may not be comparable",
			base.Env.GoVersion, base.Env.GOARCH, base.Env.NumCPU,
			cur.Env.GoVersion, cur.Env.GOARCH, cur.Env.NumCPU)
	}
	regs := benchgrid.Compare(base, cur, tol)
	if out.json {
		rep := compareReport{Base: basePath, New: newPath, Tolerances: tol,
			Regressions: regs, OK: len(regs) == 0}
		if rep.Regressions == nil {
			rep.Regressions = []benchgrid.Regression{}
		}
		if err := out.emitJSON(rep); err != nil {
			return err
		}
	} else {
		if len(regs) == 0 {
			fmt.Fprintf(out.data, "compare: OK — %d baseline cells within tolerance (%s vs %s)\n",
				len(base.Cells), basePath, newPath)
		} else {
			fmt.Fprintf(out.data, "compare: %d regression(s) beyond tolerance (%s vs %s):\n",
				len(regs), basePath, newPath)
			for _, r := range regs {
				fmt.Fprintf(out.data, "  %s\n", r)
			}
		}
	}
	if len(regs) > 0 {
		return errRegressions
	}
	return nil
}
