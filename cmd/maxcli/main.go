// Command maxcli is the client (evaluator) of Fig. 1: it connects to a
// maxd server, obtains its input-wire labels through IKNP oblivious
// transfer, evaluates the streamed garbled tables round by round, and
// prints the decoded matrix-vector product — without ever revealing
// its input vector to the server.
//
// Usage:
//
//	maxcli -addr 127.0.0.1:7700 -b 16 -frac 6 -vector "1.5,-2.25,0.5,1"
//	maxcli -addr 127.0.0.1:7700 -vector-file v.json
//	maxcli -addr 127.0.0.1:7700 -vector-file batch.json   # [[...],[...]]
//
// A vector file may hold one vector ([1, 2.5]) or a batch of vectors
// ([[1, 2.5], [0.5, -1]]). A batch runs every vector over one
// multiplexed connection — one handshake and one OT setup amortized
// across all requests.
//
// -handshake-timeout and -io-timeout bound each wire operation of the
// connection-setup and steady-state phases respectively, so a stalled
// server costs one timeout instead of a hung client; zero disables.
package main

import (
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"maxelerator/internal/fixed"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "maxd server address")
	width := flag.Int("b", 16, "operand bit-width (must match the server)")
	frac := flag.Int("frac", 6, "fixed-point fraction bits (must match the server)")
	vec := flag.String("vector", "", "comma-separated client vector")
	vecFile := flag.String("vector-file", "", "JSON file with one client vector or a batch of vectors")
	hsTimeout := flag.Duration("handshake-timeout", 30*time.Second, "per-operation deadline for handshake and OT setup (0 = none)")
	ioTimeout := flag.Duration("io-timeout", 2*time.Minute, "per-operation deadline for steady-state request I/O (0 = none)")
	flag.Parse()

	to := protocol.Timeouts{Handshake: *hsTimeout, IO: *ioTimeout}
	if err := run(*addr, *width, *frac, *vec, *vecFile, to); err != nil {
		fmt.Fprintln(os.Stderr, "maxcli:", err)
		os.Exit(1)
	}
}

func parseVector(vec, vecFile string) ([]float64, error) {
	vs, err := parseVectors(vec, vecFile)
	if err != nil {
		return nil, err
	}
	return vs[0], nil
}

// parseVectors reads the request batch: an inline -vector is one
// request; a -vector-file holds either one vector or an array of them.
func parseVectors(vec, vecFile string) ([][]float64, error) {
	switch {
	case vec != "":
		parts := strings.Split(vec, ",")
		out := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out[i] = v
		}
		return [][]float64{out}, nil
	case vecFile != "":
		data, err := os.ReadFile(vecFile)
		if err != nil {
			return nil, err
		}
		var batch [][]float64
		if err := json.Unmarshal(data, &batch); err == nil {
			if len(batch) == 0 {
				return nil, fmt.Errorf("vector file holds an empty batch")
			}
			return batch, nil
		}
		var single []float64
		if err := json.Unmarshal(data, &single); err != nil {
			return nil, fmt.Errorf("parsing vector file: %w", err)
		}
		return [][]float64{single}, nil
	default:
		return nil, fmt.Errorf("either -vector or -vector-file is required")
	}
}

func run(addr string, width, frac int, vec, vecFile string, to protocol.Timeouts) error {
	f := fixed.Format{Width: width, Frac: frac}
	if err := f.Validate(); err != nil {
		return err
	}
	vs, err := parseVectors(vec, vecFile)
	if err != nil {
		return err
	}
	raws := make([][]int64, len(vs))
	for i, xs := range vs {
		raw, err := f.EncodeVector(xs)
		if err != nil {
			return fmt.Errorf("vector %d: %w", i, err)
		}
		raws[i] = raw
	}

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	conn := wire.NewStreamConn(nc)
	defer conn.Close()

	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		return err
	}
	cli.WithTimeouts(to)
	// One session for the whole batch: handshake and OT setup are paid
	// once, each vector is one multiplexed request with fresh labels.
	sess, err := cli.Dial(conn)
	if err != nil {
		return err
	}
	for r, raw := range raws {
		out, err := sess.Do(raw)
		if err != nil {
			return fmt.Errorf("request %d: %w", r, err)
		}
		for i, v := range out {
			if len(raws) > 1 {
				fmt.Printf("y%d[%d] = %v\n", r, i, f.DecodeProduct(v))
			} else {
				fmt.Printf("y[%d] = %v\n", i, f.DecodeProduct(v))
			}
		}
	}
	return sess.Close()
}
