// Package capmodel is the fleet capacity model: a discrete-event
// simulator of a maxd fleet — admission, OT setup, request service,
// precompute warm pools with background refill — whose per-stage
// service times are drawn from a Calibration built out of *measured*
// execution times rather than guesses. Three calibration sources, in
// decreasing order of fidelity:
//
//  1. FromSnapshot: live obs histogram snapshots (/histz) from a real
//     daemon under the very traffic being modelled — empirical
//     inverse-CDF sampling, no distributional assumption.
//  2. FromGrid: a committed maxbench BENCH_PR*.json grid — percentile
//     points (p50/p95/p99) interpolated into a piecewise-linear
//     quantile function.
//  3. Analytic: the paper's cost model (internal/sched cycle counts at
//     the device clock, internal/fpga PCIe drain) — a deterministic
//     floor for shapes nothing has measured yet.
//
// The validation loop (cmd/maxcap -validate, this package's tests)
// closes the circle: drive a real backend with internal/load, calibrate
// from the run's own histograms, replay the identical arrival schedule
// through the simulator, and assert predicted latency and pool
// hit-rate land within a documented tolerance of the measurement.
package capmodel

import (
	"fmt"
	"math/rand"
	"sort"

	"maxelerator/internal/benchgrid"
	"maxelerator/internal/fpga"
	"maxelerator/internal/obs"
	"maxelerator/internal/sched"
)

// Dist is a service-time distribution in seconds.
type Dist interface {
	// Sample draws one service time using the provided source (the
	// simulator's single seeded stream — determinism flows from it).
	Sample(rng *rand.Rand) float64
	// Mean is the expectation, used for capacity arithmetic and
	// reporting.
	Mean() float64
}

// Const is a degenerate point distribution.
type Const float64

// Sample returns the constant.
func (c Const) Sample(*rand.Rand) float64 { return float64(c) }

// Mean returns the constant.
func (c Const) Mean() float64 { return float64(c) }

// Empirical samples by inverse CDF over measured histogram buckets:
// pick a bucket proportionally to its count, then place the draw
// uniformly inside the bucket's bounds. The +Inf bucket clamps to the
// last finite bound — the histogram carries no information beyond it.
//
// Moment matching: the obs duration buckets widen geometrically, so
// uniform within-bucket placement systematically overestimates mass
// that actually sits near the lower edge of a coarse tail bucket. The
// histogram's exact Sum is available, so every draw is rescaled by
// Mean/impliedMean (the uniform-placement expectation) and clamped to
// the bucket support — first moment exact, bucket shape preserved.
type Empirical struct {
	bounds []float64 // finite upper bounds, ascending
	cum    []uint64  // cumulative counts per bucket incl. +Inf tail
	total  uint64
	mean   float64
	scale  float64
	top    float64 // last finite bound: support ceiling after scaling
}

// NewEmpirical builds an empirical distribution from a histogram
// snapshot. Returns an error when the histogram is empty — an empty
// stage must fall back to another source, not silently sample zeros.
func NewEmpirical(h obs.HistogramSnapshot) (*Empirical, error) {
	if h.Count == 0 {
		return nil, fmt.Errorf("capmodel: histogram %s is empty", h.Name)
	}
	if len(h.Bounds) == 0 || len(h.Counts) != len(h.Bounds)+1 {
		return nil, fmt.Errorf("capmodel: histogram %s has malformed buckets", h.Name)
	}
	e := &Empirical{bounds: h.Bounds, cum: h.CumulativeCounts(), total: h.Count,
		mean: h.Mean(), scale: 1, top: h.Bounds[len(h.Bounds)-1]}
	implied, prev := 0.0, 0.0
	for i, bound := range h.Bounds {
		implied += float64(h.Counts[i]) * (prev + bound) / 2
		prev = bound
	}
	implied += float64(h.Counts[len(h.Bounds)]) * e.top
	implied /= float64(h.Count)
	if implied > 0 && e.mean > 0 {
		e.scale = e.mean / implied
	}
	return e, nil
}

// Sample draws by inverse CDF with uniform within-bucket placement,
// rescaled onto the exact measured mean.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	u := uint64(rng.Int63n(int64(e.total))) + 1 // 1..total
	i := sort.Search(len(e.cum), func(i int) bool { return e.cum[i] >= u })
	var raw float64
	if i >= len(e.bounds) {
		// +Inf bucket: clamp to the last finite bound.
		raw = e.top
	} else {
		lo := 0.0
		if i > 0 {
			lo = e.bounds[i-1]
		}
		raw = lo + rng.Float64()*(e.bounds[i]-lo)
	}
	v := raw * e.scale
	if v > e.top {
		v = e.top
	}
	return v
}

// Mean returns the snapshot's exact sum/count mean.
func (e *Empirical) Mean() float64 { return e.mean }

// PercentileDist reconstructs a sampling distribution from the three
// percentile points a benchgrid cell publishes. The quantile function
// is deliberately conservative: flat at p50 through the lower half
// (the grid says nothing about the left tail), linear p50→p95 and
// p95→p99, clamped at p99.
type PercentileDist struct {
	// P50, P95, P99 are the percentile points in seconds.
	P50, P95, P99 float64
	// MeanVal is the published mean in seconds.
	MeanVal float64
}

// Sample draws from the piecewise-linear quantile function.
func (p PercentileDist) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	switch {
	case u <= 0.5:
		return p.P50
	case u <= 0.95:
		return p.P50 + (u-0.5)/0.45*(p.P95-p.P50)
	case u <= 0.99:
		return p.P95 + (u-0.95)/0.04*(p.P99-p.P95)
	default:
		return p.P99
	}
}

// Mean returns the published mean.
func (p PercentileDist) Mean() float64 { return p.MeanVal }

// Calibration is the full set of per-stage service-time distributions
// the simulator draws from.
type Calibration struct {
	// Source names where the numbers came from: "snapshot", "grid" or
	// "analytic" — reports carry it so a prediction is auditable.
	Source string
	// OTSetup is the per-session IKNP OT setup time.
	OTSetup Dist
	// RequestWarm is the online request service time on a pool hit.
	RequestWarm Dist
	// RequestCold is the request service time garbling inline (miss).
	RequestCold Dist
	// Refill is the background pre-garbling time for one pool entry.
	Refill Dist
	// Overhead is the fixed per-session time outside OT setup and
	// request service (handshake, close, accounting), in seconds.
	Overhead float64
}

// FromSnapshot calibrates from a live metrics snapshot. The snapshot
// must carry a non-empty request_seconds histogram (any precompute
// label); stages the snapshot lacks fall back to the analytic model
// for the given shape, and the returned calibration still reports
// Source "snapshot".
func FromSnapshot(snap *obs.Snapshot, rows, cols, width int) (*Calibration, error) {
	if snap == nil {
		return nil, fmt.Errorf("capmodel: nil snapshot")
	}
	an, err := Analytic(rows, cols, width)
	if err != nil {
		return nil, err
	}
	cal := &Calibration{Source: "snapshot", OTSetup: an.OTSetup,
		RequestWarm: an.RequestWarm, RequestCold: an.RequestCold, Refill: an.Refill}

	warm, warmOK := snap.Histogram("request_seconds", map[string]string{"precompute": "hit"})
	// Misses and precompute-off requests garble inline — one cold
	// regime; merge them by matching on the name alone when no hits or
	// misses are distinguishable.
	cold, coldOK := snap.Histogram("request_seconds", map[string]string{"precompute": "miss"})
	off, offOK := snap.Histogram("request_seconds", map[string]string{"precompute": "off"})
	all, allOK := snap.Histogram("request_seconds", nil)
	if !allOK || all.Count == 0 {
		return nil, fmt.Errorf("capmodel: snapshot has no completed requests to calibrate from")
	}
	if warmOK && warm.Count > 0 {
		if d, err := NewEmpirical(warm); err == nil {
			cal.RequestWarm = d
		}
	}
	coldHist, ok := mergeCold(cold, coldOK, off, offOK)
	if !ok || coldHist.Count == 0 {
		coldHist = all
	}
	if d, err := NewEmpirical(coldHist); err == nil {
		cal.RequestCold = d
		if !warmOK || warm.Count == 0 {
			// No warm observations: a pool hit is at least no slower
			// than inline garbling.
			cal.RequestWarm = d
		}
	}
	if ot, ok := snap.Histogram("ot_setup_seconds", nil); ok && ot.Count > 0 {
		if d, err := NewEmpirical(ot); err == nil {
			cal.OTSetup = d
		}
	}
	if rf, ok := snap.Histogram("precompute_refill_seconds", nil); ok && rf.Count > 0 {
		if d, err := NewEmpirical(rf); err == nil {
			cal.Refill = d
		}
	}
	// Session overhead: whatever mean session time is not explained by
	// OT setup and request service. Sessions here carry one request
	// each (the load generator's shape), so the subtraction is direct.
	if sess, ok := snap.Histogram("session_seconds", nil); ok && sess.Count > 0 {
		oh := sess.Mean() - cal.OTSetup.Mean() - all.Mean()
		if oh > 0 {
			cal.Overhead = oh
		}
	}
	return cal, nil
}

// mergeCold combines the miss and off histograms bucket-by-bucket;
// both describe the same inline-garbling regime.
func mergeCold(a obs.HistogramSnapshot, aOK bool, b obs.HistogramSnapshot, bOK bool) (obs.HistogramSnapshot, bool) {
	switch {
	case aOK && a.Count > 0 && (!bOK || b.Count == 0):
		return a, true
	case bOK && b.Count > 0 && (!aOK || a.Count == 0):
		return b, true
	case !aOK || !bOK:
		return obs.HistogramSnapshot{}, false
	}
	if len(a.Bounds) != len(b.Bounds) {
		return a, true
	}
	m := obs.HistogramSnapshot{Name: a.Name, Bounds: a.Bounds,
		Counts: make([]uint64, len(a.Counts)), Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	for i := range a.Counts {
		m.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	return m, true
}

// FromGrid calibrates from a committed benchmark grid: the cell
// matching (rows, cols, width) with Precompute=true feeds the warm
// distribution, Precompute=false the cold one. OT preference order is
// per-round then batched. OT setup and refill stay analytic — the grid
// clocks request service, not session setup.
func FromGrid(g *benchgrid.Grid, rows, cols, width int) (*Calibration, error) {
	an, err := Analytic(rows, cols, width)
	if err != nil {
		return nil, err
	}
	cal := &Calibration{Source: "grid", OTSetup: an.OTSetup,
		RequestWarm: an.RequestWarm, RequestCold: an.RequestCold, Refill: an.Refill}
	found := false
	pick := func(precompute bool) (benchgrid.Cell, bool) {
		for _, ot := range []string{"per-round", "batched", "correlated"} {
			key := fmt.Sprintf("ot=%s/%dx%d/b=%d/precompute=%t", ot, rows, cols, width, precompute)
			if c, ok := g.Cell(key); ok && !c.Degraded {
				return c, true
			}
		}
		return benchgrid.Cell{}, false
	}
	if c, ok := pick(false); ok {
		cal.RequestCold = cellDist(c)
		found = true
	}
	if c, ok := pick(true); ok {
		cal.RequestWarm = cellDist(c)
		found = true
	} else {
		cal.RequestWarm = cal.RequestCold
	}
	if !found {
		return nil, fmt.Errorf("capmodel: grid has no usable cell for %dx%d b=%d", rows, cols, width)
	}
	return cal, nil
}

func cellDist(c benchgrid.Cell) Dist {
	ms := 1e-3
	return PercentileDist{P50: c.P50Ms * ms, P95: c.P95Ms * ms, P99: c.P99Ms * ms, MeanVal: c.MeanMs * ms}
}

// tableBytes is the modelled wire size of one garbled table: two
// 128-bit rows per AND table under the half-gates row reduction.
const tableBytes = 32

// analyticOTSetup approximates the IKNP setup — base OTs are real
// 2048-bit public-key crypto, far off the FPGA cost model, so this is
// a documented software constant, not derived.
const analyticOTSetup = 0.2

// Analytic is the measurement-free floor: garbling time from the
// paper's cycle counts at the device clock, transfer time from the
// PCIe drain model, OT setup as a documented software constant. Widths
// outside the schedule's power-of-two domain are rejected.
func Analytic(rows, cols, width int) (*Calibration, error) {
	s, err := sched.Build(width)
	if err != nil {
		return nil, err
	}
	garble := fpga.VCU108.CyclesToDuration(s.ShapeCycles(rows, cols)).Seconds()
	transfer := fpga.DefaultPCIe.TransferTime(int(s.ShapeTables(rows, cols)) * tableBytes).Seconds()
	// Per-round OT and decode ride within the same order as transfer;
	// the warm path pays transfer only, the cold path garbles first.
	warm := transfer + float64(rows)*fpga.DefaultPCIe.LatencyPerTransfer.Seconds()
	cold := garble + warm
	return &Calibration{
		Source:      "analytic",
		OTSetup:     Const(analyticOTSetup),
		RequestWarm: Const(warm),
		RequestCold: Const(cold),
		Refill:      Const(garble),
	}, nil
}

// Describe renders the calibration's stage means for reports.
func (c *Calibration) Describe() map[string]float64 {
	return map[string]float64{
		"ot_setup_mean_sec":     c.OTSetup.Mean(),
		"request_warm_mean_sec": c.RequestWarm.Mean(),
		"request_cold_mean_sec": c.RequestCold.Mean(),
		"refill_mean_sec":       c.Refill.Mean(),
		"session_overhead_sec":  c.Overhead,
	}
}
