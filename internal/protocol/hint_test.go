package protocol

import (
	"crypto/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/precompute"
	"maxelerator/internal/wire"
)

// captureFrame sends v as a gob frame over a pipe and returns the raw
// bytes, the way a gateway sees a peeked first frame.
func captureFrame(t *testing.T, v any) []byte {
	t.Helper()
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- sendGob(a, v) }()
	frame, err := b.RecvMsg()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestShapeHintKeyMatchesPrecomputeShape(t *testing.T) {
	h := ShapeHint{Rows: 4, Cols: 3, Width: 8, Signed: true, Mode: "matvec", OT: "batched"}
	want := precompute.Shape{Rows: 4, Cols: 3, Width: 8, Signed: true, Mode: "matvec", OT: "batched"}.String()
	if h.Key() != want {
		t.Fatalf("hint key %q, precompute shape %q", h.Key(), want)
	}
	// Unsigned renders with the "u" sign marker.
	u := ShapeHint{Rows: 1, Cols: 2, Width: 16, Mode: "serial", OT: "per-round"}
	if !strings.Contains(u.Key(), "/b16u/") {
		t.Fatalf("unsigned key %q missing u marker", u.Key())
	}
}

func TestPeekShapeHintClassifiesFrames(t *testing.T) {
	h := ShapeHint{Rows: 2, Cols: 5, Width: 8, Mode: "matvec", OT: "per-round"}
	frame := captureFrame(t, msgShapeHint{Hint: true, Rows: 2, Cols: 5, Width: 8, Mode: "matvec", OT: "per-round"})
	got, ok := PeekShapeHint(frame)
	if !ok {
		t.Fatal("genuine hint not recognized")
	}
	if got != h {
		t.Fatalf("hint round-trip: got %+v, want %+v", got, h)
	}
	// Every other first-frame shape must probe false: the gateway peeks
	// frames it cannot classify and forwards them untouched.
	for name, v := range map[string]any{
		"helloAck": helloAck{ProtoVersion: ProtoVersion},
		"hello":    hello{ProtoVersion: ProtoVersion, Width: 8, Scheme: "half-gates"},
		"busy":     msgBusy{Busy: true, RetryAfterMillis: 50},
	} {
		if _, ok := PeekShapeHint(captureFrame(t, v)); ok {
			t.Fatalf("%s frame misclassified as shape hint", name)
		}
	}
	if _, ok := PeekShapeHint([]byte{0xff, 0x01}); ok {
		t.Fatal("garbage classified as shape hint")
	}
}

func TestPeekBusyClassifiesFrames(t *testing.T) {
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- SendBusy(a, 75*time.Millisecond) }()
	frame, err := b.RecvMsg()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	be, ok := PeekBusy(frame)
	if !ok {
		t.Fatal("busy frame not recognized")
	}
	if be.RetryAfter != 75*time.Millisecond {
		t.Fatalf("RetryAfter = %v", be.RetryAfter)
	}
	if _, ok := PeekBusy(captureFrame(t, hello{ProtoVersion: ProtoVersion})); ok {
		t.Fatal("hello frame misclassified as busy")
	}
}

// TestHintedClientAgainstDirectServer pins the compatibility contract:
// a client configured with a shape hint must interoperate with a
// directly-dialed server (no gateway consuming the preface) — the
// server skips the hint frame while reading the handshake ack.
func TestHintedClientAgainstDirectServer(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cli.WithShapeHint(ShapeHint{Rows: 2, Cols: 3, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"})
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	A := [][]int64{{1, 2, 3}, {-4, 5, -6}}
	y := []int64{7, -8, 9}
	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = srv.Serve(a, Request{Matrix: A})
	}()
	cs, err := cli.Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cs.Do(y)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	for i, row := range A {
		var want int64
		for j, v := range row {
			want += v * y[j]
		}
		if out[i] != want {
			t.Fatalf("row %d = %d, want %d", i, out[i], want)
		}
	}
}

// TestConfigureAfterServePanics pins the configure-before-serve
// contract: the With* setters mutate state sessions read
// unsynchronized, so calling one after the first session is a bug the
// server reports loudly instead of racing silently.
func TestConfigureAfterServePanics(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	b.Close() // fail the session fast; serving at all is what flips the latch
	if _, err := srv.Serve(a, Request{Matrix: [][]int64{{1}}}); err == nil {
		t.Fatal("serve on closed pipe succeeded")
	}
	for name, call := range map[string]func(){
		"WithObs":        func() { srv.WithObs(nil) },
		"WithTimeouts":   func() { srv.WithTimeouts(Timeouts{}) },
		"WithPrecompute": func() { srv.WithPrecompute(nil) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s after serve did not panic", name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, name) {
					t.Fatalf("%s panic message %v does not name the method", name, r)
				}
			}()
			call()
		}()
	}
}

// TestConfigureBeforeServeAllowed pins the happy path: the full option
// chain stays legal any time before the first session.
func TestConfigureBeforeServeAllowed(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithTimeouts(Timeouts{Handshake: time.Second, IO: time.Second}).
		WithPrecompute(nil).
		WithObs(nil)
}
