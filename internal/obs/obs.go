package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
)

// Health states reported by /healthz. Degraded and Overloaded are the
// daemon's load-shedding signals: degraded means connections are
// queueing behind admission control, overloaded means the daemon is
// actively rejecting them (BUSY frames) — the state a load balancer
// should route away from.
const (
	HealthOK         = "ok"
	HealthDegraded   = "degraded"
	HealthOverloaded = "overloaded"
)

// Obs bundles the metrics registry and the session tracer: the one
// handle instrumented packages and the daemon share. A nil *Obs is a
// universal no-op, so observability stays strictly opt-in.
type Obs struct {
	reg    *Registry
	tracer *Tracer
	// health, when set, is consulted by /healthz; it returns one of
	// the Health* states.
	health atomic.Pointer[func() string]
	// onScrape, when set, runs before every /metrics exposition —
	// the hook pull-style collectors (the runtime collector) use to
	// sample exactly as fresh as the scrape.
	onScrape atomic.Pointer[func()]
}

// New creates a registry plus a tracer retaining traceCapacity recent
// sessions (DefaultTraceCapacity if <= 0).
func New(traceCapacity int) *Obs {
	return &Obs{reg: NewRegistry(), tracer: NewTracer(traceCapacity)}
}

// Metrics returns the registry (nil on a nil Obs).
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Traces returns the tracer (nil on a nil Obs).
func (o *Obs) Traces() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// SetHealth installs the function /healthz consults; it must return
// one of HealthOK, HealthDegraded or HealthOverloaded and be safe for
// concurrent calls. Without one, /healthz reports HealthOK (the plain
// liveness-probe behaviour).
func (o *Obs) SetHealth(f func() string) {
	if o == nil {
		return
	}
	o.health.Store(&f)
}

// OnScrape installs a function run synchronously before every
// /metrics exposition; it must be safe for concurrent calls. Pull-style
// collectors use it so gauges are sampled at scrape time instead of on
// a background timer that may be seconds stale.
func (o *Obs) OnScrape(f func()) {
	if o == nil {
		return
	}
	o.onScrape.Store(&f)
}

// EnableRuntimeMetrics registers the Go runtime collector on the
// registry and wires it to collect on every scrape. It returns the
// collector so callers may also Collect explicitly (tests, snapshot
// paths). Safe to call on a nil Obs (returns a no-op collector).
func (o *Obs) EnableRuntimeMetrics() *RuntimeCollector {
	if o == nil {
		return nil
	}
	rc := NewRuntimeCollector(o.reg)
	o.OnScrape(rc.Collect)
	return rc
}

// scraped runs the installed pre-scrape hook, if any.
func (o *Obs) scraped() {
	if o == nil {
		return
	}
	if f := o.onScrape.Load(); f != nil && *f != nil {
		(*f)()
	}
}

// healthStatus evaluates the installed health function.
func (o *Obs) healthStatus() string {
	if o == nil {
		return HealthOK
	}
	if f := o.health.Load(); f != nil && *f != nil {
		return (*f)()
	}
	return HealthOK
}

// Handler returns the daemon's debug surface:
//
//	GET /metrics         Prometheus text exposition of every metric
//	GET /histz           machine-readable JSON snapshot: exact histogram
//	                     bucket bounds and counts plus counter/gauge
//	                     values (the capacity-model calibration feed)
//	GET /debug/sessions  recent session traces as JSON (?n=K limits)
//	GET /healthz         health probe: ok | degraded | overloaded
//	                     (overloaded answers 503; see SetHealth)
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		o.scraped()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/histz", func(w http.ResponseWriter, r *http.Request) {
		o.scraped()
		w.Header().Set("Content-Type", "application/json")
		o.Metrics().SnapshotJSON(w)
	})
	mux.HandleFunc("/debug/sessions", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		sessions := o.Traces().Recent(n)
		if sessions == nil {
			sessions = []SessionSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"sessions": sessions})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := o.healthStatus()
		if status == HealthOverloaded {
			// 503 lets dumb HTTP probes (load balancers, orchestrators)
			// act on overload without parsing the body.
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write([]byte(status + "\n"))
	})
	return mux
}
