package sched_test

import (
	"fmt"

	"maxelerator/internal/sched"
)

// The §4.3 performance formulas for the paper's three bit-widths.
func ExampleSchedule() {
	for _, b := range []int{8, 16, 32} {
		s := sched.MustBuild(b)
		fmt.Printf("b=%d: %d cores, %d idle slots, %d cycles/MAC, latency %d stages\n",
			b, s.NumCores(), s.IdleSlotsPerStage(), s.CyclesPerMAC(), s.LatencyStages())
	}
	// Output:
	// b=8: 8 cores, 0 idle slots, 24 cycles/MAC, latency 13 stages
	// b=16: 14 cores, 2 idle slots, 48 cycles/MAC, latency 22 stages
	// b=32: 24 cores, 0 idle slots, 96 cycles/MAC, latency 39 stages
}
