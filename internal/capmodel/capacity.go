package capmodel

import (
	"fmt"

	"maxelerator/internal/load"
)

// SLO is the service objective a capacity figure is quoted against.
type SLO struct {
	// P99Ms is the latency ceiling: the predicted p99 must not exceed
	// it.
	P99Ms float64 `json:"p99_ms"`
	// MaxShedFrac bounds the tolerated shed fraction of offered load
	// (default 0.01).
	MaxShedFrac float64 `json:"max_shed_frac"`
}

func (s SLO) withDefaults() SLO {
	if s.MaxShedFrac <= 0 {
		s.MaxShedFrac = 0.01
	}
	return s
}

// meets reports whether a simulated run satisfies the SLO. A run with
// no successes never does.
func (s SLO) meets(r *Result) bool {
	if r.Succeeded == 0 {
		return false
	}
	if r.Latency.P99Ms > s.P99Ms {
		return false
	}
	dropped := r.Shed + r.Failed + r.Skipped
	return float64(dropped) <= s.MaxShedFrac*float64(r.Offered)
}

// SustainableQPS binary-searches the highest offered rate the fleet
// sustains within the SLO, probing with the scenario's process, shape
// mix and seed at each candidate rate. The search runs over
// [minRate, maxRate] to a 2% relative resolution.
func SustainableQPS(sc load.Scenario, fl Fleet, cal *Calibration, slo SLO, minRate, maxRate float64) (float64, error) {
	slo = slo.withDefaults()
	if minRate <= 0 {
		minRate = 0.5
	}
	if maxRate <= minRate {
		maxRate = minRate * 256
	}
	probe := func(rate float64) (bool, error) {
		s := sc
		s.Rate = rate
		r, err := Simulate(s, fl, cal)
		if err != nil {
			return false, err
		}
		return slo.meets(r), nil
	}
	ok, err := probe(minRate)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil // the fleet cannot sustain even the floor rate
	}
	lo, hi := minRate, maxRate
	if ok, err := probe(hi); err != nil {
		return 0, err
	} else if ok {
		return hi, nil
	}
	for hi-lo > 0.02*lo {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// CapacityCell is one row of the published capacity table.
type CapacityCell struct {
	Backends    int     `json:"backends"`
	PoolDepth   int     `json:"pool_depth"`
	MaxSessions int     `json:"max_sessions"`
	QPS         float64 `json:"qps"`
}

// CapacityTable sweeps fleet configurations and reports the
// sustainable QPS of each under the SLO — the operator-facing output
// of the whole model.
func CapacityTable(sc load.Scenario, base Fleet, cal *Calibration, slo SLO,
	backends, poolDepths, maxSessions []int) ([]CapacityCell, error) {
	var out []CapacityCell
	for _, nb := range backends {
		for _, pd := range poolDepths {
			for _, ms := range maxSessions {
				fl := base
				fl.Backends, fl.PoolDepth, fl.MaxSessions = nb, pd, ms
				qps, err := SustainableQPS(sc, fl, cal, slo, 0, 0)
				if err != nil {
					return nil, fmt.Errorf("capmodel: sweep backends=%d pool=%d sessions=%d: %w", nb, pd, ms, err)
				}
				out = append(out, CapacityCell{Backends: nb, PoolDepth: pd, MaxSessions: ms, QPS: qps})
			}
		}
	}
	return out, nil
}
