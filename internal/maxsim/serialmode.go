package maxsim

import (
	"fmt"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
	"maxelerator/internal/seqgc"
	"maxelerator/internal/serial"
)

// Serial mode: instead of garbling the parallel MAC netlist once per
// round, garble the bit-serial Fig. 2 datapath once per *stage* — the
// highest-fidelity software rendition of the FSM-driven hardware,
// where table production really happens stage by stage and state
// (carries, delay lines, accumulator) lives in wire labels between
// stages.

// SerialRun is the garbler-side result of a serial-mode dot product.
type SerialRun struct {
	// Layout describes the compiled datapath.
	Layout serial.Layout
	// Stages holds the per-stage garbled material in execution order
	// (len(x) rounds × Layout.StagesPerMAC stages).
	Stages []*gc.Garbled
	// Stats is the hardware-model accounting. Cycles follow the
	// functional datapath (3 cycles per garbled stage), which for the
	// full-precision serial unit is 2b+2 stages per MAC — see
	// EXPERIMENTS.md for how this relates to the paper's b-stage
	// throughput claim.
	Stats Stats
	// Signed records which datapath variant the run used.
	Signed bool
}

// GarbleDotProductSerial garbles ⟨x, ·⟩ through the bit-serial
// datapath: the unsigned dataflow of serial.MAC, or — when the
// simulator is configured Signed — the Baugh–Wooley signed variant of
// serial.MACSigned, whose stage flags the garbler derives from the
// public stage counter.
func (s *Simulator) GarbleDotProductSerial(x []int64) (*SerialRun, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("maxsim: empty vector")
	}
	var ckt *circuit.Circuit
	var layout serial.Layout
	var err error
	if s.cfg.Signed {
		ckt, layout, err = serial.MACSigned(s.cfg.Width)
	} else {
		ckt, layout, err = serial.MAC(s.cfg.Width)
	}
	if err != nil {
		return nil, err
	}
	gs, err := seqgc.NewGarblerSession(s.cfg.Params, s.cfg.Rand, ckt)
	if err != nil {
		return nil, err
	}
	run := &SerialRun{Layout: layout, Signed: s.cfg.Signed}
	for round, xi := range x {
		if err := checkRange(xi, s.cfg.Width, s.cfg.Signed); err != nil {
			return nil, fmt.Errorf("maxsim: round %d: %w", round, err)
		}
		xBits := circuit.Int64ToBits(xi, s.cfg.Width)
		for stage := 0; stage < layout.StagesPerMAC; stage++ {
			g := xBits
			if s.cfg.Signed {
				isLast, vj, corr, notFirst := layout.SignedStageInputs(stage)
				g = append(append([]bool{}, xBits...), isLast, vj, corr, notFirst)
			}
			gb, err := gs.NextRound(g)
			if err != nil {
				return nil, fmt.Errorf("maxsim: round %d stage %d: %w", round, stage, err)
			}
			run.Stages = append(run.Stages, gb)
			run.Stats.TablesGarbled += uint64(len(gb.Material.Tables))
			run.Stats.TableBytes += uint64(gb.Material.CiphertextBytes())
		}
	}
	run.Stats.MACs = uint64(len(x))
	run.Stats.Stages = uint64(len(run.Stages))
	run.Stats.Cycles = run.Stats.Stages * 3
	run.Stats.TablesScheduled = run.Stats.TablesGarbled // serial mode: grid = netlist
	run.Stats.ModeledTime = s.cfg.Device.CyclesToDuration(run.Stats.Cycles)
	run.Stats.PCIeTime = s.cfg.PCIe.TransferTime(int(run.Stats.TableBytes))
	run.Stats.CoreUtilization = 1
	inputWires := uint64(ckt.NGarbler + ckt.NEvaluator)
	run.Stats.RNGBitsDrawn = inputWires * run.Stats.Stages * label.Bits
	return run, nil
}

// EvaluateDotProductSerial evaluates a serial-mode run for the client
// vector a and returns the decoded accumulator. The final MAC round's
// per-stage output bits assemble the accumulator LSB-first.
func EvaluateDotProductSerial(params gc.Params, run *SerialRun, a []int64) (int64, error) {
	layout := run.Layout
	if len(run.Stages) != len(a)*layout.StagesPerMAC {
		return 0, fmt.Errorf("maxsim: run has %d stages for a %d-element vector", len(run.Stages), len(a))
	}
	var ckt *circuit.Circuit
	var err error
	if run.Signed {
		ckt, _, err = serial.MACSigned(layout.Width)
	} else {
		ckt, _, err = serial.MAC(layout.Width)
	}
	if err != nil {
		return 0, err
	}
	es, err := seqgc.NewEvaluatorSession(params, ckt)
	if err != nil {
		return 0, err
	}
	var accBits []bool
	idx := 0
	mask := uint64(1)<<uint(layout.Width) - 1
	for round, ai := range a {
		if err := checkRange(ai, layout.Width, run.Signed); err != nil {
			return 0, fmt.Errorf("maxsim: round %d: %w", round, err)
		}
		accBits = accBits[:0]
		for stage := 0; stage < layout.StagesPerMAC; stage++ {
			gb := run.Stages[idx]
			idx++
			bits := layout.StageInputs(uint64(ai)&mask, stage)
			active := make([]label.Label, len(bits))
			for i, v := range bits {
				active[i] = gb.EvalPairs[i].Get(v)
			}
			res, err := es.NextRound(&gb.Material, active)
			if err != nil {
				return 0, fmt.Errorf("maxsim: round %d stage %d: %w", round, stage, err)
			}
			accBits = append(accBits, res.Outputs[0])
		}
	}
	if run.Signed {
		// Baugh–Wooley is exact mod 2^{2b}: decode the low 2b bits as
		// two's complement.
		return circuit.BitsToInt64(accBits[:2*layout.Width]), nil
	}
	return int64(circuit.BitsToUint64(accBits)), nil
}
