package circuit

import (
	"errors"
	"fmt"
)

// Builder constructs circuits gate by gate. Party inputs must be
// declared before the first gate (garbler inputs before evaluator
// inputs) so that wire numbering stays dense. Builder methods that
// take wire indices panic on structural misuse — mirroring how the
// standard library treats programmer errors like out-of-range slicing
// — while Build validates the finished netlist and returns any error.
type Builder struct {
	nGarbler, nEvaluator int
	nState               int
	gates                []Gate
	outputs              []int
	stateOuts            []int
	next                 int
	evDeclared           bool
	stDeclared           bool
	gatesStarted         bool
}

// NewBuilder returns an empty builder with the two constant wires
// already allocated.
func NewBuilder() *Builder {
	return &Builder{next: FirstInput}
}

// Word is a little-endian vector of wire indices representing a
// multi-bit value: Word[0] is the least significant bit. Indices may
// repeat (e.g. sign extension replicates the top wire).
type Word []int

// GarblerInputs allocates n garbler input wires.
func (b *Builder) GarblerInputs(n int) Word {
	if b.gatesStarted || b.evDeclared || b.stDeclared {
		panic("circuit: garbler inputs must be declared before evaluator inputs, state and gates")
	}
	if n < 0 {
		panic("circuit: negative input count")
	}
	w := b.span(n)
	b.nGarbler += n
	return w
}

// EvaluatorInputs allocates n evaluator input wires.
func (b *Builder) EvaluatorInputs(n int) Word {
	if b.gatesStarted || b.stDeclared {
		panic("circuit: evaluator inputs must be declared before state and gates")
	}
	if n < 0 {
		panic("circuit: negative input count")
	}
	b.evDeclared = true
	w := b.span(n)
	b.nEvaluator += n
	return w
}

// StateInputs allocates n sequential state wires (DFF outputs). At
// round 0 they carry logical 0; at round r+1 they carry the values
// routed to them via StateOuts at round r.
func (b *Builder) StateInputs(n int) Word {
	if b.gatesStarted {
		panic("circuit: state inputs must be declared before gates")
	}
	if n < 0 {
		panic("circuit: negative input count")
	}
	b.stDeclared = true
	w := b.span(n)
	b.nState += n
	return w
}

// StateOuts routes wires to the state inputs for the next round; the
// i-th routed wire feeds the i-th state input. The total routed count
// must equal the declared state width by Build time.
func (b *Builder) StateOuts(ws ...int) {
	for _, w := range ws {
		b.checkWire(w)
		b.stateOuts = append(b.stateOuts, w)
	}
}

func (b *Builder) span(n int) Word {
	w := make(Word, n)
	for i := range w {
		w[i] = b.next
		b.next++
	}
	return w
}

func (b *Builder) checkWire(w int) {
	if w < 0 || w >= b.next {
		panic(fmt.Sprintf("circuit: wire %d out of range [0,%d)", w, b.next))
	}
}

func (b *Builder) gate(op Op, x, y int) int {
	b.checkWire(x)
	b.checkWire(y)
	b.gatesStarted = true
	out := b.next
	b.next++
	b.gates = append(b.gates, Gate{Op: op, A: x, B: y, Out: out})
	return out
}

// XOR appends a free XOR gate and returns its output wire.
func (b *Builder) XOR(x, y int) int {
	// Constant folding keeps netlists tight: XOR with 0 is identity and
	// XOR with 1 below is still a gate (inversion is cheap but not free
	// to represent), so only fold the zero case.
	if x == Const0 {
		b.checkWire(y)
		return y
	}
	if y == Const0 {
		b.checkWire(x)
		return x
	}
	return b.gate(XOR, x, y)
}

// AND appends an AND gate (one garbled table) and returns its output.
func (b *Builder) AND(x, y int) int {
	if x == Const0 || y == Const0 {
		b.checkWire(x)
		b.checkWire(y)
		return Const0
	}
	if x == Const1 {
		b.checkWire(y)
		return y
	}
	if y == Const1 {
		b.checkWire(x)
		return x
	}
	return b.gate(AND, x, y)
}

// NOT returns the inversion of x, realised as a free XOR with the
// constant-one wire.
func (b *Builder) NOT(x int) int { return b.XOR(x, Const1) }

// OR returns x ∨ y using one AND gate via De Morgan.
func (b *Builder) OR(x, y int) int {
	return b.NOT(b.AND(b.NOT(x), b.NOT(y)))
}

// Const returns the wire carrying the constant v.
func (b *Builder) Const(v bool) int {
	if v {
		return Const1
	}
	return Const0
}

// Outputs marks wires as circuit outputs, in order.
func (b *Builder) Outputs(ws ...int) {
	for _, w := range ws {
		b.checkWire(w)
		b.outputs = append(b.outputs, w)
	}
}

// OutputWord marks all bits of w as outputs, LSB first.
func (b *Builder) OutputWord(w Word) { b.Outputs(w...) }

// Build finalises and validates the circuit.
func (b *Builder) Build() (*Circuit, error) {
	if len(b.outputs) == 0 {
		return nil, errors.New("circuit: no outputs declared")
	}
	c := &Circuit{
		NGarbler:   b.nGarbler,
		NEvaluator: b.nEvaluator,
		NState:     b.nState,
		Gates:      append([]Gate(nil), b.gates...),
		Outputs:    append([]int(nil), b.outputs...),
		StateOuts:  append([]int(nil), b.stateOuts...),
		NWires:     b.next,
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustBuild finalises the circuit and panics on validation failure. It
// is intended for the fixed generator functions in this package whose
// output shape is covered by tests.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
