package protocol

// Fault-matrix tests: the faultconn harness drives every protocol
// phase — handshake, OT setup, request open, rounds, decode — into the
// silent-peer fault, for every OT mode. The invariants under test are
// the ones a cloud deployment depends on: a server facing a stalled
// peer returns ErrPhaseTimeout (never wire.IsDisconnect, never a hang)
// within its phase budget, releases the session, and leaves the
// garbling-pool gauges at zero. A stall sweep over the client's
// message indices reaches every phase without hand-scripting each one:
// the learning run counts the healthy session's ops, then stalls are
// injected at sampled indices across that range.

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/wire"
	"maxelerator/internal/wire/faultconn"
)

// faultBudget is the fixed per-phase budget of the single-scenario
// tests. The matrix derives its budget from a measured healthy
// baseline instead, because the budget must comfortably exceed the
// longest genuine wire-op gap — the server waits one full client
// base-OT computation during OT setup, which stretches under -race and
// slow CI machines.
const faultBudget = 3 * time.Second

func faultMatrixServer(t *testing.T, to Timeouts) (*Server, *obs.Obs) {
	t.Helper()
	o := obs.New(4)
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o).WithTimeouts(to)
	return srv, o
}

// serveMux runs the full server side of one mux session and reports
// the terminal error and wall time.
func serveMux(srv *Server, conn wire.Conn, req Request) (error, time.Duration) {
	start := time.Now()
	sess, err := srv.NewSession(conn, SessionConfig{})
	if err != nil {
		return err, time.Since(start)
	}
	defer sess.Close()
	if _, err := sess.Serve(req); err != nil {
		return err, time.Since(start)
	}
	// Drain the client's end-of-session marker.
	if _, err := sess.Serve(req); !errors.Is(err, ErrSessionEnded) {
		return err, time.Since(start)
	}
	return nil, time.Since(start)
}

// runFaultClient is the full client side; it runs in a goroutine and
// may block inside an injected stall until the harness is closed.
func runFaultClient(conn wire.Conn, y []int64) error {
	cli, err := NewClient(rand.Reader)
	if err != nil {
		return err
	}
	cs, err := cli.Dial(conn)
	if err != nil {
		return err
	}
	if _, err := cs.Do(y); err != nil {
		return err
	}
	return cs.Close()
}

// sampleOps picks stall indices covering the start, early setup,
// middle and end of a healthy run's 1..n op range.
func sampleOps(n int) []int {
	if n <= 0 {
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	for _, i := range []int{1, 2, (n + 1) / 2, n} {
		if i >= 1 && i <= n && !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

func TestFaultMatrixPeerStall(t *testing.T) {
	before := runtime.NumGoroutine()
	req := Request{Matrix: [][]int64{{1, 2}, {-3, 4}}, GarbleWorkers: 2}
	y := []int64{5, -6}

	t.Run("matrix", func(t *testing.T) {
		for _, mode := range []OTMode{OTPerRound, OTBatched, OTCorrelated} {
			mode := mode
			mreq := req
			mreq.OT = mode

			// Learning run: a healthy session through a passthrough
			// harness (no deadlines — the peer is live), to count the
			// client's ops and time the baseline.
			srv, _ := faultMatrixServer(t, Timeouts{})
			a, b := wire.Pipe()
			fc := faultconn.New(b, faultconn.Options{})
			clientDone := make(chan error, 1)
			go func() { clientDone <- runFaultClient(fc, y) }()
			serr, healthy := serveMux(srv, a, mreq)
			if serr != nil {
				t.Fatalf("%s healthy run: server: %v", mode, serr)
			}
			if cerr := <-clientDone; cerr != nil {
				t.Fatalf("%s healthy run: client: %v", mode, cerr)
			}
			a.Close()
			fc.Close()
			sends, recvs := fc.Ops()
			if sends < 3 || recvs < 3 {
				t.Fatalf("%s healthy run too small to sweep: %d sends, %d recvs", mode, sends, recvs)
			}
			// The stall budget must exceed the longest genuine wire-op
			// gap, which scales with machine speed and -race overhead —
			// derive it from the measured baseline.
			// healthy spans the whole session, so 2x is a comfortable
			// margin over any single wire-op gap within it.
			budget := 2 * healthy
			if budget < 2*time.Second {
				budget = 2 * time.Second
			}
			to := Timeouts{Handshake: budget, IO: budget}
			// Wall-clock ceiling: the baseline compute plus two phase
			// budgets (acceptance: a stalled peer costs a timeout within
			// 2x the configured deadline, not a pinned session).
			maxWait := 4*healthy + 2*budget + 5*time.Second

			var stalls []faultconn.Options
			if mode == OTPerRound {
				// Full sweep: helloAck, early base OT, IKNP/rounds, end.
				for _, i := range sampleOps(sends) {
					stalls = append(stalls, faultconn.Options{StallOnSend: i})
				}
				stalls = append(stalls, faultconn.Options{StallOnRecv: (recvs + 1) / 2})
			} else {
				// The setup phases are identical across OT modes (already
				// swept above); cover the mode-specific stretch — rounds
				// and decode.
				for _, i := range []int{(sends + 1) / 2, sends} {
					stalls = append(stalls, faultconn.Options{StallOnSend: i})
				}
			}
			for _, opts := range stalls {
				opts := opts
				name := fmt.Sprintf("%s/stall_send_%d", mode, opts.StallOnSend)
				if opts.StallOnRecv > 0 {
					name = fmt.Sprintf("%s/stall_recv_%d", mode, opts.StallOnRecv)
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					srv, o := faultMatrixServer(t, to)
					a, b := wire.Pipe()
					fc := faultconn.New(b, opts)
					done := make(chan error, 1)
					go func() { done <- runFaultClient(fc, y) }()
					t.Cleanup(func() {
						a.Close()
						fc.Close()
						select {
						case <-done:
						case <-time.After(10 * time.Second):
							t.Error("client goroutine not released by harness close")
						}
					})

					serr, elapsed := serveMux(srv, a, mreq)
					if serr == nil {
						t.Fatal("server reported success against a stalled peer")
					}
					if !errors.Is(serr, ErrPhaseTimeout) {
						t.Fatalf("server error = %v, want ErrPhaseTimeout", serr)
					}
					if wire.IsDisconnect(serr) {
						t.Fatalf("timeout misclassified as disconnect: %v", serr)
					}
					if elapsed > maxWait {
						t.Fatalf("server took %v against a stalled peer (ceiling %v)", elapsed, maxWait)
					}

					reg := o.Metrics()
					if got := reg.Gauge("sessions_active", "").Value(); got != 0 {
						t.Errorf("sessions_active = %d after timeout", got)
					}
					if got := reg.Gauge("garble_queue_depth", "").Value(); got != 0 {
						t.Errorf("garble_queue_depth = %d after timeout", got)
					}
					if got := reg.Gauge("garble_workers_busy", "").Value(); got != 0 {
						t.Errorf("garble_workers_busy = %d after timeout", got)
					}
					var timeouts uint64
					for _, phase := range []string{"handshake", "ot_setup", "request_open", "rounds", "decode"} {
						timeouts += reg.PhaseTimeouts(phase).Value()
					}
					if timeouts == 0 {
						t.Error("phase_timeouts_total not incremented")
					}
				})
			}
		}
	})

	checkGoroutines(t, before)
}

// TestFaultSerialModeStall covers the serial datapath: a client that
// goes silent between garbled stages costs one IO budget.
func TestFaultSerialModeStall(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, o := faultMatrixServer(t, Timeouts{Handshake: faultBudget, IO: faultBudget})
	a, b := wire.Pipe()
	// Stall the 20th client send: deep inside the per-stage OT stream.
	fc := faultconn.New(b, faultconn.Options{StallOnSend: 20})
	done := make(chan error, 1)
	go func() { done <- runFaultClient(fc, []int64{7, -8}) }()
	defer func() {
		a.Close()
		fc.Close()
		<-done
		checkGoroutines(t, before)
	}()

	serr, _ := serveMux(srv, a, Request{Matrix: [][]int64{{1, 2}}, Mode: ModeSerial})
	if !errors.Is(serr, ErrPhaseTimeout) {
		t.Fatalf("server error = %v, want ErrPhaseTimeout", serr)
	}
	if got := o.Metrics().Gauge("sessions_active", "").Value(); got != 0 {
		t.Errorf("sessions_active = %d after timeout", got)
	}
}

// TestClientTimeoutAgainstStalledServer mirrors the matrix from the
// evaluator's side: a garbler that stalls mid-setup costs the client
// one phase budget, not a hung Dial.
func TestClientTimeoutAgainstStalledServer(t *testing.T) {
	srv, _ := faultMatrixServer(t, Timeouts{Handshake: faultBudget, IO: faultBudget})
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cli.WithTimeouts(Timeouts{Handshake: faultBudget, IO: faultBudget})
	a, b := wire.Pipe()
	defer b.Close()
	// Stall the server's second send (first OT-setup message after the
	// hello): the client is left waiting mid-Dial.
	fc := faultconn.New(a, faultconn.Options{StallOnSend: 2})
	defer fc.Close()
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.NewSession(fc, SessionConfig{})
		srvDone <- err
	}()

	start := time.Now()
	_, cerr := cli.Dial(b)
	elapsed := time.Since(start)
	if !errors.Is(cerr, ErrPhaseTimeout) {
		t.Fatalf("client Dial error = %v, want ErrPhaseTimeout", cerr)
	}
	if elapsed > 2*faultBudget+2*time.Second {
		t.Fatalf("client Dial took %v against a stalled server", elapsed)
	}
	fc.Close()
	<-srvDone
}

// TestServeContextCancellationInterruptsStalledSession proves the
// shutdown-drain path: with NO timeouts configured at all, cancelling
// the context reclaims a session blocked mid-rounds on a silent peer.
func TestServeContextCancellationInterruptsStalledSession(t *testing.T) {
	o := obs.New(4)
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srvDone := make(chan error, 1)
	go func() {
		sess, err := srv.NewSessionContext(ctx, a, SessionConfig{})
		if err != nil {
			srvDone <- err
			return
		}
		defer sess.Close()
		_, err = sess.ServeContext(ctx, Request{Matrix: [][]int64{{1, 2, 3}}, GarbleWorkers: 2})
		srvDone <- err
	}()

	// A client that opens a request, then goes silent without closing:
	// the server is mid-rounds, waiting on OT traffic that never comes.
	cs, err := cli.Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := sendGob(cs.conn, reqOpen{Op: opRequest}); err != nil {
		t.Fatal(err)
	}
	var hdr reqHeader
	if err := recvGob(cs.conn, &hdr); err != nil {
		t.Fatal(err)
	}

	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case serr := <-srvDone:
		if !errors.Is(serr, context.Canceled) {
			t.Fatalf("server error = %v, want context.Canceled in the chain", serr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not interrupt the stalled session")
	}
	reg := o.Metrics()
	if got := reg.Gauge("sessions_active", "").Value(); got != 0 {
		t.Errorf("sessions_active = %d after cancellation", got)
	}
	if got := reg.Gauge("garble_queue_depth", "").Value(); got != 0 {
		t.Errorf("garble_queue_depth = %d after cancellation", got)
	}
	if got := reg.Gauge("garble_workers_busy", "").Value(); got != 0 {
		t.Errorf("garble_workers_busy = %d after cancellation", got)
	}
}

// TestClientAbortClosesConnPromptly: a client that bails on a header
// mismatch closes the connection, so the server fails fast instead of
// stalling until its deadline (or, without one, forever). The server
// here has NO timeouts — only the abort-by-close can unblock it.
func TestClientAbortClosesConnPromptly(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(a, Request{Matrix: [][]int64{{1, 2, 3}}})
		srvDone <- err
	}()
	cs, err := cli.Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	// Vector length disagrees with the server's three columns: the
	// client aborts; the abort must reach the server.
	if _, err := cs.Do([]int64{1}); err == nil {
		t.Fatal("mismatched vector accepted")
	}
	select {
	case serr := <-srvDone:
		if serr == nil {
			t.Fatal("server reported success after client abort")
		}
		if !wire.IsDisconnect(serr) {
			t.Fatalf("server error = %v, want a disconnect from the abort", serr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client abort never reached the server")
	}
}

// TestPoolMetricsFailedRowsAndInlineGauge is the regression test for
// the two pool-metrics bugs: garble_rows_total counted failed rows,
// and garble_workers was never reset by inline (single-worker)
// requests.
func TestPoolMetricsFailedRowsAndInlineGauge(t *testing.T) {
	o := obs.New(4)
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	reg := o.Metrics()

	// Request 1: every row holds an out-of-range value, so every
	// garbling fails. Failed rows must not count as garbled.
	bad := [][]int64{{1 << 20, 1}, {1 << 20, 2}}
	a, b := wire.Pipe()
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(a, Request{Matrix: bad, GarbleWorkers: 2})
		srvDone <- err
	}()
	clientDone := make(chan error, 1)
	go func() {
		_, err := clientRun(cli, b, []int64{1, 1})
		clientDone <- err
	}()
	if serr := <-srvDone; serr == nil {
		t.Fatal("server garbled an out-of-range matrix")
	}
	a.Close()
	b.Close()
	<-clientDone
	if got := reg.Counter("garble_rows_total", "").Value(); got != 0 {
		t.Fatalf("garble_rows_total = %d after an all-failed request, want 0", got)
	}
	if got := reg.Gauge("garble_workers", "").Value(); got != 2 {
		t.Fatalf("garble_workers = %d, want 2", got)
	}

	// Request 2: a healthy pooled request counts exactly its rows.
	good := [][]int64{{1, 2}, {3, 4}, {5, 6}}
	a2, b2 := wire.Pipe()
	defer a2.Close()
	defer b2.Close()
	go func() {
		_, err := srv.Serve(a2, Request{Matrix: good, GarbleWorkers: 3})
		srvDone <- err
	}()
	if _, err := clientRun(cli, b2, []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if serr := <-srvDone; serr != nil {
		t.Fatal(serr)
	}
	if got := reg.Counter("garble_rows_total", "").Value(); got != uint64(len(good)) {
		t.Fatalf("garble_rows_total = %d after a healthy request, want %d", got, len(good))
	}
	if got := reg.Gauge("garble_workers", "").Value(); got != 3 {
		t.Fatalf("garble_workers = %d, want 3", got)
	}

	// Request 3: an inline (single-worker) request must reset the pool
	// gauge — it used to keep reading whatever the last pool used.
	a3, b3 := wire.Pipe()
	defer a3.Close()
	defer b3.Close()
	go func() {
		_, err := srv.Serve(a3, Request{Matrix: good, GarbleWorkers: 1})
		srvDone <- err
	}()
	if _, err := clientRun(cli, b3, []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if serr := <-srvDone; serr != nil {
		t.Fatal(serr)
	}
	if got := reg.Gauge("garble_workers", "").Value(); got != 1 {
		t.Fatalf("garble_workers = %d after an inline request, want 1", got)
	}
}

// checkGoroutines polls until the goroutine count settles back to the
// baseline (plus scheduler slack), failing on a leak. The repo has no
// external leak detector dependency; before/after counting is the
// zero-dependency equivalent.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}
