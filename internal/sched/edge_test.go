package sched

import "testing"

// Edge coverage for the cost hooks the capacity-model calibrator's
// analytic fallback (internal/capmodel) leans on: degenerate shapes
// must cost zero, and every cost must be monotone in the workload —
// a simulator sampling a non-monotone cost model would rank fleet
// configurations nonsensically.

func TestShapeCyclesDegenerateShapes(t *testing.T) {
	s := MustBuild(16)
	cases := []struct {
		name       string
		rows, cols int
	}{
		{"zero rows", 0, 8},
		{"zero cols", 8, 0},
		{"both zero", 0, 0},
		{"negative rows", -1, 8},
		{"negative cols", 8, -3},
	}
	for _, tc := range cases {
		if got := s.ShapeCycles(tc.rows, tc.cols); got != 0 {
			t.Errorf("%s: ShapeCycles(%d,%d) = %d, want 0", tc.name, tc.rows, tc.cols, got)
		}
		if got := s.ShapeTables(tc.rows, tc.cols); got != 0 {
			t.Errorf("%s: ShapeTables(%d,%d) = %d, want 0", tc.name, tc.rows, tc.cols, got)
		}
	}
}

func TestShapeCyclesMonotone(t *testing.T) {
	for _, b := range []int{4, 8, 16, 32, 64} {
		s := MustBuild(b)
		// Monotone in rows at fixed cols, and in cols at fixed rows.
		var prev uint64
		for rows := 1; rows <= 64; rows *= 2 {
			got := s.ShapeCycles(rows, 8)
			if got <= prev {
				t.Fatalf("b=%d: ShapeCycles(%d,8)=%d not above ShapeCycles(%d,8)=%d", b, rows, got, rows/2, prev)
			}
			prev = got
		}
		prev = 0
		for cols := 1; cols <= 64; cols *= 2 {
			got := s.ShapeCycles(8, cols)
			if got <= prev {
				t.Fatalf("b=%d: ShapeCycles(8,%d)=%d not monotone", b, cols, got)
			}
			prev = got
		}
	}
}

// TestShapeCyclesConsistency pins the hook to the published §4.3
// arithmetic: one MAC is the pipeline fill, each further MAC one
// steady-state period, and tables scale exactly with MAC count.
func TestShapeCyclesConsistency(t *testing.T) {
	for _, b := range []int{8, 16, 32} {
		s := MustBuild(b)
		if got, want := s.ShapeCycles(1, 1), uint64(s.LatencyCycles()); got != want {
			t.Errorf("b=%d: single-MAC shape = %d cycles, want fill latency %d", b, got, want)
		}
		macs := 4 * 7
		want := uint64(s.LatencyCycles()) + uint64(macs-1)*uint64(s.CyclesPerMAC())
		if got := s.ShapeCycles(4, 7); got != want {
			t.Errorf("b=%d: ShapeCycles(4,7) = %d, want %d", b, got, want)
		}
		if got, want := s.ShapeTables(4, 7), uint64(s.TablesPerMAC())*28; got != want {
			t.Errorf("b=%d: ShapeTables(4,7) = %d, want %d", b, got, want)
		}
	}
}

// TestShapeCyclesMonotoneInWidth: a wider datapath garbles more tables
// per MAC and takes more cycles per request — the bit-width axis of the
// capacity table must preserve that ordering.
func TestShapeCyclesMonotoneInWidth(t *testing.T) {
	var prevCycles, prevTables uint64
	for _, b := range []int{4, 8, 16, 32, 64} {
		s := MustBuild(b)
		c, tb := s.ShapeCycles(4, 4), s.ShapeTables(4, 4)
		if c <= prevCycles {
			t.Fatalf("b=%d: cycles %d not above previous width's %d", b, c, prevCycles)
		}
		if tb <= prevTables {
			t.Fatalf("b=%d: tables %d not above previous width's %d", b, tb, prevTables)
		}
		prevCycles, prevTables = c, tb
	}
}
