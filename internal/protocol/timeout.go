package protocol

// Deadline-aware protocol I/O. The garbler runs as a cloud service:
// with -max-sessions admission control, a single evaluator that stalls
// mid-OT would otherwise pin a session goroutine (and its admission
// slot) forever. Every wire operation therefore runs under the budget
// of the protocol phase it belongs to — a connection-setup budget for
// the handshake and the public-key OT setup, a steady-state budget for
// everything after — armed as an absolute deadline on the transport
// before each send/receive. Budgets bound a single wire operation, not
// a whole request, so arbitrarily large matrices stay servable while a
// silent peer is detected within one budget.
//
// Context cancellation rides the same mechanism: binding a context to
// the connection slams the deadline into the past when the context
// ends, failing in-flight operations immediately. That is how shutdown
// drain interrupts a session blocked on a wire wait.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"maxelerator/internal/obs"
	"maxelerator/internal/wire"
)

// ErrPhaseTimeout is returned (wrapped, with the phase and budget
// named) when a wire operation exceeds its phase deadline. It is
// distinguishable from a disconnect: wire.IsDisconnect is false for
// it, so callers can tell a stalled-but-connected peer from one that
// hung up.
var ErrPhaseTimeout = errors.New("protocol: phase deadline exceeded")

// Timeouts bundles the per-operation I/O budgets of a session. The
// zero value applies no deadlines (every wire operation may block
// forever), preserving pre-timeout behaviour for embedded users;
// daemons should always set both.
type Timeouts struct {
	// Handshake bounds each wire operation of the connection-setup
	// phases: version negotiation and the base-OT + IKNP extension
	// setup. These run once per connection and involve public-key
	// rounds, so they get their own (typically shorter) budget.
	Handshake time.Duration
	// IO bounds each wire operation of the steady-state phases:
	// request open, per-round OT, material streaming, and the result
	// read.
	IO time.Duration
}

// resolve merges a per-session override into server/client defaults:
// zero inherits, negative disables.
func resolveTimeout(override, def time.Duration) time.Duration {
	switch {
	case override < 0:
		return 0
	case override == 0:
		return def
	default:
		return override
	}
}

func (t Timeouts) resolveAgainst(def Timeouts) Timeouts {
	return Timeouts{
		Handshake: resolveTimeout(t.Handshake, def.Handshake),
		IO:        resolveTimeout(t.IO, def.IO),
	}
}

// Phase names, used in timeout errors and the phase_timeouts_total
// metric. They mirror the session-trace span taxonomy.
const (
	phaseHandshake   = "handshake"
	phaseOTSetup     = "ot_setup"
	phaseRequestOpen = "request_open"
	phaseRounds      = "rounds"
	phaseDecode      = "decode"
)

// aLongTimeAgo is the deadline used to interrupt in-flight operations.
var aLongTimeAgo = time.Unix(1, 0)

// timedConn wraps the session's connection so every wire operation —
// including the ones the ot package makes internally — runs under the
// current phase's budget. Both endpoints wrap their connection in one;
// phase transitions just update the budget.
type timedConn struct {
	inner wire.Conn
	reg   *obs.Registry // nil on the client: timeouts still apply, counters don't

	mu     sync.Mutex
	dc     wire.DeadlineConn // nil once the transport proves deadline-incapable
	phase  string
	budget time.Duration
	ctxErr error // sticky cancellation cause set by a bound context
}

func newTimedConn(conn wire.Conn, reg *obs.Registry) *timedConn {
	tc := &timedConn{inner: conn, reg: reg, phase: phaseHandshake}
	if dc, ok := wire.AsDeadline(conn); ok {
		tc.dc = dc
	}
	return tc
}

// enterPhase switches the budget applied to subsequent operations.
func (tc *timedConn) enterPhase(phase string, budget time.Duration) {
	tc.mu.Lock()
	tc.phase, tc.budget = phase, budget
	tc.mu.Unlock()
}

// bind makes ctx cancellation interrupt this connection's in-flight
// and future operations. The returned release func must be called
// (typically deferred) to stop the watcher; cancellation stays sticky
// after release — a cancelled session does not resume.
func (tc *timedConn) bind(ctx context.Context) (release func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	// Already cancelled: fail fast without spawning a watcher.
	if err := ctx.Err(); err != nil {
		tc.abort(err)
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			tc.abort(ctx.Err())
		case <-stop:
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// abort records the cancellation cause and slams the transport
// deadline so blocked operations return immediately.
func (tc *timedConn) abort(cause error) {
	tc.mu.Lock()
	if tc.ctxErr == nil {
		tc.ctxErr = cause
	}
	dc := tc.dc
	tc.mu.Unlock()
	if dc != nil {
		dc.SetDeadline(aLongTimeAgo)
	}
}

// arm applies the current phase budget as an absolute deadline and
// returns the phase context for error reporting. A transport without
// deadline support downgrades gracefully: budgets become no-ops.
func (tc *timedConn) arm() (phase string, budget time.Duration, err error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.ctxErr != nil {
		return "", 0, fmt.Errorf("protocol: %s phase: session cancelled: %w", tc.phase, tc.ctxErr)
	}
	if tc.dc == nil {
		return tc.phase, 0, nil
	}
	var t time.Time
	if tc.budget > 0 {
		t = time.Now().Add(tc.budget)
	}
	if derr := tc.dc.SetDeadline(t); derr != nil {
		if errors.Is(derr, wire.ErrDeadlineUnsupported) {
			tc.dc = nil
			return tc.phase, 0, nil
		}
		return "", 0, fmt.Errorf("protocol: arming %s deadline: %w", tc.phase, derr)
	}
	return tc.phase, tc.budget, nil
}

// classify maps a failed operation's error: cancellation first (a
// slammed deadline must surface as the context error, not a timeout),
// then deadline expiry to ErrPhaseTimeout with the phase named, and
// everything else untouched.
func (tc *timedConn) classify(phase string, budget time.Duration, err error) error {
	if err == nil {
		return nil
	}
	tc.mu.Lock()
	cerr := tc.ctxErr
	tc.mu.Unlock()
	if cerr != nil {
		return fmt.Errorf("protocol: %s phase interrupted: %w", phase, cerr)
	}
	if wire.IsTimeout(err) {
		tc.reg.PhaseTimeouts(phase).Inc()
		return fmt.Errorf("%w: %s phase wire op exceeded %v (%v)", ErrPhaseTimeout, phase, budget, err)
	}
	return err
}

// SendMsg implements wire.Conn under the current phase budget.
func (tc *timedConn) SendMsg(msg []byte) error {
	phase, budget, err := tc.arm()
	if err != nil {
		return err
	}
	return tc.classify(phase, budget, tc.inner.SendMsg(msg))
}

// SendVec runs the vectored send path under the current phase budget,
// so zero-copy framing keeps the same deadline, cancellation and error
// classification as SendMsg.
func (tc *timedConn) SendVec(segs [][]byte) error {
	phase, budget, err := tc.arm()
	if err != nil {
		return err
	}
	return tc.classify(phase, budget, wire.SendVec(tc.inner, segs))
}

// RecvMsg implements wire.Conn under the current phase budget.
func (tc *timedConn) RecvMsg() ([]byte, error) {
	phase, budget, err := tc.arm()
	if err != nil {
		return nil, err
	}
	msg, rerr := tc.inner.RecvMsg()
	if rerr != nil {
		return nil, tc.classify(phase, budget, rerr)
	}
	return msg, nil
}

// Close implements wire.Conn.
func (tc *timedConn) Close() error { return tc.inner.Close() }

// Unwrap keeps wire.PeerAddr and wire.AsDeadline transparent.
func (tc *timedConn) Unwrap() wire.Conn { return tc.inner }
