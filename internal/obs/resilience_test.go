package obs

import (
	"strings"
	"testing"
)

func TestBreakerStateValue(t *testing.T) {
	cases := map[string]int64{
		"closed":    BreakerStateClosed,
		"open":      BreakerStateOpen,
		"half-open": BreakerStateHalfOpen,
		"invalid":   BreakerStateOpen, // unknown reads as open: alert, don't hide
		"":          BreakerStateOpen,
	}
	for in, want := range cases {
		if got := BreakerStateValue(in); got != want {
			t.Fatalf("BreakerStateValue(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestBreakerStateGauge(t *testing.T) {
	r := NewRegistry()
	r.BreakerState("b1").Set(BreakerStateHalfOpen)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := MetricBreakerState + `{backend="b1"} 2`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, HelpBreakerState) {
		t.Fatal("exposition missing the canonical help string")
	}

	// Nil-safety follows the repo-wide contract.
	var nilReg *Registry
	nilReg.BreakerState("b1").Set(1)
}
