// Networked secure matrix-vector product: the full Fig. 1 system in
// one binary. A garbler server (host CPU + accelerator simulator) and
// an evaluator client run in separate goroutines connected over a real
// TCP socket on localhost, with IKNP oblivious transfer for the
// client's input labels and round-by-round streaming of garbled
// tables.
//
// The connection is a v2 multiplexed session: the version handshake
// and the OT-extension setup (the expensive base-OT exponentiations)
// are paid once, then three feature vectors are evaluated as three
// requests over the same connection — each with fresh wire labels —
// while the server garbles matrix rows on a parallel worker pool.
//
//	go run ./examples/matmul_network
package main

import (
	"crypto/rand"
	"errors"
	"fmt"
	"log"
	"net"

	"maxelerator/internal/fixed"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/protocol"
	"maxelerator/internal/report"
	"maxelerator/internal/wire"
)

func main() {
	f := fixed.Format{Width: 16, Frac: 6}

	// Server's private model.
	model := [][]float64{
		{0.50, -1.25, 2.00},
		{1.75, 0.25, -0.50},
		{-2.25, 1.00, 0.75},
		{0.30, 0.60, 0.90},
	}
	// Client's private feature batch: one request per vector, all over
	// one multiplexed session.
	batch := [][]float64{
		{1.5, -2.0, 0.25},
		{-0.75, 0.5, 3.0},
		{2.25, 1.0, -1.5},
	}

	modelRaw := make([][]int64, len(model))
	for i, row := range model {
		r, err := f.EncodeVector(row)
		if err != nil {
			log.Fatal(err)
		}
		modelRaw[i] = r
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("garbler server listening on %s\n", ln.Addr())

	type serverDone struct {
		stats    protocol.Stats
		requests int
		err      error
	}
	done := make(chan serverDone, 1)
	go func() {
		srv, err := protocol.NewServer(maxsim.Config{Width: f.Width, AccWidth: 2 * f.Width, Signed: true})
		if err != nil {
			done <- serverDone{err: err}
			return
		}
		c, err := ln.Accept()
		if err != nil {
			done <- serverDone{err: err}
			return
		}
		conn := wire.NewStreamConn(c)
		defer conn.Close()
		// One session, many requests: the handshake and OT setup run
		// here, then Serve handles one garbled mat-vec per request with
		// a 4-worker row-garbling pool, until the client ends the
		// session.
		sess, err := srv.NewSession(conn, protocol.SessionConfig{GarbleWorkers: 4})
		if err != nil {
			done <- serverDone{err: err}
			return
		}
		defer sess.Close()
		var total protocol.Stats
		for {
			resp, err := sess.Serve(protocol.Request{Matrix: modelRaw})
			if errors.Is(err, protocol.ErrSessionEnded) {
				done <- serverDone{stats: total, requests: sess.Requests()}
				return
			}
			if err != nil {
				done <- serverDone{err: err}
				return
			}
			total.MACs += resp.Stats.MACs
			total.TablesGarbled += resp.Stats.TablesGarbled
			total.TableBytes += resp.Stats.TableBytes
			total.ModeledTime += resp.Stats.ModeledTime
			total.PCIeTime += resp.Stats.PCIeTime
		}
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	conn := wire.NewCounting(wire.NewStreamConn(nc))
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	cs, err := cli.Dial(conn)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsecure A·x over TCP with IKNP oblivious transfer (one session, 3 requests):")
	for r, features := range batch {
		featRaw, err := f.EncodeVector(features)
		if err != nil {
			log.Fatal(err)
		}
		out, err := cs.Do(featRaw)
		if err != nil {
			log.Fatalf("request %d: %v", r, err)
		}
		for i, v := range out {
			var plain float64
			for j := range features {
				plain += model[i][j] * features[j]
			}
			got := f.DecodeProduct(v)
			fmt.Printf("  y%d[%d] = %8.4f   (plaintext %8.4f)\n", r, i, got, plain)
			// Q6 operand rounding error scales with the feature
			// magnitude; a garbling fault would be off by whole units.
			if diff := got - plain; diff > 0.05 || diff < -0.05 {
				log.Fatalf("request %d row %d deviates beyond quantisation error", r, i)
			}
		}
	}
	if err := cs.Close(); err != nil {
		log.Fatal(err)
	}
	srvRes := <-done
	if srvRes.err != nil {
		log.Fatal(srvRes.err)
	}
	conn.Close()

	sent, recv, sMsgs, rMsgs := conn.Totals()
	st := srvRes.stats
	fmt.Println("\nsession accounting:")
	fmt.Printf("  requests served   : %d (one handshake, one OT setup)\n", srvRes.requests)
	fmt.Printf("  client traffic    : %d B sent (%d msgs), %d B received (%d msgs)\n", sent, sMsgs, recv, rMsgs)
	fmt.Printf("  MAC rounds        : %d\n", st.MACs)
	fmt.Printf("  garbled tables    : %d (%d B)\n", st.TablesGarbled, st.TableBytes)
	fmt.Printf("  modelled FPGA time: %s (+%s PCIe)\n", report.Dur(st.ModeledTime), report.Dur(st.PCIeTime))
	fmt.Println("\nall results verified against plaintext ✓")
}
