package main

import (
	"encoding/json"
	"fmt"
	"io"
)

// output is maxbench's one writer: machine-readable artifacts go to
// the data stream (stdout) and human progress goes to the message
// stream (stderr), so `maxbench -grid -json > BENCH_PR6.json` captures
// a clean artifact while the terminal still shows the sweep advancing.
// Before this split, -latency interleaved progress and JSON on stdout.
type output struct {
	// json selects the artifact format on the data stream.
	json bool
	// data receives the artifact (JSON or the human table).
	data io.Writer
	// msg receives progress lines, never artifact bytes.
	msg io.Writer
}

// progressf writes one human progress line to the message stream.
func (o *output) progressf(format string, a ...any) {
	fmt.Fprintf(o.msg, format+"\n", a...)
}

// emitJSON writes v as the indented-JSON artifact.
func (o *output) emitJSON(v any) error {
	enc := json.NewEncoder(o.data)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
