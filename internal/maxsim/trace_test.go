package maxsim

import (
	"testing"

	"maxelerator/internal/sched"
)

func TestTraceValidation(t *testing.T) {
	s := sim(t, Config{Width: 8})
	if _, err := s.Trace(TraceConfig{MACs: 0}); err == nil {
		t.Fatal("zero MACs accepted")
	}
	if _, err := s.Trace(TraceConfig{MACs: 1, MemoryBytesPerCore: 8}); err == nil {
		t.Fatal("block smaller than one table accepted")
	}
	if _, err := s.Trace(TraceConfig{MACs: 1, DrainBytesPerCycle: -1}); err == nil {
		t.Fatal("negative drain accepted")
	}
}

func TestTraceNoStallsWithAmpleBandwidth(t *testing.T) {
	s := sim(t, Config{Width: 8})
	drain := s.SustainableDrainBytesPerCycle()
	res, err := s.Trace(TraceConfig{MACs: 20, DrainBytesPerCycle: drain, MemoryBytesPerCore: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles != 0 {
		t.Fatalf("sustainable drain still stalled %d cycles", res.StallCycles)
	}
	// Total cycles = busy cycles + final drain tail only.
	if res.Cycles < res.BusyCycles {
		t.Fatalf("cycles %d below busy %d", res.Cycles, res.BusyCycles)
	}
	if res.BytesDrained != res.BytesProduced {
		t.Fatalf("drained %d of %d bytes", res.BytesDrained, res.BytesProduced)
	}
}

func TestTraceStallsWhenPCIeTooSlow(t *testing.T) {
	// The paper's closing caveat: with insufficient host bandwidth the
	// accelerator must throttle.
	s := sim(t, Config{Width: 8})
	res, err := s.Trace(TraceConfig{MACs: 20, DrainBytesPerCycle: 4, MemoryBytesPerCore: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles == 0 {
		t.Fatal("starved output port produced no stalls")
	}
	if res.StallFraction() <= 0.5 {
		t.Fatalf("stall fraction %v, expected production-bound run", res.StallFraction())
	}
	if res.BytesDrained != res.BytesProduced {
		t.Fatal("tables lost")
	}
}

func TestTraceTableAccounting(t *testing.T) {
	s := sim(t, Config{Width: 8})
	const macs = 5
	res, err := s.Trace(TraceConfig{MACs: macs, DrainBytesPerCycle: 1 << 12, MemoryBytesPerCore: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	stages := s.Schedule().TotalCycles(macs) / sched.CyclesPerStage
	want := uint64(s.Schedule().TablesPerStage()) * stages
	if res.TablesProduced != want {
		t.Fatalf("produced %d tables, want %d", res.TablesProduced, want)
	}
	var perCore uint64
	for _, n := range res.PerCoreTables {
		perCore += n
	}
	if perCore != res.TablesProduced {
		t.Fatalf("per-core sum %d != total %d", perCore, res.TablesProduced)
	}
	if res.BytesProduced != want*32 { // half gates: 2 × 16 B
		t.Fatalf("bytes produced = %d", res.BytesProduced)
	}
}

func TestTraceMuxAddCoresFullyLoaded(t *testing.T) {
	// Segment-1 cores garble every cycle; segment-2 cores absorb the
	// ≤2 idle slots.
	s := sim(t, Config{Width: 16})
	res, err := s.Trace(TraceConfig{MACs: 4, DrainBytesPerCycle: 1 << 12, MemoryBytesPerCore: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	stages := s.Schedule().TotalCycles(4) / sched.CyclesPerStage
	seg1 := s.Schedule().SegmentCores(sched.MuxAdd)
	for i := 0; i < seg1; i++ {
		if res.PerCoreTables[i] != stages*sched.CyclesPerStage {
			t.Fatalf("MUX_ADD core %d produced %d tables over %d stages", i, res.PerCoreTables[i], stages)
		}
	}
}

func TestTracePeakOccupancyBounded(t *testing.T) {
	s := sim(t, Config{Width: 8})
	const blocks = 128
	res, err := s.Trace(TraceConfig{MACs: 10, DrainBytesPerCycle: 2, MemoryBytesPerCore: blocks})
	if err != nil {
		t.Fatal(err)
	}
	limit := blocks * s.Schedule().NumCores()
	if res.PeakOccupancyBytes > limit {
		t.Fatalf("peak occupancy %d exceeds capacity %d", res.PeakOccupancyBytes, limit)
	}
	if res.PeakOccupancyBytes == 0 {
		t.Fatal("no occupancy recorded")
	}
}

func TestSustainableDrainMatchesTable2Volumes(t *testing.T) {
	// b=8: 24 tables/stage × 32 B / 3 cycles = 256 B/cycle — far above
	// the ≈4 B/cycle the paper's PCIe sustains, quantifying how
	// communication-bound a fully-parallel accelerator is.
	s := sim(t, Config{Width: 8})
	if got := s.SustainableDrainBytesPerCycle(); got != 256 {
		t.Fatalf("sustainable drain = %d B/cycle, want 256", got)
	}
}

func TestTraceFasterDrainNeverSlower(t *testing.T) {
	s := sim(t, Config{Width: 8})
	slow, err := s.Trace(TraceConfig{MACs: 10, DrainBytesPerCycle: 8, MemoryBytesPerCore: 128})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.Trace(TraceConfig{MACs: 10, DrainBytesPerCycle: 64, MemoryBytesPerCore: 128})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles > slow.Cycles {
		t.Fatalf("faster drain took %d cycles vs %d", fast.Cycles, slow.Cycles)
	}
}

func TestTraceStallLoopMinimalMemory(t *testing.T) {
	// Edge of the stall loop: each memory block holds exactly one
	// half-gates table (2 × 16 B), so after every produce cycle all
	// eight b=8 cores are full and the FSM must stall until the port
	// has drained every block.
	s := sim(t, Config{Width: 8})
	const tableBytes = 32
	if _, err := s.Trace(TraceConfig{MACs: 2, DrainBytesPerCycle: tableBytes, MemoryBytesPerCore: tableBytes - 1}); err == nil {
		t.Fatal("block one byte below a table accepted")
	}
	res, err := s.Trace(TraceConfig{MACs: 2, DrainBytesPerCycle: tableBytes, MemoryBytesPerCore: tableBytes})
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles == 0 {
		t.Fatal("one-table blocks produced no stalls")
	}
	if res.BytesDrained != res.BytesProduced {
		t.Fatalf("drained %d of %d bytes", res.BytesDrained, res.BytesProduced)
	}
	// The port moves exactly one full table per cycle (produce, stall
	// and tail cycles alike), so total cycles equals tables produced —
	// any wasted drain cycle would break this equality.
	if res.Cycles != res.TablesProduced {
		t.Fatalf("cycles %d != tables %d: drain cycles wasted", res.Cycles, res.TablesProduced)
	}
	// Peak occupancy is one table in every producing block, measured
	// right after a produce cycle.
	if want := s.Schedule().NumCores() * tableBytes; res.PeakOccupancyBytes != want {
		t.Fatalf("peak occupancy %d, want %d", res.PeakOccupancyBytes, want)
	}
}

func TestTraceMidBlockSaturationResume(t *testing.T) {
	// Edge of drainFrom: a port narrower than one table saturates
	// mid-block every cycle, and the drain must resume that same block
	// next cycle instead of re-scanning from zero. If any budget were
	// wasted the run could not finish in exactly BytesProduced/drain
	// cycles.
	s := sim(t, Config{Width: 8})
	const drain = 8 // a quarter table per cycle
	res, err := s.Trace(TraceConfig{MACs: 3, DrainBytesPerCycle: drain, MemoryBytesPerCore: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesDrained != res.BytesProduced {
		t.Fatalf("drained %d of %d bytes", res.BytesDrained, res.BytesProduced)
	}
	if want := res.BytesProduced / drain; res.Cycles != want {
		t.Fatalf("cycles %d, want exactly %d (full port utilization)", res.Cycles, want)
	}
	if res.StallCycles != 0 {
		t.Fatalf("ample memory still stalled %d cycles", res.StallCycles)
	}
}

func TestTraceDrainRoundRobinFairness(t *testing.T) {
	// Edge of the round-robin pointer under a starved port: the b=8
	// grid is symmetric (every core garbles every cycle), so a fair
	// drain keeps the run port-bound with one table leaving per cycle
	// and identical per-core production.
	s := sim(t, Config{Width: 8})
	res, err := s.Trace(TraceConfig{MACs: 6, DrainBytesPerCycle: 32, MemoryBytesPerCore: 2 * 32})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.PerCoreTables {
		if n != res.PerCoreTables[0] {
			t.Fatalf("core %d produced %d tables, core 0 produced %d", i, n, res.PerCoreTables[0])
		}
	}
	if res.Cycles != res.TablesProduced {
		t.Fatalf("cycles %d != tables %d: unfair drain wasted port cycles", res.Cycles, res.TablesProduced)
	}
	if res.StallCycles == 0 {
		t.Fatal("starved port produced no stalls")
	}
	if limit := s.Schedule().NumCores() * 2 * 32; res.PeakOccupancyBytes > limit {
		t.Fatalf("peak %d exceeds total capacity %d", res.PeakOccupancyBytes, limit)
	}
}
