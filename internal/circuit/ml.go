package circuit

import "fmt"

// Deep-learning building blocks (§2.1: DL layers interleave the
// matrix multiplications MAXelerator accelerates with "several
// non-linear operations"). These are the GC-optimised forms of the
// usual suspects: ReLU, max pooling and argmax, all built from the
// one-AND-per-bit comparator and multiplexer cells.

// ReLU returns max(x, 0) for a signed word: one mux layer gated by the
// sign bit (one AND per bit).
func (b *Builder) ReLU(x Word) Word {
	if len(x) == 0 {
		panic("circuit: ReLU of empty word")
	}
	zero := b.ConstWord(0, len(x))
	return b.Mux(x[len(x)-1], zero, x)
}

// MaxS returns the signed maximum of two words: a signed comparison
// (flip the sign bits and compare unsigned) plus one mux layer.
func (b *Builder) MaxS(x, y Word) Word {
	if len(x) != len(y) || len(x) == 0 {
		panic(fmt.Sprintf("circuit: signed max width mismatch %d vs %d", len(x), len(y)))
	}
	return b.Mux(b.geqSigned(x, y), x, y)
}

// MinS returns the signed minimum of two words.
func (b *Builder) MinS(x, y Word) Word {
	if len(x) != len(y) || len(x) == 0 {
		panic(fmt.Sprintf("circuit: signed min width mismatch %d vs %d", len(x), len(y)))
	}
	return b.Mux(b.geqSigned(x, y), y, x)
}

// geqSigned returns x ≥ y for two's complement words: biasing both by
// flipping the sign bit reduces it to the unsigned comparator.
func (b *Builder) geqSigned(x, y Word) int {
	bx := make(Word, len(x))
	by := make(Word, len(y))
	copy(bx, x)
	copy(by, y)
	bx[len(bx)-1] = b.NOT(x[len(x)-1])
	by[len(by)-1] = b.NOT(y[len(y)-1])
	return b.GEq(bx, by)
}

// MaxPool returns the signed maximum of a window of equal-width words
// via a balanced comparator tree — the pooling layer of a ConvNet.
func (b *Builder) MaxPool(window []Word) Word {
	if len(window) == 0 {
		panic("circuit: MaxPool of empty window")
	}
	level := window
	for len(level) > 1 {
		next := make([]Word, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.MaxS(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// ArgMax returns the index (as an index-width word) of the signed
// maximum among the candidates — the final layer of a classifier,
// where only the label index should be revealed. Ties resolve to the
// lower index.
func (b *Builder) ArgMax(candidates []Word) Word {
	if len(candidates) == 0 {
		panic("circuit: ArgMax of empty candidate set")
	}
	idxWidth := 1
	for 1<<uint(idxWidth) < len(candidates) {
		idxWidth++
	}
	type entry struct {
		value Word
		index Word
	}
	level := make([]entry, len(candidates))
	for i, c := range candidates {
		level[i] = entry{value: c, index: b.ConstWord(uint64(i), idxWidth)}
	}
	for len(level) > 1 {
		next := make([]entry, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			// Strictly-greater keeps the lower index on ties:
			// pick right only when right > left.
			rightWins := b.NOT(b.geqSigned(level[i].value, level[i+1].value))
			next = append(next, entry{
				value: b.Mux(rightWins, level[i+1].value, level[i].value),
				index: b.Mux(rightWins, level[i+1].index, level[i].index),
			})
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0].index
}
