package circuit

import "fmt"

// Division and square-root netlists. The ridge-regression pipeline the
// paper accelerates (Nikolaenko et al. [7]) contains O(d²) divisions
// and O(d) square roots alongside its O(d³) MACs; these blocks give
// the repository a complete garbled arithmetic library and let the
// case-study cost models price the non-MAC operations from real gate
// counts instead of guesses.

// DivMod returns the quotient and remainder of unsigned x / y using
// restoring long division: per quotient bit, one shifted-remainder
// compare (GEq: one AND per bit) and one conditional subtract (Sub +
// Mux). Division by zero yields quotient all-ones and remainder x,
// matching hardware restoring dividers.
func (b *Builder) DivMod(x, y Word) (quot, rem Word) {
	if len(x) == 0 || len(y) == 0 {
		panic("circuit: division of empty word")
	}
	w := len(y)
	// Remainder register one bit wider than y so the shifted-in bit
	// never overflows the comparison.
	r := b.ConstWord(0, w+1)
	yw := b.ZeroExtend(y, w+1)
	quot = make(Word, len(x))
	for i := len(x) - 1; i >= 0; i-- {
		// r = (r << 1) | x[i]
		shifted := make(Word, w+1)
		shifted[0] = x[i]
		copy(shifted[1:], r[:w])
		ge := b.GEq(shifted, yw)
		diff := b.Sub(shifted, yw)
		r = b.Mux(ge, diff, shifted)
		quot[i] = ge
	}
	return quot, r[:w]
}

// Div returns the quotient of unsigned x / y.
func (b *Builder) Div(x, y Word) Word {
	q, _ := b.DivMod(x, y)
	return q
}

// Sqrt returns the integer square root ⌊√x⌋ of an unsigned word with
// even width, via the restoring digit-by-digit algorithm: one compare
// and one conditional subtract per result bit, no multiplier.
func (b *Builder) Sqrt(x Word) Word {
	if len(x) == 0 || len(x)%2 != 0 {
		panic(fmt.Sprintf("circuit: Sqrt needs a non-empty even-width word, got %d bits", len(x)))
	}
	w := len(x)
	half := w / 2
	// rem accumulates the running remainder; root the result bits.
	// Working width w+2 covers the shifted trial subtrahend.
	rw := w + 2
	rem := b.ConstWord(0, rw)
	root := b.ConstWord(0, rw)
	for i := half - 1; i >= 0; i-- {
		// rem = (rem << 2) | next two input bits (MSB first).
		shifted := make(Word, rw)
		shifted[0] = x[2*i]
		shifted[1] = x[2*i+1]
		copy(shifted[2:], rem[:rw-2])
		// trial = (root << 2) | 01
		trial := make(Word, rw)
		trial[0] = Const1
		trial[1] = Const0
		copy(trial[2:], root[:rw-2])
		ge := b.GEq(shifted, trial)
		diff := b.Sub(shifted, trial)
		rem = b.Mux(ge, diff, shifted)
		// root = (root << 1) | ge
		newRoot := make(Word, rw)
		newRoot[0] = ge
		copy(newRoot[1:], root[:rw-1])
		root = newRoot
	}
	return root[:half]
}

// Abs returns |x| for a signed (2's complement) word, width
// preserving (the most negative value maps to itself, as in
// hardware).
func (b *Builder) Abs(x Word) Word {
	return b.CondNeg(x, x[len(x)-1])
}

// MinU and MaxU return the unsigned minimum/maximum of two words.
func (b *Builder) MinU(x, y Word) Word {
	return b.Mux(b.GEq(x, y), y, x)
}

// MaxU returns the unsigned maximum of two words.
func (b *Builder) MaxU(x, y Word) Word {
	return b.Mux(b.GEq(x, y), x, y)
}

// PopCount returns the ⌈log₂(n+1)⌉-bit population count of the word's
// bits via a balanced adder tree.
func (b *Builder) PopCount(x Word) Word {
	if len(x) == 0 {
		panic("circuit: PopCount of empty word")
	}
	width := 1
	for 1<<uint(width) <= len(x) {
		width++
	}
	terms := make([]Word, len(x))
	for i, w := range x {
		t := b.ConstWord(0, width)
		t[0] = w
		terms[i] = t
	}
	for len(terms) > 1 {
		next := terms[:0]
		for i := 0; i+1 < len(terms); i += 2 {
			next = append(next, b.Add(terms[i], terms[i+1]))
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	return terms[0]
}
