package resilience

import (
	"testing"
	"time"
)

func feed(e *Ejector, id string, d time.Duration, n int) {
	for i := 0; i < n; i++ {
		e.Observe(id, d)
	}
}

func TestEjectorEjectsSlowOutlier(t *testing.T) {
	clk := newFakeClock()
	e := NewEjector(EjectorConfig{K: 3, MinSamples: 3, MinFleet: 3, Cooldown: 10 * time.Second, Now: clk.Now})
	feed(e, "a", 10*time.Millisecond, 5)
	feed(e, "b", 12*time.Millisecond, 5)
	feed(e, "c", 200*time.Millisecond, 5) // ~17× the median

	ejected := e.Sweep()
	if len(ejected) != 1 || ejected[0] != "c" {
		t.Fatalf("Sweep ejected %v, want [c]", ejected)
	}
	if !e.Ejected("c") || e.Ejected("a") || e.Ejected("b") {
		t.Fatal("ejection flags wrong after sweep")
	}
	if again := e.Sweep(); len(again) != 0 {
		t.Fatalf("second sweep re-reported the ejection: %v", again)
	}
	if d, ok := e.EWMA("c"); !ok || d < 100*time.Millisecond {
		t.Fatalf("EWMA(c) = %v, %v", d, ok)
	}
}

func TestEjectorNeedsFleetQuorum(t *testing.T) {
	clk := newFakeClock()
	e := NewEjector(EjectorConfig{K: 3, MinSamples: 3, MinFleet: 3, Now: clk.Now})
	feed(e, "a", 10*time.Millisecond, 5)
	feed(e, "b", 500*time.Millisecond, 5)
	if ejected := e.Sweep(); len(ejected) != 0 {
		t.Fatalf("two-backend fleet ejected %v; median of two is meaningless", ejected)
	}
}

func TestEjectorNeedsMinSamples(t *testing.T) {
	clk := newFakeClock()
	e := NewEjector(EjectorConfig{K: 3, MinSamples: 5, MinFleet: 3, Now: clk.Now})
	feed(e, "a", 10*time.Millisecond, 5)
	feed(e, "b", 10*time.Millisecond, 5)
	feed(e, "c", 10*time.Millisecond, 5)
	feed(e, "d", 900*time.Millisecond, 2) // slow but under-sampled
	if ejected := e.Sweep(); len(ejected) != 0 {
		t.Fatalf("under-sampled backend ejected: %v", ejected)
	}
}

func TestEjectorFloorSuppressesNoise(t *testing.T) {
	clk := newFakeClock()
	e := NewEjector(EjectorConfig{K: 3, MinSamples: 3, MinFleet: 3, Floor: time.Millisecond, Now: clk.Now})
	// 10× skew, but everything is microseconds — below the noise floor.
	feed(e, "a", 50*time.Microsecond, 5)
	feed(e, "b", 60*time.Microsecond, 5)
	feed(e, "c", 600*time.Microsecond, 5)
	if ejected := e.Sweep(); len(ejected) != 0 {
		t.Fatalf("sub-floor latencies ejected %v", ejected)
	}
}

// TestEjectorCooldownAndProbation: the ejection expires on its own,
// and the returning backend must earn MinSamples fresh observations
// before its (stale-high) EWMA can eject it again.
func TestEjectorCooldownAndProbation(t *testing.T) {
	clk := newFakeClock()
	e := NewEjector(EjectorConfig{K: 3, MinSamples: 3, MinFleet: 3, Cooldown: 10 * time.Second, Now: clk.Now})
	feed(e, "a", 10*time.Millisecond, 5)
	feed(e, "b", 12*time.Millisecond, 5)
	feed(e, "c", 200*time.Millisecond, 5)
	if ejected := e.Sweep(); len(ejected) != 1 {
		t.Fatalf("Sweep ejected %v", ejected)
	}

	clk.Advance(11 * time.Second)
	if e.Ejected("c") {
		t.Fatal("ejection did not expire after the cooldown")
	}
	// No fresh samples: the stale EWMA alone must not re-eject.
	if ejected := e.Sweep(); len(ejected) != 0 {
		t.Fatalf("probation violated: %v re-ejected on stale EWMA", ejected)
	}
	// Still slow after probation: fresh samples re-eject it.
	feed(e, "c", 200*time.Millisecond, 3)
	if ejected := e.Sweep(); len(ejected) != 1 || ejected[0] != "c" {
		t.Fatalf("fresh slow samples did not re-eject: %v", ejected)
	}
}

// TestEjectorRecoveredBackendStaysIn: a backend that was slow but
// recovers during its ejection returns and survives the next sweeps.
func TestEjectorRecoveredBackendStaysIn(t *testing.T) {
	clk := newFakeClock()
	e := NewEjector(EjectorConfig{Alpha: 0.5, K: 3, MinSamples: 3, MinFleet: 3, Cooldown: 5 * time.Second, Now: clk.Now})
	feed(e, "a", 10*time.Millisecond, 5)
	feed(e, "b", 12*time.Millisecond, 5)
	feed(e, "c", 300*time.Millisecond, 5)
	e.Sweep()
	clk.Advance(6 * time.Second)
	feed(e, "c", 11*time.Millisecond, 8) // recovered: EWMA converges down
	if ejected := e.Sweep(); len(ejected) != 0 {
		t.Fatalf("recovered backend re-ejected: %v", ejected)
	}
	if e.Ejected("c") {
		t.Fatal("recovered backend still flagged")
	}
}
