// Package ot implements the oblivious-transfer stack of the protocol:
// a Diffie–Hellman base OT in the style of Chou–Orlandi's "simplest OT"
// over the RFC 3526 2048-bit MODP group, and the IKNP OT extension
// (Ishai–Kilian–Nissim–Petrank, CRYPTO 2003 — reference [24] of the
// paper) that stretches κ = 128 base transfers into arbitrarily many
// label transfers using only symmetric cryptography.
//
// The security model is honest-but-curious, matching the paper (§3).
package ot

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
)

// modp2048Hex is the 2048-bit MODP group prime of RFC 3526 §3. It is a
// safe prime p = 2q + 1 with generator 2 of the order-q quadratic
// residue subgroup.
const modp2048Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

// group holds the shared group parameters.
type group struct {
	p, q, g *big.Int
}

var modpGroup = func() *group {
	p, ok := new(big.Int).SetString(modp2048Hex, 16)
	if !ok {
		panic("ot: bad MODP prime literal")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	return &group{p: p, q: q, g: big.NewInt(2)}
}()

// randExponent draws a uniform exponent in [1, q).
func (gr *group) randExponent(rnd io.Reader) (*big.Int, error) {
	for {
		e, err := rand.Int(rnd, gr.q)
		if err != nil {
			return nil, fmt.Errorf("ot: drawing exponent: %w", err)
		}
		if e.Sign() > 0 {
			return e, nil
		}
	}
}

// elementLen is the byte length of a serialised group element.
var elementLen = len(modpGroup.p.Bytes())

// marshalElement serialises a group element left-padded to elementLen.
func marshalElement(e *big.Int) []byte {
	out := make([]byte, elementLen)
	e.FillBytes(out)
	return out
}

// unmarshalElement parses and validates a group element: it must lie
// in (1, p) — rejecting 0, 1 and out-of-range encodings.
func unmarshalElement(b []byte) (*big.Int, error) {
	if len(b) != elementLen {
		return nil, fmt.Errorf("ot: group element of %d bytes, want %d", len(b), elementLen)
	}
	e := new(big.Int).SetBytes(b)
	if e.Cmp(big.NewInt(1)) <= 0 || e.Cmp(modpGroup.p) >= 0 {
		return nil, fmt.Errorf("ot: group element out of range")
	}
	return e, nil
}

// keyFromElement hashes a group element (with a transfer index for
// domain separation) to a 16-byte one-time-pad key.
func keyFromElement(index uint64, e *big.Int) [16]byte {
	h := sha256.New()
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], index)
	h.Write(idx[:])
	h.Write(marshalElement(e))
	var key [16]byte
	copy(key[:], h.Sum(nil))
	return key
}
