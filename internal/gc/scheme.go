// Package gc implements Yao's garbled circuit protocol with the four
// optimisations MAXelerator adopts (§2.2 of the paper): free XOR
// (Kolesnikov–Schneider), row reduction (Naor–Pinkas–Sumner), half
// gates (Zahur–Rosulek–Evans) and fixed-key block-cipher garbling
// (Bellare et al.). The garbler and evaluator operate on the netlists
// of package circuit; sequential (multi-round) execution in the style
// of TinyGarble is layered on top by package seqgc.
//
// Three AND-garbling schemes are provided behind the Scheme interface:
// the paper's production scheme (half gates, 2 ciphertexts per AND)
// plus classic 4-row and row-reduced 3-row tables used by the ablation
// benchmarks to quantify what each optimisation buys.
package gc

import (
	"fmt"

	"maxelerator/internal/gchash"
	"maxelerator/internal/label"
)

// Scheme garbles and evaluates a single AND gate. XOR gates are always
// free and handled outside the scheme. Implementations are stateless
// and safe for concurrent use.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// TableSize is the number of ciphertexts (labels) per AND gate.
	TableSize() int
	// TweaksPerGate is how many hash tweaks one AND consumes.
	TweaksPerGate() uint64
	// GarbleAND produces the FALSE output label and the garbled table
	// for an AND of wires with FALSE labels a0, b0.
	GarbleAND(h gchash.Hasher, delta label.Delta, a0, b0 label.Label, tweak uint64) (out0 label.Label, table []label.Label)
	// EvalAND recovers the active output label from active input labels
	// and the garbled table.
	EvalAND(h gchash.Hasher, a, b label.Label, table []label.Label, tweak uint64) (label.Label, error)
}

// HalfGates is the paper's scheme: 2 ciphertexts and 4 hash calls per
// AND when garbling, 2 hash calls when evaluating.
type HalfGates struct{}

// Name implements Scheme.
func (HalfGates) Name() string { return "half-gates" }

// TableSize implements Scheme.
func (HalfGates) TableSize() int { return 2 }

// TweaksPerGate implements Scheme.
func (HalfGates) TweaksPerGate() uint64 { return 2 }

// GarbleAND implements Scheme using the generator/evaluator half-gate
// decomposition of Zahur, Rosulek and Evans.
func (HalfGates) GarbleAND(h gchash.Hasher, delta label.Delta, a0, b0 label.Label, tweak uint64) (label.Label, []label.Label) {
	a1 := delta.Flip(a0)
	b1 := delta.Flip(b0)
	pa := a0.LSB()
	pb := b0.LSB()

	// Generator half gate: computes a ∧ pb-known-to-garbler part.
	ha0 := h.Hash(a0, tweak)
	ha1 := h.Hash(a1, tweak)
	tg := ha0.Xor(ha1)
	if pb {
		tg = tg.Xor(delta.Label())
	}
	wg0 := ha0
	if pa {
		wg0 = wg0.Xor(tg)
	}

	// Evaluator half gate.
	hb0 := h.Hash(b0, tweak+1)
	hb1 := h.Hash(b1, tweak+1)
	te := hb0.Xor(hb1).Xor(a0)
	we0 := hb0
	if pb {
		we0 = we0.Xor(te.Xor(a0))
	}

	return wg0.Xor(we0), []label.Label{tg, te}
}

// EvalAND implements Scheme.
func (HalfGates) EvalAND(h gchash.Hasher, a, b label.Label, table []label.Label, tweak uint64) (label.Label, error) {
	if len(table) != 2 {
		return label.Zero, fmt.Errorf("gc: half-gates table has %d rows, want 2", len(table))
	}
	wg := h.Hash(a, tweak)
	if a.LSB() {
		wg = wg.Xor(table[0])
	}
	we := h.Hash(b, tweak+1)
	if b.LSB() {
		we = we.Xor(table[1].Xor(a))
	}
	return wg.Xor(we), nil
}

// hash2 is the double-input hash used by the table-based schemes:
// H₂(a, b, T) = H(2a ⊕ 4b, T). The independent GF(2^128) doublings
// keep (a,b) and (b,a) separated.
func hash2(h gchash.Hasher, a, b label.Label, tweak uint64) label.Label {
	return h.Hash(a.Double().Xor(b.Quadruple()), tweak)
}

// FourRow is the classical point-and-permute scheme: 4 ciphertexts per
// AND, no row reduction. Kept for the ablation study.
type FourRow struct{}

// Name implements Scheme.
func (FourRow) Name() string { return "four-row" }

// TableSize implements Scheme.
func (FourRow) TableSize() int { return 4 }

// TweaksPerGate implements Scheme.
func (FourRow) TweaksPerGate() uint64 { return 2 }

// GarbleAND implements Scheme.
func (FourRow) GarbleAND(h gchash.Hasher, delta label.Delta, a0, b0 label.Label, tweak uint64) (label.Label, []label.Label) {
	out0 := label.MustRandom()
	// Keep the output pair correlated for downstream free XOR.
	table := make([]label.Label, 4)
	for _, va := range []bool{false, true} {
		av := a0
		if va {
			av = delta.Flip(a0)
		}
		for _, vb := range []bool{false, true} {
			bv := b0
			if vb {
				bv = delta.Flip(b0)
			}
			outv := out0
			if va && vb {
				outv = delta.Flip(out0)
			}
			row := int(av.SelectBit())<<1 | int(bv.SelectBit())
			table[row] = hash2(h, av, bv, tweak).Xor(outv)
		}
	}
	return out0, table
}

// EvalAND implements Scheme.
func (FourRow) EvalAND(h gchash.Hasher, a, b label.Label, table []label.Label, tweak uint64) (label.Label, error) {
	if len(table) != 4 {
		return label.Zero, fmt.Errorf("gc: four-row table has %d rows, want 4", len(table))
	}
	row := int(a.SelectBit())<<1 | int(b.SelectBit())
	return hash2(h, a, b, tweak).Xor(table[row]), nil
}

// GRR3 is the row-reduction scheme of Naor, Pinkas and Sumner: the
// ciphertext of the select-bit-(0,0) row is fixed to zero by deriving
// the output label from the hash, shrinking tables by 25%.
type GRR3 struct{}

// Name implements Scheme.
func (GRR3) Name() string { return "grr3" }

// TableSize implements Scheme.
func (GRR3) TableSize() int { return 3 }

// TweaksPerGate implements Scheme.
func (GRR3) TweaksPerGate() uint64 { return 2 }

// GarbleAND implements Scheme.
func (GRR3) GarbleAND(h gchash.Hasher, delta label.Delta, a0, b0 label.Label, tweak uint64) (label.Label, []label.Label) {
	// The (select 0, select 0) row corresponds to truth values
	// (va, vb) = (pa, pb), because X^v has select bit lsb(X⁰) ⊕ v. Its
	// ciphertext is defined to be all zeros, so the output label for
	// value pa∧pb equals that row's hash and is never transmitted.
	pa := a0.LSB()
	pb := b0.LSB()
	var out0 label.Label
	rowVal := func(va, vb bool) bool { return va && vb }

	// First pass: fix out0 from the zero row.
	{
		va, vb := pa, pb
		av, bv := a0, b0
		if va {
			av = delta.Flip(a0)
		}
		if vb {
			bv = delta.Flip(b0)
		}
		hv := hash2(h, av, bv, tweak)
		if rowVal(va, vb) {
			out0 = delta.Flip(hv) // hv encodes TRUE ⇒ out0 = hv ⊕ Δ
		} else {
			out0 = hv
		}
	}

	table := make([]label.Label, 3)
	for _, va := range []bool{false, true} {
		av := a0
		if va {
			av = delta.Flip(a0)
		}
		for _, vb := range []bool{false, true} {
			bv := b0
			if vb {
				bv = delta.Flip(b0)
			}
			row := int(av.SelectBit())<<1 | int(bv.SelectBit())
			if row == 0 {
				continue // implicit all-zero ciphertext
			}
			outv := out0
			if rowVal(va, vb) {
				outv = delta.Flip(out0)
			}
			table[row-1] = hash2(h, av, bv, tweak).Xor(outv)
		}
	}
	return out0, table
}

// EvalAND implements Scheme.
func (GRR3) EvalAND(h gchash.Hasher, a, b label.Label, table []label.Label, tweak uint64) (label.Label, error) {
	if len(table) != 3 {
		return label.Zero, fmt.Errorf("gc: grr3 table has %d rows, want 3", len(table))
	}
	row := int(a.SelectBit())<<1 | int(b.SelectBit())
	hv := hash2(h, a, b, tweak)
	if row == 0 {
		return hv, nil
	}
	return hv.Xor(table[row-1]), nil
}

var (
	_ Scheme = HalfGates{}
	_ Scheme = FourRow{}
	_ Scheme = GRR3{}
)
