package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDivModMatchesIntegerDivision(t *testing.T) {
	const w = 8
	b := NewBuilder()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	q, r := b.DivMod(x, y)
	b.OutputWord(q)
	b.OutputWord(r)
	c := b.MustBuild()
	f := func(xv, yv uint8) bool {
		if yv == 0 {
			return true // checked separately
		}
		bits, err := c.Eval(Uint64ToBits(uint64(xv), w), Uint64ToBits(uint64(yv), w))
		if err != nil {
			t.Fatal(err)
		}
		return BitsToUint64(bits[:w]) == uint64(xv/yv) && BitsToUint64(bits[w:2*w]) == uint64(xv%yv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivModByZeroConvention(t *testing.T) {
	const w = 6
	b := NewBuilder()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	q, r := b.DivMod(x, y)
	b.OutputWord(q)
	b.OutputWord(r)
	c := b.MustBuild()
	bits, err := c.Eval(Uint64ToBits(42, w), Uint64ToBits(0, w))
	if err != nil {
		t.Fatal(err)
	}
	if got := BitsToUint64(bits[:w]); got != (1<<w)-1 {
		t.Fatalf("x/0 quotient = %d, want all-ones", got)
	}
	if got := BitsToUint64(bits[w:]); got != 42 {
		t.Fatalf("x/0 remainder = %d, want x", got)
	}
}

func TestDivExhaustiveSmall(t *testing.T) {
	const w = 4
	b := NewBuilder()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.OutputWord(b.Div(x, y))
	c := b.MustBuild()
	for xv := uint64(0); xv < 16; xv++ {
		for yv := uint64(1); yv < 16; yv++ {
			bits, err := c.Eval(Uint64ToBits(xv, w), Uint64ToBits(yv, w))
			if err != nil {
				t.Fatal(err)
			}
			if got := BitsToUint64(bits); got != xv/yv {
				t.Fatalf("%d/%d = %d, want %d", xv, yv, got, xv/yv)
			}
		}
	}
}

func TestDivisionPanicsOnEmptyWords(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty division did not panic")
		}
	}()
	b := NewBuilder()
	b.GarblerInputs(1)
	b.DivMod(Word{}, Word{})
}

func TestSqrtExhaustive8(t *testing.T) {
	const w = 8
	b := NewBuilder()
	x := b.GarblerInputs(w)
	b.EvaluatorInputs(0)
	root := b.Sqrt(x)
	if len(root) != w/2 {
		t.Fatalf("sqrt output width %d, want %d", len(root), w/2)
	}
	b.OutputWord(root)
	c := b.MustBuild()
	for v := uint64(0); v < 256; v++ {
		bits, err := c.Eval(Uint64ToBits(v, w), nil)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(math.Sqrt(float64(v)))
		for (want+1)*(want+1) <= v {
			want++
		}
		for want*want > v {
			want--
		}
		if got := BitsToUint64(bits); got != want {
			t.Fatalf("sqrt(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestSqrtRandom16(t *testing.T) {
	const w = 16
	b := NewBuilder()
	x := b.GarblerInputs(w)
	b.EvaluatorInputs(0)
	b.OutputWord(b.Sqrt(x))
	c := b.MustBuild()
	f := func(v uint16) bool {
		bits, err := c.Eval(Uint64ToBits(uint64(v), w), nil)
		if err != nil {
			t.Fatal(err)
		}
		got := BitsToUint64(bits)
		return got*got <= uint64(v) && (got+1)*(got+1) > uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSqrtPanicsOnOddWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd-width sqrt did not panic")
		}
	}()
	b := NewBuilder()
	x := b.GarblerInputs(5)
	b.Sqrt(x)
}

func TestAbsSigned(t *testing.T) {
	const w = 8
	b := NewBuilder()
	x := b.GarblerInputs(w)
	b.EvaluatorInputs(0)
	b.OutputWord(b.Abs(x))
	c := b.MustBuild()
	for _, v := range []int64{-128, -127, -1, 0, 1, 127} {
		bits, err := c.Eval(Int64ToBits(v, w), nil)
		if err != nil {
			t.Fatal(err)
		}
		want := v
		if v < 0 {
			want = -v
		}
		if v == -128 {
			want = -128 // wraps, as in hardware
		}
		if got := BitsToInt64(bits); got != want {
			t.Fatalf("abs(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestMinMaxUnsigned(t *testing.T) {
	const w = 8
	b := NewBuilder()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.OutputWord(b.MinU(x, y))
	b.OutputWord(b.MaxU(x, y))
	c := b.MustBuild()
	f := func(xv, yv uint8) bool {
		bits, err := c.Eval(Uint64ToBits(uint64(xv), w), Uint64ToBits(uint64(yv), w))
		if err != nil {
			t.Fatal(err)
		}
		mn, mx := uint64(xv), uint64(yv)
		if mn > mx {
			mn, mx = mx, mn
		}
		return BitsToUint64(bits[:w]) == mn && BitsToUint64(bits[w:]) == mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPopCount(t *testing.T) {
	const w = 11
	b := NewBuilder()
	x := b.GarblerInputs(w)
	b.EvaluatorInputs(0)
	b.OutputWord(b.PopCount(x))
	c := b.MustBuild()
	f := func(v uint16) bool {
		xv := uint64(v) & (1<<w - 1)
		bits, err := c.Eval(Uint64ToBits(xv, w), nil)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		for i := 0; i < w; i++ {
			want += xv >> uint(i) & 1
		}
		return BitsToUint64(bits) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPopCountEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty popcount did not panic")
		}
	}()
	b := NewBuilder()
	b.GarblerInputs(1)
	b.PopCount(Word{})
}

func TestDivisionANDCountQuadratic(t *testing.T) {
	// Restoring division costs Θ(w²) AND gates — the reason [7] keeps
	// divisions off the GC critical path where it can. Verify the cost
	// class so the case-study models can rely on it.
	count := func(w int) int {
		b := NewBuilder()
		x := b.GarblerInputs(w)
		y := b.EvaluatorInputs(w)
		q, _ := b.DivMod(x, y)
		b.OutputWord(q)
		return b.MustBuild().Stats().ANDs
	}
	c8, c16 := count(8), count(16)
	if ratio := float64(c16) / float64(c8); ratio < 3 || ratio > 5 {
		t.Fatalf("division cost ratio 16/8 = %.2f, want ≈4 (quadratic)", ratio)
	}
}
