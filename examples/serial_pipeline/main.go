// Bit-serial pipeline: watch the Fig. 2 datapath execute stage by
// stage. This example garbles the bit-serial MAC unit — the actual
// sequential netlist the MAXelerator FSM embeds — one 3-cycle stage at
// a time, streaming the client's multiplier bit serially exactly as
// the hardware does, and prints the accumulator bit emerging each
// stage.
//
//	go run ./examples/serial_pipeline
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
	"maxelerator/internal/seqgc"
	"maxelerator/internal/serial"
)

func main() {
	const b = 8
	ckt, layout := serial.MustMAC(b)

	fmt.Printf("bit-serial MAC unit, b=%d\n", b)
	fmt.Printf("  ANDs per stage : %d (2b partial products, serial adders, tree, accumulator)\n", layout.ANDsPerStage)
	fmt.Printf("  stages per MAC : %d (b bits of a + pipeline flush)\n", layout.StagesPerMAC)
	fmt.Printf("  state bits     : %d (carries, delay lines, accumulator)\n\n", layout.StateBits)

	params := gc.DefaultParams()
	gs, err := seqgc.NewGarblerSession(params, rand.Reader, ckt)
	if err != nil {
		log.Fatal(err)
	}
	es, err := seqgc.NewEvaluatorSession(params, ckt)
	if err != nil {
		log.Fatal(err)
	}

	// Two MAC rounds: acc = 13·11 + 7·15.
	xs := []uint64{13, 7}
	as := []uint64{11, 15}
	want := uint64(13*11 + 7*15)

	var accBits []bool
	for r := range xs {
		fmt.Printf("round %d: x=%d (held in cores), a=%d (streamed LSB first)\n", r, xs[r], as[r])
		xBits := circuit.Uint64ToBits(xs[r], b)
		accBits = accBits[:0]
		for stage := 0; stage < layout.StagesPerMAC; stage++ {
			gb, err := gs.NextRound(xBits)
			if err != nil {
				log.Fatal(err)
			}
			aBits := layout.StageInputs(as[r], stage)
			active := make([]label.Label, len(aBits))
			for i, v := range aBits {
				active[i] = gb.EvalPairs[i].Get(v)
			}
			res, err := es.NextRound(&gb.Material, active)
			if err != nil {
				log.Fatal(err)
			}
			accBits = append(accBits, res.Outputs[0])

			marker := " "
			if stage < b {
				marker = fmt.Sprintf("a[%d]=%d", stage, boolBit(aBits[0]))
			} else {
				marker = "flush"
			}
			fmt.Printf("  stage %2d: %-7s  %d AND tables garbled, acc bit %2d = %d\n",
				stage, marker, len(gb.Material.Tables), stage, boolBit(res.Outputs[0]))
		}
		fmt.Printf("  accumulator after round %d: %d\n\n", r, circuit.BitsToUint64(accBits))
	}

	got := circuit.BitsToUint64(accBits)
	fmt.Printf("final accumulator: %d (plaintext %d)\n", got, want)
	if got != want {
		log.Fatal("MISMATCH")
	}
	fmt.Println("bit-serial garbled pipeline verified ✓")
}

func boolBit(v bool) int {
	if v {
		return 1
	}
	return 0
}
