package tinygarble

import (
	"testing"

	"maxelerator/internal/circuit"
)

func TestNewValidation(t *testing.T) {
	for _, b := range []int{0, -2, 3, 7} {
		if _, err := New(b); err == nil {
			t.Fatalf("width %d accepted", b)
		}
	}
}

func TestGarbleMACRoundsProducesTables(t *testing.T) {
	f, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.GarbleMACRounds(5)
	if err != nil {
		t.Fatal(err)
	}
	if st.MACs != 5 {
		t.Fatalf("MACs = %d", st.MACs)
	}
	wantTables := uint64(5 * f.Circuit().Stats().ANDs)
	if st.Tables != wantTables {
		t.Fatalf("tables = %d, want %d", st.Tables, wantTables)
	}
	if st.TableBytes != wantTables*2*16 {
		t.Fatalf("table bytes = %d", st.TableBytes)
	}
	if st.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
	if st.TimePerMAC() <= 0 || st.ThroughputMACsPerSec() <= 0 {
		t.Fatal("derived metrics not positive")
	}
}

func TestGarbleMACRoundsRejectsZero(t *testing.T) {
	f, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.GarbleMACRounds(0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestStatsZeroValues(t *testing.T) {
	var st Stats
	if st.TimePerMAC() != 0 || st.ThroughputMACsPerSec() != 0 {
		t.Fatal("zero stats produced nonzero metrics")
	}
}

func TestCostGrowsWithWidth(t *testing.T) {
	// Table 2's software column: per-MAC cost grows superlinearly in b.
	var prev uint64
	for _, b := range []int{8, 16, 32} {
		f, err := New(b)
		if err != nil {
			t.Fatal(err)
		}
		st, err := f.GarbleMACRounds(1)
		if err != nil {
			t.Fatal(err)
		}
		if st.Tables <= prev {
			t.Fatalf("b=%d produced %d tables, not above previous %d", b, st.Tables, prev)
		}
		prev = st.Tables
	}
}

func TestASAPCyclesIdealWhenSerial(t *testing.T) {
	// With one unit there can be no stalls: every cycle garbles a gate.
	f, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	cycles, stalls, err := ASAPCycles(f.Circuit(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if stalls != 0 {
		t.Fatalf("single-unit engine reported %d stalls", stalls)
	}
	if cycles != f.Circuit().Stats().ANDs {
		t.Fatalf("cycles = %d, want AND count %d", cycles, f.Circuit().Stats().ANDs)
	}
}

func TestASAPCyclesStallsWithParallelUnits(t *testing.T) {
	// A netlist-driven engine with parallel units stalls on dependency
	// chains — the motivation for the FSM schedule. The serial MAC
	// netlist must exhibit stalls at 8 units.
	f, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	cycles, stalls, err := ASAPCycles(f.Circuit(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if stalls <= 0 {
		t.Fatalf("parallel netlist engine reported no stalls (cycles=%d)", cycles)
	}
	// Cycles can never beat the dependency depth.
	if cycles < f.Circuit().Stats().ANDDepth {
		t.Fatalf("cycles %d below AND depth %d", cycles, f.Circuit().Stats().ANDDepth)
	}
}

func TestASAPCyclesParallelismSaturates(t *testing.T) {
	// Netlist-driven engines hit the dependency wall: beyond a point,
	// adding encryption units buys nothing because the ripple-carry
	// chains serialise garbling. This is the quantitative form of the
	// paper's §3 argument that software parallelisation of GC does not
	// pay off, unlike the FSM's restructured dataflow.
	c, err := circuit.MAC(circuit.MACConfig{Width: 16, AccWidth: 32, SerialMultiplier: true})
	if err != nil {
		t.Fatal(err)
	}
	c1, _, err := ASAPCycles(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	c8, _, err := ASAPCycles(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	c64, _, err := ASAPCycles(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !(c1 > c8 && c8 >= c64) {
		t.Fatalf("cycles not monotone in units: %d, %d, %d", c1, c8, c64)
	}
	// 64 units must stay well above the ideal ⌈ANDs/64⌉: the engine is
	// dependency-bound, not unit-bound.
	ideal := (c.Stats().ANDs + 63) / 64
	if c64 < 2*ideal {
		t.Fatalf("64 units gave %d cycles vs ideal %d — no dependency stalls visible", c64, ideal)
	}
	if c64 < c.Stats().ANDDepth {
		t.Fatalf("cycles %d below AND depth %d", c64, c.Stats().ANDDepth)
	}
}

func TestASAPCyclesValidation(t *testing.T) {
	f, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ASAPCycles(f.Circuit(), 0); err == nil {
		t.Fatal("zero units accepted")
	}
}

func BenchmarkSoftwareMAC8(b *testing.B)  { benchMAC(b, 8) }
func BenchmarkSoftwareMAC16(b *testing.B) { benchMAC(b, 16) }
func BenchmarkSoftwareMAC32(b *testing.B) { benchMAC(b, 32) }

func benchMAC(b *testing.B, width int) {
	f, err := New(width)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := f.GarbleMACRounds(b.N); err != nil {
		b.Fatal(err)
	}
}

func TestEvaluateMACRounds(t *testing.T) {
	f, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.EvaluateMACRounds(5)
	if err != nil {
		t.Fatal(err)
	}
	if st.MACs != 5 || st.Elapsed <= 0 {
		t.Fatalf("eval stats: %+v", st)
	}
	if st.TimePerMAC() <= 0 || st.ThroughputMACsPerSec() <= 0 {
		t.Fatal("derived metrics not positive")
	}
	if _, err := f.EvaluateMACRounds(0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestEvalStatsZeroSafe(t *testing.T) {
	var st EvalStats
	if st.TimePerMAC() != 0 || st.ThroughputMACsPerSec() != 0 {
		t.Fatal("zero eval stats produced nonzero metrics")
	}
}

func BenchmarkSoftwareEvaluate8(b *testing.B) {
	f, err := New(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := f.EvaluateMACRounds(b.N); err != nil {
		b.Fatal(err)
	}
}
