package ot

import "maxelerator/internal/label"

// SendLabels transfers one wire-label pair per evaluator input bit
// through the extension session: the receiver learns exactly the label
// matching each of its choice bits.
func SendLabels(es *ExtensionSender, pairs []label.Pair) error {
	msgs := make([][2]Message, len(pairs))
	for i, p := range pairs {
		msgs[i][0] = Message(p.False)
		msgs[i][1] = Message(p.True)
	}
	return es.Send(msgs)
}

// ReceiveLabels obtains the active labels for the receiver's input
// bits.
func ReceiveLabels(er *ExtensionReceiver, choices []bool) ([]label.Label, error) {
	msgs, err := er.Receive(choices)
	if err != nil {
		return nil, err
	}
	out := make([]label.Label, len(msgs))
	for i, m := range msgs {
		out[i] = label.Label(m)
	}
	return out, nil
}
