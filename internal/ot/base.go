package ot

import (
	"fmt"
	"io"
	"math/big"

	"maxelerator/internal/wire"
)

// Message is a fixed 16-byte OT payload — exactly one wire label or
// one PRG seed.
type Message [16]byte

func xorMsg(a, b Message) Message {
	var out Message
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// BaseSend runs the sender side of a batch of 1-out-of-2 base OTs over
// conn: for each pair, the receiver learns exactly one message. The
// construction follows the simplest-OT pattern: the sender publishes
// A = g^a; the receiver answers B = g^b (choice 0) or A·g^b (choice 1);
// the per-transfer keys are k0 = H(B^a) and k1 = H((B/A)^a), of which
// the receiver can compute only k_choice = H(A^b).
func BaseSend(conn wire.Conn, rnd io.Reader, pairs [][2]Message) error {
	gr := modpGroup
	a, err := gr.randExponent(rnd)
	if err != nil {
		return err
	}
	bigA := new(big.Int).Exp(gr.g, a, gr.p)
	if err := conn.SendMsg(marshalElement(bigA)); err != nil {
		return fmt.Errorf("ot: base sender announcing A: %w", err)
	}
	// A^{-a} mod p, used to derive k1 without a per-transfer inversion.
	invAa := new(big.Int).ModInverse(new(big.Int).Exp(bigA, a, gr.p), gr.p)

	resp, err := conn.RecvMsg()
	if err != nil {
		return fmt.Errorf("ot: base sender reading B batch: %w", err)
	}
	if len(resp) != elementLen*len(pairs) {
		return fmt.Errorf("ot: base sender got %d bytes of B values, want %d", len(resp), elementLen*len(pairs))
	}

	out := make([]byte, 0, len(pairs)*32)
	for i := range pairs {
		bigB, err := unmarshalElement(resp[i*elementLen : (i+1)*elementLen])
		if err != nil {
			return fmt.Errorf("ot: base sender transfer %d: %w", i, err)
		}
		ba := new(big.Int).Exp(bigB, a, gr.p)
		k0 := keyFromElement(uint64(i), ba)
		k1 := keyFromElement(uint64(i), new(big.Int).Mod(new(big.Int).Mul(ba, invAa), gr.p))
		e0 := xorMsg(pairs[i][0], Message(k0))
		e1 := xorMsg(pairs[i][1], Message(k1))
		out = append(out, e0[:]...)
		out = append(out, e1[:]...)
	}
	if err := conn.SendMsg(out); err != nil {
		return fmt.Errorf("ot: base sender shipping ciphertexts: %w", err)
	}
	return nil
}

// BaseReceive runs the receiver side of BaseSend, returning the chosen
// message of each pair.
func BaseReceive(conn wire.Conn, rnd io.Reader, choices []bool) ([]Message, error) {
	gr := modpGroup
	aMsg, err := conn.RecvMsg()
	if err != nil {
		return nil, fmt.Errorf("ot: base receiver reading A: %w", err)
	}
	bigA, err := unmarshalElement(aMsg)
	if err != nil {
		return nil, err
	}

	bs := make([]*big.Int, len(choices))
	resp := make([]byte, 0, elementLen*len(choices))
	for i, c := range choices {
		b, err := gr.randExponent(rnd)
		if err != nil {
			return nil, err
		}
		bs[i] = b
		bigB := new(big.Int).Exp(gr.g, b, gr.p)
		if c {
			bigB.Mod(bigB.Mul(bigB, bigA), gr.p)
		}
		resp = append(resp, marshalElement(bigB)...)
	}
	if err := conn.SendMsg(resp); err != nil {
		return nil, fmt.Errorf("ot: base receiver answering B batch: %w", err)
	}

	cts, err := conn.RecvMsg()
	if err != nil {
		return nil, fmt.Errorf("ot: base receiver reading ciphertexts: %w", err)
	}
	if len(cts) != 32*len(choices) {
		return nil, fmt.Errorf("ot: base receiver got %d ciphertext bytes, want %d", len(cts), 32*len(choices))
	}
	out := make([]Message, len(choices))
	for i, c := range choices {
		k := keyFromElement(uint64(i), new(big.Int).Exp(bigA, bs[i], gr.p))
		var e Message
		off := i * 32
		if c {
			off += 16
		}
		copy(e[:], cts[off:off+16])
		out[i] = xorMsg(e, Message(k))
	}
	return out, nil
}
