package maxsim

import (
	mrand "math/rand"
	"testing"
	"time"

	"maxelerator/internal/fpga"
	"maxelerator/internal/gc"
	"maxelerator/internal/rng"
)

func sim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Width: 10}); err == nil {
		t.Fatal("non-power-of-two width accepted")
	}
	if _, err := New(Config{Width: 32, MACUnits: 1000}); err == nil {
		t.Fatal("absurd MAC unit count accepted")
	}
	if _, err := New(Config{Width: 8, AccWidth: 8}); err == nil {
		t.Fatal("narrow accumulator accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := sim(t, Config{Width: 8})
	cfg := s.Config()
	if cfg.AccWidth != 16 || cfg.MACUnits != 1 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.Device.Name != fpga.VCU108.Name {
		t.Fatalf("default device = %q", cfg.Device.Name)
	}
	if cfg.Params.Scheme.Name() != "half-gates" {
		t.Fatalf("default scheme = %q", cfg.Params.Scheme.Name())
	}
}

func TestTimePerMACMatchesTable2(t *testing.T) {
	// Table 2 "Time per MAC": 0.12, 0.24, 0.48 µs for b = 8, 16, 32.
	want := map[int]time.Duration{8: 120, 16: 240, 32: 480}
	for b, ns := range want {
		s := sim(t, Config{Width: b})
		if got := s.TimePerMAC(); got != ns*time.Nanosecond {
			t.Fatalf("b=%d: time per MAC = %v, want %vns", b, got, ns)
		}
	}
}

func TestThroughputMatchesTable2(t *testing.T) {
	// Table 2 "Throughput": 8.33e6, 4.17e6, 2.08e6 MAC/s;
	// "Throughput per core": 1.04e6, 2.98e5, 8.68e4.
	cases := []struct {
		b           int
		total, core float64
	}{
		{8, 8.33e6, 1.04e6},
		{16, 4.17e6, 2.98e5},
		{32, 2.08e6, 8.68e4},
	}
	for _, c := range cases {
		s := sim(t, Config{Width: c.b})
		if got := s.ThroughputMACsPerSec(); got < c.total*0.99 || got > c.total*1.01 {
			t.Fatalf("b=%d: throughput %.3g, want ≈%.3g", c.b, got, c.total)
		}
		if got := s.ThroughputPerCoreMACsPerSec(); got < c.core*0.99 || got > c.core*1.01 {
			t.Fatalf("b=%d: per-core %.3g, want ≈%.3g", c.b, got, c.core)
		}
	}
}

func TestGarbleDotProductFunctionalRoundTrip(t *testing.T) {
	s := sim(t, Config{Width: 8, AccWidth: 24, Signed: true})
	rng := mrand.New(mrand.NewSource(1))
	x := make([]int64, 12)
	a := make([]int64, 12)
	var want int64
	for i := range x {
		x[i] = int64(rng.Intn(256) - 128)
		a[i] = int64(rng.Intn(256) - 128)
		want += x[i] * a[i]
	}
	run, err := s.GarbleDotProduct(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateDotProduct(s.Config().Params, s.Circuit(), run, a, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("secure dot product = %d, want %d", got, want)
	}
}

func TestGarbleDotProductUnsigned(t *testing.T) {
	s := sim(t, Config{Width: 8, AccWidth: 20})
	x := []int64{255, 3, 17}
	a := []int64{254, 9, 100}
	run, err := s.GarbleDotProduct(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateDotProduct(s.Config().Params, s.Circuit(), run, a, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(255*254 + 3*9 + 17*100)
	if got != want {
		t.Fatalf("dot product = %d, want %d", got, want)
	}
}

func TestGarbleDotProductRangeChecks(t *testing.T) {
	s := sim(t, Config{Width: 8, Signed: true})
	if _, err := s.GarbleDotProduct([]int64{128}); err == nil {
		t.Fatal("out-of-range signed value accepted")
	}
	if _, err := s.GarbleDotProduct(nil); err == nil {
		t.Fatal("empty vector accepted")
	}
	u := sim(t, Config{Width: 8})
	if _, err := u.GarbleDotProduct([]int64{-1}); err == nil {
		t.Fatal("negative unsigned value accepted")
	}
	run, err := u.GarbleDotProduct([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateDotProduct(u.Config().Params, u.Circuit(), run, []int64{1}, 8, false); err == nil {
		t.Fatal("vector length mismatch accepted")
	}
	if _, err := EvaluateDotProduct(u.Config().Params, u.Circuit(), run, []int64{1, 300}, 8, false); err == nil {
		t.Fatal("out-of-range evaluator value accepted")
	}
}

func TestStatsCycleAccounting(t *testing.T) {
	s := sim(t, Config{Width: 8})
	const m = 10
	x := make([]int64, m)
	for i := range x {
		x[i] = int64(i)
	}
	run, err := s.GarbleDotProduct(x)
	if err != nil {
		t.Fatal(err)
	}
	st := run.Stats
	sch := s.Schedule()
	if st.MACs != m {
		t.Fatalf("MACs = %d", st.MACs)
	}
	wantCycles := sch.TotalCycles(m)
	if st.Cycles != wantCycles {
		t.Fatalf("cycles = %d, want %d", st.Cycles, wantCycles)
	}
	if st.Stages != wantCycles/3 {
		t.Fatalf("stages = %d", st.Stages)
	}
	if st.TablesScheduled != uint64(sch.TablesPerStage())*st.Stages {
		t.Fatalf("scheduled tables = %d", st.TablesScheduled)
	}
	if st.TablesGarbled == 0 || st.TableBytes != st.TablesGarbled*2*16 {
		t.Fatalf("functional tables = %d bytes = %d", st.TablesGarbled, st.TableBytes)
	}
	if st.CoreUtilization <= 0.9 || st.CoreUtilization > 1 {
		t.Fatalf("utilisation = %v", st.CoreUtilization)
	}
	if st.ModeledTime != s.Config().Device.CyclesToDuration(st.Cycles) {
		t.Fatalf("modelled time = %v", st.ModeledTime)
	}
	if st.PCIeTime <= 0 {
		t.Fatal("PCIe time not modelled")
	}
	if st.RNGBitsDrawn == 0 {
		t.Fatal("RNG accounting missing")
	}
}

func TestB8UtilizationIsFull(t *testing.T) {
	// b=8 has zero idle slots, so steady-state utilisation is 1.
	s := sim(t, Config{Width: 8})
	run, err := s.GarbleDotProduct([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if run.Stats.CoreUtilization != 1 {
		t.Fatalf("b=8 utilisation = %v, want 1", run.Stats.CoreUtilization)
	}
	if run.Stats.IdleSlots != 0 {
		t.Fatalf("b=8 idle slots = %d", run.Stats.IdleSlots)
	}
}

func TestMatMulStatsFormula(t *testing.T) {
	// §4.3: 1 product per 3·M·N·P·b cycles on one MAC unit
	// (steady state; the model adds pipeline fill per element).
	s := sim(t, Config{Width: 8})
	n, m, p := 4, 16, 5
	st, err := s.MatMulStats(n, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.MACs != uint64(n*m*p) {
		t.Fatalf("MACs = %d, want %d", st.MACs, n*m*p)
	}
	steady := uint64(3 * m * n * p * 8)
	if st.Cycles < steady {
		t.Fatalf("cycles %d below steady-state bound %d", st.Cycles, steady)
	}
	// Fill overhead is bounded by latency per element.
	fill := uint64(n*p) * uint64(s.Schedule().LatencyCycles())
	if st.Cycles > steady+fill {
		t.Fatalf("cycles %d exceed steady+fill bound %d", st.Cycles, steady+fill)
	}
}

func TestMatMulStatsParallelScaling(t *testing.T) {
	one := sim(t, Config{Width: 8, MACUnits: 1})
	four := sim(t, Config{Width: 8, MACUnits: 4})
	s1, err := one.MatMulStats(8, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := four.MatMulStats(8, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s4.Cycles*4 != s1.Cycles {
		t.Fatalf("4 units: %d cycles, 1 unit: %d — expected 4× speedup on a divisible workload", s4.Cycles, s1.Cycles)
	}
	if _, err := one.MatMulStats(0, 1, 1); err == nil {
		t.Fatal("degenerate shape accepted")
	}
}

func TestResourcesScaleWithUnits(t *testing.T) {
	s1 := sim(t, Config{Width: 32, MACUnits: 1})
	s2 := sim(t, Config{Width: 32, MACUnits: 2})
	r1, err := s1.Resources()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Resources()
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1.Scale(2) {
		t.Fatalf("resources %+v vs %+v", r1, r2)
	}
}

func TestSchemesInteroperateInSimulator(t *testing.T) {
	for _, scheme := range []gc.Scheme{gc.HalfGates{}, gc.GRR3{}, gc.FourRow{}} {
		p := gc.DefaultParams()
		p.Scheme = scheme
		s := sim(t, Config{Width: 8, Params: p})
		run, err := s.GarbleDotProduct([]int64{5, 7})
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateDotProduct(p, s.Circuit(), run, []int64{3, 11}, 8, false)
		if err != nil {
			t.Fatal(err)
		}
		if got != 5*3+7*11 {
			t.Fatalf("%s: dot product = %d", scheme.Name(), got)
		}
	}
}

func TestSerialModeRoundTrip(t *testing.T) {
	s := sim(t, Config{Width: 8, AccWidth: 16})
	x := []int64{13, 7, 200}
	a := []int64{11, 15, 3}
	want := int64(13*11 + 7*15 + 200*3)
	run, err := s.GarbleDotProductSerial(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateDotProductSerial(s.Config().Params, run, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("serial-mode dot product = %d, want %d", got, want)
	}
	// Serial mode: scheduled and garbled table counts coincide, at
	// 2b tables per stage.
	if run.Stats.TablesScheduled != run.Stats.TablesGarbled {
		t.Fatalf("serial counts diverge: %d vs %d", run.Stats.TablesScheduled, run.Stats.TablesGarbled)
	}
	wantTables := uint64(2*8) * run.Stats.Stages
	if run.Stats.TablesGarbled != wantTables {
		t.Fatalf("tables = %d, want %d", run.Stats.TablesGarbled, wantTables)
	}
	if run.Stats.Cycles != run.Stats.Stages*3 {
		t.Fatalf("cycles = %d for %d stages", run.Stats.Cycles, run.Stats.Stages)
	}
}

func TestSerialModeValidation(t *testing.T) {
	signed := sim(t, Config{Width: 8, Signed: true})
	if _, err := signed.GarbleDotProductSerial([]int64{-200}); err == nil {
		t.Fatal("out-of-range signed value accepted")
	}
	s := sim(t, Config{Width: 8})
	if _, err := s.GarbleDotProductSerial(nil); err == nil {
		t.Fatal("empty vector accepted")
	}
	if _, err := s.GarbleDotProductSerial([]int64{300}); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	run, err := s.GarbleDotProductSerial([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateDotProductSerial(s.Config().Params, run, []int64{1}); err == nil {
		t.Fatal("vector length mismatch accepted")
	}
	if _, err := EvaluateDotProductSerial(s.Config().Params, run, []int64{1, 300}); err == nil {
		t.Fatal("out-of-range evaluator value accepted")
	}
}

func TestSimulatorWithROEntropySource(t *testing.T) {
	// The hardware-model entropy source plugs straight in: the
	// simulated ring-oscillator array is an io.Reader.
	s := sim(t, Config{Width: 8, AccWidth: 20, Rand: rng.MustNew(rng.Config{Seed: 9})})
	run, err := s.GarbleDotProduct([]int64{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateDotProduct(s.Config().Params, s.Circuit(), run, []int64{7, 3}, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5*7+9*3 {
		t.Fatalf("RO-entropy run = %d", got)
	}
}

func TestSerialModeSignedRoundTrip(t *testing.T) {
	s := sim(t, Config{Width: 8, AccWidth: 16, Signed: true})
	x := []int64{-13, 7, 100}
	a := []int64{11, -15, -3}
	want := int64(-13*11 + 7*-15 + 100*-3)
	run, err := s.GarbleDotProductSerial(x)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Signed {
		t.Fatal("run not marked signed")
	}
	got, err := EvaluateDotProductSerial(s.Config().Params, run, a)
	if err != nil {
		t.Fatal(err)
	}
	mask := int64(1)<<16 - 1
	if got&mask != want&mask {
		t.Fatalf("signed serial-mode dot product = %d, want %d (mod 2^16)", got, want)
	}
	// Signed serial: 2b+2 tables per stage.
	if run.Stats.TablesGarbled != uint64(2*8+2)*run.Stats.Stages {
		t.Fatalf("tables = %d over %d stages", run.Stats.TablesGarbled, run.Stats.Stages)
	}
}
