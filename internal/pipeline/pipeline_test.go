package pipeline

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamInOrder checks every yielded item reaches the consumer in
// yield order.
func TestStreamInOrder(t *testing.T) {
	var got []int
	err := Stream(context.Background(), 4,
		func(yield func(int) bool) error {
			for i := 0; i < 100; i++ {
				if !yield(i) {
					return errors.New("aborted")
				}
			}
			return nil
		},
		func(v int) error {
			got = append(got, v)
			return nil
		})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if len(got) != 100 {
		t.Fatalf("consumed %d items, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
}

// TestStreamBoundedBuffering proves the producer cannot run more than
// depth+1 items ahead of the consumer — the O(chunk) claim.
func TestStreamBoundedBuffering(t *testing.T) {
	const depth = 2
	var produced, consumed atomic.Int64
	var worst int64
	err := Stream(context.Background(), depth,
		func(yield func(int) bool) error {
			for i := 0; i < 50; i++ {
				produced.Add(1)
				if !yield(i) {
					return errors.New("aborted")
				}
			}
			return nil
		},
		func(v int) error {
			// The producer may be at most depth (channel) + 1 (blocked
			// in yield) + 1 (counted before yield) ahead of us.
			if lead := produced.Load() - consumed.Load(); lead > worst {
				worst = lead
			}
			consumed.Add(1)
			time.Sleep(time.Millisecond) // let the producer sprint ahead
			return nil
		})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if worst > depth+2 {
		t.Fatalf("producer ran %d items ahead, want <= %d", worst, depth+2)
	}
}

// TestStreamConsumerError checks a consumer failure cancels the
// producer promptly and is the error Stream returns.
func TestStreamConsumerError(t *testing.T) {
	sentinel := errors.New("wire broke")
	producerDone := make(chan struct{})
	err := Stream(context.Background(), 1,
		func(yield func(int) bool) error {
			defer close(producerDone)
			for i := 0; ; i++ {
				if !yield(i) {
					return errors.New("aborted")
				}
			}
		},
		func(v int) error {
			if v == 3 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Stream = %v, want %v", err, sentinel)
	}
	select {
	case <-producerDone:
	default:
		t.Fatal("producer still running after Stream returned")
	}
}

// TestStreamProducerError checks a producer failure reaches the caller
// after in-flight items are consumed.
func TestStreamProducerError(t *testing.T) {
	sentinel := errors.New("garble failed")
	var got []int
	err := Stream(context.Background(), 4,
		func(yield func(int) bool) error {
			yield(1)
			yield(2)
			return sentinel
		},
		func(v int) error {
			got = append(got, v)
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Stream = %v, want %v", err, sentinel)
	}
	if len(got) != 2 {
		t.Fatalf("consumed %d items before the failure surfaced, want 2", len(got))
	}
}

// TestStreamProducerPanic checks a producer panic is contained and
// surfaced as *PanicError with a stack.
func TestStreamProducerPanic(t *testing.T) {
	err := Stream(context.Background(), 1,
		func(yield func(int) bool) error {
			yield(1)
			panic("boom")
		},
		func(v int) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Stream = %v, want *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Fatalf("panic value = %v, want boom", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "pipeline") {
		t.Fatalf("stack missing producer frames:\n%s", pe.Stack)
	}
}

// TestStreamConsumerPanicReapsProducer checks a consumer panic still
// propagates — the protocol layer's containment relies on that — but
// not before the producer goroutine is cancelled and reaped.
func TestStreamConsumerPanicReapsProducer(t *testing.T) {
	producerDone := make(chan struct{})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("consumer panic did not propagate")
		}
		select {
		case <-producerDone:
		default:
			t.Fatal("producer leaked past the consumer panic")
		}
	}()
	_ = Stream(context.Background(), 1,
		func(yield func(int) bool) error {
			defer close(producerDone)
			for i := 0; ; i++ {
				if !yield(i) {
					return errors.New("aborted")
				}
			}
		},
		func(v int) error { panic("consumer boom") })
}

// TestStreamContextCancel checks cancellation unblocks a producer
// stuck on a full channel and a consumer-side Stream call, returning
// the context error.
func TestStreamContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := Stream(ctx, 1,
		func(yield func(int) bool) error {
			for i := 0; ; i++ {
				if !yield(i) {
					return ctx.Err()
				}
			}
		},
		func(v int) error {
			<-ctx.Done() // a consumer wedged until cancellation
			return ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream = %v, want context.Canceled", err)
	}
}

// TestStreamNoGoroutineLeak runs the abort paths many times and checks
// the goroutine count returns to baseline.
func TestStreamNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	sentinel := errors.New("abort")
	for i := 0; i < 200; i++ {
		_ = Stream(context.Background(), 2,
			func(yield func(int) bool) error {
				for j := 0; ; j++ {
					if !yield(j) {
						return errors.New("aborted")
					}
				}
			},
			func(v int) error {
				if v == 1 {
					return sentinel
				}
				return nil
			})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
