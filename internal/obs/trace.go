package obs

import (
	"fmt"
	"sync"
	"time"
)

// Tracer records span-based phase traces of recent protocol sessions
// in a fixed-capacity ring: always-on, bounded-memory flight
// recording, queryable over /debug/sessions while the daemon runs.
//
// Timing is monotonic: a SessionTrace anchors time.Now() once (Go wall
// times carry a monotonic reading) and every span start/end is a
// time.Since offset from that anchor, so durations are immune to wall
// clock steps.
type Tracer struct {
	mu     sync.Mutex
	nextID uint64
	ring   []*SessionTrace
	cap    int
}

// DefaultTraceCapacity is the ring size used by NewTracer(0).
const DefaultTraceCapacity = 64

// NewTracer creates a tracer retaining the last capacity sessions
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// StartSession opens a new session trace tagged with an ID like
// "s-000042" and the peer's address. Nil-safe: a nil tracer returns a
// nil trace whose methods are all no-ops.
func (t *Tracer) StartSession(kind, peer string) *SessionTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	st := &SessionTrace{
		id:    fmt.Sprintf("s-%06d", t.nextID),
		kind:  kind,
		peer:  peer,
		start: time.Now(),
		attrs: make(map[string]string),
	}
	if len(t.ring) == t.cap {
		copy(t.ring, t.ring[1:])
		t.ring[len(t.ring)-1] = st
	} else {
		t.ring = append(t.ring, st)
	}
	t.mu.Unlock()
	return st
}

// SessionTrace is one protocol session's phase record.
type SessionTrace struct {
	mu    sync.Mutex
	id    string
	kind  string
	peer  string
	start time.Time
	end   time.Duration
	done  bool
	errs  string
	attrs map[string]string
	spans []*Span
}

// ID returns the session's assigned identifier ("" on a nil trace).
func (s *SessionTrace) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// StartSpan opens a named phase span (handshake, ot_setup,
// round_garble, decode, ...). Spans may overlap; End closes one.
func (s *SessionTrace) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	sp := &Span{parent: s, name: name}
	s.mu.Lock()
	sp.start = time.Since(s.start)
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
	return sp
}

// SetAttr attaches a key/value annotation (rows, cols, bytes, ...).
func (s *SessionTrace) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs[key] = value
	s.mu.Unlock()
}

// Finish closes the session, recording the terminal error if any.
// It returns the total monotonic session duration.
func (s *SessionTrace) Finish(err error) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		s.end = time.Since(s.start)
		s.done = true
		if err != nil {
			s.errs = err.Error()
		}
	}
	return s.end
}

// Span is one timed phase within a session.
type Span struct {
	parent *SessionTrace
	name   string
	start  time.Duration
	dur    time.Duration
	done   bool
}

// End closes the span and returns its monotonic duration.
func (sp *Span) End() time.Duration {
	if sp == nil {
		return 0
	}
	s := sp.parent
	s.mu.Lock()
	defer s.mu.Unlock()
	if !sp.done {
		sp.dur = time.Since(s.start) - sp.start
		sp.done = true
	}
	return sp.dur
}

// SpanSnapshot is the JSON form of one span.
type SpanSnapshot struct {
	Name string `json:"name"`
	// StartUS is the span's start offset from session start, µs.
	StartUS int64 `json:"start_us"`
	// DurationUS is the span's monotonic duration, µs (-1 if still
	// open when snapshotted).
	DurationUS int64 `json:"duration_us"`
}

// SessionSnapshot is the JSON form of one session trace.
type SessionSnapshot struct {
	ID    string    `json:"id"`
	Kind  string    `json:"kind"`
	Peer  string    `json:"peer,omitempty"`
	Start time.Time `json:"start"`
	// DurationUS is the total session duration, µs (-1 if in flight).
	DurationUS int64             `json:"duration_us"`
	Done       bool              `json:"done"`
	Err        string            `json:"err,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Spans      []SpanSnapshot    `json:"spans"`
}

// SpanCount returns how many of the snapshot's spans carry name —
// multiplexed sessions repeat per-request spans (rounds, decode) under
// one trace, and assertions about amortization ("exactly one ot_setup
// for eight requests") are counts over span names.
func (s SessionSnapshot) SpanCount(name string) int {
	n := 0
	for _, sp := range s.Spans {
		if sp.Name == name {
			n++
		}
	}
	return n
}

func (s *SessionTrace) snapshot() SessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SessionSnapshot{
		ID: s.id, Kind: s.kind, Peer: s.peer, Start: s.start,
		DurationUS: -1, Done: s.done, Err: s.errs,
	}
	if s.done {
		snap.DurationUS = s.end.Microseconds()
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	snap.Spans = make([]SpanSnapshot, len(s.spans))
	for i, sp := range s.spans {
		ss := SpanSnapshot{Name: sp.name, StartUS: sp.start.Microseconds(), DurationUS: -1}
		if sp.done {
			ss.DurationUS = sp.dur.Microseconds()
		}
		snap.Spans[i] = ss
	}
	return snap
}

// Recent returns snapshots of up to n recent sessions, newest first
// (all retained sessions if n <= 0).
func (t *Tracer) Recent(n int) []SessionSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := append([]*SessionTrace(nil), t.ring...)
	t.mu.Unlock()
	if n <= 0 || n > len(traces) {
		n = len(traces)
	}
	out := make([]SessionSnapshot, 0, n)
	for i := len(traces) - 1; i >= len(traces)-n; i-- {
		out = append(out, traces[i].snapshot())
	}
	return out
}
