package label

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestXorSelfIsZero(t *testing.T) {
	l := MustRandom()
	if got := l.Xor(l); !got.IsZero() {
		t.Fatalf("l ⊕ l = %v, want zero", got)
	}
}

func TestXorCommutesAndAssociates(t *testing.T) {
	f := func(a, b, c Label) bool {
		if a.Xor(b) != b.Xor(a) {
			return false
		}
		return a.Xor(b).Xor(c) == a.Xor(b.Xor(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorZeroIsIdentity(t *testing.T) {
	f := func(a Label) bool { return a.Xor(Zero) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorIntoMatchesXor(t *testing.T) {
	f := func(a, b Label) bool {
		var dst Label
		a.XorInto(&b, &dst)
		return dst == a.Xor(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorIntoAliasedOperands(t *testing.T) {
	a, b := MustRandom(), MustRandom()
	want := a.Xor(b)
	a.XorInto(&b, &a) // dst aliases receiver
	if a != want {
		t.Fatalf("aliased XorInto = %v, want %v", a, want)
	}
}

func TestLSBMatchesLowBit(t *testing.T) {
	f := func(a Label) bool {
		want := a[0]&1 == 1
		return a.LSB() == want && (a.SelectBit() == 1) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleIsLinear(t *testing.T) {
	// Doubling in GF(2^128) is linear: 2(a ⊕ b) = 2a ⊕ 2b.
	f := func(a, b Label) bool {
		return a.Xor(b).Double() == a.Double().Xor(b.Double())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleKnownVector(t *testing.T) {
	// 2·x where x has only the top bit set must fold in the reduction
	// polynomial 0x87.
	var x Label
	x[0] = 0x80 // big-endian top bit
	got := x.Double()
	var want Label
	want[15] = 0x87
	if got != want {
		t.Fatalf("Double(msb) = %v, want %v", got, want)
	}
}

func TestDoubleShiftsWithoutCarry(t *testing.T) {
	var x Label
	binary.BigEndian.PutUint64(x[8:16], 1)
	got := x.Double()
	var want Label
	binary.BigEndian.PutUint64(want[8:16], 2)
	if got != want {
		t.Fatalf("Double(1) = %v, want %v", got, want)
	}
}

func TestQuadrupleIsDoubleDouble(t *testing.T) {
	f := func(a Label) bool { return a.Quadruple() == a.Double().Double() }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleSeparatesFromIdentity(t *testing.T) {
	// For nonzero labels, 2a ≠ a (2-1 = 1 is not a root of the field).
	f := func(a Label) bool {
		if a.IsZero() {
			return a.Double().IsZero()
		}
		return a.Double() != a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaLSBAlwaysSet(t *testing.T) {
	for i := 0; i < 64; i++ {
		d := MustNewDelta()
		if !d.Label().LSB() {
			t.Fatalf("delta %v has clear select bit", d.Label())
		}
	}
}

func TestDeltaFromLabelForcesLSB(t *testing.T) {
	f := func(a Label) bool { return DeltaFromLabel(a).Label().LSB() }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairCorrelation(t *testing.T) {
	d := MustNewDelta()
	p := NewPair(MustRandom(), d)
	if !p.Consistent(d) {
		t.Fatal("pair does not honour free-XOR correlation")
	}
	if p.False.LSB() == p.True.LSB() {
		t.Fatal("paired labels share a select bit; point-and-permute broken")
	}
}

func TestPairGet(t *testing.T) {
	d := MustNewDelta()
	p := NewPair(MustRandom(), d)
	if p.Get(false) != p.False || p.Get(true) != p.True {
		t.Fatal("Get returned wrong label")
	}
}

func TestFlipIsInvolution(t *testing.T) {
	d := MustNewDelta()
	f := func(a Label) bool { return d.Flip(d.Flip(a)) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorHomomorphism(t *testing.T) {
	// Free XOR soundness at the label-algebra level: for wires with
	// labels A⁰, B⁰ and any truth values u, v the label A^u ⊕ B^v equals
	// (A⁰ ⊕ B⁰) ⊕ (u⊕v)·Δ — i.e. XOR of labels is XOR of values.
	d := MustNewDelta()
	a := NewPair(MustRandom(), d)
	b := NewPair(MustRandom(), d)
	c := NewPair(a.False.Xor(b.False), d)
	for _, u := range []bool{false, true} {
		for _, v := range []bool{false, true} {
			got := a.Get(u).Xor(b.Get(v))
			want := c.Get(u != v)
			if got != want {
				t.Fatalf("u=%v v=%v: label %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestRandomDistinct(t *testing.T) {
	seen := make(map[Label]bool)
	for i := 0; i < 128; i++ {
		l, err := Random(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if seen[l] {
			t.Fatalf("duplicate random label %v", l)
		}
		seen[l] = true
	}
}

type failReader struct{}

func (failReader) Read([]byte) (int, error) { return 0, errors.New("entropy exhausted") }

func TestRandomPropagatesReaderError(t *testing.T) {
	if _, err := Random(failReader{}); err == nil {
		t.Fatal("Random with failing reader returned nil error")
	}
	if _, err := NewDelta(failReader{}); err == nil {
		t.Fatal("NewDelta with failing reader returned nil error")
	}
}

type shortReader struct{ n int }

func (r *shortReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	n := r.n
	if n > len(p) {
		n = len(p)
	}
	r.n -= n
	return n, nil
}

func TestRandomShortRead(t *testing.T) {
	if _, err := Random(&shortReader{n: 3}); err == nil {
		t.Fatal("Random with short reader returned nil error")
	}
}

func TestStringIsHex(t *testing.T) {
	var l Label
	l[0] = 0xab
	l[15] = 0x01
	got := l.String()
	if len(got) != 32 || got[:2] != "ab" || got[30:] != "01" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRandomPairUsesDelta(t *testing.T) {
	d := MustNewDelta()
	p, err := RandomPair(rand.Reader, d)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Consistent(d) {
		t.Fatal("RandomPair not consistent with delta")
	}
}

func TestLabelValueSemantics(t *testing.T) {
	a := MustRandom()
	b := a
	b[0] ^= 0xff
	if bytes.Equal(a[:], b[:]) {
		t.Fatal("label mutation aliased underlying storage")
	}
}
