// Package seqgc orchestrates sequential garbled circuits in the
// TinyGarble style the paper builds on (§2.2 reference [16], §3): the
// same compact netlist is garbled round after round with fresh labels,
// with D-flip-flop state carried forward as label material on both
// sides — the garbler keeps the FALSE labels of the state-out wires,
// the evaluator keeps its active labels, and neither retransmits
// state.
//
// The sessions enforce the bookkeeping that makes multi-round garbling
// safe: strictly increasing non-overlapping tweak ranges, matching
// round counters, and state continuity.
package seqgc

import (
	"fmt"
	"io"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
)

// GarblerSession drives the garbler side across rounds.
type GarblerSession struct {
	params  gc.Params
	ckt     *circuit.Circuit
	garbler *gc.Garbler
	state0  []label.Label
	tweak   uint64
	round   int
}

// NewGarblerSession creates a session for the circuit with a fresh
// free-XOR offset drawn from rnd.
func NewGarblerSession(params gc.Params, rnd io.Reader, ckt *circuit.Circuit) (*GarblerSession, error) {
	if ckt == nil {
		return nil, fmt.Errorf("seqgc: nil circuit")
	}
	g, err := gc.NewGarbler(params, rnd)
	if err != nil {
		return nil, err
	}
	return &GarblerSession{params: params, ckt: ckt, garbler: g}, nil
}

// Circuit returns the netlist garbled each round.
func (s *GarblerSession) Circuit() *circuit.Circuit { return s.ckt }

// Round returns the number of completed rounds.
func (s *GarblerSession) Round() int { return s.round }

// Delta exposes the session's free-XOR offset for correlated-OT
// integration; it must never reach the evaluator.
func (s *GarblerSession) Delta() label.Delta { return s.garbler.Delta() }

// NextRound garbles one round with the given garbler inputs and
// advances the state and tweak bookkeeping.
func (s *GarblerSession) NextRound(garblerInputs []bool) (*gc.Garbled, error) {
	return s.NextRoundWithEvalLabels(garblerInputs, nil)
}

// NextRoundWithEvalLabels garbles one round using externally chosen
// FALSE labels for the evaluator input wires (from correlated OT);
// nil draws fresh labels as usual.
func (s *GarblerSession) NextRoundWithEvalLabels(garblerInputs []bool, evalWire0 []label.Label) (*gc.Garbled, error) {
	gb, err := s.garbler.Garble(s.ckt, gc.GarbleOptions{
		GarblerInputs: garblerInputs,
		State0:        s.state0,
		TweakBase:     s.tweak,
		EvalWire0:     evalWire0,
	})
	if err != nil {
		return nil, fmt.Errorf("seqgc: round %d: %w", s.round, err)
	}
	s.state0 = gb.StateOut0
	s.tweak = gb.NextTweak
	s.round++
	return gb, nil
}

// Reset clears the accumulated state so the next round starts a new
// sequential computation (e.g. the next output element of a matrix
// product). Tweaks keep increasing — they must never repeat under one
// free-XOR offset.
func (s *GarblerSession) Reset() { s.state0 = nil }

// EvaluatorSession drives the evaluator side across rounds.
type EvaluatorSession struct {
	params   gc.Params
	ckt      *circuit.Circuit
	stateAct []label.Label
	round    int
}

// NewEvaluatorSession creates the evaluator-side session.
func NewEvaluatorSession(params gc.Params, ckt *circuit.Circuit) (*EvaluatorSession, error) {
	if ckt == nil {
		return nil, fmt.Errorf("seqgc: nil circuit")
	}
	return &EvaluatorSession{params: params, ckt: ckt}, nil
}

// Round returns the number of completed rounds.
func (s *EvaluatorSession) Round() int { return s.round }

// NextRound evaluates one round with the received material and the
// evaluator's active input labels (from OT).
func (s *EvaluatorSession) NextRound(m *gc.Material, evalActive []label.Label) (*gc.EvalResult, error) {
	res, err := gc.Evaluate(s.params, s.ckt, m, evalActive, s.stateAct)
	if err != nil {
		return nil, fmt.Errorf("seqgc: round %d: %w", s.round, err)
	}
	s.stateAct = res.StateActive
	s.round++
	return res, nil
}

// Reset clears carried state for a new sequential computation.
func (s *EvaluatorSession) Reset() { s.stateAct = nil }
