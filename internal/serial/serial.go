// Package serial implements the bit-serial MAC datapath of Fig. 2 as
// a real sequential circuit: the netlist the MAXelerator FSM embeds,
// garbled once per *stage* rather than once per MAC.
//
// Dataflow (unsigned; the signed conditioning of §4.3 is applied
// combinationally by the callers in this repository):
//
//   - The model word x (b bits) is held constant; the client word a
//     streams in one bit per stage, LSB first, followed by zeros that
//     flush the pipeline.
//   - Segment-1 core m computes the stream
//     s_m = (x[2m] + 2·x[2m+1])·a with two partial-product ANDs and
//     one serial-adder cell (1 AND + 4 XOR, carry in a state wire):
//     s_m[n] = x[2m]∧a[n] + x[2m+1]∧a[n−1] + carry.
//   - Stream m is delayed by 2m stages (pure shift-register state), so
//     at stage t every delayed stream contributes weight 2^t, and a
//     log₂(b/2)-level tree of serial adders sums them into the product
//     stream p[t].
//   - A rotating accumulator register of length StagesPerMAC adds the
//     product stream serially (1 AND per stage) and carries its value
//     into the next MAC, giving acc ← acc + x·a per MAC exactly as
//     the sequential-GC accumulator of §4.
//
// Faithfulness notes. The per-stage garbling cost is exactly 2b AND
// tables — the paper's 2b+8 minus the 8 signed-support ops — and the
// state layout (carries, delay lines, accumulator) is the register
// structure Table 1's flip-flop count grows with. One honest
// deviation is documented in EXPERIMENTS.md: producing the *full*
// 2b-bit product serially requires 2b+2 stages per MAC, whereas the
// paper's §4.3 throughput of one MAC per b stages can only cover b
// product bits per window; this package chooses full precision.
package serial

import (
	"fmt"

	"maxelerator/internal/circuit"
)

// Layout describes a compiled bit-serial MAC unit.
type Layout struct {
	// Width is the operand bit-width b.
	Width int
	// StagesPerMAC is the number of garbled stages per MAC round
	// (2b + 2: b bits of a, then flush).
	StagesPerMAC int
	// ANDsPerStage is the garbled-table count per stage (2b).
	ANDsPerStage int
	// StateBits is the total sequential state (carries + delays +
	// accumulator), the FF pressure of Table 1.
	StateBits int
	// AccLen is the accumulator register length; the accumulator value
	// is mod 2^AccLen (with an end-around carry only on overflow,
	// which callers must avoid).
	AccLen int
}

// MAC compiles the bit-serial MAC unit for bit-width b (even, ≥ 4,
// power of two for the balanced tree). The circuit is garbled once
// per stage:
//
//   - garbler inputs: the b bits of x (same values every stage of a
//     round; labels are refreshed per stage as sequential GC requires)
//   - evaluator inputs: one bit of a (or 0 during flush stages)
//   - outputs: the accumulator bit updated this stage — collecting the
//     outputs of one round's StagesPerMAC stages yields the full
//     accumulator value, LSB first
func MAC(b int) (*circuit.Circuit, Layout, error) {
	if b < 4 || b%2 != 0 || b&(b-1) != 0 {
		return nil, Layout{}, fmt.Errorf("serial: bit-width %d must be a power of two ≥ 4", b)
	}
	L := 2*b + 2
	bd := circuit.NewBuilder()
	x := bd.GarblerInputs(b)
	aBit := bd.EvaluatorInputs(1)[0]

	// State allocation order (all state reads happen before the
	// corresponding StateOuts writes are routed):
	//   aPrev                      1
	//   seg1 carries               b/2
	//   delay lines                Σ 2m = (b/2)(b/2−1)
	//   tree carries               b/2 − 1
	//   acc register               L
	//   acc carry                  1
	half := b / 2
	aPrev := bd.StateInputs(1)[0]
	seg1Carry := bd.StateInputs(half)
	delayLen := half * (half - 1)
	delays := bd.StateInputs(delayLen)
	treeCarry := bd.StateInputs(half - 1)
	acc := bd.StateInputs(L)
	accCarry := bd.StateInputs(1)[0]

	// serialAdd is the 1-AND 4-XOR serial full-adder cell: it returns
	// the sum bit and the next-carry wire.
	serialAdd := func(p, q, c int) (sum, carry int) {
		pc := bd.XOR(p, c)
		qc := bd.XOR(q, c)
		sum = bd.XOR(p, qc)
		carry = bd.XOR(c, bd.AND(pc, qc))
		return sum, carry
	}

	var nextState []int                 // accumulated in StateInputs order
	nextState = append(nextState, aBit) // aPrev' = current a bit

	// Segment 1: b/2 MUX_ADD cores.
	streams := make([]int, half)
	for m := 0; m < half; m++ {
		pp1 := bd.AND(x[2*m], aBit)
		pp2 := bd.AND(x[2*m+1], aPrev)
		sum, carry := serialAdd(pp1, pp2, seg1Carry[m])
		streams[m] = sum
		nextState = append(nextState, carry)
	}

	// Delay lines: stream m is delayed 2m stages. Delay register d of
	// stream m shifts toward its tail; the aligned tap is the last
	// register (or the stream itself for m = 0).
	aligned := make([]int, half)
	offset := 0
	for m := 0; m < half; m++ {
		dl := 2 * m
		if dl == 0 {
			aligned[m] = streams[m]
			continue
		}
		regs := delays[offset : offset+dl]
		offset += dl
		// Shift: regs[0]' = stream input, regs[i]' = regs[i−1].
		nextState = append(nextState, streams[m])
		for i := 1; i < dl; i++ {
			nextState = append(nextState, regs[i-1])
		}
		aligned[m] = regs[dl-1]
	}

	// Segment 2: balanced tree of serial adders (b/2 − 1 cells).
	level := aligned
	carryIdx := 0
	for len(level) > 1 {
		next := make([]int, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			sum, carry := serialAdd(level[i], level[i+1], treeCarry[carryIdx])
			nextState = append(nextState, carry)
			carryIdx++
			next = append(next, sum)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	product := level[0]

	// Accumulator: rotating register of length L; the head bit is
	// updated with the product bit and written to the tail, so one
	// round's L stages perform one full rotation.
	newAccBit, newAccCarry := serialAdd(acc[0], product, accCarry)
	for i := 1; i < L; i++ {
		nextState = append(nextState, acc[i])
	}
	nextState = append(nextState, newAccBit)
	nextState = append(nextState, newAccCarry)

	bd.StateOuts(nextState...)
	bd.Outputs(newAccBit)

	ckt, err := bd.Build()
	if err != nil {
		return nil, Layout{}, fmt.Errorf("serial: building MAC: %w", err)
	}
	layout := Layout{
		Width:        b,
		StagesPerMAC: L,
		ANDsPerStage: ckt.Stats().ANDs,
		StateBits:    ckt.NState,
		AccLen:       L,
	}
	return ckt, layout, nil
}

// MustMAC compiles the datapath and panics on a bad width.
func MustMAC(b int) (*circuit.Circuit, Layout) {
	c, l, err := MAC(b)
	if err != nil {
		panic(err)
	}
	return c, l
}

// StageInputs returns the evaluator bit for stage n of a round
// streaming the value a: bit n of a for n < b, zero during flush.
func (l Layout) StageInputs(a uint64, n int) []bool {
	if n < l.Width {
		return []bool{a>>uint(n)&1 == 1}
	}
	return []bool{false}
}

// RunPlain executes the datapath in plaintext for a sequence of
// (x, a) MAC rounds and returns the final accumulator value, checking
// the circuit semantics without garbling. State persists across
// rounds; the accumulator therefore holds Σ x·a mod 2^AccLen.
func RunPlain(ckt *circuit.Circuit, l Layout, xs, as []uint64) (uint64, error) {
	if len(xs) != len(as) {
		return 0, fmt.Errorf("serial: %d x values vs %d a values", len(xs), len(as))
	}
	var state []bool
	var lastRound []bool
	for r := range xs {
		if xs[r] >= 1<<uint(l.Width) || as[r] >= 1<<uint(l.Width) {
			return 0, fmt.Errorf("serial: round %d operands exceed %d bits", r, l.Width)
		}
		xBits := circuit.Uint64ToBits(xs[r], l.Width)
		lastRound = lastRound[:0]
		for n := 0; n < l.StagesPerMAC; n++ {
			out, next, err := ckt.EvalRound(xBits, l.StageInputs(as[r], n), state)
			if err != nil {
				return 0, err
			}
			state = next
			lastRound = append(lastRound, out[0])
		}
	}
	return circuit.BitsToUint64(lastRound), nil
}
