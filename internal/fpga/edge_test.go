package fpga

import (
	"math"
	"testing"
	"time"
)

// Edge coverage for the resource and PCIe models at the points the
// capacity-model calibrator's analytic fallback (internal/capmodel)
// relies on: bit-width interpolation outside the published {8, 16, 32}
// calibration set — including extrapolation past both ends — and PCIe
// drain saturation.

// TestMACUnitResourcesEdgeWidths walks the bit-width axis from below
// the calibrated range (b=2, where naive extrapolation would drive
// LUTRAM to zero) to far above it (b=128), table-driven, asserting
// every resource stays positive and monotone nondecreasing in b —
// Table 1's linearity claim, which the interpolator must not break
// between or beyond the published widths.
func TestMACUnitResourcesEdgeWidths(t *testing.T) {
	widths := []int{2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 64, 128}
	var prev Resources
	for i, b := range widths {
		r, err := MACUnitResources(b)
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if r.LUT < 1 || r.LUTRAM < 1 || r.FlipFlop < 1 {
			t.Fatalf("b=%d: non-positive resource %+v (extrapolation floor broken)", b, r)
		}
		if i > 0 {
			if r.LUT < prev.LUT || r.LUTRAM < prev.LUTRAM || r.FlipFlop < prev.FlipFlop {
				t.Fatalf("b=%d: resources %+v below b=%d's %+v (not monotone)", b, r, widths[i-1], prev)
			}
		}
		prev = r
	}
	// The low-end extrapolation floor must actually engage: at b=2 the
	// raw lerp of the 8→16 LUTRAM segment goes negative.
	r2, err := MACUnitResources(2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.LUTRAM != 1 {
		t.Errorf("b=2 LUTRAM = %d, want the 1-unit floor", r2.LUTRAM)
	}
}

// TestPCIeTransferTimeEdges: zero and negative volumes are free, and
// transfer time is strictly monotone in volume past that.
func TestPCIeTransferTimeEdges(t *testing.T) {
	l := DefaultPCIe
	if got := l.TransferTime(-100); got != 0 {
		t.Errorf("TransferTime(-100) = %v, want 0", got)
	}
	var prev time.Duration
	for _, n := range []int{1, 64, 4096, 1 << 20, 1 << 28} {
		got := l.TransferTime(n)
		if got <= prev {
			t.Fatalf("TransferTime(%d) = %v not above previous %v", n, got, prev)
		}
		prev = got
	}
}

// TestPCIeDrainSaturation: Utilization must cross 1.0 exactly at the
// link's sustained bandwidth and agree with SustainsThroughput on both
// sides — the capacity model's transfer-bound regime detector.
func TestPCIeDrainSaturation(t *testing.T) {
	l := PCIeLink{BandwidthMBps: 800, LatencyPerTransfer: 10 * time.Microsecond}
	cap := 800.0 * 1024 * 1024
	cases := []struct {
		name     string
		rate     float64
		wantU    float64
		sustains bool
	}{
		{"idle", 0, 0, true},
		{"negative clamps to idle", -5, 0, true},
		{"half load", cap / 2, 0.5, true},
		{"exactly saturated", cap, 1.0, true},
		{"past saturation", 2 * cap, 2.0, false},
	}
	for _, tc := range cases {
		if got := l.Utilization(tc.rate); math.Abs(got-tc.wantU) > 1e-12 {
			t.Errorf("%s: Utilization(%g) = %g, want %g", tc.name, tc.rate, got, tc.wantU)
		}
		if got := l.SustainsThroughput(tc.rate); got != tc.sustains {
			t.Errorf("%s: SustainsThroughput(%g) = %v, want %v", tc.name, tc.rate, got, tc.sustains)
		}
	}
	// Monotone in offered rate.
	var prev float64 = -1
	for _, r := range []float64{0, cap / 4, cap / 2, cap, 4 * cap} {
		u := l.Utilization(r)
		if u < prev {
			t.Fatalf("Utilization(%g) = %g below previous %g", r, u, prev)
		}
		prev = u
	}
	// A zero-bandwidth link cannot drain anything.
	dead := PCIeLink{BandwidthMBps: 0}
	if !math.IsInf(dead.Utilization(1), 1) {
		t.Error("zero-bandwidth link should report +Inf utilization under load")
	}
	if dead.Utilization(0) != 0 {
		t.Error("zero-bandwidth link at zero load should report 0")
	}
}
