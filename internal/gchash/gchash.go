// Package gchash implements the fixed-key block-cipher garbling hash of
// Bellare, Hoang, Keelveedhi and Rogaway ("Efficient Garbling from a
// Fixed-Key Blockcipher", IEEE S&P 2013), which MAXelerator instantiates
// with a single-stage AES core on the FPGA.
//
// The hash is H(x, T) = π(K) ⊕ K with K = 2x ⊕ T, where π is AES-128
// under a fixed public key and T is a per-gate unique tweak. The
// Davies–Meyer-style feed-forward makes H non-invertible even though π
// is a public permutation, and the GF(2^128) doubling of x breaks the
// symmetry between hash inputs that share a tweak.
//
// The package also provides a SHA-256-based hash with the same
// interface, used by the ablation benchmarks to quantify the cost of
// the SHA-based garbling that the FPGA overlay baseline [Fang et al.]
// pays for.
package gchash

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"maxelerator/internal/label"
)

// Hasher computes the garbling hash H(x, T) for wire label x and gate
// tweak T. Implementations must be deterministic and safe for
// concurrent use after construction.
type Hasher interface {
	// Hash returns H(x, T).
	Hash(x label.Label, tweak uint64) label.Label
	// HashInto computes H(x, T) into dst without allocating.
	HashInto(x *label.Label, tweak uint64, dst *label.Label)
	// Name identifies the hash construction for reports.
	Name() string
}

// fixedKey is the public fixed AES key. Any constant works; security
// rests on the permutation being fixed and public, not secret. The
// value spells out the construction for debuggability.
var fixedKey = [16]byte{
	0x4d, 0x41, 0x58, 0x65, 0x6c, 0x65, 0x72, 0x61, // "MAXelera"
	0x74, 0x6f, 0x72, 0x2d, 0x47, 0x43, 0x48, 0x31, // "tor-GCH1"
}

// AES is the fixed-key AES-128 garbling hash.
type AES struct {
	block cipher.Block
}

// NewAES constructs the fixed-key AES hasher.
func NewAES() (*AES, error) {
	b, err := aes.NewCipher(fixedKey[:])
	if err != nil {
		return nil, fmt.Errorf("gchash: initialising fixed-key AES: %w", err)
	}
	return &AES{block: b}, nil
}

// MustAES constructs the fixed-key AES hasher and panics on failure,
// which cannot happen for a well-formed 16-byte key.
func MustAES() *AES {
	h, err := NewAES()
	if err != nil {
		panic(err)
	}
	return h
}

// Name implements Hasher.
func (h *AES) Name() string { return "fixed-key-aes" }

// Hash implements Hasher.
func (h *AES) Hash(x label.Label, tweak uint64) label.Label {
	var out label.Label
	h.HashInto(&x, tweak, &out)
	return out
}

// HashInto implements Hasher.
func (h *AES) HashInto(x *label.Label, tweak uint64, dst *label.Label) {
	k := x.Double()
	// Fold the tweak into the low 8 bytes of K (little endian), leaving
	// the high bytes to the doubled label.
	t := binary.LittleEndian.Uint64(k[0:8]) ^ tweak
	binary.LittleEndian.PutUint64(k[0:8], t)
	var ct label.Label
	h.block.Encrypt(ct[:], k[:])
	ct.XorInto(&k, dst)
}

// SHA256 is a hash with the same interface built from SHA-256. It
// models the SHA-based garbling cost of the overlay baseline and
// exists only for the ablation benchmarks; the accelerator itself uses
// fixed-key AES.
type SHA256 struct{}

// NewSHA256 constructs the SHA-256 garbling hash.
func NewSHA256() *SHA256 { return &SHA256{} }

// Name implements Hasher.
func (*SHA256) Name() string { return "sha256" }

// Hash implements Hasher.
func (s *SHA256) Hash(x label.Label, tweak uint64) label.Label {
	var out label.Label
	s.HashInto(&x, tweak, &out)
	return out
}

// HashInto implements Hasher.
func (*SHA256) HashInto(x *label.Label, tweak uint64, dst *label.Label) {
	var buf [label.Size + 8]byte
	copy(buf[:label.Size], x[:])
	binary.LittleEndian.PutUint64(buf[label.Size:], tweak)
	sum := sha256.Sum256(buf[:])
	copy(dst[:], sum[:label.Size])
}

var (
	_ Hasher = (*AES)(nil)
	_ Hasher = (*SHA256)(nil)
)
