package benchgrid

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// cell builds a healthy baseline cell at the given grid point.
func cell(ot string, rows, cols, width int, warm bool) Cell {
	return Cell{
		OT: ot, Rows: rows, Cols: cols, Width: width, Precompute: warm,
		Requests: 20, P50Ms: 10, P95Ms: 12, P99Ms: 14, MeanMs: 10.5,
		TablesPerSec: 5000, BytesPerOp: 1 << 20, AllocsPerOp: 1000,
	}
}

func grid(cells ...Cell) *Grid {
	g := New("test")
	g.Cells = cells
	return g
}

func TestNewStampsVersionAndEnv(t *testing.T) {
	g := New("maxbench -grid")
	if g.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version = %d", g.SchemaVersion)
	}
	e := g.Env
	if e.GoVersion == "" || e.GOOS == "" || e.GOARCH == "" || e.NumCPU <= 0 || e.GOMAXPROCS <= 0 {
		t.Fatalf("env not stamped: %+v", e)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := grid(cell("batched", 16, 16, 16, false), cell("batched", 16, 16, 16, true))
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 2 || got.Cells[0].Key() != g.Cells[0].Key() {
		t.Fatalf("round trip lost cells: %+v", got.Cells)
	}
	if _, ok := got.Cell("ot=batched/16x16/b=16/precompute=true"); !ok {
		t.Fatal("warm cell not found by key")
	}
}

func TestDecodeRejectsUnknownFieldsAndBadVersions(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema_version":1,"cells":[],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Decode(strings.NewReader(`{"schema_version":99,"cells":[{"ot":"batched","rows":1,"cols":1,"width":8,"requests":1}]}`)); err == nil {
		t.Fatal("future schema version accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := grid().Validate(); err == nil {
		t.Fatal("empty grid accepted")
	}
	dup := grid(cell("batched", 4, 4, 8, false), cell("batched", 4, 4, 8, false))
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate cells accepted: %v", err)
	}
	bad := cell("batched", 4, 4, 8, false)
	bad.Requests = 0
	if err := grid(bad).Validate(); err == nil {
		t.Fatal("zero requests accepted")
	}
	unordered := cell("batched", 4, 4, 8, false)
	unordered.P95Ms = unordered.P99Ms + 1
	if err := grid(unordered).Validate(); err == nil {
		t.Fatal("unordered percentiles accepted")
	}
	var nilGrid *Grid
	if err := nilGrid.Validate(); err == nil {
		t.Fatal("nil grid accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompareIdenticalGridsClean(t *testing.T) {
	g := grid(cell("per-round", 4, 4, 8, false), cell("batched", 16, 16, 16, true))
	if regs := Compare(g, g, DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}
}

func TestCompareFlagsSlowdown(t *testing.T) {
	base := grid(cell("batched", 16, 16, 16, false))
	slow := cell("batched", 16, 16, 16, false)
	slow.P50Ms *= 2
	slow.P95Ms *= 2
	slow.P99Ms *= 2
	slow.MeanMs *= 2
	regs := Compare(base, grid(slow), DefaultTolerances())
	if len(regs) != 4 {
		t.Fatalf("regs = %v, want 4 latency breaches", regs)
	}
	if regs[0].Metric != "p50_ms" || regs[0].Limit >= regs[0].New {
		t.Fatalf("first regression = %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "p50_ms") {
		t.Fatalf("String() = %q", regs[0].String())
	}
}

func TestCompareWithinToleranceClean(t *testing.T) {
	base := grid(cell("batched", 16, 16, 16, false))
	near := cell("batched", 16, 16, 16, false)
	near.P50Ms *= 1.10 // under the 25% + 0.5ms default bound
	near.TablesPerSec *= 0.90
	near.BytesPerOp += near.BytesPerOp / 20 // +5%, under 10%
	if regs := Compare(base, grid(near), DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("within-tolerance drift regressed: %v", regs)
	}
}

func TestCompareLatencySlackAbsorbsTinyCells(t *testing.T) {
	fast := cell("batched", 2, 2, 8, false)
	fast.P50Ms, fast.P95Ms, fast.P99Ms, fast.MeanMs = 0.1, 0.1, 0.1, 0.1
	jitter := fast
	jitter.P50Ms, jitter.P95Ms, jitter.P99Ms, jitter.MeanMs = 0.4, 0.4, 0.4, 0.4 // 4x, but under +0.5ms slack
	if regs := Compare(grid(fast), grid(jitter), DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("sub-slack jitter regressed: %v", regs)
	}
}

func TestCompareThroughputAndAllocs(t *testing.T) {
	base := grid(cell("per-round", 4, 4, 8, true))
	worse := cell("per-round", 4, 4, 8, true)
	worse.TablesPerSec /= 2
	worse.AllocsPerOp *= 2
	regs := Compare(base, grid(worse), DefaultTolerances())
	got := map[string]bool{}
	for _, r := range regs {
		got[r.Metric] = true
	}
	if !got["tables_per_sec"] || !got["allocs_per_op"] || len(regs) != 2 {
		t.Fatalf("regs = %v", regs)
	}
}

func TestCompareNegativeToleranceDisables(t *testing.T) {
	base := grid(cell("batched", 16, 16, 16, false))
	slow := cell("batched", 16, 16, 16, false)
	slow.P50Ms *= 10
	slow.P95Ms *= 10
	slow.P99Ms *= 10
	slow.MeanMs *= 10
	tol := DefaultTolerances()
	tol.Latency = -1
	if regs := Compare(base, grid(slow), tol); len(regs) != 0 {
		t.Fatalf("disabled latency family still regressed: %v", regs)
	}
}

func TestCompareMissingCells(t *testing.T) {
	base := grid(cell("per-round", 4, 4, 8, false), cell("batched", 16, 16, 16, false))
	reduced := grid(cell("per-round", 4, 4, 8, false))
	if regs := Compare(base, reduced, DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("reduced grid regressed without RequireAll: %v", regs)
	}
	tol := DefaultTolerances()
	tol.RequireAll = true
	regs := Compare(base, reduced, tol)
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("regs = %v, want one missing-cell regression", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Fatalf("String() = %q", regs[0].String())
	}
	// Cells only in the new grid are growth, never a regression.
	if regs := Compare(reduced, base, tol); len(regs) != 0 {
		t.Fatalf("grown grid regressed: %v", regs)
	}
}

func TestCompareNilGrids(t *testing.T) {
	if regs := Compare(nil, grid(cell("batched", 4, 4, 8, false)), DefaultTolerances()); regs != nil {
		t.Fatalf("nil base produced regressions: %v", regs)
	}
}

// TestCompareSkipsDegradedCells: a degraded cell measured a mixed
// serving regime, so its numbers gate nothing — in either direction.
func TestCompareSkipsDegradedCells(t *testing.T) {
	clean := cell("batched", 16, 16, 16, true)
	awful := cell("batched", 16, 16, 16, true)
	awful.Degraded = true
	awful.P50Ms *= 10
	awful.P95Ms *= 10
	awful.P99Ms *= 10
	awful.MeanMs *= 10
	awful.TablesPerSec /= 10
	if regs := Compare(grid(clean), grid(awful), DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("degraded new cell gated: %v", regs)
	}
	if regs := Compare(grid(awful), grid(clean), DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("degraded baseline cell gated: %v", regs)
	}
}

// TestDegradedSurvivesRoundTrip: the flag is part of the committed
// artifact, not a transient of the measuring process.
func TestDegradedSurvivesRoundTrip(t *testing.T) {
	bad := cell("per-round", 4, 4, 8, true)
	bad.Degraded = true
	var buf bytes.Buffer
	if err := grid(bad, cell("per-round", 4, 4, 8, false)).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cells[0].Degraded || got.Cells[1].Degraded {
		t.Fatalf("degraded flags lost: %+v", got.Cells)
	}
}
