// Package resilience holds the fleet's failure-shape defenses: a
// per-backend circuit breaker with readmission hysteresis, an EWMA
// latency outlier ejector, and a token-bucket retry budget. The
// gateway composes all three; they are kept free of gateway types (and
// of each other) so maxchaos and tests can drive them in isolation.
//
// The three mechanisms answer three distinct failure shapes the
// binary "healthy until 3 probes fail" model cannot:
//
//   - Breaker — a *flapping* backend (crash loops, overload cycling)
//     must not oscillate back onto the routing ring each probe tick.
//     The breaker trips open after consecutive failures, cools down
//     for a period that doubles on every re-trip, and readmits only
//     through a half-open single-probe trial.
//   - Ejector — a *slow-but-alive* backend answers every probe yet
//     amplifies fleet tail latency. The ejector tracks per-backend
//     handshake latency EWMAs and temporarily weights out any backend
//     beyond k times the fleet median.
//   - Budget — a *fleet-wide* outage turns every session into a
//     failover storm. The budget caps the fraction of sessions that
//     may fail over, so total collapse degrades to fast BUSY
//     rejections instead of retry amplification.
package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int32

const (
	// StateClosed: the backend is routable; failures are being counted.
	StateClosed State = iota
	// StateOpen: the backend is off the ring, cooling down.
	StateOpen
	// StateHalfOpen: the cooldown expired; exactly one trial decides
	// between readmission and a longer cooldown.
	StateHalfOpen
)

// String renders the state for logs, /fleetz and maxtop.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// Transition is one recorded state change. Seq increases by exactly
// one per transition of a breaker, so tests can assert the machine
// moved monotonically and only along legal edges.
type Transition struct {
	Seq  uint64
	From State
	To   State
	At   time.Time
}

// BreakerConfig shapes one Breaker. The zero value resolves to the
// defaults noted per field.
type BreakerConfig struct {
	// Threshold is how many consecutive failures trip the breaker
	// open. Default 3.
	Threshold int
	// Cooldown is the base open→half-open wait. Default 5s.
	Cooldown time.Duration
	// MaxCooldown caps the hysteresis backoff (the cooldown doubles on
	// every re-trip that happens before a full recovery). Default
	// 8×Cooldown.
	MaxCooldown time.Duration
	// RecoveryStreak is how many consecutive successes in the closed
	// state clear the re-trip history, restoring the base cooldown.
	// Default Threshold.
	RecoveryStreak int
	// Now is the clock; tests inject a fake. Default time.Now.
	Now func() time.Time
	// OnTransition, when set, observes every state change while the
	// breaker's lock is held — transitions are therefore delivered in
	// Seq order with no interleaving, which is what lets the gateway
	// mutate ring membership race-free and lets tests assert
	// monotonicity. The hook must not call back into the breaker.
	OnTransition func(Transition)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 8 * c.Cooldown
	}
	if c.RecoveryStreak <= 0 {
		c.RecoveryStreak = c.Threshold
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-backend circuit breaker. Failures come from two
// sources with one policy: health-probe verdicts and routing-time
// handshake results both call Observe, so a dead backend leaves the
// ring at dial speed, not probe speed.
//
// Hysteresis is the breaker's reason to exist over a plain
// consecutive-failure counter: while open, observations do not move
// the state — a flapping backend that happens to answer one probe
// mid-cooldown stays off the ring — and every re-trip before a full
// recovery (RecoveryStreak closed successes) doubles the next
// cooldown, so a backend oscillating at any period settles into
// long exclusions instead of oscillating the ring.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	fails    int // consecutive failures while closed
	streak   int // consecutive successes while closed
	trips    int // re-trips since the last full recovery (hysteresis exponent)
	openedAt time.Time
	seq      uint64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// transition moves the machine and notifies the hook; callers hold mu.
func (b *Breaker) transition(to State, at time.Time) {
	from := b.state
	b.state = to
	b.seq++
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(Transition{Seq: b.seq, From: from, To: to, At: at})
	}
}

// cooldown is the current open-state dwell: base doubled per re-trip,
// capped.
func (b *Breaker) cooldown() time.Duration {
	d := b.cfg.Cooldown
	for i := 1; i < b.trips; i++ {
		d *= 2
		if d >= b.cfg.MaxCooldown {
			return b.cfg.MaxCooldown
		}
	}
	if d > b.cfg.MaxCooldown {
		d = b.cfg.MaxCooldown
	}
	return d
}

// Observe feeds one success or failure into the machine and returns
// the resulting state. The half-open trial rides the same call: when
// an expired cooldown is noticed, the breaker moves to half-open and
// *this* observation is the single trial — success readmits, failure
// re-opens with a doubled cooldown. While the cooldown is still
// running, observations are deliberately ignored (see the type
// comment).
func (b *Breaker) Observe(ok bool) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	if b.state == StateOpen && now.Sub(b.openedAt) >= b.cooldown() {
		b.transition(StateHalfOpen, now)
	}
	switch b.state {
	case StateClosed:
		if ok {
			b.fails = 0
			b.streak++
			if b.streak >= b.cfg.RecoveryStreak {
				b.trips = 0
			}
		} else {
			b.streak = 0
			b.fails++
			if b.fails >= b.cfg.Threshold {
				b.trips++
				b.openedAt = now
				b.transition(StateOpen, now)
			}
		}
	case StateOpen:
		// Cooling down: hysteresis means neither a lucky success nor
		// further failures move the machine.
	case StateHalfOpen:
		if ok {
			b.fails, b.streak = 0, 0
			b.transition(StateClosed, now)
		} else {
			b.trips++
			b.openedAt = now
			b.transition(StateOpen, now)
		}
	}
	return b.state
}

// State reads the current position without advancing the clock: an
// expired cooldown shows as open until the next Observe runs the
// half-open trial, which keeps readmission single-probe.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Routable reports whether traffic may be sent: only a closed breaker
// routes (half-open admits exactly the probe trial, not sessions).
func (b *Breaker) Routable() bool { return b.State() == StateClosed }

// TrialReady reports whether the breaker is open with its cooldown
// expired — the next Observe will run the half-open trial. Callers
// that drive readmission through traffic rather than probes (a
// backend with no health URL) offer exactly such backends as
// last-resort candidates; the handshake result is the trial.
func (b *Breaker) TrialReady() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateOpen && b.cfg.Now().Sub(b.openedAt) >= b.cooldown()
}

// Fails reports the consecutive-failure count while closed.
func (b *Breaker) Fails() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}

// Trips reports the re-trip count since the last full recovery — the
// hysteresis exponent, surfaced for operators and tests.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Seq reports how many transitions have occurred.
func (b *Breaker) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}
