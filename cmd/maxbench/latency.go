// Latency mode (-latency): measures what a client actually waits for
// per request — the online path of the Fig. 1 protocol — over a
// multiplexed in-memory session, and reports p50/p95/p99/mean. With
// -precompute the same workload runs twice, inline and against a warm
// precompute pool (refills happen off the clock, as the offline
// phase), so the offline/online split's win is visible in one
// invocation:
//
//	maxbench -latency -rows 16 -cols 16 -b 16 -requests 30 -precompute
//	maxbench -latency -precompute -json   # machine-readable
//
// measurePass is also the engine under -grid (grid.go): every grid
// cell is one pass at a fixed OT mode × shape × serving mode.
package main

import (
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/precompute"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

// latencyConfig gathers the -latency mode knobs.
type latencyConfig struct {
	rows, cols int
	width      int
	requests   int
	precompute bool
	pool       int
	// addr switches the pass to a live server (maxd, or maxgw in front
	// of a fleet) instead of the in-memory session; client side only.
	addr string
}

// latencyResult is one measured pass; all times in milliseconds so the
// JSON needs no unit parsing.
type latencyResult struct {
	Mode     string  `json:"mode"` // "inline" or "precomputed"
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// latencyReport is the full -latency artefact.
type latencyReport struct {
	Rows       int             `json:"rows"`
	Cols       int             `json:"cols"`
	Width      int             `json:"width"`
	Results    []latencyResult `json:"results"`
	SpeedupP50 float64         `json:"speedup_p50,omitempty"`
}

func runLatency(lc latencyConfig, out *output) error {
	if lc.rows <= 0 || lc.cols <= 0 {
		return fmt.Errorf("latency: rows and cols must be positive (got %dx%d)", lc.rows, lc.cols)
	}
	if lc.requests <= 0 {
		return fmt.Errorf("latency: requests must be positive (got %d)", lc.requests)
	}
	if lc.addr != "" {
		return runRemoteLatency(lc, out)
	}

	rep := latencyReport{Rows: lc.rows, Cols: lc.cols, Width: lc.width}
	out.progressf("latency: inline pass (%d requests, %dx%d b=%d)...",
		lc.requests, lc.rows, lc.cols, lc.width)
	inline, err := measureLatency(lc, false)
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, inline)
	if lc.precompute {
		out.progressf("latency: precomputed pass (%d requests, warm pool)...", lc.requests)
		pre, err := measureLatency(lc, true)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, pre)
		if pre.P50Ms > 0 {
			rep.SpeedupP50 = inline.P50Ms / pre.P50Ms
		}
	}

	if out.json {
		return out.emitJSON(rep)
	}
	w := out.data
	fmt.Fprintf(w, "Online request latency, %d×%d matvec at b=%d (%d requests per pass)\n\n",
		lc.rows, lc.cols, lc.width, lc.requests)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "mode", "p50", "p95", "p99", "mean")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-12s %9.1fms %9.1fms %9.1fms %9.1fms\n",
			r.Mode, r.P50Ms, r.P95Ms, r.P99Ms, r.MeanMs)
	}
	if rep.SpeedupP50 > 0 {
		fmt.Fprintf(w, "\nwarm-pool speedup (p50): %.2f×\n", rep.SpeedupP50)
	}
	return nil
}

// runRemoteLatency is -latency -addr: the same clocked request loop,
// but against a live TCP endpoint — a single maxd, or a maxgw fleet
// front door. The session opens with a shape-hint preface so a
// gateway pins it to the backend whose pool is warm for the shape,
// which makes this the fleet's end-to-end latency probe. The server
// owns the matrix, so -rows and -cols must describe the model it
// serves (maxd -rows/-cols); a mismatched -cols fails the request.
// -precompute is meaningless here — a remote server manages its own
// pools — and is rejected.
func runRemoteLatency(lc latencyConfig, out *output) error {
	if lc.precompute {
		return fmt.Errorf("latency: -precompute measures the in-process engine; a server at -addr manages its own pools")
	}
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		return err
	}
	cli.WithShapeHint(protocol.ShapeHint{
		Rows: lc.rows, Cols: lc.cols, Width: lc.width, Signed: true,
		Mode: "matvec", OT: protocol.OTPerRound.String(),
	})
	nc, err := net.Dial("tcp", lc.addr)
	if err != nil {
		return err
	}
	conn := wire.NewStreamConn(nc)
	defer conn.Close()
	out.progressf("latency: remote pass against %s (%d requests, %dx%d b=%d)...",
		lc.addr, lc.requests, lc.rows, lc.cols, lc.width)
	cs, err := cli.Dial(conn)
	if err != nil {
		return err
	}
	y := make([]int64, lc.cols)
	for j := range y {
		y[j] = int64(j%16 - 8)
	}
	samples := make([]time.Duration, 0, lc.requests)
	for i := 0; i < lc.requests; i++ {
		start := time.Now()
		if _, err := cs.Do(y); err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		samples = append(samples, time.Since(start))
	}
	if err := cs.Close(); err != nil {
		return err
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })

	rep := latencyReport{Rows: lc.rows, Cols: lc.cols, Width: lc.width}
	res := latencyResult{Mode: "remote", Requests: lc.requests}
	res.P50Ms = ms(percentile(samples, 50))
	res.P95Ms = ms(percentile(samples, 95))
	res.P99Ms = ms(percentile(samples, 99))
	ps := passStats{samples: samples}
	res.MeanMs = ms(ps.mean())
	rep.Results = append(rep.Results, res)
	if out.json {
		return out.emitJSON(rep)
	}
	w := out.data
	fmt.Fprintf(w, "Online request latency against %s, %d×%d matvec at b=%d (%d requests)\n\n",
		lc.addr, lc.rows, lc.cols, lc.width, lc.requests)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "mode", "p50", "p95", "p99", "mean")
	fmt.Fprintf(w, "%-12s %9.1fms %9.1fms %9.1fms %9.1fms\n",
		res.Mode, res.P50Ms, res.P95Ms, res.P99Ms, res.MeanMs)
	return nil
}

// measureLatency is the -latency pass: batched OT, per-request
// unclocked prefill on the warm pass (the historical contract of the
// mode), no allocation accounting.
func measureLatency(lc latencyConfig, warm bool) (latencyResult, error) {
	res := latencyResult{Mode: "inline", Requests: lc.requests}
	if warm {
		res.Mode = "precomputed"
	}
	ps, err := measurePass(passConfig{
		rows: lc.rows, cols: lc.cols, width: lc.width, ot: protocol.OTBatched,
		requests: lc.requests, warm: warm, pool: lc.pool,
	})
	if err != nil {
		return res, err
	}
	res.P50Ms = ms(percentile(ps.samples, 50))
	res.P95Ms = ms(percentile(ps.samples, 95))
	res.P99Ms = ms(percentile(ps.samples, 99))
	res.MeanMs = ms(ps.mean())
	return res, nil
}

// passConfig fixes one measured pass: a workload shape, an OT mode and
// a serving mode.
type passConfig struct {
	rows, cols int
	width      int
	ot         protocol.OTMode
	requests   int
	// warm serves from a precompute pool. With prefillAll the whole
	// pool is built before the clocked loop (grid cells: a fully warm
	// steady state); without it one entry is prefilled, unclocked,
	// before each request (the -latency contract).
	warm       bool
	prefillAll bool
	// pool sizes the engine's per-shape refill target when warm;
	// prefillAll passes ignore it and size the pool to requests.
	pool int
	// memstats collects runtime.MemStats deltas across the clocked
	// loop (bytes/op, allocs/op).
	memstats bool
}

// passStats is what one pass actually measured.
type passStats struct {
	// samples are the per-request round-trip times, sorted ascending.
	samples []time.Duration
	// tables is the garbled-table count the server reported across the
	// clocked requests.
	tables uint64
	// poolHits and poolMisses are the engine's Take outcomes across the
	// clocked loop only (snapshotted per pass, so one cell's fallback
	// can't leak into another). Zero on inline passes.
	poolHits, poolMisses uint64
	// bytesPerOp and allocsPerOp are MemStats deltas over the clocked
	// loop divided by requests (zero unless memstats was set).
	bytesPerOp  uint64
	allocsPerOp uint64
}

// mean returns the average sample.
func (ps passStats) mean() time.Duration {
	if len(ps.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ps.samples {
		sum += d
	}
	return sum / time.Duration(len(ps.samples))
}

// onlineSeconds is the total clocked time of the pass.
func (ps passStats) onlineSeconds() float64 {
	var sum time.Duration
	for _, d := range ps.samples {
		sum += d
	}
	return sum.Seconds()
}

// measurePass runs pc.requests matvec requests over one multiplexed
// in-memory session and clocks each request round trip. The connection
// handshake and OT setup are paid once, outside the clocked region;
// warm passes prefill the precompute pool off the clock — that
// garbling is exactly the work the offline phase moves off the request
// path.
func measurePass(pc passConfig) (passStats, error) {
	var ps passStats
	cfg := maxsim.Config{Width: pc.width, AccWidth: 2 * pc.width, Signed: true}
	A := make([][]int64, pc.rows)
	y := make([]int64, pc.cols)
	for i := range A {
		A[i] = make([]int64, pc.cols)
		for j := range A[i] {
			A[i][j] = int64((i*31+j*17)%200 - 100)
		}
	}
	for j := range y {
		y[j] = int64(j%16 - 8)
	}
	req := protocol.Request{Matrix: A, OT: pc.ot}
	shape := precompute.Shape{Rows: pc.rows, Cols: pc.cols, Width: pc.width,
		Signed: true, Mode: "matvec", OT: pc.ot.String()}

	srv, err := protocol.NewServer(cfg)
	if err != nil {
		return ps, err
	}
	var eng *precompute.Engine
	if pc.warm {
		pool := pc.pool
		if pc.prefillAll {
			pool = pc.requests
		}
		eng, err = precompute.New(precompute.Config{Sim: cfg, PoolSize: pool})
		if err != nil {
			return ps, err
		}
		defer eng.Stop()
		srv.WithPrecompute(eng)
		if pc.prefillAll {
			if err := eng.Prefill(shape, pc.requests); err != nil {
				return ps, err
			}
		}
	}
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		return ps, err
	}

	ca, cb := wire.Pipe()
	defer ca.Close()
	defer cb.Close()
	var tables atomic.Uint64
	srvDone := make(chan error, 1)
	go func() {
		sess, err := srv.NewSession(ca, protocol.SessionConfig{})
		if err != nil {
			srvDone <- err
			return
		}
		defer sess.Close()
		for {
			resp, err := sess.Serve(req)
			if err != nil {
				if errors.Is(err, protocol.ErrSessionEnded) {
					err = nil
				}
				srvDone <- err
				return
			}
			tables.Add(resp.Stats.TablesGarbled)
		}
	}()
	cs, err := cli.Dial(cb)
	if err != nil {
		return ps, err
	}

	var m0 runtime.MemStats
	if pc.memstats {
		runtime.GC()
		runtime.ReadMemStats(&m0)
	}
	// Snapshot the pool counters at the clocked loop's boundaries: the
	// delta is this cell's own hit/miss record, so a warm cell that ran
	// dry mid-loop is detectable (and flagged degraded) instead of its
	// inline fallbacks silently polluting the throughput number.
	hits0, misses0 := eng.PoolStats()
	samples := make([]time.Duration, 0, pc.requests)
	for i := 0; i < pc.requests; i++ {
		if eng != nil && !pc.prefillAll {
			if err := eng.Prefill(shape, 1); err != nil {
				return ps, err
			}
		}
		start := time.Now()
		if _, err := cs.Do(y); err != nil {
			return ps, err
		}
		samples = append(samples, time.Since(start))
	}
	if pc.memstats {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		n := uint64(pc.requests)
		ps.bytesPerOp = (m1.TotalAlloc - m0.TotalAlloc) / n
		ps.allocsPerOp = (m1.Mallocs - m0.Mallocs) / n
	}
	if err := cs.Close(); err != nil {
		return ps, err
	}
	if err := <-srvDone; err != nil {
		return ps, err
	}

	hits1, misses1 := eng.PoolStats()
	ps.poolHits, ps.poolMisses = hits1-hits0, misses1-misses0

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	ps.samples = samples
	ps.tables = tables.Load()
	return ps, nil
}

// percentile reads the nearest-rank percentile from sorted samples.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
