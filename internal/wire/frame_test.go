package wire

import (
	"bytes"
	"net"
	"testing"
)

// TestSendVecStreamByteIdentical proves the vectored stream path puts
// exactly the bytes on the wire that SendMsg would: same length prefix,
// same payload, regardless of how the payload is split into segments.
func TestSendVecStreamByteIdentical(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	splits := [][][]byte{
		{payload},
		{payload[:1], payload[1:]},
		{payload[:10], payload[10:20], payload[20:]},
		{nil, payload, {}},
	}

	var want bytes.Buffer
	if err := NewStreamConn(&want).SendMsg(payload); err != nil {
		t.Fatalf("SendMsg: %v", err)
	}
	for i, segs := range splits {
		var got bytes.Buffer
		if err := SendVec(NewStreamConn(&got), segs); err != nil {
			t.Fatalf("split %d: SendVec: %v", i, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("split %d: vectored stream bytes differ from SendMsg", i)
		}
	}
}

// TestSendVecStreamOverSocket exercises the writev path a real TCP
// transport takes and checks the peer reassembles one message.
func TestSendVecStreamOverSocket(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	done := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		msg, err := NewStreamConn(c).RecvMsg()
		if err != nil {
			return
		}
		done <- msg
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := SendVec(NewStreamConn(c), [][]byte{[]byte("abc"), []byte("defg")}); err != nil {
		t.Fatalf("SendVec: %v", err)
	}
	if got := <-done; string(got) != "abcdefg" {
		t.Fatalf("peer received %q, want %q", got, "abcdefg")
	}
}

// TestSendVecPipe checks the pipe path joins segments into a single
// received message.
func TestSendVecPipe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	if err := SendVec(a, [][]byte{[]byte("one"), []byte("two")}); err != nil {
		t.Fatalf("SendVec: %v", err)
	}
	got, err := b.RecvMsg()
	if err != nil {
		t.Fatalf("RecvMsg: %v", err)
	}
	if string(got) != "onetwo" {
		t.Fatalf("got %q, want %q", got, "onetwo")
	}
}

// TestSendVecCountingAccounting proves the Counting wrapper tallies a
// vectored send like the equivalent SendMsg — the wrapper must not be
// bypassed by the vectored fast path.
func TestSendVecCountingAccounting(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	cc := NewCounting(a)
	if err := SendVec(cc, [][]byte{[]byte("abc"), []byte("de")}); err != nil {
		t.Fatalf("SendVec: %v", err)
	}
	if _, err := b.RecvMsg(); err != nil {
		t.Fatalf("RecvMsg: %v", err)
	}
	sent, _, msgs, _ := cc.Totals()
	if sent != 5 || msgs != 1 {
		t.Fatalf("counting saw %d bytes in %d msgs, want 5 in 1", sent, msgs)
	}
}

// TestSendVecObservedAccounting proves the Observed wrapper charges the
// frame header on vectored sends like it does on SendMsg.
func TestSendVecObservedAccounting(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	var reported int
	oc := Observed(a, func(n int) { reported += n }, nil)
	if err := SendVec(oc, [][]byte{[]byte("abc"), []byte("de")}); err != nil {
		t.Fatalf("SendVec: %v", err)
	}
	if _, err := b.RecvMsg(); err != nil {
		t.Fatalf("RecvMsg: %v", err)
	}
	if want := 5 + frameHeaderSize; reported != want {
		t.Fatalf("observed reported %d bytes, want %d", reported, want)
	}
}

// TestArenaAccounting covers checkout accounting: in-use and
// outstanding rise on Get, fall on Free, peak holds the high-water
// mark, and double-free is a no-op.
func TestArenaAccounting(t *testing.T) {
	a := NewArena()
	b1 := a.Get(100)
	b2 := a.Get(200)
	if a.Outstanding() != 2 {
		t.Fatalf("outstanding = %d, want 2", a.Outstanding())
	}
	if in := a.InUseBytes(); in < 300 {
		t.Fatalf("in-use = %d, want >= 300", in)
	}
	peak := a.PeakBytes()
	if peak < 300 {
		t.Fatalf("peak = %d, want >= 300", peak)
	}
	b1.Free()
	b1.Free() // double-free must not corrupt accounting
	b2.Free()
	if a.Outstanding() != 0 || a.InUseBytes() != 0 {
		t.Fatalf("after free: outstanding=%d in-use=%d, want 0/0", a.Outstanding(), a.InUseBytes())
	}
	if a.PeakBytes() != peak {
		t.Fatalf("peak moved after free: %d, want %d", a.PeakBytes(), peak)
	}
}

// TestArenaReuse checks a freed buffer's capacity is reused rather than
// reallocated.
func TestArenaReuse(t *testing.T) {
	a := NewArena()
	b1 := a.Get(64)
	b1.B = append(b1.B, make([]byte, 64)...)
	p1 := &b1.B[:1][0]
	b1.Free()
	b2 := a.Get(32)
	defer b2.Free()
	if cap(b2.B) < 64 {
		t.Fatalf("pooled capacity lost: cap=%d, want >= 64", cap(b2.B))
	}
	b2.B = append(b2.B, 0)
	if &b2.B[0] != p1 {
		t.Fatalf("expected the pooled backing array to be reused")
	}
}

// TestFrameWriterSendsAndFrees checks a FrameWriter frame round-trips
// and the buffer returns to the arena even when the send fails.
func TestFrameWriterSendsAndFrees(t *testing.T) {
	a, b := Pipe()
	arena := NewArena()
	w := NewFrameWriter(a, arena)

	buf := w.Begin(8)
	buf.B = append(buf.B, []byte("payload")...)
	if err := w.Send(buf); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.RecvMsg()
	if err != nil {
		t.Fatalf("RecvMsg: %v", err)
	}
	if string(got) != "payload" {
		t.Fatalf("got %q, want %q", got, "payload")
	}
	if arena.Outstanding() != 0 {
		t.Fatalf("buffer not returned after Send: outstanding=%d", arena.Outstanding())
	}

	a.Close()
	buf = w.Begin(4)
	buf.B = append(buf.B, 1, 2, 3)
	if err := w.Send(buf); err == nil {
		t.Fatal("Send on closed conn: want error")
	}
	if arena.Outstanding() != 0 {
		t.Fatalf("buffer leaked on failed send: outstanding=%d", arena.Outstanding())
	}
}
