// Command maxcli is the client (evaluator) of Fig. 1: it connects to a
// maxd server, obtains its input-wire labels through IKNP oblivious
// transfer, evaluates the streamed garbled tables round by round, and
// prints the decoded matrix-vector product — without ever revealing
// its input vector to the server.
//
// Usage:
//
//	maxcli -addr 127.0.0.1:7700 -b 16 -frac 6 -vector "1.5,-2.25,0.5,1"
//	maxcli -addr 127.0.0.1:7700 -vector-file v.json
//	maxcli -addr 127.0.0.1:7700 -vector-file batch.json   # [[...],[...]]
//
// A vector file may hold one vector ([1, 2.5]) or a batch of vectors
// ([[1, 2.5], [0.5, -1]]). A batch runs every vector over one
// multiplexed connection — one handshake and one OT setup amortized
// across all requests.
//
// -handshake-timeout and -io-timeout bound each wire operation of the
// connection-setup and steady-state phases respectively, so a stalled
// server costs one timeout instead of a hung client; zero disables.
//
// Transient failures — a dropped connection, a deadline expiry, or a
// BUSY rejection from a loaded server — are retried transparently:
// -retries bounds the extra attempts per request and -retry-backoff
// the base of the full-jitter exponential backoff between them. A
// reconnect resumes the batch at the failed vector (finished results
// are never re-run); a request that exhausts its retries is reported
// and the batch continues, with a nonzero exit at the end.
//
// When -addr points at a maxgw fleet router rather than a single maxd,
// -hint-rows opens the session with a shape-hint preface (rows ×
// vector-length at -b bits, -hint-ot mode) so the router pins the
// session to the backend whose precompute pool is warm for that shape.
// The hint is advisory routing metadata only — a directly-dialed maxd
// skips it — and it is re-sent on every retry reconnect, so affinity
// survives failover.
package main

import (
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"maxelerator/internal/fixed"
	"maxelerator/internal/protocol"
	"maxelerator/internal/protocol/retry"
	"maxelerator/internal/wire"
)

// cliConfig gathers every knob of one maxcli invocation.
type cliConfig struct {
	addr         string
	width, frac  int
	vec, vecFile string
	timeouts     protocol.Timeouts
	retries      int
	retryBackoff time.Duration
	hintRows     int
	hintOT       string
}

func main() {
	var cc cliConfig
	flag.StringVar(&cc.addr, "addr", "127.0.0.1:7700", "maxd server address")
	flag.IntVar(&cc.width, "b", 16, "operand bit-width (must match the server)")
	flag.IntVar(&cc.frac, "frac", 6, "fixed-point fraction bits (must match the server)")
	flag.StringVar(&cc.vec, "vector", "", "comma-separated client vector")
	flag.StringVar(&cc.vecFile, "vector-file", "", "JSON file with one client vector or a batch of vectors")
	flag.DurationVar(&cc.timeouts.Handshake, "handshake-timeout", 30*time.Second, "per-operation deadline for handshake and OT setup (0 = none)")
	flag.DurationVar(&cc.timeouts.IO, "io-timeout", 2*time.Minute, "per-operation deadline for steady-state request I/O (0 = none)")
	flag.IntVar(&cc.retries, "retries", 2, "extra attempts per request after a transient failure (0 = fail fast)")
	flag.DurationVar(&cc.retryBackoff, "retry-backoff", 100*time.Millisecond, "base backoff before the first retry (doubles per retry, full jitter)")
	flag.IntVar(&cc.hintRows, "hint-rows", 0, "open with a shape hint for a matrix of this many rows, so a maxgw router pins the session to its warm backend (0 = no hint)")
	flag.StringVar(&cc.hintOT, "hint-ot", "per-round", "OT mode named in the shape hint (per-round or batched)")
	flag.Parse()

	if err := run(cc); err != nil {
		fmt.Fprintln(os.Stderr, "maxcli:", err)
		os.Exit(1)
	}
}

func parseVector(vec, vecFile string) ([]float64, error) {
	vs, err := parseVectors(vec, vecFile)
	if err != nil {
		return nil, err
	}
	return vs[0], nil
}

// parseVectors reads the request batch: an inline -vector is one
// request; a -vector-file holds either one vector or an array of them.
func parseVectors(vec, vecFile string) ([][]float64, error) {
	switch {
	case vec != "":
		parts := strings.Split(vec, ",")
		out := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out[i] = v
		}
		return [][]float64{out}, nil
	case vecFile != "":
		data, err := os.ReadFile(vecFile)
		if err != nil {
			return nil, err
		}
		var batch [][]float64
		if err := json.Unmarshal(data, &batch); err == nil {
			if len(batch) == 0 {
				return nil, fmt.Errorf("vector file holds an empty batch")
			}
			return batch, nil
		}
		var single []float64
		if err := json.Unmarshal(data, &single); err != nil {
			return nil, fmt.Errorf("parsing vector file: %w", err)
		}
		return [][]float64{single}, nil
	default:
		return nil, fmt.Errorf("either -vector or -vector-file is required")
	}
}

func run(cc cliConfig) error {
	f := fixed.Format{Width: cc.width, Frac: cc.frac}
	if err := f.Validate(); err != nil {
		return err
	}
	vs, err := parseVectors(cc.vec, cc.vecFile)
	if err != nil {
		return err
	}
	raws := make([][]int64, len(vs))
	for i, xs := range vs {
		raw, err := f.EncodeVector(xs)
		if err != nil {
			return fmt.Errorf("vector %d: %w", i, err)
		}
		raws[i] = raw
	}

	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		return err
	}
	cli.WithTimeouts(cc.timeouts)
	if cc.hintRows > 0 {
		cli.WithShapeHint(protocol.ShapeHint{
			Rows: cc.hintRows, Cols: len(raws[0]), Width: cc.width,
			Signed: true, Mode: "matvec", OT: cc.hintOT,
		})
	}
	// One session for the whole batch: handshake and OT setup are paid
	// once, each vector is one multiplexed request with fresh labels.
	// The ReDialer re-establishes the session on a transient failure
	// (disconnect, timeout, BUSY) and replays only the failed vector —
	// completed results are never re-run.
	rd, err := retry.NewReDialer(cli, func() (wire.Conn, error) {
		nc, err := net.Dial("tcp", cc.addr)
		if err != nil {
			return nil, err
		}
		return wire.NewStreamConn(nc), nil
	}, retry.Policy{MaxAttempts: cc.retries + 1, BaseBackoff: cc.retryBackoff})
	if err != nil {
		return err
	}
	defer rd.Close()

	failed := 0
	for r, raw := range raws {
		out, err := rd.Do(raw)
		if err != nil {
			// A fatal error (version mismatch, crypto failure) sinks the
			// whole batch: every later vector would hit the same wall.
			// An exhausted retry budget is a per-item outcome: report it
			// and keep going.
			if !retry.Retryable(err) {
				return fmt.Errorf("request %d: %w", r, err)
			}
			failed++
			fmt.Fprintf(os.Stderr, "maxcli: request %d failed: %v\n", r, err)
			continue
		}
		for i, v := range out {
			if len(raws) > 1 {
				fmt.Printf("y%d[%d] = %v\n", r, i, f.DecodeProduct(v))
			} else {
				fmt.Printf("y[%d] = %v\n", i, f.DecodeProduct(v))
			}
		}
	}
	if err := rd.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "maxcli: closing session: %v\n", err)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed after retries", failed, len(raws))
	}
	return nil
}
