// Command maxd is the cloud-server daemon of Fig. 1: it owns the model
// matrix (the garbler's private input), drives the MAXelerator
// simulator to garble MAC streams, and serves privacy-preserving
// matrix-vector products to connecting clients over TCP.
//
// Usage:
//
//	maxd -listen :7700 -model model.json -b 16 -frac 6
//	maxd -listen :7700 -demo-rows 4 -demo-cols 8   # random demo model
//	maxd -listen :7700 -demo-rows 4 -metrics-addr :7701
//
// The model file holds a JSON array of rows of floats, e.g.
// [[1.0, 2.5], [0.25, -1.5]]. Each accepted connection runs one
// multiplexed protocol session (versioned handshake, one IKNP OT
// setup, then any number of client requests with per-round material
// streaming) and emits structured per-request and per-session log
// lines. -garble-workers sizes the parallel row-garbling pool each
// request garbles under; -max-sessions bounds the sessions in flight.
// Overflow connections queue up to -admission-wait and are then shed
// with a BUSY control frame carrying a retry-after hint (so a loaded
// daemon answers in bounded time instead of stringing clients along);
// -admission-wait 0 restores the old queue-forever behaviour.
//
// With -precompute the daemon runs an offline/online split: background
// workers pre-garble MAC circuits for the model's shape (and for any
// shape the traffic teaches) into bounded per-shape pools of
// single-use entries, so a request that hits the pool pays only OT,
// table streaming and decode online. -precompute-pool sizes each
// shape's pool; -precompute-shapes bounds the distinct shapes held
// before the coldest is evicted. The wire format is identical on hits
// and misses — a cold pool just garbles inline as before.
//
// Every wire operation runs under a per-phase deadline so a stalled or
// vanished client costs one timeout, never a pinned session (and with
// -max-sessions, never a leaked admission slot): -handshake-timeout
// bounds each connection-setup operation (version negotiation, base-OT
// and IKNP extension setup), -io-timeout each steady-state one
// (request open, per-round OT, material streaming, result read). Zero
// disables a deadline.
//
// With -metrics-addr the daemon exposes a live observability surface:
//
//	GET /metrics         Prometheus text exposition (garbling
//	                     throughput, stall cycles, per-core counters,
//	                     OT and session latency histograms, plus
//	                     runtime_* gauges: goroutines, heap occupancy,
//	                     GC cycles and a GC pause histogram, sampled
//	                     fresh at every scrape)
//	GET /debug/sessions  recent session phase traces as JSON
//	GET /healthz         ok | degraded (connections queueing) |
//	                     overloaded (recently shed load; answers 503)
//
// Adding -advertise mounts /shapez on the same address: a JSON list of
// the request shapes this daemon serves warm (the live precompute
// pools with -precompute, the static model shape otherwise), which a
// shape-aware gateway (cmd/maxgw) polls to route sessions toward warm
// pools.
//
// Adding -pprof additionally mounts net/http/pprof under
// /debug/pprof/ on the same address, so CPU, heap and block profiles
// can be pulled from the live daemon:
//
//	go tool pprof http://127.0.0.1:7701/debug/pprof/profile?seconds=10
//
// On SIGINT/SIGTERM the daemon stops accepting, drains in-flight
// sessions up to -drain-timeout, and flushes a final metrics snapshot
// to the log.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"maxelerator/internal/fixed"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/precompute"
	"maxelerator/internal/protocol"
	"maxelerator/internal/report"
	"maxelerator/internal/wire"
)

// daemonConfig gathers every knob of one maxd instance.
type daemonConfig struct {
	listen        string
	modelPath     string
	metricsAddr   string
	width, frac   int
	demoRows      int
	demoCols      int
	seed          int64
	once          bool
	drainTimeout  time.Duration
	garbleWorkers int
	maxSessions   int
	// admissionWait bounds how long a connection may queue behind the
	// -max-sessions limit before being shed with a BUSY frame; <= 0
	// queues without bound (the pre-admission-control behaviour).
	admissionWait time.Duration
	// handshakeTimeout and ioTimeout are the per-phase wire-operation
	// deadlines (see the package comment); zero disables.
	handshakeTimeout time.Duration
	ioTimeout        time.Duration
	// precompute enables the offline/online split: background workers
	// pre-garble MAC circuits for the model's shape so requests hit a
	// warm pool and only pay OT + streaming + decode online.
	precompute       bool
	precomputePool   int
	precomputeShapes int
	// pprof mounts net/http/pprof under /debug/pprof/ on the metrics
	// address, so CPU/heap/block profiles can be pulled from a live
	// daemon. Off by default: profiling endpoints can stall the world
	// and belong behind an explicit operator decision.
	pprof bool
	// advertise mounts /shapez on the metrics address: a JSON list of
	// the request shapes this daemon can serve warm (the precompute
	// pools when -precompute is on, the static model shape otherwise).
	// A shape-aware gateway (cmd/maxgw) polls it to prefer warm
	// backends.
	advertise bool
}

func main() {
	var dc daemonConfig
	flag.StringVar(&dc.listen, "listen", "127.0.0.1:7700", "TCP listen address")
	flag.StringVar(&dc.modelPath, "model", "", "JSON model matrix file (rows of floats)")
	flag.StringVar(&dc.metricsAddr, "metrics-addr", "", "HTTP address for /metrics, /debug/sessions and /healthz (empty disables)")
	flag.IntVar(&dc.width, "b", 16, "operand bit-width (power of two)")
	flag.IntVar(&dc.frac, "frac", 6, "fixed-point fraction bits")
	flag.IntVar(&dc.demoRows, "demo-rows", 0, "serve a random demo model with this many rows")
	flag.IntVar(&dc.demoCols, "demo-cols", 4, "columns of the random demo model")
	flag.Int64Var(&dc.seed, "seed", 1, "random seed for the demo model")
	flag.BoolVar(&dc.once, "once", false, "serve a single session and exit")
	flag.DurationVar(&dc.drainTimeout, "drain-timeout", 10*time.Second, "in-flight session drain deadline on shutdown")
	flag.IntVar(&dc.garbleWorkers, "garble-workers", runtime.NumCPU(), "row-garbling worker pool size per request (1 = sequential)")
	flag.IntVar(&dc.maxSessions, "max-sessions", 0, "concurrent session limit; extra connections queue (0 = unlimited)")
	flag.DurationVar(&dc.admissionWait, "admission-wait", 5*time.Second, "max queue wait behind -max-sessions before a BUSY rejection (0 = queue forever)")
	flag.DurationVar(&dc.handshakeTimeout, "handshake-timeout", 30*time.Second, "per-operation deadline for handshake and OT setup (0 = none)")
	flag.DurationVar(&dc.ioTimeout, "io-timeout", 2*time.Minute, "per-operation deadline for steady-state request I/O (0 = none)")
	flag.BoolVar(&dc.precompute, "precompute", false, "pre-garble MAC circuits in the background so requests serve from a warm pool")
	flag.IntVar(&dc.precomputePool, "precompute-pool", 4, "precomputed entries kept per shape")
	flag.IntVar(&dc.precomputeShapes, "precompute-shapes", 8, "distinct shapes pooled before LRU eviction")
	flag.BoolVar(&dc.pprof, "pprof", false, "mount /debug/pprof/ on the metrics address (requires -metrics-addr)")
	flag.BoolVar(&dc.advertise, "advertise", false, "mount /shapez shape hints on the metrics address (requires -metrics-addr)")
	flag.Parse()

	if err := run(dc); err != nil {
		fmt.Fprintln(os.Stderr, "maxd:", err)
		os.Exit(1)
	}
}

// loadModel reads and validates a model file: the matrix must be
// non-empty and rectangular, with every row non-empty. Validation
// happens here, at load time, so a ragged file is rejected with the
// offending row named instead of failing deep inside a session.
func loadModel(path string) ([][]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading model: %w", err)
	}
	var rows [][]float64
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("parsing model: %w", err)
	}
	return rows, validateModel(rows)
}

// validateModel enforces the rectangular-matrix invariant the protocol
// relies on (every row is one MAC chain of identical length).
func validateModel(rows [][]float64) error {
	if len(rows) == 0 {
		return fmt.Errorf("model is empty")
	}
	cols := len(rows[0])
	if cols == 0 {
		return fmt.Errorf("model row 0 is empty")
	}
	for i, row := range rows {
		switch {
		case len(row) == 0:
			return fmt.Errorf("model row %d is empty", i)
		case len(row) != cols:
			return fmt.Errorf("model row %d has %d columns, want %d (ragged matrix)", i, len(row), cols)
		}
	}
	return nil
}

func demoModel(rows, cols int, seed int64, f fixed.Format) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, rows)
	scale := f.Max() / 8
	for i := range out {
		out[i] = make([]float64, cols)
		for j := range out[i] {
			out[i][j] = (2*rng.Float64() - 1) * scale
		}
	}
	return out
}

// traceMACLimit caps the per-session memory-system trace: the trace
// walks every modelled clock cycle, so unboundedly large sessions
// would stall the daemon. Skipped sessions are logged, not silently
// dropped.
const traceMACLimit = 4096

func run(dc daemonConfig) error {
	f := fixed.Format{Width: dc.width, Frac: dc.frac}
	if err := f.Validate(); err != nil {
		return err
	}

	var model [][]float64
	switch {
	case dc.modelPath != "":
		m, err := loadModel(dc.modelPath)
		if err != nil {
			return err
		}
		model = m
	case dc.demoRows > 0:
		model = demoModel(dc.demoRows, dc.demoCols, dc.seed, f)
	default:
		return fmt.Errorf("either -model or -demo-rows is required")
	}

	raw := make([][]int64, len(model))
	for i, row := range model {
		r, err := f.EncodeVector(row)
		if err != nil {
			return fmt.Errorf("model row %d: %w", i, err)
		}
		raw[i] = r
	}

	o := obs.New(0)
	simCfg := maxsim.Config{Width: dc.width, AccWidth: 2 * dc.width, Signed: true}
	srv, err := protocol.NewServer(simCfg)
	if err != nil {
		return err
	}
	srv.WithObs(o).WithTimeouts(protocol.Timeouts{
		Handshake: dc.handshakeTimeout, IO: dc.ioTimeout,
	})
	// A daemon-owned simulator drives the post-session memory-system
	// trace (stall cycles, peak occupancy). Its registry is shared with
	// the protocol sessions; Trace is read-only on the simulator, so
	// concurrent sessions may model through it safely.
	simCfg.Metrics = o.Metrics()
	sim, err := maxsim.New(simCfg)
	if err != nil {
		return err
	}

	// -precompute: pre-garble the model's shape in the background. Both
	// poolable OT modes are admitted up front (the client picks the
	// mode, the daemon cannot know which); any other shape the traffic
	// teaches is admitted on first miss. eng stays nil when disabled —
	// the protocol layer treats a nil engine as always-miss.
	var eng *precompute.Engine
	if dc.precompute {
		eng, err = precompute.New(precompute.Config{
			Sim:       simCfg,
			PoolSize:  dc.precomputePool,
			MaxShapes: dc.precomputeShapes,
			Metrics:   o.Metrics(),
		})
		if err != nil {
			return fmt.Errorf("precompute engine: %w", err)
		}
		srv.WithPrecompute(eng)
		for _, ot := range []string{"per-round", "batched"} {
			eng.Admit(precompute.Shape{
				Rows: len(raw), Cols: len(raw[0]),
				Width: dc.width, Signed: true, Mode: "matvec", OT: ot,
			})
		}
		eng.Start()
		log.Printf("maxd: precompute engine on (pool=%d per shape, max shapes=%d)",
			dc.precomputePool, dc.precomputeShapes)
	}

	ln, err := net.Listen("tcp", dc.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	log.Printf("maxd: serving %d×%d model on %s (b=%d, Q%d.%d fixed point)",
		len(raw), len(raw[0]), ln.Addr(), dc.width, dc.width-dc.frac-1, dc.frac)

	// Register the daemon-level counters before the metrics endpoint
	// goes live so the very first scrape already lists them (at zero).
	reg := o.Metrics()
	bytesIn := reg.Counter("wire_bytes_in_total", "framed bytes received from clients")
	bytesOut := reg.Counter("wire_bytes_out_total", "framed bytes sent to clients")
	connsTotal := reg.Counter("connections_total", "TCP connections accepted")

	var httpSrv *http.Server
	if dc.metricsAddr != "" {
		mln, err := net.Listen("tcp", dc.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		// Runtime observability rides along with the metrics surface:
		// every scrape samples goroutines, heap occupancy and GC
		// pause/cycle deltas, so a perf regression caught by the
		// benchgrid gate is explainable from /metrics alone.
		o.EnableRuntimeMetrics()
		handler := metricsHandler(o, dc.pprof)
		if dc.advertise {
			handler = advertiseHandler(handler, func() []string {
				return advertisedShapes(eng, len(raw), len(raw[0]), dc.width)
			})
		}
		httpSrv = &http.Server{Handler: handler}
		go httpSrv.Serve(mln)
		defer httpSrv.Close()
		surface := "/metrics /debug/sessions /healthz"
		if dc.pprof {
			surface += " /debug/pprof/"
		}
		if dc.advertise {
			surface += " /shapez"
		}
		log.Printf("maxd: observability on http://%s (%s)", mln.Addr(), surface)
	} else if dc.pprof {
		return fmt.Errorf("-pprof requires -metrics-addr")
	} else if dc.advertise {
		return fmt.Errorf("-advertise requires -metrics-addr")
	}

	// Graceful shutdown: a signal stops the accept loop; in-flight
	// sessions get dc.drainTimeout to finish before the daemon exits.
	// serveCtx is cancelled only after the drain deadline expires — it
	// interrupts sessions wherever they are, including wire operations
	// already blocked on a silent peer.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveCtx, killSessions := context.WithCancel(context.Background())
	defer killSessions()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()

	// -max-sessions admission control: a counting semaphore bounds the
	// sessions in flight; connections beyond the limit queue (visible
	// on the sessions_waiting gauge) up to -admission-wait and are then
	// shed with a BUSY frame, so overload degrades into bounded latency
	// and honest rejections, not silent unbounded queueing. busy=true
	// from acquire means "rejected for load" (the peer deserves a BUSY
	// frame); admitted=false with busy=false means "shutting down".
	var sem chan struct{}
	if dc.maxSessions > 0 {
		sem = make(chan struct{}, dc.maxSessions)
	}
	waiting := reg.Gauge("sessions_waiting", "connections queued behind the -max-sessions limit")
	busyRejects := reg.Counter("busy_rejects_total", "connections shed with a BUSY frame after the -admission-wait queue deadline")
	var lastReject atomic.Int64 // unix nanos of the most recent BUSY rejection
	acquire := func() (admitted, busy bool) {
		if sem == nil {
			return true, false
		}
		select {
		case sem <- struct{}{}:
			return true, false
		default:
		}
		waiting.Add(1)
		defer waiting.Add(-1)
		var deadline <-chan time.Time
		if dc.admissionWait > 0 {
			t := time.NewTimer(dc.admissionWait)
			defer t.Stop()
			deadline = t.C
		}
		select {
		case sem <- struct{}{}:
			return true, false
		case <-deadline:
			return false, true
		case <-ctx.Done():
			return false, false
		}
	}
	release := func() {
		if sem != nil {
			<-sem
		}
	}

	// /healthz load signal: overloaded while a BUSY rejection is recent
	// (a load balancer should route away), degraded while connections
	// are merely queueing, ok otherwise. The overload window matches the
	// admission wait so the state outlives the instant of rejection.
	rejectWindow := dc.admissionWait
	if rejectWindow < time.Second {
		rejectWindow = time.Second
	}
	o.SetHealth(func() string {
		if t := lastReject.Load(); t != 0 && time.Since(time.Unix(0, t)) < rejectWindow {
			return obs.HealthOverloaded
		}
		if waiting.Value() > 0 {
			return obs.HealthDegraded
		}
		return obs.HealthOK
	})

	handle := func(c net.Conn) {
		peer := c.RemoteAddr().String()
		// A panic anywhere in this connection's serving must cost only
		// this connection: the session layer already recovers inside
		// request handling, so this is the outermost backstop keeping
		// the daemon up (the accept loop never dies with a handler).
		defer func() {
			if r := recover(); r != nil {
				reg.Counter("panics_recovered_total", "panics recovered and converted to per-request errors").Inc()
				log.Printf("maxd: peer=%s recovered panic in connection handler: %v\n%s", peer, r, debug.Stack())
			}
		}()
		connsTotal.Inc()
		// Per-connection byte accounting; callbacks run on the session
		// goroutine only.
		var connIn, connOut uint64
		conn := wire.Observed(wire.NewStreamConn(c),
			func(n int) { bytesOut.Add(uint64(n)); connOut += uint64(n) },
			func(n int) { bytesIn.Add(uint64(n)); connIn += uint64(n) })
		defer conn.Close()

		admitted, busy := acquire()
		if busy {
			busyRejects.Inc()
			lastReject.Store(time.Now().UnixNano())
			// Best-effort BUSY frame under a short deadline: a peer too
			// broken to read two dozen bytes just gets the close.
			c.SetDeadline(time.Now().Add(2 * time.Second))
			if err := protocol.SendBusy(conn, dc.admissionWait); err != nil {
				log.Printf("maxd: peer=%s busy frame not delivered: %v", peer, err)
			}
			log.Printf("maxd: peer=%s rejected: busy (max-sessions=%d full past admission-wait=%s)",
				peer, dc.maxSessions, dc.admissionWait)
			return
		}
		if !admitted {
			log.Printf("maxd: peer=%s rejected: shutting down", peer)
			return
		}
		defer release()

		tr := o.Traces().StartSession("mux", peer)
		sess, err := srv.NewSessionContext(serveCtx, conn, protocol.SessionConfig{
			GarbleWorkers: dc.garbleWorkers, Trace: tr,
		})
		if err != nil {
			log.Printf("maxd: session=%s peer=%s status=error phase=setup bytes_in=%d bytes_out=%d err=%q",
				tr.ID(), peer, connIn, connOut, err)
			return
		}
		defer sess.Close()

		// Multiplexed request loop: the client issues any number of
		// matvec requests over the one OT setup; each garbles under
		// fresh labels.
		for {
			resp, err := sess.ServeContext(serveCtx, protocol.Request{Matrix: raw})
			if errors.Is(err, protocol.ErrSessionEnded) {
				break
			}
			if err != nil {
				log.Printf("maxd: session=%s peer=%s status=error req=%d bytes_in=%d bytes_out=%d err=%q",
					tr.ID(), peer, sess.Requests(), connIn, connOut, err)
				return
			}
			st := resp.Stats

			// Model the §5.1 memory system for this request's MAC
			// stream: how long would the FSM have stalled on the shared
			// output port, and how full did the core memory blocks get.
			stall := "skipped"
			if st.MACs <= traceMACLimit {
				if tres, terr := sim.Trace(maxsim.TraceConfig{MACs: int(st.MACs)}); terr == nil {
					stall = fmt.Sprintf("%.3f", tres.StallFraction())
				}
			} else {
				log.Printf("maxd: session=%s trace skipped: %d MACs exceed limit %d", tr.ID(), st.MACs, traceMACLimit)
			}

			dec := make([]float64, len(resp.Values))
			for i, v := range resp.Values {
				dec[i] = f.DecodeProduct(v)
			}
			log.Printf("maxd: session=%s peer=%s status=ok req=%d rows=%d macs=%d cycles=%d fpga_time=%s tables=%d table_bytes=%s pcie_time=%s stall_frac=%s",
				tr.ID(), peer, sess.Requests()-1, len(raw), st.MACs, st.Cycles, report.Dur(st.ModeledTime),
				st.TablesGarbled, report.Bytes(st.TableBytes), report.Dur(st.PCIeTime), stall)
			log.Printf("maxd: session=%s req=%d result=%v", tr.ID(), sess.Requests()-1, dec)
		}
		tr.SetAttr("requests", fmt.Sprint(sess.Requests()))
		tr.SetAttr("bytes_in", fmt.Sprint(connIn))
		tr.SetAttr("bytes_out", fmt.Sprint(connOut))
		log.Printf("maxd: session=%s peer=%s status=closed requests=%d bytes_in=%s bytes_out=%s",
			tr.ID(), peer, sess.Requests(), report.Bytes(connIn), report.Bytes(connOut))
	}

	var wg sync.WaitGroup
	var acceptErr error
	for {
		c, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				log.Printf("maxd: signal received, draining in-flight sessions (deadline %s)", dc.drainTimeout)
			} else {
				acceptErr = err
			}
			break
		}
		if dc.once {
			handle(c)
			break
		}
		// Fig. 1: "a cloud server architecture with multiple channels
		// to communicate with the clients" — one goroutine per client;
		// every session garbles under its own fresh labels.
		wg.Add(1)
		go func() {
			defer wg.Done()
			handle(c)
		}()
	}

	drained := make(chan struct{})
	go func() {
		wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(dc.drainTimeout):
		// The polite drain expired: cancel the serve context, which
		// slams the deadline on every session's connection and fails
		// their in-flight wire operations immediately. Escalation is
		// the moment metrics are most likely to be lost, so flush the
		// snapshot (and the load-shedding total) before the kill.
		log.Printf("maxd: drain deadline %s expired, cancelling in-flight sessions shutdown_busy_rejects=%d",
			dc.drainTimeout, busyRejects.Value())
		eng.Stop() // escalating anyway: remaining requests fall back inline
		logFinalSnapshot(o)
		killSessions()
		select {
		case <-drained:
		case <-time.After(5 * time.Second):
			log.Printf("maxd: sessions still in flight after cancellation, exiting anyway")
		}
	}

	// Stop the refill workers and drain the pools before the final
	// snapshot: a shut-down daemon must report zero pooled capacity, not
	// its last warm depths.
	eng.Stop()
	logFinalSnapshot(o)
	return acceptErr
}

// metricsHandler assembles the daemon's HTTP observability surface:
// the obs handler (/metrics, /debug/sessions, /healthz) plus, when
// pprofOn, the net/http/pprof endpoints under /debug/pprof/ — CPU,
// heap, goroutine, block and mutex profiles pulled from the live
// daemon with the standard `go tool pprof` flow. The pprof routes are
// mounted explicitly rather than via the package's DefaultServeMux
// side effect, so disabling the flag really removes the surface.
func metricsHandler(o *obs.Obs, pprofOn bool) http.Handler {
	h := o.Handler()
	if !pprofOn {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	mux.Handle("/", h)
	return mux
}

// advertisedShapes renders the shape hints /shapez serves: the live
// precompute pools when the engine runs (traffic-learned shapes
// included), otherwise the static model shape in both poolable OT
// modes.
func advertisedShapes(eng *precompute.Engine, rows, cols, width int) []string {
	var out []string
	if eng != nil {
		for s := range eng.Shapes() {
			out = append(out, s.String())
		}
	} else {
		for _, ot := range []string{"per-round", "batched"} {
			out = append(out, precompute.Shape{
				Rows: rows, Cols: cols, Width: width, Signed: true,
				Mode: "matvec", OT: ot,
			}.String())
		}
	}
	sort.Strings(out)
	return out
}

// advertiseHandler mounts /shapez over the base observability surface.
func advertiseHandler(base http.Handler, shapes func() []string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/shapez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"shapes": shapes()})
	})
	mux.Handle("/", base)
	return mux
}

// logFinalSnapshot flushes the complete metrics state to the log so a
// scrape-less deployment still retains the run's totals.
func logFinalSnapshot(o *obs.Obs) {
	var sb strings.Builder
	if err := o.Metrics().WritePrometheus(&sb); err != nil || sb.Len() == 0 {
		return
	}
	log.Printf("maxd: final metrics snapshot:\n%s", sb.String())
}
