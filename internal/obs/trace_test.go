package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSessionSpanLifecycle(t *testing.T) {
	tr := NewTracer(8)
	st := tr.StartSession("matvec", "127.0.0.1:9")
	if st.ID() != "s-000001" {
		t.Fatalf("id = %q", st.ID())
	}
	sp := st.StartSpan("handshake")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration %v not positive", d)
	}
	st.SetAttr("rows", "2")
	total := st.Finish(nil)
	if total <= 0 {
		t.Fatalf("session duration %v not positive", total)
	}

	snaps := tr.Recent(0)
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots", len(snaps))
	}
	s := snaps[0]
	if !s.Done || s.Err != "" || s.DurationUS <= 0 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Attrs["rows"] != "2" || s.Kind != "matvec" || s.Peer != "127.0.0.1:9" {
		t.Fatalf("snapshot %+v", s)
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "handshake" || s.Spans[0].DurationUS <= 0 {
		t.Fatalf("spans %+v", s.Spans)
	}
}

func TestFinishRecordsErrorOnce(t *testing.T) {
	tr := NewTracer(2)
	st := tr.StartSession("matvec", "")
	first := st.Finish(errors.New("boom"))
	second := st.Finish(nil) // idempotent; must not clear the error
	if first != second {
		t.Fatalf("durations differ: %v vs %v", first, second)
	}
	if got := tr.Recent(1)[0].Err; got != "boom" {
		t.Fatalf("err = %q", got)
	}
}

func TestRingEvictsOldestNewestFirst(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.StartSession("matvec", fmt.Sprintf("peer-%d", i)).Finish(nil)
	}
	snaps := tr.Recent(0)
	if len(snaps) != 3 {
		t.Fatalf("%d retained", len(snaps))
	}
	// Newest first: peers 4, 3, 2.
	for i, want := range []string{"peer-4", "peer-3", "peer-2"} {
		if snaps[i].Peer != want {
			t.Fatalf("snaps[%d].Peer = %q, want %q", i, snaps[i].Peer, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].Peer != "peer-4" {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestOpenSpanSnapshotsAsInFlight(t *testing.T) {
	tr := NewTracer(1)
	st := tr.StartSession("matvec", "")
	st.StartSpan("ot_setup") // never ended
	s := tr.Recent(0)[0]
	if s.Done || s.DurationUS != -1 {
		t.Fatalf("in-flight session snapshot %+v", s)
	}
	if s.Spans[0].DurationUS != -1 {
		t.Fatalf("open span snapshot %+v", s.Spans[0])
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	st := tr.StartSession("x", "y")
	sp := st.StartSpan("z")
	sp.End()
	st.SetAttr("a", "b")
	st.Finish(nil)
	if st.ID() != "" || tr.Recent(0) != nil {
		t.Fatal("nil tracer leaked state")
	}
}

// TestTracerConcurrentSessions races many sessions, spans and
// snapshot reads (run under -race).
func TestTracerConcurrentSessions(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				st := tr.StartSession("matvec", fmt.Sprintf("w%d", w))
				sp := st.StartSpan("rounds")
				st.SetAttr("i", "1")
				sp.End()
				st.Finish(nil)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Recent(0)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Recent(0)); got != 16 {
		t.Fatalf("retained %d sessions", got)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestHandlerSurface(t *testing.T) {
	o := New(4)
	o.Metrics().Counter("sessions_total", "sessions").Add(3)
	st := o.Traces().StartSession("matvec", "p")
	st.StartSpan("handshake").End()
	st.Finish(nil)

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics")
	if !strings.Contains(body, "sessions_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	body = httpGet(t, srv.URL+"/debug/sessions")
	var parsed struct {
		Sessions []SessionSnapshot `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("debug/sessions not JSON: %v\n%s", err, body)
	}
	if len(parsed.Sessions) != 1 || parsed.Sessions[0].Spans[0].Name != "handshake" {
		t.Fatalf("sessions = %+v", parsed.Sessions)
	}
	if body = httpGet(t, srv.URL+"/healthz"); body != "ok\n" {
		t.Fatalf("healthz = %q", body)
	}
}

func TestSpanCount(t *testing.T) {
	tr := NewTracer(2).StartSession("mux", "")
	for i := 0; i < 3; i++ {
		tr.StartSpan("rounds").End()
	}
	tr.StartSpan("ot_setup").End()
	tr.Finish(nil)
	s := tr.snapshot()
	if got := s.SpanCount("rounds"); got != 3 {
		t.Fatalf("SpanCount(rounds) = %d", got)
	}
	if got := s.SpanCount("ot_setup"); got != 1 {
		t.Fatalf("SpanCount(ot_setup) = %d", got)
	}
	if got := s.SpanCount("decode"); got != 0 {
		t.Fatalf("SpanCount(decode) = %d", got)
	}
}
