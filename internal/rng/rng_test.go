package rng

import (
	"crypto/rand"
	"math"
	"testing"
)

const streamLen = 20000

func cryptoBits(t *testing.T, n int) []bool {
	t.Helper()
	buf := make([]byte, (n+7)/8)
	if _, err := rand.Read(buf); err != nil {
		t.Fatal(err)
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = buf[i/8]>>(uint(i)%8)&1 == 1
	}
	return bits
}

func TestIgamqSanity(t *testing.T) {
	// Q(a, 0) = 1; Q decreases in x; known value Q(0.5, 0.5) ≈ 0.3173
	// (chi-square with 1 df at 1.0).
	if got := igamq(2, 0); got != 1 {
		t.Fatalf("Q(2,0) = %v", got)
	}
	if igamq(3, 1) <= igamq(3, 5) {
		t.Fatal("igamq not decreasing in x")
	}
	if got := igamq(0.5, 0.5); math.Abs(got-0.3173) > 0.001 {
		t.Fatalf("Q(0.5,0.5) = %v, want ≈0.3173", got)
	}
	if !math.IsNaN(igamq(-1, 2)) || !math.IsNaN(igamq(2, -1)) {
		t.Fatal("invalid arguments not rejected")
	}
}

func TestBatteryPassesOnCryptoRand(t *testing.T) {
	bits := cryptoBits(t, streamLen)
	for _, r := range Battery(bits) {
		if !r.Pass {
			t.Errorf("%s failed on crypto/rand: p=%v (%s)", r.Name, r.PValue, r.Detail)
		}
	}
}

func TestBatteryFailsOnAllZeros(t *testing.T) {
	bits := make([]bool, streamLen)
	if BatteryPasses(bits) {
		t.Fatal("all-zero stream passed the battery")
	}
	if Monobit(bits).Pass {
		t.Fatal("monobit passed on all zeros")
	}
}

func TestBatteryFailsOnAlternatingBits(t *testing.T) {
	bits := make([]bool, streamLen)
	for i := range bits {
		bits[i] = i%2 == 1
	}
	if Monobit(bits).PValue < Alpha {
		t.Fatal("alternating stream should pass monobit (balanced)")
	}
	if Runs(bits).Pass {
		t.Fatal("runs test passed on alternating stream")
	}
	if Autocorrelation(bits, 1).Pass {
		t.Fatal("lag-1 autocorrelation passed on alternating stream")
	}
}

func TestBatteryFailsOnBiasedStream(t *testing.T) {
	bits := cryptoBits(t, streamLen)
	// 60% ones: AND-in extra ones.
	extra := cryptoBits(t, streamLen)
	for i := range bits {
		if i%5 == 0 {
			bits[i] = bits[i] || extra[i] || true
		}
	}
	if Monobit(bits).Pass {
		t.Fatal("monobit passed on a heavily biased stream")
	}
}

func TestBatteryFailsOnRepeatedBlocks(t *testing.T) {
	// A short repeating pattern is balanced but structured: the poker
	// or autocorrelation test must catch it.
	pattern := []bool{true, true, false, true, false, false, true, false}
	bits := make([]bool, streamLen)
	for i := range bits {
		bits[i] = pattern[i%len(pattern)]
	}
	if Poker(bits).Pass && Autocorrelation(bits, 8).Pass {
		t.Fatal("repeated 8-bit pattern passed both poker and lag-8 autocorrelation")
	}
}

func TestRORNGPassesBattery(t *testing.T) {
	// §5.2: "The entropy of the implemented RNG on our evaluation
	// platform is thoroughly evaluated by NIST battery of randomness
	// tests."
	r := MustNew(Config{Seed: 1})
	bits := r.Bits(streamLen)
	for _, res := range Battery(bits) {
		if !res.Pass {
			t.Errorf("RO RNG failed %s: p=%v (%s)", res.Name, res.PValue, res.Detail)
		}
	}
}

func TestRORNGSeedsReproducible(t *testing.T) {
	a := MustNew(Config{Seed: 7}).Bits(256)
	b := MustNew(Config{Seed: 7}).Bits(256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c := MustNew(Config{Seed: 8}).Bits(256)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRORNGSingleOscillatorIsStructured(t *testing.T) {
	// One jittery ring alone has visible structure; the 16-way XOR is
	// what whitens the stream. With low jitter a single RO must fail.
	r := MustNew(Config{Oscillators: 1, JitterSigma: 0.001, Seed: 3})
	bits := r.Bits(streamLen)
	if BatteryPasses(bits) {
		t.Fatal("single low-jitter oscillator passed the battery")
	}
}

func TestRORNGReadPacksBits(t *testing.T) {
	r := MustNew(Config{Seed: 11})
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	if err != nil || n != 64 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if r.SamplesTaken != 64*8 {
		t.Fatalf("SamplesTaken = %d, want %d", r.SamplesTaken, 64*8)
	}
	allZero := true
	for _, b := range buf {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("Read produced all zeros")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Oscillators: -2}); err == nil {
		t.Fatal("negative oscillator count accepted")
	}
	if _, err := New(Config{JitterSigma: -1}); err == nil {
		t.Fatal("negative jitter accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{Oscillators: -1})
}

func TestBatteryResultFields(t *testing.T) {
	bits := cryptoBits(t, streamLen)
	for _, r := range Battery(bits) {
		if r.Name == "" || r.Detail == "" {
			t.Fatalf("battery result missing metadata: %+v", r)
		}
		if r.Pass != (r.PValue >= Alpha) {
			t.Fatalf("%s: Pass inconsistent with PValue", r.Name)
		}
	}
}

func BenchmarkRORNGBit(b *testing.B) {
	r := MustNew(Config{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Bit()
	}
}
