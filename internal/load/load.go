package load

import (
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"maxelerator/internal/obs"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

// Config drives one live load run.
type Config struct {
	// Target is the TCP address of a maxd or maxgw instance.
	Target string
	// Scenario is the offered load.
	Scenario Scenario
	// Timeouts bound each client wire phase (default 10s/10s).
	Timeouts protocol.Timeouts
	// DialTimeout bounds the TCP connect (default 2s).
	DialTimeout time.Duration
	// MetricsURL, when set, is the target's observability base URL
	// (e.g. "http://127.0.0.1:7701"); the run scrapes /histz before and
	// after and reports the pool hit-rate from the counter deltas.
	MetricsURL string
	// Registry, when set, reads pool counters in-process instead of
	// scraping — the validation harness's path. Overrides MetricsURL.
	Registry *obs.Registry
	// Logf receives per-session diagnostics; nil discards them.
	Logf func(string, ...any)
}

// Run executes the scenario against the live target and reports what
// happened. Open-loop: the arrival schedule is precomputed
// (ArrivalTimes) and paced by the wall clock, never slowed by slow
// responses; arrivals past MaxInflight are skipped, not blocked on.
func Run(cfg Config) (*Report, error) {
	arrivals, err := ArrivalTimes(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("load: target address is required")
	}
	if cfg.Timeouts == (protocol.Timeouts{}) {
		cfg.Timeouts = protocol.Timeouts{Handshake: 10 * time.Second, IO: 10 * time.Second}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	before := readPoolCounters(cfg)

	var (
		skipped, succeeded, shed, failed atomic.Int64
		started                          int
		mu                               sync.Mutex
		latencies                        []float64
		wg                               sync.WaitGroup
	)
	var sem chan struct{}
	if cfg.Scenario.MaxInflight > 0 {
		sem = make(chan struct{}, cfg.Scenario.MaxInflight)
	}

	start := time.Now()
	for i, a := range arrivals {
		// Pace to the schedule. A late wake-up does not slow later
		// arrivals: each sleeps relative to the shared run start.
		if d := time.Duration(a.At*float64(time.Second)) - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				skipped.Add(1)
				continue
			}
		}
		started++
		wg.Add(1)
		go func(i int, shape ShapeWeight) {
			defer wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			t0 := time.Now()
			err := oneSession(cfg, shape)
			switch {
			case err == nil:
				succeeded.Add(1)
				mu.Lock()
				latencies = append(latencies, time.Since(t0).Seconds())
				mu.Unlock()
			case isBusy(err):
				shed.Add(1)
			default:
				logf("load: session %d (%s): %v", i, shape.Key(), err)
				failed.Add(1)
			}
		}(i, a.Shape)
	}
	wg.Wait()

	r := &Report{
		Target:    cfg.Target,
		Scenario:  cfg.Scenario,
		Offered:   len(arrivals),
		Started:   started,
		Skipped:   int(skipped.Load()),
		Succeeded: int(succeeded.Load()),
		Shed:      int(shed.Load()),
		Failed:    int(failed.Load()),
	}
	r.Finalize(latencies)
	if after := readPoolCounters(cfg); after != nil && before != nil {
		r.Pool = NewPoolStats(after.Hits-before.Hits, after.Misses-before.Misses)
	}
	return r, nil
}

// oneSession runs a single client session: dial, hint, one matvec of
// the shape's width, clean close. The client vector is the maxbench
// pattern (j%16 − 8) so every run offers identical work.
func oneSession(cfg Config, shape ShapeWeight) error {
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		return err
	}
	cli.WithTimeouts(cfg.Timeouts)
	ot := shape.OT
	if ot == "" {
		ot = "per-round"
	}
	cli.WithShapeHint(protocol.ShapeHint{
		Rows: shape.Rows, Cols: shape.Cols, Width: shape.Width,
		Signed: true, Mode: "matvec", OT: ot,
	})
	nc, err := net.DialTimeout("tcp", cfg.Target, cfg.DialTimeout)
	if err != nil {
		return err
	}
	conn := wire.NewStreamConn(nc)
	defer conn.Close()
	cs, err := cli.Dial(conn)
	if err != nil {
		return err
	}
	y := make([]int64, shape.Cols)
	for j := range y {
		y[j] = int64(j%16 - 8)
	}
	if _, err := cs.Do(y); err != nil {
		return err
	}
	return cs.Close()
}

func isBusy(err error) bool {
	var be *protocol.BusyError
	return errors.As(err, &be)
}

// readPoolCounters samples cumulative precompute hit/miss counters
// from whichever source the config provides; nil when none is
// available (the report then omits pool stats).
func readPoolCounters(cfg Config) *PoolStats {
	var snap *obs.Snapshot
	switch {
	case cfg.Registry != nil:
		snap = cfg.Registry.Snapshot()
	case cfg.MetricsURL != "":
		s, err := FetchSnapshot(cfg.MetricsURL)
		if err != nil {
			return nil
		}
		snap = s
	default:
		return nil
	}
	return PoolFromSnapshot(snap)
}
