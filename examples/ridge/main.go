// Ridge regression (§6, Table 3): fit a linear model to data the
// client refuses to reveal. The server holds the regularised normal
// matrix AᵀA + λI (its aggregate of the training data), the client
// holds a candidate coefficient vector, and the MAC-dominated
// matrix-vector products of the gradient-descent solver run under the
// GC protocol on the accelerator.
//
//	go run ./examples/ridge
package main

import (
	"fmt"
	"log"
	"math/rand"

	"maxelerator/internal/casestudy"
	"maxelerator/internal/core"
	"maxelerator/internal/fixed"
	"maxelerator/internal/matrix"
	"maxelerator/internal/report"
)

func main() {
	const (
		d      = 3    // feature dimension
		n      = 32   // samples
		lambda = 0.1  // ridge penalty
		mu     = 0.05 // learning rate
		iters  = 60
	)
	rng := rand.New(rand.NewSource(7))

	// Synthetic dataset with known coefficients.
	trueCoef := []float64{1.2, -0.7, 0.4}
	A := matrix.MustDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			A.Set(i, j, 2*rng.Float64()-1)
		}
		dot, err := matrix.Dot(A.Row(i), trueCoef)
		if err != nil {
			log.Fatal(err)
		}
		y[i] = dot + 0.01*rng.NormFloat64()
	}

	// Normal equations: (AᵀA + λI)x = Aᵀy. The server precomputes the
	// left side from its data; gradient descent then needs one secure
	// mat-vec per iteration.
	at := A.T()
	ata, err := at.Mul(A)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < d; i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	aty, err := at.MatVec(y)
	if err != nil {
		log.Fatal(err)
	}

	f := fixed.Format{Width: 16, Frac: 8}
	acc, err := core.New(core.Config{Width: 16, AccWidth: 48, Signed: true})
	if err != nil {
		log.Fatal(err)
	}
	ataRaw := make([][]int64, d)
	for i := 0; i < d; i++ {
		r, err := f.EncodeVector(ata.Row(i))
		if err != nil {
			log.Fatal(err)
		}
		ataRaw[i] = r
	}

	x := make([]float64, d)
	var totalMACs uint64
	for it := 0; it < iters; it++ {
		xRaw, err := f.EncodeVector(x)
		if err != nil {
			log.Fatal(err)
		}
		// Secure (AᵀA + λI)·x on the accelerator.
		mv, st, err := acc.SecureMatVec(ataRaw, xRaw)
		if err != nil {
			log.Fatal(err)
		}
		totalMACs += st.MACs
		for j := 0; j < d; j++ {
			grad := f.DecodeProduct(mv[j]) - aty[j]
			x[j] -= mu * grad
		}
	}

	dist, err := matrix.MaxAbsDiff(x, trueCoef)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Privacy-preserving ridge regression (gradient descent, secure mat-vec)")
	fmt.Printf("  recovered coefficients : %+.4f\n", x)
	fmt.Printf("  ground truth           : %+.4f\n", trueCoef)
	fmt.Printf("  max abs error          : %.4f (fixed point Q%d.%d + λ bias)\n", dist, f.Width-f.Frac-1, f.Frac)
	fmt.Printf("  secure MACs executed   : %d over %d iterations\n", totalMACs, iters)
	fmt.Println()

	// The paper's Table 3 model over the published UCI datasets.
	rows, err := casestudy.Ridge(casestudy.PaperSpeedup32().Factor())
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("Table 3 model: ridge regression runtime improvement",
		"dataset", "n", "d", "baseline (s)", "ours model (s)", "paper (s)", "improvement")
	for _, r := range rows {
		t.AddRow(r.Dataset.Name, fmt.Sprint(r.Dataset.N), fmt.Sprint(r.Dataset.D),
			fmt.Sprintf("%.0f", r.Dataset.BaselineSeconds),
			fmt.Sprintf("%.1f", r.ModeledSeconds),
			fmt.Sprintf("%.1f", r.Dataset.OursSeconds),
			report.Ratio(r.ModeledImprovement))
	}
	fmt.Println(t)
}
