// Package fleetlab boots real in-process MAXelerator backends for the
// capacity-model validation loop: a protocol server with a precompute
// engine and maxd-style admission control behind a live TCP listener,
// plus the /metrics + /histz observability surface. The load generator
// (internal/load) drives it over real sockets; the capacity simulator
// (internal/capmodel) is then calibrated from the very histograms the
// run produced, so prediction and measurement share one ground truth.
//
// This is deliberately a lab harness, not a daemon: no signal handling,
// no drain ceremony, no model files — just the serving hot path with
// the same admission semantics as cmd/maxd (semaphore, bounded queue
// wait, BUSY shed).
package fleetlab

import (
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/precompute"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

// Config sizes one lab backend.
type Config struct {
	// Width is the operand bit-width (power of two ≥ 4).
	Width int
	// Rows, Cols shape the served model matrix.
	Rows, Cols int
	// Seed derives the model matrix deterministically.
	Seed int64
	// MaxSessions bounds concurrent sessions; 0 = unlimited.
	MaxSessions int
	// AdmissionWait bounds the queue wait behind MaxSessions before a
	// BUSY shed; 0 with MaxSessions > 0 sheds immediately when full.
	AdmissionWait time.Duration
	// PoolSize enables the precompute engine when > 0: entries kept
	// warm per shape.
	PoolSize int
	// MaxShapes bounds distinct pooled shapes (default 8).
	MaxShapes int
	// GarbleWorkers sizes the per-request row-garbling pool (default 1).
	GarbleWorkers int
	// Timeouts are the per-phase wire deadlines (default 10s/10s).
	Timeouts protocol.Timeouts
	// Metrics serves /metrics and /histz on a second listener when true.
	Metrics bool
}

// Backend is one live lab backend.
type Backend struct {
	// Addr is the protocol TCP address to dial.
	Addr string
	// MetricsAddr is the observability HTTP address ("" without
	// Config.Metrics).
	MetricsAddr string

	cfg    Config
	o      *obs.Obs
	srv    *protocol.Server
	eng    *precompute.Engine
	matrix [][]int64
	ln     net.Listener
	hsrv   *http.Server
	sem    chan struct{}

	mu     sync.Mutex
	closed bool
	conns  map[wire.Conn]struct{}
	wg     sync.WaitGroup
}

// Matrix returns the served model matrix (fixed-point words).
func (b *Backend) Matrix() [][]int64 { return b.matrix }

// Obs exposes the backend's observability root.
func (b *Backend) Obs() *obs.Obs { return b.o }

// Registry exposes the live metrics registry — the calibration source
// for in-process validation runs.
func (b *Backend) Registry() *obs.Registry { return b.o.Metrics() }

// Shape returns the precompute shape of the served model under ot.
func (b *Backend) Shape(ot string) precompute.Shape {
	return precompute.Shape{
		Rows: b.cfg.Rows, Cols: b.cfg.Cols, Width: b.cfg.Width,
		Signed: true, Mode: "matvec", OT: ot,
	}
}

// Prefill synchronously fills the model shape's pools to depth n in
// both poolable OT modes, so a validation run starts against a warm
// daemon instead of racing the background refill.
func (b *Backend) Prefill(n int) error {
	if b.eng == nil {
		return nil
	}
	for _, ot := range []string{"per-round", "batched"} {
		if err := b.eng.Prefill(b.Shape(ot), n); err != nil {
			return err
		}
	}
	return nil
}

// PoolStats returns cumulative precompute hits and misses (zeros
// without an engine).
func (b *Backend) PoolStats() (hits, misses uint64) {
	if b.eng == nil {
		return 0, 0
	}
	return b.eng.PoolStats()
}

// Start boots a backend on a loopback port.
func Start(cfg Config) (*Backend, error) {
	if cfg.Width == 0 {
		cfg.Width = 8
	}
	if cfg.Rows == 0 {
		cfg.Rows = 4
	}
	if cfg.Cols == 0 {
		cfg.Cols = 4
	}
	if cfg.MaxShapes == 0 {
		cfg.MaxShapes = 8
	}
	if cfg.GarbleWorkers == 0 {
		cfg.GarbleWorkers = 1
	}
	if cfg.Timeouts == (protocol.Timeouts{}) {
		cfg.Timeouts = protocol.Timeouts{Handshake: 10 * time.Second, IO: 10 * time.Second}
	}
	b := &Backend{cfg: cfg, o: obs.New(0), conns: map[wire.Conn]struct{}{}}

	// Deterministic model: small signed words well inside the b-bit
	// range, derived from the seed so every run serves the same matrix.
	rng := rand.New(rand.NewSource(cfg.Seed))
	limit := int64(1) << (cfg.Width - 2)
	if limit > 64 {
		limit = 64
	}
	b.matrix = make([][]int64, cfg.Rows)
	for i := range b.matrix {
		b.matrix[i] = make([]int64, cfg.Cols)
		for j := range b.matrix[i] {
			b.matrix[i][j] = rng.Int63n(2*limit+1) - limit
		}
	}

	simCfg := maxsim.Config{Width: cfg.Width, AccWidth: 2 * cfg.Width, Signed: true}
	srv, err := protocol.NewServer(simCfg)
	if err != nil {
		return nil, err
	}
	srv.WithObs(b.o).WithTimeouts(cfg.Timeouts)
	if cfg.PoolSize > 0 {
		eng, err := precompute.New(precompute.Config{
			Sim: simCfg, PoolSize: cfg.PoolSize, MaxShapes: cfg.MaxShapes,
			Metrics: b.o.Metrics(),
		})
		if err != nil {
			return nil, err
		}
		srv.WithPrecompute(eng)
		for _, ot := range []string{"per-round", "batched"} {
			eng.Admit(b.Shape(ot))
		}
		eng.Start()
		b.eng = eng
	}
	b.srv = srv
	if cfg.MaxSessions > 0 {
		b.sem = make(chan struct{}, cfg.MaxSessions)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if b.eng != nil {
			b.eng.Stop()
		}
		return nil, err
	}
	b.ln, b.Addr = ln, ln.Addr().String()

	if cfg.Metrics {
		mln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ln.Close()
			if b.eng != nil {
				b.eng.Stop()
			}
			return nil, err
		}
		b.MetricsAddr = mln.Addr().String()
		b.hsrv = &http.Server{Handler: b.o.Handler()}
		go b.hsrv.Serve(mln)
	}

	go b.acceptLoop(ln)
	return b, nil
}

func (b *Backend) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.handle(nc)
	}
}

// handle runs maxd's admission + multiplexed session loop for one
// connection: acquire a session slot (bounded queue, BUSY shed), then
// serve requests over one OT setup until the client ends the session.
func (b *Backend) handle(nc net.Conn) {
	defer b.wg.Done()
	conn := wire.NewStreamConn(nc)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		conn.Close()
		return
	}
	b.conns[conn] = struct{}{}
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.conns, conn)
		b.mu.Unlock()
		conn.Close()
	}()

	if admitted, busy := b.acquire(); busy {
		b.o.Metrics().Counter("busy_rejects_total",
			"connections shed with a BUSY frame after the admission-wait queue deadline").Inc()
		nc.SetDeadline(time.Now().Add(2 * time.Second))
		protocol.SendBusy(conn, b.cfg.AdmissionWait)
		return
	} else if !admitted {
		return
	}
	defer b.release()

	sess, err := b.srv.NewSession(conn, protocol.SessionConfig{GarbleWorkers: b.cfg.GarbleWorkers})
	if err != nil {
		return
	}
	defer sess.Close()
	for {
		// ErrSessionEnded is the clean end marker; any other error tears
		// the connection down the same way — the lab has no peer to blame.
		if _, err := sess.Serve(protocol.Request{Matrix: b.matrix}); err != nil {
			return
		}
	}
}

// acquire implements the maxd admission semantics: immediate slot if
// free, else a bounded queue wait visible on sessions_waiting, then a
// BUSY shed.
func (b *Backend) acquire() (admitted, busy bool) {
	if b.sem == nil {
		return true, false
	}
	select {
	case b.sem <- struct{}{}:
		return true, false
	default:
	}
	if b.cfg.AdmissionWait <= 0 {
		return false, true
	}
	waiting := b.o.Metrics().Gauge("sessions_waiting", "connections queued behind the session limit")
	waiting.Add(1)
	defer waiting.Add(-1)
	t := time.NewTimer(b.cfg.AdmissionWait)
	defer t.Stop()
	select {
	case b.sem <- struct{}{}:
		return true, false
	case <-t.C:
		return false, true
	}
}

func (b *Backend) release() {
	if b.sem != nil {
		<-b.sem
	}
}

// Stop tears the backend down: listener closed, live connections cut,
// session goroutines drained (bounded by the wire timeouts), engine
// stopped. Idempotent.
func (b *Backend) Stop() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	conns := make([]wire.Conn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	b.ln.Close()
	if b.hsrv != nil {
		b.hsrv.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	b.wg.Wait()
	if b.eng != nil {
		b.eng.Stop()
	}
}
