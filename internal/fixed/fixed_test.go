package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	for _, f := range []Format{{Width: 1, Frac: 0}, {Width: 64, Frac: 2}, {Width: 8, Frac: 8}, {Width: 8, Frac: -1}} {
		if err := f.Validate(); err == nil {
			t.Fatalf("format %+v validated", f)
		}
	}
	if err := Default32.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTripWithinEps(t *testing.T) {
	f := Format{Width: 16, Frac: 8}
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.14159, -100.25, f.Max(), f.Min()}
	for _, x := range cases {
		raw, err := f.Encode(x)
		if err != nil {
			t.Fatalf("Encode(%v): %v", x, err)
		}
		if d := math.Abs(f.Decode(raw) - x); d > f.Eps()/2+1e-12 {
			t.Fatalf("round trip of %v off by %v (eps %v)", x, d, f.Eps())
		}
	}
}

func TestEncodeRejectsOverflowAndNaN(t *testing.T) {
	f := Format{Width: 8, Frac: 4}
	for _, x := range []float64{f.Max() + 1, f.Min() - 1, math.NaN(), math.Inf(1)} {
		if _, err := f.Encode(x); err == nil {
			t.Fatalf("Encode(%v) succeeded", x)
		}
	}
}

func TestSaturateClamps(t *testing.T) {
	f := Format{Width: 8, Frac: 4}
	if got := f.Decode(f.Saturate(1000)); got != f.Max() {
		t.Fatalf("Saturate(1000) decoded to %v, want %v", got, f.Max())
	}
	if got := f.Decode(f.Saturate(-1000)); got != f.Min() {
		t.Fatalf("Saturate(-1000) decoded to %v, want %v", got, f.Min())
	}
	if got := f.Saturate(math.NaN()); got != 0 {
		t.Fatalf("Saturate(NaN) = %d", got)
	}
	if f.Decode(f.Saturate(1.25)) != 1.25 {
		t.Fatal("in-range saturate not exact")
	}
}

func TestQuantisationPropertyRandom(t *testing.T) {
	f := Format{Width: 24, Frac: 10}
	prop := func(seed int64) bool {
		x := math.Mod(float64(seed)/1e6, f.Max()/2)
		raw, err := f.Encode(x)
		if err != nil {
			return false
		}
		return math.Abs(f.Decode(raw)-x) <= f.Eps()/2+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeProduct(t *testing.T) {
	f := Format{Width: 16, Frac: 6}
	a, b := 3.25, -2.5
	ra := f.MustEncode(a)
	rb := f.MustEncode(b)
	if got := f.DecodeProduct(ra * rb); math.Abs(got-a*b) > 1e-9 {
		t.Fatalf("DecodeProduct = %v, want %v", got, a*b)
	}
}

func TestVectorHelpers(t *testing.T) {
	f := Format{Width: 16, Frac: 8}
	xs := []float64{1.5, -2.25, 0}
	raw, err := f.EncodeVector(xs)
	if err != nil {
		t.Fatal(err)
	}
	back := f.DecodeVector(raw)
	for i := range xs {
		if back[i] != xs[i] {
			t.Fatalf("vector round trip[%d] = %v, want %v", i, back[i], xs[i])
		}
	}
	if _, err := f.EncodeVector([]float64{1e12}); err == nil {
		t.Fatal("overflow element accepted")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEncode overflow did not panic")
		}
	}()
	Format{Width: 8, Frac: 4}.MustEncode(1e9)
}

func TestRangeConstants(t *testing.T) {
	f := Format{Width: 8, Frac: 4}
	if f.Max() != 127.0/16 || f.Min() != -8 {
		t.Fatalf("range [%v, %v]", f.Min(), f.Max())
	}
	if f.Eps() != 1.0/16 {
		t.Fatalf("eps = %v", f.Eps())
	}
	if f.Scale() != 16 {
		t.Fatalf("scale = %v", f.Scale())
	}
}
