package fpga

import (
	"testing"
	"time"
)

func TestMACUnitResourcesMatchTable1(t *testing.T) {
	want := map[int]Resources{
		8:  {LUT: 29500, LUTRAM: 128, FlipFlop: 24400},
		16: {LUT: 59100, LUTRAM: 384, FlipFlop: 48800},
		32: {LUT: 111000, LUTRAM: 640, FlipFlop: 84000},
	}
	for b, w := range want {
		got, err := MACUnitResources(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("b=%d: %+v, want %+v", b, got, w)
		}
	}
}

func TestMACUnitResourcesLinearScaling(t *testing.T) {
	// Table 1's stated property: resources grow (roughly linearly)
	// with b — so they must be strictly monotone across widths.
	prev := Resources{}
	for _, b := range []int{4, 8, 12, 16, 24, 32, 48, 64} {
		r, err := MACUnitResources(b)
		if err != nil {
			t.Fatal(err)
		}
		if r.LUT <= prev.LUT || r.FlipFlop <= prev.FlipFlop {
			t.Fatalf("b=%d resources %+v not above previous %+v", b, r, prev)
		}
		prev = r
	}
}

func TestMACUnitResourcesInterpolation(t *testing.T) {
	r24, err := MACUnitResources(24)
	if err != nil {
		t.Fatal(err)
	}
	// Midpoint of the 16–32 segment.
	if r24.LUT != (59100+111000)/2 {
		t.Fatalf("b=24 LUT = %d", r24.LUT)
	}
	if r24.LUTRAM != (384+640)/2 {
		t.Fatalf("b=24 LUTRAM = %d", r24.LUTRAM)
	}
}

func TestMACUnitResourcesRejectsBadWidths(t *testing.T) {
	for _, b := range []int{0, -8, 1, 7, 9} {
		if _, err := MACUnitResources(b); err == nil {
			t.Fatalf("width %d accepted", b)
		}
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{LUT: 1, LUTRAM: 2, FlipFlop: 3}
	b := Resources{LUT: 10, LUTRAM: 20, FlipFlop: 30}
	if got := a.Add(b); got != (Resources{11, 22, 33}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Scale(4); got != (Resources{4, 8, 12}) {
		t.Fatalf("Scale = %+v", got)
	}
}

func TestVCU108Clock(t *testing.T) {
	if VCU108.MaxClockMHz != 200 {
		t.Fatalf("VCU108 clock = %v MHz", VCU108.MaxClockMHz)
	}
	if got := VCU108.ClockPeriod(); got != 5*time.Nanosecond {
		t.Fatalf("clock period = %v", got)
	}
	// Table 2: 24 cycles per MAC at b=8 is 0.12 µs at 200 MHz.
	if got := VCU108.CyclesToDuration(24); got != 120*time.Nanosecond {
		t.Fatalf("24 cycles = %v", got)
	}
}

func TestMaxMACUnits(t *testing.T) {
	n32, err := VCU108.MaxMACUnits(32)
	if err != nil {
		t.Fatal(err)
	}
	// 537600 LUT / 111000 LUT per unit = 4 full b=32 MAC units.
	if n32 != 4 {
		t.Fatalf("b=32 units = %d, want 4", n32)
	}
	n8, err := VCU108.MaxMACUnits(8)
	if err != nil {
		t.Fatal(err)
	}
	if n8 <= n32 {
		t.Fatalf("narrower MACs should fit more units: b=8 %d vs b=32 %d", n8, n32)
	}
	if _, err := VCU108.MaxMACUnits(3); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestUtilization(t *testing.T) {
	r, err := MACUnitResources(32)
	if err != nil {
		t.Fatal(err)
	}
	u := VCU108.Utilization(r)
	if u <= 0 || u >= 1 {
		t.Fatalf("one b=32 MAC unit utilisation = %v", u)
	}
	full := VCU108.Utilization(VCU108.Fabric)
	if full != 1 {
		t.Fatalf("full-fabric utilisation = %v", full)
	}
}

func TestPCIeTransferTime(t *testing.T) {
	l := PCIeLink{BandwidthMBps: 100, LatencyPerTransfer: time.Millisecond}
	if got := l.TransferTime(0); got != 0 {
		t.Fatalf("zero-byte transfer = %v", got)
	}
	// 100 MiB at 100 MiB/s = 1 s + 1 ms latency.
	got := l.TransferTime(100 * 1024 * 1024)
	want := time.Second + time.Millisecond
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("100 MiB transfer = %v, want ≈%v", got, want)
	}
}

func TestPCIeSustainsThroughput(t *testing.T) {
	if !DefaultPCIe.SustainsThroughput(1024 * 1024) {
		t.Fatal("1 MiB/s not sustained")
	}
	if DefaultPCIe.SustainsThroughput(10e9) {
		t.Fatal("10 GB/s claimed sustainable over PCIe model")
	}
}

func TestCyclesToDurationScales(t *testing.T) {
	d1 := VCU108.CyclesToDuration(1000)
	d2 := VCU108.CyclesToDuration(2000)
	if d2 != 2*d1 {
		t.Fatalf("cycle durations not linear: %v vs %v", d1, d2)
	}
}
