package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestRunLatencyJSON runs the smallest real measurement through both
// passes and checks the machine-readable artefact: two modes, sane
// ordering of the percentiles, and a reported speedup.
func TestRunLatencyJSON(t *testing.T) {
	var out bytes.Buffer
	lc := latencyConfig{rows: 2, cols: 2, width: 8, requests: 3, precompute: true, pool: 1, jsonOut: true}
	if err := runLatency(lc, &out); err != nil {
		t.Fatal(err)
	}
	var rep latencyReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("latency JSON did not parse: %v\n%s", err, out.String())
	}
	if len(rep.Results) != 2 || rep.Results[0].Mode != "inline" || rep.Results[1].Mode != "precomputed" {
		t.Fatalf("results = %+v, want inline then precomputed", rep.Results)
	}
	for _, r := range rep.Results {
		if r.Requests != 3 {
			t.Fatalf("%s requests = %d, want 3", r.Mode, r.Requests)
		}
		if r.P50Ms <= 0 || r.P50Ms > r.P95Ms || r.P95Ms > r.P99Ms {
			t.Fatalf("%s percentiles not ordered: %+v", r.Mode, r)
		}
	}
	if rep.SpeedupP50 <= 0 {
		t.Fatalf("speedup = %v, want > 0", rep.SpeedupP50)
	}
}

func TestRunLatencyHumanOutput(t *testing.T) {
	var out bytes.Buffer
	lc := latencyConfig{rows: 2, cols: 2, width: 8, requests: 2}
	if err := runLatency(lc, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "p50") || !strings.Contains(s, "inline") {
		t.Fatalf("human output missing table:\n%s", s)
	}
	if strings.Contains(s, "precomputed") {
		t.Fatalf("precomputed pass ran without -precompute:\n%s", s)
	}
}

func TestRunLatencyValidates(t *testing.T) {
	var out bytes.Buffer
	if err := runLatency(latencyConfig{rows: 0, cols: 2, width: 8, requests: 1}, &out); err == nil {
		t.Fatal("zero rows accepted")
	}
	if err := runLatency(latencyConfig{rows: 2, cols: 2, width: 8, requests: 0}, &out); err == nil {
		t.Fatal("zero requests accepted")
	}
	if err := runLatency(latencyConfig{rows: 2, cols: 2, width: 7, requests: 1}, &out); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []time.Duration{10, 20, 30, 40}
	for _, tc := range []struct {
		p    int
		want time.Duration
	}{{50, 20}, {95, 40}, {99, 40}, {1, 10}} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Fatalf("p%d = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
}
