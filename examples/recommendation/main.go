// Recommendation system (§6): matrix factorisation with private
// ratings, after Nikolaenko et al. [6]. User and item profiles are
// learned by alternating gradient steps; the inner products between
// profile vectors — the computation that dominates each iteration —
// run as privacy-preserving MACs on the accelerator.
//
//	go run ./examples/recommendation
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"maxelerator/internal/casestudy"
	"maxelerator/internal/core"
	"maxelerator/internal/fixed"
	"maxelerator/internal/report"
)

const (
	users   = 4
	items   = 5
	profile = 3 // d: dimension of user/item profiles
	epochs  = 40
	lr      = 0.05
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Ratings matrix with a known low-rank structure plus noise;
	// 0 marks "not rated".
	ratings := [users][items]float64{}
	uTrue := randomProfiles(rng, users)
	vTrue := randomProfiles(rng, items)
	for u := 0; u < users; u++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.75 { // 75% of entries observed
				ratings[u][i] = dot(uTrue[u], vTrue[i]) + 0.02*rng.NormFloat64()
			}
		}
	}

	f := fixed.Format{Width: 16, Frac: 10}
	acc, err := core.New(core.Config{Width: 16, AccWidth: 48, Signed: true})
	if err != nil {
		log.Fatal(err)
	}

	// securePredict computes û = u·v through the GC protocol: the
	// gradient computation of [6] spends over 2/3 of its time in
	// exactly these inner products.
	var secureMACs uint64
	securePredict := func(u, v []float64) float64 {
		p, st, err := acc.SecureDotProductFixed(f, u, v)
		if err != nil {
			log.Fatal(err)
		}
		secureMACs += st.MACs
		return p
	}

	U := randomProfiles(rng, users)
	V := randomProfiles(rng, items)
	var rmseFirst, rmseLast float64
	for epoch := 0; epoch < epochs; epoch++ {
		var se float64
		var cnt int
		for u := 0; u < users; u++ {
			for i := 0; i < items; i++ {
				r := ratings[u][i]
				if r == 0 {
					continue
				}
				pred := securePredict(U[u], V[i])
				e := r - pred
				se += e * e
				cnt++
				for k := 0; k < profile; k++ {
					gu := -2 * e * V[i][k]
					gv := -2 * e * U[u][k]
					U[u][k] -= lr * gu
					V[i][k] -= lr * gv
				}
			}
		}
		rmse := math.Sqrt(se / float64(cnt))
		if epoch == 0 {
			rmseFirst = rmse
		}
		rmseLast = rmse
	}

	fmt.Println("Privacy-preserving matrix factorisation (secure gradient inner products)")
	fmt.Printf("  ratings          : %d users × %d items, profile dimension %d\n", users, items, profile)
	fmt.Printf("  RMSE epoch 1     : %.4f\n", rmseFirst)
	fmt.Printf("  RMSE epoch %-3d   : %.4f\n", epochs, rmseLast)
	fmt.Printf("  secure MACs      : %d\n", secureMACs)
	if rmseLast >= rmseFirst {
		log.Fatal("training did not reduce RMSE")
	}
	fmt.Println()

	res, err := casestudy.Recommendation(casestudy.PaperSpeedup32().Factor())
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("§6 MovieLens workload model", "metric", "value")
	t.AddRow("baseline per iteration [6]", report.Dur(res.BaselinePerIter))
	t.AddRow("accelerated (model)", report.Dur(res.AcceleratedPerIter))
	t.AddRow("accelerated (paper)", report.Dur(res.PaperAcceleratedPerIter))
	t.AddRow("improvement", fmt.Sprintf("%.0f%%", res.ImprovementPct))
	fmt.Println(t)
}

func randomProfiles(rng *rand.Rand, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, profile)
		for k := range out[i] {
			out[i][k] = 0.3 + 0.4*rng.Float64()
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
