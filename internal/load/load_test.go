package load

import (
	"math"
	"reflect"
	"testing"
)

func mix() []ShapeWeight {
	return []ShapeWeight{
		{Rows: 4, Cols: 4, Width: 8, Weight: 3},
		{Rows: 2, Cols: 8, Width: 8, Weight: 1},
	}
}

func TestArrivalTimesDeterministic(t *testing.T) {
	sc := Scenario{Rate: 50, Process: Poisson, DurationSec: 5, Seed: 42, Shapes: mix()}
	a, err := ArrivalTimes(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ArrivalTimes(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	sc.Seed = 43
	c, err := ArrivalTimes(sc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestArrivalTimesRateAndOrdering(t *testing.T) {
	for _, proc := range []string{Poisson, Uniform, Burst} {
		sc := Scenario{Rate: 100, Process: proc, DurationSec: 10, Seed: 7, Shapes: mix()}
		arr, err := ArrivalTimes(sc)
		if err != nil {
			t.Fatal(err)
		}
		// Offered count tracks rate·duration. Poisson fluctuates; 30%
		// slack at n=1000 is > 9 standard deviations.
		want := sc.Rate * sc.DurationSec
		if got := float64(len(arr)); got < want*0.7 || got > want*1.3 {
			t.Errorf("%s: %v arrivals, want ≈%v", proc, got, want)
		}
		prev := 0.0
		for i, a := range arr {
			if a.At < prev {
				t.Fatalf("%s: arrival %d at %v before %v (not sorted)", proc, i, a.At, prev)
			}
			if a.At >= sc.DurationSec {
				t.Fatalf("%s: arrival %d at %v past the %vs window", proc, i, a.At, sc.DurationSec)
			}
			prev = a.At
		}
	}
}

// The shape stream is seeded independently of the gap stream, so the
// two processes draw the same shape sequence at the same seed.
func TestShapeSequenceSharedAcrossProcesses(t *testing.T) {
	base := Scenario{Rate: 40, Process: Poisson, DurationSec: 5, Seed: 9, Shapes: mix()}
	p, err := ArrivalTimes(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Process = Uniform
	u, err := ArrivalTimes(base)
	if err != nil {
		t.Fatal(err)
	}
	n := len(p)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if p[i].Shape != u[i].Shape {
			t.Fatalf("shape draw %d differs across processes: %v vs %v", i, p[i].Shape, u[i].Shape)
		}
	}
}

func TestArrivalTimesShapeMixWeights(t *testing.T) {
	sc := Scenario{Rate: 200, Process: Uniform, DurationSec: 20, Seed: 3, Shapes: mix()}
	arr, err := ArrivalTimes(sc)
	if err != nil {
		t.Fatal(err)
	}
	heavy := 0
	for _, a := range arr {
		if a.Shape.Rows == 4 {
			heavy++
		}
	}
	frac := float64(heavy) / float64(len(arr))
	if math.Abs(frac-0.75) > 0.05 {
		t.Errorf("weight-3 shape drew %.3f of arrivals, want ≈0.75", frac)
	}
}

func TestBurstClumping(t *testing.T) {
	sc := Scenario{Rate: 80, Process: Burst, BurstSize: 8, DurationSec: 2, Seed: 1, Shapes: mix()}
	arr, err := ArrivalTimes(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr)%8 != 0 {
		t.Fatalf("%d arrivals, want a multiple of the burst size 8", len(arr))
	}
	for i := 0; i < len(arr); i += 8 {
		for k := 1; k < 8; k++ {
			if arr[i+k].At != arr[i].At {
				t.Fatalf("burst at index %d not clumped: %v vs %v", i, arr[i+k].At, arr[i].At)
			}
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	good := Scenario{Rate: 1, Process: Poisson, DurationSec: 1, Shapes: mix()}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"zero rate", func(s *Scenario) { s.Rate = 0 }},
		{"zero duration", func(s *Scenario) { s.DurationSec = 0 }},
		{"unknown process", func(s *Scenario) { s.Process = "fractal" }},
		{"no shapes", func(s *Scenario) { s.Shapes = nil }},
		{"zero weights", func(s *Scenario) { s.Shapes = []ShapeWeight{{Rows: 1, Cols: 1, Width: 8, Weight: 0}} }},
		{"bad shape", func(s *Scenario) { s.Shapes = []ShapeWeight{{Rows: 0, Cols: 1, Width: 8, Weight: 1}} }},
	}
	for _, tc := range cases {
		s := good
		s.Shapes = mix()
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSummarizeNearestRank(t *testing.T) {
	// 100 samples 1ms..100ms: the nearest-rank p50 is exactly the 50th.
	s := make([]float64, 100)
	for i := range s {
		s[i] = float64(i+1) / 1000
	}
	p := Summarize(s)
	if p.P50Ms != 50 || p.P99Ms != 99 || p.MaxMs != 100 || p.Samples != 100 {
		t.Errorf("percentiles = %+v", p)
	}
	if math.Abs(p.MeanMs-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", p.MeanMs)
	}
	if got := Summarize(nil); got != (Percentiles{}) {
		t.Errorf("empty input = %+v, want zero value", got)
	}
	one := Summarize([]float64{0.007})
	if one.P50Ms != 7 || one.P99Ms != 7 {
		t.Errorf("single sample = %+v", one)
	}
}

func TestReportFinalize(t *testing.T) {
	r := &Report{
		Scenario:  Scenario{Rate: 10, DurationSec: 4},
		Offered:   40,
		Succeeded: 30,
	}
	r.Finalize([]float64{0.01, 0.02, 0.03})
	if r.OfferedRate != 10 {
		t.Errorf("offered rate = %v, want 10", r.OfferedRate)
	}
	if r.AchievedRate != 7.5 {
		t.Errorf("achieved rate = %v, want 7.5", r.AchievedRate)
	}
	if r.Latency.Samples != 3 {
		t.Errorf("latency samples = %d, want 3", r.Latency.Samples)
	}
}
