package protocol

// Streaming serve pipeline (the PR 8 hot path). The matvec datapath
// used to garble every row, buffer each table into its own []byte, and
// only then stream — the evaluator idled during garbling and peak
// memory scaled with the request. Here production and transfer overlap:
// a producer (the garble pool's in-order reorder stage, or the
// precompute pool replay) yields garbled-row chunks through a bounded
// pipeline.Stream into a consumer that frames material zero-copy
// (gc.AppendMaterial into a wire.Arena buffer, one vectored write per
// frame) and runs the per-round OT. The bytes on the wire are
// byte-identical to the buffered path at any pool size or pipeline
// depth — only the timing and the buffering change, which is what the
// bytes_buffered_peak gauge exists to prove.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"maxelerator/internal/gc"
	"maxelerator/internal/label"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/ot"
	"maxelerator/internal/pipeline"
	"maxelerator/internal/wire"
)

// pipeDepth is the serve pipeline's chunk buffer: how many garbled rows
// may sit between the producer and the wire at once. Together with the
// garble pool's admission window it bounds per-request buffering to
// O(workers + pipeDepth) rows instead of O(rows). A variable only so
// the transcript property test can sweep it (set while no session is
// in flight, like garbleTestHook); the wire bytes must not depend on
// it.
var pipeDepth = 2

// errStreamAborted is the producer's return when the consumer bailed
// first. It never escapes serveRows: pipeline.Stream reports the
// consumer's error in that case.
var errStreamAborted = errors.New("protocol: row stream aborted by consumer")

// rowChunk is one garbled row in flight between garbling and framing.
type rowChunk struct {
	idx int
	run *maxsim.DotProductRun
}

// byteWatermark tracks bytes currently buffered between production and
// transfer, with a high-water mark. Producer and consumer update it
// from different goroutines.
type byteWatermark struct {
	cur, peak atomic.Int64
}

func (w *byteWatermark) add(n int64) {
	c := w.cur.Add(n)
	for {
		p := w.peak.Load()
		if c <= p || w.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

// sendMaterialFramed ships garbled material behind the material round
// tag like sendMaterial, but assembles the frame in a pooled arena
// buffer (no per-table []byte) and transmits it with one vectored
// write. The bytes on the wire are identical to sendMaterial's.
func sendMaterialFramed(fw *wire.FrameWriter, m *gc.Material) error {
	size, err := gc.MaterialSize(m)
	if err != nil {
		return err
	}
	buf := fw.Begin(1 + size)
	buf.B = append(buf.B, roundTagMaterial)
	if buf.B, err = gc.AppendMaterial(buf.B, m); err != nil {
		buf.Free()
		return err
	}
	return fw.Send(buf)
}

// rowStreamer is the consumer state of one request's serve pipeline.
type rowStreamer struct {
	sess *ServerSession
	ot   OTMode
	fw   *wire.FrameWriter
	wm   byteWatermark

	agg      Stats
	allPairs []label.Pair            // batched mode: every round's pairs, in order
	runs     []*maxsim.DotProductRun // batched mode: material deferred past the OT
}

func newRowStreamer(sess *ServerSession, mode OTMode) *rowStreamer {
	return &rowStreamer{
		sess: sess,
		ot:   mode,
		fw:   wire.NewFrameWriter(sess.conn, sess.srv.arena),
	}
}

// offer accounts a chunk as buffered and hands it to the pipeline.
func (st *rowStreamer) offer(yield func(rowChunk) bool, i int, run *maxsim.DotProductRun) bool {
	st.wm.add(int64(run.Stats.TableBytes))
	return yield(rowChunk{idx: i, run: run})
}

// consume frames and transfers one garbled row. Per-round mode streams
// material and runs that row's OT immediately; batched mode only
// accumulates (its one OT must precede any material, so transfer waits
// for the tail — the honest O(request) case the watermark exposes).
func (st *rowStreamer) consume(c rowChunk) error {
	st.sess.ss.reg.Counter("pipeline_chunks_total",
		"garbled-row chunks streamed through the serve pipeline").Inc()
	addStats(&st.agg, &c.run.Stats)
	if st.ot == OTBatched {
		st.runs = append(st.runs, c.run)
		for _, gb := range c.run.Rounds {
			st.allPairs = append(st.allPairs, gb.EvalPairs...)
		}
		return nil
	}
	for _, gb := range c.run.Rounds {
		if err := sendMaterialFramed(st.fw, &gb.Material); err != nil {
			return err
		}
		if err := ot.SendLabels(st.sess.sender, gb.EvalPairs); err != nil {
			return err
		}
	}
	st.wm.add(-int64(c.run.Stats.TableBytes))
	return nil
}

// run drives the pipeline for one request: pre non-nil replays pooled
// material straight into the stream (a precompute hit never re-garbles);
// otherwise the garble pool produces. Deadlines and cancellation hold
// at every stage — the consumer's wire operations run under the rounds
// phase budget, the producer checks ctx between rows, and a producer
// panic is contained exactly like a worker panic.
func (st *rowStreamer) run(ctx context.Context, A [][]int64, workers int, pre []*maxsim.DotProductRun) error {
	ss := st.sess.ss
	defer func() {
		ss.reg.Gauge("bytes_buffered_peak",
			"peak garbled-material bytes buffered between garbling and wire transfer (last request)").
			Set(st.wm.peak.Load())
	}()

	produce := func(yield func(rowChunk) bool) error {
		if pre != nil {
			for i, run := range pre {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("protocol: streaming interrupted at row %d: %w", i, err)
				}
				if !st.offer(yield, i, run) {
					return ctx.Err() // nil when the consumer failed; Stream reports its error
				}
			}
			return nil
		}
		return st.sess.garbleRows(ctx, A, workers, func(i int, run *maxsim.DotProductRun) error {
			if !st.offer(yield, i, run) {
				if err := ctx.Err(); err != nil {
					return err
				}
				return errStreamAborted
			}
			return nil
		})
	}

	if err := pipeline.Stream(ctx, pipeDepth, produce, st.consume); err != nil {
		var pe *pipeline.PanicError
		if errors.As(err, &pe) {
			return recoveredPanicStack(ss.reg, pe.Value, pe.Stack)
		}
		return err
	}

	if st.ot == OTBatched {
		if err := ot.SendLabels(st.sess.sender, st.allPairs); err != nil {
			return err
		}
		for _, run := range st.runs {
			for _, gb := range run.Rounds {
				if err := sendMaterialFramed(st.fw, &gb.Material); err != nil {
					return err
				}
			}
			st.wm.add(-int64(run.Stats.TableBytes))
		}
	}
	return nil
}
