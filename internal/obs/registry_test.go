package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tables_total", "tables")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same name+labels returns the same instance.
	if r.Counter("tables_total", "tables") != c {
		t.Fatal("counter not deduplicated")
	}
	g := r.Gauge("active", "active")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.SetMax(2)
	if g.Value() != 4 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatal("SetMax did not raise the gauge")
	}
}

func TestPhaseTimeoutsCounter(t *testing.T) {
	r := NewRegistry()
	r.PhaseTimeouts("rounds").Inc()
	r.PhaseTimeouts("rounds").Inc()
	r.PhaseTimeouts("handshake").Inc()
	if got := r.PhaseTimeouts("rounds").Value(); got != 2 {
		t.Fatalf("rounds timeouts = %d", got)
	}
	if got := r.PhaseTimeouts("handshake").Value(); got != 1 {
		t.Fatalf("handshake timeouts = %d", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `phase_timeouts_total{phase="rounds"} 2`) {
		t.Fatalf("exposition missing phase timeouts:\n%s", sb.String())
	}
	// Nil-safe like every other metric accessor.
	var nilReg *Registry
	nilReg.PhaseTimeouts("rounds").Inc()
}

func TestLabelledCountersAreDistinct(t *testing.T) {
	r := NewRegistry()
	c0 := r.Counter("core_idle_slots_total", "idle", L("core", "0"))
	c1 := r.Counter("core_idle_slots_total", "idle", L("core", "1"))
	if c0 == c1 {
		t.Fatal("different labels share an instance")
	}
	c0.Add(5)
	c1.Add(7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`core_idle_slots_total{core="0"} 5`,
		`core_idle_slots_total{core="1"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	// Binary-exact samples so the sum assertion is not at the mercy of
	// float rounding.
	h := r.Histogram("session_seconds", "session latency", []float64{0.25, 1, 8})
	for _, v := range []float64{0.125, 0.25, 0.5, 4, 64} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 68.875 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative le buckets: 0.125 and 0.25 fall in le=0.25; 0.5 adds
	// to le=1; 4 adds to le=8; 64 only reaches +Inf.
	for _, want := range []string{
		"# TYPE session_seconds histogram",
		`session_seconds_bucket{le="0.25"} 2`,
		`session_seconds_bucket{le="1"} 3`,
		`session_seconds_bucket{le="8"} 4`,
		`session_seconds_bucket{le="+Inf"} 5`,
		"session_seconds_sum 68.875",
		"session_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionSortedWithHelpAndType(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last")
	r.Counter("aa_total", "first").Add(3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# HELP aa_total first") ||
		!strings.Contains(out, "# TYPE aa_total counter") {
		t.Fatalf("missing HELP/TYPE:\n%s", out)
	}
	if strings.Index(out, "aa_total") > strings.Index(out, "zz_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter held a value")
	}
	g := r.Gauge("b", "")
	g.Set(1)
	g.Add(1)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge held a value")
	}
	h := r.Histogram("c", "", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram held samples")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var o *Obs
	if o.Metrics() != nil || o.Traces() != nil {
		t.Fatal("nil Obs returned non-nil components")
	}
}

// TestConcurrentIncrements is the ISSUE's required concurrent race
// test: hammer one counter, one gauge and one histogram from many
// goroutines (run under -race) and check the totals are exact.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Exercise create-or-get concurrently too.
			c := r.Counter("hits_total", "hits")
			g := r.Gauge("depth", "depth")
			h := r.Histogram("lat_seconds", "lat", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(int64(i))
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "hits").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat_seconds", "lat", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat_seconds", "lat", nil).Sum(); got != 0.25*workers*perWorker {
		t.Fatalf("histogram sum = %v", got)
	}
}
