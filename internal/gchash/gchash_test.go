package gchash

import (
	"testing"
	"testing/quick"

	"maxelerator/internal/label"
)

func hashers() []Hasher { return []Hasher{MustAES(), NewSHA256()} }

func TestDeterministic(t *testing.T) {
	for _, h := range hashers() {
		x := label.MustRandom()
		if h.Hash(x, 42) != h.Hash(x, 42) {
			t.Fatalf("%s: hash not deterministic", h.Name())
		}
	}
}

func TestTweakSeparation(t *testing.T) {
	for _, h := range hashers() {
		f := func(x label.Label, t1, t2 uint64) bool {
			if t1 == t2 {
				return true
			}
			return h.Hash(x, t1) != h.Hash(x, t2)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
	}
}

func TestInputSeparation(t *testing.T) {
	for _, h := range hashers() {
		f := func(x, y label.Label, tw uint64) bool {
			if x == y {
				return true
			}
			return h.Hash(x, tw) != h.Hash(y, tw)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
	}
}

func TestHashIntoMatchesHash(t *testing.T) {
	for _, h := range hashers() {
		f := func(x label.Label, tw uint64) bool {
			var dst label.Label
			h.HashInto(&x, tw, &dst)
			return dst == h.Hash(x, tw)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
	}
}

func TestHashIntoDoesNotClobberInput(t *testing.T) {
	for _, h := range hashers() {
		x := label.MustRandom()
		orig := x
		var dst label.Label
		h.HashInto(&x, 7, &dst)
		if x != orig {
			t.Fatalf("%s: HashInto mutated its input", h.Name())
		}
	}
}

func TestAESNotIdentityOrLinear(t *testing.T) {
	// H must not be linear: H(a ⊕ b) ≠ H(a) ⊕ H(b) in general, otherwise
	// garbled rows leak. Probabilistic, but a linear H would fail almost
	// surely.
	h := MustAES()
	a, b := label.MustRandom(), label.MustRandom()
	if h.Hash(a.Xor(b), 3) == h.Hash(a, 3).Xor(h.Hash(b, 3)) {
		t.Fatal("AES hash behaves linearly on sampled inputs")
	}
	if h.Hash(a, 3) == a {
		t.Fatal("AES hash is identity on sampled input")
	}
}

func TestOutputBitsBalanced(t *testing.T) {
	// Sanity entropy check: over many hashes, each output byte position
	// should not be constant.
	h := MustAES()
	var seen [label.Size]map[byte]bool
	for i := range seen {
		seen[i] = make(map[byte]bool)
	}
	for i := 0; i < 256; i++ {
		out := h.Hash(label.MustRandom(), uint64(i))
		for j, b := range out {
			seen[j][b] = true
		}
	}
	for j := range seen {
		if len(seen[j]) < 32 {
			t.Fatalf("output byte %d took only %d values over 256 hashes", j, len(seen[j]))
		}
	}
}

func TestNames(t *testing.T) {
	if MustAES().Name() != "fixed-key-aes" {
		t.Fatal("unexpected AES hasher name")
	}
	if NewSHA256().Name() != "sha256" {
		t.Fatal("unexpected SHA-256 hasher name")
	}
}

func TestAESSHADisagree(t *testing.T) {
	a, s := MustAES(), NewSHA256()
	x := label.MustRandom()
	if a.Hash(x, 1) == s.Hash(x, 1) {
		t.Fatal("independent constructions agreed; suspicious")
	}
}

func BenchmarkAESHash(b *testing.B) {
	h := MustAES()
	x := label.MustRandom()
	var dst label.Label
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.HashInto(&x, uint64(i), &dst)
	}
}

func BenchmarkSHA256Hash(b *testing.B) {
	h := NewSHA256()
	x := label.MustRandom()
	var dst label.Label
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.HashInto(&x, uint64(i), &dst)
	}
}
