// Package faultconn is a fault-injection harness for the wire layer:
// it wraps a healthy connection and misbehaves on cue, so robustness
// tests can drive every protocol phase into every failure it must
// survive. Two wrappers cover the two granularities faults occur at:
//
//   - Conn wraps a wire.Conn and injects message-level faults — added
//     latency (deterministically jittered from a seed), indefinite
//     stalls, injected errors, and mid-protocol closes, each triggered
//     on the Nth send or receive; plus two unscripted-index modes:
//     a seeded per-op loss probability (Flaky) and a first-read stall
//     (StallFirstRead), which maxchaos drives at fleet scale.
//   - Stream wraps the byte stream beneath wire.NewStreamConn and
//     injects byte-level faults a message wrapper cannot express —
//     corrupt length prefixes and mid-frame cuts.
//
// The harness exists because the garbler runs as a cloud service: a
// single stalled or hostile evaluator must cost the server one phase
// timeout, not a session goroutine pinned forever. The protocol
// fault-matrix tests are its primary consumer.
package faultconn

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"maxelerator/internal/wire"
)

// ErrInjected marks every fault the harness injects, so tests can
// tell a scripted failure from a real one.
var ErrInjected = errors.New("faultconn: injected fault")

// Options scripts the faults of one Conn. Trigger counts are 1-based
// call indices (StallOnSend: 3 stalls the third SendMsg); zero
// disables a fault. All faults are deterministic given the same
// Options and call sequence.
type Options struct {
	// Seed makes the jittered delays reproducible.
	Seed int64
	// SendDelay and RecvDelay sleep before every send / receive,
	// modelling a slow link.
	SendDelay, RecvDelay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per
	// message, drawn from the seeded generator.
	Jitter time.Duration
	// StallOnSend / StallOnRecv make the Nth send / receive block
	// until the connection is closed — the silent-peer fault: the
	// connection stays open, traffic just stops.
	StallOnSend, StallOnRecv int
	// ErrOnSend / ErrOnRecv make the Nth send / receive fail with
	// ErrInjected without touching the wire.
	ErrOnSend, ErrOnRecv int
	// CloseOnSend / CloseOnRecv close the underlying connection on the
	// Nth send / receive and fail it — the vanishing-peer fault.
	CloseOnSend, CloseOnRecv int
	// FlakyP makes every send and receive fail with ErrInjected with
	// probability p ∈ (0, 1], drawn from the seeded generator — the
	// lossy-link / overloaded-kernel fault where *which* op fails is
	// not scripted, only how often. Deterministic given Seed and the
	// op sequence. Zero disables.
	FlakyP float64
	// StallFirstRead makes the very first RecvMsg block until the
	// connection is closed — the accepted-but-mute peer: the TCP
	// handshake succeeded, then nothing ever arrives. Distinct from
	// StallOnRecv so harnesses can script both (stall the first read
	// of a reconnect while a later indexed stall covers the steady
	// state).
	StallFirstRead bool
}

// Flaky is the Options shorthand maxchaos and the fault matrix share:
// every op fails with probability p, reproducibly under seed.
func Flaky(seed int64, p float64) Options { return Options{Seed: seed, FlakyP: p} }

// Conn wraps an inner wire.Conn with scripted message-level faults.
type Conn struct {
	inner wire.Conn
	opts  Options

	mu           sync.Mutex
	rng          *rand.Rand
	sends, recvs int

	done chan struct{}
	once sync.Once
}

// New wraps inner with the scripted faults.
func New(inner wire.Conn, opts Options) *Conn {
	return &Conn{
		inner: inner,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		done:  make(chan struct{}),
	}
}

// Unwrap returns the wrapped Conn, keeping wire.AsDeadline and
// wire.PeerAddr transparent to the harness.
func (c *Conn) Unwrap() wire.Conn { return c.inner }

// delay sleeps the scripted base latency plus seeded jitter, waking
// early if the connection closes.
func (c *Conn) delay(base time.Duration) error {
	d := base
	if c.opts.Jitter > 0 {
		c.mu.Lock()
		d += time.Duration(c.rng.Int63n(int64(c.opts.Jitter)))
		c.mu.Unlock()
	}
	if d <= 0 {
		return nil
	}
	select {
	case <-time.After(d):
		return nil
	case <-c.done:
		return fmt.Errorf("faultconn: closed during injected delay: %w", ErrInjected)
	}
}

// stall blocks until the connection is closed, then fails — the
// scripted silent peer.
func (c *Conn) stall(op string) error {
	<-c.done
	return fmt.Errorf("faultconn: stalled %s released by close: %w", op, ErrInjected)
}

// flake draws the seeded per-op loss coin.
func (c *Conn) flake() bool {
	if c.opts.FlakyP <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64() < c.opts.FlakyP
}

// SendMsg implements wire.Conn with the scripted send-side faults.
func (c *Conn) SendMsg(msg []byte) error {
	c.mu.Lock()
	c.sends++
	n := c.sends
	c.mu.Unlock()
	if err := c.delay(c.opts.SendDelay); err != nil {
		return err
	}
	switch {
	case n == c.opts.StallOnSend:
		return c.stall("send")
	case n == c.opts.ErrOnSend:
		return fmt.Errorf("faultconn: send %d: %w", n, ErrInjected)
	case n == c.opts.CloseOnSend:
		c.Close()
		return fmt.Errorf("faultconn: send %d closed the connection: %w", n, ErrInjected)
	}
	if c.flake() {
		return fmt.Errorf("faultconn: flaky send %d: %w", n, ErrInjected)
	}
	return c.inner.SendMsg(msg)
}

// RecvMsg implements wire.Conn with the scripted receive-side faults.
func (c *Conn) RecvMsg() ([]byte, error) {
	c.mu.Lock()
	c.recvs++
	n := c.recvs
	c.mu.Unlock()
	if err := c.delay(c.opts.RecvDelay); err != nil {
		return nil, err
	}
	switch {
	case n == 1 && c.opts.StallFirstRead:
		return nil, c.stall("first recv")
	case n == c.opts.StallOnRecv:
		return nil, c.stall("recv")
	case n == c.opts.ErrOnRecv:
		return nil, fmt.Errorf("faultconn: recv %d: %w", n, ErrInjected)
	case n == c.opts.CloseOnRecv:
		c.Close()
		return nil, fmt.Errorf("faultconn: recv %d closed the connection: %w", n, ErrInjected)
	}
	if c.flake() {
		return nil, fmt.Errorf("faultconn: flaky recv %d: %w", n, ErrInjected)
	}
	return c.inner.RecvMsg()
}

// Close releases every stalled or delayed operation and closes the
// wrapped connection.
func (c *Conn) Close() error {
	c.once.Do(func() { close(c.done) })
	return c.inner.Close()
}

// Ops reports how many sends and receives have been attempted,
// including the faulted ones — tests use it to size a stall sweep
// after a healthy run.
func (c *Conn) Ops() (sends, recvs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sends, c.recvs
}

// Stream wraps a byte stream (placed beneath wire.NewStreamConn) with
// byte-level write faults. Under the wire framing each message is two
// writes — a 4-byte length prefix, then the body — so write index 2k+1
// is the k-th message's header and 2k+2 its body (1-based).
type Stream struct {
	rw io.ReadWriter

	// CorruptWrite replaces every byte of the Nth (1-based) Write with
	// 0xFF before forwarding. Corrupting a header write turns the
	// length prefix hostile (a claimed 4 GiB frame); corrupting a body
	// desynchronises the peer's framing. Zero disables.
	CorruptWrite int
	// CutWrite forwards only the first half of the Nth (1-based)
	// Write, closes the underlying stream, and fails — the peer is
	// left holding a partial frame. Zero disables.
	CutWrite int
	// CutAfterWrite forwards the Nth (1-based) Write in full and then
	// closes the underlying stream, so the cut lands exactly on a
	// write boundary: the Nth write succeeds, the next one fails.
	// Aimed at the vectored framing path — cutting after a header
	// write (odd index) leaves the peer holding a complete length
	// prefix whose payload never arrives. Zero disables.
	CutAfterWrite int

	mu     sync.Mutex
	writes int
}

// NewStream wraps rw; configure the fault fields before first use.
func NewStream(rw io.ReadWriter) *Stream { return &Stream{rw: rw} }

// Read passes through to the wrapped stream.
func (s *Stream) Read(p []byte) (int, error) { return s.rw.Read(p) }

// Write forwards p, applying the scripted corruption or cut when its
// write index matches.
func (s *Stream) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.writes++
	n := s.writes
	s.mu.Unlock()
	switch n {
	case s.CorruptWrite:
		bad := make([]byte, len(p))
		for i := range bad {
			bad[i] = 0xFF
		}
		return s.rw.Write(bad)
	case s.CutWrite:
		if _, err := s.rw.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		s.Close()
		return len(p) / 2, fmt.Errorf("faultconn: stream cut mid-frame at write %d: %w", n, ErrInjected)
	case s.CutAfterWrite:
		nn, err := s.rw.Write(p)
		if err != nil {
			return nn, err
		}
		s.Close()
		return nn, nil
	}
	return s.rw.Write(p)
}

// Writes reports how many writes have been attempted, including the
// faulted ones — tests use it to place a cut after a healthy run.
func (s *Stream) Writes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// Close closes the wrapped stream when it supports closing.
func (s *Stream) Close() error {
	if cl, ok := s.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
