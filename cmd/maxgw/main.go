// Command maxgw is the garbler fleet's front door: a session-granular
// L4 router that pins each client session to the maxd backend whose
// precompute pool is warm for the session's request shape.
//
// Usage:
//
//	maxgw -listen :7000 -backends 10.0.0.1:7700,10.0.0.2:7700
//	maxgw -listen :7000 \
//	    -backends 10.0.0.1:7700=http://10.0.0.1:7701,10.0.0.2:7700=http://10.0.0.2:7701 \
//	    -metrics-addr :7001
//
// Each -backends entry is ADDR or ADDR=HEALTHURL; with a health URL
// the gateway polls HEALTHURL/healthz every -probe-interval, and polls
// HEALTHURL/shapez (maxd -advertise) to prefer backends already
// holding a warm pool for a session's exact shape.
//
// Membership is breaker-driven: -eject-after consecutive failures
// (probe verdicts and routing-time handshake results feed the same
// per-backend circuit breaker) trip the breaker open and the backend
// leaves the ring. Readmission is hysteretic — after -breaker-cooldown
// (doubling on every re-trip) a single successful probe readmits, and
// never sooner, so a flapping backend cannot oscillate the ring. A
// backend whose handshake-latency EWMA exceeds -outlier-k times the
// fleet median is demoted to last-resort candidate for
// -outlier-cooldown (slow-but-alive detection). Failover attempts
// beyond each session's first candidate draw from a token-bucket
// retry budget (-retry-budget of arriving sessions plus a
// -retry-budget-min burst); an exhausted budget sheds the session
// with BUSY immediately, turning fleet-wide outages into fast
// rejections instead of retry storms.
//
// Routing is shape-affine: clients that open with a shape-hint preface
// (protocol.Client.WithShapeHint; maxcli -hint) are consistently
// hashed by their precompute shape key onto the backend ring, so
// same-shape sessions always land together and precompute pools stay
// warm. A backend above -load-factor times the fleet's mean in-flight
// load yields to the next ring replica (bounded loads). Clients that
// send no hint — every pre-gateway client — route to the least-loaded
// healthy backend after a -peek-timeout wait.
//
// Failover is pre-handshake only: a backend that refuses the dial or
// answers BUSY is abandoned before the client has seen a byte from it,
// and the session transparently moves to the next ring replica (at
// most -max-failovers moves). When every candidate fails, the gateway
// sheds the session with its own BUSY frame, so clients' existing
// retry taxonomy applies unchanged.
//
// With -metrics-addr the gateway exposes its own observability
// surface: /metrics (gw_sessions_total{backend}, gw_failovers_total
// {reason}, ring membership gauges, gw_breaker_state{backend},
// gw_ejections_total{reason}, gw_retry_budget_tokens_milli,
// gw_hint_misses_total{shape}), /healthz (ok with a full ring,
// degraded with a partial one, overloaded with an empty one — answers
// 503) and /fleetz (per-backend JSON: health, breaker state,
// in-flight sessions, handshake-latency EWMA, advertised shapes) for
// maxtop's fleet panel.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"maxelerator/internal/gateway"
	"maxelerator/internal/obs"
)

// gwConfig gathers every knob of one maxgw instance.
type gwConfig struct {
	listen          string
	backends        string
	metricsAddr     string
	peekTimeout     time.Duration
	probeInterval   time.Duration
	ejectAfter      int
	breakerCooldown time.Duration
	outlierK        float64
	outlierCooldown time.Duration
	retryBudget     float64
	retryBudgetMin  float64
	maxFailovers    int
	loadFactor      float64
	vnodes          int
	drainTimeout    time.Duration
}

func main() {
	var gc gwConfig
	flag.StringVar(&gc.listen, "listen", "127.0.0.1:7000", "TCP listen address for client sessions")
	flag.StringVar(&gc.backends, "backends", "", "comma-separated backends, each ADDR or ADDR=HEALTHURL")
	flag.StringVar(&gc.metricsAddr, "metrics-addr", "", "HTTP address for /metrics, /healthz and /fleetz (empty disables)")
	flag.DurationVar(&gc.peekTimeout, "peek-timeout", 75*time.Millisecond, "wait for a client's shape-hint preface before routing unhinted")
	flag.DurationVar(&gc.probeInterval, "probe-interval", 2*time.Second, "backend health poll period")
	flag.IntVar(&gc.ejectAfter, "eject-after", 3, "consecutive probe or handshake failures before a backend's breaker opens")
	flag.DurationVar(&gc.breakerCooldown, "breaker-cooldown", 5*time.Second, "base wait before an open breaker's half-open readmission trial (doubles per re-trip)")
	flag.Float64Var(&gc.outlierK, "outlier-k", 3, "demote a backend whose handshake-latency EWMA exceeds this multiple of the fleet median")
	flag.DurationVar(&gc.outlierCooldown, "outlier-cooldown", 10*time.Second, "how long a latency-outlier demotion lasts")
	flag.Float64Var(&gc.retryBudget, "retry-budget", 0.2, "sustained fraction of sessions allowed a failover attempt")
	flag.Float64Var(&gc.retryBudgetMin, "retry-budget-min", 10, "failover burst allowance before the ratio governs (negative disables)")
	flag.IntVar(&gc.maxFailovers, "max-failovers", 2, "extra backends tried after the primary fails pre-handshake")
	flag.Float64Var(&gc.loadFactor, "load-factor", 1.25, "bounded-load factor; a backend above this times the mean load yields (<=1 disables)")
	flag.IntVar(&gc.vnodes, "vnodes", 0, "virtual nodes per backend on the hash ring (0 = default)")
	flag.DurationVar(&gc.drainTimeout, "drain-timeout", 10*time.Second, "how long shutdown waits for relayed sessions before closing them")
	flag.Parse()

	if err := run(gc); err != nil {
		fmt.Fprintln(os.Stderr, "maxgw:", err)
		os.Exit(1)
	}
}

// parseBackends splits the -backends flag into gateway.Backend values.
func parseBackends(spec string) ([]gateway.Backend, error) {
	var out []gateway.Backend
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		addr, health, _ := strings.Cut(entry, "=")
		if addr == "" {
			return nil, fmt.Errorf("backend entry %q has an empty address", entry)
		}
		if health != "" && !strings.Contains(health, "://") {
			health = "http://" + health
		}
		out = append(out, gateway.Backend{Addr: addr, HealthURL: strings.TrimRight(health, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-backends is required (comma-separated ADDR or ADDR=HEALTHURL)")
	}
	return out, nil
}

func run(gc gwConfig) error {
	backends, err := parseBackends(gc.backends)
	if err != nil {
		return err
	}
	o := obs.New(0)
	gw, err := gateway.New(gateway.Config{
		Backends:        backends,
		Vnodes:          gc.vnodes,
		PeekTimeout:     gc.peekTimeout,
		ProbeInterval:   gc.probeInterval,
		EjectAfter:      gc.ejectAfter,
		BreakerCooldown: gc.breakerCooldown,
		OutlierK:        gc.outlierK,
		OutlierCooldown: gc.outlierCooldown,
		RetryBudget:     gc.retryBudget,
		RetryBudgetMin:  gc.retryBudgetMin,
		MaxFailovers:    gc.maxFailovers,
		LoadFactor:      gc.loadFactor,
		Obs:             o,
		Logf:            log.Printf,
	})
	if err != nil {
		return err
	}
	gw.Start()
	defer gw.Close()

	ln, err := net.Listen("tcp", gc.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	log.Printf("maxgw: routing %d backends on %s", len(backends), ln.Addr())

	var httpSrv *http.Server
	if gc.metricsAddr != "" {
		mln, err := net.Listen("tcp", gc.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		o.EnableRuntimeMetrics()
		httpSrv = &http.Server{Handler: fleetHandler(o, gw)}
		go httpSrv.Serve(mln)
		defer httpSrv.Close()
		log.Printf("maxgw: observability on http://%s (/metrics /healthz /fleetz)", mln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()

	err = gw.Serve(ln)
	if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
		// Mirror maxd's shutdown: the listener is already closed, so no
		// new session can arrive; relayed sessions get the drain window
		// to finish on their own, then a hard close with a short grace.
		log.Printf("maxgw: signal received, draining relayed sessions (deadline %s)", gc.drainTimeout)
		if gw.Drain(gc.drainTimeout) {
			log.Printf("maxgw: shutting down")
			return nil
		}
		log.Printf("maxgw: drain deadline %s expired, closing relayed sessions", gc.drainTimeout)
		gw.KillSessions()
		if !gw.Drain(5 * time.Second) {
			log.Printf("maxgw: sessions still in flight after close, exiting anyway")
		}
		log.Printf("maxgw: shutting down")
		return nil
	}
	return err
}

// fleetHandler mounts /fleetz (the per-backend state snapshot) over
// the standard obs surface.
func fleetHandler(o *obs.Obs, gw *gateway.Gateway) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleetz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"backends": gw.Snapshot()})
	})
	mux.Handle("/", o.Handler())
	return mux
}
