// Package report renders the paper's tables and figures from the
// models and measurements of this repository, side by side with the
// published numbers. It is shared by cmd/maxbench and the root
// benchmark harness so that both produce identical artefacts.
package report

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple aligned text table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Headers are the column names.
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := len(t.Headers)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

// Sci formats a value in the paper's scientific notation (2.36E+04).
func Sci(v float64) string { return strings.ToUpper(fmt.Sprintf("%.2e", v)) }

// Dur formats a duration compactly with µs precision where useful.
func Dur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.2fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// Ratio formats a speedup factor.
func Ratio(v float64) string { return fmt.Sprintf("%.1f×", v) }

// Bytes formats a byte count in binary units. It is the one
// byte-formatting helper shared by the daemon, the benchmarks and the
// report tables.
func Bytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
