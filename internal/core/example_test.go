package core_test

import (
	"fmt"
	"log"

	"maxelerator/internal/core"
)

// The simplest use of the library: a privacy-preserving dot product
// between a server-held and a client-held vector.
func ExampleAccelerator_SecureDotProduct() {
	acc, err := core.New(core.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		log.Fatal(err)
	}
	server := []int64{10, -20, 30}
	client := []int64{1, 2, 3}
	result, stats, err := acc.SecureDotProduct(server, client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", result)
	fmt.Println("MAC rounds:", stats.MACs)
	fmt.Println("cycles per MAC (steady state):", acc.Schedule().CyclesPerMAC())
	// Output:
	// result: 60
	// MAC rounds: 3
	// cycles per MAC (steady state): 24
}

// The Table 2 headline numbers fall out of the schedule model.
func ExampleAccelerator_table2() {
	for _, b := range []int{8, 16, 32} {
		acc, err := core.New(core.Config{Width: b})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("b=%d: %d cores, %v per MAC\n",
			b, acc.Schedule().NumCores(), acc.Simulator().TimePerMAC())
	}
	// Output:
	// b=8: 8 cores, 120ns per MAC
	// b=16: 14 cores, 240ns per MAC
	// b=32: 24 cores, 480ns per MAC
}
