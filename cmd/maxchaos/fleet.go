package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"maxelerator/internal/gateway"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/precompute"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
	"maxelerator/internal/wire/faultconn"
)

// Fault modes a chaos backend can be switched into between kills. New
// sessions accepted while a mode is active get their connection wrapped
// in the matching faultconn script; sessions already in flight are left
// alone (a real degradation hits new work first).
const (
	faultNone int32 = iota
	faultStall      // accepted-but-mute: first read blocks forever
	faultFlaky      // lossy link: every op fails with probability flakyP
)

// chaosBackend is one in-process maxd-equivalent the harness can kill,
// restart and degrade: a real protocol server with a precompute engine
// behind a TCP listener, plus the /healthz + /shapez surface the
// gateway probes. Kill closes both listeners and every live session
// connection (a process crash, not a graceful drain); restart re-binds
// the same addresses so the gateway's static backend list stays valid.
type chaosBackend struct {
	id     int
	cfg    *chaosConfig
	logf   func(string, ...any)
	o      *obs.Obs
	srv    *protocol.Server
	eng    *precompute.Engine
	matrix [][]int64
	mux    *http.ServeMux

	protoAddr  string // fixed for the run; restart re-binds it
	healthAddr string

	fault    atomic.Int32
	flakySeq atomic.Int64 // per-conn seed so flaky runs differ but stay reproducible

	mu    sync.Mutex
	down  bool
	ln    net.Listener
	hsrv  *http.Server
	conns map[io.Closer]struct{} // wrapped conns of live sessions; kill closes them

	served atomic.Int64 // sessions Serve completed cleanly (end marker seen)
	wg     sync.WaitGroup
}

func startChaosBackend(cfg *chaosConfig, id int, logf func(string, ...any)) (*chaosBackend, error) {
	b := &chaosBackend{
		id:     id,
		cfg:    cfg,
		logf:   logf,
		o:      obs.New(0),
		matrix: [][]int64{{2, 3}},
		conns:  map[io.Closer]struct{}{},
	}
	simCfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	srv, err := protocol.NewServer(simCfg)
	if err != nil {
		return nil, err
	}
	eng, err := precompute.New(precompute.Config{Sim: simCfg, PoolSize: 2, MaxShapes: 8, Metrics: b.o.Metrics()})
	if err != nil {
		return nil, err
	}
	// I/O budgets bound every session goroutine: a connection cut by a
	// kill or muted by a stall can hold a serve goroutine for at most
	// one timeout, so teardown's wg.Wait always terminates. The budgets
	// are loose because the OT base phase is real 2048-bit crypto — on a
	// loaded single-core runner a healthy peer can legitimately take
	// seconds between frames.
	srv.WithObs(b.o).WithPrecompute(eng).
		WithTimeouts(protocol.Timeouts{Handshake: 10 * time.Second, IO: 10 * time.Second})
	eng.Start()
	b.srv, b.eng = srv, eng

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Stop()
		return nil, err
	}
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		eng.Stop()
		return nil, err
	}
	b.protoAddr = ln.Addr().String()
	b.healthAddr = hln.Addr().String()

	mux := http.NewServeMux()
	mux.HandleFunc("/shapez", func(w http.ResponseWriter, r *http.Request) {
		var shapes []string
		for s := range b.eng.Shapes() {
			shapes = append(shapes, s.String())
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"shapes": shapes})
	})
	mux.Handle("/", b.o.Handler())
	b.mux = mux

	hsrv := &http.Server{Handler: mux}
	b.ln, b.hsrv = ln, hsrv
	go b.acceptLoop(ln)
	go hsrv.Serve(hln)
	return b, nil
}

func (b *chaosBackend) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.handle(nc)
	}
}

func (b *chaosBackend) handle(nc net.Conn) {
	defer b.wg.Done()
	var conn wire.Conn = wire.NewStreamConn(nc)
	switch b.fault.Load() {
	case faultStall:
		conn = faultconn.New(conn, faultconn.Options{StallFirstRead: true})
	case faultFlaky:
		conn = faultconn.New(conn, faultconn.Flaky(b.flakySeq.Add(1), b.cfg.flakyP))
	}
	b.mu.Lock()
	if b.down {
		b.mu.Unlock()
		conn.Close()
		return
	}
	b.conns[conn] = struct{}{}
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.conns, conn)
		b.mu.Unlock()
		conn.Close()
	}()
	if _, err := b.srv.Serve(conn, protocol.Request{Matrix: b.matrix}); err == nil {
		b.served.Add(1)
	}
}

// kill models a process crash: both listeners close, every live
// session connection is cut mid-stream. Idempotent.
func (b *chaosBackend) kill() {
	b.mu.Lock()
	if b.down {
		b.mu.Unlock()
		return
	}
	b.down = true
	ln, hsrv := b.ln, b.hsrv
	conns := make([]io.Closer, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	ln.Close()
	hsrv.Close()
	for _, c := range conns {
		c.Close()
	}
}

// restart re-binds the crashed backend's original addresses. The
// kernel can hold the freed port briefly, so binding retries for up to
// two seconds before giving up.
func (b *chaosBackend) restart() error {
	var ln, hln net.Listener
	var err error
	for i := 0; i < 40 && (ln == nil || hln == nil); i++ {
		if i > 0 {
			time.Sleep(50 * time.Millisecond)
		}
		if ln == nil {
			ln, err = net.Listen("tcp", b.protoAddr)
		}
		if ln != nil && hln == nil {
			hln, err = net.Listen("tcp", b.healthAddr)
		}
	}
	if ln == nil || hln == nil {
		if ln != nil {
			ln.Close()
		}
		return fmt.Errorf("backend %d: re-bind after restart: %w", b.id, err)
	}
	hsrv := &http.Server{Handler: b.mux}
	b.mu.Lock()
	b.down = false
	b.ln, b.hsrv = ln, hsrv
	b.mu.Unlock()
	go b.acceptLoop(ln)
	go hsrv.Serve(hln)
	return nil
}

// stop is the end-of-run teardown: crash the backend, wait for every
// session goroutine (bounded by the server's I/O budgets), stop the
// precompute engine. After stop, served and ArenaOutstanding are final.
func (b *chaosBackend) stop() {
	b.kill()
	b.wg.Wait()
	b.eng.Stop()
}

// chaosFleet is the system under test: one live gateway routing over
// real TCP to the chaos backends.
type chaosFleet struct {
	cfg      *chaosConfig
	o        *obs.Obs
	gw       *gateway.Gateway
	ln       net.Listener
	gwAddr   string
	gwDone   chan error
	backends []*chaosBackend
	logf     func(string, ...any)
}

func startFleet(cfg *chaosConfig, logf func(string, ...any)) (*chaosFleet, error) {
	f := &chaosFleet{cfg: cfg, o: obs.New(0), logf: logf}
	var gwBackends []gateway.Backend
	for i := 0; i < cfg.backends; i++ {
		b, err := startChaosBackend(cfg, i, logf)
		if err != nil {
			f.teardownBackends()
			return nil, err
		}
		f.backends = append(f.backends, b)
		gwBackends = append(gwBackends, gateway.Backend{Addr: b.protoAddr, HealthURL: "http://" + b.healthAddr})
	}
	gw, err := gateway.New(gateway.Config{
		Backends:        gwBackends,
		PeekTimeout:     100 * time.Millisecond,
		ProbeInterval:   cfg.probeInterval,
		EjectAfter:      cfg.ejectAfter,
		BreakerCooldown: cfg.breakerCooldown,
		RetryBudget:     cfg.retryBudget,
		RetryBudgetMin:  cfg.retryBudgetMin,
		MaxFailovers:    2,
		LoadFactor:      1.25,
		Obs:             f.o,
		Logf:            logf,
	})
	if err != nil {
		f.teardownBackends()
		return nil, err
	}
	f.gw = gw
	gw.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		f.teardownBackends()
		return nil, err
	}
	f.ln, f.gwAddr = ln, ln.Addr().String()
	f.gwDone = make(chan error, 1)
	go func() { f.gwDone <- gw.Serve(ln) }()
	return f, nil
}

func (f *chaosFleet) teardownBackends() {
	for _, b := range f.backends {
		b.stop()
	}
}

// stopIntake closes the gateway's listener so no new session can
// arrive; call before Drain.
func (f *chaosFleet) stopIntake() {
	f.ln.Close()
	<-f.gwDone
}

// close tears the whole fleet down: prober, then every backend.
func (f *chaosFleet) close() {
	f.gw.Close()
	f.teardownBackends()
}

// chaosCounters tallies what the chaos loop actually did.
type chaosCounters struct {
	kills, restarts, restartFails atomic.Int64
	stalls, flakyWindows          atomic.Int64
}

// chaosLoop is the fault injector: every killEvery it crashes the next
// backend round-robin (restarting it downFor later) and, on alternating
// cycles, opens a mute-peer stall window or a lossy-link flaky window
// on the following replica. One backend is down and at most one
// degraded at any time by construction, so the fleet always has live
// capacity and the invariants stay assertable.
func (f *chaosFleet) chaosLoop(done <-chan struct{}, c *chaosCounters) {
	t := time.NewTicker(f.cfg.killEvery)
	defer t.Stop()
	var wg sync.WaitGroup
	n := len(f.backends)
	for cycle := 0; ; cycle++ {
		select {
		case <-done:
			wg.Wait()
			return
		case <-t.C:
			v := f.backends[cycle%n]
			wg.Add(1)
			go func() {
				defer wg.Done()
				v.kill()
				c.kills.Add(1)
				f.logf("chaos: killed backend %d (%s)", v.id, v.protoAddr)
				select {
				case <-time.After(f.cfg.downFor):
				case <-done:
				}
				if err := v.restart(); err != nil {
					c.restartFails.Add(1)
					f.logf("chaos: %v", err)
					return
				}
				c.restarts.Add(1)
				f.logf("chaos: restarted backend %d (%s)", v.id, v.protoAddr)
			}()
			if n < 2 {
				continue
			}
			degraded := f.backends[(cycle+1)%n]
			switch {
			case cycle%2 == 0 && f.cfg.stallFor > 0:
				wg.Add(1)
				go func() {
					defer wg.Done()
					degraded.fault.Store(faultStall)
					c.stalls.Add(1)
					f.logf("chaos: stalling new sessions on backend %d for %s", degraded.id, f.cfg.stallFor)
					select {
					case <-time.After(f.cfg.stallFor):
					case <-done:
					}
					degraded.fault.Store(faultNone)
				}()
			case cycle%2 == 1 && f.cfg.flakyP > 0:
				wg.Add(1)
				go func() {
					defer wg.Done()
					degraded.fault.Store(faultFlaky)
					c.flakyWindows.Add(1)
					f.logf("chaos: flaky link p=%.2f on backend %d for %s", f.cfg.flakyP, degraded.id, f.cfg.flakyFor)
					select {
					case <-time.After(f.cfg.flakyFor):
					case <-done:
					}
					degraded.fault.Store(faultNone)
				}()
			}
		}
	}
}
