// Networked secure matrix-vector product: the full Fig. 1 system in
// one binary. A garbler server (host CPU + accelerator simulator) and
// an evaluator client run in separate goroutines connected over a real
// TCP socket on localhost, with IKNP oblivious transfer for the
// client's input labels and round-by-round streaming of garbled
// tables.
//
//	go run ./examples/matmul_network
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"net"

	"maxelerator/internal/fixed"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/protocol"
	"maxelerator/internal/report"
	"maxelerator/internal/wire"
)

func main() {
	f := fixed.Format{Width: 16, Frac: 6}

	// Server's private model.
	model := [][]float64{
		{0.50, -1.25, 2.00},
		{1.75, 0.25, -0.50},
		{-2.25, 1.00, 0.75},
		{0.30, 0.60, 0.90},
	}
	// Client's private features.
	features := []float64{1.5, -2.0, 0.25}

	modelRaw := make([][]int64, len(model))
	for i, row := range model {
		r, err := f.EncodeVector(row)
		if err != nil {
			log.Fatal(err)
		}
		modelRaw[i] = r
	}
	featRaw, err := f.EncodeVector(features)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("garbler server listening on %s\n", ln.Addr())

	type serverDone struct {
		stats protocol.Stats
		err   error
	}
	done := make(chan serverDone, 1)
	go func() {
		srv, err := protocol.NewServer(maxsim.Config{Width: f.Width, AccWidth: 2 * f.Width, Signed: true})
		if err != nil {
			done <- serverDone{err: err}
			return
		}
		c, err := ln.Accept()
		if err != nil {
			done <- serverDone{err: err}
			return
		}
		conn := wire.NewStreamConn(c)
		defer conn.Close()
		_, st, err := srv.ServeMatVec(conn, modelRaw)
		done <- serverDone{stats: st, err: err}
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	conn := wire.NewCounting(wire.NewStreamConn(nc))
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	out, err := cli.Run(conn, featRaw)
	if err != nil {
		log.Fatal(err)
	}
	srvRes := <-done
	if srvRes.err != nil {
		log.Fatal(srvRes.err)
	}
	conn.Close()

	fmt.Println("\nsecure A·x over TCP with IKNP oblivious transfer:")
	for i, v := range out {
		var plain float64
		for j := range features {
			plain += model[i][j] * features[j]
		}
		got := f.DecodeProduct(v)
		fmt.Printf("  y[%d] = %8.4f   (plaintext %8.4f)\n", i, got, plain)
		if diff := got - plain; diff > 0.01 || diff < -0.01 {
			log.Fatalf("row %d deviates beyond quantisation error", i)
		}
	}

	sent, recv, sMsgs, rMsgs := conn.Totals()
	st := srvRes.stats
	fmt.Println("\nsession accounting:")
	fmt.Printf("  client traffic    : %d B sent (%d msgs), %d B received (%d msgs)\n", sent, sMsgs, recv, rMsgs)
	fmt.Printf("  MAC rounds        : %d\n", st.MACs)
	fmt.Printf("  garbled tables    : %d (%d B)\n", st.TablesGarbled, st.TableBytes)
	fmt.Printf("  modelled FPGA time: %s (+%s PCIe)\n", report.Dur(st.ModeledTime), report.Dur(st.PCIeTime))
	fmt.Println("\nresult verified against plaintext ✓")
}
