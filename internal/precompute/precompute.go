// Package precompute is the garbler's offline/online split: a
// background engine that pre-garbles MAC circuits per request *shape*
// into bounded pools of single-use entries, so that when a request
// arrives the serving path only has to run OT, stream the tables and
// read the decode — garbling, the compute-bound phase, happened before
// the request existed. This is the software analogue of MAXelerator
// keeping its GC cores busy every cycle: idle wall-clock time between
// requests becomes garbled tables in a pool.
//
// Security. Every pool entry is built from a fresh, independently
// seeded garbling (its own free-XOR offset and label stream) and is
// consumed exactly once — Entry.Bind is guarded by an atomic
// compare-and-swap, so even racing consumers cannot serve the same
// labels twice. Precomputing therefore preserves the paper's
// fresh-labels-per-garbling requirement verbatim: the labels are just
// as fresh, they were merely drawn earlier.
//
// Shapes are learned from traffic: a request whose shape has no pool
// misses (and is served by inline garbling, wire-identical) while the
// engine admits the shape and starts filling it in the background.
// Cold shapes are evicted least-recently-used so the pool footprint
// stays bounded.
package precompute

import (
	"crypto/rand"
	"fmt"
	"io"
	"log"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"maxelerator/internal/label"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
)

// Shape keys one pool: every request with the same shape is served by
// the same pre-garbled material layout.
type Shape struct {
	// Rows and Cols are the request matrix dimensions.
	Rows, Cols int
	// Width is the operand bit-width; Signed the datapath signedness.
	Width  int
	Signed bool
	// Mode is the wire name of the datapath ("matvec" is the only
	// poolable one: serial mode garbles stage-by-stage against live OT
	// and correlated OT fixes labels interactively, so neither can be
	// garbled ahead of the request).
	Mode string
	// OT is the label-transfer mode name ("per-round" or "batched").
	OT string
}

// String renders the shape as a metric label value.
func (s Shape) String() string {
	sign := "u"
	if s.Signed {
		sign = "s"
	}
	return fmt.Sprintf("%dx%d/b%d%s/%s/%s", s.Rows, s.Cols, s.Width, sign, s.Mode, s.OT)
}

// compatible rejects shapes garbled under a different accelerator
// configuration than the engine's — an entry of the wrong width would
// produce material the request cannot use.
func (e *Engine) compatible(s Shape) bool {
	return s.Width == e.cfg.Sim.Width && s.Signed == e.cfg.Sim.Signed
}

// poolable reports whether the shape can be pre-garbled at all.
func (s Shape) poolable() bool {
	if s.Rows <= 0 || s.Cols <= 0 || s.Mode != "matvec" {
		return false
	}
	return s.OT == "per-round" || s.OT == "batched"
}

// Entry is one single-use pre-garbled request: fresh labels and tables
// for every row of the shape. Bind consumes it exactly once.
type Entry struct {
	shape Shape
	rows  []*maxsim.PreRun
	used  atomic.Bool
}

// ErrConsumed is returned by Bind on an entry that was already bound —
// the single-use invariant refusing to serve the same labels twice.
var ErrConsumed = fmt.Errorf("precompute: entry already consumed")

// Shape returns the entry's pool key.
func (e *Entry) Shape() Shape { return e.shape }

// Bind consumes the entry for the garbler matrix A, returning one
// complete run per row. The compare-and-swap makes consumption
// race-safe: exactly one caller ever receives the material.
func (e *Entry) Bind(A [][]int64) ([]*maxsim.DotProductRun, error) {
	if !e.used.CompareAndSwap(false, true) {
		return nil, ErrConsumed
	}
	if len(A) != len(e.rows) {
		return nil, fmt.Errorf("precompute: binding %d rows to a %d-row entry", len(A), len(e.rows))
	}
	runs := make([]*maxsim.DotProductRun, len(A))
	for i, x := range A {
		run, err := e.rows[i].Bind(x)
		if err != nil {
			return nil, err
		}
		runs[i] = run
	}
	return runs, nil
}

// Config shapes one engine.
type Config struct {
	// Sim is the accelerator configuration entries are garbled under.
	// Rand is ignored: every entry draws from its own freshly seeded
	// DRBG so entries are independent and reproducible from their seed.
	Sim maxsim.Config
	// PoolSize is the refill target per shape (default 4): background
	// workers keep each resident pool at this depth.
	PoolSize int
	// MaxShapes bounds the resident shapes (default 8); admitting one
	// more evicts the least-recently-used pool.
	MaxShapes int
	// Workers is the background refill worker count (default 1).
	Workers int
	// Metrics receives the engine's counters and gauges, and the
	// garbling accounting of entry construction. Nil disables both.
	Metrics *obs.Registry
	// SeedSource supplies entry seeds; defaults to crypto/rand. Tests
	// inject a deterministic reader to reproduce entries.
	SeedSource io.Reader
}

func (c Config) withDefaults() Config {
	if c.PoolSize == 0 {
		c.PoolSize = 4
	}
	if c.MaxShapes == 0 {
		c.MaxShapes = 8
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.SeedSource == nil {
		c.SeedSource = rand.Reader
	}
	return c
}

// pool is the per-shape entry stack plus its refill bookkeeping.
type pool struct {
	shape   Shape
	entries []*Entry
	// filling counts entries currently being built for this pool, so
	// concurrent workers never overshoot the target.
	filling int
	// lastUse is the engine tick of the most recent Take or Admit —
	// the LRU eviction order.
	lastUse uint64
	depth   *obs.Gauge
	hits    *obs.Counter
	misses  *obs.Counter
}

// Engine owns the shape-keyed pools and the background refill workers.
// All methods are safe for concurrent use; a nil *Engine is a no-op
// that always misses, so callers thread it without guards.
type Engine struct {
	cfg    Config
	reg    *obs.Registry
	refill *obs.Histogram
	busy   *obs.Gauge
	shapes *obs.Gauge
	evict  *obs.Counter

	mu      sync.Mutex
	pools   map[Shape]*pool
	tick    uint64
	stopped bool

	// hitCount and missCount mirror the per-shape obs counters at
	// engine granularity, independent of whether Metrics is attached —
	// benchmark harnesses read them to prove a "warm" pass really
	// served every request from the pool.
	hitCount, missCount atomic.Uint64

	seedMu sync.Mutex // SeedSource is not required to be concurrency-safe

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// buildTestHook, when non-nil, runs at the start of every entry build —
// the fault-injection seam the refill panic-containment tests use. Set
// and cleared only while no engine is running.
var buildTestHook func(Shape)

// New builds an engine. The simulator configuration is validated
// eagerly so a misconfigured engine fails at startup, not on the first
// background refill.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.PoolSize < 0 || cfg.MaxShapes < 1 || cfg.Workers < 1 {
		return nil, fmt.Errorf("precompute: invalid config (pool %d, shapes %d, workers %d)",
			cfg.PoolSize, cfg.MaxShapes, cfg.Workers)
	}
	simCfg := cfg.Sim
	simCfg.Metrics = cfg.Metrics
	sim, err := maxsim.New(simCfg)
	if err != nil {
		return nil, fmt.Errorf("precompute: %w", err)
	}
	// Keep the resolved configuration (defaults applied) so shape
	// compatibility checks compare against what entries are actually
	// garbled under.
	cfg.Sim = sim.Config()
	e := &Engine{
		cfg:   cfg,
		reg:   cfg.Metrics,
		pools: make(map[Shape]*pool),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	e.refill = e.reg.Histogram("precompute_refill_seconds", "wall time to pre-garble one pool entry", nil)
	e.busy = e.reg.Gauge("precompute_refill_busy", "refill workers currently pre-garbling an entry")
	e.shapes = e.reg.Gauge("precompute_shapes", "shapes with a resident pool")
	e.evict = e.reg.Counter("precompute_evictions_total", "cold shape pools evicted (LRU)")
	return e, nil
}

// Start launches the background refill workers. Idempotent-per-engine
// lifecycles are not supported: call Start at most once, before Stop.
func (e *Engine) Start() {
	if e == nil {
		return
	}
	for i := 0; i < e.cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
}

// Stop halts the workers, waits for in-flight builds, and drains every
// pool: entries are dropped and each shape's depth gauge is set to
// zero, so a final metrics snapshot never reports phantom capacity.
// Safe to call more than once and without a prior Start.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.mu.Unlock()
	close(e.done)
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	for shape, p := range e.pools {
		p.entries = nil
		p.depth.Set(0)
		delete(e.pools, shape)
	}
	e.shapes.Set(0)
}

// Admit registers a shape for background filling, evicting the
// least-recently-used pool if the shape budget is exceeded. Returns
// false for shapes that cannot be pre-garbled (serial mode, correlated
// OT) or after Stop.
func (e *Engine) Admit(s Shape) bool {
	if e == nil || !s.poolable() || !e.compatible(s) {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return false
	}
	if e.admitLocked(s) {
		e.kick()
	}
	return true
}

// admitLocked ensures a pool exists for s, reporting whether it was
// created. Callers hold e.mu.
func (e *Engine) admitLocked(s Shape) bool {
	e.tick++
	if p, ok := e.pools[s]; ok {
		p.lastUse = e.tick
		return false
	}
	for len(e.pools) >= e.cfg.MaxShapes {
		e.evictLocked()
	}
	lbl := obs.L("shape", s.String())
	e.pools[s] = &pool{
		shape:   s,
		lastUse: e.tick,
		depth:   e.reg.Gauge("precompute_pool_depth", "pre-garbled entries ready per shape", lbl),
		hits:    e.reg.Counter("precompute_hits_total", "requests served from the pre-garbled pool", lbl),
		misses:  e.reg.Counter("precompute_misses_total", "requests that fell back to inline garbling", lbl),
	}
	e.shapes.Set(int64(len(e.pools)))
	return true
}

// evictLocked drops the least-recently-used pool. Callers hold e.mu.
func (e *Engine) evictLocked() {
	var victim *pool
	for _, p := range e.pools {
		if victim == nil || p.lastUse < victim.lastUse {
			victim = p
		}
	}
	if victim == nil {
		return
	}
	victim.entries = nil
	victim.depth.Set(0)
	delete(e.pools, victim.shape)
	e.evict.Inc()
	e.shapes.Set(int64(len(e.pools)))
}

// Take pops one ready entry for the shape, or nil on a miss. A miss
// admits the shape (learning it from traffic) and wakes the refill
// workers, so repeated traffic of a new shape converges to hits. The
// caller owns the returned entry; consuming it is Entry.Bind's
// single-use contract.
func (e *Engine) Take(s Shape) *Entry {
	if e == nil || !s.poolable() || !e.compatible(s) {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return nil
	}
	e.admitLocked(s)
	p := e.pools[s]
	if len(p.entries) == 0 {
		p.misses.Inc()
		e.missCount.Add(1)
		e.kick()
		return nil
	}
	ent := p.entries[len(p.entries)-1]
	p.entries = p.entries[:len(p.entries)-1]
	p.depth.Set(int64(len(p.entries)))
	p.hits.Inc()
	e.hitCount.Add(1)
	e.kick()
	return ent
}

// PoolStats snapshots the engine-wide Take outcomes: how many requests
// were served from a pool and how many fell back to inline garbling.
// Unlike the per-shape obs counters these survive a nil Metrics config,
// so benchmarks can assert a warm pass hit on every request.
func (e *Engine) PoolStats() (hits, misses uint64) {
	if e == nil {
		return 0, 0
	}
	return e.hitCount.Load(), e.missCount.Load()
}

// Shapes snapshots the admitted shapes and their ready depths — the
// advertisement payload a daemon exposes (via /shapez) so a
// shape-aware gateway can route sessions toward warm pools. Admitted
// shapes with empty pools are included: admission means the refill
// workers are already building them.
func (e *Engine) Shapes() map[Shape]int {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[Shape]int, len(e.pools))
	for s, p := range e.pools {
		out[s] = len(p.entries)
	}
	return out
}

// Depth reports the ready entries for a shape (0 for absent shapes).
func (e *Engine) Depth(s Shape) int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.pools[s]; ok {
		return len(p.entries)
	}
	return 0
}

// Prefill builds n entries for the shape synchronously on the calling
// goroutine — the warm-up path benchmarks and tests use to measure the
// online path without racing the background workers. The shape is
// admitted first; n may exceed the background refill target.
func (e *Engine) Prefill(s Shape, n int) error {
	if e == nil {
		return fmt.Errorf("precompute: nil engine")
	}
	if !s.poolable() || !e.compatible(s) {
		return fmt.Errorf("precompute: shape %s cannot be pre-garbled under this engine", s)
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return fmt.Errorf("precompute: engine stopped")
	}
	e.admitLocked(s)
	e.mu.Unlock()
	for i := 0; i < n; i++ {
		ent, err := e.buildEntry(s)
		if err != nil {
			return err
		}
		e.mu.Lock()
		if p, ok := e.pools[s]; ok && !e.stopped {
			p.entries = append(p.entries, ent)
			p.depth.Set(int64(len(p.entries)))
		}
		e.mu.Unlock()
	}
	return nil
}

// kick nudges the refill workers; the buffered channel coalesces
// bursts. Callers hold e.mu (or are workers themselves).
func (e *Engine) kick() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// worker is one background refill loop: claim a pool below target,
// pre-garble one entry, deposit, repeat; sleep on the wake channel when
// every pool is full.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		s, ok := e.claim()
		if !ok {
			select {
			case <-e.done:
				return
			case <-e.wake:
				continue
			}
		}
		e.fillOne(s)
		select {
		case <-e.done:
			return
		default:
		}
	}
}

// claim picks a shape whose pool (including in-flight builds) is below
// the refill target, reserving one build slot.
func (e *Engine) claim() (Shape, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return Shape{}, false
	}
	var best *pool
	for _, p := range e.pools {
		if len(p.entries)+p.filling >= e.cfg.PoolSize {
			continue
		}
		// Refill the most recently used (hottest) shape first.
		if best == nil || p.lastUse > best.lastUse {
			best = p
		}
	}
	if best == nil {
		return Shape{}, false
	}
	best.filling++
	return best.shape, true
}

// fillOne builds one entry for the claimed shape and deposits it. A
// panic during garbling is contained here — counted, logged, and the
// worker keeps running — reusing the same recover-don't-fail pattern as
// the protocol layer's garble-pool workers; the deferred release keeps
// the filling reservation and the busy gauge consistent on every exit.
func (e *Engine) fillOne(s Shape) {
	var ent *Entry
	var err error
	e.busy.Add(1)
	defer func() {
		if r := recover(); r != nil {
			e.reg.Counter("panics_recovered_total",
				"panics recovered and converted to per-request errors").Inc()
			log.Printf("precompute: recovered panic pre-garbling %s: %v\n%s", s, r, debug.Stack())
			ent = nil
		}
		e.busy.Add(-1)
		e.mu.Lock()
		defer e.mu.Unlock()
		if p, ok := e.pools[s]; ok {
			p.filling--
			if ent != nil && !e.stopped {
				p.entries = append(p.entries, ent)
				p.depth.Set(int64(len(p.entries)))
			}
		}
	}()
	ent, err = e.buildEntry(s)
	if err != nil {
		log.Printf("precompute: pre-garbling %s: %v", s, err)
		ent = nil
	}
}

// buildEntry pre-garbles one entry: a fresh 16-byte seed expands
// through an AES-CTR DRBG into the entry's entire label stream, so the
// entry is (a) independent of every other entry — its own free-XOR
// offset, its own labels — and (b) reproducible from the seed, which is
// what makes the determinism property testable.
func (e *Engine) buildEntry(s Shape) (*Entry, error) {
	if buildTestHook != nil {
		buildTestHook(s)
	}
	t0 := time.Now()
	var seed [16]byte
	e.seedMu.Lock()
	_, err := io.ReadFull(e.cfg.SeedSource, seed[:])
	e.seedMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("precompute: drawing entry seed: %w", err)
	}
	ent, err := e.buildFromSeed(s, seed)
	if err != nil {
		return nil, err
	}
	e.refill.Observe(time.Since(t0).Seconds())
	return ent, nil
}

// buildFromSeed is the deterministic core of entry construction: one
// seeded simulator pre-garbles every row, exactly as the inline path
// garbles them (same simulator reuse, same draw order), so the same
// seed yields byte-identical material either way.
func (e *Engine) buildFromSeed(s Shape, seed [16]byte) (*Entry, error) {
	drbg, err := label.NewDRBG(seed)
	if err != nil {
		return nil, err
	}
	simCfg := e.cfg.Sim
	simCfg.Rand = drbg
	sim, err := maxsim.New(simCfg)
	if err != nil {
		return nil, err
	}
	rows := make([]*maxsim.PreRun, s.Rows)
	for i := range rows {
		pr, err := sim.PreGarbleDotProduct(s.Cols)
		if err != nil {
			return nil, fmt.Errorf("precompute: row %d: %w", i, err)
		}
		rows[i] = pr
	}
	return &Entry{shape: s, rows: rows}, nil
}

// BuildEntryFromSeed constructs one entry deterministically from an
// explicit seed, outside any pool. It exists for the determinism
// property tests and for reproducing an entry offline; production
// filling goes through the engine's own seed source.
func BuildEntryFromSeed(cfg maxsim.Config, s Shape, seed [16]byte) (*Entry, error) {
	e := &Engine{cfg: Config{Sim: cfg}}
	return e.buildFromSeed(s, seed)
}
