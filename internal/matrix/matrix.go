// Package matrix provides the dense matrix substrate of the
// matrix-based ML workloads (§2.1): plaintext reference arithmetic for
// float64 and raw fixed-point matrices, the gradient-descent iteration
// of Eq. 2, and shape utilities shared by the secure drivers.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major dense matrix.
type Dense struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// Data is the row-major backing slice, length Rows·Cols.
	Data []float64
}

// NewDense allocates a zero matrix.
func NewDense(rows, cols int) (*Dense, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("matrix: invalid shape %d×%d", rows, cols)
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// MustDense allocates a zero matrix and panics on a bad shape.
func MustDense(rows, cols int) *Dense {
	m, err := NewDense(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// FromRows builds a matrix from row slices of equal length.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("matrix: empty row set")
	}
	m, err := NewDense(len(rows), len(rows[0]))
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("matrix: row %d has %d columns, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m, nil
}

// Random fills a matrix with uniform values in [-scale, scale].
func Random(rows, cols int, scale float64, rng *rand.Rand) (*Dense, error) {
	m, err := NewDense(rows, cols)
	if err != nil {
		return nil, err
	}
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * scale
	}
	return m, nil
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := MustDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MatVec computes m·x.
func (m *Dense) MatVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("matrix: vector length %d != %d columns", len(x), m.Cols)
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// Mul computes m·o.
func (m *Dense) Mul(o *Dense) (*Dense, error) {
	if m.Cols != o.Rows {
		return nil, fmt.Errorf("matrix: %d×%d · %d×%d shape mismatch", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	out := MustDense(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				out.Data[i*out.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return out, nil
}

// Dot computes the inner product of two equal-length vectors.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("matrix: dot of lengths %d and %d", len(a), len(b))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// QuadraticForm computes w·M·wᵀ — the portfolio risk kernel of §6.
func QuadraticForm(w []float64, m *Dense) (float64, error) {
	if m.Rows != m.Cols {
		return 0, fmt.Errorf("matrix: quadratic form needs a square matrix, got %d×%d", m.Rows, m.Cols)
	}
	mv, err := m.MatVec(w)
	if err != nil {
		return 0, err
	}
	return Dot(w, mv)
}

// GradientStep performs one iteration of Eq. 2 of the paper:
// x ← x − µ(AᵀA·x − Aᵀy). It returns the updated vector.
func GradientStep(a *Dense, x, y []float64, mu float64) ([]float64, error) {
	if len(y) != a.Rows {
		return nil, fmt.Errorf("matrix: observation length %d != %d rows", len(y), a.Rows)
	}
	ax, err := a.MatVec(x)
	if err != nil {
		return nil, err
	}
	resid := make([]float64, a.Rows)
	for i := range resid {
		resid[i] = ax[i] - y[i]
	}
	at := a.T()
	grad, err := at.MatVec(resid)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	for i := range out {
		out[i] = x[i] - mu*grad[i]
	}
	return out, nil
}

// MaxAbsDiff returns the ∞-norm distance between two vectors.
func MaxAbsDiff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("matrix: comparing lengths %d and %d", len(a), len(b))
	}
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d, nil
}
