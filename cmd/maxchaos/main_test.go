package main

import (
	"encoding/json"
	"testing"
	"time"
)

// TestChaosAcceptance is the PR's headline scenario run end to end:
// one live gateway in front of three backends, one backend killed
// (and later restarted) every 5 seconds under open-loop load, with
// mute-peer and lossy-link windows on the survivors. The run must
// complete with every fleet-wide invariant intact: zero double-served
// sessions, a correct result on every success, client-visible errors
// bounded, failover load within the retry budget, all gateway gauges
// zero after the drain, and no goroutine or arena leaks. Bounded well
// under 60s so CI can run it as a smoke job.
func TestChaosAcceptance(t *testing.T) {
	cfg := defaultConfig()
	cfg.duration = 16 * time.Second
	rep, err := runChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pretty, _ := json.MarshalIndent(rep, "", "  ")
	t.Logf("chaos report:\n%s", pretty)
	if !rep.Pass {
		t.Fatalf("fleet invariants violated: %v", rep.Violations)
	}
	// The invariants only mean something if the run actually exercised
	// the fleet: sessions completed and chaos really happened.
	if rep.Succeeded == 0 {
		t.Fatal("no session succeeded; the harness measured an idle fleet")
	}
	if rep.Kills < 2 {
		t.Fatalf("only %d kills in %s, want at least 2", rep.Kills, cfg.duration)
	}
	if rep.Restarts != rep.Kills {
		t.Fatalf("%d restarts for %d kills; a backend stayed dead", rep.Restarts, rep.Kills)
	}
	if rep.Stalls == 0 && rep.FlakyWindows == 0 {
		t.Fatal("no degradation window ran; stall/flaky injection is wired off")
	}
}

// TestReportEvaluate pins the invariant arithmetic without running a
// fleet: each violation trips on exactly the condition it names.
func TestReportEvaluate(t *testing.T) {
	cfg := defaultConfig()
	base := func() *Report {
		return &Report{
			Sessions:          40,
			Succeeded:         38,
			Failed:            2,
			ServedTotal:       38,
			BudgetDeposits:    40,
			BudgetWithdrawals: 5,
			Drained:           true,
			GoroutinesBefore:  10,
			GoroutinesAfter:   12,
			GaugeBackendSessions: map[string]int64{
				"127.0.0.1:1": 0,
			},
			ArenaOutstanding: map[string]int64{
				"127.0.0.1:1": 0,
			},
		}
	}

	r := base()
	r.evaluate(&cfg)
	if !r.Pass {
		t.Fatalf("clean report failed: %v", r.Violations)
	}

	cases := []struct {
		name  string
		break_ func(*Report)
	}{
		{"double serve", func(r *Report) { r.ServedTotal = r.Succeeded + 1 }},
		{"miscompute", func(r *Report) { r.Miscomputed = 1 }},
		{"budget overdrawn", func(r *Report) { r.BudgetWithdrawals = 1000 }},
		{"error rate", func(r *Report) { r.Failed = 39; r.Succeeded = 1; r.ServedTotal = 1 }},
		{"no drain", func(r *Report) { r.Drained = false }},
		{"active gauge", func(r *Report) { r.GaugeSessionsActive = 3 }},
		{"draining gauge", func(r *Report) { r.GaugeDraining = 1 }},
		{"backend gauge", func(r *Report) { r.GaugeBackendSessions["127.0.0.1:1"] = 2 }},
		{"arena leak", func(r *Report) { r.ArenaOutstanding["127.0.0.1:1"] = 4 }},
		{"goroutine leak", func(r *Report) { r.GoroutinesAfter = r.GoroutinesBefore + goroutineSlack + 1 }},
		{"restart failure", func(r *Report) { r.RestartFailures = 1 }},
		{"no load", func(r *Report) { r.Sessions = 0 }},
	}
	for _, tc := range cases {
		r := base()
		tc.break_(r)
		r.evaluate(&cfg)
		if r.Pass {
			t.Errorf("%s: report passed, want a violation", tc.name)
		}
	}
}

// TestEffectiveBudgetDefaults keeps the report's bound arithmetic in
// lockstep with resilience.BudgetConfig's defaulting rules.
func TestEffectiveBudgetDefaults(t *testing.T) {
	if got := effectiveBurst(-1); got != 0 {
		t.Fatalf("effectiveBurst(-1) = %v, want 0 (negative disables)", got)
	}
	if got := effectiveBurst(0); got != 10 {
		t.Fatalf("effectiveBurst(0) = %v, want the default 10", got)
	}
	if got := effectiveBurst(25); got != 25 {
		t.Fatalf("effectiveBurst(25) = %v, want 25", got)
	}
	if got := effectiveRatio(0); got != 0.2 {
		t.Fatalf("effectiveRatio(0) = %v, want the default 0.2", got)
	}
	if got := effectiveRatio(0.5); got != 0.5 {
		t.Fatalf("effectiveRatio(0.5) = %v, want 0.5", got)
	}
}
