// Package bristol reads and writes Boolean circuits in the Bristol
// Fashion format — the de-facto interchange format of the MPC
// ecosystem (used by SCALE-MAMBA, MP-SPDZ, EMP and the published
// circuit collections). It lets this repository's garbling engine run
// third-party netlists and lets its GC-optimised generators (adders,
// multipliers, dividers, MAC units) be exported to other frameworks.
//
// Format recap (bristol "fashion", not the legacy format):
//
//	<ngates> <nwires>
//	<niv> <width_0> ... <width_{niv−1}>
//	<nov> <width_0> ... <width_{nov−1}>
//
//	<arity> 1 <in...> <out> XOR|AND|INV|EQ|EQW
//
// Input wires come first (group by group), output wires are the last
// wires in order. EQ assigns a constant (its "input" is the literal 0
// or 1); EQW copies a wire. Both appear in published circuits and are
// used here to express constant wires and output aliasing.
package bristol

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"maxelerator/internal/circuit"
)

// Marshal serialises a combinational circuit (NState == 0) with the
// garbler inputs as input group 0 and the evaluator inputs as group 1
// (omitted when empty).
func Marshal(w io.Writer, c *circuit.Circuit) error {
	if c.NState != 0 {
		return fmt.Errorf("bristol: sequential circuits are not representable")
	}
	if err := c.Validate(); err != nil {
		return fmt.Errorf("bristol: refusing to serialise invalid circuit: %w", err)
	}

	nIn := c.NGarbler + c.NEvaluator
	// Wire remapping: inputs 0..nIn−1, then internal wires, with the
	// outputs copied (EQW) onto the final wires. Constants are
	// materialised with EQ gates on demand.
	remap := make(map[int]int, c.NWires)
	for i := 0; i < c.NGarbler; i++ {
		remap[c.GarblerInputWire(i)] = i
	}
	for i := 0; i < c.NEvaluator; i++ {
		remap[c.EvaluatorInputWire(i)] = c.NGarbler + i
	}
	next := nIn

	type line struct {
		arity    int
		ins      []int
		out      int
		mnemonic string
	}
	var lines []line

	constWire := map[int]int{}
	getConst := func(v int) int {
		if w, ok := constWire[v]; ok {
			return w
		}
		w := next
		next++
		lines = append(lines, line{arity: 1, ins: []int{v}, out: w, mnemonic: "EQ"})
		constWire[v] = w
		return w
	}
	resolve := func(old int) (int, error) {
		switch old {
		case circuit.Const0:
			return getConst(0), nil
		case circuit.Const1:
			return getConst(1), nil
		}
		w, ok := remap[old]
		if !ok {
			return 0, fmt.Errorf("bristol: wire %d used before definition", old)
		}
		return w, nil
	}

	for _, g := range c.Gates {
		a, err := resolve(g.A)
		if err != nil {
			return err
		}
		bWire, err := resolve(g.B)
		if err != nil {
			return err
		}
		out := next
		next++
		remap[g.Out] = out
		mn := "XOR"
		if g.Op == circuit.AND {
			mn = "AND"
		}
		lines = append(lines, line{arity: 2, ins: []int{a, bWire}, out: out, mnemonic: mn})
	}

	// Copy outputs onto the trailing wires. Resolve all sources first:
	// a constant seen for the first time here must allocate its EQ
	// wire below the output range.
	srcs := make([]int, len(c.Outputs))
	for i, ow := range c.Outputs {
		src, err := resolve(ow)
		if err != nil {
			return err
		}
		srcs[i] = src
	}
	outBase := next
	for i, src := range srcs {
		lines = append(lines, line{arity: 1, ins: []int{src}, out: outBase + i, mnemonic: "EQW"})
	}
	next = outBase + len(c.Outputs)

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", len(lines), next)
	if c.NEvaluator > 0 {
		fmt.Fprintf(bw, "2 %d %d\n", c.NGarbler, c.NEvaluator)
	} else {
		fmt.Fprintf(bw, "1 %d\n", c.NGarbler)
	}
	fmt.Fprintf(bw, "1 %d\n\n", len(c.Outputs))
	for _, l := range lines {
		fmt.Fprintf(bw, "%d 1", l.arity)
		for _, in := range l.ins {
			fmt.Fprintf(bw, " %d", in)
		}
		fmt.Fprintf(bw, " %d %s\n", l.out, l.mnemonic)
	}
	return bw.Flush()
}

// Unmarshal parses a Bristol Fashion circuit. Input group 0 becomes
// the garbler inputs; group 1 (if present) the evaluator inputs; more
// than two groups are rejected. All output groups concatenate into the
// circuit outputs.
func Unmarshal(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	nextLine := func() ([]string, error) {
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) > 0 {
				return fields, nil
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	ints := func(fields []string) ([]int, error) {
		out := make([]int, len(fields))
		for i, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("bristol: bad integer %q", f)
			}
			out[i] = v
		}
		return out, nil
	}

	hdr, err := nextLine()
	if err != nil {
		return nil, fmt.Errorf("bristol: missing header: %w", err)
	}
	hv, err := ints(hdr)
	if err != nil || len(hv) != 2 {
		return nil, fmt.Errorf("bristol: header must be `ngates nwires`")
	}
	nGates, nWires := hv[0], hv[1]
	if nGates < 0 || nWires <= 0 || nGates > 1<<28 || nWires > 1<<28 {
		return nil, fmt.Errorf("bristol: implausible sizes %d gates %d wires", nGates, nWires)
	}

	inHdr, err := nextLine()
	if err != nil {
		return nil, fmt.Errorf("bristol: missing input header: %w", err)
	}
	iv, err := ints(inHdr)
	if err != nil || len(iv) < 1 || len(iv) != iv[0]+1 {
		return nil, fmt.Errorf("bristol: malformed input header")
	}
	if iv[0] < 1 || iv[0] > 2 {
		return nil, fmt.Errorf("bristol: %d input groups unsupported (want 1 or 2)", iv[0])
	}
	nGarbler := iv[1]
	nEvaluator := 0
	if iv[0] == 2 {
		nEvaluator = iv[2]
	}
	if nGarbler < 0 || nEvaluator < 0 || nGarbler+nEvaluator > nWires {
		return nil, fmt.Errorf("bristol: %d input wires do not fit %d wires", nGarbler+nEvaluator, nWires)
	}

	outHdr, err := nextLine()
	if err != nil {
		return nil, fmt.Errorf("bristol: missing output header: %w", err)
	}
	ov, err := ints(outHdr)
	if err != nil || len(ov) < 1 || len(ov) != ov[0]+1 {
		return nil, fmt.Errorf("bristol: malformed output header")
	}
	nOut := 0
	for _, w := range ov[1:] {
		nOut += w
	}
	if nOut <= 0 || nOut > nWires {
		return nil, fmt.Errorf("bristol: %d output wires outside circuit", nOut)
	}

	// Bristol wire w maps to builder wire via table; inputs pre-mapped.
	b := circuit.NewBuilder()
	g := b.GarblerInputs(nGarbler)
	e := b.EvaluatorInputs(nEvaluator)
	wireMap := make([]int, nWires)
	for i := range wireMap {
		wireMap[i] = -1
	}
	for i, w := range g {
		wireMap[i] = w
	}
	for i, w := range e {
		wireMap[nGarbler+i] = w
	}

	resolve := func(w int) (int, error) {
		if w < 0 || w >= nWires {
			return 0, fmt.Errorf("bristol: wire %d out of range", w)
		}
		if wireMap[w] < 0 {
			return 0, fmt.Errorf("bristol: wire %d read before assignment", w)
		}
		return wireMap[w], nil
	}
	assign := func(w, builderWire int) error {
		if w < 0 || w >= nWires {
			return fmt.Errorf("bristol: output wire %d out of range", w)
		}
		if wireMap[w] >= 0 {
			return fmt.Errorf("bristol: wire %d assigned twice", w)
		}
		wireMap[w] = builderWire
		return nil
	}

	for i := 0; i < nGates; i++ {
		fields, err := nextLine()
		if err != nil {
			return nil, fmt.Errorf("bristol: gate %d: %w", i, err)
		}
		if len(fields) < 4 {
			return nil, fmt.Errorf("bristol: gate %d malformed", i)
		}
		mnemonic := fields[len(fields)-1]
		nums, err := ints(fields[:len(fields)-1])
		if err != nil {
			return nil, fmt.Errorf("bristol: gate %d: %w", i, err)
		}
		arity, outs := nums[0], nums[1]
		if outs != 1 || len(nums) != 2+arity+1 {
			return nil, fmt.Errorf("bristol: gate %d has unsupported shape", i)
		}
		ins := nums[2 : 2+arity]
		out := nums[2+arity]
		switch mnemonic {
		case "XOR", "AND":
			if arity != 2 {
				return nil, fmt.Errorf("bristol: gate %d: %s needs 2 inputs", i, mnemonic)
			}
			a, err := resolve(ins[0])
			if err != nil {
				return nil, err
			}
			c, err := resolve(ins[1])
			if err != nil {
				return nil, err
			}
			var bw int
			if mnemonic == "XOR" {
				bw = b.XOR(a, c)
			} else {
				bw = b.AND(a, c)
			}
			if err := assign(out, bw); err != nil {
				return nil, err
			}
		case "INV", "NOT":
			if arity != 1 {
				return nil, fmt.Errorf("bristol: gate %d: INV needs 1 input", i)
			}
			a, err := resolve(ins[0])
			if err != nil {
				return nil, err
			}
			if err := assign(out, b.NOT(a)); err != nil {
				return nil, err
			}
		case "EQW":
			if arity != 1 {
				return nil, fmt.Errorf("bristol: gate %d: EQW needs 1 input", i)
			}
			a, err := resolve(ins[0])
			if err != nil {
				return nil, err
			}
			if err := assign(out, a); err != nil {
				return nil, err
			}
		case "EQ":
			if arity != 1 || (ins[0] != 0 && ins[0] != 1) {
				return nil, fmt.Errorf("bristol: gate %d: EQ needs literal 0/1", i)
			}
			if err := assign(out, b.Const(ins[0] == 1)); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("bristol: gate %d: unsupported op %q", i, mnemonic)
		}
	}

	// Outputs are the last nOut wires.
	for w := nWires - nOut; w < nWires; w++ {
		bw, err := resolve(w)
		if err != nil {
			return nil, fmt.Errorf("bristol: output %w", err)
		}
		b.Outputs(bw)
	}
	return b.Build()
}
