package sched

import (
	"strings"
	"testing"
)

func TestCoreCountMatchesPaperFormula(t *testing.T) {
	// §4.3: cores = b/2 + ⌈(b/2+8)/3⌉; Table 2 row "No of cores":
	// 8, 14, 24 for b = 8, 16, 32.
	want := map[int]int{8: 8, 16: 14, 32: 24}
	for b, cores := range want {
		s := MustBuild(b)
		if got := s.NumCores(); got != cores {
			t.Fatalf("b=%d: %d cores, want %d", b, got, cores)
		}
		formula := b/2 + (b/2+8+2)/3
		if got := s.NumCores(); got != formula {
			t.Fatalf("b=%d: %d cores, formula gives %d", b, got, formula)
		}
	}
}

func TestSegmentSplit(t *testing.T) {
	for _, b := range []int{4, 8, 16, 32, 64} {
		s := MustBuild(b)
		if got := s.SegmentCores(MuxAdd); got != b/2 {
			t.Fatalf("b=%d: %d MUX_ADD cores, want %d", b, got, b/2)
		}
		wantTree := (b/2 + 8 + 2) / 3
		if got := s.SegmentCores(Tree); got != wantTree {
			t.Fatalf("b=%d: %d TREE cores, want %d", b, got, wantTree)
		}
	}
}

func TestIdleSlotsAtMostTwo(t *testing.T) {
	// The paper's headline scheduling claim: "ensuring minimal
	// (highest 2) idle cycles".
	for b := 4; b <= 128; b *= 2 {
		s := MustBuild(b)
		if idle := s.IdleSlotsPerStage(); idle > 2 {
			t.Fatalf("b=%d: %d idle slots per stage", b, idle)
		}
	}
}

func TestIdleSlotsExactValues(t *testing.T) {
	// ops₂ = b/2+8; slots₂ = 3·⌈(b/2+8)/3⌉; idle = slots₂ − ops₂.
	want := map[int]int{8: 0, 16: 2, 32: 0, 64: 2}
	for b, idle := range want {
		s := MustBuild(b)
		if got := s.IdleSlotsPerStage(); got != idle {
			t.Fatalf("b=%d: %d idle slots, want %d", b, got, idle)
		}
	}
}

func TestSegment1CoresFullyOccupied(t *testing.T) {
	s := MustBuild(16)
	for _, c := range s.Cores {
		if c.Segment != MuxAdd {
			continue
		}
		for cy, sl := range c.Slots {
			if sl.Kind == Idle {
				t.Fatalf("MUX_ADD core %d idle at cycle %d", c.ID, cy)
			}
		}
		if c.Slots[0].Kind != PartialProduct || c.Slots[1].Kind != PartialProduct || c.Slots[2].Kind != SerialAdd {
			t.Fatalf("MUX_ADD core %d has wrong op pattern: %v %v %v",
				c.ID, c.Slots[0].Kind, c.Slots[1].Kind, c.Slots[2].Kind)
		}
	}
}

func TestOpCountsPerStage(t *testing.T) {
	for _, b := range []int{8, 16, 32} {
		s := MustBuild(b)
		counts := s.OpCounts()
		if counts[PartialProduct] != b {
			t.Fatalf("b=%d: %d partial products, want %d", b, counts[PartialProduct], b)
		}
		if counts[SerialAdd] != b/2 {
			t.Fatalf("b=%d: %d serial adds, want %d", b, counts[SerialAdd], b/2)
		}
		if counts[TreeAdd] != b/2-1 {
			t.Fatalf("b=%d: %d tree adds, want %d", b, counts[TreeAdd], b/2-1)
		}
		if counts[SignMux]+counts[SignNeg] != 8 {
			t.Fatalf("b=%d: %d sign ops, want 8", b, counts[SignMux]+counts[SignNeg])
		}
		if counts[Accumulate] != 1 {
			t.Fatalf("b=%d: %d accumulator ops, want 1", b, counts[Accumulate])
		}
	}
}

func TestCyclesPerMACMatchesTable2(t *testing.T) {
	// Table 2 "Clock Cycle per MAC": 24, 48, 96 for b = 8, 16, 32.
	want := map[int]int{8: 24, 16: 48, 32: 96}
	for b, cycles := range want {
		s := MustBuild(b)
		if got := s.CyclesPerMAC(); got != cycles {
			t.Fatalf("b=%d: %d cycles/MAC, want %d", b, got, cycles)
		}
	}
}

func TestLatencyFormula(t *testing.T) {
	// §4.3: complete operation takes b + log(b) + 2 stages.
	want := map[int]int{8: 13, 16: 22, 32: 39, 64: 72}
	for b, stages := range want {
		s := MustBuild(b)
		if got := s.LatencyStages(); got != stages {
			t.Fatalf("b=%d: latency %d stages, want %d", b, got, stages)
		}
		if got := s.LatencyCycles(); got != 3*stages {
			t.Fatalf("b=%d: latency %d cycles, want %d", b, got, 3*stages)
		}
	}
}

func TestTotalCyclesPipelined(t *testing.T) {
	s := MustBuild(8)
	if got := s.TotalCycles(0); got != 0 {
		t.Fatalf("0 MACs = %d cycles", got)
	}
	if got := s.TotalCycles(1); got != uint64(s.LatencyCycles()) {
		t.Fatalf("1 MAC = %d cycles, want latency %d", got, s.LatencyCycles())
	}
	// Steady state: each extra MAC costs exactly 3b cycles.
	d := s.TotalCycles(101) - s.TotalCycles(100)
	if d != uint64(s.CyclesPerMAC()) {
		t.Fatalf("marginal MAC = %d cycles, want %d", d, s.CyclesPerMAC())
	}
}

func TestTablesPerStage(t *testing.T) {
	// tables/stage = 3·(b/2) + b/2 + 8 = 2b + 8.
	for _, b := range []int{8, 16, 32} {
		s := MustBuild(b)
		if got := s.TablesPerStage(); got != 2*b+8 {
			t.Fatalf("b=%d: %d tables/stage, want %d", b, got, 2*b+8)
		}
		if got := s.TablesPerMAC(); got != (2*b+8)*b {
			t.Fatalf("b=%d: %d tables/MAC, want %d", b, got, (2*b+8)*b)
		}
	}
}

func TestWorstCaseRNGDemand(t *testing.T) {
	// §5.2: worst case k·(b/2) random bits per cycle.
	s := MustBuild(32)
	if got := s.WorstCaseRNGBitsPerCycle(128); got != 128*16 {
		t.Fatalf("RNG worst case = %d bits/cycle", got)
	}
}

func TestEverySlotAssignedExactlyOnce(t *testing.T) {
	// Structural invariant: the steady-state grid covers every
	// (core, cycle) pair exactly once and slot details are filled.
	s := MustBuild(16)
	seen := 0
	for _, c := range s.Cores {
		for _, sl := range c.Slots {
			seen++
			if sl.Detail == "" {
				t.Fatalf("core %d has slot without detail", c.ID)
			}
		}
	}
	if seen != s.NumCores()*CyclesPerStage {
		t.Fatalf("grid has %d slots, want %d", seen, s.NumCores()*CyclesPerStage)
	}
}

func TestBuildValidation(t *testing.T) {
	for _, b := range []int{0, -4, 2, 3, 6, 10, 12, 20} {
		if _, err := Build(b); err == nil {
			t.Fatalf("width %d accepted", b)
		}
	}
	if _, err := Build(4); err != nil {
		t.Fatalf("width 4 rejected: %v", err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild(3) did not panic")
		}
	}()
	MustBuild(3)
}

func TestRenderStageGrid(t *testing.T) {
	s := MustBuild(8)
	out := s.RenderStageGrid()
	for _, want := range []string{"MUX_ADD", "TREE", "x[0]∧a[n]", "acc += product", "8 cores"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stage grid missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTree(t *testing.T) {
	s := MustBuild(8)
	out := s.RenderTree()
	for _, want := range []string{"Fig. 2", "s0", "(s0+s1)", "level 1", "accumulator", "1 MAC / 8 stages"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree rendering missing %q:\n%s", want, out)
		}
	}
}

func TestOpStringAndSegmentString(t *testing.T) {
	if Idle.String() != "IDLE" || PartialProduct.String() != "PP_AND" || Accumulate.String() != "ACCUM" {
		t.Fatal("op mnemonics wrong")
	}
	if MuxAdd.String() != "MUX_ADD" || Tree.String() != "TREE" {
		t.Fatal("segment names wrong")
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Fatal("unknown op formatting wrong")
	}
}
