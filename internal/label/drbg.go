package label

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"
	"io"
)

// DRBG is a fast deterministic random bit generator: AES-128 in
// counter mode keyed from a seed. Garbling draws two fresh labels per
// input wire per round; reading each from the operating system is
// syscall-bound, so production garblers (TinyGarble included) expand a
// crypto-strength seed instead. The DRBG is not safe for concurrent
// use.
type DRBG struct {
	stream cipher.Stream
}

// NewDRBG builds a DRBG from a 16-byte seed.
func NewDRBG(seed [16]byte) (*DRBG, error) {
	blk, err := aes.NewCipher(seed[:])
	if err != nil {
		return nil, fmt.Errorf("label: keying DRBG: %w", err)
	}
	var iv [aes.BlockSize]byte
	return &DRBG{stream: cipher.NewCTR(blk, iv[:])}, nil
}

// NewSystemDRBG seeds a DRBG from crypto/rand.
func NewSystemDRBG() (*DRBG, error) {
	var seed [16]byte
	if _, err := io.ReadFull(rand.Reader, seed[:]); err != nil {
		return nil, fmt.Errorf("label: seeding DRBG: %w", err)
	}
	return NewDRBG(seed)
}

// MustSystemDRBG seeds a DRBG from crypto/rand and panics on failure.
func MustSystemDRBG() *DRBG {
	d, err := NewSystemDRBG()
	if err != nil {
		panic(err)
	}
	return d
}

// Read implements io.Reader with the AES-CTR keystream.
func (d *DRBG) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	d.stream.XORKeyStream(p, p)
	return len(p), nil
}
