package main

import (
	"fmt"
	"runtime"
	"time"
)

// Report is maxchaos's verdict: everything the run measured plus the
// invariant violations, marshalled as JSON on stdout. Pass is false —
// and the process exits 1 — if any fleet-wide invariant broke.
type Report struct {
	Backends  int    `json:"backends"`
	Duration  string `json:"duration"`
	KillEvery string `json:"kill_every"`

	Sessions    int64   `json:"sessions"`
	Skipped     int64   `json:"skipped"`
	Succeeded   int64   `json:"succeeded"`
	Shed        int64   `json:"shed"`
	Failed      int64   `json:"failed"`
	Miscomputed int64   `json:"miscomputed"`
	ErrorRate   float64 `json:"error_rate"`

	ServedTotal     int64            `json:"served_total"`
	ServedByBackend map[string]int64 `json:"served_by_backend"`

	Kills           int64 `json:"kills"`
	Restarts        int64 `json:"restarts"`
	RestartFailures int64 `json:"restart_failures"`
	Stalls          int64 `json:"stalls"`
	FlakyWindows    int64 `json:"flaky_windows"`

	BudgetDeposits    uint64  `json:"budget_deposits"`
	BudgetWithdrawals uint64  `json:"budget_withdrawals"`
	BudgetDenials     uint64  `json:"budget_denials"`
	BudgetBound       float64 `json:"budget_bound"`

	Drained              bool             `json:"drained"`
	GaugeSessionsActive  int64            `json:"gauge_sessions_active"`
	GaugeDraining        int64            `json:"gauge_draining"`
	GaugeBackendSessions map[string]int64 `json:"gauge_backend_sessions"`

	GoroutinesBefore int              `json:"goroutines_before"`
	GoroutinesAfter  int              `json:"goroutines_after"`
	ArenaOutstanding map[string]int64 `json:"arena_outstanding"`

	Violations []string `json:"violations"`
	Pass       bool     `json:"pass"`
}

// goroutineSlack is how many goroutines above the pre-run baseline the
// leak check tolerates: the runtime's own helpers (netpoll, timer,
// finalizer) come and go a few at a time.
const goroutineSlack = 5

// effectiveBurst mirrors resilience.BudgetConfig's MinTokens defaults
// so the report checks the bound the budget actually enforced.
func effectiveBurst(min float64) float64 {
	if min < 0 {
		return 0
	}
	if min == 0 {
		return 10
	}
	return min
}

// effectiveRatio mirrors resilience.BudgetConfig's Ratio default.
func effectiveRatio(ratio float64) float64 {
	if ratio <= 0 {
		return 0.2
	}
	return ratio
}

// evaluate applies the fleet-wide invariants and fills Violations,
// ErrorRate, BudgetBound and Pass.
func (r *Report) evaluate(cfg *chaosConfig) {
	add := func(format string, args ...any) {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}

	if r.Sessions == 0 {
		add("no load: the generator launched zero sessions")
	}
	if r.Miscomputed > 0 {
		add("correctness: %d sessions completed with a wrong result", r.Miscomputed)
	}
	// Single-serve: a session the client saw succeed corresponds to at
	// most one backend-side completion (the end marker reaches exactly
	// the backend the gateway committed to). More completions than
	// client successes means a session was served twice.
	if r.ServedTotal > r.Succeeded {
		add("single-serve violated: backends completed %d sessions, clients saw only %d successes",
			r.ServedTotal, r.Succeeded)
	}
	// Retry budget: over any run, withdrawals ≤ ratio·deposits + burst.
	// This is the anti-retry-storm bound — the extra dial load the
	// fleet absorbs is a fixed fraction of offered load plus a constant.
	r.BudgetBound = effectiveRatio(cfg.retryBudget)*float64(r.BudgetDeposits) + effectiveBurst(cfg.retryBudgetMin)
	if float64(r.BudgetWithdrawals) > r.BudgetBound+1e-6 {
		add("retry budget overdrawn: %d withdrawals > bound %.1f (%.2f·%d deposits + %.0f burst)",
			r.BudgetWithdrawals, r.BudgetBound, effectiveRatio(cfg.retryBudget),
			r.BudgetDeposits, effectiveBurst(cfg.retryBudgetMin))
	}
	if r.Sessions > 0 {
		r.ErrorRate = float64(r.Shed+r.Failed) / float64(r.Sessions)
		if r.ErrorRate > cfg.maxErrorRate {
			add("error rate %.3f exceeds the %.3f bound (%d shed + %d failed of %d sessions)",
				r.ErrorRate, cfg.maxErrorRate, r.Shed, r.Failed, r.Sessions)
		}
	}
	if !r.Drained {
		add("gateway did not drain to empty within the post-load deadline")
	}
	if r.GaugeSessionsActive != 0 {
		add("gw_sessions_active = %d after drain, want 0", r.GaugeSessionsActive)
	}
	if r.GaugeDraining != 0 {
		add("gw_draining = %d after drain, want 0", r.GaugeDraining)
	}
	for addr, v := range r.GaugeBackendSessions {
		if v != 0 {
			add("gw_backend_sessions{backend=%q} = %d after drain, want 0", addr, v)
		}
	}
	for addr, v := range r.ArenaOutstanding {
		if v != 0 {
			add("arena leak: backend %s still holds %d frame buffers after teardown", addr, v)
		}
	}
	if r.GoroutinesAfter > r.GoroutinesBefore+goroutineSlack {
		add("goroutine leak: %d after teardown vs %d before (+%d slack)",
			r.GoroutinesAfter, r.GoroutinesBefore, goroutineSlack)
	}
	if r.RestartFailures > 0 {
		add("%d backend restarts failed to re-bind", r.RestartFailures)
	}
	r.Pass = len(r.Violations) == 0
}

// settleGoroutines polls the goroutine count until it returns to the
// baseline (plus slack) or the deadline passes, absorbing the lag of
// netpoll and timer goroutines unwinding after teardown.
func settleGoroutines(base int, wait time.Duration) int {
	deadline := time.Now().Add(wait)
	n := runtime.NumGoroutine()
	for n > base+goroutineSlack && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}
