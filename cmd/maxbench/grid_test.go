package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maxelerator/internal/benchgrid"
	"maxelerator/internal/protocol"
)

func TestParseGridFlagHelpers(t *testing.T) {
	ots, err := parseOTModes("per-round, batched,correlated")
	if err != nil || len(ots) != 3 || ots[1] != protocol.OTBatched {
		t.Fatalf("ots = %v, %v", ots, err)
	}
	if _, err := parseOTModes("warp-speed"); err == nil {
		t.Fatal("unknown OT mode accepted")
	}
	if _, err := parseOTModes(""); err == nil {
		t.Fatal("empty OT list accepted")
	}
	sizes, err := parseSizes("4x4, 16x8")
	if err != nil || len(sizes) != 2 || sizes[1] != [2]int{16, 8} {
		t.Fatalf("sizes = %v, %v", sizes, err)
	}
	for _, bad := range []string{"4", "0x4", "4x-1", "axb", ""} {
		if _, err := parseSizes(bad); err == nil {
			t.Fatalf("size %q accepted", bad)
		}
	}
	widths, err := parseWidths("8, 16")
	if err != nil || len(widths) != 2 || widths[1] != 16 {
		t.Fatalf("widths = %v, %v", widths, err)
	}
	for _, bad := range []string{"0", "-8", "x", ""} {
		if _, err := parseWidths(bad); err == nil {
			t.Fatalf("width %q accepted", bad)
		}
	}
}

// TestRunGridEmitsSchemaValidJSON runs the smallest real sweep and
// checks the artifact parses under the benchgrid schema with every
// expected cell present and populated.
func TestRunGridEmitsSchemaValidJSON(t *testing.T) {
	out, data, msg := testOutput(true)
	gc := gridConfig{
		ots:      []protocol.OTMode{protocol.OTPerRound, protocol.OTBatched},
		sizes:    [][2]int{{2, 2}},
		widths:   []int{8},
		requests: 2,
	}
	if err := runGrid(gc, out); err != nil {
		t.Fatal(err)
	}
	g, err := benchgrid.Decode(data)
	if err != nil {
		t.Fatalf("grid artifact rejected by schema: %v", err)
	}
	// 2 OT modes × 1 size × 1 width × {inline, warm} = 4 cells.
	if len(g.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(g.Cells))
	}
	for _, c := range g.Cells {
		if c.P50Ms <= 0 || c.Requests != 2 {
			t.Fatalf("cell %s not measured: %+v", c.Key(), c)
		}
		if c.TablesPerSec <= 0 {
			t.Fatalf("cell %s has no table throughput: %+v", c.Key(), c)
		}
		if c.BytesPerOp == 0 || c.AllocsPerOp == 0 {
			t.Fatalf("cell %s has no allocation accounting: %+v", c.Key(), c)
		}
	}
	if _, ok := g.Cell("ot=batched/2x2/b=8/precompute=true"); !ok {
		t.Fatal("warm batched cell missing")
	}
	if g.Env.GoVersion == "" {
		t.Fatal("environment not stamped")
	}
	if !strings.Contains(msg.String(), "cell 1/4") || !strings.Contains(msg.String(), "cell 4/4") {
		t.Fatalf("progress missing cell counters:\n%s", msg.String())
	}
}

// TestRunGridCorrelatedSkipsWarmCells: correlated OT fixes labels
// interactively, so the grid must only produce its inline cell.
func TestRunGridCorrelatedSkipsWarmCells(t *testing.T) {
	out, data, _ := testOutput(true)
	gc := gridConfig{
		ots:      []protocol.OTMode{protocol.OTCorrelated},
		sizes:    [][2]int{{2, 2}},
		widths:   []int{8},
		requests: 1,
	}
	if err := runGrid(gc, out); err != nil {
		t.Fatal(err)
	}
	g, err := benchgrid.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 1 || g.Cells[0].Precompute {
		t.Fatalf("cells = %+v, want one inline correlated cell", g.Cells)
	}
}

func TestRunGridHumanTable(t *testing.T) {
	out, data, _ := testOutput(false)
	gc := gridConfig{
		ots:      []protocol.OTMode{protocol.OTBatched},
		sizes:    [][2]int{{2, 2}},
		widths:   []int{8},
		requests: 1,
	}
	if err := runGrid(gc, out); err != nil {
		t.Fatal(err)
	}
	s := data.String()
	for _, want := range []string{"tables/s", "bytes/op", "batched", "2x2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("human grid missing %q:\n%s", want, s)
		}
	}
}

func TestRunGridValidates(t *testing.T) {
	out, _, _ := testOutput(true)
	if err := runGrid(gridConfig{requests: 0}, out); err == nil {
		t.Fatal("zero requests accepted")
	}
}

// writeGrid marshals a grid to a temp file and returns the path.
func writeGrid(t *testing.T, dir, name string, g *benchgrid.Grid) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.Encode(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchCell(warm bool, p50 float64) benchgrid.Cell {
	return benchgrid.Cell{
		OT: "batched", Rows: 4, Cols: 4, Width: 8, Precompute: warm, Requests: 5,
		P50Ms: p50, P95Ms: p50 * 1.2, P99Ms: p50 * 1.4, MeanMs: p50,
		TablesPerSec: 1000, BytesPerOp: 1 << 16, AllocsPerOp: 100,
	}
}

// TestRunCompareVerdicts covers the acceptance contract: a self-compare
// exits clean, a synthetic slowdown returns the non-zero-exit sentinel.
func TestRunCompareVerdicts(t *testing.T) {
	dir := t.TempDir()
	base := benchgrid.New("test")
	base.Cells = []benchgrid.Cell{benchCell(false, 10), benchCell(true, 5)}
	basePath := writeGrid(t, dir, "base.json", base)

	out, data, _ := testOutput(false)
	if err := runCompare(basePath, basePath, benchgrid.DefaultTolerances(), out); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
	if !strings.Contains(data.String(), "OK") {
		t.Fatalf("verdict missing OK:\n%s", data.String())
	}

	slow := benchgrid.New("test")
	slow.Cells = []benchgrid.Cell{benchCell(false, 30), benchCell(true, 5)}
	slowPath := writeGrid(t, dir, "slow.json", slow)
	out2, data2, _ := testOutput(false)
	err := runCompare(basePath, slowPath, benchgrid.DefaultTolerances(), out2)
	if err != errRegressions {
		t.Fatalf("slowdown err = %v, want errRegressions", err)
	}
	if !strings.Contains(data2.String(), "p50_ms") {
		t.Fatalf("verdict missing the regressing metric:\n%s", data2.String())
	}
}

func TestRunCompareJSONReport(t *testing.T) {
	dir := t.TempDir()
	base := benchgrid.New("test")
	base.Cells = []benchgrid.Cell{benchCell(false, 10)}
	basePath := writeGrid(t, dir, "base.json", base)
	slow := benchgrid.New("test")
	slow.Cells = []benchgrid.Cell{benchCell(false, 40)}
	slowPath := writeGrid(t, dir, "slow.json", slow)

	out, data, _ := testOutput(true)
	if err := runCompare(basePath, slowPath, benchgrid.DefaultTolerances(), out); err != errRegressions {
		t.Fatalf("err = %v", err)
	}
	var rep compareReport
	if err := json.Unmarshal(data.Bytes(), &rep); err != nil {
		t.Fatalf("compare JSON did not parse: %v\n%s", err, data.String())
	}
	if rep.OK || len(rep.Regressions) == 0 {
		t.Fatalf("report = %+v, want regressions", rep)
	}
}

func TestRunCompareMissingFile(t *testing.T) {
	out, _, _ := testOutput(false)
	if err := runCompare(filepath.Join(t.TempDir(), "nope.json"), "also-nope.json",
		benchgrid.DefaultTolerances(), out); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
