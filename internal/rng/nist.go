package rng

import (
	"fmt"
	"math"
)

// This file implements the statistical battery the paper uses to
// validate the RNG ("The entropy of the implemented RNG ... is
// thoroughly evaluated by NIST battery of randomness tests", §5.2).
// The tests follow NIST SP 800-22: each computes a p-value and passes
// when p ≥ Alpha.

// Alpha is the NIST SP 800-22 significance level.
const Alpha = 0.01

// TestResult is the outcome of one statistical test.
type TestResult struct {
	// Name identifies the test.
	Name string
	// PValue is the test p-value; the stream passes when ≥ Alpha.
	PValue float64
	// Pass reports PValue ≥ Alpha.
	Pass bool
	// Detail carries the raw statistic for reports.
	Detail string
}

func result(name string, p float64, detail string) TestResult {
	return TestResult{Name: name, PValue: p, Pass: p >= Alpha, Detail: detail}
}

// igamq computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a), used to turn chi-square statistics into
// p-values. Series expansion for x < a+1, continued fraction
// otherwise (Numerical Recipes gammp/gammq).
func igamq(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// P(a,x) by series, Q = 1 - P.
		ap := a
		sum := 1 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return 1 - sum*math.Exp(-x+a*math.Log(x)-lg)
	}
	// Q(a,x) by modified Lentz continued fraction.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Monobit is the SP 800-22 frequency test: the proportion of ones
// must be consistent with 1/2.
func Monobit(bits []bool) TestResult {
	n := len(bits)
	s := 0
	for _, b := range bits {
		if b {
			s++
		} else {
			s--
		}
	}
	sObs := math.Abs(float64(s)) / math.Sqrt(float64(n))
	p := math.Erfc(sObs / math.Sqrt2)
	return result("monobit", p, fmt.Sprintf("S=%d n=%d", s, n))
}

// BlockFrequency is the SP 800-22 frequency-within-a-block test.
func BlockFrequency(bits []bool, blockLen int) TestResult {
	n := len(bits)
	nBlocks := n / blockLen
	if nBlocks == 0 {
		return result("block-frequency", math.NaN(), "stream shorter than one block")
	}
	chi2 := 0.0
	for i := 0; i < nBlocks; i++ {
		ones := 0
		for j := 0; j < blockLen; j++ {
			if bits[i*blockLen+j] {
				ones++
			}
		}
		pi := float64(ones) / float64(blockLen)
		chi2 += (pi - 0.5) * (pi - 0.5)
	}
	chi2 *= 4 * float64(blockLen)
	p := igamq(float64(nBlocks)/2, chi2/2)
	return result("block-frequency", p, fmt.Sprintf("chi2=%.3f blocks=%d", chi2, nBlocks))
}

// Runs is the SP 800-22 runs test: the number of maximal runs of
// identical bits must match expectation.
func Runs(bits []bool) TestResult {
	n := len(bits)
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	pi := float64(ones) / float64(n)
	// Pre-test: monobit must be plausible, otherwise the runs test is
	// undefined by SP 800-22.
	if math.Abs(pi-0.5) >= 2/math.Sqrt(float64(n)) {
		return result("runs", 0, fmt.Sprintf("pre-test failed: pi=%.4f", pi))
	}
	v := 1
	for i := 1; i < n; i++ {
		if bits[i] != bits[i-1] {
			v++
		}
	}
	num := math.Abs(float64(v) - 2*float64(n)*pi*(1-pi))
	den := 2 * math.Sqrt(2*float64(n)) * pi * (1 - pi)
	p := math.Erfc(num / den)
	return result("runs", p, fmt.Sprintf("V=%d pi=%.4f", v, pi))
}

// LongestRunOfOnes is the SP 800-22 longest-run test for 128-bit
// blocks (M=128, N=49 categories per the standard's table).
func LongestRunOfOnes(bits []bool) TestResult {
	const blockLen = 128
	nBlocks := len(bits) / blockLen
	if nBlocks < 49 {
		return result("longest-run", math.NaN(), fmt.Sprintf("need %d bits, have %d", 49*blockLen, len(bits)))
	}
	// Categories for M=128: longest run ≤4, 5, 6, 7, 8, ≥9.
	probs := []float64{0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124}
	counts := make([]int, 6)
	for i := 0; i < nBlocks; i++ {
		longest, run := 0, 0
		for j := 0; j < blockLen; j++ {
			if bits[i*blockLen+j] {
				run++
				if run > longest {
					longest = run
				}
			} else {
				run = 0
			}
		}
		switch {
		case longest <= 4:
			counts[0]++
		case longest >= 9:
			counts[5]++
		default:
			counts[longest-4]++
		}
	}
	chi2 := 0.0
	for i, p := range probs {
		exp := float64(nBlocks) * p
		d := float64(counts[i]) - exp
		chi2 += d * d / exp
	}
	p := igamq(5.0/2, chi2/2)
	return result("longest-run", p, fmt.Sprintf("chi2=%.3f blocks=%d", chi2, nBlocks))
}

// Poker is the FIPS 140-2 poker test with 4-bit cells: the 16 nibble
// values must be uniformly distributed.
func Poker(bits []bool) TestResult {
	m := 4
	k := len(bits) / m
	if k == 0 {
		return result("poker", math.NaN(), "stream too short")
	}
	counts := make([]int, 1<<m)
	for i := 0; i < k; i++ {
		v := 0
		for j := 0; j < m; j++ {
			if bits[i*m+j] {
				v |= 1 << uint(j)
			}
		}
		counts[v]++
	}
	x := 0.0
	for _, c := range counts {
		x += float64(c) * float64(c)
	}
	chi2 := float64(int(1)<<m)/float64(k)*x - float64(k)
	p := igamq(float64(int(1)<<m-1)/2, chi2/2)
	return result("poker", p, fmt.Sprintf("chi2=%.3f cells=%d", chi2, k))
}

// Autocorrelation tests independence between bits d positions apart.
func Autocorrelation(bits []bool, d int) TestResult {
	n := len(bits) - d
	if n <= 0 {
		return result("autocorrelation", math.NaN(), "stream shorter than lag")
	}
	a := 0
	for i := 0; i < n; i++ {
		if bits[i] != bits[i+d] {
			a++
		}
	}
	z := 2 * (float64(a) - float64(n)/2) / math.Sqrt(float64(n))
	p := math.Erfc(math.Abs(z) / math.Sqrt2)
	return result(fmt.Sprintf("autocorrelation(d=%d)", d), p, fmt.Sprintf("A=%d n=%d", a, n))
}

// CumulativeSums is the SP 800-22 cusum test (forward mode).
func CumulativeSums(bits []bool) TestResult {
	n := len(bits)
	s, z := 0, 0
	for _, b := range bits {
		if b {
			s++
		} else {
			s--
		}
		if abs := s; abs < 0 {
			if -abs > z {
				z = -abs
			}
		} else if abs > z {
			z = abs
		}
	}
	if z == 0 {
		return result("cusum", 0, "degenerate all-balanced stream")
	}
	fn := float64(n)
	fz := float64(z)
	phi := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	sum1 := 0.0
	for k := (-n/z + 1) / 4; k <= (n/z-1)/4; k++ {
		sum1 += phi(float64(4*k+1)*fz/math.Sqrt(fn)) - phi(float64(4*k-1)*fz/math.Sqrt(fn))
	}
	sum2 := 0.0
	for k := (-n/z - 3) / 4; k <= (n/z-1)/4; k++ {
		sum2 += phi(float64(4*k+3)*fz/math.Sqrt(fn)) - phi(float64(4*k+1)*fz/math.Sqrt(fn))
	}
	p := 1 - sum1 + sum2
	return result("cusum", p, fmt.Sprintf("z=%d n=%d", z, n))
}

// Battery runs the full test battery over the stream and returns all
// results.
func Battery(bits []bool) []TestResult {
	return []TestResult{
		Monobit(bits),
		BlockFrequency(bits, 128),
		Runs(bits),
		LongestRunOfOnes(bits),
		Poker(bits),
		Autocorrelation(bits, 1),
		Autocorrelation(bits, 8),
		CumulativeSums(bits),
	}
}

// BatteryPasses reports whether every test in the battery passed.
func BatteryPasses(bits []bool) bool {
	for _, r := range Battery(bits) {
		if !r.Pass {
			return false
		}
	}
	return true
}
