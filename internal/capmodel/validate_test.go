package capmodel

import (
	"testing"
	"time"

	"maxelerator/internal/fleetlab"
	"maxelerator/internal/load"
)

// TestValidateAgainstLiveBackend is the tentpole's closing loop and an
// acceptance criterion of the capacity model: drive a real in-process
// maxd-equivalent (real TCP, real OT, real garbling) with the open-loop
// generator, calibrate the simulator from the histograms that same run
// produced, replay the identical arrival schedule, and require the
// predicted p50/p99 and pool hit-rate to land inside the documented
// tolerance band (DefaultTolerance: 3× or 25 ms; hit-rate ±0.35).
func TestValidateAgainstLiveBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("live validation loop needs seconds of wall clock")
	}
	b, err := fleetlab.Start(fleetlab.Config{
		Width: 8, Rows: 4, Cols: 4, Seed: 1,
		MaxSessions: 8, AdmissionWait: 2 * time.Second,
		PoolSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if err := b.Prefill(4); err != nil {
		t.Fatal(err)
	}

	sc := load.Scenario{
		Rate: 4, Process: load.Poisson, DurationSec: 5, Seed: 7,
		MaxInflight: 8,
		Shapes:      []load.ShapeWeight{{Rows: 4, Cols: 4, Width: 8, Weight: 1}},
	}
	measured, err := load.Run(load.Config{
		Target:   b.Addr,
		Scenario: sc,
		Registry: b.Registry(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("measured: offered=%d succeeded=%d shed=%d failed=%d p50=%.1fms p99=%.1fms pool=%+v",
		measured.Offered, measured.Succeeded, measured.Shed, measured.Failed,
		measured.Latency.P50Ms, measured.Latency.P99Ms, measured.Pool)
	if measured.Succeeded == 0 {
		t.Fatal("live run produced no successful sessions; cannot calibrate")
	}

	cal, err := FromSnapshot(b.Registry().Snapshot(), 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// CPUs = MaxInflight on purpose: the empirical service times were
	// measured under this very concurrency, so their contention is
	// already priced in — a tighter CPU station would double-count it.
	fl := Fleet{
		Backends: 1, MaxSessions: 8, AdmissionWaitSec: 2,
		CPUs: sc.MaxInflight, PoolDepth: 4, WarmStart: true,
	}
	predicted, err := Simulate(sc, fl, cal)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("predicted: succeeded=%d shed=%d p50=%.1fms p99=%.1fms pool=%+v (stages %+v)",
		predicted.Succeeded, predicted.Shed,
		predicted.Latency.P50Ms, predicted.Latency.P99Ms, predicted.Pool, predicted.StageMeans)

	if viol := Validate(measured, predicted, DefaultTolerance); len(viol) > 0 {
		for _, v := range viol {
			t.Error(v)
		}
	}
	t.Logf("prediction error: %+v", Error(measured, predicted))
}
