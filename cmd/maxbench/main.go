// Command maxbench regenerates the paper's evaluation artefacts:
// Tables 1–3, the Fig. 2/3 schedule renderings, the §4.3 performance
// sweep and the §6 case studies, each printed with the published
// numbers alongside this repository's models and (optionally) live
// software measurements on the current host.
//
// Usage:
//
//	maxbench                  # everything, with live software measurement
//	maxbench -table 2         # one table (1, 2 or 3)
//	maxbench -figure 3 -b 16  # one figure at a chosen bit-width
//	maxbench -case portfolio  # one case study
//	maxbench -fast            # skip the live software measurement
//
// Latency mode measures online request latency (p50/p95/p99) over a
// multiplexed in-memory session; with -precompute it contrasts inline
// garbling with a warm precompute pool in one run (see latency.go):
//
//	maxbench -latency -rows 16 -cols 16 -b 16 -requests 30 -precompute
//	maxbench -latency -precompute -json
//
// With -addr the latency pass runs against a live TCP endpoint — a
// single maxd, or a maxgw fleet router — opening the session with a
// shape-hint preface so the gateway pins it to the warm backend.
// -rows/-cols must match the served model:
//
//	maxbench -latency -addr 127.0.0.1:7000 -rows 4 -cols 4 -b 16
//
// Grid mode runs the canonical benchmark sweep (OT mode × shape ×
// bit-width × precompute on/off) and emits the versioned
// internal/benchgrid JSON schema; compare mode diffs two grid files
// under tolerances and exits non-zero on regression (see grid.go):
//
//	maxbench -grid -json > BENCH_PR6.json
//	maxbench -compare BENCH_PR6.json new.json
//
// -json is global: the machine-readable artifact goes to stdout and
// human progress to stderr, so redirecting stdout always captures a
// clean artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"maxelerator/internal/benchgrid"
	"maxelerator/internal/report"
)

func main() {
	table := flag.Int("table", 0, "print one table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "print one figure (2 or 3)")
	study := flag.String("case", "", "print one case study (recommendation or portfolio)")
	width := flag.Int("b", 8, "bit-width for figure renderings")
	fast := flag.Bool("fast", false, "skip live software measurement in Table 2")
	rounds := flag.Int("rounds", 200, "MAC rounds per width for the live software measurement")
	latency := flag.Bool("latency", false, "measure online request latency over a multiplexed session")
	rows := flag.Int("rows", 16, "matrix rows for -latency")
	cols := flag.Int("cols", 16, "matrix columns for -latency")
	requests := flag.Int("requests", 20, "requests per measured pass (-latency, -grid)")
	precompute := flag.Bool("precompute", false, "also measure against a warm precompute pool (-latency)")
	addr := flag.String("addr", "", "measure -latency against a live maxd or maxgw endpoint instead of in-memory")
	pool := flag.Int("precompute-pool", 1, "precompute pool size per shape (-latency -precompute)")
	jsonOut := flag.Bool("json", false, "emit the artifact as JSON on stdout (progress goes to stderr)")
	grid := flag.Bool("grid", false, "run the canonical benchmark grid (OT × size × width × precompute)")
	gridOTs := flag.String("grid-ots", "per-round,batched", "comma-separated OT modes for -grid")
	gridSizes := flag.String("grid-sizes", "4x4,16x16", "comma-separated RxC shapes for -grid")
	gridWidths := flag.String("grid-widths", "8,16", "comma-separated bit-widths for -grid")
	compare := flag.Bool("compare", false, "compare two grid files: maxbench -compare base.json new.json")
	tolLatency := flag.Float64("tol-latency", 0.25, "allowed fractional latency increase in -compare (negative disables)")
	tolSlackMs := flag.Float64("tol-latency-slack-ms", 0.5, "absolute latency grace in ms added to the fractional bound")
	tolThroughput := flag.Float64("tol-throughput", 0.25, "allowed fractional tables/sec decrease in -compare (negative disables)")
	tolBytes := flag.Float64("tol-bytes", 0.10, "allowed fractional bytes/op increase in -compare (negative disables)")
	tolAllocs := flag.Float64("tol-allocs", 0.10, "allowed fractional allocs/op increase in -compare (negative disables)")
	requireAll := flag.Bool("require-all", false, "in -compare, a baseline cell missing from the new grid is a regression")
	flag.Parse()

	out := &output{json: *jsonOut, data: os.Stdout, msg: os.Stderr}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "maxbench:", err)
		os.Exit(1)
	}

	switch {
	case *compare:
		if flag.NArg() != 2 {
			fail(fmt.Errorf("compare: want two grid files (maxbench -compare base.json new.json), got %d args", flag.NArg()))
		}
		tol := benchgrid.Tolerances{
			Latency: *tolLatency, LatencySlackMs: *tolSlackMs,
			Throughput: *tolThroughput, Bytes: *tolBytes, Allocs: *tolAllocs,
			RequireAll: *requireAll,
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), tol, out); err != nil {
			fail(err)
		}
	case *grid:
		if *addr != "" {
			fail(fmt.Errorf("-addr is a -latency mode; the grid measures the in-process stack"))
		}
		gc := gridConfig{requests: *requests}
		var err error
		if gc.ots, err = parseOTModes(*gridOTs); err != nil {
			fail(err)
		}
		if gc.sizes, err = parseSizes(*gridSizes); err != nil {
			fail(err)
		}
		if gc.widths, err = parseWidths(*gridWidths); err != nil {
			fail(err)
		}
		if err := runGrid(gc, out); err != nil {
			fail(err)
		}
	case *latency:
		lc := latencyConfig{rows: *rows, cols: *cols, width: *width, requests: *requests,
			precompute: *precompute, pool: *pool, addr: *addr}
		if err := runLatency(lc, out); err != nil {
			fail(err)
		}
	default:
		if *addr != "" {
			fail(fmt.Errorf("-addr requires -latency"))
		}
		if err := run(*table, *figure, *study, *width, *fast, *rounds); err != nil {
			fail(err)
		}
	}
}

func run(table, figure int, study string, width int, fast bool, rounds int) error {
	measure := func() ([]report.SoftwareMeasurement, error) {
		if fast {
			return nil, nil
		}
		return report.MeasureSoftware(rounds)
	}

	switch {
	case table != 0:
		switch table {
		case 1:
			t, err := report.Table1()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case 2:
			m, err := measure()
			if err != nil {
				return err
			}
			t, err := report.Table2(m)
			if err != nil {
				return err
			}
			fmt.Println(t)
		case 3:
			t, err := report.Table3()
			if err != nil {
				return err
			}
			fmt.Println(t)
		default:
			return fmt.Errorf("unknown table %d", table)
		}
	case figure != 0:
		var out string
		var err error
		switch figure {
		case 2:
			out, err = report.Fig2(width)
		case 3:
			out, err = report.Fig3(width)
		default:
			return fmt.Errorf("unknown figure %d", figure)
		}
		if err != nil {
			return err
		}
		fmt.Println(out)
	case study != "":
		var t fmt.Stringer
		var err error
		switch study {
		case "recommendation":
			t, err = report.CaseRecommendation()
		case "portfolio":
			t, err = report.CasePortfolio()
		default:
			return fmt.Errorf("unknown case study %q", study)
		}
		if err != nil {
			return err
		}
		fmt.Println(t)
	default:
		m, err := measure()
		if err != nil {
			return err
		}
		all, err := report.All(m)
		if err != nil {
			return err
		}
		fmt.Print(all)
	}
	return nil
}
