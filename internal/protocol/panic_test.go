package protocol

// Panic containment: a panic inside one garble-pool worker (or the
// serving path generally) must cost exactly that request — the client
// receives an explicit error frame, the server logs the stack and
// counts the recovery, the pool gauges settle to zero, and the server
// value keeps serving fresh sessions.

import (
	"crypto/rand"
	"errors"
	"runtime"
	"testing"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/wire"
)

func TestWorkerPanicIsolatedToRequest(t *testing.T) {
	before := runtime.NumGoroutine()
	o := obs.New(4)
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	// Row 1's garbling panics inside its pool worker; row 0 garbles
	// normally. The hook is cleared before the recovery session below.
	garbleTestHook = func(row int) {
		if row == 1 {
			panic("injected garbling panic")
		}
	}
	defer func() { garbleTestHook = nil }()

	req := Request{Matrix: [][]int64{{1, 2}, {3, 4}}, GarbleWorkers: 2}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	srvDone := make(chan error, 1)
	go func() {
		sess, err := srv.NewSession(a, SessionConfig{})
		if err != nil {
			srvDone <- err
			return
		}
		defer sess.Close()
		_, err = sess.Serve(req)
		srvDone <- err
	}()

	cs, err := cli.Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	_, derr := cs.Do([]int64{5, 6})
	if derr == nil {
		t.Fatal("request succeeded despite a panicking garble worker")
	}
	// The failure must arrive as the explicit internal-error frame, not
	// a timeout or a decode error — the client learns the server broke,
	// without the panic detail crossing the wire.
	if !errors.Is(derr, ErrInternal) {
		t.Fatalf("client error = %v, want ErrInternal", derr)
	}
	if contains := "injected garbling panic"; errContains(derr, contains) {
		t.Errorf("client error %q leaks the server-side panic detail", derr)
	}
	serr := <-srvDone
	if !errors.Is(serr, ErrInternal) {
		t.Fatalf("server error = %v, want ErrInternal", serr)
	}

	reg := o.Metrics()
	if got := reg.Counter("panics_recovered_total", "").Value(); got != 1 {
		t.Errorf("panics_recovered_total = %d, want 1", got)
	}
	for _, g := range []string{"garble_queue_depth", "garble_workers_busy", "sessions_active"} {
		if got := reg.Gauge(g, "").Value(); got != 0 {
			t.Errorf("%s = %d after recovered panic, want 0", g, got)
		}
	}

	// The same server value must keep serving: a fresh session (panic
	// hook cleared) completes normally — the daemon stayed up.
	garbleTestHook = nil
	a2, b2 := wire.Pipe()
	defer a2.Close()
	defer b2.Close()
	go func() {
		_, err := srv.Serve(a2, req)
		srvDone <- err
	}()
	out, err := clientRun(cli, b2, []int64{5, 6})
	if err != nil {
		t.Fatalf("server unusable after a recovered panic: %v", err)
	}
	if serr := <-srvDone; serr != nil {
		t.Fatalf("server error on recovery session: %v", serr)
	}
	// [[1,2],[3,4]] · [5,6] = [17, 39]
	if len(out) != 2 || out[0] != 17 || out[1] != 39 {
		t.Fatalf("recovery session result = %v, want [17 39]", out)
	}

	checkGoroutines(t, before)
}

// TestInlinePanicIsolated covers the single-worker (inline) garbling
// path, where the panic unwinds the session goroutine itself and is
// caught by serveOpened's recover, not a pool worker's.
func TestInlinePanicIsolated(t *testing.T) {
	o := obs.New(4)
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	garbleTestHook = func(row int) { panic("inline garbling panic") }
	defer func() { garbleTestHook = nil }()

	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(a, Request{Matrix: [][]int64{{1, 2}}, GarbleWorkers: 1})
		srvDone <- err
	}()
	_, derr := clientRun(cli, b, []int64{5, 6})
	if !errors.Is(derr, ErrInternal) {
		t.Fatalf("client error = %v, want ErrInternal", derr)
	}
	if serr := <-srvDone; !errors.Is(serr, ErrInternal) {
		t.Fatalf("server error = %v, want ErrInternal", serr)
	}
	if got := o.Metrics().Counter("panics_recovered_total", "").Value(); got != 1 {
		t.Errorf("panics_recovered_total = %d, want 1", got)
	}
}

// errContains reports whether the error text includes sub — used to
// assert panic details do NOT leak to the peer.
func errContains(err error, sub string) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
