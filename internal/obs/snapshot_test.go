package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestSnapshotRoundTrip is the satellite contract: a histogram's exact
// bucket bounds and per-bucket counts survive SnapshotJSON →
// DecodeSnapshot bit-for-bit.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("svc_seconds", "svc", []float64{0.001, 0.01, 0.1, 1}, L("phase", "garble"))
	for _, v := range []float64{0.0005, 0.0005, 0.004, 0.05, 0.05, 0.05, 0.5, 3} {
		h.Observe(v)
	}
	r.Counter("hits_total", "hits", L("shape", "4x4")).Add(7)
	r.Gauge("depth", "depth").Set(-3)

	var buf bytes.Buffer
	if err := r.SnapshotJSON(&buf); err != nil {
		t.Fatalf("SnapshotJSON: %v", err)
	}
	got, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	want := r.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	hs := got.Histograms[0]
	if !reflect.DeepEqual(hs.Bounds, []float64{0.001, 0.01, 0.1, 1}) {
		t.Fatalf("bounds changed: %v", hs.Bounds)
	}
	// 2 at ≤0.001, 1 at ≤0.01, 3 at ≤0.1, 1 at ≤1, 1 in +Inf.
	if !reflect.DeepEqual(hs.Counts, []uint64{2, 1, 3, 1, 1}) {
		t.Fatalf("counts: %v", hs.Counts)
	}
	if hs.Count != 8 {
		t.Fatalf("count: %d", hs.Count)
	}
	if hs.Labels["phase"] != "garble" {
		t.Fatalf("labels: %v", hs.Labels)
	}
	if math.Abs(hs.Sum-(0.001+0.004+0.15+0.5+3)) > 1e-12 {
		t.Fatalf("sum: %g", hs.Sum)
	}
	if got.CounterSum("hits_total", nil) != 7 {
		t.Fatalf("counter sum: %d", got.CounterSum("hits_total", nil))
	}
	if got.Gauges[0].Value != -3 {
		t.Fatalf("gauge: %d", got.Gauges[0].Value)
	}
}

func TestSnapshotCumulativeAndQuantile(t *testing.T) {
	hs := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []uint64{2, 2, 0, 0},
		Count:  4,
	}
	if got := hs.CumulativeCounts(); !reflect.DeepEqual(got, []uint64{2, 4, 4, 4}) {
		t.Fatalf("cumulative: %v", got)
	}
	q, ok := hs.Quantile(0.5)
	if !ok || q != 1 {
		t.Fatalf("q50 = %g ok=%v, want 1 true", q, ok)
	}
	if _, ok := (HistogramSnapshot{}).Quantile(0.5); ok {
		t.Fatal("empty histogram quantile should report not-ok")
	}
}

// TestSnapshotHistogramMerge: label-filtered lookup merges children
// bound-by-bound.
func TestSnapshotHistogramMerge(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds", "", []float64{1, 2}, L("kind", "a")).Observe(0.5)
	r.Histogram("lat_seconds", "", []float64{1, 2}, L("kind", "b")).Observe(1.5)
	snap := r.Snapshot()

	all, ok := snap.Histogram("lat_seconds", nil)
	if !ok || all.Count != 2 || !reflect.DeepEqual(all.Counts, []uint64{1, 1, 0}) {
		t.Fatalf("merged: ok=%v %+v", ok, all)
	}
	onlyA, ok := snap.Histogram("lat_seconds", map[string]string{"kind": "a"})
	if !ok || onlyA.Count != 1 || onlyA.Counts[0] != 1 {
		t.Fatalf("filtered: ok=%v %+v", ok, onlyA)
	}
	if _, ok := snap.Histogram("lat_seconds", map[string]string{"kind": "c"}); ok {
		t.Fatal("no child should match kind=c")
	}
	if _, ok := snap.Histogram("absent", nil); ok {
		t.Fatal("absent histogram should report not-ok")
	}
}

func TestDecodeSnapshotRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"counts length":        `{"histograms":[{"name":"h","bounds":[1,2],"counts":[1,2],"count":3}]}`,
		"count mismatch":       `{"histograms":[{"name":"h","bounds":[1],"counts":[1,1],"count":3}]}`,
		"bounds not ascending": `{"histograms":[{"name":"h","bounds":[2,1],"counts":[1,1,1],"count":3}]}`,
		"not json":             `{`,
	}
	for name, in := range cases {
		if _, err := DecodeSnapshot(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted malformed snapshot", name)
		}
	}
}

// TestHistzEndpoint: the /histz surface serves a decodable snapshot.
func TestHistzEndpoint(t *testing.T) {
	o := New(0)
	o.Metrics().Histogram("x_seconds", "", []float64{1}).Observe(0.5)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/histz")
	if err != nil {
		t.Fatalf("GET /histz: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	snap, err := DecodeSnapshot(resp.Body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	hs, ok := snap.Histogram("x_seconds", nil)
	if !ok || hs.Count != 1 || hs.Counts[0] != 1 {
		t.Fatalf("snapshot content: ok=%v %+v", ok, hs)
	}
}

// TestNilRegistrySnapshot: nil-safety contract of the package.
func TestNilRegistrySnapshot(t *testing.T) {
	var r *Registry
	snap := r.Snapshot()
	if snap == nil || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot: %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.SnapshotJSON(&buf); err != nil {
		t.Fatalf("nil SnapshotJSON: %v", err)
	}
}
