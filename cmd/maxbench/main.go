// Command maxbench regenerates the paper's evaluation artefacts:
// Tables 1–3, the Fig. 2/3 schedule renderings, the §4.3 performance
// sweep and the §6 case studies, each printed with the published
// numbers alongside this repository's models and (optionally) live
// software measurements on the current host.
//
// Usage:
//
//	maxbench                  # everything, with live software measurement
//	maxbench -table 2         # one table (1, 2 or 3)
//	maxbench -figure 3 -b 16  # one figure at a chosen bit-width
//	maxbench -case portfolio  # one case study
//	maxbench -fast            # skip the live software measurement
//
// Latency mode measures online request latency (p50/p95/p99) over a
// multiplexed in-memory session; with -precompute it contrasts inline
// garbling with a warm precompute pool in one run (see latency.go):
//
//	maxbench -latency -rows 16 -cols 16 -b 16 -requests 30 -precompute
//	maxbench -latency -precompute -json
package main

import (
	"flag"
	"fmt"
	"os"

	"maxelerator/internal/report"
)

func main() {
	table := flag.Int("table", 0, "print one table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "print one figure (2 or 3)")
	study := flag.String("case", "", "print one case study (recommendation or portfolio)")
	width := flag.Int("b", 8, "bit-width for figure renderings")
	fast := flag.Bool("fast", false, "skip live software measurement in Table 2")
	rounds := flag.Int("rounds", 200, "MAC rounds per width for the live software measurement")
	latency := flag.Bool("latency", false, "measure online request latency over a multiplexed session")
	rows := flag.Int("rows", 16, "matrix rows for -latency")
	cols := flag.Int("cols", 16, "matrix columns for -latency")
	requests := flag.Int("requests", 20, "requests per -latency pass")
	precompute := flag.Bool("precompute", false, "also measure against a warm precompute pool (-latency)")
	pool := flag.Int("precompute-pool", 1, "precompute pool size per shape (-latency -precompute)")
	jsonOut := flag.Bool("json", false, "emit -latency results as JSON")
	flag.Parse()

	if *latency {
		lc := latencyConfig{rows: *rows, cols: *cols, width: *width, requests: *requests,
			precompute: *precompute, pool: *pool, jsonOut: *jsonOut}
		if err := runLatency(lc, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "maxbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*table, *figure, *study, *width, *fast, *rounds); err != nil {
		fmt.Fprintln(os.Stderr, "maxbench:", err)
		os.Exit(1)
	}
}

func run(table, figure int, study string, width int, fast bool, rounds int) error {
	measure := func() ([]report.SoftwareMeasurement, error) {
		if fast {
			return nil, nil
		}
		return report.MeasureSoftware(rounds)
	}

	switch {
	case table != 0:
		switch table {
		case 1:
			t, err := report.Table1()
			if err != nil {
				return err
			}
			fmt.Println(t)
		case 2:
			m, err := measure()
			if err != nil {
				return err
			}
			t, err := report.Table2(m)
			if err != nil {
				return err
			}
			fmt.Println(t)
		case 3:
			t, err := report.Table3()
			if err != nil {
				return err
			}
			fmt.Println(t)
		default:
			return fmt.Errorf("unknown table %d", table)
		}
	case figure != 0:
		var out string
		var err error
		switch figure {
		case 2:
			out, err = report.Fig2(width)
		case 3:
			out, err = report.Fig3(width)
		default:
			return fmt.Errorf("unknown figure %d", figure)
		}
		if err != nil {
			return err
		}
		fmt.Println(out)
	case study != "":
		var t fmt.Stringer
		var err error
		switch study {
		case "recommendation":
			t, err = report.CaseRecommendation()
		case "portfolio":
			t, err = report.CasePortfolio()
		default:
			return fmt.Errorf("unknown case study %q", study)
		}
		if err != nil {
			return err
		}
		fmt.Println(t)
	default:
		m, err := measure()
		if err != nil {
			return err
		}
		all, err := report.All(m)
		if err != nil {
			return err
		}
		fmt.Print(all)
	}
	return nil
}
