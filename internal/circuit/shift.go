package circuit

// Barrel shifters: shift by a *secret* amount, one mux layer (one AND
// per bit) per bit of the shift word. Needed whenever a fixed-point
// rescaling factor is itself private — e.g. normalisation steps inside
// the ridge pipeline.

// barrel applies log-many conditional shifts of x controlled by the
// bits of s; shiftBy produces the candidate at distance d.
func (b *Builder) barrel(x Word, s Word, shiftBy func(Word, int) Word) Word {
	if len(x) == 0 {
		panic("circuit: barrel shift of empty word")
	}
	cur := x
	for i, sel := range s {
		d := 1 << uint(i)
		if d >= len(x)*2 { // further stages cannot change anything representable
			d = len(x) * 2
		}
		cur = b.Mux(sel, shiftBy(cur, d), cur)
	}
	return cur
}

// ShiftLeftVar returns x << s (zero filling) for a secret shift amount
// s. Shift amounts ≥ len(x) yield zero.
func (b *Builder) ShiftLeftVar(x Word, s Word) Word {
	return b.barrel(x, s, func(w Word, d int) Word {
		if d >= len(w) {
			return b.ConstWord(0, len(w))
		}
		return b.ShiftLeft(w, d)
	})
}

// ShiftRightVar returns x >> s (logical, zero filling) for a secret
// shift amount s. Shift amounts ≥ len(x) yield zero.
func (b *Builder) ShiftRightVar(x Word, s Word) Word {
	return b.barrel(x, s, func(w Word, d int) Word {
		out := make(Word, len(w))
		for i := range out {
			if i+d < len(w) {
				out[i] = w[i+d]
			} else {
				out[i] = Const0
			}
		}
		return out
	})
}

// ShiftRightArithVar returns x >> s (arithmetic, sign filling) for a
// secret shift amount on a signed word. Shift amounts ≥ len(x) yield
// the sign replicated everywhere.
func (b *Builder) ShiftRightArithVar(x Word, s Word) Word {
	if len(x) == 0 {
		panic("circuit: arithmetic shift of empty word")
	}
	sign := x[len(x)-1]
	return b.barrel(x, s, func(w Word, d int) Word {
		out := make(Word, len(w))
		for i := range out {
			if i+d < len(w) {
				out[i] = w[i+d]
			} else {
				out[i] = sign
			}
		}
		return out
	})
}
