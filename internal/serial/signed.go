package serial

import (
	"fmt"

	"maxelerator/internal/circuit"
)

// Signed bit-serial MAC via the Baugh–Wooley transformation.
//
// The paper's §4.3 handles signed inputs with multiplexer/2's-
// complement pairs, but conditional negation of the serially streamed
// operand is non-causal LSB-first: the sign bit arrives last. The
// hardware sidesteps this because all of a round's labels are present
// when the FSM starts; a fixed per-stage netlist cannot. Baugh–Wooley
// restructures the two's-complement product so every term is causal:
//
//	x·a = Σ_{i,j<b-1} x_i a_j 2^{i+j}
//	    + Σ_{j<b-1} ¬(x_{b-1} a_j) 2^{b-1+j}
//	    + Σ_{i<b-1} ¬(x_i a_{b-1}) 2^{b-1+i}
//	    + x_{b-1} a_{b-1} 2^{2b-2}
//	    + 2^{2b-1} + 2^b                     (mod 2^{2b})
//
// The inversions are free XORs gated by garbler-known stage flags, and
// the correction constant enters the accumulator as one extra serial
// adder — so signed support costs exactly ONE extra AND table per
// stage plus one carry-gating AND (2b+2 total), compared with the
// eight mux/negate slots the paper budgets. The catch: the identity holds modulo 2^{2b}, so the
// accumulator is exact only in its low 2b bits; the decoder masks
// accordingly.

// MACSigned compiles the signed bit-serial MAC unit for bit-width b.
// Per-stage inputs:
//
//   - garbler: x (b bits) + four stage flags — isLast (a-index is
//     b−1), vj (previous a-index valid and not b−1), corr (the
//     correction-constant stream bit) and notFirst (stage ≠ 0, gating
//     the accumulator's end-around carry) — all functions of the
//     public stage counter the FSM holds;
//   - evaluator: one bit of a.
//
// Outputs the accumulator bit updated each stage, as MAC does.
func MACSigned(b int) (*circuit.Circuit, Layout, error) {
	if b < 4 || b%2 != 0 || b&(b-1) != 0 {
		return nil, Layout{}, fmt.Errorf("serial: bit-width %d must be a power of two ≥ 4", b)
	}
	L := 2*b + 2
	bd := circuit.NewBuilder()
	x := bd.GarblerInputs(b)
	flags := bd.GarblerInputs(4)
	isLast, vj, corr, notFirst := flags[0], flags[1], flags[2], flags[3]
	aBit := bd.EvaluatorInputs(1)[0]

	half := b / 2
	aPrev := bd.StateInputs(1)[0]
	seg1Carry := bd.StateInputs(half)
	delayLen := half * (half - 1)
	delays := bd.StateInputs(delayLen)
	treeCarry := bd.StateInputs(half - 1)
	corrCarry := bd.StateInputs(1)[0]
	acc := bd.StateInputs(L)
	accCarry := bd.StateInputs(1)[0]

	serialAdd := func(p, q, c int) (sum, carry int) {
		pc := bd.XOR(p, c)
		qc := bd.XOR(q, c)
		sum = bd.XOR(p, qc)
		carry = bd.XOR(c, bd.AND(pc, qc))
		return sum, carry
	}

	var nextState []int
	nextState = append(nextState, aBit)

	// Segment 1 with Baugh–Wooley inversion flags. pp1 covers x[2m]
	// (never the x MSB, 2m ≤ b−2): invert when the streamed a bit is
	// the MSB. pp2 covers x[2m+1]: for the last core that IS the x
	// MSB, inverted at every valid non-MSB position of a; for the rest,
	// inverted when the delayed a bit is the MSB (i.e. one stage after
	// isLast — which is exactly vj's complement within the valid
	// window... the garbler supplies wasLast = isLast delayed, derived
	// here from a one-stage flag register to keep the input port
	// narrow).
	wasLast := bd.StateInputs(1)[0]

	streams := make([]int, half)
	for m := 0; m < half; m++ {
		pp1 := bd.XOR(bd.AND(x[2*m], aBit), isLast)
		var pp2 int
		if m == half-1 {
			pp2 = bd.XOR(bd.AND(x[2*m+1], aPrev), vj)
		} else {
			pp2 = bd.XOR(bd.AND(x[2*m+1], aPrev), wasLast)
		}
		sum, carry := serialAdd(pp1, pp2, seg1Carry[m])
		streams[m] = sum
		nextState = append(nextState, carry)
	}

	aligned := make([]int, half)
	offset := 0
	for m := 0; m < half; m++ {
		dl := 2 * m
		if dl == 0 {
			aligned[m] = streams[m]
			continue
		}
		regs := delays[offset : offset+dl]
		offset += dl
		nextState = append(nextState, streams[m])
		for i := 1; i < dl; i++ {
			nextState = append(nextState, regs[i-1])
		}
		aligned[m] = regs[dl-1]
	}

	level := aligned
	carryIdx := 0
	for len(level) > 1 {
		next := make([]int, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			sum, carry := serialAdd(level[i], level[i+1], treeCarry[carryIdx])
			nextState = append(nextState, carry)
			carryIdx++
			next = append(next, sum)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	product := level[0]

	// Fold in the Baugh–Wooley correction stream, then accumulate.
	corrected, nextCorrCarry := serialAdd(product, corr, corrCarry)
	nextState = append(nextState, nextCorrCarry)
	// Gate the accumulator carry at the round boundary: without it, a
	// carry out of the register's top position (where Baugh–Wooley's
	// mod-2^{2b} garbage accumulates) would wrap end-around into bit 0
	// of the next round. notFirst = 0 exactly at stage 0.
	accCarryIn := bd.AND(accCarry, notFirst)
	newAccBit, newAccCarry := serialAdd(acc[0], corrected, accCarryIn)
	for i := 1; i < L; i++ {
		nextState = append(nextState, acc[i])
	}
	nextState = append(nextState, newAccBit)
	nextState = append(nextState, newAccCarry)
	nextState = append(nextState, isLast) // wasLast' = isLast

	bd.StateOuts(nextState...)
	bd.Outputs(newAccBit)

	ckt, err := bd.Build()
	if err != nil {
		return nil, Layout{}, fmt.Errorf("serial: building signed MAC: %w", err)
	}
	layout := Layout{
		Width:        b,
		StagesPerMAC: L,
		ANDsPerStage: ckt.Stats().ANDs,
		StateBits:    ckt.NState,
		AccLen:       L,
	}
	return ckt, layout, nil
}

// MustMACSigned compiles the signed datapath and panics on bad width.
func MustMACSigned(b int) (*circuit.Circuit, Layout) {
	c, l, err := MACSigned(b)
	if err != nil {
		panic(err)
	}
	return c, l
}

// SignedStageInputs returns the garbler flag bits for stage n of a
// signed round: isLast, vj, the correction-stream bit and the
// accumulator carry gate notFirst.
func (l Layout) SignedStageInputs(n int) (isLast, vj, corr, notFirst bool) {
	isLast = n == l.Width-1
	vj = n >= 1 && n <= l.Width-1 // previous a-index in [0, b-2]
	corr = n == l.Width || n == 2*l.Width-1
	notFirst = n != 0
	return isLast, vj, corr, notFirst
}

// RunPlainSigned executes the signed datapath in plaintext for (x, a)
// MAC rounds and returns the accumulated Σ x·a, exact modulo 2^{2b}
// (decoded from the low 2b bits as two's complement).
func RunPlainSigned(ckt *circuit.Circuit, l Layout, xs, as []int64) (int64, error) {
	if len(xs) != len(as) {
		return 0, fmt.Errorf("serial: %d x values vs %d a values", len(xs), len(as))
	}
	lo, hi := -(int64(1) << (l.Width - 1)), int64(1)<<(l.Width-1)-1
	var state []bool
	var lastRound []bool
	for r := range xs {
		if xs[r] < lo || xs[r] > hi || as[r] < lo || as[r] > hi {
			return 0, fmt.Errorf("serial: round %d operands outside signed %d-bit range", r, l.Width)
		}
		xBits := circuit.Int64ToBits(xs[r], l.Width)
		lastRound = lastRound[:0]
		for n := 0; n < l.StagesPerMAC; n++ {
			isLast, vj, corr, notFirst := l.SignedStageInputs(n)
			g := append(append([]bool{}, xBits...), isLast, vj, corr, notFirst)
			aIn := l.StageInputs(uint64(as[r])&(1<<uint(l.Width)-1), n)
			out, next, err := ckt.EvalRound(g, aIn, state)
			if err != nil {
				return 0, err
			}
			state = next
			lastRound = append(lastRound, out[0])
		}
	}
	// Exact in the low 2b bits only (Baugh–Wooley works mod 2^{2b}).
	return circuit.BitsToInt64(lastRound[:2*l.Width]), nil
}
