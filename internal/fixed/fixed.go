// Package fixed implements the signed fixed-point number format of the
// case studies (§6: "We assume a 32 bit fixed point system"). Values
// are stored as two's-complement integers with an implicit binary
// point: a Q(w−f−1).f format with w total bits and f fraction bits.
package fixed

import (
	"fmt"
	"math"
)

// Format describes a fixed-point encoding.
type Format struct {
	// Width is the total bit-width, including the sign bit.
	Width int
	// Frac is the number of fraction bits.
	Frac int
}

// Default32 is the case studies' 32-bit system with 16 fraction bits.
var Default32 = Format{Width: 32, Frac: 16}

// Validate checks the format parameters.
func (f Format) Validate() error {
	if f.Width < 2 || f.Width > 63 {
		return fmt.Errorf("fixed: width %d outside [2, 63]", f.Width)
	}
	if f.Frac < 0 || f.Frac >= f.Width {
		return fmt.Errorf("fixed: %d fraction bits do not fit in width %d", f.Frac, f.Width)
	}
	return nil
}

// Scale returns 2^Frac.
func (f Format) Scale() float64 { return math.Ldexp(1, f.Frac) }

// Max returns the largest representable value.
func (f Format) Max() float64 {
	return float64(int64(1)<<(f.Width-1)-1) / f.Scale()
}

// Min returns the most negative representable value.
func (f Format) Min() float64 {
	return -float64(int64(1)<<(f.Width-1)) / f.Scale()
}

// Eps returns the quantisation step 2^−Frac.
func (f Format) Eps() float64 { return 1 / f.Scale() }

// Encode quantises x to the nearest representable raw value. It
// errors on NaN or values outside the representable range.
func (f Format) Encode(x float64) (int64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if math.IsNaN(x) {
		return 0, fmt.Errorf("fixed: cannot encode NaN")
	}
	raw := math.RoundToEven(x * f.Scale())
	lo := -math.Ldexp(1, f.Width-1)
	hi := math.Ldexp(1, f.Width-1) - 1
	if raw < lo || raw > hi {
		return 0, fmt.Errorf("fixed: %v overflows Q%d.%d range [%v, %v]", x, f.Width-f.Frac-1, f.Frac, f.Min(), f.Max())
	}
	return int64(raw), nil
}

// MustEncode quantises x and panics on overflow; for constants known
// to fit.
func (f Format) MustEncode(x float64) int64 {
	v, err := f.Encode(x)
	if err != nil {
		panic(err)
	}
	return v
}

// Saturate quantises x, clamping to the representable range instead
// of failing.
func (f Format) Saturate(x float64) int64 {
	if math.IsNaN(x) {
		return 0
	}
	if x > f.Max() {
		x = f.Max()
	}
	if x < f.Min() {
		x = f.Min()
	}
	v, err := f.Encode(x)
	if err != nil {
		// Clamped values always encode; reaching here is a bug.
		panic(err)
	}
	return v
}

// Decode converts a raw value back to a float.
func (f Format) Decode(raw int64) float64 {
	return float64(raw) / f.Scale()
}

// DecodeProduct converts a raw value that is the product of two
// f-encoded values (so it carries 2·Frac fraction bits), as produced
// by the MAC accumulator.
func (f Format) DecodeProduct(raw int64) float64 {
	return float64(raw) / (f.Scale() * f.Scale())
}

// EncodeVector quantises a slice.
func (f Format) EncodeVector(xs []float64) ([]int64, error) {
	out := make([]int64, len(xs))
	for i, x := range xs {
		v, err := f.Encode(x)
		if err != nil {
			return nil, fmt.Errorf("fixed: element %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// DecodeVector converts raw values back to floats.
func (f Format) DecodeVector(raws []int64) []float64 {
	out := make([]float64, len(raws))
	for i, r := range raws {
		out[i] = f.Decode(r)
	}
	return out
}
