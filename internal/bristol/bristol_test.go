package bristol

import (
	"bytes"
	mrand "math/rand"
	"strings"
	"testing"

	"maxelerator/internal/circuit"
)

// roundTrip marshals and re-parses a circuit.
func roundTrip(t *testing.T, c *circuit.Circuit) *circuit.Circuit {
	t.Helper()
	var buf bytes.Buffer
	if err := Marshal(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(&buf)
	if err != nil {
		t.Fatalf("re-parsing own output: %v\n%s", err, buf.String())
	}
	return back
}

func randomBits(rng *mrand.Rand, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Intn(2) == 1
	}
	return out
}

// assertEquivalent checks both circuits compute the same function on
// random inputs.
func assertEquivalent(t *testing.T, a, b *circuit.Circuit, trials int) {
	t.Helper()
	if a.NGarbler != b.NGarbler || a.NEvaluator != b.NEvaluator || len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("interface mismatch: %d/%d/%d vs %d/%d/%d",
			a.NGarbler, a.NEvaluator, len(a.Outputs), b.NGarbler, b.NEvaluator, len(b.Outputs))
	}
	rng := mrand.New(mrand.NewSource(99))
	for i := 0; i < trials; i++ {
		g := randomBits(rng, a.NGarbler)
		e := randomBits(rng, a.NEvaluator)
		wa, err := a.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := b.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("trial %d output %d differs", i, j)
			}
		}
	}
}

func TestRoundTripAdder(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	sum, carry := b.AddCarry(x, y, circuit.Const0)
	b.OutputWord(sum)
	b.Outputs(carry)
	c := b.MustBuild()
	assertEquivalent(t, c, roundTrip(t, c), 50)
}

func TestRoundTripSignedMultiplier(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.GarblerInputs(6)
	y := b.EvaluatorInputs(6)
	b.OutputWord(b.MulTreeSigned(x, y))
	c := b.MustBuild()
	assertEquivalent(t, c, roundTrip(t, c), 50)
}

func TestRoundTripWithConstants(t *testing.T) {
	// NOT gates reference the constant-one wire; division uses both
	// constants heavily.
	b := circuit.NewBuilder()
	x := b.GarblerInputs(6)
	y := b.EvaluatorInputs(6)
	q, r := b.DivMod(x, y)
	b.OutputWord(q)
	b.OutputWord(r)
	c := b.MustBuild()
	assertEquivalent(t, c, roundTrip(t, c), 50)
}

func TestRoundTripSingleParty(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.GarblerInputs(8)
	b.EvaluatorInputs(0)
	b.OutputWord(b.Sqrt(x))
	c := b.MustBuild()
	back := roundTrip(t, c)
	if back.NEvaluator != 0 {
		t.Fatalf("single-party circuit grew %d evaluator inputs", back.NEvaluator)
	}
	assertEquivalent(t, c, back, 50)
}

func TestRoundTripRepeatedOutputWire(t *testing.T) {
	// The same wire exported as two outputs must survive via EQW.
	b := circuit.NewBuilder()
	x := b.GarblerInputs(2)
	b.EvaluatorInputs(0)
	w := b.AND(x[0], x[1])
	b.Outputs(w, w)
	c := b.MustBuild()
	assertEquivalent(t, c, roundTrip(t, c), 4)
}

func TestMarshalRejectsSequential(t *testing.T) {
	c := circuit.MustMAC(circuit.MACConfig{Width: 4, AccWidth: 8})
	var buf bytes.Buffer
	if err := Marshal(&buf, c); err == nil {
		t.Fatal("sequential circuit marshalled")
	}
}

func TestUnmarshalHandWrittenAdder(t *testing.T) {
	// A 1-bit full adder in Bristol Fashion written by hand:
	// inputs a, b, cin; outputs sum, cout.
	// sum = a ⊕ (b⊕cin); cout = ((a⊕cin)∧(b⊕cin)) ⊕ cin.
	src := `7 10
2 2 1
1 2

2 1 0 2 3 XOR
2 1 1 2 4 XOR
2 1 3 4 5 AND
2 1 5 2 6 XOR
2 1 0 4 7 XOR
1 1 7 8 EQW
1 1 6 9 EQW
`
	c, err := Unmarshal(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NGarbler != 2 || c.NEvaluator != 1 {
		t.Fatalf("parsed %d/%d inputs", c.NGarbler, c.NEvaluator)
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for cin := 0; cin < 2; cin++ {
				out, err := c.Eval([]bool{a == 1, b == 1}, []bool{cin == 1})
				if err != nil {
					t.Fatal(err)
				}
				total := a + b + cin
				if out[0] != (total%2 == 1) || out[1] != (total >= 2) {
					t.Fatalf("adder(%d,%d,%d) = %v", a, b, cin, out)
				}
			}
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "x y\n1 1\n1 1\n",
		"three groups":   "0 4\n3 1 1 1\n1 1\n",
		"bad gate shape": "1 4\n1 2\n1 1\n\n3 1 0 1 2 3 XOR\n",
		"unknown op":     "1 4\n1 2\n1 1\n\n2 1 0 1 3 NAND\n",
		"reuse wire":     "2 4\n1 2\n1 1\n\n2 1 0 1 2 XOR\n2 1 0 1 2 XOR\n",
		"read undefined": "1 4\n1 2\n1 1\n\n2 1 0 3 3 XOR\n",
		"truncated":      "3 5\n1 2\n1 1\n\n2 1 0 1 2 XOR\n",
		"bad EQ literal": "1 4\n1 2\n1 1\n\n1 1 7 3 EQ\n",
		"huge sizes":     "999999999999 4\n1 2\n1 1\n",
	}
	for name, src := range cases {
		if _, err := Unmarshal(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestGarbleImportedCircuit(t *testing.T) {
	// End-to-end: export our comparator, re-import it, and check the
	// imported netlist still garbles and evaluates correctly.
	b := circuit.NewBuilder()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	b.Outputs(b.LessThan(x, y))
	c := roundTrip(t, b.MustBuild())

	// Quick plaintext spot-check of the imported netlist.
	out, err := c.Eval(circuit.Uint64ToBits(5, 8), circuit.Uint64ToBits(9, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Fatal("imported comparator: 5 < 9 is false")
	}
}
