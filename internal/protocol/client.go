package protocol

// The evaluator endpoint. Dial opens a multiplexed session (versioned
// handshake + one OT setup); Do runs one request; Close ends the
// request loop. Run and RunSerial are the one-shot conveniences the
// pre-v2 API exposed — deprecated thin wrappers over a single-request
// session, slated for removal one PR after their marking.

import (
	"fmt"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
	"maxelerator/internal/ot"
	"maxelerator/internal/seqgc"
	"maxelerator/internal/serial"
	"maxelerator/internal/wire"
)

// Client is the evaluator endpoint.
type Client struct {
	// rnd supplies OT randomness; set by NewClient.
	rnd randReader
	// timeouts are the per-operation I/O budgets applied to every
	// session this client dials.
	timeouts Timeouts
	// hint, when non-nil, is sent as the first frame of every dialed
	// session so a shape-aware gateway can route before the handshake.
	hint *ShapeHint
}

type randReader interface{ Read([]byte) (int, error) }

// NewClient builds a client drawing OT randomness from rnd (pass
// crypto/rand.Reader in production).
func NewClient(rnd randReader) (*Client, error) {
	if rnd == nil {
		return nil, fmt.Errorf("protocol: nil random source")
	}
	return &Client{rnd: rnd}, nil
}

// WithTimeouts sets the per-operation I/O budgets for every session
// this client dials, mirroring Server.WithTimeouts: Handshake bounds
// each connection-setup wire operation, IO each steady-state one. The
// zero value leaves operations unbounded. Returns c for chaining.
func (c *Client) WithTimeouts(t Timeouts) *Client {
	c.timeouts = t
	return c
}

// WithShapeHint makes every dialed session open with a shape-hint
// preface frame: a shape-aware gateway (cmd/maxgw) peeks it to pin the
// session to the backend whose precompute pool is warm for that shape,
// while a directly-dialed server skips the frame during its handshake —
// so the hint is safe to set unconditionally. Returns c for chaining.
func (c *Client) WithShapeHint(h ShapeHint) *Client {
	c.hint = &h
	return c
}

// ClientSession is the evaluator's end of one multiplexed connection.
// Not safe for concurrent use; requests run strictly one at a time.
type ClientSession struct {
	c        *Client
	conn     wire.Conn // the timedConn: every op runs under a phase budget
	tc       *timedConn
	to       Timeouts
	h        hello
	params   gc.Params
	macCkt   *circuit.Circuit
	receiver *ot.ExtensionReceiver
	// Serial-mode circuit and layout, built on first use.
	serCkt    *circuit.Circuit
	serLayout serial.Layout
	seq       int
	closed    bool
	broken    error
}

// Dial opens a session on conn: receive the server hello, negotiate
// the protocol version, run the one base-OT + IKNP extension setup
// every subsequent Do amortizes.
func (c *Client) Dial(conn wire.Conn) (*ClientSession, error) {
	// The client wraps its connection in the same timed wrapper as the
	// server (with no metrics registry): a garbler that stalls mid-setup
	// costs the evaluator one phase budget, not a hung Dial.
	tc := newTimedConn(conn, nil)
	tc.enterPhase(phaseHandshake, c.timeouts.Handshake)
	// The routing preface goes out before anything is read: the server
	// speaks first in v2, so this frame is the only thing a gateway can
	// classify before committing the session to a backend.
	if c.hint != nil {
		if err := SendShapeHint(tc, *c.hint); err != nil {
			return nil, fmt.Errorf("protocol: sending shape hint: %w", err)
		}
	}
	first, err := tc.RecvMsg()
	if err != nil {
		return nil, fmt.Errorf("protocol: reading handshake: %w", err)
	}
	// Load shedding precedes version negotiation: an overloaded server
	// answers the connection with a busy frame instead of its hello.
	// Probe for it first — a genuine hello decoded as msgBusy leaves
	// Busy false, so the probe never misfires.
	var busy msgBusy
	if err := decodeGob(first, &busy); err == nil && busy.Busy {
		return nil, &BusyError{RetryAfter: busyRetryAfter(busy)}
	}
	var h hello
	if err := decodeGob(first, &h); err != nil {
		return nil, fmt.Errorf("protocol: reading handshake: %w", err)
	}
	if h.ProtoVersion != ProtoVersion {
		if h.ProtoVersion == 0 {
			return nil, fmt.Errorf("%w: server speaks an unversioned pre-v%d protocol, client v%d", ErrVersionMismatch, ProtoVersion, ProtoVersion)
		}
		return nil, fmt.Errorf("%w: server speaks v%d, client v%d", ErrVersionMismatch, h.ProtoVersion, ProtoVersion)
	}
	if err := sendGob(tc, helloAck{ProtoVersion: ProtoVersion}); err != nil {
		return nil, err
	}
	scheme, err := schemeByName(h.Scheme)
	if err != nil {
		return nil, err
	}
	params := gc.DefaultParams()
	params.Scheme = scheme
	ckt, err := circuit.MAC(circuit.MACConfig{Width: h.Width, AccWidth: h.AccWidth, Signed: h.Signed})
	if err != nil {
		return nil, fmt.Errorf("protocol: rebuilding MAC netlist: %w", err)
	}
	tc.enterPhase(phaseOTSetup, c.timeouts.Handshake)
	receiver, err := ot.NewExtensionReceiver(tc, c.rnd)
	if err != nil {
		return nil, err
	}
	tc.enterPhase(phaseRequestOpen, c.timeouts.IO)
	return &ClientSession{c: c, conn: tc, tc: tc, to: c.timeouts, h: h, params: params, macCkt: ckt, receiver: receiver}, nil
}

// Do runs one request with the client vector y and returns the decoded
// outputs (one per server matrix row). The server decides the request
// shape — mode, matrix dimensions, OT mode — and announces it in the
// request header; Do validates that y fits.
func (cs *ClientSession) Do(y []int64) ([]int64, error) {
	if cs.broken != nil {
		return nil, fmt.Errorf("%w: session unusable after earlier error: %w", ErrSessionClosed, cs.broken)
	}
	if cs.closed {
		return nil, ErrSessionClosed
	}
	// Validate the vector before opening a request, so a bad input
	// never costs a wire exchange (or desynchronizes the session).
	bitsPerRound := make([][]bool, len(y))
	for i, v := range y {
		if err := checkRange(v, cs.h.Width, cs.h.Signed); err != nil {
			return nil, fmt.Errorf("protocol: element %d: %w", i, err)
		}
		bitsPerRound[i] = circuit.Int64ToBits(v, cs.h.Width)
	}
	cs.tc.enterPhase(phaseRequestOpen, cs.to.IO)
	if err := sendGob(cs.conn, reqOpen{Op: opRequest}); err != nil {
		return nil, cs.fail(err)
	}
	var hdr reqHeader
	if err := recvGob(cs.conn, &hdr); err != nil {
		return nil, cs.fail(fmt.Errorf("protocol: reading request header: %w", err))
	}
	if hdr.Cols != len(y) {
		// The server is already mid-request, about to garble and stream
		// Rows·Cols rounds this client will never evaluate. Abort by
		// closing the connection so it fails fast instead of blocking on
		// OT traffic that will never come (see ClientSession.fail).
		return nil, cs.fail(fmt.Errorf("protocol: server expects a %d-element vector, client holds %d", hdr.Cols, len(y)))
	}
	cs.tc.enterPhase(phaseRounds, cs.to.IO)
	var outs []int64
	var err error
	switch hdr.Mode {
	case wireModeMatVec:
		outs, err = cs.evalMatVec(hdr, bitsPerRound)
	case wireModeSerial:
		outs, err = cs.evalSerial(hdr, y)
	default:
		err = fmt.Errorf("protocol: server announced unknown mode %q", hdr.Mode)
	}
	if err != nil {
		return nil, cs.fail(err)
	}
	cs.tc.enterPhase(phaseDecode, cs.to.IO)
	if err := sendGob(cs.conn, result{Values: outs}); err != nil {
		return nil, cs.fail(err)
	}
	cs.seq++
	cs.tc.enterPhase(phaseRequestOpen, cs.to.IO)
	return outs, nil
}

// fail breaks the session and closes the connection. Closing is the
// abort signal: a client that bails out mid-request (header mismatch,
// evaluation error) leaves the server garbling rounds nobody will
// evaluate — with the connection closed it sees a prompt disconnect
// instead of stalling until its phase deadline. Before this existed,
// the session was only marked broken locally and the server hung.
func (cs *ClientSession) fail(err error) error {
	cs.broken = err
	cs.conn.Close()
	return err
}

// Close ends the request loop. It is idempotent — the end marker is
// sent at most once — and safe to call on a broken session (the marker
// is suppressed there: the stream position is unknown).
func (cs *ClientSession) Close() error {
	if cs.closed || cs.broken != nil {
		cs.closed = true
		return nil
	}
	cs.closed = true
	return sendGob(cs.conn, reqOpen{Op: opEnd})
}

// Requests returns how many requests the session has completed.
func (cs *ClientSession) Requests() int { return cs.seq }

// Err reports the error that broke the session, or nil while it is
// usable. A retry layer uses it to tell a broken session (reconnect
// required) from one that merely rejected a bad input.
func (cs *ClientSession) Err() error { return cs.broken }

// evalMatVec evaluates a matvec request round by round, obtaining
// input labels per the server-announced OT mode.
func (cs *ClientSession) evalMatVec(hdr reqHeader, bitsPerRound [][]bool) ([]int64, error) {
	if err := hdr.OT.validate(); err != nil {
		return nil, err
	}

	// Batched mode: obtain every round's labels in one OT batch before
	// any material arrives — faster, but the client holds
	// Rows·Cols·Width labels at once (§3's memory tradeoff).
	var batched []label.Label
	if hdr.OT == OTBatched {
		choices := make([]bool, 0, hdr.Rows*hdr.Cols*cs.h.Width)
		for row := 0; row < hdr.Rows; row++ {
			for round := 0; round < hdr.Cols; round++ {
				choices = append(choices, bitsPerRound[round]...)
			}
		}
		var err error
		batched, err = ot.ReceiveLabels(cs.receiver, choices)
		if err != nil {
			return nil, fmt.Errorf("protocol: batched OT: %w", err)
		}
	}

	outs := make([]int64, hdr.Rows)
	for row := 0; row < hdr.Rows; row++ {
		var stateAct []label.Label
		var last *gc.EvalResult
		for round := 0; round < hdr.Cols; round++ {
			var active []label.Label
			var err error
			if hdr.OT == OTCorrelated {
				// Correlated mode fixes the labels before the round is
				// garbled, so the OT precedes the material.
				active, err = cs.receiver.ReceiveCorrelatedLabels(bitsPerRound[round])
				if err != nil {
					return nil, fmt.Errorf("protocol: row %d round %d correlated OT: %w", row, round, err)
				}
			}
			m, err := recvMaterial(cs.conn)
			if err != nil {
				return nil, fmt.Errorf("protocol: row %d round %d material: %w", row, round, err)
			}
			switch hdr.OT {
			case OTCorrelated:
				// labels already in hand
			case OTBatched:
				off := (row*hdr.Cols + round) * cs.h.Width
				active = batched[off : off+cs.h.Width]
			default:
				active, err = ot.ReceiveLabels(cs.receiver, bitsPerRound[round])
				if err != nil {
					return nil, fmt.Errorf("protocol: row %d round %d OT: %w", row, round, err)
				}
			}
			res, err := gc.Evaluate(cs.params, cs.macCkt, m, active, stateAct)
			if err != nil {
				return nil, fmt.Errorf("protocol: row %d round %d evaluate: %w", row, round, err)
			}
			stateAct = res.StateActive
			last = res
		}
		if cs.h.Signed {
			outs[row] = circuit.BitsToInt64(last.Outputs)
		} else {
			outs[row] = int64(circuit.BitsToUint64(last.Outputs))
		}
	}
	return outs, nil
}

// evalSerial evaluates a serial-mode request: one OT'd stage of the
// bit-serial datapath at a time, a fresh evaluator session per
// request (matching the garbler's fresh labels).
func (cs *ClientSession) evalSerial(hdr reqHeader, y []int64) ([]int64, error) {
	if hdr.Rows != 1 {
		return nil, fmt.Errorf("protocol: serial request announced %d rows, want 1", hdr.Rows)
	}
	if cs.serCkt == nil {
		var err error
		if cs.h.Signed {
			cs.serCkt, cs.serLayout, err = serial.MACSigned(cs.h.Width)
		} else {
			cs.serCkt, cs.serLayout, err = serial.MAC(cs.h.Width)
		}
		if err != nil {
			return nil, err
		}
	}
	if cs.serLayout.StagesPerMAC != hdr.StagesPerMAC {
		return nil, fmt.Errorf("protocol: stage count mismatch: server %d, local %d", hdr.StagesPerMAC, cs.serLayout.StagesPerMAC)
	}
	es, err := seqgc.NewEvaluatorSession(cs.params, cs.serCkt)
	if err != nil {
		return nil, err
	}

	mask := uint64(1)<<uint(cs.h.Width) - 1
	var accBits []bool
	for round, yi := range y {
		accBits = accBits[:0]
		for stage := 0; stage < cs.serLayout.StagesPerMAC; stage++ {
			m, err := recvMaterial(cs.conn)
			if err != nil {
				return nil, fmt.Errorf("protocol: round %d stage %d material: %w", round, stage, err)
			}
			bits := cs.serLayout.StageInputs(uint64(yi)&mask, stage)
			active, err := ot.ReceiveLabels(cs.receiver, bits)
			if err != nil {
				return nil, fmt.Errorf("protocol: round %d stage %d OT: %w", round, stage, err)
			}
			res, err := es.NextRound(m, active)
			if err != nil {
				return nil, fmt.Errorf("protocol: round %d stage %d evaluate: %w", round, stage, err)
			}
			accBits = append(accBits, res.Outputs[0])
		}
	}
	var out int64
	if cs.h.Signed {
		out = circuit.BitsToInt64(accBits[:2*cs.h.Width])
	} else {
		out = int64(circuit.BitsToUint64(accBits))
	}
	return []int64{out}, nil
}

