package circuit

import (
	"testing"
	"testing/quick"
)

// buildBinOp builds a circuit computing f over a garbler word and an
// evaluator word of the given width and returns an evaluate closure.
func buildBinOp(t *testing.T, width, outWidth int, f func(b *Builder, x, y Word) Word) func(x, y uint64) uint64 {
	t.Helper()
	b := NewBuilder()
	x := b.GarblerInputs(width)
	y := b.EvaluatorInputs(width)
	out := f(b, x, y)
	if len(out) != outWidth {
		t.Fatalf("op produced %d bits, want %d", len(out), outWidth)
	}
	b.OutputWord(out)
	c := b.MustBuild()
	return func(xv, yv uint64) uint64 {
		bits, err := c.Eval(Uint64ToBits(xv, width), Uint64ToBits(yv, width))
		if err != nil {
			t.Fatal(err)
		}
		return BitsToUint64(bits)
	}
}

func TestAddMatchesIntegerAddition(t *testing.T) {
	const w = 16
	eval := buildBinOp(t, w, w, func(b *Builder, x, y Word) Word { return b.Add(x, y) })
	f := func(x, y uint16) bool {
		return eval(uint64(x), uint64(y)) == uint64(x+y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCarryOut(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	sum, carry := b.AddCarry(x, y, Const0)
	b.OutputWord(sum)
	b.Outputs(carry)
	c := b.MustBuild()
	f := func(xv, yv uint8) bool {
		bits, err := c.Eval(Uint64ToBits(uint64(xv), 8), Uint64ToBits(uint64(yv), 8))
		if err != nil {
			t.Fatal(err)
		}
		total := uint64(xv) + uint64(yv)
		return BitsToUint64(bits[:8]) == total&0xff && bits[8] == (total > 0xff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdderANDCountIsOnePerBit(t *testing.T) {
	// The paper relies on TinyGarble's adder: exactly one AND per bit.
	for _, w := range []int{4, 8, 16, 32} {
		b := NewBuilder()
		x := b.GarblerInputs(w)
		y := b.EvaluatorInputs(w)
		b.OutputWord(b.Add(x, y))
		c := b.MustBuild()
		if got := c.Stats().ANDs; got != w {
			t.Fatalf("width %d adder has %d ANDs, want %d", w, got, w)
		}
	}
}

func TestSubMatchesIntegerSubtraction(t *testing.T) {
	const w = 16
	eval := buildBinOp(t, w, w, func(b *Builder, x, y Word) Word { return b.Sub(x, y) })
	f := func(x, y uint16) bool {
		return eval(uint64(x), uint64(y)) == uint64(x-y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegMatchesTwosComplement(t *testing.T) {
	const w = 12
	b := NewBuilder()
	x := b.GarblerInputs(w)
	b.EvaluatorInputs(0)
	b.OutputWord(b.Neg(x))
	c := b.MustBuild()
	for _, v := range []uint64{0, 1, 5, 1<<w - 1, 1 << (w - 1)} {
		bits, err := c.Eval(Uint64ToBits(v, w), nil)
		if err != nil {
			t.Fatal(err)
		}
		want := (-v) & (1<<w - 1)
		if got := BitsToUint64(bits); got != want {
			t.Fatalf("Neg(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestCondNeg(t *testing.T) {
	const w = 10
	b := NewBuilder()
	x := b.GarblerInputs(w)
	s := b.EvaluatorInputs(1)
	b.OutputWord(b.CondNeg(x, s[0]))
	c := b.MustBuild()
	f := func(v uint16, neg bool) bool {
		xv := uint64(v) & (1<<w - 1)
		bits, err := c.Eval(Uint64ToBits(xv, w), []bool{neg})
		if err != nil {
			t.Fatal(err)
		}
		want := xv
		if neg {
			want = (-xv) & (1<<w - 1)
		}
		return BitsToUint64(bits) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMuxSelects(t *testing.T) {
	const w = 8
	b := NewBuilder()
	x := b.GarblerInputs(w)
	rest := b.EvaluatorInputs(w + 1)
	y, s := rest[:w], rest[w]
	b.OutputWord(b.Mux(s, x, y))
	c := b.MustBuild()
	f := func(xv, yv uint8, sel bool) bool {
		ev := append(Uint64ToBits(uint64(yv), w), sel)
		bits, err := c.Eval(Uint64ToBits(uint64(xv), w), ev)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(yv)
		if sel {
			want = uint64(xv)
		}
		return BitsToUint64(bits) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMuxANDCountIsOnePerBit(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(16)
	rest := b.EvaluatorInputs(17)
	b.OutputWord(b.Mux(rest[16], x, rest[:16]))
	c := b.MustBuild()
	if got := c.Stats().ANDs; got != 16 {
		t.Fatalf("16-bit mux has %d ANDs, want 16", got)
	}
}

func TestShiftLeft(t *testing.T) {
	const w = 16
	b := NewBuilder()
	x := b.GarblerInputs(w)
	b.EvaluatorInputs(0)
	b.OutputWord(b.ShiftLeft(x, 3))
	c := b.MustBuild()
	f := func(v uint16) bool {
		bits, err := c.Eval(Uint64ToBits(uint64(v), w), nil)
		if err != nil {
			t.Fatal(err)
		}
		return BitsToUint64(bits) == uint64(v<<3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtendWidths(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(4)
	b.EvaluatorInputs(0)
	ze := b.ZeroExtend(x, 8)
	se := b.SignExtend(x, 8)
	b.OutputWord(ze)
	b.OutputWord(se)
	c := b.MustBuild()
	for v := int64(-8); v < 8; v++ {
		bits, err := c.Eval(Int64ToBits(v, 4), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := BitsToUint64(bits[:8]); got != uint64(v)&0xf {
			t.Fatalf("ZeroExtend(%d) = %d", v, got)
		}
		if got := BitsToInt64(bits[8:16]); got != v {
			t.Fatalf("SignExtend(%d) = %d", v, got)
		}
	}
}

func TestComparators(t *testing.T) {
	const w = 8
	b := NewBuilder()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.Outputs(b.GEq(x, y), b.LessThan(x, y), b.Equal(x, y))
	c := b.MustBuild()
	f := func(xv, yv uint8) bool {
		bits, err := c.Eval(Uint64ToBits(uint64(xv), w), Uint64ToBits(uint64(yv), w))
		if err != nil {
			t.Fatal(err)
		}
		return bits[0] == (xv >= yv) && bits[1] == (xv < yv) && bits[2] == (xv == yv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulTreeUnsigned(t *testing.T) {
	const w = 8
	eval := buildBinOp(t, w, 2*w, func(b *Builder, x, y Word) Word { return b.MulTreeUnsigned(x, y) })
	f := func(x, y uint8) bool {
		return eval(uint64(x), uint64(y)) == uint64(x)*uint64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulSerialUnsigned(t *testing.T) {
	const w = 8
	eval := buildBinOp(t, w, 2*w, func(b *Builder, x, y Word) Word { return b.MulSerialUnsigned(x, y) })
	f := func(x, y uint8) bool {
		return eval(uint64(x), uint64(y)) == uint64(x)*uint64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulTreeSigned(t *testing.T) {
	const w = 8
	b := NewBuilder()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.OutputWord(b.MulTreeSigned(x, y))
	c := b.MustBuild()
	check := func(xv, yv int64) {
		bits, err := c.Eval(Int64ToBits(xv, w), Int64ToBits(yv, w))
		if err != nil {
			t.Fatal(err)
		}
		if got := BitsToInt64(bits); got != xv*yv {
			t.Fatalf("signed %d*%d = %d, want %d", xv, yv, got, xv*yv)
		}
	}
	// Exhaustive corner cases including the -2^(b-1) edge.
	for _, xv := range []int64{-128, -127, -1, 0, 1, 2, 63, 127} {
		for _, yv := range []int64{-128, -5, -1, 0, 1, 7, 127} {
			check(xv, yv)
		}
	}
	f := func(a, b int8) bool {
		bits, err := c.Eval(Int64ToBits(int64(a), w), Int64ToBits(int64(b), w))
		if err != nil {
			t.Fatal(err)
		}
		return BitsToInt64(bits) == int64(a)*int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeVsSerialStructure(t *testing.T) {
	// Both multipliers cost the same number of garbled tables; the tree
	// buys adder-level parallelism (⌈log₂ b⌉ adder levels instead of b
	// chained adders — exercised by the scheduler package), not a
	// shorter raw AND chain: ripple carries dominate AND depth in both.
	const w = 16
	mk := func(serial bool) Stats {
		b := NewBuilder()
		x := b.GarblerInputs(w)
		y := b.EvaluatorInputs(w)
		if serial {
			b.OutputWord(b.MulSerialUnsigned(x, y))
		} else {
			b.OutputWord(b.MulTreeUnsigned(x, y))
		}
		return b.MustBuild().Stats()
	}
	tree, serial := mk(false), mk(true)
	if tree.ANDs != serial.ANDs {
		t.Fatalf("tree %d ANDs != serial %d ANDs", tree.ANDs, serial.ANDs)
	}
	if tree.ANDDepth > serial.ANDDepth {
		t.Fatalf("tree depth %d exceeds serial depth %d", tree.ANDDepth, serial.ANDDepth)
	}
}

func TestMulTreePartialProductsAreParallel(t *testing.T) {
	// Every partial-product AND reads only primary inputs, so the whole
	// pp layer sits at AND depth 1 — the parallelism the FSM exploits.
	const w = 8
	b := NewBuilder()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.OutputWord(b.MulTreeUnsigned(x, y))
	c := b.MustBuild()
	inputs := FirstInput + c.NGarbler + c.NEvaluator
	ppANDs := 0
	for _, g := range c.Gates {
		if g.Op == AND && g.A < inputs && g.B < inputs {
			ppANDs++
		}
	}
	if ppANDs != w*w {
		t.Fatalf("found %d input-level partial-product ANDs, want %d", ppANDs, w*w)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(b *Builder, x, y Word){
		"Add":      func(b *Builder, x, y Word) { b.Add(x, y[:len(y)-1]) },
		"Mux":      func(b *Builder, x, y Word) { b.Mux(x[0], x, y[:len(y)-1]) },
		"GEq":      func(b *Builder, x, y Word) { b.GEq(x, y[:len(y)-1]) },
		"Equal":    func(b *Builder, x, y Word) { b.Equal(x, y[:len(y)-1]) },
		"ZeroExt":  func(b *Builder, x, y Word) { b.ZeroExtend(x, 2) },
		"SignExt":  func(b *Builder, x, y Word) { b.SignExtend(x, 2) },
		"NegShift": func(b *Builder, x, y Word) { b.ShiftLeft(x, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with bad widths did not panic", name)
				}
			}()
			b := NewBuilder()
			x := b.GarblerInputs(4)
			y := b.EvaluatorInputs(4)
			f(b, x, y)
		}()
	}
}

func TestEqualEmptyWordIsTrue(t *testing.T) {
	b := NewBuilder()
	b.GarblerInputs(1)
	if b.Equal(Word{}, Word{}) != Const1 {
		t.Fatal("empty equality is not constant true")
	}
}
