package sched

import (
	"strconv"
	"strings"
	"testing"
)

func TestBuildTimelineValidation(t *testing.T) {
	s := MustBuild(8)
	if _, err := s.BuildTimeline(0); err == nil {
		t.Fatal("zero MACs accepted")
	}
}

func TestTimelineStagesMatchLatencyFormula(t *testing.T) {
	for _, b := range []int{8, 16, 32} {
		s := MustBuild(b)
		tl, err := s.BuildTimeline(5)
		if err != nil {
			t.Fatal(err)
		}
		want := s.LatencyStages() + 4*b
		if tl.Stages != want {
			t.Fatalf("b=%d: %d stages, want %d", b, tl.Stages, want)
		}
	}
}

func TestTimelineThroughputOneMACPerBStages(t *testing.T) {
	// Completion stages of consecutive MACs differ by exactly b.
	s := MustBuild(16)
	tl, err := s.BuildTimeline(6)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := tl.CompletionStage(0)
	if err != nil {
		t.Fatal(err)
	}
	if prev != s.LatencyStages()-1 {
		t.Fatalf("first completion at stage %d, want %d", prev, s.LatencyStages()-1)
	}
	for k := 1; k < 6; k++ {
		c, err := tl.CompletionStage(k)
		if err != nil {
			t.Fatal(err)
		}
		if c-prev != 16 {
			t.Fatalf("MAC %d completed %d stages after MAC %d, want b=16", k, c-prev, k-1)
		}
		prev = c
	}
	if _, err := tl.CompletionStage(6); err == nil {
		t.Fatal("out-of-range MAC accepted")
	}
}

func TestTimelineRegionsNeverDoubleBooked(t *testing.T) {
	// With MACs entering every b stages, each region serves exactly
	// one MAC per stage: consecutive MACs may not overlap in a region.
	s := MustBuild(8)
	tl, err := s.BuildTimeline(10)
	if err != nil {
		t.Fatal(err)
	}
	// Region occupancy is encoded one MAC per stage by construction;
	// verify the intervals we expect: seg1 stage st serves MAC st/b
	// while st < MACs·b.
	for st := 0; st < 10*8; st++ {
		if got := tl.Seg1[st].MAC; got != st/8 {
			t.Fatalf("seg1 stage %d serves MAC %d, want %d", st, got, st/8)
		}
	}
	// After the last MAC's multiply window, segment 1 drains idle.
	for st := 10 * 8; st < tl.Stages; st++ {
		if tl.Seg1[st].MAC != -1 {
			t.Fatalf("seg1 stage %d not idle during drain", st)
		}
	}
}

func TestTimelineOccupancyApproachesOne(t *testing.T) {
	s := MustBuild(8)
	short, err := s.BuildTimeline(2)
	if err != nil {
		t.Fatal(err)
	}
	long, err := s.BuildTimeline(100)
	if err != nil {
		t.Fatal(err)
	}
	s1s, s2s, accS := short.SteadyStateOccupancy()
	s1l, s2l, accL := long.SteadyStateOccupancy()
	if s1l <= s1s || s2l <= s2s || accL <= accS {
		t.Fatalf("occupancy did not grow with run length: %v/%v/%v vs %v/%v/%v",
			s1s, s2s, accS, s1l, s2l, accL)
	}
	if s1l < 0.95 || s2l < 0.95 || accL < 0.95 {
		t.Fatalf("long-run occupancy below 95%%: %v %v %v", s1l, s2l, accL)
	}
}

func TestTimelinePhases(t *testing.T) {
	s := MustBuild(8)
	tl, err := s.BuildTimeline(1)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Seg1[0].Phase != PhaseMultiply {
		t.Fatalf("stage 0 seg1 phase = %v", tl.Seg1[0].Phase)
	}
	treeDelay := s.LatencyStages() - 8 - 2
	if tl.Seg2[treeDelay].Phase != PhaseTree {
		t.Fatalf("tree phase missing at stage %d", treeDelay)
	}
	if tl.Acc[treeDelay+2].Phase != PhaseAccumulate {
		t.Fatalf("accumulate phase missing at stage %d", treeDelay+2)
	}
	if tl.Seg2[0].Phase != PhaseIdle {
		t.Fatal("seg2 busy before any product bits exist")
	}
}

func TestTimelineRender(t *testing.T) {
	s := MustBuild(8)
	tl, err := s.BuildTimeline(3)
	if err != nil {
		t.Fatal(err)
	}
	out := tl.Render(20)
	for _, want := range []string{"MUX_ADD", "TREE", "ACC", "pipeline timeline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	full := tl.Render(0)
	if !strings.Contains(full, "of "+strconv.Itoa(tl.Stages)+" stages") {
		t.Fatalf("full render header wrong:\n%s", full)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseIdle.String() != "idle" || PhaseMultiply.String() != "multiply" ||
		PhaseAccumulate.String() != "accumulate" || Phase(42).String() != "Phase(42)" {
		t.Fatal("phase mnemonics wrong")
	}
}
