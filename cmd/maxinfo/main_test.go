package main

import "testing"

func TestRunScheduleReport(t *testing.T) {
	for _, b := range []int{8, 16, 32} {
		if err := run(b, 1, false, 0); err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	if err := run(6, 1, false, 0); err == nil {
		t.Fatal("bad width accepted")
	}
	if err := run(32, 1000, false, 0); err == nil {
		t.Fatal("absurd unit count accepted")
	}
}

func TestRunMultiUnit(t *testing.T) {
	if err := run(8, 4, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRNGReport(t *testing.T) {
	if err := run(8, 1, true, 5000); err != nil {
		t.Fatal(err)
	}
}

func TestTraceReport(t *testing.T) {
	if err := traceReport(8, 10, 4); err != nil {
		t.Fatal(err)
	}
	if err := traceReport(8, 10, 512); err != nil {
		t.Fatal(err)
	}
	if err := traceReport(6, 10, 4); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestTimelineViaReport(t *testing.T) {
	// The -timeline path delegates to report.Timeline; exercise the
	// handler arguments it forwards.
	if err := run(8, 1, false, 0); err != nil {
		t.Fatal(err)
	}
}
