package circuit

import (
	"testing"
	"testing/quick"
)

func buildShift(t *testing.T, w, sw int, f func(b *Builder, x, s Word) Word) func(x uint64, s uint64) uint64 {
	t.Helper()
	b := NewBuilder()
	x := b.GarblerInputs(w)
	s := b.EvaluatorInputs(sw)
	out := f(b, x, s)
	if len(out) != w {
		t.Fatalf("shift output width %d, want %d", len(out), w)
	}
	b.OutputWord(out)
	c := b.MustBuild()
	return func(xv, sv uint64) uint64 {
		bits, err := c.Eval(Uint64ToBits(xv, w), Uint64ToBits(sv, sw))
		if err != nil {
			t.Fatal(err)
		}
		return BitsToUint64(bits)
	}
}

func TestShiftLeftVar(t *testing.T) {
	const w, sw = 16, 5
	eval := buildShift(t, w, sw, func(b *Builder, x, s Word) Word { return b.ShiftLeftVar(x, s) })
	f := func(x uint16, s uint8) bool {
		sv := uint64(s) % (1 << sw)
		want := uint64(0)
		if sv < w {
			want = (uint64(x) << sv) & (1<<w - 1)
		}
		return eval(uint64(x), sv) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftRightVar(t *testing.T) {
	const w, sw = 16, 5
	eval := buildShift(t, w, sw, func(b *Builder, x, s Word) Word { return b.ShiftRightVar(x, s) })
	f := func(x uint16, s uint8) bool {
		sv := uint64(s) % (1 << sw)
		want := uint64(0)
		if sv < w {
			want = uint64(x) >> sv
		}
		return eval(uint64(x), sv) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftRightArithVar(t *testing.T) {
	const w, sw = 12, 4
	b := NewBuilder()
	x := b.GarblerInputs(w)
	s := b.EvaluatorInputs(sw)
	b.OutputWord(b.ShiftRightArithVar(x, s))
	c := b.MustBuild()
	for _, xv := range []int64{-2048, -1000, -1, 0, 1, 931, 2047} {
		for sv := uint64(0); sv < 1<<sw; sv++ {
			bits, err := c.Eval(Int64ToBits(xv, w), Uint64ToBits(sv, sw))
			if err != nil {
				t.Fatal(err)
			}
			want := xv >> min64(sv, 63)
			if sv >= w {
				if xv < 0 {
					want = -1
				} else {
					want = 0
				}
			}
			if got := BitsToInt64(bits); got != want {
				t.Fatalf("%d >>a %d = %d, want %d", xv, sv, got, want)
			}
		}
	}
}

func min64(a uint64, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func TestShiftVarCostIsLogLayers(t *testing.T) {
	// One mux layer (w ANDs) per shift bit.
	const w, sw = 16, 4
	b := NewBuilder()
	x := b.GarblerInputs(w)
	s := b.EvaluatorInputs(sw)
	b.OutputWord(b.ShiftLeftVar(x, s))
	c := b.MustBuild()
	if got := c.Stats().ANDs; got > w*sw {
		t.Fatalf("barrel shifter uses %d ANDs, want ≤ %d", got, w*sw)
	}
}

func TestShiftVarEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty barrel shift did not panic")
		}
	}()
	b := NewBuilder()
	s := b.GarblerInputs(2)
	b.ShiftLeftVar(Word{}, s)
}
