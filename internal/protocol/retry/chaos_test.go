package retry

// Chaos tests: the faultconn harness composed with the retry layer.
// Each scripted dial misbehaves a different way — vanishing peer,
// injected send error, byte-level mid-frame cut, silent stall, BUSY
// rejection, version mismatch — and the invariants are the recovery
// contract: transient faults are survived within the attempt budget
// with the right reason counted, fatal faults are surfaced immediately,
// and no goroutine outlives its test.

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
	"maxelerator/internal/wire/faultconn"
)

// dialScript describes how the chaos server behaves on one dial.
// The zero value is a healthy serve.
type dialScript struct {
	// faults are message-level faults injected on the SERVER side of the
	// pipe: a scripted server send-close reaches the client as a genuine
	// disconnect, a server stall as a client phase timeout.
	faults faultconn.Options
	// busy answers the dial with a BUSY frame carrying this hint.
	busy time.Duration
	// helloVersion answers the dial with a hello of this version (the
	// fatal, never-healing fault). Zero disables.
	helloVersion int
	// cutHello serves over a byte stream that cuts the hello frame in
	// half and closes — the mid-frame fault the message layer cannot
	// express.
	cutHello bool
}

// chaosServer hands the ReDialer a scripted server endpoint per dial.
type chaosServer struct {
	t      *testing.T
	srv    *protocol.Server
	req    protocol.Request
	script map[int]dialScript

	mu    sync.Mutex
	dials int
	fcs   []*faultconn.Conn
	conns []interface{ Close() error }
	wg    sync.WaitGroup
}

func newChaosServer(t *testing.T, script map[int]dialScript) *chaosServer {
	t.Helper()
	srv, err := protocol.NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	return &chaosServer{
		t:      t,
		srv:    srv,
		req:    protocol.Request{Matrix: [][]int64{{1, 2}, {-3, 4}}},
		script: script,
	}
}

// connect is the ReDialer's Connect hook: each call manufactures a
// fresh connection pair with a server goroutine behind it, behaving per
// this dial's script.
func (h *chaosServer) connect() (wire.Conn, error) {
	h.mu.Lock()
	h.dials++
	s := h.script[h.dials]
	h.mu.Unlock()

	switch {
	case s.busy > 0:
		a, b := wire.Pipe()
		h.track(a, b)
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer a.Close()
			_ = protocol.SendBusy(a, s.busy)
		}()
		return b, nil
	case s.helloVersion != 0:
		a, b := wire.Pipe()
		h.track(a, b)
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			// A hand-built hello: gob matches struct fields by name, so
			// this local shape decodes into the protocol's hello.
			frame := struct {
				ProtoVersion    int
				Width, AccWidth int
				Signed          bool
				Scheme          string
			}{ProtoVersion: s.helloVersion, Width: 8, AccWidth: 24, Signed: true, Scheme: "half-gates"}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(frame); err != nil {
				h.t.Error(err)
				return
			}
			_ = a.SendMsg(buf.Bytes())
		}()
		return b, nil
	case s.cutHello:
		// Byte-level fault: the server's very first frame (the hello) is
		// cut mid-body and the stream closed. net.Pipe is synchronous,
		// which is fine here — the client is already blocked reading.
		p1, p2 := net.Pipe()
		st := faultconn.NewStream(p1)
		st.CutWrite = 2 // write 1 is the 4-byte length prefix, 2 the body
		sconn, cconn := wire.NewStreamConn(st), wire.NewStreamConn(p2)
		h.track(sconn, cconn)
		h.serve(sconn)
		return cconn, nil
	default:
		a, b := wire.Pipe()
		fc := faultconn.New(a, s.faults)
		h.mu.Lock()
		h.fcs = append(h.fcs, fc)
		h.mu.Unlock()
		h.track(fc, b)
		h.serve(fc)
		return b, nil
	}
}

// serve runs a full multiplexed server session on conn until the
// client closes it or a fault kills it, then closes conn so a blocked
// client sees a prompt disconnect.
func (h *chaosServer) serve(conn wire.Conn) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		defer conn.Close()
		sess, err := h.srv.NewSession(conn, protocol.SessionConfig{})
		if err != nil {
			return
		}
		defer sess.Close()
		for {
			if _, err := sess.Serve(h.req); err != nil {
				return
			}
		}
	}()
}

func (h *chaosServer) track(cs ...interface{ Close() error }) {
	h.mu.Lock()
	h.conns = append(h.conns, cs...)
	h.mu.Unlock()
}

// lastOps reports the send/recv counts of the most recent faultconn
// dial — the learning-run hook for sizing fault indices.
func (h *chaosServer) lastOps() (sends, recvs int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fcs[len(h.fcs)-1].Ops()
}

// shutdown releases every stalled fault, closes every connection and
// waits the server goroutines out.
func (h *chaosServer) shutdown() {
	h.mu.Lock()
	conns := append([]interface{ Close() error }(nil), h.conns...)
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	done := make(chan struct{})
	go func() { h.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		h.t.Error("chaos server goroutines not released by shutdown")
	}
}

// checkGoroutines polls until the goroutine count settles back to the
// baseline (plus scheduler slack), failing on a leak — the same
// zero-dependency leak check the protocol fault matrix uses.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// newTestReDialer wires a ReDialer to the chaos server with fast
// deterministic backoff and a metrics registry.
func newTestReDialer(t *testing.T, h *chaosServer, to protocol.Timeouts) (*ReDialer, *obs.Registry) {
	t.Helper()
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cli.WithTimeouts(to)
	rd, err := NewReDialer(cli, h.connect, Policy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		Rand:        mrand.New(mrand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rd.WithObs(reg)
	return rd, reg
}

func wantResult(t *testing.T, out []int64) {
	t.Helper()
	// [[1,2],[-3,4]] · [5,-6] = [-7, -39]
	if len(out) != 2 || out[0] != -7 || out[1] != -39 {
		t.Fatalf("result = %v, want [-7 -39]", out)
	}
}

// TestChaosDisconnectsThenSuccess is the acceptance scenario: the
// connection dies on attempt 1 (during setup) and attempt 2 (mid
// request, after a healthy dial), and attempt 3 completes — with the
// retries counted and the reconnect visible.
func TestChaosDisconnectsThenSuccess(t *testing.T) {
	before := runtime.NumGoroutine()
	defer checkGoroutines(t, before)

	// Learning run: a healthy session through a passthrough harness
	// counts the server's sends, so the second fault can land mid
	// request rather than at a hand-guessed index.
	learn := newChaosServer(t, nil)
	rd0, _ := newTestReDialer(t, learn, protocol.Timeouts{})
	out, err := rd0.Do([]int64{5, -6})
	if err != nil {
		t.Fatalf("learning run: %v", err)
	}
	wantResult(t, out)
	rd0.Close()
	learn.shutdown()
	sends, _ := learn.lastOps()
	if sends < 3 {
		t.Fatalf("learning run too small to script: %d server sends", sends)
	}

	h := newChaosServer(t, map[int]dialScript{
		// Dial 1: the server vanishes on its very first send — the
		// client's Dial fails with a disconnect.
		1: {faults: faultconn.Options{CloseOnSend: 1}},
		// Dial 2: setup succeeds, then the server vanishes at its final
		// send of the request — Do fails mid-flight.
		2: {faults: faultconn.Options{CloseOnSend: sends}},
	})
	defer h.shutdown()
	rd, reg := newTestReDialer(t, h, protocol.Timeouts{})
	defer rd.Close()

	out, err = rd.Do([]int64{5, -6})
	if err != nil {
		t.Fatalf("Do did not recover: %v", err)
	}
	wantResult(t, out)
	if h.dials != 3 {
		t.Errorf("dials = %d, want 3 (fail, fail, succeed)", h.dials)
	}
	if got := reg.Counter("retry_attempts_total", "", obs.L("reason", "disconnect")).Value(); got < 2 {
		t.Errorf("retry_attempts_total{disconnect} = %d, want >= 2", got)
	}
	if got := rd.Reconnects(); got != 1 {
		t.Errorf("Reconnects() = %d, want 1 (only dial 2 established a session to lose)", got)
	}
	if got := reg.Counter("reconnects_total", "").Value(); got != 1 {
		t.Errorf("reconnects_total = %d, want 1", got)
	}
}

// TestChaosInjectedSendErrorThenSuccess: a server whose mid-setup send
// fails outright (error-after-N) costs one retry.
func TestChaosInjectedSendErrorThenSuccess(t *testing.T) {
	before := runtime.NumGoroutine()
	defer checkGoroutines(t, before)

	h := newChaosServer(t, map[int]dialScript{
		1: {faults: faultconn.Options{ErrOnSend: 3}},
	})
	defer h.shutdown()
	rd, reg := newTestReDialer(t, h, protocol.Timeouts{})
	defer rd.Close()

	out, err := rd.Do([]int64{5, -6})
	if err != nil {
		t.Fatalf("Do did not recover: %v", err)
	}
	wantResult(t, out)
	if got := reg.Counter("retry_attempts_total", "", obs.L("reason", "disconnect")).Value(); got != 1 {
		t.Errorf("retry_attempts_total{disconnect} = %d, want 1", got)
	}
}

// TestChaosMidFrameCutThenSuccess: the hello frame is cut in half at
// the byte level — the client holds a partial frame and must classify
// the truncation as a disconnect and re-dial.
func TestChaosMidFrameCutThenSuccess(t *testing.T) {
	before := runtime.NumGoroutine()
	defer checkGoroutines(t, before)

	h := newChaosServer(t, map[int]dialScript{1: {cutHello: true}})
	defer h.shutdown()
	rd, reg := newTestReDialer(t, h, protocol.Timeouts{})
	defer rd.Close()

	out, err := rd.Do([]int64{5, -6})
	if err != nil {
		t.Fatalf("Do did not recover from a mid-frame cut: %v", err)
	}
	wantResult(t, out)
	if got := reg.Counter("retry_attempts_total", "", obs.L("reason", "disconnect")).Value(); got != 1 {
		t.Errorf("retry_attempts_total{disconnect} = %d, want 1", got)
	}
}

// TestChaosStallThenTimeoutRetry: a silently stalled server costs the
// client one phase timeout, classified and retried as such.
func TestChaosStallThenTimeoutRetry(t *testing.T) {
	before := runtime.NumGoroutine()
	defer checkGoroutines(t, before)

	h := newChaosServer(t, map[int]dialScript{
		// The server's first send (its hello) stalls forever: the
		// client's Dial sits in its handshake phase until the budget
		// expires.
		1: {faults: faultconn.Options{StallOnSend: 1}},
	})
	defer h.shutdown()
	rd, reg := newTestReDialer(t, h, protocol.Timeouts{Handshake: time.Second, IO: 5 * time.Second})
	defer rd.Close()

	out, err := rd.Do([]int64{5, -6})
	if err != nil {
		t.Fatalf("Do did not recover from a stalled server: %v", err)
	}
	wantResult(t, out)
	if got := reg.Counter("retry_attempts_total", "", obs.L("reason", "timeout")).Value(); got != 1 {
		t.Errorf("retry_attempts_total{timeout} = %d, want 1", got)
	}
}

// TestChaosBusyHonored: a BUSY rejection is retried and its RetryAfter
// hint floors the backoff.
func TestChaosBusyHonored(t *testing.T) {
	before := runtime.NumGoroutine()
	defer checkGoroutines(t, before)

	const hint = 50 * time.Millisecond
	h := newChaosServer(t, map[int]dialScript{1: {busy: hint}})
	defer h.shutdown()

	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var sleeps []time.Duration
	rd, err := NewReDialer(cli, h.connect, Policy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
		Rand:        mrand.New(mrand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rd.WithObs(reg)
	defer rd.Close()

	out, err := rd.Do([]int64{5, -6})
	if err != nil {
		t.Fatalf("Do did not recover from a BUSY rejection: %v", err)
	}
	wantResult(t, out)
	if got := reg.Counter("retry_attempts_total", "", obs.L("reason", "busy")).Value(); got != 1 {
		t.Errorf("retry_attempts_total{busy} = %d, want 1", got)
	}
	if len(sleeps) != 1 || sleeps[0] < hint {
		t.Errorf("backoff sleeps = %v, want one sleep >= the server's %v hint", sleeps, hint)
	}
}

// TestChaosVersionMismatchFatal: a version mismatch must fail on the
// first attempt — retrying a protocol-generation gap can never help.
func TestChaosVersionMismatchFatal(t *testing.T) {
	before := runtime.NumGoroutine()
	defer checkGoroutines(t, before)

	h := newChaosServer(t, map[int]dialScript{
		1: {helloVersion: 99},
		2: {helloVersion: 99},
	})
	defer h.shutdown()
	rd, reg := newTestReDialer(t, h, protocol.Timeouts{})
	defer rd.Close()

	_, err := rd.Do([]int64{5, -6})
	if !errors.Is(err, protocol.ErrVersionMismatch) {
		t.Fatalf("Do error = %v, want ErrVersionMismatch", err)
	}
	if h.dials != 1 {
		t.Errorf("dials = %d, want 1 (fatal errors are not retried)", h.dials)
	}
	var total uint64
	for _, reason := range []string{"busy", "timeout", "disconnect", "internal", "other"} {
		total += reg.Counter("retry_attempts_total", "", obs.L("reason", reason)).Value()
	}
	if total != 0 {
		t.Errorf("retry_attempts_total = %d for a fatal error, want 0", total)
	}
}

// TestChaosAttemptBudgetExhausted: a server that dies on every dial
// exhausts the budget and surfaces the final cause, with the budget
// named in the error.
func TestChaosAttemptBudgetExhausted(t *testing.T) {
	before := runtime.NumGoroutine()
	defer checkGoroutines(t, before)

	h := newChaosServer(t, map[int]dialScript{
		1: {faults: faultconn.Options{CloseOnSend: 1}},
		2: {faults: faultconn.Options{CloseOnSend: 1}},
		3: {faults: faultconn.Options{CloseOnSend: 1}},
	})
	defer h.shutdown()

	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewReDialer(cli, h.connect, Policy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		Rand:        mrand.New(mrand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	_, derr := rd.Do([]int64{5, -6})
	if derr == nil {
		t.Fatal("Do succeeded against a server that always dies")
	}
	if !wire.IsDisconnect(derr) {
		t.Errorf("exhausted error = %v, want the disconnect cause preserved", derr)
	}
	if want := fmt.Sprintf("%d attempts exhausted", 3); !contains(derr.Error(), want) {
		t.Errorf("exhausted error %q does not name the budget", derr)
	}
	if h.dials != 3 {
		t.Errorf("dials = %d, want 3", h.dials)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && bytes.Contains([]byte(s), []byte(sub))
}

// TestChaosFlakyLinkHealedByRetry: the seeded per-op loss mode —
// attempts 1 and 2 ride a link where ~a third of all server-side ops
// fail at random (deterministic under the seed), attempt 3 is clean.
// The retry taxonomy must classify every injected loss as retryable
// and land the request.
func TestChaosFlakyLinkHealedByRetry(t *testing.T) {
	before := runtime.NumGoroutine()
	defer checkGoroutines(t, before)

	h := newChaosServer(t, map[int]dialScript{
		1: {faults: faultconn.Flaky(11, 0.35)},
		2: {faults: faultconn.Flaky(12, 0.35)},
	})
	defer h.shutdown()
	rd, reg := newTestReDialer(t, h, protocol.Timeouts{Handshake: 2 * time.Second, IO: 2 * time.Second})
	defer rd.Close()

	out, err := rd.Do([]int64{5, -6})
	if err != nil {
		t.Fatalf("Do did not recover from a flaky link: %v", err)
	}
	wantResult(t, out)
	var retries uint64
	for _, reason := range []string{"disconnect", "timeout", "internal"} {
		retries += reg.Counter("retry_attempts_total", "", obs.L("reason", reason)).Value()
	}
	if retries == 0 {
		t.Error("flaky attempts produced no counted retries — the fault never fired")
	}
}

// TestChaosMutePeerFirstReadStall: StallFirstRead is the
// accepted-but-mute peer — the server comes up, speaks its hello, and
// then its first read never completes, so the client's OT setup wedges
// until the phase budget expires and the retry layer re-dials.
func TestChaosMutePeerFirstReadStall(t *testing.T) {
	before := runtime.NumGoroutine()
	defer checkGoroutines(t, before)

	h := newChaosServer(t, map[int]dialScript{
		1: {faults: faultconn.Options{StallFirstRead: true}},
	})
	defer h.shutdown()
	rd, reg := newTestReDialer(t, h, protocol.Timeouts{Handshake: time.Second, IO: 5 * time.Second})
	defer rd.Close()

	out, err := rd.Do([]int64{5, -6})
	if err != nil {
		t.Fatalf("Do did not recover from a mute peer: %v", err)
	}
	wantResult(t, out)
	if got := reg.Counter("retry_attempts_total", "", obs.L("reason", "timeout")).Value(); got != 1 {
		t.Errorf("retry_attempts_total{timeout} = %d, want 1", got)
	}
}
