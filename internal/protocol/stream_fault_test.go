package protocol

// Fault-matrix cases for the PR 8 streaming serve pipeline. The
// pipeline adds moving parts the original fault matrix never exercised
// — a producer goroutine, a bounded chunk channel, an admission-window
// ticket pool, and arena-backed frame buffers held across vectored
// writes. Each fault here targets one of those parts and asserts the
// same cloud invariants as the rest of the matrix: a deadline-bounded
// (or immediate) return, every arena buffer back in the pool, gauges
// at zero, and no goroutine left behind.

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/wire"
	"maxelerator/internal/wire/faultconn"
)

// pipelineReq is the canonical pipelined request: several rows through
// the worker pool with per-round OT, so material streams through the
// arena while later rows are still garbling.
func pipelineReq() Request {
	return Request{
		Matrix:        [][]int64{{1, -2, 3}, {4, 5, -6}, {-7, 8, 9}},
		OT:            OTPerRound,
		GarbleWorkers: 2,
	}
}

// TestPipelineStallMidChunk: the peer goes silent while garbled chunks
// are in flight between the producer and the wire. The server must
// time out within its phase budget, the producer and its workers must
// unwind through the admission window, and every arena buffer must be
// back in the pool.
func TestPipelineStallMidChunk(t *testing.T) {
	before := runtime.NumGoroutine()
	req := pipelineReq()
	y := []int64{7, -8, 9}

	// Learning run: count the healthy client's ops and time a baseline,
	// exactly like the main fault matrix.
	srv, _ := faultMatrixServer(t, Timeouts{})
	a, b := wire.Pipe()
	fc := faultconn.New(b, faultconn.Options{})
	clientDone := make(chan error, 1)
	go func() { clientDone <- runFaultClient(fc, y) }()
	serr, healthy := serveMux(srv, a, req)
	if serr != nil {
		t.Fatalf("healthy run: server: %v", serr)
	}
	if cerr := <-clientDone; cerr != nil {
		t.Fatalf("healthy run: client: %v", cerr)
	}
	a.Close()
	fc.Close()
	sends, _ := fc.Ops()
	if sends < 6 {
		t.Fatalf("healthy run too small: %d client sends", sends)
	}
	budget := 2 * healthy
	if budget < 2*time.Second {
		budget = 2 * time.Second
	}
	to := Timeouts{Handshake: budget, IO: budget}
	maxWait := 4*healthy + 2*budget + 5*time.Second

	// Stall indices inside the rounds stretch: the midpoint and the
	// tail of the client's send sequence, where per-round OT traffic —
	// interleaved with the server's streamed material — lives.
	stalls := map[int]bool{(sends + 1) / 2: true, (2 * sends) / 3: true, sends - 1: true}
	for idx := range stalls {
		idx := idx
		t.Run(fmt.Sprintf("stall_send_%d", idx), func(t *testing.T) {
			t.Parallel()
			srv, o := faultMatrixServer(t, to)
			a, b := wire.Pipe()
			fc := faultconn.New(b, faultconn.Options{StallOnSend: idx})
			done := make(chan error, 1)
			go func() { done <- runFaultClient(fc, y) }()
			t.Cleanup(func() {
				a.Close()
				fc.Close()
				select {
				case <-done:
				case <-time.After(10 * time.Second):
					t.Error("client goroutine not released by harness close")
				}
			})

			serr, elapsed := serveMux(srv, a, req)
			if serr == nil {
				t.Fatal("server reported success against a stalled peer")
			}
			if !errors.Is(serr, ErrPhaseTimeout) {
				t.Fatalf("server error = %v, want ErrPhaseTimeout", serr)
			}
			if elapsed > maxWait {
				t.Fatalf("server took %v against a stalled peer (ceiling %v)", elapsed, maxWait)
			}
			if got := srv.arena.Outstanding(); got != 0 {
				t.Errorf("arena buffers outstanding after timeout: %d", got)
			}
			reg := o.Metrics()
			for _, g := range []string{"sessions_active", "garble_queue_depth", "garble_workers_busy"} {
				if got := reg.Gauge(g, "").Value(); got != 0 {
					t.Errorf("%s = %d after timeout", g, got)
				}
			}
		})
	}

	t.Cleanup(func() { checkGoroutines(t, before) })
}

// TestPipelineCutBetweenHeaderAndPayload: the byte stream is cut
// exactly on a write boundary inside the rounds, so a frame's length
// prefix lands intact but its vectored payload write fails. The server
// must fail the request immediately (no deadline needed — the
// transport error is synchronous), free the arena buffer the cut
// write was holding, and unwind the pool.
func TestPipelineCutBetweenHeaderAndPayload(t *testing.T) {
	before := runtime.NumGoroutine()
	req := pipelineReq()
	y := []int64{7, -8, 9}

	run := func(t *testing.T, cut int) (*Server, *faultconn.Stream, error, time.Duration) {
		t.Helper()
		p1, p2 := net.Pipe()
		fs := faultconn.NewStream(p1)
		fs.CutAfterWrite = cut
		sconn := wire.NewStreamConn(fs)
		cconn := wire.NewStreamConn(p2)
		srv, _ := faultMatrixServer(t, Timeouts{})
		done := make(chan error, 1)
		go func() { done <- runFaultClient(cconn, y) }()
		t.Cleanup(func() {
			sconn.Close()
			p2.Close()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Error("client goroutine not released by harness close")
			}
		})
		serr, elapsed := serveMux(srv, sconn, req)
		if cut == 0 {
			if serr != nil {
				t.Fatalf("healthy run: server: %v", serr)
			}
			cerr := <-done
			done <- cerr // keep the cleanup's drain non-blocking
			if cerr != nil {
				t.Fatalf("healthy run: client: %v", cerr)
			}
		}
		return srv, fs, serr, elapsed
	}

	// Learning run: count the server's writes on a healthy session.
	_, fs, _, _ := run(t, 0)
	msgs := fs.Writes() / 2
	if msgs < 8 {
		t.Fatalf("healthy run too small: %d server messages", msgs)
	}
	// Two adjacent header writes (odd indices) around two-thirds of the
	// way in: deep inside the rounds, where material frames (vectored)
	// and OT ciphertexts alternate, so one of the two cuts lands on a
	// material frame's header/payload boundary.
	k := (2 * msgs) / 3
	for _, msg := range []int{k, k + 1} {
		msg := msg
		t.Run(fmt.Sprintf("cut_after_header_%d", msg), func(t *testing.T) {
			srv, _, serr, elapsed := run(t, 2*(msg-1)+1)
			if serr == nil {
				t.Fatal("server reported success across a cut stream")
			}
			if errors.Is(serr, ErrPhaseTimeout) {
				t.Fatalf("synchronous cut surfaced as a timeout: %v", serr)
			}
			if elapsed > 10*time.Second {
				t.Fatalf("server took %v against a cut stream", elapsed)
			}
			if got := srv.arena.Outstanding(); got != 0 {
				t.Errorf("arena buffers outstanding after cut: %d", got)
			}
		})
	}

	t.Cleanup(func() { checkGoroutines(t, before) })
}

// TestPipelineCancelWhileArenaHoldsBuffers: over a synchronous pipe a
// non-reading peer leaves the server blocked inside a vectored frame
// write — an arena buffer checked out, rows queued behind the
// admission window. Cancelling the context (no timeouts configured)
// must interrupt the blocked write, return the buffer to the arena,
// and unwind producer, workers, and gauges.
func TestPipelineCancelWhileArenaHoldsBuffers(t *testing.T) {
	before := runtime.NumGoroutine()
	o := obs.New(4)
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := net.Pipe()
	sconn := wire.NewStreamConn(p1)
	cconn := wire.NewStreamConn(p2)
	defer p1.Close()
	defer p2.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srvDone := make(chan error, 1)
	go func() {
		sess, err := srv.NewSessionContext(ctx, sconn, SessionConfig{})
		if err != nil {
			srvDone <- err
			return
		}
		defer sess.Close()
		_, err = sess.ServeContext(ctx, pipelineReq())
		srvDone <- err
	}()

	// The client completes setup and opens the request, then goes
	// silent without reading: the server's first material frame blocks
	// mid-write with its arena buffer checked out.
	cs, err := cli.Dial(cconn)
	if err != nil {
		t.Fatal(err)
	}
	if err := sendGob(cs.conn, reqOpen{Op: opRequest}); err != nil {
		t.Fatal(err)
	}
	var hdr reqHeader
	if err := recvGob(cs.conn, &hdr); err != nil {
		t.Fatal(err)
	}

	// Wait until the arena proves a buffer is held by the blocked
	// write — the precise state the cancellation must clean up.
	deadline := time.Now().Add(5 * time.Second)
	for srv.arena.Outstanding() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never blocked holding an arena buffer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()

	select {
	case serr := <-srvDone:
		if !errors.Is(serr, context.Canceled) {
			t.Fatalf("server error = %v, want context.Canceled in the chain", serr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not interrupt the blocked frame write")
	}
	if got := srv.arena.Outstanding(); got != 0 {
		t.Errorf("arena buffers outstanding after cancellation: %d", got)
	}
	reg := o.Metrics()
	for _, g := range []string{"sessions_active", "garble_queue_depth", "garble_workers_busy"} {
		if got := reg.Gauge(g, "").Value(); got != 0 {
			t.Errorf("%s = %d after cancellation", g, got)
		}
	}
	p1.Close()
	p2.Close()
	checkGoroutines(t, before)
}
