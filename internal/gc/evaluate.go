package gc

import (
	"fmt"

	"maxelerator/internal/circuit"
	"maxelerator/internal/label"
)

// EvalResult is the evaluator-side outcome of one garbled execution.
type EvalResult struct {
	// Outputs are the decoded plaintext output bits.
	Outputs []bool
	// OutputLabels are the active labels of the output wires, useful
	// when only the garbler should learn the result.
	OutputLabels []label.Label
	// StateActive are the active labels of the state-output wires,
	// carried into the next sequential round.
	StateActive []label.Label
}

// Evaluate runs the evaluator side of the protocol over one circuit
// (or one round of a sequential circuit). evalActive are the active
// labels of the evaluator's input wires, obtained through oblivious
// transfer; stateActive are the active state labels from the previous
// round (nil for round 0, where the garbler set the state to 0 and the
// evaluator receives the corresponding labels out of band — here, the
// convention is that nil state means the garbler chose State0 = nil in
// its GarbleOptions too, so the FALSE labels are the active ones and
// must be provided by the garbler; see seqgc for the wiring).
func Evaluate(params Params, c *circuit.Circuit, m *Material, evalActive, stateActive []label.Label) (*EvalResult, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if len(evalActive) != c.NEvaluator {
		return nil, fmt.Errorf("gc: got %d evaluator labels, want %d", len(evalActive), c.NEvaluator)
	}
	if stateActive == nil && m.StateInActive != nil {
		stateActive = m.StateInActive // round 0 of a sequential run
	}
	if len(stateActive) != c.NState {
		return nil, fmt.Errorf("gc: got %d state labels, want %d", len(stateActive), c.NState)
	}
	if len(m.GarblerActive) != c.NGarbler {
		return nil, fmt.Errorf("gc: material has %d garbler labels, want %d", len(m.GarblerActive), c.NGarbler)
	}
	if len(m.OutputPerm) != len(c.Outputs) {
		return nil, fmt.Errorf("gc: material has %d output permute bits, want %d", len(m.OutputPerm), len(c.Outputs))
	}

	active := make([]label.Label, c.NWires)
	active[circuit.Const0] = m.ConstActive[0]
	active[circuit.Const1] = m.ConstActive[1]
	copy(active[circuit.FirstInput:], m.GarblerActive)
	copy(active[circuit.FirstInput+c.NGarbler:], evalActive)
	copy(active[circuit.FirstInput+c.NGarbler+c.NEvaluator:], stateActive)

	tweak := m.TweakBase
	tableIdx := 0
	for gi, gate := range c.Gates {
		switch gate.Op {
		case circuit.XOR:
			active[gate.Out] = active[gate.A].Xor(active[gate.B])
		case circuit.AND:
			if tableIdx >= len(m.Tables) {
				return nil, fmt.Errorf("gc: gate %d: ran out of garbled tables after %d", gi, tableIdx)
			}
			out, err := params.Scheme.EvalAND(params.Hash, active[gate.A], active[gate.B], m.Tables[tableIdx], tweak)
			if err != nil {
				return nil, fmt.Errorf("gc: gate %d: %w", gi, err)
			}
			active[gate.Out] = out
			tableIdx++
			tweak += params.Scheme.TweaksPerGate()
		default:
			return nil, fmt.Errorf("gc: unsupported op %v", gate.Op)
		}
	}
	if tableIdx != len(m.Tables) {
		return nil, fmt.Errorf("gc: %d garbled tables unused", len(m.Tables)-tableIdx)
	}

	res := &EvalResult{
		Outputs:      make([]bool, len(c.Outputs)),
		OutputLabels: make([]label.Label, len(c.Outputs)),
		StateActive:  make([]label.Label, c.NState),
	}
	for i, ow := range c.Outputs {
		res.OutputLabels[i] = active[ow]
		res.Outputs[i] = active[ow].LSB() != m.OutputPerm[i]
	}
	for i, sw := range c.StateOuts {
		res.StateActive[i] = active[sw]
	}
	return res, nil
}
