package gc

import (
	"crypto/rand"
	mrand "math/rand"
	"testing"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gchash"
	"maxelerator/internal/label"
)

func allSchemes() []Scheme { return []Scheme{HalfGates{}, GRR3{}, FourRow{}} }

func params(s Scheme) Params { return Params{Hash: gchash.MustAES(), Scheme: s} }

// runGarbled garbles c and evaluates it, returning decoded outputs.
func runGarbled(t *testing.T, s Scheme, c *circuit.Circuit, gIn, eIn []bool) []bool {
	t.Helper()
	p := params(s)
	g, err := NewGarbler(p, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := g.Garble(c, GarbleOptions{GarblerInputs: gIn})
	if err != nil {
		t.Fatal(err)
	}
	evalActive := make([]label.Label, len(eIn))
	for i, v := range eIn {
		evalActive[i] = gb.EvalPairs[i].Get(v) // stand-in for OT
	}
	res, err := Evaluate(p, c, &gb.Material, evalActive, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check the evaluator's decode against the garbler's pairs.
	fromPairs, err := DecodeWithPairs(gb.OutputPairs, res.OutputLabels)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fromPairs {
		if fromPairs[i] != res.Outputs[i] {
			t.Fatalf("output %d: pair decode %v != perm decode %v", i, fromPairs[i], res.Outputs[i])
		}
	}
	return res.Outputs
}

func TestSingleANDAllSchemes(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.AND(x[0], y[0]))
	c := b.MustBuild()
	for _, s := range allSchemes() {
		for _, u := range []bool{false, true} {
			for _, v := range []bool{false, true} {
				got := runGarbled(t, s, c, []bool{u}, []bool{v})[0]
				if got != (u && v) {
					t.Fatalf("%s: AND(%v,%v) = %v", s.Name(), u, v, got)
				}
			}
		}
	}
}

func TestXORIsFree(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.XOR(x[0], y[0]), b.NOT(x[0]))
	c := b.MustBuild()
	p := params(HalfGates{})
	g, err := NewGarbler(p, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := g.Garble(c, GarbleOptions{GarblerInputs: []bool{true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gb.Material.Tables) != 0 {
		t.Fatalf("XOR-only circuit produced %d garbled tables, want 0", len(gb.Material.Tables))
	}
	if gb.Material.CiphertextBytes() != 0 {
		t.Fatal("XOR-only circuit has nonzero ciphertext volume")
	}
}

func TestTableSizesPerScheme(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.AND(x[0], y[0]))
	c := b.MustBuild()
	want := map[string]int{"half-gates": 2, "grr3": 3, "four-row": 4}
	for _, s := range allSchemes() {
		g, err := NewGarbler(params(s), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := g.Garble(c, GarbleOptions{GarblerInputs: []bool{false}})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(gb.Material.Tables[0]); got != want[s.Name()] {
			t.Fatalf("%s: table has %d rows, want %d", s.Name(), got, want[s.Name()])
		}
		if got := gb.Material.CiphertextBytes(); got != want[s.Name()]*label.Size {
			t.Fatalf("%s: ciphertext volume %d", s.Name(), got)
		}
		if s.TableSize() != want[s.Name()] {
			t.Fatalf("%s: TableSize() = %d", s.Name(), s.TableSize())
		}
	}
}

func TestRandomCircuitsRoundTrip(t *testing.T) {
	rng := mrand.New(mrand.NewSource(42))
	for _, s := range allSchemes() {
		for trial := 0; trial < 8; trial++ {
			// Random circuit with random structure.
			b := circuit.NewBuilder()
			ng, ne := 2+rng.Intn(6), 2+rng.Intn(6)
			gIn := b.GarblerInputs(ng)
			eIn := b.EvaluatorInputs(ne)
			wires := append(append(circuit.Word{}, gIn...), eIn...)
			for i := 0; i < 30; i++ {
				a := wires[rng.Intn(len(wires))]
				c := wires[rng.Intn(len(wires))]
				if rng.Intn(2) == 0 {
					wires = append(wires, b.XOR(a, c))
				} else {
					wires = append(wires, b.AND(a, c))
				}
			}
			for i := 0; i < 4; i++ {
				b.Outputs(wires[len(wires)-1-i])
			}
			c := b.MustBuild()

			gBits := randomBits(rng, ng)
			eBits := randomBits(rng, ne)
			want, err := c.Eval(gBits, eBits)
			if err != nil {
				t.Fatal(err)
			}
			got := runGarbled(t, s, c, gBits, eBits)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s trial %d: output %d = %v, want %v", s.Name(), trial, i, got[i], want[i])
				}
			}
		}
	}
}

func randomBits(rng *mrand.Rand, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}
	return bits
}

func TestMACCircuitGarbledRoundTrip(t *testing.T) {
	cfg := circuit.MACConfig{Width: 8, AccWidth: 16, Signed: true}
	c, err := circuit.MACCombinational(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		x := int64(rng.Intn(256) - 128)
		acc := int64(rng.Intn(1 << 15))
		a := int64(rng.Intn(256) - 128)
		gIn := append(circuit.Int64ToBits(x, 8), circuit.Int64ToBits(acc, 16)...)
		eIn := circuit.Int64ToBits(a, 8)
		out := runGarbled(t, HalfGates{}, c, gIn, eIn)
		want := (acc + x*a) & (1<<16 - 1)
		if got := circuit.BitsToInt64(out) & (1<<16 - 1); got != want {
			t.Fatalf("garbled MAC = %d, want %d", got, want)
		}
	}
}

func TestSequentialRoundsCarryState(t *testing.T) {
	// Garble the sequential MAC for several rounds, chaining state
	// labels on both sides, and check the accumulator.
	cfg := circuit.MACConfig{Width: 8, AccWidth: 20}
	c := circuit.MustMAC(cfg)
	p := DefaultParams()
	g, err := NewGarbler(p, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(17))

	var state0 []label.Label   // garbler side
	var stateAct []label.Label // evaluator side
	var tweak uint64           // strictly increasing across rounds
	var want uint64
	for round := 0; round < 6; round++ {
		x := uint64(rng.Intn(256))
		a := uint64(rng.Intn(256))
		want = (want + x*a) & (1<<20 - 1)

		gb, err := g.Garble(c, GarbleOptions{
			GarblerInputs: circuit.Uint64ToBits(x, 8),
			State0:        state0,
			TweakBase:     tweak,
		})
		if err != nil {
			t.Fatal(err)
		}
		evalActive := make([]label.Label, c.NEvaluator)
		aBits := circuit.Uint64ToBits(a, 8)
		for i := range evalActive {
			evalActive[i] = gb.EvalPairs[i].Get(aBits[i])
		}
		res, err := Evaluate(p, c, &gb.Material, evalActive, stateAct)
		if err != nil {
			t.Fatal(err)
		}
		if got := circuit.BitsToUint64(res.Outputs); got != want {
			t.Fatalf("round %d: acc = %d, want %d", round, got, want)
		}
		state0 = gb.StateOut0
		stateAct = res.StateActive
		tweak = gb.NextTweak
	}
}

func TestGarbleInputValidation(t *testing.T) {
	c := circuit.MustMAC(circuit.MACConfig{Width: 4, AccWidth: 8})
	g, err := NewGarbler(DefaultParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Garble(c, GarbleOptions{GarblerInputs: make([]bool, 3)}); err == nil {
		t.Fatal("wrong garbler input width accepted")
	}
	if _, err := g.Garble(c, GarbleOptions{GarblerInputs: make([]bool, 4), State0: make([]label.Label, 1)}); err == nil {
		t.Fatal("wrong state width accepted")
	}
}

func TestEvaluateInputValidation(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.AND(x[0], y[0]))
	c := b.MustBuild()
	p := DefaultParams()
	g, _ := NewGarbler(p, rand.Reader)
	gb, err := g.Garble(c, GarbleOptions{GarblerInputs: []bool{true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(p, c, &gb.Material, nil, nil); err == nil {
		t.Fatal("missing evaluator labels accepted")
	}
	bad := gb.Material
	bad.Tables = nil
	if _, err := Evaluate(p, c, &bad, []label.Label{gb.EvalPairs[0].False}, nil); err == nil {
		t.Fatal("missing tables accepted")
	}
	extra := gb.Material
	extra.Tables = append(append([][]label.Label{}, extra.Tables...), extra.Tables[0])
	if _, err := Evaluate(p, c, &extra, []label.Label{gb.EvalPairs[0].False}, nil); err == nil {
		t.Fatal("surplus tables accepted")
	}
}

func TestNewGarblerValidation(t *testing.T) {
	if _, err := NewGarbler(Params{}, rand.Reader); err == nil {
		t.Fatal("empty params accepted")
	}
	if _, err := NewGarbler(DefaultParams(), nil); err == nil {
		t.Fatal("nil random source accepted")
	}
}

func TestDecodeWithPairsDetectsCorruption(t *testing.T) {
	pairs := []label.Pair{label.NewPair(label.MustRandom(), label.MustNewDelta())}
	if _, err := DecodeWithPairs(pairs, []label.Label{label.MustRandom()}); err == nil {
		t.Fatal("foreign label decoded")
	}
	if _, err := DecodeWithPairs(pairs, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	got, err := DecodeWithPairs(pairs, []label.Label{pairs[0].True})
	if err != nil || !got[0] {
		t.Fatalf("true label decoded as %v, %v", got, err)
	}
}

func TestTamperedTableChangesOutputLabel(t *testing.T) {
	// Flipping ciphertext bits must not silently yield a valid label:
	// the garbler-side pair decode detects it.
	b := circuit.NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.AND(x[0], y[0]))
	c := b.MustBuild()
	p := DefaultParams()
	g, _ := NewGarbler(p, rand.Reader)
	gb, err := g.Garble(c, GarbleOptions{GarblerInputs: []bool{true}})
	if err != nil {
		t.Fatal(err)
	}
	gb.Material.Tables[0][0][3] ^= 0x40 // corrupt the generator-half row
	res, err := Evaluate(p, c, &gb.Material, []label.Label{gb.EvalPairs[0].True}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, decodeErr := DecodeWithPairs(gb.OutputPairs, res.OutputLabels)
	// The generator-half row T_G is XOR-ed in only when the select bit
	// of wire a's active label is 1; otherwise the corruption is
	// harmlessly skipped this run.
	rowActive := gb.Material.GarblerActive[0].LSB()
	if rowActive && decodeErr == nil {
		t.Fatal("tampered active row still produced a valid output label")
	}
	if !rowActive && decodeErr != nil {
		t.Fatalf("tampered inactive row corrupted the output: %v", decodeErr)
	}
}

func TestDifferentDeltasProduceDifferentMaterial(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.AND(x[0], y[0]))
	c := b.MustBuild()
	p := DefaultParams()
	g1, _ := NewGarbler(p, rand.Reader)
	g2, _ := NewGarbler(p, rand.Reader)
	if g1.Delta().Label() == g2.Delta().Label() {
		t.Fatal("two garblers drew the same delta")
	}
	gb1, _ := g1.Garble(c, GarbleOptions{GarblerInputs: []bool{true}})
	gb2, _ := g2.Garble(c, GarbleOptions{GarblerInputs: []bool{true}})
	if gb1.Material.Tables[0][0] == gb2.Material.Tables[0][0] {
		t.Fatal("independent garblings produced identical ciphertexts")
	}
}

func TestFreshLabelsPerGarble(t *testing.T) {
	// §3: "even if the model does not change, new labels are required
	// for every garbling operation to ensure security."
	b := circuit.NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.AND(x[0], y[0]))
	c := b.MustBuild()
	g, _ := NewGarbler(DefaultParams(), rand.Reader)
	gb1, _ := g.Garble(c, GarbleOptions{GarblerInputs: []bool{true}})
	gb2, _ := g.Garble(c, GarbleOptions{GarblerInputs: []bool{true}})
	if gb1.Material.GarblerActive[0] == gb2.Material.GarblerActive[0] {
		t.Fatal("re-garbling reused input labels")
	}
}

func TestSchemesAgreeOnRandomMAC(t *testing.T) {
	cfg := circuit.MACConfig{Width: 6, AccWidth: 12}
	c, err := circuit.MACCombinational(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(23))
	x := uint64(rng.Intn(64))
	acc := uint64(rng.Intn(1 << 12))
	a := uint64(rng.Intn(64))
	gIn := append(circuit.Uint64ToBits(x, 6), circuit.Uint64ToBits(acc, 12)...)
	eIn := circuit.Uint64ToBits(a, 6)
	want := (acc + x*a) & (1<<12 - 1)
	for _, s := range allSchemes() {
		out := runGarbled(t, s, c, gIn, eIn)
		if got := circuit.BitsToUint64(out); got != want {
			t.Fatalf("%s: MAC = %d, want %d", s.Name(), got, want)
		}
	}
}
