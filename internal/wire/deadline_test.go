package wire

// Deadline semantics of the transport layer: pipe ends and stream
// connections must expire blocked operations (the peer-stall case the
// protocol timeouts rely on), clear deadlines, and classify expiry
// as a timeout — never as a disconnect.

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func TestPipeDeadlineExpiresBlockedRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	dc, ok := AsDeadline(b)
	if !ok {
		t.Fatal("pipe end is not deadline-capable")
	}
	if err := dc.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := b.RecvMsg()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("RecvMsg blocked %s past its deadline", elapsed)
	}
	if !IsTimeout(err) {
		t.Fatalf("expired recv error = %v, want timeout", err)
	}
	if IsDisconnect(err) {
		t.Fatalf("timeout classified as disconnect: %v", err)
	}
	// The deadline is sticky: later operations fail immediately.
	if _, err := b.RecvMsg(); !IsTimeout(err) {
		t.Fatalf("second recv after expiry = %v, want timeout", err)
	}
	if err := b.SendMsg([]byte("x")); !IsTimeout(err) {
		t.Fatalf("send after expiry = %v, want timeout", err)
	}
	// Clearing the deadline restores service.
	if err := dc.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := a.SendMsg([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.RecvMsg()
	if err != nil || string(msg) != "ping" {
		t.Fatalf("recv after clearing deadline: %q, %v", msg, err)
	}
}

func TestPipeDeadlineInterruptsInFlightRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	dc, _ := AsDeadline(b)
	errc := make(chan error, 1)
	go func() {
		_, err := b.RecvMsg()
		errc <- err
	}()
	// Let the receiver block, then slam the deadline into the past —
	// the cancellation path ServeContext uses to interrupt a wire wait.
	time.Sleep(20 * time.Millisecond)
	if err := dc.SetDeadline(time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !IsTimeout(err) {
			t.Fatalf("interrupted recv error = %v, want timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("past deadline did not wake the blocked receiver")
	}
}

func TestPipeDeadlinePerEnd(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	da, _ := AsDeadline(a)
	if err := da.SetDeadline(time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	// a is expired; b is untouched and must still operate.
	if err := a.SendMsg([]byte("x")); !IsTimeout(err) {
		t.Fatalf("expired end send = %v, want timeout", err)
	}
	if err := b.SendMsg([]byte("to-a")); err != nil {
		t.Fatalf("peer end send failed: %v", err)
	}
}

func TestStreamConnDeadline(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	c := NewStreamConn(client)
	dc, ok := AsDeadline(c)
	if !ok {
		t.Fatal("stream conn over net.Conn is not deadline-capable")
	}
	if err := dc.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvMsg(); !IsTimeout(err) {
		t.Fatalf("stream recv past deadline = %v, want timeout", err)
	}

	// A transport with no deadline support reports it by name.
	plain := NewStreamConn(&bytes.Buffer{})
	pdc, ok := AsDeadline(plain)
	if !ok {
		t.Fatal("stream conn lost its DeadlineConn shape")
	}
	if err := pdc.SetDeadline(time.Now()); !errors.Is(err, ErrDeadlineUnsupported) {
		t.Fatalf("deadline on plain buffer = %v, want ErrDeadlineUnsupported", err)
	}
}

func TestAsDeadlineUnwrapsWrappers(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	wrapped := Observed(NewCounting(a), nil, nil)
	dc, ok := AsDeadline(wrapped)
	if !ok {
		t.Fatal("AsDeadline failed to unwrap Observed(Counting(pipe))")
	}
	if err := dc.SetDeadline(time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	// The deadline set through the unwrapped handle bounds operations
	// made through the wrappers.
	if err := wrapped.SendMsg([]byte("x")); !IsTimeout(err) {
		t.Fatalf("wrapped send past deadline = %v, want timeout", err)
	}
}

func TestIsTimeoutClassification(t *testing.T) {
	if !IsTimeout(os.ErrDeadlineExceeded) {
		t.Fatal("os.ErrDeadlineExceeded not a timeout")
	}
	if !IsTimeout(errPipeTimeout) {
		t.Fatal("pipe timeout not a timeout")
	}
	for _, err := range []error{nil, ErrClosed, errors.New("boom")} {
		if IsTimeout(err) {
			t.Fatalf("IsTimeout(%v) = true", err)
		}
	}
	// Timeout and disconnect are disjoint classifications.
	if IsDisconnect(errPipeTimeout) {
		t.Fatal("pipe timeout classified as disconnect")
	}
}

// TestConcurrentRecvMsgIntegrity is the regression test for the
// read-side lock: two goroutines receiving from one streamConn must
// never interleave a header read with another receiver's body read.
// Before the rmu lock, concurrent receivers silently corrupted the
// stream (body bytes parsed as a length prefix). Run under -race by
// the tier-1 recipe.
func TestConcurrentRecvMsgIntegrity(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	const frames = 200
	sums := make(map[[32]byte]bool, frames)
	var payloads [][]byte
	for i := 0; i < frames; i++ {
		p := make([]byte, 1+(i*37)%512)
		for j := range p {
			p[j] = byte(i + j)
		}
		payloads = append(payloads, p)
		sums[sha256.Sum256(p)] = true
	}

	go func() {
		sc := NewStreamConn(server)
		for _, p := range payloads {
			if err := sc.SendMsg(p); err != nil {
				return
			}
		}
	}()

	conn := NewStreamConn(client)
	var mu sync.Mutex
	received := 0
	var firstErr error
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				msg, err := conn.RecvMsg()
				mu.Lock()
				if err != nil {
					if firstErr == nil && received < frames {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if !sums[sha256.Sum256(msg)] {
					if firstErr == nil {
						firstErr = errors.New("received frame matches no sent payload: stream corrupted")
					}
					mu.Unlock()
					return
				}
				received++
				done := received == frames
				mu.Unlock()
				if done {
					// Unblock the sibling receiver parked in RecvMsg.
					client.Close()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if received != frames {
		t.Fatalf("received %d of %d frames", received, frames)
	}
}
