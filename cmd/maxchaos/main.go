// Command maxchaos is the fleet resilience harness: it boots a live
// gateway in front of N in-process maxd-equivalent backends over real
// TCP, drives open-loop client load at the gateway, and injects fleet
// chaos — killing and restarting a backend every -kill-every, muting a
// second one's new sessions (StallFirstRead) and making a third one's
// link lossy (Flaky) — then asserts the fleet-wide invariants the
// resilience layer promises:
//
//   - single-serve: no client session is ever completed by more than
//     one backend, whatever the failover interleaving;
//   - correctness: every session that succeeds returns the right MAC
//     result, even across flaky links;
//   - bounded errors: the client-visible error rate stays under
//     -max-error-rate, and failover dial load obeys the retry budget
//     (withdrawals ≤ ratio·deposits + burst) — outages shed fast
//     instead of amplifying into retry storms;
//   - clean drain: after load stops, gw_sessions_active, gw_draining
//     and every gw_backend_sessions gauge read zero;
//   - no leaks: goroutine count returns to its pre-run baseline and
//     every backend's wire arena reports zero outstanding buffers.
//
// The run's measurements and verdict are printed as a JSON report on
// stdout; the process exits 1 if any invariant broke (2 on setup
// failure). CI runs a bounded smoke configuration and archives the
// report.
//
// Usage:
//
//	maxchaos                          # 3 backends, 20s, kill every 5s
//	maxchaos -duration 60s -backends 5 -kill-every 3s -v
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"maxelerator/internal/obs"
)

// chaosConfig gathers every knob of one chaos run.
type chaosConfig struct {
	backends        int
	duration        time.Duration
	killEvery       time.Duration
	downFor         time.Duration
	stallFor        time.Duration
	flakyP          float64
	flakyFor        time.Duration
	loadInterval    time.Duration
	maxInflight     int
	maxErrorRate    float64
	probeInterval   time.Duration
	ejectAfter      int
	breakerCooldown time.Duration
	retryBudget     float64
	retryBudgetMin  float64
	verbose         bool
}

func defaultConfig() chaosConfig {
	return chaosConfig{
		backends:        3,
		duration:        20 * time.Second,
		killEvery:       5 * time.Second,
		downFor:         2 * time.Second,
		stallFor:        time.Second,
		flakyP:          0.1,
		flakyFor:        time.Second,
		// A session's handshake runs a real OT-extension base phase
		// (~128 exponentiations in a 2048-bit group), so one session
		// costs on the order of a second of CPU; the arrival rate and
		// concurrency cap are sized for a small CI runner. The error
		// bound is generous for the same reason: failover is
		// pre-handshake only, so every session caught mid-handshake by
		// a kill is honest collateral — with second-long handshakes and
		// a kill every 5s that is a sizeable fraction of a sparse load.
		loadInterval:    500 * time.Millisecond,
		maxInflight:     3,
		maxErrorRate:    0.6,
		probeInterval:   250 * time.Millisecond,
		ejectAfter:      2,
		breakerCooldown: time.Second,
		retryBudget:     0.2,
		retryBudgetMin:  10,
	}
}

func main() {
	cfg := defaultConfig()
	flag.IntVar(&cfg.backends, "backends", cfg.backends, "backends in the fleet")
	flag.DurationVar(&cfg.duration, "duration", cfg.duration, "how long to drive load")
	flag.DurationVar(&cfg.killEvery, "kill-every", cfg.killEvery, "period between backend kills (round-robin victim)")
	flag.DurationVar(&cfg.downFor, "down-for", cfg.downFor, "how long a killed backend stays down before restarting")
	flag.DurationVar(&cfg.stallFor, "stall-for", cfg.stallFor, "mute-peer window per chaos cycle on a second backend (0 disables)")
	flag.Float64Var(&cfg.flakyP, "flaky-p", cfg.flakyP, "per-op loss probability during flaky windows (0 disables)")
	flag.DurationVar(&cfg.flakyFor, "flaky-for", cfg.flakyFor, "lossy-link window per chaos cycle on a third backend")
	flag.DurationVar(&cfg.loadInterval, "load-interval", cfg.loadInterval, "open-loop session arrival period")
	flag.IntVar(&cfg.maxInflight, "max-inflight", cfg.maxInflight, "client concurrency cap; arrivals past it are skipped, not queued")
	flag.Float64Var(&cfg.maxErrorRate, "max-error-rate", cfg.maxErrorRate, "maximum tolerated client-visible error fraction")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", cfg.probeInterval, "gateway health poll period")
	flag.IntVar(&cfg.ejectAfter, "eject-after", cfg.ejectAfter, "consecutive failures before a backend's breaker opens")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", cfg.breakerCooldown, "base breaker cooldown before a readmission trial")
	flag.Float64Var(&cfg.retryBudget, "retry-budget", cfg.retryBudget, "gateway failover budget ratio")
	flag.Float64Var(&cfg.retryBudgetMin, "retry-budget-min", cfg.retryBudgetMin, "gateway failover burst allowance")
	flag.BoolVar(&cfg.verbose, "v", false, "log chaos events and gateway decisions to stderr")
	flag.Parse()

	rep, err := runChaos(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maxchaos:", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if !rep.Pass {
		os.Exit(1)
	}
}

// runChaos executes one full chaos run: fleet up, chaos + load,
// drain, measure, tear down, judge. It is the whole harness behind a
// single call so the CI smoke test and main() share every code path.
func runChaos(cfg chaosConfig) (*Report, error) {
	if cfg.backends < 1 {
		return nil, fmt.Errorf("need at least 1 backend, have %d", cfg.backends)
	}
	logf := func(string, ...any) {}
	if cfg.verbose {
		logf = log.Printf
	}
	goroutinesBefore := runtime.NumGoroutine()

	fleet, err := startFleet(&cfg, logf)
	if err != nil {
		return nil, err
	}

	counters := &chaosCounters{}
	chaosDone := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		fleet.chaosLoop(chaosDone, counters)
	}()

	stats := fleet.runLoad(cfg.duration)

	// Stop the chaos first (restoring every backend), then the intake,
	// then let in-flight relays drain on their own connections.
	close(chaosDone)
	chaosWG.Wait()
	fleet.stopIntake()
	drained := fleet.gw.Drain(10 * time.Second)

	rep := &Report{
		Backends:             cfg.backends,
		Duration:             cfg.duration.String(),
		KillEvery:            cfg.killEvery.String(),
		Sessions:             stats.sessions.Load(),
		Skipped:              stats.skipped.Load(),
		Succeeded:            stats.succeeded.Load(),
		Shed:                 stats.shed.Load(),
		Failed:               stats.failed.Load(),
		Miscomputed:          stats.miscomputed.Load(),
		Kills:                counters.kills.Load(),
		Restarts:             counters.restarts.Load(),
		RestartFailures:      counters.restartFails.Load(),
		Stalls:               counters.stalls.Load(),
		FlakyWindows:         counters.flakyWindows.Load(),
		Drained:              drained,
		GoroutinesBefore:     goroutinesBefore,
		ServedByBackend:      map[string]int64{},
		GaugeBackendSessions: map[string]int64{},
		ArenaOutstanding:     map[string]int64{},
	}
	rep.BudgetDeposits, rep.BudgetWithdrawals, rep.BudgetDenials = fleet.gw.RetryBudgetStats()

	// Gauges are read after the drain but before teardown: this is the
	// state a dashboard would see on a quiesced, still-serving gateway.
	reg := fleet.o.Metrics()
	rep.GaugeSessionsActive = reg.Gauge("gw_sessions_active", "").Value()
	rep.GaugeDraining = reg.Gauge("gw_draining", "").Value()
	for _, b := range fleet.backends {
		rep.GaugeBackendSessions[b.protoAddr] = reg.Gauge("gw_backend_sessions", "", obs.L("backend", b.protoAddr)).Value()
	}

	fleet.close()
	for _, b := range fleet.backends {
		rep.ServedByBackend[b.protoAddr] = b.served.Load()
		rep.ServedTotal += b.served.Load()
		rep.ArenaOutstanding[b.protoAddr] = b.srv.ArenaOutstanding()
	}
	rep.GoroutinesAfter = settleGoroutines(goroutinesBefore, 5*time.Second)
	rep.evaluate(&cfg)
	return rep, nil
}
