package load

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseShapes parses the CLI shape-mix syntax shared by maxload and
// maxcap: comma-separated ROWSxCOLS/b=WIDTH entries, each with an
// optional *WEIGHT suffix (default 1) and an optional /ot=MODE
// segment, e.g. "4x4/b=8*3,2x8/b=8/ot=batched*1".
func ParseShapes(s string) ([]ShapeWeight, error) {
	var out []ShapeWeight
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		sw := ShapeWeight{Weight: 1, OT: "per-round"}
		if star := strings.LastIndex(entry, "*"); star >= 0 {
			w, err := strconv.ParseFloat(entry[star+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("load: shape %q: bad weight: %v", entry, err)
			}
			sw.Weight = w
			entry = entry[:star]
		}
		for i, part := range strings.Split(entry, "/") {
			switch {
			case i == 0:
				if _, err := fmt.Sscanf(part, "%dx%d", &sw.Rows, &sw.Cols); err != nil {
					return nil, fmt.Errorf("load: shape %q: want ROWSxCOLS, got %q", entry, part)
				}
			case strings.HasPrefix(part, "b="):
				w, err := strconv.Atoi(part[2:])
				if err != nil {
					return nil, fmt.Errorf("load: shape %q: bad width %q", entry, part)
				}
				sw.Width = w
			case strings.HasPrefix(part, "ot="):
				sw.OT = part[3:]
			default:
				return nil, fmt.Errorf("load: shape %q: unknown segment %q", entry, part)
			}
		}
		if sw.Width == 0 {
			return nil, fmt.Errorf("load: shape %q: missing /b=WIDTH", entry)
		}
		out = append(out, sw)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("load: empty shape mix")
	}
	return out, nil
}
