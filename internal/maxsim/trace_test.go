package maxsim

import (
	"testing"

	"maxelerator/internal/sched"
)

func TestTraceValidation(t *testing.T) {
	s := sim(t, Config{Width: 8})
	if _, err := s.Trace(TraceConfig{MACs: 0}); err == nil {
		t.Fatal("zero MACs accepted")
	}
	if _, err := s.Trace(TraceConfig{MACs: 1, MemoryBytesPerCore: 8}); err == nil {
		t.Fatal("block smaller than one table accepted")
	}
	if _, err := s.Trace(TraceConfig{MACs: 1, DrainBytesPerCycle: -1}); err == nil {
		t.Fatal("negative drain accepted")
	}
}

func TestTraceNoStallsWithAmpleBandwidth(t *testing.T) {
	s := sim(t, Config{Width: 8})
	drain := s.SustainableDrainBytesPerCycle()
	res, err := s.Trace(TraceConfig{MACs: 20, DrainBytesPerCycle: drain, MemoryBytesPerCore: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles != 0 {
		t.Fatalf("sustainable drain still stalled %d cycles", res.StallCycles)
	}
	// Total cycles = busy cycles + final drain tail only.
	if res.Cycles < res.BusyCycles {
		t.Fatalf("cycles %d below busy %d", res.Cycles, res.BusyCycles)
	}
	if res.BytesDrained != res.BytesProduced {
		t.Fatalf("drained %d of %d bytes", res.BytesDrained, res.BytesProduced)
	}
}

func TestTraceStallsWhenPCIeTooSlow(t *testing.T) {
	// The paper's closing caveat: with insufficient host bandwidth the
	// accelerator must throttle.
	s := sim(t, Config{Width: 8})
	res, err := s.Trace(TraceConfig{MACs: 20, DrainBytesPerCycle: 4, MemoryBytesPerCore: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles == 0 {
		t.Fatal("starved output port produced no stalls")
	}
	if res.StallFraction() <= 0.5 {
		t.Fatalf("stall fraction %v, expected production-bound run", res.StallFraction())
	}
	if res.BytesDrained != res.BytesProduced {
		t.Fatal("tables lost")
	}
}

func TestTraceTableAccounting(t *testing.T) {
	s := sim(t, Config{Width: 8})
	const macs = 5
	res, err := s.Trace(TraceConfig{MACs: macs, DrainBytesPerCycle: 1 << 12, MemoryBytesPerCore: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	stages := s.Schedule().TotalCycles(macs) / sched.CyclesPerStage
	want := uint64(s.Schedule().TablesPerStage()) * stages
	if res.TablesProduced != want {
		t.Fatalf("produced %d tables, want %d", res.TablesProduced, want)
	}
	var perCore uint64
	for _, n := range res.PerCoreTables {
		perCore += n
	}
	if perCore != res.TablesProduced {
		t.Fatalf("per-core sum %d != total %d", perCore, res.TablesProduced)
	}
	if res.BytesProduced != want*32 { // half gates: 2 × 16 B
		t.Fatalf("bytes produced = %d", res.BytesProduced)
	}
}

func TestTraceMuxAddCoresFullyLoaded(t *testing.T) {
	// Segment-1 cores garble every cycle; segment-2 cores absorb the
	// ≤2 idle slots.
	s := sim(t, Config{Width: 16})
	res, err := s.Trace(TraceConfig{MACs: 4, DrainBytesPerCycle: 1 << 12, MemoryBytesPerCore: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	stages := s.Schedule().TotalCycles(4) / sched.CyclesPerStage
	seg1 := s.Schedule().SegmentCores(sched.MuxAdd)
	for i := 0; i < seg1; i++ {
		if res.PerCoreTables[i] != stages*sched.CyclesPerStage {
			t.Fatalf("MUX_ADD core %d produced %d tables over %d stages", i, res.PerCoreTables[i], stages)
		}
	}
}

func TestTracePeakOccupancyBounded(t *testing.T) {
	s := sim(t, Config{Width: 8})
	const blocks = 128
	res, err := s.Trace(TraceConfig{MACs: 10, DrainBytesPerCycle: 2, MemoryBytesPerCore: blocks})
	if err != nil {
		t.Fatal(err)
	}
	limit := blocks * s.Schedule().NumCores()
	if res.PeakOccupancyBytes > limit {
		t.Fatalf("peak occupancy %d exceeds capacity %d", res.PeakOccupancyBytes, limit)
	}
	if res.PeakOccupancyBytes == 0 {
		t.Fatal("no occupancy recorded")
	}
}

func TestSustainableDrainMatchesTable2Volumes(t *testing.T) {
	// b=8: 24 tables/stage × 32 B / 3 cycles = 256 B/cycle — far above
	// the ≈4 B/cycle the paper's PCIe sustains, quantifying how
	// communication-bound a fully-parallel accelerator is.
	s := sim(t, Config{Width: 8})
	if got := s.SustainableDrainBytesPerCycle(); got != 256 {
		t.Fatalf("sustainable drain = %d B/cycle, want 256", got)
	}
}

func TestTraceFasterDrainNeverSlower(t *testing.T) {
	s := sim(t, Config{Width: 8})
	slow, err := s.Trace(TraceConfig{MACs: 10, DrainBytesPerCycle: 8, MemoryBytesPerCore: 128})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.Trace(TraceConfig{MACs: 10, DrainBytesPerCycle: 64, MemoryBytesPerCore: 128})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles > slow.Cycles {
		t.Fatalf("faster drain took %d cycles vs %d", fast.Cycles, slow.Cycles)
	}
}
