package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock shared by the resilience
// tests (and the gateway's, via Config.Now).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// recorder collects transitions for monotonicity assertions.
type recorder struct {
	mu sync.Mutex
	ts []Transition
}

func (r *recorder) hook(t Transition) {
	r.mu.Lock()
	r.ts = append(r.ts, t)
	r.mu.Unlock()
}

func (r *recorder) all() []Transition {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Transition(nil), r.ts...)
}

// assertLegal checks the transition log is monotone (Seq strictly
// +1-increasing) and every edge is one the state machine defines.
func assertLegal(t *testing.T, ts []Transition) {
	t.Helper()
	legal := map[[2]State]bool{
		{StateClosed, StateOpen}:     true,
		{StateOpen, StateHalfOpen}:   true,
		{StateHalfOpen, StateClosed}: true,
		{StateHalfOpen, StateOpen}:   true,
	}
	for i, tr := range ts {
		if tr.Seq != uint64(i+1) {
			t.Fatalf("transition %d has seq %d, want %d (non-monotone)", i, tr.Seq, i+1)
		}
		if !legal[[2]State{tr.From, tr.To}] {
			t.Fatalf("illegal transition %v → %v at seq %d", tr.From, tr.To, tr.Seq)
		}
	}
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	rec := &recorder{}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Now: clk.Now, OnTransition: rec.hook})

	b.Observe(false)
	b.Observe(false)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", got)
	}
	if b.Observe(false) != StateOpen {
		t.Fatal("third consecutive failure did not trip the breaker")
	}
	if b.Routable() {
		t.Fatal("open breaker reports routable")
	}
	assertLegal(t, rec.all())
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second, Now: clk.Now})
	// Alternating failure/success never accumulates to the threshold.
	for i := 0; i < 10; i++ {
		b.Observe(false)
		b.Observe(true)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("alternating results tripped the breaker: %v", got)
	}
}

// TestBreakerIgnoresResultsWhileCooling is the hysteresis core: a
// flapping backend that answers one probe mid-cooldown must stay off
// the ring until the half-open trial.
func TestBreakerIgnoresResultsWhileCooling(t *testing.T) {
	clk := newFakeClock()
	rec := &recorder{}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 10 * time.Second, Now: clk.Now, OnTransition: rec.hook})
	b.Observe(false) // trip

	clk.Advance(5 * time.Second) // mid-cooldown
	if got := b.Observe(true); got != StateOpen {
		t.Fatalf("mid-cooldown success moved the breaker to %v", got)
	}
	if got := b.Observe(false); got != StateOpen {
		t.Fatalf("mid-cooldown failure moved the breaker to %v", got)
	}

	clk.Advance(5 * time.Second) // cooldown expired: this is the trial
	if got := b.Observe(true); got != StateClosed {
		t.Fatalf("half-open trial success left the breaker %v", got)
	}
	assertLegal(t, rec.all())
}

// TestBreakerHalfOpenFailureDoublesCooldown: every re-trip before a
// full recovery doubles the dwell, capped at MaxCooldown.
func TestBreakerHalfOpenFailureDoublesCooldown(t *testing.T) {
	clk := newFakeClock()
	rec := &recorder{}
	b := NewBreaker(BreakerConfig{
		Threshold: 1, Cooldown: time.Second, MaxCooldown: 4 * time.Second,
		Now: clk.Now, OnTransition: rec.hook,
	})
	b.Observe(false) // trip 1: cooldown 1s

	clk.Advance(time.Second)
	if got := b.Observe(false); got != StateOpen {
		t.Fatalf("failed trial left the breaker %v", got)
	}
	// Trip 2: cooldown now 2s. 1s is not enough...
	clk.Advance(time.Second)
	if got := b.Observe(true); got != StateOpen {
		t.Fatalf("success 1s into a 2s cooldown left the breaker %v", got)
	}
	// ...2s is.
	clk.Advance(time.Second)
	if got := b.Observe(false); got != StateOpen {
		t.Fatalf("second failed trial left the breaker %v", got)
	}
	// Trip 3: 4s (the cap; would be 4s anyway). Trip 4 would also be 4s.
	clk.Advance(4 * time.Second)
	if got := b.Observe(false); got != StateOpen {
		t.Fatalf("third failed trial left the breaker %v", got)
	}
	if got := b.Trips(); got != 4 {
		t.Fatalf("trips = %d, want 4", got)
	}
	clk.Advance(4 * time.Second)
	if got := b.Observe(true); got != StateClosed {
		t.Fatalf("trial after capped cooldown left the breaker %v", got)
	}
	assertLegal(t, rec.all())
}

// TestBreakerRecoveryStreakRestoresBaseCooldown: hysteresis survives a
// readmission — only a streak of closed successes clears the re-trip
// history.
func TestBreakerRecoveryStreakRestoresBaseCooldown(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Threshold: 1, Cooldown: time.Second, MaxCooldown: 8 * time.Second,
		RecoveryStreak: 3, Now: clk.Now,
	})
	b.Observe(false) // trip 1
	clk.Advance(time.Second)
	b.Observe(true) // readmitted; trips history retained (streak 0)
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips after readmission = %d, want 1 (history must survive)", got)
	}
	b.Observe(false) // immediate re-trip: cooldown doubles to 2s
	clk.Advance(time.Second)
	if got := b.Observe(true); got != StateOpen {
		t.Fatal("re-trip after shallow recovery did not double the cooldown")
	}
	clk.Advance(time.Second)
	b.Observe(true) // readmitted again

	// A full recovery streak clears the history...
	b.Observe(true)
	b.Observe(true)
	b.Observe(true)
	if got := b.Trips(); got != 0 {
		t.Fatalf("trips after recovery streak = %d, want 0", got)
	}
	// ...so the next trip cools for the base period again.
	b.Observe(false)
	clk.Advance(time.Second)
	if got := b.Observe(true); got != StateClosed {
		t.Fatalf("post-recovery trip did not use the base cooldown: %v", got)
	}
}

// TestBreakerConcurrentObserves runs mixed observations from many
// goroutines purely for the race detector; the end state must still be
// a legal one and the transition log monotone.
func TestBreakerConcurrentObserves(t *testing.T) {
	rec := &recorder{}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Millisecond, OnTransition: rec.hook})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				b.Observe(j%3 == i%3)
			}
		}()
	}
	wg.Wait()
	switch b.State() {
	case StateClosed, StateOpen, StateHalfOpen:
	default:
		t.Fatalf("invalid terminal state %v", b.State())
	}
	assertLegal(t, rec.all())
}
