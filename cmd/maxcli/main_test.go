package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseVectorInline(t *testing.T) {
	got, err := parseVector("1.5, -2.25,0.5", "")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2.25, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v", i, got[i])
		}
	}
}

func TestParseVectorRejectsGarbage(t *testing.T) {
	if _, err := parseVector("1.5,abc", ""); err == nil {
		t.Fatal("garbage element accepted")
	}
	if _, err := parseVector("", ""); err == nil {
		t.Fatal("missing vector accepted")
	}
}

func TestParseVectorFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.json")
	if err := os.WriteFile(path, []byte("[1, 2.5, -3]"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := parseVector("", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != 2.5 {
		t.Fatalf("file vector = %v", got)
	}
}

func TestParseVectorFileErrors(t *testing.T) {
	if _, err := parseVector("", "/nonexistent/v.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := parseVector("", path); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestRunValidatesFormat(t *testing.T) {
	if err := run(cliConfig{addr: "127.0.0.1:1", width: 16, frac: 30, vec: "1,2"}); err == nil {
		t.Fatal("invalid fixed-point format accepted")
	}
	if err := run(cliConfig{addr: "127.0.0.1:1", width: 16, frac: 6}); err == nil {
		t.Fatal("missing vector accepted")
	}
	if err := run(cliConfig{addr: "127.0.0.1:1", width: 16, frac: 6, vec: "1e9"}); err == nil {
		t.Fatal("overflowing vector accepted")
	}
}

func TestParseVectorsBatchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.json")
	if err := os.WriteFile(path, []byte("[[1, 2.5], [-3, 0.5], [0, 4]]"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := parseVectors("", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1][0] != -3 || got[2][1] != 4 {
		t.Fatalf("batch = %v", got)
	}
	if err := os.WriteFile(path, []byte("[]"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := parseVectors("", path); err == nil {
		t.Fatal("empty batch accepted")
	}
}
