// Package pipeline provides the bounded producer/consumer stage used
// by the streaming serve path: a producer goroutine yields items (in
// this repository, garbled-row chunks) through a depth-bounded channel
// to a consumer running on the caller's goroutine (wire framing), so
// downstream transfer overlaps upstream production while buffering
// stays O(depth) instead of O(request).
//
// The package is deliberately generic and protocol-free so its
// concurrency contract — no goroutine leaks, panic containment,
// prompt cancellation — is testable in isolation and reusable by any
// stage pair.
package pipeline

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError carries a panic recovered from a producer so the caller's
// containment layer can classify and log it like one of its own.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the producer goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline: producer panic: %v", e.Value)
}

// Stream runs produce in its own goroutine and feeds each yielded item
// through a channel of the given depth to consume, which runs on the
// caller's goroutine in yield order. It returns once both sides are
// done — Stream never leaves the producer goroutine behind, even when
// the consumer fails, the context is cancelled, or either side panics.
//
// The producer calls yield for each item; yield returns false when the
// consumer has failed or ctx is done, and the producer should stop
// promptly (returning any error it likes — a false yield that leads to
// a nil produce error reports ctx.Err instead).
//
// Error precedence: a consumer error wins (the producer is cancelled
// and the channel drained), then a producer error or recovered
// producer panic (as *PanicError), then ctx.Err. Items still in
// flight when the pipeline aborts are dropped, so yielded values must
// not own resources that need explicit release.
//
// A consumer panic propagates to the caller, but only after the
// producer has been cancelled and reaped.
func Stream[T any](ctx context.Context, depth int, produce func(yield func(T) bool) error, consume func(T) error) (err error) {
	if depth < 1 {
		depth = 1
	}
	ch := make(chan T, depth)
	stop := make(chan struct{})
	prodErr := make(chan error, 1)

	go func() {
		var perr error
		defer func() {
			if r := recover(); r != nil {
				perr = &PanicError{Value: r, Stack: debug.Stack()}
			}
			close(ch)
			prodErr <- perr
		}()
		yield := func(v T) bool {
			select {
			case ch <- v:
				return true
			case <-stop:
				return false
			case <-ctx.Done():
				return false
			}
		}
		perr = produce(yield)
	}()

	var stopOnce sync.Once
	bail := func() { stopOnce.Do(func() { close(stop) }) }
	defer func() {
		// Runs on every exit, including a consumer panic: cancel the
		// producer, drain whatever it already yielded, and wait for
		// its goroutine to finish before Stream returns.
		bail()
		for range ch {
		}
		perr := <-prodErr
		if err == nil {
			err = perr
		}
		if err == nil {
			err = ctx.Err()
		}
	}()

	for v := range ch {
		if cerr := consume(v); cerr != nil {
			return cerr
		}
	}
	return nil
}
