module maxelerator

go 1.22
