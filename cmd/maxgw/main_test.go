package main

import (
	"crypto/rand"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"maxelerator/internal/gateway"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/precompute"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

func TestParseBackends(t *testing.T) {
	got, err := parseBackends("10.0.0.1:7700, 10.0.0.2:7700=http://10.0.0.2:7701,10.0.0.3:7700=10.0.0.3:7701/")
	if err != nil {
		t.Fatal(err)
	}
	want := []gateway.Backend{
		{Addr: "10.0.0.1:7700"},
		{Addr: "10.0.0.2:7700", HealthURL: "http://10.0.0.2:7701"},
		{Addr: "10.0.0.3:7700", HealthURL: "http://10.0.0.3:7701"},
	}
	if len(got) != len(want) {
		t.Fatalf("%d backends", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backend %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := parseBackends(""); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := parseBackends("=http://x"); err == nil {
		t.Fatal("empty address accepted")
	}
}

// testBackend is one in-process maxd-equivalent: a real protocol
// server with a precompute engine behind a TCP listener, plus the
// /healthz + /shapez surface the gateway probes.
type testBackend struct {
	matrix [][]int64
	shape  precompute.Shape
	o      *obs.Obs
	srv    *protocol.Server
	eng    *precompute.Engine
	ln     net.Listener
	hs     *httptest.Server
	served atomic.Int64
	busy   atomic.Bool
	wg     sync.WaitGroup
}

func startBackend(t *testing.T) *testBackend {
	t.Helper()
	b := &testBackend{
		matrix: [][]int64{{2, 3}},
		shape:  precompute.Shape{Rows: 1, Cols: 2, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"},
		o:      obs.New(4),
	}
	simCfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	srv, err := protocol.NewServer(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := precompute.New(precompute.Config{Sim: simCfg, PoolSize: 2, MaxShapes: 4, Metrics: b.o.Metrics()})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(b.o).WithPrecompute(eng)
	eng.Start()
	b.srv, b.eng = srv, eng

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.ln = ln
	go b.acceptLoop()

	mux := http.NewServeMux()
	mux.HandleFunc("/shapez", func(w http.ResponseWriter, r *http.Request) {
		var shapes []string
		for s := range b.eng.Shapes() {
			shapes = append(shapes, s.String())
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"shapes": shapes})
	})
	mux.Handle("/", b.o.Handler())
	b.hs = httptest.NewServer(mux)
	t.Cleanup(func() {
		b.ln.Close()
		b.hs.Close()
		b.wg.Wait()
		b.eng.Stop()
	})
	return b
}

func (b *testBackend) acceptLoop() {
	for {
		c, err := b.ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			conn := wire.NewStreamConn(c)
			defer conn.Close()
			if b.busy.Load() {
				protocol.SendBusy(conn, 20*time.Millisecond)
				return
			}
			if _, err := b.srv.Serve(conn, protocol.Request{Matrix: b.matrix}); err == nil {
				b.served.Add(1)
			}
		}()
	}
}

// addr is the backend's protocol address.
func (b *testBackend) addr() string { return b.ln.Addr().String() }

// kill closes the protocol listener (the health surface stays up, so
// this models a crashed daemon the prober has not noticed yet — the
// dial-failure failover path).
func (b *testBackend) kill() { b.ln.Close() }

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startGateway boots maxgw's run() against the given backends and
// returns its listen (and metrics) addresses. SIGTERM stops it.
func startGateway(t *testing.T, metrics bool, backends ...*testBackend) (addr, maddr string, done chan error) {
	t.Helper()
	addr = freePort(t)
	if metrics {
		maddr = freePort(t)
	}
	var spec []string
	for _, b := range backends {
		spec = append(spec, b.addr()+"="+b.hs.URL)
	}
	done = make(chan error, 1)
	go func() {
		done <- run(gwConfig{
			listen: addr, backends: strings.Join(spec, ","), metricsAddr: maddr,
			peekTimeout: 100 * time.Millisecond, probeInterval: 150 * time.Millisecond,
			ejectAfter: 2, maxFailovers: 2, loadFactor: 1.25,
		})
	}()
	return addr, maddr, done
}

func dialWire(t *testing.T, addr string) wire.Conn {
	t.Helper()
	for i := 0; i < 200; i++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return wire.NewStreamConn(c)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("gateway did not come up")
	return nil
}

var e2eHint = protocol.ShapeHint{Rows: 1, Cols: 2, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"}

// runSession runs one hinted (or unhinted) request through the
// gateway over real TCP and checks the result.
func runSession(t *testing.T, gwAddr string, hint *protocol.ShapeHint) error {
	t.Helper()
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if hint != nil {
		cli.WithShapeHint(*hint)
	}
	conn := dialWire(t, gwAddr)
	defer conn.Close()
	cs, err := cli.Dial(conn)
	if err != nil {
		return err
	}
	out, err := cs.Do([]int64{4, 5})
	if err != nil {
		return err
	}
	if err := cs.Close(); err != nil {
		return err
	}
	if len(out) != 1 || out[0] != 2*4+3*5 {
		t.Fatalf("result = %v, want [23]", out)
	}
	return nil
}

// stopGateway SIGTERMs the process (run's NotifyContext catches it)
// and waits for a clean exit.
func stopGateway(t *testing.T, done chan error) {
	t.Helper()
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gateway exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not shut down on SIGTERM")
	}
}

// drainBackends waits until every in-flight backend session goroutine
// finished, so served counters are final.
func drainBackends(bs ...*testBackend) {
	for _, b := range bs {
		b.wg.Wait()
	}
}

// TestE2ESameShapePinsAndHitsPool is the headline acceptance path:
// maxgw in front of two live backends routes same-shape sessions to
// the same backend, whose precompute pool — having learned the shape
// from the first session — serves the second one warm.
func TestE2ESameShapePinsAndHitsPool(t *testing.T) {
	b0, b1 := startBackend(t), startBackend(t)
	gwAddr, maddr, done := startGateway(t, true, b0, b1)
	defer stopGateway(t, done)

	if err := runSession(t, gwAddr, &e2eHint); err != nil {
		t.Fatalf("session 1: %v", err)
	}
	drainBackends(b0, b1)
	var owner, other *testBackend
	switch {
	case b0.served.Load() == 1 && b1.served.Load() == 0:
		owner, other = b0, b1
	case b1.served.Load() == 1 && b0.served.Load() == 0:
		owner, other = b1, b0
	default:
		t.Fatalf("session 1 served %d/%d times across the fleet", b0.served.Load(), b1.served.Load())
	}

	// The first session taught the owner's engine the shape; wait for
	// the background refill so session 2 is a guaranteed pool hit.
	deadline := time.Now().Add(10 * time.Second)
	for owner.eng.Depth(owner.shape) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("owner pool never warmed after learning the shape")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := runSession(t, gwAddr, &e2eHint); err != nil {
		t.Fatalf("session 2: %v", err)
	}
	drainBackends(b0, b1)
	if got := owner.served.Load(); got != 2 {
		t.Fatalf("owner served %d sessions, want 2 (affinity broke)", got)
	}
	if got := other.served.Load(); got != 0 {
		t.Fatalf("non-owner served %d sessions, want 0", got)
	}
	key := obs.L("shape", owner.shape.String())
	if hits := owner.o.Metrics().Counter("precompute_hits_total", "", key).Value(); hits != 1 {
		t.Fatalf("owner pool hits = %d, want 1 (second session must serve warm)", hits)
	}

	// The fleet surface reflects both backends, and within a probe
	// interval the owner advertises the learned shape.
	fleetDeadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + maddr + "/fleetz")
		if err != nil {
			if time.Now().After(fleetDeadline) {
				t.Fatalf("/fleetz never answered: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		var fleet struct {
			Backends []gateway.BackendStatus `json:"backends"`
		}
		err = json.NewDecoder(resp.Body).Decode(&fleet)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(fleet.Backends) != 2 {
			t.Fatalf("/fleetz lists %d backends", len(fleet.Backends))
		}
		advertised := false
		for _, st := range fleet.Backends {
			if st.Addr == owner.addr() {
				for _, s := range st.Shapes {
					advertised = advertised || s == owner.shape.String()
				}
			}
		}
		if advertised {
			break
		}
		if time.Now().After(fleetDeadline) {
			t.Fatal("owner's learned shape never surfaced on /fleetz")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestE2EFailoverOnBusyAndKilledBackend: the session's pinned backend
// first sheds with BUSY, then is killed outright; both times the
// gateway transparently lands the session on the surviving replica —
// the client never sees either fault.
func TestE2EFailoverOnBusyAndKilledBackend(t *testing.T) {
	b0, b1 := startBackend(t), startBackend(t)
	gwAddr, _, done := startGateway(t, false, b0, b1)
	defer stopGateway(t, done)

	if err := runSession(t, gwAddr, &e2eHint); err != nil {
		t.Fatalf("session 1: %v", err)
	}
	drainBackends(b0, b1)
	owner, other := b0, b1
	if b1.served.Load() == 1 {
		owner, other = b1, b0
	}
	if owner.served.Load() != 1 || other.served.Load() != 0 {
		t.Fatalf("session 1 split %d/%d", b0.served.Load(), b1.served.Load())
	}

	// BUSY failover: the pinned backend rejects, the replica serves.
	owner.busy.Store(true)
	if err := runSession(t, gwAddr, &e2eHint); err != nil {
		t.Fatalf("session during BUSY: %v", err)
	}
	drainBackends(b0, b1)
	if got := other.served.Load(); got != 1 {
		t.Fatalf("replica served %d during BUSY, want 1", got)
	}
	if got := owner.served.Load(); got != 1 {
		t.Fatalf("busy owner served %d more sessions", got-1)
	}

	// Kill failover: the pinned backend's listener is gone (dial
	// refused); the replica still serves, within the same dial.
	owner.busy.Store(false)
	owner.kill()
	if err := runSession(t, gwAddr, &e2eHint); err != nil {
		t.Fatalf("session after kill: %v", err)
	}
	drainBackends(b0, b1)
	if got := other.served.Load(); got != 2 {
		t.Fatalf("replica served %d after kill, want 2", got)
	}
}

// TestE2EBreakerOpensOnDeadBackend: a backend that dies entirely
// (protocol listener and health surface both gone) trips its breaker
// within ejectAfter probe ticks, and the breaker's position surfaces
// on both /fleetz (breaker: "open", healthy: false) and /metrics
// (gw_breaker_state 1) — while the surviving replica keeps serving.
func TestE2EBreakerOpensOnDeadBackend(t *testing.T) {
	b0, b1 := startBackend(t), startBackend(t)
	gwAddr, maddr, done := startGateway(t, true, b0, b1)
	defer stopGateway(t, done)

	dead := b0.addr()
	b0.kill()
	b0.hs.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + maddr + "/fleetz")
		if err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("/fleetz never answered: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		var fleet struct {
			Backends []gateway.BackendStatus `json:"backends"`
		}
		err = json.NewDecoder(resp.Body).Decode(&fleet)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		opened := false
		for _, st := range fleet.Backends {
			if st.Addr == dead {
				opened = st.Breaker == "open" && !st.Healthy
			}
		}
		if opened {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead backend never showed an open breaker: %+v", fleet.Backends)
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := `gw_breaker_state{backend="` + dead + `"} 1`
	if !strings.Contains(string(body), want) {
		t.Fatalf("/metrics missing %q", want)
	}

	if err := runSession(t, gwAddr, &e2eHint); err != nil {
		t.Fatalf("session with a dead replica: %v", err)
	}
	drainBackends(b1)
	if got := b1.served.Load(); got != 1 {
		t.Fatalf("survivor served %d sessions, want 1", got)
	}
}

// TestE2EUnhintedClientServed pins gateway back-compat on the wire: a
// client that never sends the preface still completes through maxgw.
func TestE2EUnhintedClientServed(t *testing.T) {
	b0, b1 := startBackend(t), startBackend(t)
	gwAddr, _, done := startGateway(t, false, b0, b1)
	defer stopGateway(t, done)

	if err := runSession(t, gwAddr, nil); err != nil {
		t.Fatal(err)
	}
	drainBackends(b0, b1)
	if got := b0.served.Load() + b1.served.Load(); got != 1 {
		t.Fatalf("fleet served %d sessions, want 1", got)
	}
}
