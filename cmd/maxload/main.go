// Command maxload is the open-loop traffic generator of the capacity
// toolchain: it offers a seeded arrival schedule (Poisson, uniform or
// burst) of real protocol sessions to a live maxd or maxgw target and
// reports what came back — offered vs. achieved rate, latency
// percentiles, BUSY sheds, hard failures, and (when the target's
// metrics surface is reachable) the precompute pool hit-rate.
//
// Usage:
//
//	maxload -target 127.0.0.1:7700 -rate 20 -duration 30s
//	maxload -target 127.0.0.1:7800 -rate 50 -process burst -burst 8 \
//	        -shapes "4x4/b=8*3,2x8/b=8*1" -metrics http://127.0.0.1:7701
//
// Open-loop means the arrival clock never slows for a struggling
// fleet: arrivals the -max-inflight cap cannot absorb are counted as
// skipped, never blocked on, so overload surfaces as sheds and rising
// percentiles instead of a silently throttled offered rate.
//
// The -shapes mix is a comma-separated list of ROWSxCOLS/b=WIDTH
// entries with an optional *WEIGHT suffix (default weight 1). The same
// scenario fed to `maxcap -simulate` replays the identical arrival
// schedule through the capacity simulator — same seed, same instants,
// same shape draws — so measurement and prediction are directly
// comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"maxelerator/internal/load"
	"maxelerator/internal/protocol"
)

func main() {
	var (
		target      = flag.String("target", "127.0.0.1:7700", "maxd or maxgw TCP address")
		rate        = flag.Float64("rate", 10, "offered arrival rate, sessions/second")
		process     = flag.String("process", "poisson", "arrival process: poisson, uniform or burst")
		burst       = flag.Int("burst", 8, "arrivals per clump under -process burst")
		duration    = flag.Duration("duration", 30*time.Second, "arrival window")
		seed        = flag.Int64("seed", 1, "schedule seed (same seed = same arrivals)")
		maxInflight = flag.Int("max-inflight", 64, "client-side concurrent session cap; 0 = unlimited")
		shapes      = flag.String("shapes", "4x4/b=8", "weighted shape mix, e.g. \"4x4/b=8*3,2x8/b=8*1\"")
		metricsURL  = flag.String("metrics", "", "target observability base URL for pool hit-rate (e.g. http://127.0.0.1:7701)")
		handshakeTO = flag.Duration("handshake-timeout", 10*time.Second, "per-operation handshake/OT deadline")
		ioTO        = flag.Duration("io-timeout", 10*time.Second, "per-operation steady-state I/O deadline")
		jsonOut     = flag.Bool("json", false, "emit the full report as JSON on stdout")
		verbose     = flag.Bool("v", false, "log per-session failures")
	)
	flag.Parse()

	mix, err := load.ParseShapes(*shapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maxload:", err)
		os.Exit(2)
	}
	sc := load.Scenario{
		Rate: *rate, Process: *process, BurstSize: *burst,
		DurationSec: duration.Seconds(), Seed: *seed,
		MaxInflight: *maxInflight, Shapes: mix,
	}
	cfg := load.Config{
		Target:     *target,
		Scenario:   sc,
		Timeouts:   protocol.Timeouts{Handshake: *handshakeTO, IO: *ioTO},
		MetricsURL: *metricsURL,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	r, err := load.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maxload:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(r)
	} else {
		printHuman(r)
	}
	if r.Succeeded == 0 {
		os.Exit(1)
	}
}

func printHuman(r *load.Report) {
	fmt.Printf("maxload: %s %s %.1f/s for %.0fs (seed %d)\n",
		r.Target, r.Scenario.Process, r.Scenario.Rate, r.Scenario.DurationSec, r.Scenario.Seed)
	fmt.Printf("  offered   %6d  (%.1f/s)\n", r.Offered, r.OfferedRate)
	fmt.Printf("  started   %6d  skipped %d (client cap)\n", r.Started, r.Skipped)
	fmt.Printf("  succeeded %6d  (%.1f/s achieved)\n", r.Succeeded, r.AchievedRate)
	fmt.Printf("  shed      %6d  failed %d\n", r.Shed, r.Failed)
	l := r.Latency
	fmt.Printf("  latency   p50 %.1fms  p90 %.1fms  p95 %.1fms  p99 %.1fms  mean %.1fms  max %.1fms (n=%d)\n",
		l.P50Ms, l.P90Ms, l.P95Ms, l.P99Ms, l.MeanMs, l.MaxMs, l.Samples)
	if r.Pool != nil {
		fmt.Printf("  pool      %d hits / %d misses (%.0f%% hit rate)\n",
			r.Pool.Hits, r.Pool.Misses, r.Pool.HitRate*100)
	}
}
