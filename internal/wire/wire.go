// Package wire provides the message-framing transport shared by the
// oblivious-transfer and two-party protocol layers: length-prefixed
// messages over any io.ReadWriter (the TCP path between cloud server
// and client) and an in-memory pipe (the in-process path used by tests
// and single-binary examples).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
)

// MaxMessageSize bounds a single framed message (64 MiB). It protects
// against corrupt or hostile length prefixes.
const MaxMessageSize = 64 << 20

// frameHeaderSize is the length prefix each framed message carries.
const frameHeaderSize = 4

// Conn is a reliable, ordered message channel between two parties.
type Conn interface {
	// SendMsg transmits one message.
	SendMsg(msg []byte) error
	// RecvMsg receives the next message.
	RecvMsg() ([]byte, error)
	// Close releases the channel. Further operations fail.
	Close() error
}

// streamConn frames messages over a byte stream with a 4-byte
// big-endian length prefix.
type streamConn struct {
	rw io.ReadWriter
	mu sync.Mutex // serialises writers
}

// NewStreamConn wraps a byte stream (e.g. a *net.TCPConn) as a Conn.
// Closing the Conn closes the underlying stream when it implements
// io.Closer.
func NewStreamConn(rw io.ReadWriter) Conn { return &streamConn{rw: rw} }

func (c *streamConn) SendMsg(msg []byte) error {
	if len(msg) > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds limit %d", len(msg), MaxMessageSize)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := c.rw.Write(msg); err != nil {
		return fmt.Errorf("wire: writing frame body: %w", err)
	}
	return nil
}

func (c *streamConn) RecvMsg() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxMessageSize)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(c.rw, msg); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return msg, nil
}

func (c *streamConn) Close() error {
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// ErrClosed is returned by pipe operations after Close.
var ErrClosed = errors.New("wire: connection closed")

// pipeCloser is the close signal shared by both ends of a pipe:
// closing either end tears down the whole channel.
type pipeCloser struct {
	done chan struct{}
	once sync.Once
}

func (c *pipeCloser) close() { c.once.Do(func() { close(c.done) }) }

// pipeConn is one end of an in-memory duplex message channel.
type pipeConn struct {
	send   chan<- []byte
	recv   <-chan []byte
	closer *pipeCloser
}

// Pipe returns two connected in-memory Conns. Messages sent on one end
// are received on the other, in order. The buffer depth keeps
// ping-pong protocols from deadlocking when both parties run in the
// same goroutine for short exchanges.
func Pipe() (Conn, Conn) {
	ab := make(chan []byte, 1024)
	ba := make(chan []byte, 1024)
	closer := &pipeCloser{done: make(chan struct{})}
	a := &pipeConn{send: ab, recv: ba, closer: closer}
	b := &pipeConn{send: ba, recv: ab, closer: closer}
	return a, b
}

func (p *pipeConn) SendMsg(msg []byte) error {
	cp := append([]byte(nil), msg...)
	select {
	case <-p.closer.done:
		return ErrClosed
	default:
	}
	select {
	case p.send <- cp:
		return nil
	case <-p.closer.done:
		return ErrClosed
	}
}

func (p *pipeConn) RecvMsg() ([]byte, error) {
	select {
	case msg, ok := <-p.recv:
		if !ok {
			return nil, ErrClosed
		}
		return msg, nil
	case <-p.closer.done:
		// Drain any message that raced with Close.
		select {
		case msg, ok := <-p.recv:
			if ok {
				return msg, nil
			}
		default:
		}
		return nil, ErrClosed
	}
}

func (p *pipeConn) Close() error {
	p.closer.close()
	return nil
}

// Counting wraps a Conn and tallies traffic, used by the benchmarks to
// report protocol communication volume.
type Counting struct {
	Conn
	mu             sync.Mutex
	sent, received int64
	sentMsgs       int64
	recvMsgs       int64
}

// NewCounting wraps conn with byte and message counters.
func NewCounting(conn Conn) *Counting { return &Counting{Conn: conn} }

// SendMsg implements Conn.
func (c *Counting) SendMsg(msg []byte) error {
	err := c.Conn.SendMsg(msg)
	if err == nil {
		c.mu.Lock()
		c.sent += int64(len(msg))
		c.sentMsgs++
		c.mu.Unlock()
	}
	return err
}

// RecvMsg implements Conn.
func (c *Counting) RecvMsg() ([]byte, error) {
	msg, err := c.Conn.RecvMsg()
	if err == nil {
		c.mu.Lock()
		c.received += int64(len(msg))
		c.recvMsgs++
		c.mu.Unlock()
	}
	return msg, err
}

// Totals returns bytes and messages sent and received so far.
func (c *Counting) Totals() (sentBytes, recvBytes, sentMsgs, recvMsgs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.received, c.sentMsgs, c.recvMsgs
}

// observedConn reports per-message wire volume to callbacks. Unlike
// Counting it charges the 4-byte frame header too, so the totals match
// what actually crosses the transport.
type observedConn struct {
	Conn
	onSend, onRecv func(bytes int)
}

// Observed wraps conn so every successful send/receive reports its
// framed byte count (payload + header) to the given callbacks — the
// hook the daemon uses to feed per-connection traffic into its metrics
// registry. Nil callbacks are allowed.
func Observed(conn Conn, onSend, onRecv func(bytes int)) Conn {
	return &observedConn{Conn: conn, onSend: onSend, onRecv: onRecv}
}

func (c *observedConn) SendMsg(msg []byte) error {
	err := c.Conn.SendMsg(msg)
	if err == nil && c.onSend != nil {
		c.onSend(len(msg) + frameHeaderSize)
	}
	return err
}

func (c *observedConn) RecvMsg() ([]byte, error) {
	msg, err := c.Conn.RecvMsg()
	if err == nil && c.onRecv != nil {
		c.onRecv(len(msg) + frameHeaderSize)
	}
	return msg, err
}

// remoteAddrer is satisfied by net.Conn transports.
type remoteAddrer interface{ RemoteAddr() net.Addr }

// PeerAddr reports the remote address of the transport underlying c,
// unwrapping counting/observing wrappers. It returns "" for in-memory
// pipes and other address-less transports.
func PeerAddr(c Conn) string {
	switch v := c.(type) {
	case *streamConn:
		if ra, ok := v.rw.(remoteAddrer); ok {
			return ra.RemoteAddr().String()
		}
	case *observedConn:
		return PeerAddr(v.Conn)
	case *Counting:
		return PeerAddr(v.Conn)
	}
	return ""
}

// IsDisconnect reports whether err is one of the transport-level
// "peer went away" errors — a closed pipe or socket, an EOF on a frame
// boundary, or a reset — as opposed to a protocol-level failure.
// Callers use it to tell an orderly hangup apart from stream
// corruption.
func IsDisconnect(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	return errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}
