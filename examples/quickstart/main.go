// Quickstart: a privacy-preserving dot product on the MAXelerator
// accelerator simulator.
//
// The cloud server holds the model vector x, the client holds the data
// vector a. The accelerator garbles one sequential MAC round per
// element (the paper's outer loop); the evaluator computes the garbled
// circuit and learns only the final accumulator — neither party sees
// the other's vector.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"maxelerator/internal/core"
	"maxelerator/internal/report"
)

func main() {
	// A 16-bit signed accelerator with one MAC unit — 14 GC cores per
	// Table 2 — on the modelled VCU108.
	acc, err := core.New(core.Config{Width: 16, AccWidth: 48, Signed: true})
	if err != nil {
		log.Fatal(err)
	}

	serverModel := []int64{120, -75, 310, 42, -256, 99}
	clientData := []int64{13, 8, -5, 101, 7, -22}

	result, stats, err := acc.SecureDotProduct(serverModel, clientData)
	if err != nil {
		log.Fatal(err)
	}

	var plain int64
	for i := range serverModel {
		plain += serverModel[i] * clientData[i]
	}

	fmt.Println("MAXelerator quickstart — privacy-preserving MAC")
	fmt.Printf("  server model vector : %v (private to server)\n", serverModel)
	fmt.Printf("  client data vector  : %v (private to client)\n", clientData)
	fmt.Printf("  secure dot product  : %d\n", result)
	fmt.Printf("  plaintext check     : %d\n", plain)
	fmt.Println()
	fmt.Println("accelerator model (one MAC unit, 200 MHz VCU108):")
	fmt.Printf("  GC cores            : %d (b/2 MUX_ADD + ⌈(b/2+8)/3⌉ TREE)\n", acc.Schedule().NumCores())
	fmt.Printf("  MAC rounds          : %d\n", stats.MACs)
	fmt.Printf("  clock cycles        : %d (%s on FPGA)\n", stats.Cycles, report.Dur(stats.ModeledTime))
	fmt.Printf("  garbled tables      : %d functional (%d scheduled by the FSM)\n", stats.TablesGarbled, stats.TablesScheduled)
	fmt.Printf("  table traffic       : %d bytes (PCIe drain %s)\n", stats.TableBytes, report.Dur(stats.PCIeTime))
	fmt.Printf("  core utilisation    : %.1f%%\n", 100*stats.CoreUtilization)
	fmt.Printf("  throughput          : %s MAC/s, %s MAC/s per core\n",
		report.Sci(acc.Simulator().ThroughputMACsPerSec()),
		report.Sci(acc.Simulator().ThroughputPerCoreMACsPerSec()))

	if result != plain {
		log.Fatalf("MISMATCH: secure %d != plaintext %d", result, plain)
	}
	fmt.Println("\nsecure result matches plaintext ✓")
}
