package circuit

import "sort"

// Optimize returns a semantically equivalent circuit with dead gates
// removed and structurally identical gates merged (common
// subexpression elimination). Garbling cost is proportional to the
// AND count, so netlist hygiene translates directly into fewer
// encryption operations and smaller garbled tables; the builder's
// local constant folding cannot catch duplicates created by separate
// generator calls, which this global pass does.
//
// The pass preserves the circuit interface exactly: input counts,
// state wiring and output order are unchanged.
func Optimize(c *Circuit) *Circuit {
	inputSpan := FirstInput + c.NGarbler + c.NEvaluator + c.NState

	// Structural hashing: map each gate to a canonical key; gates with
	// equal keys compute equal functions (inputs are canonicalised
	// first, XOR/AND are commutative).
	canon := make([]int, c.NWires)
	for i := 0; i < inputSpan; i++ {
		canon[i] = i
	}
	type key struct {
		op   Op
		a, b int
	}
	seen := make(map[key]int)
	keep := make([]Gate, 0, len(c.Gates))
	gateOf := make(map[int]int) // canonical wire -> index in keep
	for _, g := range c.Gates {
		a, b := canon[g.A], canon[g.B]
		if a > b {
			a, b = b, a
		}
		// Algebraic folds on canonical operands.
		switch {
		case g.Op == XOR && a == b:
			canon[g.Out] = Const0
			continue
		case g.Op == XOR && a == Const0:
			canon[g.Out] = b
			continue
		case g.Op == AND && a == b:
			canon[g.Out] = a
			continue
		case g.Op == AND && a == Const0:
			canon[g.Out] = Const0
			continue
		case g.Op == AND && a == Const1:
			canon[g.Out] = b
			continue
		}
		k := key{op: g.Op, a: a, b: b}
		if w, ok := seen[k]; ok {
			canon[g.Out] = w
			continue
		}
		seen[k] = g.Out
		canon[g.Out] = g.Out
		gateOf[g.Out] = len(keep)
		keep = append(keep, Gate{Op: g.Op, A: a, B: b, Out: g.Out})
	}

	// Liveness from outputs and state-outs backwards.
	live := make(map[int]bool)
	var stack []int
	mark := func(w int) {
		w = canon[w]
		if w >= inputSpan && !live[w] {
			live[w] = true
			stack = append(stack, w)
		}
	}
	for _, w := range c.Outputs {
		mark(w)
	}
	for _, w := range c.StateOuts {
		mark(w)
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g := keep[gateOf[w]]
		mark(g.A)
		mark(g.B)
	}

	// Renumber surviving gates densely, preserving topological order.
	liveWires := make([]int, 0, len(live))
	for w := range live {
		liveWires = append(liveWires, w)
	}
	sort.Ints(liveWires)
	remap := make(map[int]int, len(liveWires)+inputSpan)
	for i := 0; i < inputSpan; i++ {
		remap[i] = i
	}
	next := inputSpan
	var gates []Gate
	for _, g := range keep {
		if !live[g.Out] {
			continue
		}
		ng := Gate{Op: g.Op, A: remap[canon[g.A]], B: remap[canon[g.B]], Out: next}
		remap[g.Out] = next
		next++
		gates = append(gates, ng)
	}

	out := &Circuit{
		NGarbler:   c.NGarbler,
		NEvaluator: c.NEvaluator,
		NState:     c.NState,
		Gates:      gates,
		Outputs:    make([]int, len(c.Outputs)),
		StateOuts:  make([]int, len(c.StateOuts)),
		NWires:     next,
	}
	for i, w := range c.Outputs {
		out.Outputs[i] = remap[canon[w]]
	}
	for i, w := range c.StateOuts {
		out.StateOuts[i] = remap[canon[w]]
	}
	return out
}
