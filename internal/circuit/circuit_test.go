package circuit

import (
	"testing"
	"testing/quick"
)

func evalBits(t *testing.T, c *Circuit, g, e []bool) []bool {
	t.Helper()
	out, err := c.Eval(g, e)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBuilderXORTruthTable(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.XOR(x[0], y[0]))
	c := b.MustBuild()
	for _, u := range []bool{false, true} {
		for _, v := range []bool{false, true} {
			got := evalBits(t, c, []bool{u}, []bool{v})[0]
			if got != (u != v) {
				t.Fatalf("XOR(%v,%v)=%v", u, v, got)
			}
		}
	}
}

func TestBuilderANDTruthTable(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.AND(x[0], y[0]))
	c := b.MustBuild()
	for _, u := range []bool{false, true} {
		for _, v := range []bool{false, true} {
			got := evalBits(t, c, []bool{u}, []bool{v})[0]
			if got != (u && v) {
				t.Fatalf("AND(%v,%v)=%v", u, v, got)
			}
		}
	}
}

func TestBuilderNOTAndOR(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.NOT(x[0]), b.OR(x[0], y[0]))
	c := b.MustBuild()
	for _, u := range []bool{false, true} {
		for _, v := range []bool{false, true} {
			out := evalBits(t, c, []bool{u}, []bool{v})
			if out[0] != !u {
				t.Fatalf("NOT(%v)=%v", u, out[0])
			}
			if out[1] != (u || v) {
				t.Fatalf("OR(%v,%v)=%v", u, v, out[1])
			}
		}
	}
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(1)
	b.EvaluatorInputs(0)
	if got := b.XOR(x[0], Const0); got != x[0] {
		t.Fatal("XOR with const0 not folded to identity")
	}
	if got := b.AND(x[0], Const0); got != Const0 {
		t.Fatal("AND with const0 not folded to zero")
	}
	if got := b.AND(x[0], Const1); got != x[0] {
		t.Fatal("AND with const1 not folded to identity")
	}
	if len(b.gates) != 0 {
		t.Fatalf("folding still emitted %d gates", len(b.gates))
	}
}

func TestValidateCatchesNonTopological(t *testing.T) {
	c := &Circuit{
		NGarbler: 1, NEvaluator: 0, NWires: 5,
		Gates: []Gate{
			{Op: AND, A: 2, B: 4, Out: 3}, // reads wire 4 before defined
			{Op: XOR, A: 2, B: 2, Out: 4},
		},
		Outputs: []int{3},
	}
	if err := c.Validate(); err == nil {
		t.Fatal("non-topological circuit validated")
	}
}

func TestValidateCatchesRedefinition(t *testing.T) {
	c := &Circuit{
		NGarbler: 1, NEvaluator: 0, NWires: 4,
		Gates: []Gate{
			{Op: XOR, A: 2, B: 2, Out: 3},
			{Op: XOR, A: 2, B: 2, Out: 3},
		},
		Outputs: []int{3},
	}
	if err := c.Validate(); err == nil {
		t.Fatal("double-assignment circuit validated")
	}
}

func TestValidateCatchesBadOutput(t *testing.T) {
	c := &Circuit{NGarbler: 1, NEvaluator: 0, NWires: 3, Outputs: []int{99}}
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range output validated")
	}
}

func TestValidateCatchesStateMismatch(t *testing.T) {
	c := &Circuit{NGarbler: 1, NEvaluator: 0, NState: 2, NWires: 5, Outputs: []int{2}, StateOuts: []int{2}}
	if err := c.Validate(); err == nil {
		t.Fatal("state-width mismatch validated")
	}
}

func TestBuildRequiresOutputs(t *testing.T) {
	b := NewBuilder()
	b.GarblerInputs(1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build without outputs succeeded")
	}
}

func TestInputOrderEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("garbler inputs after evaluator inputs did not panic")
		}
	}()
	b := NewBuilder()
	b.EvaluatorInputs(1)
	b.GarblerInputs(1)
}

func TestStateAfterGatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("state inputs after gates did not panic")
		}
	}()
	b := NewBuilder()
	x := b.GarblerInputs(2)
	b.XOR(x[0], x[1])
	b.StateInputs(1)
}

func TestStatsCountsGates(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(2)
	y := b.EvaluatorInputs(2)
	a1 := b.AND(x[0], y[0])
	a2 := b.AND(x[1], y[1])
	b.Outputs(b.XOR(a1, a2))
	c := b.MustBuild()
	s := c.Stats()
	if s.ANDs != 2 || s.XORs != 1 {
		t.Fatalf("stats = %+v, want 2 ANDs 1 XOR", s)
	}
	if s.ANDDepth != 1 {
		t.Fatalf("AND depth = %d, want 1", s.ANDDepth)
	}
}

func TestStatsANDDepthChains(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(4)
	b.EvaluatorInputs(0)
	w := x[0]
	for i := 1; i < 4; i++ {
		w = b.AND(w, x[i])
	}
	b.Outputs(w)
	c := b.MustBuild()
	if d := c.Stats().ANDDepth; d != 3 {
		t.Fatalf("AND depth = %d, want 3", d)
	}
}

func TestEvalRejectsWrongInputWidths(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(2)
	b.EvaluatorInputs(1)
	b.Outputs(x[0])
	c := b.MustBuild()
	if _, err := c.Eval([]bool{true}, []bool{true}); err == nil {
		t.Fatal("short garbler input accepted")
	}
	if _, err := c.Eval([]bool{true, false}, nil); err == nil {
		t.Fatal("missing evaluator input accepted")
	}
}

func TestEvalOnSequentialCircuitErrors(t *testing.T) {
	c := MustMAC(MACConfig{Width: 4, AccWidth: 8})
	if _, err := c.Eval(make([]bool, 4), make([]bool, 4)); err == nil {
		t.Fatal("Eval on sequential circuit did not error")
	}
}

func TestSequentialCounterAccumulates(t *testing.T) {
	// A 4-bit counter: state ← state + garbler input each round.
	b := NewBuilder()
	inc := b.GarblerInputs(4)
	b.EvaluatorInputs(0)
	st := b.StateInputs(4)
	next := b.Add(st, inc)
	b.StateOuts(next...)
	b.OutputWord(next)
	c := b.MustBuild()

	var state []bool
	var sum uint64
	for round := 0; round < 10; round++ {
		in := uint64(round % 5)
		sum = (sum + in) % 16
		out, next, err := c.EvalRound(Uint64ToBits(in, 4), nil, state)
		if err != nil {
			t.Fatal(err)
		}
		if got := BitsToUint64(out); got != sum {
			t.Fatalf("round %d: counter = %d, want %d", round, got, sum)
		}
		state = next
	}
}

func TestWirePanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range wire did not panic")
		}
	}()
	b := NewBuilder()
	b.GarblerInputs(1)
	b.XOR(0, 999)
}

func TestOpString(t *testing.T) {
	if XOR.String() != "XOR" || AND.String() != "AND" {
		t.Fatal("op mnemonics wrong")
	}
	if Op(7).String() != "Op(7)" {
		t.Fatal("unknown op formatting wrong")
	}
}

func TestBitCodecRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		return BitsToUint64(Uint64ToBits(v, 64)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(v int64) bool {
		return BitsToInt64(Int64ToBits(v, 64)) == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitCodecSignExtension(t *testing.T) {
	if got := BitsToInt64(Int64ToBits(-3, 8)); got != -3 {
		t.Fatalf("8-bit round trip of -3 = %d", got)
	}
	if got := BitsToInt64(Int64ToBits(-128, 8)); got != -128 {
		t.Fatalf("8-bit round trip of -128 = %d", got)
	}
	if got := BitsToUint64(Uint64ToBits(0xAB, 8)); got != 0xAB {
		t.Fatalf("8-bit unsigned round trip = %#x", got)
	}
}
