package ot

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"maxelerator/internal/wire"
)

// Kappa is the computational security parameter: the number of base
// OTs and the column count of the IKNP extension matrix.
const Kappa = 128

// prgStream builds the column PRG: AES-128 in counter mode keyed by a
// 16-byte base-OT seed. Both parties expand the same seed to the same
// pad stream, consuming equal amounts per batch.
func prgStream(seed Message) (cipher.Stream, error) {
	blk, err := aes.NewCipher(seed[:])
	if err != nil {
		return nil, fmt.Errorf("ot: building PRG: %w", err)
	}
	var iv [aes.BlockSize]byte
	return cipher.NewCTR(blk, iv[:]), nil
}

func nextPad(s cipher.Stream, n int) []byte {
	buf := make([]byte, n)
	s.XORKeyStream(buf, buf)
	return buf
}

// rowHash is the IKNP row-breaking hash H(j, q) truncated to one
// message. The index j is global across batches so pads never repeat.
func rowHash(index uint64, row Message) Message {
	h := sha256.New()
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], index)
	h.Write(idx[:])
	h.Write(row[:])
	var out Message
	copy(out[:], h.Sum(nil))
	return out
}

// ExtensionSender is the message-pair holder (in GC terms: the
// garbler) of an IKNP session. After the one-time base phase it can
// send any number of batches with symmetric crypto only.
type ExtensionSender struct {
	conn    wire.Conn
	s       [Kappa]bool
	sPacked Message
	columns [Kappa]cipher.Stream
	index   uint64
}

// NewExtensionSender runs the base phase: the extension sender acts as
// base-OT *receiver* with κ random choice bits, obtaining one PRG seed
// per column.
func NewExtensionSender(conn wire.Conn, rnd io.Reader) (*ExtensionSender, error) {
	es := &ExtensionSender{conn: conn}
	var sByte Message
	if _, err := io.ReadFull(rnd, sByte[:]); err != nil {
		return nil, fmt.Errorf("ot: drawing extension secret: %w", err)
	}
	es.sPacked = sByte
	choices := make([]bool, Kappa)
	for i := range choices {
		choices[i] = sByte[i/8]>>(uint(i)%8)&1 == 1
		es.s[i] = choices[i]
	}
	seeds, err := BaseReceive(conn, rnd, choices)
	if err != nil {
		return nil, fmt.Errorf("ot: extension base phase (sender): %w", err)
	}
	for i, seed := range seeds {
		st, err := prgStream(seed)
		if err != nil {
			return nil, err
		}
		es.columns[i] = st
	}
	return es, nil
}

// Send transfers one batch of message pairs; the connected receiver
// must call Receive with the same batch size.
func (es *ExtensionSender) Send(pairs [][2]Message) error {
	m := len(pairs)
	if m == 0 {
		return nil
	}
	mBytes := (m + 7) / 8

	u, err := es.conn.RecvMsg()
	if err != nil {
		return fmt.Errorf("ot: extension sender reading u matrix: %w", err)
	}
	if len(u) != Kappa*mBytes {
		return fmt.Errorf("ot: extension sender got %d u bytes, want %d", len(u), Kappa*mBytes)
	}

	// q_i = PRG(k_i^{s_i}) ⊕ s_i·u_i, so row j is t_j ⊕ r_j·s.
	q := make([][]byte, Kappa)
	for i := 0; i < Kappa; i++ {
		col := nextPad(es.columns[i], mBytes)
		if es.s[i] {
			ui := u[i*mBytes : (i+1)*mBytes]
			for k := range col {
				col[k] ^= ui[k]
			}
		}
		q[i] = col
	}

	out := make([]byte, 0, 32*m)
	for j := 0; j < m; j++ {
		var row Message
		for i := 0; i < Kappa; i++ {
			if q[i][j/8]>>(uint(j)%8)&1 == 1 {
				row[i/8] |= 1 << (uint(i) % 8)
			}
		}
		idx := es.index + uint64(j)
		y0 := xorMsg(pairs[j][0], rowHash(idx, row))
		y1 := xorMsg(pairs[j][1], rowHash(idx, xorMsg(row, es.sPacked)))
		out = append(out, y0[:]...)
		out = append(out, y1[:]...)
	}
	es.index += uint64(m)
	if err := es.conn.SendMsg(out); err != nil {
		return fmt.Errorf("ot: extension sender shipping ciphertexts: %w", err)
	}
	return nil
}

// ExtensionReceiver is the choice-bit holder (the GC evaluator) of an
// IKNP session.
type ExtensionReceiver struct {
	conn  wire.Conn
	col0  [Kappa]cipher.Stream
	col1  [Kappa]cipher.Stream
	index uint64
	rnd   io.Reader
}

// NewExtensionReceiver runs the base phase: the extension receiver
// acts as base-OT *sender* with κ random seed pairs.
func NewExtensionReceiver(conn wire.Conn, rnd io.Reader) (*ExtensionReceiver, error) {
	er := &ExtensionReceiver{conn: conn, rnd: rnd}
	seedPairs := make([][2]Message, Kappa)
	for i := range seedPairs {
		if _, err := io.ReadFull(rnd, seedPairs[i][0][:]); err != nil {
			return nil, fmt.Errorf("ot: drawing seed: %w", err)
		}
		if _, err := io.ReadFull(rnd, seedPairs[i][1][:]); err != nil {
			return nil, fmt.Errorf("ot: drawing seed: %w", err)
		}
	}
	if err := BaseSend(conn, rnd, seedPairs); err != nil {
		return nil, fmt.Errorf("ot: extension base phase (receiver): %w", err)
	}
	for i := range seedPairs {
		s0, err := prgStream(seedPairs[i][0])
		if err != nil {
			return nil, err
		}
		s1, err := prgStream(seedPairs[i][1])
		if err != nil {
			return nil, err
		}
		er.col0[i] = s0
		er.col1[i] = s1
	}
	return er, nil
}

// Receive obtains the chosen message of each pair in one batch.
func (er *ExtensionReceiver) Receive(choices []bool) ([]Message, error) {
	m := len(choices)
	if m == 0 {
		return nil, nil
	}
	mBytes := (m + 7) / 8

	r := make([]byte, mBytes)
	for j, c := range choices {
		if c {
			r[j/8] |= 1 << (uint(j) % 8)
		}
	}

	t := make([][]byte, Kappa)
	u := make([]byte, 0, Kappa*mBytes)
	for i := 0; i < Kappa; i++ {
		t[i] = nextPad(er.col0[i], mBytes)
		pad1 := nextPad(er.col1[i], mBytes)
		ui := make([]byte, mBytes)
		for k := range ui {
			ui[k] = t[i][k] ^ pad1[k] ^ r[k]
		}
		u = append(u, ui...)
	}
	if err := er.conn.SendMsg(u); err != nil {
		return nil, fmt.Errorf("ot: extension receiver sending u matrix: %w", err)
	}

	cts, err := er.conn.RecvMsg()
	if err != nil {
		return nil, fmt.Errorf("ot: extension receiver reading ciphertexts: %w", err)
	}
	if len(cts) != 32*m {
		return nil, fmt.Errorf("ot: extension receiver got %d ciphertext bytes, want %d", len(cts), 32*m)
	}

	out := make([]Message, m)
	for j := 0; j < m; j++ {
		var row Message
		for i := 0; i < Kappa; i++ {
			if t[i][j/8]>>(uint(j)%8)&1 == 1 {
				row[i/8] |= 1 << (uint(i) % 8)
			}
		}
		idx := er.index + uint64(j)
		var e Message
		off := 32 * j
		if choices[j] {
			off += 16
		}
		copy(e[:], cts[off:off+16])
		out[j] = xorMsg(e, rowHash(idx, row))
	}
	er.index += uint64(m)
	return out, nil
}
