// Package maxelerator_test is the benchmark harness that regenerates
// every table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`). Each benchmark reports the paper's
// metric as a custom unit next to the Go timing, and the reproduced
// artefact itself is printed by cmd/maxbench.
package maxelerator_test

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"testing"

	"maxelerator/internal/casestudy"
	"maxelerator/internal/circuit"
	"maxelerator/internal/core"
	"maxelerator/internal/fpga"
	"maxelerator/internal/gc"
	"maxelerator/internal/gchash"
	"maxelerator/internal/label"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/overlay"
	"maxelerator/internal/paper"
	"maxelerator/internal/protocol"
	"maxelerator/internal/rng"
	"maxelerator/internal/sched"
	"maxelerator/internal/seqgc"
	"maxelerator/internal/serial"
	"maxelerator/internal/tinygarble"
	"maxelerator/internal/wire"
)

// BenchmarkTable1ResourceUsage regenerates Table 1: the fabric cost of
// one MAC unit per bit-width, reported as custom metrics next to the
// model-evaluation time.
// clientRun is one Dial + Do + Close over a fresh connection — the
// single-request convenience the protocol package used to export.
func clientRun(c *protocol.Client, conn wire.Conn, y []int64) ([]int64, error) {
	cs, err := c.Dial(conn)
	if err != nil {
		return nil, err
	}
	out, err := cs.Do(y)
	if err != nil {
		return nil, err
	}
	if err := cs.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

func BenchmarkTable1ResourceUsage(b *testing.B) {
	for _, width := range paper.Widths {
		b.Run(fmt.Sprintf("b=%d", width), func(b *testing.B) {
			var r fpga.Resources
			var err error
			for i := 0; i < b.N; i++ {
				r, err = fpga.MACUnitResources(width)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.LUT), "LUTs")
			b.ReportMetric(float64(r.LUTRAM), "LUTRAMs")
			b.ReportMetric(float64(r.FlipFlop), "FFs")
			b.ReportMetric(paper.Table1[width].LUT, "paper-LUTs")
		})
	}
}

// BenchmarkTable2Throughput regenerates Table 2. The software rows are
// measured live on this host (real garbling); the MAXelerator rows
// garble functionally through the simulator and report the modelled
// hardware throughput; the overlay rows evaluate the calibrated cost
// model.
func BenchmarkTable2Throughput(b *testing.B) {
	for _, width := range paper.Widths {
		b.Run(fmt.Sprintf("software/b=%d", width), func(b *testing.B) {
			f, err := tinygarble.New(width)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			st, err := f.GarbleMACRounds(b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.ThroughputMACsPerSec(), "MAC/s")
			b.ReportMetric(paper.TinyGarble.PerCoreMACs[width], "paper-MAC/s/core")
		})
		b.Run(fmt.Sprintf("overlay-model/b=%d", width), func(b *testing.B) {
			m := overlay.NewModel()
			var perCore float64
			for i := 0; i < b.N; i++ {
				var err error
				perCore, err = m.PerCoreMACsPerSec(width)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(perCore, "MAC/s/core")
			b.ReportMetric(paper.Overlay.PerCoreMACs[width], "paper-MAC/s/core")
		})
		b.Run(fmt.Sprintf("maxelerator-sim/b=%d", width), func(b *testing.B) {
			sim, err := maxsim.New(maxsim.Config{Width: width})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]int64, 8)
			for i := range x {
				x[i] = int64(i + 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var run *maxsim.DotProductRun
			for i := 0; i < b.N; i++ {
				run, err = sim.GarbleDotProduct(x)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(sim.ThroughputMACsPerSec(), "model-MAC/s")
			b.ReportMetric(sim.ThroughputPerCoreMACsPerSec(), "model-MAC/s/core")
			b.ReportMetric(paper.MAXelerator.PerCoreMACs[width], "paper-MAC/s/core")
			b.ReportMetric(float64(run.Stats.Cycles)/float64(run.Stats.MACs), "model-cycles/MAC")
		})
	}
}

// BenchmarkTable3RidgeRegression regenerates Table 3's runtime model.
func BenchmarkTable3RidgeRegression(b *testing.B) {
	var rows []casestudy.RidgeResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = casestudy.Ridge(casestudy.PaperSpeedup32().Factor())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ModeledImprovement, r.Dataset.Name+"-×")
	}
}

// BenchmarkFig1EndToEnd runs the full Fig. 1 system — handshake, IKNP
// OT (including the DH base phase), garbled-table streaming and
// evaluation — over an in-memory pipe.
func BenchmarkFig1EndToEnd(b *testing.B) {
	x := []int64{3, -5, 7, 11}
	y := []int64{2, 4, -6, 8}
	want := int64(3*2 - 5*4 - 7*6 + 11*8)
	srv, err := protocol.NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		b.Fatal(err)
	}
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca, cb := wire.Pipe()
		var wg sync.WaitGroup
		var srvErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, srvErr = srv.Serve(ca, protocol.Request{Matrix: [][]int64{x}})
		}()
		got, err := clientRun(cli, cb, y)
		wg.Wait()
		if err != nil || srvErr != nil {
			b.Fatal(err, srvErr)
		}
		if got[0] != want {
			b.Fatalf("end-to-end result %d, want %d", got[0], want)
		}
		ca.Close()
		cb.Close()
	}
}

// BenchmarkFig2TreeSchedule regenerates the Fig. 2 dataflow: schedule
// compilation plus the tree rendering.
func BenchmarkFig2TreeSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := sched.Build(8)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.RenderTree()) == 0 {
			b.Fatal("empty rendering")
		}
	}
	s := sched.MustBuild(8)
	b.ReportMetric(float64(s.LatencyStages()), "latency-stages")
	b.ReportMetric(float64(s.StagesPerMAC()), "stages/MAC")
}

// BenchmarkFig3MuxAddUtilisation regenerates the Fig. 3 stage grid and
// reports the core-utilisation invariants.
func BenchmarkFig3MuxAddUtilisation(b *testing.B) {
	for _, width := range paper.Widths {
		b.Run(fmt.Sprintf("b=%d", width), func(b *testing.B) {
			var s *sched.Schedule
			var err error
			for i := 0; i < b.N; i++ {
				s, err = sched.Build(width)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.NumCores()), "cores")
			b.ReportMetric(float64(s.IdleSlotsPerStage()), "idle-slots")
			b.ReportMetric(float64(s.TablesPerStage()), "tables/stage")
		})
	}
}

// BenchmarkPerformanceAnalysisSweep exercises the §4.3 formulas across
// a width sweep wider than the paper's.
func BenchmarkPerformanceAnalysisSweep(b *testing.B) {
	widths := []int{4, 8, 16, 32, 64, 128}
	for i := 0; i < b.N; i++ {
		for _, w := range widths {
			s, err := sched.Build(w)
			if err != nil {
				b.Fatal(err)
			}
			if s.IdleSlotsPerStage() > 2 {
				b.Fatalf("b=%d: %d idle slots", w, s.IdleSlotsPerStage())
			}
		}
	}
}

// BenchmarkCaseRecommendation regenerates the §6 recommendation study.
func BenchmarkCaseRecommendation(b *testing.B) {
	var res casestudy.RecommendationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = casestudy.Recommendation(casestudy.PaperSpeedup32().Factor())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AcceleratedPerIter.Hours(), "hours/iter")
	b.ReportMetric(res.ImprovementPct, "improvement-%")
}

// BenchmarkCasePortfolio regenerates the §6 portfolio study and also
// runs one real secure quadratic-form round through the simulator.
func BenchmarkCasePortfolio(b *testing.B) {
	b.Run("model", func(b *testing.B) {
		var m casestudy.PortfolioModel
		var err error
		for i := 0; i < b.N; i++ {
			m, err = casestudy.Portfolio(casestudy.PaperSpeedup32())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(m.SoftwareTime.Seconds(), "tinygarble-s")
		b.ReportMetric(m.AcceleratedTime.Seconds(), "maxelerator-s")
	})
	b.Run("secure-round", func(b *testing.B) {
		sim, err := maxsim.New(maxsim.Config{Width: 16, AccWidth: 48, Signed: true})
		if err != nil {
			b.Fatal(err)
		}
		cov := []int64{512, 64, 64, 256} // flattened 2×2 fixed-point cov
		w := []int64{128, 64}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// cov·wᵀ: two dot products, then w·(cov·wᵀ): one more.
			r1, err := sim.GarbleDotProduct(cov[:2])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := maxsim.EvaluateDotProduct(sim.Config().Params, sim.Circuit(), r1, w, 16, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRNG exercises the simulated ring-oscillator entropy source
// (§5.2) and asserts the battery still passes.
func BenchmarkRNG(b *testing.B) {
	r := rng.MustNew(rng.Config{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Bit()
	}
	b.StopTimer()
	if !rng.BatteryPasses(rng.MustNew(rng.Config{Seed: 2}).Bits(20000)) {
		b.Fatal("RO RNG failed the statistical battery")
	}
}

// BenchmarkAblationGarblingSchemes quantifies what each GC
// optimisation buys: garbled-table size and garbling cost per scheme
// (design decision 1 of DESIGN.md).
func BenchmarkAblationGarblingSchemes(b *testing.B) {
	ckt, err := circuit.MACCombinational(circuit.MACConfig{Width: 8, AccWidth: 16})
	if err != nil {
		b.Fatal(err)
	}
	gIn := make([]bool, ckt.NGarbler)
	for _, scheme := range []gc.Scheme{gc.HalfGates{}, gc.GRR3{}, gc.FourRow{}} {
		b.Run(scheme.Name(), func(b *testing.B) {
			params := gc.Params{Hash: gchash.MustAES(), Scheme: scheme}
			g, err := gc.NewGarbler(params, label.MustSystemDRBG())
			if err != nil {
				b.Fatal(err)
			}
			var bytes int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gb, err := g.Garble(ckt, gc.GarbleOptions{GarblerInputs: gIn})
				if err != nil {
					b.Fatal(err)
				}
				bytes = gb.Material.CiphertextBytes()
			}
			b.ReportMetric(float64(bytes), "table-bytes")
			b.ReportMetric(float64(scheme.TableSize()), "rows/AND")
		})
	}
}

// BenchmarkAblationMultiplier compares the tree and serial multiplier
// netlists (design decision 2): same AND count, different schedulable
// parallelism under an ASAP engine.
func BenchmarkAblationMultiplier(b *testing.B) {
	for _, serial := range []bool{false, true} {
		name := "tree"
		if serial {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				ckt, err := circuit.MAC(circuit.MACConfig{Width: 16, AccWidth: 32, SerialMultiplier: serial})
				if err != nil {
					b.Fatal(err)
				}
				cycles, _, err = tinygarble.ASAPCycles(ckt, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cycles), "asap-cycles@8units")
		})
	}
}

// BenchmarkAblationScheduling contrasts netlist-driven execution
// (dependency stalls) with the FSM schedule (≤2 idle slots) — design
// decision 3 and the heart of the paper's architecture.
func BenchmarkAblationScheduling(b *testing.B) {
	const width = 16
	b.Run("netlist-asap", func(b *testing.B) {
		ckt, err := circuit.MAC(circuit.MACConfig{Width: width, AccWidth: 2 * width})
		if err != nil {
			b.Fatal(err)
		}
		units := sched.MustBuild(width).NumCores()
		var stalls int
		for i := 0; i < b.N; i++ {
			_, stalls, err = tinygarble.ASAPCycles(ckt, units)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stalls), "stall-cycles")
	})
	b.Run("fsm-schedule", func(b *testing.B) {
		var s *sched.Schedule
		for i := 0; i < b.N; i++ {
			s = sched.MustBuild(width)
		}
		b.ReportMetric(float64(s.IdleSlotsPerStage()), "idle-slots/stage")
	})
}

// BenchmarkAblationHash compares the fixed-key AES garbling hash with
// a SHA-256-based one (design decision 4 — the overlay baseline's
// SHA hashing is part of why it loses).
func BenchmarkAblationHash(b *testing.B) {
	for _, h := range []gchash.Hasher{gchash.MustAES(), gchash.NewSHA256()} {
		b.Run(h.Name(), func(b *testing.B) {
			ckt, err := circuit.MACCombinational(circuit.MACConfig{Width: 8, AccWidth: 16})
			if err != nil {
				b.Fatal(err)
			}
			params := gc.Params{Hash: h, Scheme: gc.HalfGates{}}
			g, err := gc.NewGarbler(params, label.MustSystemDRBG())
			if err != nil {
				b.Fatal(err)
			}
			gIn := make([]bool, ckt.NGarbler)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Garble(ckt, gc.GarbleOptions{GarblerInputs: gIn}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSerialDatapathStage garbles one stage of the bit-serial
// Fig. 2 datapath — the closest software analogue of what one FSM
// stage costs the hardware (2b AND tables).
func BenchmarkSerialDatapathStage(b *testing.B) {
	for _, width := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("b=%d", width), func(b *testing.B) {
			ckt, layout := serial.MustMAC(width)
			gs, err := seqgc.NewGarblerSession(gc.DefaultParams(), label.MustSystemDRBG(), ckt)
			if err != nil {
				b.Fatal(err)
			}
			xBits := circuit.Uint64ToBits(uint64(width), width)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gs.NextRound(xBits); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(layout.ANDsPerStage), "tables/stage")
			b.ReportMetric(float64(layout.StagesPerMAC), "stages/MAC")
			b.ReportMetric(float64(layout.StateBits), "state-bits")
		})
	}
}

// BenchmarkPCIeBottleneck runs the cycle-level trace at the paper's
// host bandwidth and at the sustainable rate — the quantitative form
// of the conclusion's communication-bottleneck caveat.
func BenchmarkPCIeBottleneck(b *testing.B) {
	sim, err := maxsim.New(maxsim.Config{Width: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		drain int
	}{
		{"paper-pcie-4B", 4},
		{"sustainable", sim.SustainableDrainBytesPerCycle()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res maxsim.TraceResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = sim.Trace(maxsim.TraceConfig{MACs: 50, DrainBytesPerCycle: tc.drain, MemoryBytesPerCore: 4096})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.StallFraction(), "stall-fraction")
			b.ReportMetric(float64(res.Cycles), "cycles")
		})
	}
}

// BenchmarkOTModes compares label-transfer traffic of plain IKNP,
// batched and correlated OT over a full protocol session.
func BenchmarkOTModes(b *testing.B) {
	for _, mode := range []struct {
		name string
		ot   protocol.OTMode
	}{
		{"per-round", protocol.OTPerRound},
		{"batched", protocol.OTBatched},
		{"correlated", protocol.OTCorrelated},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var traffic int64
			for i := 0; i < b.N; i++ {
				srv, err := protocol.NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
				if err != nil {
					b.Fatal(err)
				}
				cli, err := protocol.NewClient(rand.Reader)
				if err != nil {
					b.Fatal(err)
				}
				ca, cb := wire.Pipe()
				counted := wire.NewCounting(cb)
				var wg sync.WaitGroup
				var srvErr error
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, srvErr = srv.Serve(ca, protocol.Request{Matrix: [][]int64{{1, 2, 3, 4}}, OT: mode.ot})
				}()
				if _, err := clientRun(cli, counted, []int64{1, 1, 1, 1}); err != nil {
					b.Fatal(err)
				}
				wg.Wait()
				if srvErr != nil {
					b.Fatal(srvErr)
				}
				s, r, _, _ := counted.Totals()
				traffic = s + r
				ca.Close()
				cb.Close()
			}
			b.ReportMetric(float64(traffic), "session-bytes")
		})
	}
}

// BenchmarkParallelMatVec measures element-level scaling across MAC
// units (§6: throughput grows linearly with added cores).
func BenchmarkParallelMatVec(b *testing.B) {
	for _, units := range []int{1, 4} {
		b.Run(fmt.Sprintf("units=%d", units), func(b *testing.B) {
			acc, err := core.New(core.Config{Width: 8, AccWidth: 24, Signed: true, MACUnits: units})
			if err != nil {
				b.Fatal(err)
			}
			A := make([][]int64, 8)
			y := make([]int64, 8)
			for i := range A {
				A[i] = make([]int64, 8)
				for j := range A[i] {
					A[i][j] = int64(i + j)
				}
				y[i] = int64(i)
			}
			b.ResetTimer()
			var st core.Stats
			for i := 0; i < b.N; i++ {
				_, st, err = acc.SecureMatVecParallel(A, y)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Cycles), "model-cycles")
		})
	}
}

// BenchmarkAblationOptimizer measures what netlist hygiene buys: the
// same redundant circuit garbled raw vs after circuit.Optimize.
func BenchmarkAblationOptimizer(b *testing.B) {
	build := func() *circuit.Circuit {
		bd := circuit.NewBuilder()
		x := bd.GarblerInputs(8)
		y := bd.EvaluatorInputs(8)
		// Redundant generator calls, as a naive caller might write.
		p1 := bd.MulTreeUnsigned(x, y)
		p2 := bd.MulTreeUnsigned(x, y)
		bd.OutputWord(bd.Add(p1, p2))
		return bd.MustBuild()
	}
	for _, opt := range []bool{false, true} {
		name := "raw"
		if opt {
			name = "optimised"
		}
		b.Run(name, func(b *testing.B) {
			ckt := build()
			if opt {
				ckt = circuit.Optimize(ckt)
			}
			g, err := gc.NewGarbler(gc.DefaultParams(), label.MustSystemDRBG())
			if err != nil {
				b.Fatal(err)
			}
			gIn := make([]bool, ckt.NGarbler)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Garble(ckt, gc.GarbleOptions{GarblerInputs: gIn}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ckt.Stats().ANDs), "AND-tables")
		})
	}
}

// BenchmarkSignedSerialDatapath contrasts the Baugh–Wooley signed
// stage cost (2b+2 ANDs) against the unsigned stage (2b) — the
// design-variant finding of EXPERIMENTS.md.
func BenchmarkSignedSerialDatapath(b *testing.B) {
	for _, signed := range []bool{false, true} {
		name := "unsigned"
		if signed {
			name = "signed-baugh-wooley"
		}
		b.Run(name, func(b *testing.B) {
			var ckt *circuit.Circuit
			var layout serial.Layout
			if signed {
				ckt, layout = serial.MustMACSigned(8)
			} else {
				ckt, layout = serial.MustMAC(8)
			}
			gs, err := seqgc.NewGarblerSession(gc.DefaultParams(), label.MustSystemDRBG(), ckt)
			if err != nil {
				b.Fatal(err)
			}
			gIn := make([]bool, ckt.NGarbler)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gs.NextRound(gIn); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(layout.ANDsPerStage), "tables/stage")
		})
	}
}

// BenchmarkParallelGarbling measures the tentpole win: a 64×64 matvec
// session over an in-memory pipe with the row-garbling pool at 1
// (sequential, the pre-v2 behaviour) vs 8 workers. Batched OT keeps
// the transfer phase off the critical path so the measurement isolates
// table generation, which is what the pool parallelizes; with
// GOMAXPROCS >= 8 the 8-worker run garbles rows on all cores and wins
// by roughly the garbling share of the session (the wire format and
// the client's round-by-round evaluation are identical in both runs).
func BenchmarkParallelGarbling(b *testing.B) {
	const n = 64
	A := make([][]int64, n)
	y := make([]int64, n)
	for i := range A {
		A[i] = make([]int64, n)
		y[i] = int64(i%16 - 8)
		for j := range A[i] {
			A[i][j] = int64((i*31+j*17)%200 - 100)
		}
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv, err := protocol.NewServer(maxsim.Config{Width: 8, AccWidth: 32, Signed: true})
			if err != nil {
				b.Fatal(err)
			}
			cli, err := protocol.NewClient(rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			req := protocol.Request{Matrix: A, OT: protocol.OTBatched, GarbleWorkers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ca, cb := wire.Pipe()
				var wg sync.WaitGroup
				var srvErr error
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, srvErr = srv.Serve(ca, req)
				}()
				_, err := clientRun(cli, cb, y)
				wg.Wait()
				if err != nil || srvErr != nil {
					b.Fatal(err, srvErr)
				}
				ca.Close()
				cb.Close()
			}
			b.ReportMetric(float64(n*n)*float64(b.N)/b.Elapsed().Seconds(), "MAC/s-wall")
		})
	}
}

// BenchmarkMultiplexedSession contrasts eight requests over one
// multiplexed connection (one handshake, one base-OT + IKNP setup)
// with eight one-shot connections, and asserts the amortization
// invariant: the mux trace holds exactly one ot_setup span while every
// request keeps its own rounds and decode spans.
func BenchmarkMultiplexedSession(b *testing.B) {
	A := [][]int64{{1, 2, 3, 4}, {-5, 6, -7, 8}}
	y := []int64{1, -2, 3, -4}
	const requests = 8

	b.Run("one-shot", func(b *testing.B) {
		srv, err := protocol.NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
		if err != nil {
			b.Fatal(err)
		}
		cli, err := protocol.NewClient(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < requests; r++ {
				ca, cb := wire.Pipe()
				var wg sync.WaitGroup
				var srvErr error
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, srvErr = srv.Serve(ca, protocol.Request{Matrix: A})
				}()
				if _, err := clientRun(cli, cb, y); err != nil || srvErr != nil {
					b.Fatal(err, srvErr)
				}
				wg.Wait()
				ca.Close()
				cb.Close()
			}
		}
	})

	b.Run("mux", func(b *testing.B) {
		o := obs.New(4)
		srv, err := protocol.NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
		if err != nil {
			b.Fatal(err)
		}
		srv.WithObs(o)
		cli, err := protocol.NewClient(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ca, cb := wire.Pipe()
			var wg sync.WaitGroup
			var srvErr error
			wg.Add(1)
			go func() {
				defer wg.Done()
				sess, err := srv.NewSession(ca, protocol.SessionConfig{})
				if err != nil {
					srvErr = err
					return
				}
				defer sess.Close()
				for {
					if _, err := sess.Serve(protocol.Request{Matrix: A}); err != nil {
						if !errors.Is(err, protocol.ErrSessionEnded) {
							srvErr = err
						}
						return
					}
				}
			}()
			cs, err := cli.Dial(cb)
			if err != nil {
				b.Fatal(err)
			}
			for r := 0; r < requests; r++ {
				if _, err := cs.Do(y); err != nil {
					b.Fatal(err)
				}
			}
			if err := cs.Close(); err != nil {
				b.Fatal(err)
			}
			wg.Wait()
			if srvErr != nil {
				b.Fatal(srvErr)
			}
			ca.Close()
			cb.Close()
		}
		b.StopTimer()
		// Amortization invariant, checked on the last connection's trace.
		s := o.Traces().Recent(1)[0]
		if got := s.SpanCount("ot_setup"); got != 1 {
			b.Fatalf("ot_setup spans = %d, want exactly 1 per connection", got)
		}
		if s.SpanCount("rounds") != requests || s.SpanCount("decode") != requests {
			b.Fatalf("per-request spans incomplete: rounds=%d decode=%d", s.SpanCount("rounds"), s.SpanCount("decode"))
		}
	})
}
