package wire

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Vectored framing and pooled frame assembly for the streaming serve
// path: a garbled-row chunk is appended into an arena buffer and
// transmitted as one length-prefixed frame with a single vectored
// write, so the hot path neither allocates a per-table []byte nor
// copies the payload to glue the header on.

// vecSender is implemented by Conns that can transmit one message
// assembled from multiple segments without concatenating them first.
// SendVec (the package helper) checks for it on the Conn it is given —
// never on what that Conn wraps, so byte accounting and fault
// injection in wrapper layers keep seeing every frame.
type vecSender interface {
	SendVec(segs [][]byte) error
}

// SendVec transmits the concatenation of segs as one framed message on
// c. Conns that support vectored transmission (stream conns issue a
// single writev of header plus segments) avoid the concatenation copy;
// for any other Conn the segments are joined and sent with SendMsg, so
// the bytes on the wire are identical either way.
func SendVec(c Conn, segs [][]byte) error {
	if vs, ok := c.(vecSender); ok {
		return vs.SendVec(segs)
	}
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	buf := make([]byte, 0, n)
	for _, s := range segs {
		buf = append(buf, s...)
	}
	return c.SendMsg(buf)
}

// SendVec implements vectored framing on a byte stream: the 4-byte
// length prefix and every segment go out in one net.Buffers write —
// a single writev on a TCP transport — producing exactly the byte
// stream SendMsg would.
func (c *streamConn) SendVec(segs [][]byte) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds limit %d", total, MaxMessageSize)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(total))
	bufs := make(net.Buffers, 0, len(segs)+1)
	bufs = append(bufs, hdr[:])
	for _, s := range segs {
		if len(s) > 0 {
			bufs = append(bufs, s)
		}
	}
	if _, err := bufs.WriteTo(c.rw); err != nil {
		return fmt.Errorf("wire: writing vectored frame: %w", err)
	}
	return nil
}

// SendVec on a pipe joins the segments into the one copy SendMsg would
// have made anyway; receivers see a single message.
func (p *pipeConn) SendVec(segs [][]byte) error {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	cp := make([]byte, 0, n)
	for _, s := range segs {
		cp = append(cp, s...)
	}
	return p.sendOwned(cp)
}

// SendVec passes vectored sends through with the same byte and message
// accounting as SendMsg.
func (c *Counting) SendVec(segs [][]byte) error {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	err := SendVec(c.Conn, segs)
	if err == nil {
		c.mu.Lock()
		c.sent += int64(n)
		c.sentMsgs++
		c.mu.Unlock()
	}
	return err
}

// SendVec passes vectored sends through with the same framed-byte
// reporting as SendMsg.
func (c *observedConn) SendVec(segs [][]byte) error {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	err := SendVec(c.Conn, segs)
	if err == nil && c.onSend != nil {
		c.onSend(n + frameHeaderSize)
	}
	return err
}

// Arena is a sync.Pool-backed pool of frame-assembly buffers with
// checkout accounting: InUseBytes/Outstanding report what is currently
// held, PeakBytes the high-water mark. The serve pipeline checks one
// buffer out per in-flight chunk, so the accounting demonstrates
// O(chunk) rather than O(request) buffering.
type Arena struct {
	pool        sync.Pool
	inUse       atomic.Int64 // bytes of capacity currently checked out
	peak        atomic.Int64 // high-water mark of inUse
	outstanding atomic.Int64 // buffers currently checked out
}

// Buf is a pooled buffer checked out of an Arena. B starts empty;
// append into it, then Free it (directly or via FrameWriter) to return
// it to the pool.
type Buf struct {
	B []byte
	a *Arena
	// charged is the capacity accounted at checkout; Free credits the
	// same amount back so accounting cannot drift when append grows B.
	charged int64
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	a := &Arena{}
	a.pool.New = func() any { return &Buf{} }
	return a
}

// Get checks a buffer with at least sizeHint spare capacity out of the
// arena. The returned Buf.B has length zero.
func (a *Arena) Get(sizeHint int) *Buf {
	b := a.pool.Get().(*Buf)
	if cap(b.B) < sizeHint {
		b.B = make([]byte, 0, sizeHint)
	}
	b.B = b.B[:0]
	b.a = a
	b.charged = int64(cap(b.B))
	a.outstanding.Add(1)
	in := a.inUse.Add(b.charged)
	for {
		p := a.peak.Load()
		if in <= p || a.peak.CompareAndSwap(p, in) {
			break
		}
	}
	return b
}

// Free returns b to its arena. A second Free of the same Buf is a
// no-op, so error paths can Free unconditionally.
func (b *Buf) Free() {
	if b == nil || b.a == nil {
		return
	}
	a := b.a
	b.a = nil
	a.inUse.Add(-b.charged)
	a.outstanding.Add(-1)
	b.charged = 0
	a.pool.Put(b)
}

// InUseBytes reports the capacity currently checked out.
func (a *Arena) InUseBytes() int64 { return a.inUse.Load() }

// PeakBytes reports the checkout high-water mark since the arena was
// created.
func (a *Arena) PeakBytes() int64 { return a.peak.Load() }

// Outstanding reports how many buffers are currently checked out; a
// quiesced pipeline must report zero.
func (a *Arena) Outstanding() int64 { return a.outstanding.Load() }

// FrameWriter assembles outgoing frames in arena buffers and transmits
// them with vectored writes. It is not safe for concurrent use; the
// serve pipeline owns one per session.
//
// Usage per frame:
//
//	buf := w.Begin(sizeHint)          // pooled, empty
//	buf.B = append(buf.B, ...)        // assemble the payload in place
//	err := w.Send(buf)                // one vectored frame; buffer freed
//
// Send frees the buffer whether or not the write succeeds; abandoning
// a frame without sending requires only buf.Free().
type FrameWriter struct {
	conn  Conn
	arena *Arena
}

// NewFrameWriter returns a FrameWriter sending on conn with buffers
// from arena.
func NewFrameWriter(conn Conn, arena *Arena) *FrameWriter {
	return &FrameWriter{conn: conn, arena: arena}
}

// Begin checks an assembly buffer with at least sizeHint spare
// capacity out of the arena.
func (w *FrameWriter) Begin(sizeHint int) *Buf { return w.arena.Get(sizeHint) }

// Send transmits buf.B as one length-prefixed frame — header and
// payload in a single vectored write where the conn supports it — and
// returns the buffer to the arena in all cases.
func (w *FrameWriter) Send(buf *Buf) error {
	err := SendVec(w.conn, [][]byte{buf.B})
	buf.Free()
	return err
}
