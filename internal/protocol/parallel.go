package protocol

// Parallel row garbling. Matrix rows are independent MAC chains, so
// they can be garbled concurrently — the paper's parallel-GC-core
// argument lifted to the host: table *generation* is the compute-bound
// phase, streaming is not. A pool of workers each owns a private
// simulator (fresh free-XOR offset and labels per worker, fresh run
// per row, exactly as the sequential path), and a reorder stage emits
// completed rows strictly in row order, so the bytes on the wire — and
// the client's round-by-round evaluation — are identical whatever the
// pool size.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
)

// lockedReader serializes reads of a shared randomness source so the
// garbling workers can draw from one cfg.Rand concurrently. The
// default crypto/rand reader is already safe, but deterministic test
// readers generally are not.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (lr *lockedReader) Read(p []byte) (int, error) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.r.Read(p)
}

// garbleResult carries one garbled row from a worker to the reorder
// stage.
type garbleResult struct {
	idx int
	run *maxsim.DotProductRun
	err error
}

// garbleRows garbles every row of A and hands each run to emit in
// strict row order. workers <= 1 garbles inline on the calling
// goroutine (one simulator per request, the pre-v2 behaviour); larger
// pools garble up to `workers` rows concurrently. Context cancellation
// stops the pool between rows — in-flight rows finish (a garbling is
// CPU work with no wire waits) but no new row starts.
func (sess *ServerSession) garbleRows(ctx context.Context, A [][]int64, workers int, emit func(int, *maxsim.DotProductRun) error) error {
	n := len(A)
	if workers > n {
		workers = n
	}
	ss := sess.ss
	if workers <= 1 {
		// The pool-size gauge reflects the effective pool of the current
		// request — including the inline (size 1) path, so it no longer
		// reads as whatever the last pooled request used.
		ss.reg.Gauge("garble_workers", "row-garbling worker pool size").Set(1)
		sim, err := maxsim.New(sess.srv.cfg)
		if err != nil {
			return err
		}
		for i, row := range A {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("protocol: garbling interrupted at row %d: %w", i, err)
			}
			run, err := garbleRow(ss, sim, i, row)
			if err != nil {
				return err
			}
			if err := emit(i, run); err != nil {
				return err
			}
		}
		return nil
	}

	reg := ss.reg
	queue := reg.Gauge("garble_queue_depth", "matrix rows waiting for a garbling worker")
	busy := reg.Gauge("garble_workers_busy", "garbling workers currently running a row")
	reg.Gauge("garble_workers", "row-garbling worker pool size").Set(int64(workers))
	rowSeconds := reg.Histogram("garble_row_seconds", "wall time to garble one matrix row", nil)
	rowsTotal := reg.Counter("garble_rows_total", "matrix rows garbled by the worker pool")

	// One simulator per worker: every worker garbles under its own
	// fresh free-XOR offset, and nothing mutable is shared except the
	// randomness source, which gets a lock.
	cfgw := sess.srv.cfg
	cfgw.Rand = &lockedReader{r: cfgw.Rand}
	sims := make([]*maxsim.Simulator, workers)
	for w := range sims {
		sim, err := maxsim.New(cfgw)
		if err != nil {
			return err
		}
		sims[w] = sim
	}

	// jobs is pre-filled and closed; done is buffered to n (cheap
	// struct slots) so workers never block on a stalled consumer. stop
	// makes workers quit without garbling once any side has failed.
	//
	// tickets is the admission window: a worker takes a ticket BEFORE
	// pulling a row index and the reorder stage returns it when that
	// row is emitted downstream, so rows garbled-but-not-yet-streamed
	// are bounded by the window — pool memory is O(workers + pipeDepth),
	// not O(rows), however slow the wire is. Acquiring before pulling
	// keeps the in-flight rows a contiguous index block starting at
	// `next`, so the reorder stage can always emit and recycle a
	// ticket; acquiring after pulling could strand row `next` behind
	// the window and deadlock.
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	queue.Add(int64(n))
	done := make(chan garbleResult, n)
	window := workers + pipeDepth
	tickets := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}
	stopCh := make(chan struct{})
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sim *maxsim.Simulator) {
			defer wg.Done()
			for {
				select {
				case <-stopCh:
					return
				case <-tickets:
				}
				i, ok := <-jobs
				if !ok {
					return
				}
				queue.Add(-1)
				if stop.Load() || ctx.Err() != nil {
					return
				}
				busy.Add(1)
				t0 := time.Now()
				run, err := safeGarbleRow(ss, sim, i, A[i])
				rowSeconds.Observe(time.Since(t0).Seconds())
				busy.Add(-1)
				if err == nil {
					// Only rows that actually produced garbled material
					// count; failed rows used to inflate the total.
					rowsTotal.Inc()
				}
				done <- garbleResult{idx: i, run: run, err: err}
				if err != nil {
					stop.Store(true)
				}
			}
		}(sims[w])
	}
	defer func() {
		stop.Store(true)
		close(stopCh) // wake workers blocked on the admission window
		wg.Wait()
		for range jobs {
			queue.Add(-1) // rows never pulled; zero the depth gauge
		}
	}()

	// Reorder stage: workers finish rows in any order; emit strictly
	// in row order so the wire format matches the sequential path.
	// Cancellation unblocks the wait even though workers never block on
	// done (it is buffered to n): the pool drains via the deferred stop.
	pending := make(map[int]*maxsim.DotProductRun, workers)
	next := 0
	for received := 0; received < n; received++ {
		var r garbleResult
		select {
		case r = <-done:
		case <-ctx.Done():
			return fmt.Errorf("protocol: garbling interrupted after %d of %d rows: %w", next, n, ctx.Err())
		}
		if r.err != nil {
			return r.err
		}
		pending[r.idx] = r.run
		for {
			run, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if err := emit(next, run); err != nil {
				return err
			}
			next++
			tickets <- struct{}{} // row left the pool: reopen the window
		}
	}
	if next != n {
		return fmt.Errorf("protocol: garble pool emitted %d of %d rows", next, n)
	}
	return nil
}

// safeGarbleRow is garbleRow behind a recover(): a panic inside one
// worker's garbling becomes that row's error result, so the reorder
// stage fails the request cleanly instead of the panic killing the
// process (a goroutine panic is not catchable from the session
// goroutine's own recover).
func safeGarbleRow(ss *session, sim *maxsim.Simulator, i int, row []int64) (run *maxsim.DotProductRun, err error) {
	defer func() {
		if r := recover(); r != nil {
			run, err = nil, recoveredPanic(ss.reg, r)
		}
	}()
	return garbleRow(ss, sim, i, row)
}

// garbleTestHook, when non-nil, runs before each row garbling — the
// fault-injection seam the panic-containment tests use. Set and
// cleared only while no session is in flight.
var garbleTestHook func(row int)

// garbleRow garbles one row under its per-row trace span (capped at
// maxRowSpans spans per session).
func garbleRow(ss *session, sim *maxsim.Simulator, i int, row []int64) (*maxsim.DotProductRun, error) {
	var rowSpan *obs.Span
	if i < maxRowSpans {
		rowSpan = ss.tr.StartSpan(fmt.Sprintf("round_garble[%d]", i))
	}
	defer rowSpan.End()
	if garbleTestHook != nil {
		garbleTestHook(i)
	}
	return sim.GarbleDotProduct(row)
}
