package resilience

import (
	"sync"
	"testing"
)

func TestBudgetBurstThenRatio(t *testing.T) {
	b := NewBudget(BudgetConfig{Ratio: 0.5, MinTokens: 2, Cap: 100})
	// Burst: the initial MinTokens allow 2 failovers with no traffic.
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("burst allowance denied")
	}
	if b.Withdraw() {
		t.Fatal("empty bucket allowed a withdrawal")
	}
	// Ratio: two deposits bank one token.
	b.Deposit()
	if b.Withdraw() {
		t.Fatal("half a token allowed a withdrawal")
	}
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("banked token denied")
	}
	dep, wd, den := b.Stats()
	if dep != 2 || wd != 3 || den != 2 {
		t.Fatalf("stats = %d/%d/%d, want 2/3/2", dep, wd, den)
	}
}

func TestBudgetCap(t *testing.T) {
	b := NewBudget(BudgetConfig{Ratio: 1, MinTokens: 1, Cap: 3})
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 3 {
		t.Fatalf("tokens = %v, want capped at 3", got)
	}
}

// TestBudgetInvariantUnderTotalOutage is the property the gateway
// depends on: however long the outage, withdrawals never exceed
// Ratio·deposits + MinTokens.
func TestBudgetInvariantUnderTotalOutage(t *testing.T) {
	const ratio, minTokens = 0.2, 10.0
	b := NewBudget(BudgetConfig{Ratio: ratio, MinTokens: minTokens, Cap: 50})
	withdrawals := 0
	for session := 0; session < 5000; session++ {
		b.Deposit()
		// Every session tries to fail over twice (dead fleet).
		for attempt := 0; attempt < 2; attempt++ {
			if b.Withdraw() {
				withdrawals++
			}
		}
	}
	bound := int(ratio*5000+minTokens) + 1
	if withdrawals > bound {
		t.Fatalf("withdrawals = %d, want ≤ %d", withdrawals, bound)
	}
	// And the budget is not pathologically stingy: at least the ratio
	// share minus the fractional losses got through.
	if withdrawals < int(ratio*5000) {
		t.Fatalf("withdrawals = %d, want ≥ %d", withdrawals, int(ratio*5000))
	}
}

func TestBudgetConcurrency(t *testing.T) {
	b := NewBudget(BudgetConfig{Ratio: 0.5, MinTokens: 0, Cap: 1000})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				b.Deposit()
				b.Withdraw()
			}
		}()
	}
	wg.Wait()
	dep, wd, den := b.Stats()
	if dep != 4000 || wd+den != 4000 {
		t.Fatalf("stats = %d deposits, %d+%d outcomes", dep, wd, den)
	}
}
