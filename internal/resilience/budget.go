package resilience

import "sync"

// BudgetConfig shapes one Budget. The zero value resolves to the
// defaults noted per field.
type BudgetConfig struct {
	// Ratio is the sustained failover allowance as a fraction of
	// arriving sessions: every Deposit (one per session) adds Ratio
	// tokens, every Withdraw (one per failover attempt) spends one.
	// Default 0.2 — at most ~20% of sessions may fail over once the
	// initial burst is spent.
	Ratio float64
	// MinTokens is the bucket's starting level — the burst allowance
	// that lets a cold gateway absorb an isolated backend loss at full
	// failover fidelity before the ratio governs. Default 10; a
	// negative value means no burst (start empty).
	MinTokens float64
	// Cap bounds the bucket so a long healthy stretch cannot bank an
	// unbounded failover burst. Default max(MinTokens, 100).
	Cap float64
}

func (c BudgetConfig) withDefaults() BudgetConfig {
	if c.Ratio <= 0 {
		c.Ratio = 0.2
	}
	if c.MinTokens < 0 {
		c.MinTokens = 0
	} else if c.MinTokens == 0 {
		c.MinTokens = 10
	}
	if c.Cap <= 0 {
		c.Cap = 100
	}
	if c.Cap < c.MinTokens {
		c.Cap = c.MinTokens
	}
	return c
}

// Budget is a token-bucket retry budget: the gateway deposits on every
// arriving session and withdraws before every failover attempt beyond
// a session's first candidate. When the bucket is empty the session
// sheds immediately with BUSY instead of marching down the replica
// list — which is the property that turns a fleet-wide outage into
// fast, bounded rejections rather than a retry storm: over any run,
//
//	withdrawals ≤ Ratio·deposits + MinTokens
//
// so the extra dial load a dead fleet sees is a fixed fraction of
// offered load plus a constant, regardless of outage length.
type Budget struct {
	cfg BudgetConfig

	mu          sync.Mutex
	tokens      float64
	deposits    uint64
	withdrawals uint64
	denials     uint64
}

// NewBudget builds a bucket holding MinTokens.
func NewBudget(cfg BudgetConfig) *Budget {
	cfg = cfg.withDefaults()
	return &Budget{cfg: cfg, tokens: cfg.MinTokens}
}

// Deposit credits one arriving session's failover allowance.
func (b *Budget) Deposit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deposits++
	b.tokens += b.cfg.Ratio
	if b.tokens > b.cfg.Cap {
		b.tokens = b.cfg.Cap
	}
}

// Withdraw spends one failover attempt, reporting whether the budget
// allowed it.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denials++
		return false
	}
	b.tokens--
	b.withdrawals++
	return true
}

// Tokens reads the current bucket level.
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Stats reports lifetime deposit/withdrawal/denial counts — the
// numbers maxchaos checks the budget invariant against.
func (b *Budget) Stats() (deposits, withdrawals, denials uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.deposits, b.withdrawals, b.denials
}
