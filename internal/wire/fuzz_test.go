package wire

import (
	"bytes"
	"testing"
)

// FuzzStreamConnRecv feeds arbitrary bytes to the frame reader: it
// must never panic or over-allocate, only return messages or errors.
func FuzzStreamConnRecv(f *testing.F) {
	f.Add([]byte{0, 0, 0, 2, 'h', 'i'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewStreamConn(bytes.NewBuffer(data))
		for i := 0; i < 4; i++ {
			msg, err := c.RecvMsg()
			if err != nil {
				return
			}
			if len(msg) > MaxMessageSize {
				t.Fatalf("oversized message of %d bytes accepted", len(msg))
			}
		}
	})
}

// FuzzStreamConnRoundTrip checks that any sequence of messages
// round-trips exactly through the framing.
func FuzzStreamConnRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), []byte{}, []byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		var buf bytes.Buffer
		w := NewStreamConn(&buf)
		for _, msg := range [][]byte{a, b, c} {
			if err := w.SendMsg(msg); err != nil {
				t.Fatal(err)
			}
		}
		r := NewStreamConn(&buf)
		for _, want := range [][]byte{a, b, c} {
			got, err := r.RecvMsg()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("frame %q != %q", got, want)
			}
		}
	})
}
