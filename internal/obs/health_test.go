package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getHealth(t *testing.T, srv *httptest.Server) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.TrimSpace(string(body))
}

// TestHealthzStates: without a hook /healthz is a plain liveness probe;
// with one it reflects the load-shedding state, answering 503 only
// when overloaded so dumb HTTP probes can act without parsing.
func TestHealthzStates(t *testing.T) {
	o := New(0)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	if code, body := getHealth(t, srv); code != http.StatusOK || body != HealthOK {
		t.Fatalf("default healthz = %d %q, want 200 %q", code, body, HealthOK)
	}

	state := HealthDegraded
	o.SetHealth(func() string { return state })
	if code, body := getHealth(t, srv); code != http.StatusOK || body != HealthDegraded {
		t.Fatalf("degraded healthz = %d %q, want 200 %q", code, body, HealthDegraded)
	}

	state = HealthOverloaded
	if code, body := getHealth(t, srv); code != http.StatusServiceUnavailable || body != HealthOverloaded {
		t.Fatalf("overloaded healthz = %d %q, want 503 %q", code, body, HealthOverloaded)
	}

	state = HealthOK
	if code, body := getHealth(t, srv); code != http.StatusOK || body != HealthOK {
		t.Fatalf("recovered healthz = %d %q, want 200 %q", code, body, HealthOK)
	}
}

// TestHealthNilSafety: SetHealth and healthStatus on a nil Obs are
// no-ops, like every other observability entry point.
func TestHealthNilSafety(t *testing.T) {
	var o *Obs
	o.SetHealth(func() string { return HealthOverloaded })
	if got := o.healthStatus(); got != HealthOK {
		t.Fatalf("nil Obs healthStatus = %q, want %q", got, HealthOK)
	}
	live := New(0)
	live.SetHealth(nil)
	if got := live.healthStatus(); got != HealthOK {
		t.Fatalf("nil hook healthStatus = %q, want %q", got, HealthOK)
	}
}
