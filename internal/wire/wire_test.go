package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"testing"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	want := []byte("hello garbler")
	if err := a.SendMsg(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.RecvMsg()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestPipePreservesOrder(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	for i := 0; i < 100; i++ {
		if err := a.SendMsg([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		msg, err := b.RecvMsg()
		if err != nil {
			t.Fatal(err)
		}
		if msg[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, msg[0])
		}
	}
}

func TestPipeIsolatesBuffers(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	buf := []byte{1, 2, 3}
	if err := a.SendMsg(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutating the caller's buffer must not affect delivery
	got, err := b.RecvMsg()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("message aliased sender buffer: got %v", got)
	}
}

func TestPipeCloseUnblocks(t *testing.T) {
	a, b := Pipe()
	errc := make(chan error, 1)
	go func() {
		_, err := b.RecvMsg()
		errc <- err
	}()
	a.Close()
	if err := <-errc; err != ErrClosed {
		t.Fatalf("RecvMsg after close: %v, want ErrClosed", err)
	}
	if err := a.SendMsg([]byte("x")); err != ErrClosed {
		t.Fatalf("SendMsg after close: %v, want ErrClosed", err)
	}
}

func TestPipeBidirectional(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := a.SendMsg([]byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
			if _, err := a.RecvMsg(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := b.RecvMsg(); err != nil {
				t.Error(err)
				return
			}
			if err := b.SendMsg([]byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestStreamConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		conn := NewStreamConn(c)
		msg, err := conn.RecvMsg()
		if err != nil {
			done <- err
			return
		}
		done <- conn.SendMsg(append(msg, '!'))
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewStreamConn(c)
	defer conn.Close()
	if err := conn.SendMsg([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := conn.RecvMsg()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping!" {
		t.Fatalf("got %q", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestStreamConnEmptyMessage(t *testing.T) {
	var buf bytes.Buffer
	c := NewStreamConn(&buf)
	if err := c.SendMsg(nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.RecvMsg()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes, want 0", len(got))
	}
}

func TestStreamConnRejectsOversizedFrames(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB claimed length
	c := NewStreamConn(&buf)
	if _, err := c.RecvMsg(); err == nil {
		t.Fatal("oversized frame accepted")
	}
	huge := make([]byte, MaxMessageSize+1)
	if err := c.SendMsg(huge); err == nil {
		t.Fatal("oversized send accepted")
	}
}

func TestStreamConnTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 'x'}) // claims 10 bytes, has 1
	c := NewStreamConn(&buf)
	if _, err := c.RecvMsg(); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestCountingTotals(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	ca := NewCounting(a)
	cb := NewCounting(b)
	if err := ca.SendMsg(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := ca.SendMsg(make([]byte, 28)); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.RecvMsg(); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.RecvMsg(); err != nil {
		t.Fatal(err)
	}
	sent, _, sentMsgs, _ := ca.Totals()
	if sent != 128 || sentMsgs != 2 {
		t.Fatalf("sender totals = %d bytes %d msgs", sent, sentMsgs)
	}
	_, recv, _, recvMsgs := cb.Totals()
	if recv != 128 || recvMsgs != 2 {
		t.Fatalf("receiver totals = %d bytes %d msgs", recv, recvMsgs)
	}
}

func TestObservedCountsFramedBytes(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	var sent, recvd int
	oa := Observed(a, func(n int) { sent += n }, nil)
	ob := Observed(b, nil, func(n int) { recvd += n })
	if err := oa.SendMsg(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ob.RecvMsg(); err != nil {
		t.Fatal(err)
	}
	// Payload plus the 4-byte frame header, both directions.
	if sent != 104 || recvd != 104 {
		t.Fatalf("observed sent=%d recvd=%d, want 104/104", sent, recvd)
	}
	// Failed operations must not be charged.
	oa.Close()
	if err := oa.SendMsg([]byte("x")); err == nil {
		t.Fatal("send on closed pipe succeeded")
	}
	if sent != 104 {
		t.Fatalf("failed send was charged: %d", sent)
	}
}

func TestPeerAddr(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
		close(done)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := NewStreamConn(nc)
	if got := PeerAddr(c); got != ln.Addr().String() {
		t.Fatalf("PeerAddr = %q, want %q", got, ln.Addr().String())
	}
	// Wrappers unwrap to the transport address.
	if got := PeerAddr(Observed(NewCounting(c), nil, nil)); got != ln.Addr().String() {
		t.Fatalf("wrapped PeerAddr = %q", got)
	}
	// Address-less transports report "".
	p, q := Pipe()
	defer p.Close()
	defer q.Close()
	if got := PeerAddr(p); got != "" {
		t.Fatalf("pipe PeerAddr = %q", got)
	}
	<-done
}

func TestIsDisconnect(t *testing.T) {
	for _, err := range []error{
		ErrClosed,
		io.EOF,
		io.ErrUnexpectedEOF,
		net.ErrClosed,
		fmt.Errorf("reading frame: %w", ErrClosed),
		// A refused dial is transient from a retry layer's viewpoint:
		// the server is restarting or shedding its listener.
		syscall.ECONNREFUSED,
		&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED},
	} {
		if !IsDisconnect(err) {
			t.Fatalf("IsDisconnect(%v) = false", err)
		}
	}
	for _, err := range []error{
		nil,
		errors.New("protocol: bad frame"),
		fmt.Errorf("message exceeds %d bytes", MaxMessageSize),
	} {
		if IsDisconnect(err) {
			t.Fatalf("IsDisconnect(%v) = true", err)
		}
	}
}

// TestIsDisconnectRefusedDial: a real refused TCP dial (listener
// closed) classifies as a disconnect end to end, not just the bare
// errno.
func TestIsDisconnectRefusedDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, derr := net.Dial("tcp", addr)
	if derr == nil {
		t.Skip("dial to a closed port unexpectedly succeeded")
	}
	if !IsDisconnect(derr) {
		t.Fatalf("IsDisconnect(%v) = false for a refused dial", derr)
	}
}
