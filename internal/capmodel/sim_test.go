package capmodel

import (
	"encoding/json"
	"math/rand"
	"testing"

	"maxelerator/internal/load"
	"maxelerator/internal/obs"
)

func testScenario() load.Scenario {
	return load.Scenario{
		Rate: 40, Process: load.Poisson, DurationSec: 10, Seed: 11,
		MaxInflight: 64,
		Shapes:      []load.ShapeWeight{{Rows: 4, Cols: 4, Width: 8, Weight: 1}},
	}
}

func constCal(warm, cold, ot float64) *Calibration {
	return &Calibration{Source: "test", OTSetup: Const(ot),
		RequestWarm: Const(warm), RequestCold: Const(cold), Refill: Const(cold)}
}

// The acceptance criterion verbatim: same seed + calibration →
// byte-identical report.
func TestSimulateDeterministic(t *testing.T) {
	sc := testScenario()
	cal, err := Analytic(4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	fl := Fleet{Backends: 2, MaxSessions: 8, AdmissionWaitSec: 0.5, CPUs: 2, PoolDepth: 2, WarmStart: true}
	a, err := Simulate(sc, fl, cal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(sc, fl, cal)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same inputs produced different reports:\n%s\nvs\n%s", ja, jb)
	}
	sc.Seed = 12
	c, err := Simulate(sc, fl, cal)
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical reports")
	}
}

// An uncontended fleet completes everything at the service-time floor.
func TestSimulateUncontended(t *testing.T) {
	sc := testScenario()
	sc.Rate, sc.Process = 5, load.Uniform
	cal := constCal(0.010, 0.050, 0.002)
	r, err := Simulate(sc, Fleet{CPUs: 64}, cal)
	if err != nil {
		t.Fatal(err)
	}
	if r.Succeeded != r.Offered || r.Shed != 0 || r.Skipped != 0 {
		t.Fatalf("uncontended run dropped work: %+v", r.Report)
	}
	// No pool: every request pays cold + OT setup = 52 ms.
	if got := r.Latency.P50Ms; got < 51.9 || got > 52.1 {
		t.Errorf("p50 = %v ms, want 52", got)
	}
}

// Offered load far past one CPU's capacity must shed (with admission
// control) and must not report sub-capacity latency.
func TestSimulateOverloadSheds(t *testing.T) {
	sc := testScenario()
	sc.Rate, sc.DurationSec = 100, 5 // cold service 50ms ⇒ capacity ≈ 20/s
	cal := constCal(0.050, 0.050, 0)
	fl := Fleet{MaxSessions: 4, AdmissionWaitSec: 0.2, CPUs: 1}
	r, err := Simulate(sc, fl, cal)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shed == 0 {
		t.Fatalf("5x overload shed nothing: %+v", r.Report)
	}
	if r.AchievedRate > 25 {
		t.Errorf("achieved %v/s exceeds the 20/s service capacity", r.AchievedRate)
	}
	// Without a session cap the queue grows instead: nothing sheds, but
	// latency blows up.
	open, err := Simulate(sc, Fleet{CPUs: 1}, cal)
	if err != nil {
		t.Fatal(err)
	}
	if open.Shed != 0 {
		t.Errorf("uncapped fleet shed %d", open.Shed)
	}
	if open.Latency.P99Ms < r.Latency.P99Ms {
		t.Errorf("uncapped overload p99 %v ms below capped %v ms — queueing not modelled",
			open.Latency.P99Ms, r.Latency.P99Ms)
	}
}

// Warm pools must hit until consumption outruns refill.
func TestSimulatePoolHitRate(t *testing.T) {
	sc := testScenario()
	sc.Rate, sc.Process = 2, load.Uniform // slow: refill keeps up
	cal := constCal(0.001, 0.200, 0)      // refill = cold = 200 ms
	warm, err := Simulate(sc, Fleet{CPUs: 4, PoolDepth: 4, RefillWorkers: 2, WarmStart: true}, cal)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Pool == nil || warm.Pool.HitRate < 0.9 {
		t.Fatalf("slow traffic on a warm pool should hit nearly always: %+v", warm.Pool)
	}
	// Cold start at high rate: the first requests must miss.
	sc.Rate = 50
	cold, err := Simulate(sc, Fleet{CPUs: 4, PoolDepth: 2, RefillWorkers: 1, WarmStart: false}, cal)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Pool == nil || cold.Pool.HitRate > 0.5 {
		t.Fatalf("cold start under pressure should mostly miss: %+v", cold.Pool)
	}
	if warm.Latency.P50Ms >= cold.Latency.P50Ms {
		t.Errorf("warm p50 %v ms not below cold p50 %v ms", warm.Latency.P50Ms, cold.Latency.P50Ms)
	}
}

// The client-side inflight cap mirrors the generator: arrivals past it
// are skipped, not queued.
func TestSimulateInflightCapSkips(t *testing.T) {
	sc := testScenario()
	sc.Rate, sc.MaxInflight, sc.DurationSec = 200, 2, 3
	cal := constCal(0.5, 0.5, 0)
	r, err := Simulate(sc, Fleet{CPUs: 64}, cal)
	if err != nil {
		t.Fatal(err)
	}
	if r.Skipped == 0 {
		t.Fatalf("2-slot client under 200/s offered load skipped nothing: %+v", r.Report)
	}
	if r.Started+r.Skipped != r.Offered {
		t.Errorf("started %d + skipped %d ≠ offered %d", r.Started, r.Skipped, r.Offered)
	}
}

// More backends must never lower the sustainable rate.
func TestSustainableQPSMonotoneInBackends(t *testing.T) {
	sc := testScenario()
	cal := constCal(0.020, 0.040, 0.005)
	slo := SLO{P99Ms: 200}
	var prev float64
	for _, nb := range []int{1, 2, 4} {
		qps, err := SustainableQPS(sc, Fleet{Backends: nb, CPUs: 1, MaxSessions: 8, AdmissionWaitSec: 0.2}, cal, slo, 1, 2048)
		if err != nil {
			t.Fatal(err)
		}
		if qps < prev {
			t.Fatalf("backends=%d sustains %v/s, below %v/s with fewer", nb, qps, prev)
		}
		if qps <= 0 {
			t.Fatalf("backends=%d sustains nothing", nb)
		}
		prev = qps
	}
}

func TestEmpiricalDist(t *testing.T) {
	// Sum chosen so the measured mean equals the uniform-placement
	// expectation (10·5ms + 80·15ms + 10·30ms = 1.55s): scale is 1 and
	// samples stay exactly on the bucket support.
	h := obs.HistogramSnapshot{
		Name:   "request_seconds",
		Bounds: []float64{0.01, 0.02, 0.04},
		Counts: []uint64{10, 80, 10, 0},
		Count:  100,
		Sum:    1.55,
	}
	d, err := NewEmpirical(h)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 0.0155 {
		t.Errorf("mean = %v, want 0.0155", d.Mean())
	}
	rng := rand.New(rand.NewSource(1))
	mid := 0
	for i := 0; i < 10000; i++ {
		v := d.Sample(rng)
		if v < 0 || v > 0.04 {
			t.Fatalf("sample %v outside bucket support", v)
		}
		if v >= 0.01 && v < 0.02 {
			mid++
		}
	}
	if frac := float64(mid) / 10000; frac < 0.75 || frac > 0.85 {
		t.Errorf("middle bucket drew %.3f, want ≈0.80", frac)
	}
	// The +Inf bucket clamps to the last finite bound.
	inf := obs.HistogramSnapshot{Bounds: []float64{0.01}, Counts: []uint64{0, 5}, Count: 5, Sum: 1}
	di, err := NewEmpirical(inf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v := di.Sample(rng); v != 0.01 {
			t.Fatalf("+Inf bucket sample %v, want clamp to 0.01", v)
		}
	}
	if _, err := NewEmpirical(obs.HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 0}}); err == nil {
		t.Error("empty histogram accepted")
	}
}

// Moment matching: when the true mass sits at the bottom of a coarse
// bucket, the sampler must rescale toward the measured mean instead of
// spreading uniformly across the bucket.
func TestEmpiricalMomentMatch(t *testing.T) {
	// All 100 samples in the (10, 30] bucket, true mean 11s — uniform
	// placement would imply 20s.
	h := obs.HistogramSnapshot{
		Name:   "ot_setup_seconds",
		Bounds: []float64{10, 30},
		Counts: []uint64{0, 100, 0},
		Count:  100,
		Sum:    1100,
	}
	d, err := NewEmpirical(h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v > 30 {
			t.Fatalf("sample %v above the bucket support", v)
		}
		sum += v
	}
	if got := sum / n; got < 10.5 || got > 11.5 {
		t.Errorf("sample mean %v, want ≈11 (moment-matched)", got)
	}
}

func TestPercentileDist(t *testing.T) {
	d := PercentileDist{P50: 0.010, P95: 0.030, P99: 0.100, MeanVal: 0.015}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		v := d.Sample(rng)
		if v < 0.010-1e-12 || v > 0.100+1e-12 {
			t.Fatalf("sample %v outside [p50, p99]", v)
		}
	}
	if d.Mean() != 0.015 {
		t.Errorf("mean = %v", d.Mean())
	}
}

func TestAnalyticCalibration(t *testing.T) {
	cal, err := Analytic(4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cal.RequestWarm.Mean() <= 0 || cal.RequestCold.Mean() <= cal.RequestWarm.Mean() {
		t.Errorf("cold %v must exceed warm %v > 0", cal.RequestCold.Mean(), cal.RequestWarm.Mean())
	}
	// Bigger shapes cost more.
	big, err := Analytic(16, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if big.RequestCold.Mean() <= cal.RequestCold.Mean() {
		t.Error("16x16 not costlier than 4x4")
	}
	if _, err := Analytic(4, 4, 7); err == nil {
		t.Error("non-power-of-two width accepted")
	}
}
