package main

import (
	"crypto/rand"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

// chaosHints rotates each session through the hinted routing paths
// (three shape keys hashing to different ring positions) and the
// unhinted least-loaded path. Hints are routing metadata only — every
// backend serves the same 1×2 matrix — so the lying widths are safe
// and exercise hint-miss accounting.
var chaosHints = []*protocol.ShapeHint{
	{Rows: 1, Cols: 2, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"},
	{Rows: 1, Cols: 2, Width: 16, Signed: true, Mode: "matvec", OT: "per-round"},
	{Rows: 1, Cols: 2, Width: 32, Signed: true, Mode: "matvec", OT: "per-round"},
	nil,
}

// loadStats are the client-visible outcomes of the open-loop load.
type loadStats struct {
	sessions    atomic.Int64 // sessions actually launched
	skipped     atomic.Int64 // arrivals dropped because maxInflight was saturated
	succeeded   atomic.Int64
	shed        atomic.Int64 // BUSY from the gateway or a backend
	failed      atomic.Int64 // hard errors: resets, timeouts, injected faults
	miscomputed atomic.Int64 // sessions that "succeeded" with a wrong result
}

func (st *loadStats) fail(err error) {
	var be *protocol.BusyError
	if errors.As(err, &be) {
		st.shed.Add(1)
		return
	}
	st.failed.Add(1)
}

// runLoad drives open-loop load at the gateway for d: one session per
// loadInterval tick, regardless of how previous sessions are doing.
// Open-loop is the point — a retry storm or a stalled fleet must not
// slow the arrival clock, it must surface as errors. Concurrency is
// capped at maxInflight so a wedged fleet cannot grow goroutines
// without bound; arrivals past the cap are counted as skipped, never
// blocked on.
func (f *chaosFleet) runLoad(d time.Duration) *loadStats {
	st := &loadStats{}
	sem := make(chan struct{}, f.cfg.maxInflight)
	var wg sync.WaitGroup
	tick := time.NewTicker(f.cfg.loadInterval)
	defer tick.Stop()
	stop := time.After(d)
	for i := 0; ; i++ {
		select {
		case <-stop:
			wg.Wait()
			return st
		case <-tick.C:
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				st.sessions.Add(1)
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					f.oneSession(i, st)
				}(i)
			default:
				st.skipped.Add(1)
			}
		}
	}
}

// oneSession runs a single client request through the gateway over
// real TCP: dial, handshake, one MAC evaluation, clean close. Every
// phase is deadline-bounded so no chaos event can wedge a client
// forever.
func (f *chaosFleet) oneSession(i int, st *loadStats) {
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		st.failed.Add(1)
		return
	}
	// Generous budgets: a session's OT base phase is real public-key
	// crypto, and concurrent sessions contend for the same cores. The
	// deadline exists to bound sessions wedged on a muted or killed
	// backend, not to police healthy-but-slow crypto.
	cli.WithTimeouts(protocol.Timeouts{Handshake: 8 * time.Second, IO: 8 * time.Second})
	if hint := chaosHints[i%len(chaosHints)]; hint != nil {
		cli.WithShapeHint(*hint)
	}
	nc, err := net.DialTimeout("tcp", f.gwAddr, 2*time.Second)
	if err != nil {
		f.logf("load: session %d tcp dial: %v", i, err)
		st.failed.Add(1)
		return
	}
	conn := wire.NewStreamConn(nc)
	defer conn.Close()
	cs, err := cli.Dial(conn)
	if err != nil {
		f.logf("load: session %d dial: %v", i, err)
		st.fail(err)
		return
	}
	out, err := cs.Do([]int64{4, 5})
	if err != nil {
		f.logf("load: session %d do: %v", i, err)
		st.fail(err)
		return
	}
	if err := cs.Close(); err != nil {
		f.logf("load: session %d close: %v", i, err)
		st.fail(err)
		return
	}
	if len(out) != 1 || out[0] != 2*4+3*5 {
		st.miscomputed.Add(1)
		return
	}
	st.succeeded.Add(1)
}
