// Command maxd is the cloud-server daemon of Fig. 1: it owns the model
// matrix (the garbler's private input), drives the MAXelerator
// simulator to garble MAC streams, and serves privacy-preserving
// matrix-vector products to connecting clients over TCP.
//
// Usage:
//
//	maxd -listen :7700 -model model.json -b 16 -frac 6
//	maxd -listen :7700 -demo-rows 4 -demo-cols 8   # random demo model
//
// The model file holds a JSON array of rows of floats, e.g.
// [[1.0, 2.5], [0.25, -1.5]]. Each accepted connection runs one full
// protocol session (handshake, IKNP OT setup, per-round material
// streaming) and logs the result and the accelerator statistics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"

	"maxelerator/internal/fixed"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/protocol"
	"maxelerator/internal/report"
	"maxelerator/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7700", "TCP listen address")
	modelPath := flag.String("model", "", "JSON model matrix file (rows of floats)")
	width := flag.Int("b", 16, "operand bit-width (power of two)")
	frac := flag.Int("frac", 6, "fixed-point fraction bits")
	demoRows := flag.Int("demo-rows", 0, "serve a random demo model with this many rows")
	demoCols := flag.Int("demo-cols", 4, "columns of the random demo model")
	seed := flag.Int64("seed", 1, "random seed for the demo model")
	once := flag.Bool("once", false, "serve a single session and exit")
	flag.Parse()

	if err := run(*listen, *modelPath, *width, *frac, *demoRows, *demoCols, *seed, *once); err != nil {
		fmt.Fprintln(os.Stderr, "maxd:", err)
		os.Exit(1)
	}
}

func loadModel(path string) ([][]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading model: %w", err)
	}
	var rows [][]float64
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("parsing model: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("model is empty")
	}
	return rows, nil
}

func demoModel(rows, cols int, seed int64, f fixed.Format) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, rows)
	scale := f.Max() / 8
	for i := range out {
		out[i] = make([]float64, cols)
		for j := range out[i] {
			out[i][j] = (2*rng.Float64() - 1) * scale
		}
	}
	return out
}

func run(listen, modelPath string, width, frac, demoRows, demoCols int, seed int64, once bool) error {
	f := fixed.Format{Width: width, Frac: frac}
	if err := f.Validate(); err != nil {
		return err
	}

	var model [][]float64
	switch {
	case modelPath != "":
		m, err := loadModel(modelPath)
		if err != nil {
			return err
		}
		model = m
	case demoRows > 0:
		model = demoModel(demoRows, demoCols, seed, f)
	default:
		return fmt.Errorf("either -model or -demo-rows is required")
	}

	raw := make([][]int64, len(model))
	for i, row := range model {
		r, err := f.EncodeVector(row)
		if err != nil {
			return fmt.Errorf("model row %d: %w", i, err)
		}
		raw[i] = r
	}

	srv, err := protocol.NewServer(maxsim.Config{Width: width, AccWidth: 2 * width, Signed: true})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	log.Printf("maxd: serving %d×%d model on %s (b=%d, Q%d.%d fixed point)",
		len(raw), len(raw[0]), ln.Addr(), width, width-frac-1, frac)

	handle := func(c net.Conn) {
		conn := wire.NewStreamConn(c)
		defer conn.Close()
		out, st, err := srv.ServeMatVec(conn, raw)
		if err != nil {
			log.Printf("maxd: session from %s failed: %v", c.RemoteAddr(), err)
			return
		}
		dec := make([]float64, len(out))
		for i, v := range out {
			dec[i] = f.DecodeProduct(v)
		}
		log.Printf("maxd: session from %s done: result %v", c.RemoteAddr(), dec)
		log.Printf("maxd: %d MACs, %d modelled cycles (%s on FPGA), %s of garbled tables, PCIe %s",
			st.MACs, st.Cycles, report.Dur(st.ModeledTime), fmtBytes(st.TableBytes), report.Dur(st.PCIeTime))
	}

	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		if once {
			handle(c)
			return nil
		}
		// Fig. 1: "a cloud server architecture with multiple channels
		// to communicate with the clients" — one goroutine per client;
		// every session garbles under its own fresh labels.
		go handle(c)
	}
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
