package serial

import (
	"crypto/rand"
	mrand "math/rand"
	"testing"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
	"maxelerator/internal/seqgc"
)

func TestMACValidation(t *testing.T) {
	for _, b := range []int{0, 2, 3, 6, 10, 12} {
		if _, _, err := MAC(b); err == nil {
			t.Fatalf("width %d accepted", b)
		}
	}
}

func TestLayoutCounts(t *testing.T) {
	for _, b := range []int{4, 8, 16} {
		ckt, l := MustMAC(b)
		if l.ANDsPerStage != 2*b {
			t.Fatalf("b=%d: %d ANDs per stage, want %d", b, l.ANDsPerStage, 2*b)
		}
		if l.StagesPerMAC != 2*b+2 {
			t.Fatalf("b=%d: %d stages per MAC", b, l.StagesPerMAC)
		}
		// State: aPrev + b/2 carries + (b/2)(b/2−1) delays + b/2−1 tree
		// carries + (2b+2) acc + 1 acc carry.
		half := b / 2
		wantState := 1 + half + half*(half-1) + (half - 1) + (2*b + 2) + 1
		if ckt.NState != wantState {
			t.Fatalf("b=%d: %d state bits, want %d", b, ckt.NState, wantState)
		}
		if l.StateBits != wantState {
			t.Fatalf("b=%d: layout reports %d state bits", b, l.StateBits)
		}
	}
}

func TestSingleMACExhaustiveSmall(t *testing.T) {
	ckt, l := MustMAC(4)
	for x := uint64(0); x < 16; x++ {
		for a := uint64(0); a < 16; a++ {
			got, err := RunPlain(ckt, l, []uint64{x}, []uint64{a})
			if err != nil {
				t.Fatal(err)
			}
			if got != x*a {
				t.Fatalf("serial 4-bit %d·%d = %d, want %d", x, a, got, x*a)
			}
		}
	}
}

func TestSingleMACRandom8(t *testing.T) {
	ckt, l := MustMAC(8)
	rng := mrand.New(mrand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		x := uint64(rng.Intn(256))
		a := uint64(rng.Intn(256))
		got, err := RunPlain(ckt, l, []uint64{x}, []uint64{a})
		if err != nil {
			t.Fatal(err)
		}
		if got != x*a {
			t.Fatalf("serial 8-bit %d·%d = %d, want %d", x, a, got, x*a)
		}
	}
}

func TestAccumulationAcrossRounds(t *testing.T) {
	ckt, l := MustMAC(8)
	rng := mrand.New(mrand.NewSource(2))
	const rounds = 6
	xs := make([]uint64, rounds)
	as := make([]uint64, rounds)
	var want uint64
	for i := range xs {
		xs[i] = uint64(rng.Intn(256))
		as[i] = uint64(rng.Intn(256))
		want += xs[i] * as[i]
	}
	got, err := RunPlain(ckt, l, xs, as)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("serial dot product = %d, want %d", got, want)
	}
}

func TestEdgeOperands(t *testing.T) {
	ckt, l := MustMAC(8)
	cases := [][2]uint64{{0, 0}, {255, 255}, {255, 1}, {1, 255}, {128, 128}, {0, 255}}
	for _, c := range cases {
		got, err := RunPlain(ckt, l, []uint64{c[0]}, []uint64{c[1]})
		if err != nil {
			t.Fatal(err)
		}
		if got != c[0]*c[1] {
			t.Fatalf("%d·%d = %d", c[0], c[1], got)
		}
	}
}

func TestPipelineFlushesBetweenRounds(t *testing.T) {
	// A round of zeros after a busy round must leave the accumulator
	// unchanged: no residue leaks across round boundaries.
	ckt, l := MustMAC(8)
	got, err := RunPlain(ckt, l, []uint64{200, 0, 13}, []uint64{210, 0, 17})
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(200*210 + 13*17); got != want {
		t.Fatalf("flush test = %d, want %d", got, want)
	}
}

func TestStateClearsAfterFlush(t *testing.T) {
	// After a full round, every state bit except the accumulator (and
	// the aPrev bit, which holds the last streamed zero) must be zero.
	ckt, l := MustMAC(8)
	xBits := circuit.Uint64ToBits(251, 8)
	var state []bool
	for n := 0; n < l.StagesPerMAC; n++ {
		_, next, err := ckt.EvalRound(xBits, l.StageInputs(163, n), state)
		if err != nil {
			t.Fatal(err)
		}
		state = next
	}
	half := 8 / 2
	nonAcc := 1 + half + half*(half-1) + (half - 1)
	for i := 0; i < nonAcc; i++ {
		if state[i] {
			t.Fatalf("state bit %d (pre-accumulator region) still set after flush", i)
		}
	}
	// Accumulator must hold 251·163.
	accBits := state[nonAcc : nonAcc+l.AccLen]
	if got := circuit.BitsToUint64(accBits); got != 251*163 {
		t.Fatalf("accumulator state = %d, want %d", got, 251*163)
	}
}

func TestStageInputs(t *testing.T) {
	_, l := MustMAC(8)
	a := uint64(0b10110101)
	for n := 0; n < 8; n++ {
		want := a>>uint(n)&1 == 1
		if got := l.StageInputs(a, n)[0]; got != want {
			t.Fatalf("stage %d input = %v", n, got)
		}
	}
	for n := 8; n < l.StagesPerMAC; n++ {
		if l.StageInputs(a, n)[0] {
			t.Fatalf("flush stage %d streamed a one", n)
		}
	}
}

func TestRunPlainValidation(t *testing.T) {
	ckt, l := MustMAC(4)
	if _, err := RunPlain(ckt, l, []uint64{1}, []uint64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RunPlain(ckt, l, []uint64{16}, []uint64{1}); err == nil {
		t.Fatal("oversized operand accepted")
	}
}

func TestGarbledSerialMAC(t *testing.T) {
	// The headline integration: garble the bit-serial datapath stage
	// by stage through sequential GC and verify the evaluator's
	// decoded accumulator. This is the closest software analogue of
	// the FSM-driven hardware: one small circuit, re-garbled per
	// stage, state carried as labels.
	ckt, l := MustMAC(4)
	p := gc.DefaultParams()
	gs, err := seqgc.NewGarblerSession(p, rand.Reader, ckt)
	if err != nil {
		t.Fatal(err)
	}
	es, err := seqgc.NewEvaluatorSession(p, ckt)
	if err != nil {
		t.Fatal(err)
	}

	xs := []uint64{13, 7}
	as := []uint64{11, 15}
	want := 13*11 + 7*15

	var lastRound []bool
	for r := range xs {
		xBits := circuit.Uint64ToBits(xs[r], l.Width)
		lastRound = lastRound[:0]
		for n := 0; n < l.StagesPerMAC; n++ {
			gb, err := gs.NextRound(xBits)
			if err != nil {
				t.Fatal(err)
			}
			aBits := l.StageInputs(as[r], n)
			active := make([]label.Label, len(aBits))
			for i, v := range aBits {
				active[i] = gb.EvalPairs[i].Get(v)
			}
			res, err := es.NextRound(&gb.Material, active)
			if err != nil {
				t.Fatal(err)
			}
			lastRound = append(lastRound, res.Outputs[0])
		}
	}
	if got := circuit.BitsToUint64(lastRound); got != uint64(want) {
		t.Fatalf("garbled serial dot product = %d, want %d", got, want)
	}
}

func TestGarbledTableCountMatchesSchedule(t *testing.T) {
	// Every garbled stage must cost exactly 2b AND tables — the FSM
	// slot grid minus the 8 signed-support ops this unsigned datapath
	// omits.
	ckt, l := MustMAC(8)
	gs, err := seqgc.NewGarblerSession(gc.DefaultParams(), rand.Reader, ckt)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := gs.NextRound(circuit.Uint64ToBits(99, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(gb.Material.Tables); got != l.ANDsPerStage || got != 16 {
		t.Fatalf("stage produced %d tables, want %d", got, l.ANDsPerStage)
	}
}

func BenchmarkSerialStageGarbling(b *testing.B) {
	ckt, l := MustMAC(8)
	gs, err := seqgc.NewGarblerSession(gc.DefaultParams(), label.MustSystemDRBG(), ckt)
	if err != nil {
		b.Fatal(err)
	}
	xBits := circuit.Uint64ToBits(170, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gs.NextRound(xBits); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(l.ANDsPerStage), "tables/stage")
}
