package protocol

// Multiplexed server sessions: one versioned handshake and one base-OT
// + IKNP extension setup per connection, then any number of requests.
// The client drives the request loop (reqOpen → reqHeader → rounds →
// result); every request garbles under fresh labels — per-request
// simulators in matvec mode, per-request sequential-GC sessions in the
// correlated and serial modes — so multiplexing never weakens the
// paper's fresh-labels-per-garbling requirement.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"maxelerator/internal/circuit"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/ot"
	"maxelerator/internal/seqgc"
	"maxelerator/internal/wire"
)

// SessionConfig shapes one multiplexed server session.
type SessionConfig struct {
	// GarbleWorkers is the default row-garbling pool size for requests
	// that leave Request.GarbleWorkers at 0 (see that field's docs).
	GarbleWorkers int
	// Timeouts are the per-operation I/O budgets of this session.
	// Zero fields inherit the server's WithTimeouts defaults; negative
	// fields disable that budget.
	Timeouts Timeouts
	// Trace, when non-nil, is a caller-opened session trace annotated
	// with the session's phase spans instead of opening a fresh one.
	Trace *obs.SessionTrace
}

// ServerSession is the garbler's end of one multiplexed connection.
// It is not safe for concurrent use: requests are served strictly one
// at a time, mirroring the client's sequential evaluation. A session
// that hits a mid-request wire or garbling error is broken — the
// stream position is unknown — and refuses further requests.
type ServerSession struct {
	srv     *Server
	conn    wire.Conn // the timedConn: every op runs under a phase budget
	tc      *timedConn
	to      Timeouts
	ss      *session
	sender  *ot.ExtensionSender
	workers int
	seq     int
	ended   bool
	broken  error
}

// NewSession opens a multiplexed session on conn: versioned handshake,
// then one OT-extension setup whose cost every subsequent Serve call
// amortizes. Close the session to record its terminal state.
func (s *Server) NewSession(conn wire.Conn, cfg SessionConfig) (*ServerSession, error) {
	return s.NewSessionContext(context.Background(), conn, cfg)
}

// NewSessionContext is NewSession under a context: cancellation
// interrupts the handshake and OT setup, including operations already
// blocked on the wire. Pass the same context to ServeContext so
// in-flight requests are interruptible too.
func (s *Server) NewSessionContext(ctx context.Context, conn wire.Conn, cfg SessionConfig) (sess *ServerSession, err error) {
	ss := s.beginSession("mux", conn, cfg.Trace)
	defer func() {
		if err != nil {
			ss.finish(err)
		}
	}()
	if cfg.GarbleWorkers < 0 {
		return nil, fmt.Errorf("protocol: negative garble worker count %d", cfg.GarbleWorkers)
	}
	return s.startSession(ctx, conn, ss, cfg.GarbleWorkers, cfg.Timeouts.resolveAgainst(s.timeouts))
}

// startSession runs the connection-level phases shared by Serve and
// NewSession: version negotiation and OT setup, each wire operation
// under the handshake budget.
func (s *Server) startSession(ctx context.Context, conn wire.Conn, ss *session, workers int, to Timeouts) (*ServerSession, error) {
	cfg := s.cfg
	tc := newTimedConn(conn, ss.reg)
	release := tc.bind(ctx)
	defer release()
	tc.enterPhase(phaseHandshake, to.Handshake)
	ss.tr.SetAttr("proto_version", fmt.Sprint(ProtoVersion))
	ss.tr.SetAttr("scheme", cfg.Params.Scheme.Name())
	hs := ss.tr.StartSpan("handshake")
	err := sendGob(tc, hello{
		ProtoVersion: ProtoVersion,
		Width:        cfg.Width, AccWidth: cfg.AccWidth, Signed: cfg.Signed,
		Scheme: cfg.Params.Scheme.Name(),
	})
	if err != nil {
		hs.End()
		return nil, err
	}
	var ack helloAck
	err = func() error {
		frame, err := tc.RecvMsg()
		if err != nil {
			return err
		}
		// A hinted client's first frame is its routing preface, sent for
		// the benefit of a gateway that may or may not be in the path.
		// Dialed directly, the server just skips it: probe the frame as a
		// hint (the Hint discriminator stays false on a genuine helloAck)
		// and read the ack from the next frame.
		if _, isHint := PeekShapeHint(frame); isHint {
			if frame, err = tc.RecvMsg(); err != nil {
				return err
			}
		}
		return decodeGob(frame, &ack)
	}()
	hs.End()
	switch {
	case err != nil && (errors.Is(err, ErrPhaseTimeout) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Timeouts and cancellations already name the phase; pass them
		// through untouched so errors.Is classification survives.
		return nil, err
	case err != nil && wire.IsDisconnect(err):
		return nil, fmt.Errorf("protocol: peer hung up during handshake (it may speak an unversioned pre-v%d protocol): %w", ProtoVersion, err)
	case err != nil:
		// A frame arrived but is not a helloAck: almost certainly a
		// pre-versioned client that skipped the ack and started its
		// base-OT phase.
		return nil, fmt.Errorf("%w: expected a v%d handshake ack, got an unrecognized frame (%v)", ErrVersionMismatch, ProtoVersion, err)
	case ack.ProtoVersion != ProtoVersion:
		return nil, fmt.Errorf("%w: client speaks v%d, server v%d", ErrVersionMismatch, ack.ProtoVersion, ProtoVersion)
	}

	// OT session setup: the garbler is the extension sender. This is
	// the expensive public-key phase — paid once per connection, reused
	// by every request. It shares the handshake budget: both are
	// connection setup.
	tc.enterPhase(phaseOTSetup, to.Handshake)
	otSpan := ss.tr.StartSpan("ot_setup")
	sender, err := ot.NewExtensionSender(tc, cfg.Rand)
	ss.observeOTSetup(otSpan.End())
	if err != nil {
		return nil, err
	}
	tc.enterPhase(phaseRequestOpen, to.IO)
	return &ServerSession{srv: s, conn: tc, tc: tc, to: to, ss: ss, sender: sender, workers: workers}, nil
}

// Serve handles the next client request with the server-side inputs in
// req. It blocks until the client opens a request; ErrSessionEnded
// means the client closed the loop (or disconnected between requests)
// and no request was consumed. Request.Trace is ignored — the
// session's trace spans every request.
func (sess *ServerSession) Serve(req Request) (*Response, error) {
	return sess.ServeContext(context.Background(), req)
}

// ServeContext is Serve under a context: cancellation interrupts the
// request wherever it is — including wire operations already blocked —
// and breaks the session (the stream position is unknown after an
// interrupted request). This is how shutdown drain reclaims sessions
// stuck on a silent peer.
func (sess *ServerSession) ServeContext(ctx context.Context, req Request) (*Response, error) {
	if sess.broken != nil {
		return nil, fmt.Errorf("protocol: session unusable after earlier error: %w", sess.broken)
	}
	if sess.ended {
		return nil, ErrSessionEnded
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	release := sess.tc.bind(ctx)
	defer release()
	sess.tc.enterPhase(phaseRequestOpen, sess.to.IO)
	var open reqOpen
	if err := recvGob(sess.conn, &open); err != nil {
		sess.ended = true
		if wire.IsDisconnect(err) {
			return nil, ErrSessionEnded
		}
		sess.broken = err
		return nil, fmt.Errorf("protocol: reading request open: %w", err)
	}
	switch open.Op {
	case opEnd:
		sess.ended = true
		return nil, ErrSessionEnded
	case opRequest:
	default:
		sess.broken = fmt.Errorf("protocol: unknown request op %q", open.Op)
		return nil, sess.broken
	}
	resp, err := sess.serveOpened(ctx, req)
	if err != nil {
		if errors.Is(err, ErrInternal) {
			// A recovered panic: tell the evaluator explicitly so it
			// fails now instead of waiting out its deadline. Best
			// effort — the wire may already be down — and generic: the
			// panic detail stays in the server log, off the wire.
			_ = sendErrFrame(sess.conn, "request aborted by internal server error")
		}
		sess.broken = err
		return nil, err
	}
	sess.seq++
	sess.tc.enterPhase(phaseRequestOpen, sess.to.IO)
	return resp, nil
}

// Close records the session's terminal state in the observability
// layer. It never touches the connection — close that separately.
func (sess *ServerSession) Close() error {
	sess.ss.finish(sess.broken)
	return nil
}

// Requests returns how many requests the session has served.
func (sess *ServerSession) Requests() int { return sess.seq }

// serveOpened dispatches an opened request to its datapath. Each path
// sends its own reqHeader (serial mode must build the stage layout
// first to announce StagesPerMAC). A panic anywhere in the serving
// path is contained here: it becomes a per-request ErrInternal, never
// a daemon crash (pool workers carry their own recover — a goroutine
// panic cannot be caught across goroutines).
func (sess *ServerSession) serveOpened(ctx context.Context, req Request) (resp *Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, recoveredPanic(sess.ss.reg, r)
		}
	}()
	switch {
	case req.Mode == ModeSerial:
		return sess.serveSerial(ctx, req)
	case req.OT == OTCorrelated:
		return sess.serveCorrelated(ctx, req)
	default:
		return sess.serveRows(ctx, req)
	}
}

// header fills the request-invariant frame fields.
func (sess *ServerSession) header(req Request, cols int) reqHeader {
	mode := wireModeMatVec
	if req.Mode == ModeSerial {
		mode = wireModeSerial
	}
	return reqHeader{
		Seq: sess.seq, Mode: mode,
		Rows: len(req.Matrix), Cols: cols, OT: req.OT,
	}
}

// readResult runs the decode phase: the client's reported values.
func (sess *ServerSession) readResult(rows int) ([]int64, error) {
	sess.tc.enterPhase(phaseDecode, sess.to.IO)
	decode := sess.ss.tr.StartSpan("decode")
	defer decode.End()
	var res result
	if err := recvGob(sess.conn, &res); err != nil {
		return nil, fmt.Errorf("protocol: reading client result: %w", err)
	}
	if len(res.Values) != rows {
		return nil, fmt.Errorf("protocol: client reported %d values, want %d", len(res.Values), rows)
	}
	return res.Values, nil
}

// serveRows is the per-round and batched matvec datapath. Rows are
// garbled by the worker pool (fresh labels per row and per request)
// and streamed strictly in row order, so the wire format is identical
// whatever the pool size.
func (sess *ServerSession) serveRows(ctx context.Context, req Request) (*Response, error) {
	A := req.Matrix
	cols := len(A[0])
	ss := sess.ss
	reqStart := time.Now()
	sess.tc.enterPhase(phaseRounds, sess.to.IO)
	ss.tr.SetAttr("rows", fmt.Sprint(len(A)))
	ss.tr.SetAttr("cols", fmt.Sprint(cols))
	if err := sendGob(sess.conn, sess.header(req, cols)); err != nil {
		return nil, err
	}

	workers := req.GarbleWorkers
	if workers == 0 {
		workers = sess.workers
	}

	// Offline/online split: a pool hit replaces garbling with material
	// that was pre-garbled during idle time — the online path below is
	// then OT + table streaming + decode only. A miss (or no engine)
	// falls through to inline garbling; the bytes on the wire are
	// identical either way, so the evaluator cannot tell (and need not
	// care) which path served it.
	var pre []*maxsim.DotProductRun
	pcOutcome := "off"
	if eng := sess.srv.pre; eng != nil {
		if ent := eng.Take(sess.srv.shapeOf(req)); ent != nil {
			bound, err := ent.Bind(A)
			if err != nil {
				return nil, err
			}
			pre = bound
			pcOutcome = "hit"
			ss.tr.SetAttr("precompute", "hit")
		} else {
			pcOutcome = "miss"
			ss.tr.SetAttr("precompute", "miss")
		}
	}

	rounds := ss.tr.StartSpan("rounds")
	defer rounds.End()
	// Streaming pipeline (see stream.go): garbling — or pooled-material
	// replay — overlaps framing and transfer, so the evaluator starts on
	// row 0 while later rows are still being produced. The byte stream
	// is identical to the fully buffered path.
	st := newRowStreamer(sess, req.OT)
	if err := st.run(ctx, A, workers, pre); err != nil {
		return nil, err
	}
	agg := st.agg
	rounds.End()
	ss.tr.SetAttr("macs", fmt.Sprint(agg.MACs))
	ss.tr.SetAttr("table_bytes", fmt.Sprint(agg.TableBytes))

	vals, err := sess.readResult(len(A))
	if err != nil {
		return nil, err
	}
	// Completed requests only: the calibrator (internal/capmodel) turns
	// this distribution into simulator service times, and an aborted
	// request's partial duration would poison it.
	ss.observeRequest(pcOutcome, time.Since(reqStart))
	return &Response{Values: vals, Stats: agg}, nil
}

// serveCorrelated is the correlated-OT datapath: each round, the OT
// fixes the evaluator-input FALSE labels first, then the round is
// garbled around them and the material streamed. A dedicated
// sequential-GC session (fresh Δ per request) drives the garbling so
// the OT corrections and the circuit share one offset — which also
// means rows are inherently sequential here; the worker pool does not
// apply.
func (sess *ServerSession) serveCorrelated(ctx context.Context, req Request) (*Response, error) {
	A := req.Matrix
	cfg := sess.srv.cfg
	ss := sess.ss
	sess.tc.enterPhase(phaseRounds, sess.to.IO)
	sim, err := maxsim.New(cfg)
	if err != nil {
		return nil, err
	}
	ss.tr.SetAttr("rows", fmt.Sprint(len(A)))
	ss.tr.SetAttr("cols", fmt.Sprint(len(A[0])))
	if err := sendGob(sess.conn, sess.header(req, len(A[0]))); err != nil {
		return nil, err
	}
	gs, err := seqgc.NewGarblerSession(cfg.Params, cfg.Rand, sim.Circuit())
	if err != nil {
		return nil, err
	}

	rounds := ss.tr.StartSpan("rounds")
	defer rounds.End()
	var agg Stats
	for i, row := range A {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("protocol: rounds phase interrupted at row %d: %w", i, err)
		}
		if err := sess.correlatedRow(gs, i, row, &agg); err != nil {
			return nil, err
		}
	}
	rounds.End()
	// Timing follows the same schedule model as the plain path.
	mm, err := sim.MatMulStats(len(A), len(A[0]), 1)
	if err != nil {
		return nil, err
	}
	agg.Cycles = mm.Cycles
	agg.Stages = mm.Stages
	agg.TablesScheduled = mm.TablesScheduled
	agg.IdleSlots = mm.IdleSlots
	agg.CoreUtilization = mm.CoreUtilization
	agg.ModeledTime = mm.ModeledTime
	agg.PCIeTime = cfg.PCIe.TransferTime(int(agg.TableBytes))
	// This path assembles its Stats by hand, so it publishes them to
	// the registry explicitly (GarbleDotProduct is never called).
	sim.RecordStats(&agg)
	ss.tr.SetAttr("macs", fmt.Sprint(agg.MACs))

	vals, err := sess.readResult(len(A))
	if err != nil {
		return nil, err
	}
	return &Response{Values: vals, Stats: agg}, nil
}

// correlatedRow garbles and streams one correlated-OT row; the row
// span ends on every path out, fixing the leak the error returns in
// the pre-v2 flow had.
func (sess *ServerSession) correlatedRow(gs *seqgc.GarblerSession, i int, row []int64, agg *Stats) error {
	cfg := sess.srv.cfg
	var rowSpan *obs.Span
	if i < maxRowSpans {
		rowSpan = sess.ss.tr.StartSpan(fmt.Sprintf("round_garble[%d]", i))
	}
	defer rowSpan.End()
	gs.Reset()
	for _, xi := range row {
		if err := checkRange(xi, cfg.Width, cfg.Signed); err != nil {
			return fmt.Errorf("protocol: %w", err)
		}
		labels, err := sess.sender.SendCorrelatedLabels(cfg.Width, gs.Delta())
		if err != nil {
			return err
		}
		gb, err := gs.NextRoundWithEvalLabels(circuit.Int64ToBits(xi, cfg.Width), labels)
		if err != nil {
			return err
		}
		if err := sendMaterial(sess.conn, &gb.Material); err != nil {
			return err
		}
		agg.MACs++
		agg.TablesGarbled += uint64(len(gb.Material.Tables))
		agg.TableBytes += uint64(gb.Material.CiphertextBytes())
	}
	return nil
}
