package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Obs bundles the metrics registry and the session tracer: the one
// handle instrumented packages and the daemon share. A nil *Obs is a
// universal no-op, so observability stays strictly opt-in.
type Obs struct {
	reg    *Registry
	tracer *Tracer
}

// New creates a registry plus a tracer retaining traceCapacity recent
// sessions (DefaultTraceCapacity if <= 0).
func New(traceCapacity int) *Obs {
	return &Obs{reg: NewRegistry(), tracer: NewTracer(traceCapacity)}
}

// Metrics returns the registry (nil on a nil Obs).
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Traces returns the tracer (nil on a nil Obs).
func (o *Obs) Traces() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Handler returns the daemon's debug surface:
//
//	GET /metrics         Prometheus text exposition of every metric
//	GET /debug/sessions  recent session traces as JSON (?n=K limits)
//	GET /healthz         liveness probe, "ok"
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/sessions", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		sessions := o.Traces().Recent(n)
		if sessions == nil {
			sessions = []SessionSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"sessions": sessions})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}
