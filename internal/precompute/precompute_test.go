package precompute

import (
	"errors"
	"sync"
	"testing"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
)

func testShape(rows, cols int) Shape {
	return Shape{Rows: rows, Cols: cols, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"}
}

func testEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Sim.Width == 0 {
		cfg.Sim = maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPrefillAndTake(t *testing.T) {
	reg := obs.NewRegistry()
	e := testEngine(t, Config{Metrics: reg})
	s := testShape(2, 3)
	if err := e.Prefill(s, 2); err != nil {
		t.Fatal(err)
	}
	if d := e.Depth(s); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
	if v := reg.Gauge("precompute_pool_depth", "", obs.L("shape", s.String())).Value(); v != 2 {
		t.Fatalf("depth gauge = %d, want 2", v)
	}
	ent := e.Take(s)
	if ent == nil {
		t.Fatal("Take missed on a warm pool")
	}
	if ent.Shape() != s {
		t.Fatalf("entry shape %v, want %v", ent.Shape(), s)
	}
	runs, err := ent.Bind([][]int64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || len(runs[0].Rounds) != 3 {
		t.Fatalf("bound runs %dx%d, want 2x3", len(runs), len(runs[0].Rounds))
	}
	if v := reg.Counter("precompute_hits_total", "", obs.L("shape", s.String())).Value(); v != 1 {
		t.Fatalf("hits = %d, want 1", v)
	}
	if d := e.Depth(s); d != 1 {
		t.Fatalf("depth after take = %d, want 1", d)
	}
}

// TestTakeMissLearnsShape: a miss admits the shape so the background
// workers converge new traffic to hits.
func TestTakeMissLearnsShape(t *testing.T) {
	reg := obs.NewRegistry()
	e := testEngine(t, Config{Metrics: reg, PoolSize: 1})
	e.Start()
	s := testShape(1, 2)
	if ent := e.Take(s); ent != nil {
		t.Fatal("cold pool returned an entry")
	}
	if v := reg.Counter("precompute_misses_total", "", obs.L("shape", s.String())).Value(); v != 1 {
		t.Fatalf("misses = %d, want 1", v)
	}
	waitFor(t, "background refill", func() bool { return e.Depth(s) >= 1 })
	if ent := e.Take(s); ent == nil {
		t.Fatal("pool still cold after background refill")
	}
}

func TestUnpoolableShapesRejected(t *testing.T) {
	e := testEngine(t, Config{})
	for _, s := range []Shape{
		{Rows: 1, Cols: 2, Width: 8, Signed: true, Mode: "serial", OT: "per-round"},
		{Rows: 1, Cols: 2, Width: 8, Signed: true, Mode: "matvec", OT: "correlated"},
		{Rows: 0, Cols: 2, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"},
		{Rows: 1, Cols: 2, Width: 16, Signed: true, Mode: "matvec", OT: "per-round"}, // wrong width for engine
		{Rows: 1, Cols: 2, Width: 8, Signed: false, Mode: "matvec", OT: "per-round"}, // wrong signedness
	} {
		if e.Admit(s) {
			t.Fatalf("shape %s admitted", s)
		}
		if ent := e.Take(s); ent != nil {
			t.Fatalf("shape %s served from pool", s)
		}
		if err := e.Prefill(s, 1); err == nil {
			t.Fatalf("shape %s prefilled", s)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	e := testEngine(t, Config{Metrics: reg, MaxShapes: 2})
	s1, s2, s3 := testShape(1, 1), testShape(1, 2), testShape(1, 3)
	if err := e.Prefill(s1, 1); err != nil {
		t.Fatal(err)
	}
	e.Admit(s2)
	e.Admit(s1) // touch s1: s2 becomes the LRU victim
	e.Admit(s3) // over budget: evict s2
	if d := e.Depth(s1); d != 1 {
		t.Fatalf("hot shape evicted (depth %d)", d)
	}
	if v := reg.Counter("precompute_evictions_total", "").Value(); v != 1 {
		t.Fatalf("evictions = %d, want 1", v)
	}
	if v := reg.Gauge("precompute_shapes", "").Value(); v != 2 {
		t.Fatalf("shapes gauge = %d, want 2", v)
	}
	// The evicted pool's gauge must read zero, not its last depth.
	if v := reg.Gauge("precompute_pool_depth", "", obs.L("shape", s2.String())).Value(); v != 0 {
		t.Fatalf("evicted depth gauge = %d, want 0", v)
	}
}

// TestStopDrainsGauges: shutdown must leave no phantom pool capacity in
// a final metrics snapshot.
func TestStopDrainsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	e := testEngine(t, Config{Metrics: reg, PoolSize: 2})
	e.Start()
	s := testShape(2, 2)
	if err := e.Prefill(s, 2); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	if v := reg.Gauge("precompute_pool_depth", "", obs.L("shape", s.String())).Value(); v != 0 {
		t.Fatalf("depth gauge after Stop = %d, want 0", v)
	}
	if v := reg.Gauge("precompute_shapes", "").Value(); v != 0 {
		t.Fatalf("shapes gauge after Stop = %d, want 0", v)
	}
	if v := reg.Gauge("precompute_refill_busy", "").Value(); v != 0 {
		t.Fatalf("busy gauge after Stop = %d, want 0", v)
	}
	if ent := e.Take(s); ent != nil {
		t.Fatal("Take served from a stopped engine")
	}
	if e.Admit(s) {
		t.Fatal("Admit accepted on a stopped engine")
	}
	e.Stop() // idempotent
}

// TestRefillPanicContained: a panic inside a refill worker is counted,
// the busy gauge returns to zero, and the worker keeps filling — the
// PR-4 recover-don't-fail pattern applied to the offline path.
func TestRefillPanicContained(t *testing.T) {
	reg := obs.NewRegistry()
	e := testEngine(t, Config{Metrics: reg, PoolSize: 1})
	s := testShape(1, 1)
	var mu sync.Mutex
	fired := false
	buildTestHook = func(Shape) {
		mu.Lock()
		defer mu.Unlock()
		if !fired {
			fired = true
			panic("injected refill fault")
		}
	}
	defer func() { buildTestHook = nil }()
	e.Admit(s)
	e.Start()
	waitFor(t, "refill after recovered panic", func() bool { return e.Depth(s) >= 1 })
	if v := reg.Counter("panics_recovered_total", "").Value(); v != 1 {
		t.Fatalf("panics_recovered_total = %d, want 1", v)
	}
	if v := reg.Gauge("precompute_refill_busy", "").Value(); v != 0 {
		t.Fatalf("busy gauge = %d, want 0 after recovered panic", v)
	}
	// Stop before the deferred hook reset: workers must not read the
	// hook concurrently with the write that clears it.
	e.Stop()
}

// TestEntrySingleUseRaced: racing consumers on one entry — exactly one
// Bind wins, every loser sees ErrConsumed. Run under -race in tier-1.
func TestEntrySingleUseRaced(t *testing.T) {
	e := testEngine(t, Config{})
	s := testShape(1, 2)
	if err := e.Prefill(s, 1); err != nil {
		t.Fatal(err)
	}
	ent := e.Take(s)
	if ent == nil {
		t.Fatal("warm pool missed")
	}
	const racers = 16
	var wg sync.WaitGroup
	wins := make(chan int, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runs, err := ent.Bind([][]int64{{1, 2}})
			switch {
			case err == nil && len(runs) == 1:
				wins <- 1
			case errors.Is(err, ErrConsumed):
			default:
				t.Errorf("unexpected bind outcome: %v", err)
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d binds succeeded, want exactly 1", n)
	}
}

// TestTakeNeverServesSameEntryTwice: concurrent Takes on a warm pool
// return distinct entries; the pool never double-serves.
func TestTakeNeverServesSameEntryTwice(t *testing.T) {
	e := testEngine(t, Config{PoolSize: 4})
	s := testShape(1, 1)
	const entries = 4
	if err := e.Prefill(s, entries); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make(chan *Entry, entries*2)
	for i := 0; i < entries*2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ent := e.Take(s); ent != nil {
				got <- ent
			}
		}()
	}
	wg.Wait()
	close(got)
	seen := map[*Entry]bool{}
	for ent := range got {
		if seen[ent] {
			t.Fatal("same entry served twice")
		}
		seen[ent] = true
	}
	if len(seen) != entries {
		t.Fatalf("%d entries served, want %d", len(seen), entries)
	}
}

func TestNilEngineIsNoOp(t *testing.T) {
	var e *Engine
	s := testShape(1, 1)
	if e.Take(s) != nil || e.Admit(s) || e.Depth(s) != 0 {
		t.Fatal("nil engine not a no-op")
	}
	e.Start()
	e.Stop()
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Sim: maxsim.Config{Width: 7}}); err == nil {
		t.Fatal("invalid simulator config accepted")
	}
	if _, err := New(Config{Sim: maxsim.Config{Width: 8}, PoolSize: -1}); err == nil {
		t.Fatal("negative pool size accepted")
	}
}

func TestShapeString(t *testing.T) {
	s := Shape{Rows: 16, Cols: 16, Width: 16, Signed: true, Mode: "matvec", OT: "per-round"}
	if got, want := s.String(), "16x16/b16s/matvec/per-round"; got != want {
		t.Fatalf("shape string %q, want %q", got, want)
	}
}

// TestPoolStatsCountsTakeOutcomes: the engine-local hit/miss snapshot
// works without any Metrics attached — the property maxbench's grid
// degradation check depends on.
func TestPoolStatsCountsTakeOutcomes(t *testing.T) {
	e := testEngine(t, Config{}) // no Metrics: obs counters are no-ops
	s := testShape(1, 2)
	if ent := e.Take(s); ent != nil {
		t.Fatal("cold pool returned an entry")
	}
	if err := e.Prefill(s, 2); err != nil {
		t.Fatal(err)
	}
	if ent := e.Take(s); ent == nil {
		t.Fatal("warm pool missed")
	}
	hits, misses := e.PoolStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("PoolStats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	var nilEngine *Engine
	if h, m := nilEngine.PoolStats(); h != 0 || m != 0 {
		t.Fatalf("nil engine PoolStats = %d, %d", h, m)
	}
}
