// Package rng simulates the on-chip entropy source of MAXelerator's
// label generator (§5.2): the ring-oscillator-based random number
// generator of Wold and Tan, where one RNG samples and XORs the
// outputs of 16 three-inverter ring oscillators, and validates the
// resulting bit stream with a NIST-style battery of statistical tests.
//
// The simulation models each ring oscillator as a free-running square
// wave whose period accumulates Gaussian jitter — the physical
// phenomenon the hardware harvests. Sampling flip-flops latch each
// oscillator at the system clock and the sampled bits are XOR-ed into
// the output bit, mirroring the Wold–Tan enhancement of placing a DFF
// per oscillator before the XOR tree.
//
// The package is a hardware model for the simulator and the
// benchmarks; protocol-critical randomness elsewhere in the repository
// comes from crypto/rand.
package rng

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultOscillators is the paper's oscillator count per RNG.
const DefaultOscillators = 16

// DefaultInverters is the ring length used in the paper (3 inverters).
const DefaultInverters = 3

// ringOscillator models one free-running ring with phase jitter.
type ringOscillator struct {
	// periodSamples is the nominal oscillation period measured in
	// system-clock samples (< 1: the ring runs faster than the clock).
	periodSamples float64
	// jitterSigma is the standard deviation of the per-sample phase
	// noise, in periods.
	jitterSigma float64
	// phase is the current phase in periods, ∈ [0, ∞).
	phase float64
}

// sample advances the oscillator by one system clock and latches its
// output level.
func (ro *ringOscillator) sample(noise *rand.Rand) bool {
	ro.phase += 1/ro.periodSamples + noise.NormFloat64()*ro.jitterSigma
	_, frac := math.Modf(ro.phase)
	return frac >= 0.5
}

// Config parameterises a simulated RO RNG.
type Config struct {
	// Oscillators is the number of rings XOR-ed together (default 16).
	Oscillators int
	// JitterSigma is the per-sample phase noise in periods
	// (default 0.05, a deliberately conservative accumulation rate).
	JitterSigma float64
	// Seed seeds the jitter process; a fixed seed gives a reproducible
	// stream for tests.
	Seed int64
}

// RORNG is a simulated Wold–Tan ring-oscillator RNG producing one bit
// per system clock. It implements io.Reader over the packed bits.
type RORNG struct {
	rings []ringOscillator
	noise *rand.Rand
	// SamplesTaken counts system clocks consumed, for the energy
	// accounting of §5.2 (the FSM gates RNGs off when idle).
	SamplesTaken uint64
}

// New builds a simulated RNG array.
func New(cfg Config) (*RORNG, error) {
	if cfg.Oscillators == 0 {
		cfg.Oscillators = DefaultOscillators
	}
	if cfg.Oscillators < 1 {
		return nil, fmt.Errorf("rng: oscillator count %d must be positive", cfg.Oscillators)
	}
	if cfg.JitterSigma == 0 {
		cfg.JitterSigma = 0.05
	}
	if cfg.JitterSigma < 0 {
		return nil, fmt.Errorf("rng: negative jitter %v", cfg.JitterSigma)
	}
	noise := rand.New(rand.NewSource(cfg.Seed))
	r := &RORNG{noise: noise}
	for i := 0; i < cfg.Oscillators; i++ {
		// Incommensurate nominal periods spread across [0.31, 0.47)
		// clock samples — 3-inverter rings oscillate a few times per
		// 200 MHz system clock. Process variation is modelled by a
		// per-ring perturbation.
		period := 0.31 + 0.16*float64(i)/float64(cfg.Oscillators)
		period *= 1 + 0.02*noise.NormFloat64()
		r.rings = append(r.rings, ringOscillator{
			periodSamples: period,
			jitterSigma:   cfg.JitterSigma,
			phase:         noise.Float64(),
		})
	}
	return r, nil
}

// MustNew builds a simulated RNG and panics on bad configuration.
func MustNew(cfg Config) *RORNG {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Bit produces the next output bit: the XOR of all sampled rings.
func (r *RORNG) Bit() bool {
	r.SamplesTaken++
	out := false
	for i := range r.rings {
		if r.rings[i].sample(r.noise) {
			out = !out
		}
	}
	return out
}

// Bits fills dst with n fresh bits.
func (r *RORNG) Bits(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Bit()
	}
	return out
}

// Read implements io.Reader, packing 8 bits per byte LSB-first.
func (r *RORNG) Read(p []byte) (int, error) {
	for i := range p {
		var b byte
		for j := 0; j < 8; j++ {
			if r.Bit() {
				b |= 1 << uint(j)
			}
		}
		p[i] = b
	}
	return len(p), nil
}
