package precompute

// Property tests for the two invariants the offline/online split rests
// on (ISSUE 5):
//
//  1. Determinism — for a fixed RNG seed, a precomputed entry's garbled
//     material is byte-identical to inline garbling of the same shape.
//     This is what makes "pool hit" and "pool miss" indistinguishable
//     on the wire, and what lets an entry be audited from its seed.
//  2. Single use — a consumed entry can never be served twice (the
//     racing half of this lives in TestEntrySingleUseRaced).

import (
	"bytes"
	"math/rand"
	"testing"

	"maxelerator/internal/gc"
	"maxelerator/internal/label"
	"maxelerator/internal/maxsim"
)

// TestEntryMatchesInlineGarbling sweeps seeds and shapes: an entry
// built from seed S and bound to matrix A must be byte-identical —
// material and OT pairs — to the inline path (one simulator reused
// across rows, as serveRows garbles) drawing from the same seed.
func TestEntryMatchesInlineGarbling(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		rows, cols := 1+rng.Intn(3), 1+rng.Intn(4)
		shape := Shape{Rows: rows, Cols: cols, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"}
		var seed [16]byte
		rng.Read(seed[:])
		A := make([][]int64, rows)
		for i := range A {
			A[i] = make([]int64, cols)
			for j := range A[i] {
				A[i][j] = int64(rng.Intn(255) - 128)
			}
		}

		ent, err := BuildEntryFromSeed(cfg, shape, seed)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := ent.Bind(A)
		if err != nil {
			t.Fatal(err)
		}

		// Inline reference: the exact serveRows fallback path — one
		// simulator over the same DRBG, rows garbled in order.
		drbg, err := label.NewDRBG(seed)
		if err != nil {
			t.Fatal(err)
		}
		inlineCfg := cfg
		inlineCfg.Rand = drbg
		sim, err := maxsim.New(inlineCfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range A {
			want, err := sim.GarbleDotProduct(x)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Rounds) != len(bound[i].Rounds) {
				t.Fatalf("trial %d row %d: %d rounds, want %d", trial, i, len(bound[i].Rounds), len(want.Rounds))
			}
			for r := range want.Rounds {
				wm, err := gc.MarshalMaterial(&want.Rounds[r].Material)
				if err != nil {
					t.Fatal(err)
				}
				gm, err := gc.MarshalMaterial(&bound[i].Rounds[r].Material)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wm, gm) {
					t.Fatalf("trial %d row %d round %d: precomputed material differs from inline", trial, i, r)
				}
				for p := range want.Rounds[r].EvalPairs {
					if want.Rounds[r].EvalPairs[p] != bound[i].Rounds[r].EvalPairs[p] {
						t.Fatalf("trial %d row %d round %d: eval pair %d differs", trial, i, r, p)
					}
				}
			}
		}
	}
}

// TestEntriesAreIndependent: two entries of the same shape from
// different seeds share no material — each entry is its own garbling
// with its own free-XOR offset, which is why consuming entries
// one-per-request preserves the fresh-labels requirement.
func TestEntriesAreIndependent(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	shape := Shape{Rows: 1, Cols: 2, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"}
	a, err := BuildEntryFromSeed(cfg, shape, [16]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildEntryFromSeed(cfg, shape, [16]byte{2})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Bind([][]int64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Bind([][]int64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := gc.MarshalMaterial(&ra[0].Rounds[0].Material)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := gc.MarshalMaterial(&rb[0].Rounds[0].Material)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ma, mb) {
		t.Fatal("different seeds produced identical material")
	}
	if ra[0].Rounds[0].EvalPairs[0] == rb[0].Rounds[0].EvalPairs[0] {
		t.Fatal("different seeds produced identical eval pairs")
	}
}
