// Package maxsim is the cycle-accurate MAXelerator simulator: the
// stand-in for the paper's Virtex UltraSCALE implementation (§5).
//
// The simulator has two coupled layers:
//
//   - Timing. Clock-cycle accounting follows the FSM schedule of
//     package sched exactly — 3 cycles per stage, b stages per MAC in
//     steady state, b + log₂(b) + 2 stages of pipeline-fill latency,
//     ≤ 2 idle core-slots per stage — at the device clock of the
//     modelled FPGA, with the PCIe model draining garbled tables.
//   - Function. Every MAC round is *actually garbled* with the half-
//     gate engine of package gc over the MAC netlist of package
//     circuit, so the simulator's output is a stream of genuine
//     garbled tables that a real evaluator can evaluate. This is what
//     lets the test suite prove the accelerator's protocol output
//     correct end to end, not just fast on paper.
//
// The two layers are reconciled in Stats: TablesScheduled counts the
// FSM's slot grid (the paper's bit-serial datapath re-garbles its
// serial adder cells every stage), TablesGarbled counts the functional
// netlist's AND gates. Timing always follows the schedule, which is
// the paper's authoritative cost model.
package maxsim

import (
	"crypto/rand"
	"fmt"
	"io"
	"strconv"
	"time"

	"maxelerator/internal/circuit"
	"maxelerator/internal/fpga"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
	"maxelerator/internal/obs"
	"maxelerator/internal/sched"
)

// Config parameterises one simulated accelerator.
type Config struct {
	// Width is the operand bit-width b (power of two ≥ 4).
	Width int
	// AccWidth is the accumulator width; defaults to 2·Width.
	AccWidth int
	// Signed selects the signed datapath (§4.3). The schedule always
	// provisions the sign slots, as the paper's does.
	Signed bool
	// MACUnits is the number of parallel MAC units instantiated on the
	// fabric. Defaults to 1. Each unit contains sched cores(b) GC
	// cores.
	MACUnits int
	// Device is the modelled FPGA; defaults to the paper's VCU108.
	Device fpga.Device
	// PCIe is the host link model; defaults to fpga.DefaultPCIe.
	PCIe fpga.PCIeLink
	// Params is the garbling configuration; defaults to
	// gc.DefaultParams (half gates over fixed-key AES).
	Params gc.Params
	// Rand supplies label entropy; defaults to crypto/rand. The
	// hardware's ring-oscillator label generator is modelled separately
	// by LabelGenerator.
	Rand io.Reader
	// Metrics, when non-nil, receives the simulator's hardware-model
	// accounting (cycles, tables, idle slots, stalls, per-core
	// counters) as live counters. Nil disables recording with no
	// overhead on the garbling paths.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.AccWidth == 0 {
		c.AccWidth = 2 * c.Width
	}
	if c.MACUnits == 0 {
		c.MACUnits = 1
	}
	if c.Device.Name == "" {
		c.Device = fpga.VCU108
	}
	if c.PCIe == (fpga.PCIeLink{}) {
		c.PCIe = fpga.DefaultPCIe
	}
	if c.Params.Hash == nil && c.Params.Scheme == nil {
		c.Params = gc.DefaultParams()
	}
	if c.Rand == nil {
		c.Rand = rand.Reader
	}
	return c
}

// Simulator is a configured MAXelerator instance.
//
// Concurrent-use contract: a Simulator owns one garbler (one free-XOR
// offset and label stream), so GarbleDotProduct and Trace must not be
// called concurrently on the same instance — callers that garble in
// parallel (the protocol layer's row-garbling worker pool) must build
// one Simulator per worker, which also gives each worker fresh labels
// as the paper requires. The read-only accessors (Config, Circuit,
// Schedule, Resources, throughput queries) and the metrics registry
// the stats feed into are safe to share; Config.Rand is read by
// whichever goroutine garbles, so a source shared across simulators
// must itself be safe for concurrent reads.
type Simulator struct {
	cfg      Config
	schedule *sched.Schedule
	macCkt   *circuit.Circuit
	garbler  *gc.Garbler
	met      simMetrics
	// idlePerStage[i] is core i's idle slots in one 3-cycle stage,
	// read off the FSM slot grid once at construction.
	idlePerStage []uint64
}

// simMetrics caches the simulator's registry handles so recording is
// one atomic add per field, not a map lookup. Every handle is nil (a
// no-op) when the configuration carries no registry.
type simMetrics struct {
	macs            *obs.Counter
	cycles          *obs.Counter
	stages          *obs.Counter
	tablesGarbled   *obs.Counter
	tablesScheduled *obs.Counter
	tableBytes      *obs.Counter
	idleSlots       *obs.Counter
	rngBits         *obs.Counter
	traceCycles     *obs.Counter
	stallCycles     *obs.Counter
	drainedBytes    *obs.Counter
	coreIdle        []*obs.Counter
	coreTables      []*obs.Counter
	peakMemory      *obs.Gauge
}

func newSimMetrics(reg *obs.Registry, numCores int) simMetrics {
	m := simMetrics{
		macs:            reg.Counter("macs_total", "MAC rounds garbled"),
		cycles:          reg.Counter("cycles_total", "modelled clock cycles on the critical MAC unit"),
		stages:          reg.Counter("stages_total", "modelled 3-cycle FSM stages"),
		tablesGarbled:   reg.Counter("tables_garbled_total", "garbled tables produced by the functional netlist"),
		tablesScheduled: reg.Counter("tables_scheduled_total", "garbled tables implied by the FSM slot grid"),
		tableBytes:      reg.Counter("table_bytes_total", "garbled-table bytes produced"),
		idleSlots:       reg.Counter("idle_slots_total", "idle core-slots over all runs"),
		rngBits:         reg.Counter("rng_bits_total", "label entropy consumed, in bits"),
		traceCycles:     reg.Counter("trace_cycles_total", "clock cycles walked by the memory-system trace"),
		stallCycles:     reg.Counter("stall_cycles_total", "cycles the FSM stalled on full memory blocks"),
		drainedBytes:    reg.Counter("pcie_drained_bytes_total", "bytes drained through the shared output port"),
		peakMemory:      reg.Gauge("peak_memory_bytes", "high-water mark of garbled tables resident in core memory blocks"),
	}
	for i := 0; i < numCores; i++ {
		lbl := obs.L("core", strconv.Itoa(i))
		m.coreIdle = append(m.coreIdle, reg.Counter("core_idle_slots_total", "idle slots per GC core", lbl))
		m.coreTables = append(m.coreTables, reg.Counter("core_tables_total", "tables garbled per GC core (trace runs)", lbl))
	}
	return m
}

// New builds a simulator. It validates that the configured MAC units
// fit the modelled device.
func New(cfg Config) (*Simulator, error) {
	cfg = cfg.withDefaults()
	s, err := sched.Build(cfg.Width)
	if err != nil {
		return nil, err
	}
	if cfg.MACUnits < 1 {
		return nil, fmt.Errorf("maxsim: MAC unit count %d must be positive", cfg.MACUnits)
	}
	maxUnits, err := cfg.Device.MaxMACUnits(cfg.Width)
	if err != nil {
		return nil, err
	}
	if cfg.MACUnits > maxUnits {
		return nil, fmt.Errorf("maxsim: %d MAC units of width %d exceed %s capacity of %d",
			cfg.MACUnits, cfg.Width, cfg.Device.Name, maxUnits)
	}
	ckt, err := circuit.MAC(circuit.MACConfig{Width: cfg.Width, AccWidth: cfg.AccWidth, Signed: cfg.Signed})
	if err != nil {
		return nil, err
	}
	g, err := gc.NewGarbler(cfg.Params, cfg.Rand)
	if err != nil {
		return nil, err
	}
	sim := &Simulator{cfg: cfg, schedule: s, macCkt: ckt, garbler: g}
	sim.met = newSimMetrics(cfg.Metrics, s.NumCores())
	sim.idlePerStage = make([]uint64, len(s.Cores))
	for i, core := range s.Cores {
		for _, slot := range core.Slots {
			if slot.Kind == sched.Idle {
				sim.idlePerStage[i]++
			}
		}
	}
	return sim, nil
}

// Schedule exposes the FSM schedule driving the timing model.
func (s *Simulator) Schedule() *sched.Schedule { return s.schedule }

// Circuit exposes the sequential MAC netlist being garbled.
func (s *Simulator) Circuit() *circuit.Circuit { return s.macCkt }

// Config returns the resolved configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Resources returns the modelled fabric cost of the instantiated MAC
// units.
func (s *Simulator) Resources() (fpga.Resources, error) {
	r, err := fpga.MACUnitResources(s.cfg.Width)
	if err != nil {
		return fpga.Resources{}, err
	}
	return r.Scale(s.cfg.MACUnits), nil
}

// Stats aggregates the hardware-model accounting of a run.
type Stats struct {
	// MACs is the number of MAC rounds garbled.
	MACs uint64
	// Cycles is the modelled clock-cycle count on the critical MAC
	// unit, including pipeline fill.
	Cycles uint64
	// Stages is Cycles / 3.
	Stages uint64
	// TablesScheduled is the garbled-table count implied by the FSM
	// slot grid (the paper's datapath cost).
	TablesScheduled uint64
	// TablesGarbled is the number of tables the functional netlist
	// produced.
	TablesGarbled uint64
	// TableBytes is the functional garbled-table volume.
	TableBytes uint64
	// IdleSlots is the total idle core-slots over the run.
	IdleSlots uint64
	// CoreUtilization is 1 − idle fraction of the steady-state grid.
	CoreUtilization float64
	// RNGBitsDrawn is the label entropy consumed, in bits.
	RNGBitsDrawn uint64
	// ModeledTime is Cycles at the device clock.
	ModeledTime time.Duration
	// PCIeTime is the modelled host-transfer time for TableBytes.
	PCIeTime time.Duration
}

// ThroughputMACsPerSec is the steady-state modelled throughput of the
// whole accelerator (all MAC units).
func (s *Simulator) ThroughputMACsPerSec() float64 {
	perUnit := s.cfg.Device.MaxClockMHz * 1e6 / float64(s.schedule.CyclesPerMAC())
	return perUnit * float64(s.cfg.MACUnits)
}

// ThroughputPerCoreMACsPerSec is Table 2's "Throughput per core"
// metric: accelerator throughput divided by total GC cores.
func (s *Simulator) ThroughputPerCoreMACsPerSec() float64 {
	return s.ThroughputMACsPerSec() / float64(s.schedule.NumCores()*s.cfg.MACUnits)
}

// TimePerMAC is Table 2's "Time per MAC" row for one MAC unit.
func (s *Simulator) TimePerMAC() time.Duration {
	return s.cfg.Device.CyclesToDuration(uint64(s.schedule.CyclesPerMAC()))
}

// DotProductRun is the garbler-side result of streaming one dot
// product (M sequential MAC rounds) through the accelerator.
type DotProductRun struct {
	// Rounds holds the per-round garbled material, in order.
	Rounds []*gc.Garbled
	// OutputPairs are the final-round accumulator output label pairs.
	OutputPairs []label.Pair
	// Stats is the hardware-model accounting.
	Stats Stats
}

// GarbleDotProduct garbles the M-round sequential MAC for the
// garbler-held vector x, producing evaluable material for a client
// vector of the same length. Timing is accounted on one MAC unit (a
// single dot product cannot be split across units — rounds are
// sequentially dependent through the accumulator).
func (s *Simulator) GarbleDotProduct(x []int64) (*DotProductRun, error) {
	m := len(x)
	if m == 0 {
		return nil, fmt.Errorf("maxsim: empty vector")
	}
	run := &DotProductRun{Rounds: make([]*gc.Garbled, 0, m)}
	var state0 []label.Label
	var tweak uint64
	for round, xi := range x {
		if err := checkRange(xi, s.cfg.Width, s.cfg.Signed); err != nil {
			return nil, fmt.Errorf("maxsim: round %d: %w", round, err)
		}
		gb, err := s.garbler.Garble(s.macCkt, gc.GarbleOptions{
			GarblerInputs: circuit.Int64ToBits(xi, s.cfg.Width),
			State0:        state0,
			TweakBase:     tweak,
		})
		if err != nil {
			return nil, fmt.Errorf("maxsim: garbling round %d: %w", round, err)
		}
		run.Rounds = append(run.Rounds, gb)
		state0 = gb.StateOut0
		tweak = gb.NextTweak
		run.Stats.TablesGarbled += uint64(len(gb.Material.Tables))
		run.Stats.TableBytes += uint64(gb.Material.CiphertextBytes())
	}
	run.OutputPairs = run.Rounds[m-1].OutputPairs
	s.fillStats(&run.Stats, uint64(m))
	return run, nil
}

func (s *Simulator) fillStats(st *Stats, macs uint64) {
	st.MACs = macs
	st.Cycles = s.schedule.TotalCycles(int(macs))
	st.Stages = st.Cycles / sched.CyclesPerStage
	st.TablesScheduled = uint64(s.schedule.TablesPerStage()) * st.Stages
	st.IdleSlots = uint64(s.schedule.IdleSlotsPerStage()) * st.Stages
	slots := uint64(s.schedule.NumCores()*sched.CyclesPerStage) * st.Stages
	if slots > 0 {
		st.CoreUtilization = 1 - float64(st.IdleSlots)/float64(slots)
	}
	// Label entropy: one fresh k-bit label per input wire per round
	// plus the free-XOR offset once. The §5.2 worst case is
	// k·(b/2) bits per cycle; the average demand here is far lower,
	// which is why the FSM gates the RNGs off.
	inputWires := uint64(s.macCkt.NGarbler + s.macCkt.NEvaluator)
	st.RNGBitsDrawn = (inputWires*macs + uint64(s.macCkt.NState)) * label.Bits
	st.ModeledTime = s.cfg.Device.CyclesToDuration(st.Cycles)
	st.PCIeTime = s.cfg.PCIe.TransferTime(int(st.TableBytes))
	s.RecordStats(st)
	// Per-core idle attribution follows the FSM grid: a core's idle
	// slots per stage are fixed by its slot pattern.
	for i, c := range s.met.coreIdle {
		c.Add(s.idlePerStage[i] * st.Stages)
	}
}

// RecordStats adds a run's aggregate accounting to the configured
// metrics registry (no-op without one). Garbling paths that assemble
// Stats themselves — the correlated-OT and serial protocol sessions —
// call this once per session; GarbleDotProduct records automatically.
func (s *Simulator) RecordStats(st *Stats) {
	s.met.macs.Add(st.MACs)
	s.met.cycles.Add(st.Cycles)
	s.met.stages.Add(st.Stages)
	s.met.tablesGarbled.Add(st.TablesGarbled)
	s.met.tablesScheduled.Add(st.TablesScheduled)
	s.met.tableBytes.Add(st.TableBytes)
	s.met.idleSlots.Add(st.IdleSlots)
	s.met.rngBits.Add(st.RNGBitsDrawn)
}

// MatMulStats models garbling an (n×m)·(m×p) matrix product: n·p
// output elements of m MAC rounds each, distributed over the
// configured MAC units. §4.3: 1 product per 3·M·N·P·b cycles on one
// unit.
func (s *Simulator) MatMulStats(n, m, p int) (Stats, error) {
	if n <= 0 || m <= 0 || p <= 0 {
		return Stats{}, fmt.Errorf("maxsim: invalid matrix shape %d×%d · %d×%d", n, m, m, p)
	}
	elements := uint64(n) * uint64(p)
	units := uint64(s.cfg.MACUnits)
	perUnit := (elements + units - 1) / units
	var st Stats
	st.MACs = elements * uint64(m)
	// The critical unit garbles perUnit elements back to back; the
	// pipeline refills between elements (accumulator reset).
	cyclesPerElement := s.schedule.TotalCycles(m)
	st.Cycles = perUnit * cyclesPerElement
	st.Stages = st.Cycles / sched.CyclesPerStage
	st.TablesScheduled = uint64(s.schedule.TablesPerStage()) * st.Stages * units
	st.IdleSlots = uint64(s.schedule.IdleSlotsPerStage()) * st.Stages * units
	macANDs := uint64(s.macCkt.Stats().ANDs)
	st.TablesGarbled = macANDs * st.MACs
	st.TableBytes = st.TablesGarbled * uint64(s.cfg.Params.Scheme.TableSize()) * label.Size
	st.CoreUtilization = 1 - float64(s.schedule.IdleSlotsPerStage())/float64(s.schedule.NumCores()*sched.CyclesPerStage)
	inputWires := uint64(s.macCkt.NGarbler + s.macCkt.NEvaluator)
	st.RNGBitsDrawn = inputWires * st.MACs * label.Bits
	st.ModeledTime = s.cfg.Device.CyclesToDuration(st.Cycles)
	st.PCIeTime = s.cfg.PCIe.TransferTime(int(st.TableBytes))
	return st, nil
}

func checkRange(v int64, width int, signed bool) error {
	if signed {
		lo, hi := -(int64(1) << (width - 1)), int64(1)<<(width-1)-1
		if v < lo || v > hi {
			return fmt.Errorf("value %d outside signed %d-bit range [%d, %d]", v, width, lo, hi)
		}
		return nil
	}
	if v < 0 || v >= int64(1)<<width {
		return fmt.Errorf("value %d outside unsigned %d-bit range", v, width)
	}
	return nil
}

// EvaluateDotProduct runs the evaluator side over a DotProductRun for
// the client vector a, chaining state labels across rounds, and
// returns the decoded accumulator. It stands in for the full network
// protocol in tests and single-process examples; package protocol
// performs the same steps over a wire.Conn with real OT.
func EvaluateDotProduct(params gc.Params, ckt *circuit.Circuit, run *DotProductRun, a []int64, width int, signed bool) (int64, error) {
	if len(a) != len(run.Rounds) {
		return 0, fmt.Errorf("maxsim: vector length %d != garbled rounds %d", len(a), len(run.Rounds))
	}
	var stateAct []label.Label
	var out *gc.EvalResult
	for round, ai := range a {
		if err := checkRange(ai, width, signed); err != nil {
			return 0, fmt.Errorf("maxsim: round %d: %w", round, err)
		}
		gb := run.Rounds[round]
		aBits := circuit.Int64ToBits(ai, width)
		evalActive := make([]label.Label, len(aBits))
		for i, v := range aBits {
			evalActive[i] = gb.EvalPairs[i].Get(v) // in-process label pickup
		}
		res, err := gc.Evaluate(params, ckt, &gb.Material, evalActive, stateAct)
		if err != nil {
			return 0, fmt.Errorf("maxsim: evaluating round %d: %w", round, err)
		}
		stateAct = res.StateActive
		out = res
	}
	if signed {
		return circuit.BitsToInt64(out.Outputs), nil
	}
	return int64(circuit.BitsToUint64(out.Outputs)), nil
}
