// Package paper records the published evaluation numbers of the
// MAXelerator paper (DAC 2018) — Tables 1–3 and the §6 case studies —
// as the single source of truth for every benchmark and report that
// prints a paper-vs-measured comparison.
package paper

import "time"

// Widths are the bit-widths the paper evaluates.
var Widths = []int{8, 16, 32}

// Table2Row is one framework column-set of Table 2.
type Table2Row struct {
	// Framework names the system.
	Framework string
	// CyclesPerMAC is the published "Clock Cycle per MAC" per width.
	CyclesPerMAC map[int]float64
	// TimePerMAC is the published "Time per MAC".
	TimePerMAC map[int]time.Duration
	// ThroughputMACs is the published "Throughput (MAC per sec)".
	ThroughputMACs map[int]float64
	// Cores is the published "No of cores".
	Cores map[int]int
	// PerCoreMACs is the published "Throughput per core".
	PerCoreMACs map[int]float64
}

// TinyGarble is Table 2's software column: TinyGarble [16] on an Intel
// Xeon E5-2600 @ 2.2 GHz, one core.
var TinyGarble = Table2Row{
	Framework:    "TinyGarble [16] on CPU",
	CyclesPerMAC: map[int]float64{8: 1.44e5, 16: 5.45e5, 32: 2.24e6},
	TimePerMAC: map[int]time.Duration{
		8:  time.Duration(42.29 * float64(time.Microsecond)),
		16: time.Duration(160.35 * float64(time.Microsecond)),
		32: time.Duration(657.65 * float64(time.Microsecond)),
	},
	ThroughputMACs: map[int]float64{8: 2.36e4, 16: 6.24e3, 32: 1.52e3},
	Cores:          map[int]int{8: 1, 16: 1, 32: 1},
	PerCoreMACs:    map[int]float64{8: 2.36e4, 16: 6.24e3, 32: 1.52e3},
}

// Overlay is Table 2's FPGA overlay column: Fang et al. [14],
// interpolated by the paper's authors from the published 8/32/64-bit
// results.
var Overlay = Table2Row{
	Framework:    "FPGA Overlay Architecture [14]",
	CyclesPerMAC: map[int]float64{8: 4.40e3, 16: 1.20e4, 32: 3.60e4},
	TimePerMAC: map[int]time.Duration{
		8:  22 * time.Microsecond,
		16: 60 * time.Microsecond,
		32: 180 * time.Microsecond,
	},
	ThroughputMACs: map[int]float64{8: 4.55e4, 16: 1.67e4, 32: 5.56e3},
	Cores:          map[int]int{8: 43, 16: 43, 32: 43},
	PerCoreMACs:    map[int]float64{8: 1.06e3, 16: 3.88e2, 32: 1.29e2},
}

// MAXelerator is Table 2's accelerator column.
var MAXelerator = Table2Row{
	Framework:    "MAXelerator on FPGA",
	CyclesPerMAC: map[int]float64{8: 24, 16: 48, 32: 96},
	TimePerMAC: map[int]time.Duration{
		8:  120 * time.Nanosecond,
		16: 240 * time.Nanosecond,
		32: 480 * time.Nanosecond,
	},
	ThroughputMACs: map[int]float64{8: 8.33e6, 16: 4.17e6, 32: 2.08e6},
	Cores:          map[int]int{8: 8, 16: 14, 32: 24},
	PerCoreMACs:    map[int]float64{8: 1.04e6, 16: 2.98e5, 32: 8.68e4},
}

// SpeedupPerCoreVsTinyGarble is Table 2's bottom row against the
// software framework: 44×, 48×, 57×.
var SpeedupPerCoreVsTinyGarble = map[int]float64{8: 44, 16: 48, 32: 57}

// SpeedupPerCoreVsOverlay is Table 2's bottom row against the overlay:
// 985×, 768×, 672×.
var SpeedupPerCoreVsOverlay = map[int]float64{8: 985, 16: 768, 32: 672}

// Table1 is the published resource usage of one MAC unit.
var Table1 = map[int]struct{ LUT, LUTRAM, FF float64 }{
	8:  {2.95e4, 1.28e2, 2.44e4},
	16: {5.91e4, 3.84e2, 4.88e4},
	32: {1.11e5, 6.40e2, 8.40e4},
}

// RidgeDataset is one row of Table 3.
type RidgeDataset struct {
	// Name is the UCI dataset name.
	Name string
	// N is the sample count, D the feature count.
	N, D int
	// BaselineSeconds is the Nikolaenko et al. [7] runtime.
	BaselineSeconds float64
	// OursSeconds is the paper's accelerated runtime.
	OursSeconds float64
	// Improvement is the published speedup factor.
	Improvement float64
}

// Table3 is the ridge-regression case study (Table 3).
var Table3 = []RidgeDataset{
	{Name: "communities11.IV", N: 2215, D: 20, BaselineSeconds: 314, OursSeconds: 7.8, Improvement: 39.8},
	{Name: "automobile.I", N: 205, D: 14, BaselineSeconds: 100, OursSeconds: 3.5, Improvement: 28.4},
	{Name: "forestFires", N: 517, D: 12, BaselineSeconds: 46, OursSeconds: 1.8, Improvement: 24.5},
	{Name: "winequality-red", N: 1599, D: 11, BaselineSeconds: 39, OursSeconds: 1.7, Improvement: 22.6},
	{Name: "autompg", N: 398, D: 9, BaselineSeconds: 21, OursSeconds: 1.1, Improvement: 18.7},
	{Name: "concreteStrength", N: 1030, D: 8, BaselineSeconds: 17, OursSeconds: 1.0, Improvement: 16.8},
}

// Recommendation is the §6 matrix-factorisation case study.
var Recommendation = struct {
	// BaselineHoursPerIter is Nikolaenko et al. [6] on MovieLens.
	BaselineHoursPerIter float64
	// AcceleratedHoursPerIter is the paper's accelerated result.
	AcceleratedHoursPerIter float64
	// GradientShare is the fraction of runtime spent in the
	// MAC-dominated gradient computation ("more than 2/3").
	GradientShare float64
}{BaselineHoursPerIter: 2.9, AcceleratedHoursPerIter: 1.0, GradientShare: 2.0 / 3.0}

// Portfolio is the §6 portfolio-analysis case study: 252 rounds of
// w·cov·wᵀ for a size-2 portfolio.
var Portfolio = struct {
	// Rounds is the number of risk-to-return evaluations.
	Rounds int
	// Size is the portfolio dimension.
	Size int
	// TinyGarbleSeconds is the paper's estimate on TinyGarble.
	TinyGarbleSeconds float64
	// MAXeleratorSeconds is the paper's accelerated estimate.
	MAXeleratorSeconds float64
}{Rounds: 252, Size: 2, TinyGarbleSeconds: 1.33, MAXeleratorSeconds: 15.23e-3}

// CaseStudyCores is the §6 configuration: "a 32 bit fixed point
// system with 24 cores" — one b=32 MAC unit.
var CaseStudyCores = 24
