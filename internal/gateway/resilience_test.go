package gateway

import (
	"errors"
	"sync"
	"testing"
	"time"

	"maxelerator/internal/obs"
	"maxelerator/internal/protocol"
	"maxelerator/internal/resilience"
)

// TestProberFlappingMonotoneTransitions is the flapping-backend drill:
// several goroutines hammer ProbeNow while the primary's verdict and
// the clock race each other through 40 flap cycles. Whatever the
// interleaving, every breaker must move strictly monotonically (Seq
// +1, next.From == prev.To) along legal edges only, and the ring must
// never see a double-readmit: readmissions counted on the membership
// counter must equal the breaker's closed-arrivals exactly. Run under
// -race and -shuffle=on in CI.
func TestProberFlappingMonotoneTransitions(t *testing.T) {
	clock := newTestClock()
	var mu sync.Mutex
	trs := make(map[string][]resilience.Transition)
	f := newFleet(t, 3, func(cfg *Config) {
		cfg.Now = clock.Now
		cfg.BreakerCooldown = time.Second
		cfg.onTransition = func(addr string, tr resilience.Transition) {
			mu.Lock()
			trs[addr] = append(trs[addr], tr)
			mu.Unlock()
		}
	})
	order := f.gw.ring.Lookup(testHint.Key(), 0)
	primary := f.backends[order[0]]

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f.gw.ProbeNow()
				}
			}
		}()
	}
	for cycle := 0; cycle < 40; cycle++ {
		status := obs.HealthOverloaded
		if cycle%2 == 1 {
			status = obs.HealthOK
		}
		primary.mu.Lock()
		primary.status = status
		primary.mu.Unlock()
		clock.Advance(300 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	legal := map[resilience.State]map[resilience.State]bool{
		resilience.StateClosed:   {resilience.StateOpen: true},
		resilience.StateOpen:     {resilience.StateHalfOpen: true},
		resilience.StateHalfOpen: {resilience.StateClosed: true, resilience.StateOpen: true},
	}
	mu.Lock()
	defer mu.Unlock()
	readmits := 0
	for addr, ts := range trs {
		for i, tr := range ts {
			if !legal[tr.From][tr.To] {
				t.Fatalf("%s transition %d: illegal edge %s→%s", addr, i, tr.From, tr.To)
			}
			if i > 0 {
				prev := ts[i-1]
				if tr.Seq != prev.Seq+1 {
					t.Fatalf("%s transition %d: Seq %d after %d, want strictly +1", addr, i, tr.Seq, prev.Seq)
				}
				if tr.From != prev.To {
					t.Fatalf("%s transition %d: From %s, but previous landed on %s", addr, i, tr.From, prev.To)
				}
			}
			if tr.To == resilience.StateClosed {
				readmits++
			}
		}
	}
	for _, addr := range order[1:] {
		if n := len(trs[addr]); n != 0 {
			t.Fatalf("steady backend %s recorded %d transitions, want 0", addr, n)
		}
	}
	counted := f.obs.Metrics().Counter("gw_membership_changes_total", "",
		obs.L("backend", order[0]), obs.L("change", "readmit")).Value()
	if counted != uint64(readmits) {
		t.Fatalf("membership counter shows %d readmits, breaker transitioned closed %d times (double-readmit?)",
			counted, readmits)
	}
	if f.gw.ring.Has(order[0]) != f.gw.byAddr[order[0]].breaker.Routable() {
		t.Fatal("ring membership diverged from breaker state")
	}
}

// TestRetryBudgetShedsWhenExhausted: with no burst allowance and a
// dead fleet, a session pays for zero failovers — it dials exactly one
// candidate, the budget denies the second, and the session sheds with
// BUSY. This is the anti-retry-storm property at n=1.
func TestRetryBudgetShedsWhenExhausted(t *testing.T) {
	f := newFleet(t, 3, func(cfg *Config) {
		cfg.RetryBudgetMin = -1 // no burst
		cfg.RetryBudget = 0.1
	})
	for _, fb := range f.backends {
		fb.mu.Lock()
		fb.down = true
		fb.mu.Unlock()
	}
	_, err := runSession(t, f.gw, &testHint)
	var be *protocol.BusyError
	if !errors.As(err, &be) {
		t.Fatalf("expected BusyError from the budget shed, got %v", err)
	}
	reg := f.obs.Metrics()
	if got := reg.Counter(obs.MetricRetryBudgetExhausted, "").Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", obs.MetricRetryBudgetExhausted, got)
	}
	if got := reg.Counter("gw_failovers_total", "", obs.L("reason", "dial")).Value(); got != 1 {
		t.Fatalf("dialed %d candidates, want exactly 1 (budget must stop the march)", got)
	}
	dep, wd, den := f.gw.RetryBudgetStats()
	if dep != 1 || wd != 0 || den != 1 {
		t.Fatalf("budget stats = %d/%d/%d, want 1 deposit, 0 withdrawals, 1 denial", dep, wd, den)
	}
}

// TestLatencyOutlierDemoted: a backend whose handshake EWMA sits far
// above the fleet median is demoted to last-resort candidate by the
// probe-tick sweep — visible in route order, the ejections counter and
// the snapshot — and the demotion expires with its cooldown.
func TestLatencyOutlierDemoted(t *testing.T) {
	clock := newTestClock()
	const cooldown = 10 * time.Second
	f := newFleet(t, 3, func(cfg *Config) {
		cfg.Now = clock.Now
		cfg.OutlierK = 2
		cfg.OutlierMinSamples = 3
		cfg.OutlierCooldown = cooldown
	})
	order := f.gw.ring.Lookup(testHint.Key(), 0)
	for i := 0; i < 3; i++ {
		f.gw.ejector.Observe(order[0], 500*time.Millisecond)
		f.gw.ejector.Observe(order[1], 10*time.Millisecond)
		f.gw.ejector.Observe(order[2], 12*time.Millisecond)
	}
	f.gw.ProbeNow() // runs the sweep

	got := f.gw.route(testHint, true)
	if len(got) != 3 {
		t.Fatalf("%d candidates, want 3 (ejection demotes, never removes)", len(got))
	}
	if got[len(got)-1].Addr != order[0] {
		t.Fatalf("slow primary %s not demoted to last (order %v)", order[0], []string{got[0].Addr, got[1].Addr, got[2].Addr})
	}
	if n := f.obs.Metrics().Counter(obs.MetricEjections, "",
		obs.L("backend", order[0]), obs.L("reason", "latency")).Value(); n != 1 {
		t.Fatalf("%s{latency,%s} = %d, want 1", obs.MetricEjections, order[0], n)
	}
	var found bool
	for _, st := range f.gw.Snapshot() {
		if st.Addr == order[0] {
			found = st.Ejected && st.LatencyEWMAMs > 100 && st.Breaker == "closed"
		}
	}
	if !found {
		t.Fatalf("snapshot does not show the latency ejection: %+v", f.gw.Snapshot())
	}

	clock.Advance(cooldown + time.Second)
	if f.gw.ejector.Ejected(order[0]) {
		t.Fatal("latency ejection outlived its cooldown")
	}
}

// TestBreakerTrialReadmitsByTraffic covers the readmission path for a
// fleet whose probes are absent or stale: after every breaker trips
// (dead fleet), a revived backend is offered as a last-resort trial
// once its cooldown expires, and the successful handshake itself
// readmits it — no probe required.
func TestBreakerTrialReadmitsByTraffic(t *testing.T) {
	clock := newTestClock()
	const cooldown = 2 * time.Second
	f := newFleet(t, 3, func(cfg *Config) {
		cfg.Now = clock.Now
		cfg.BreakerCooldown = cooldown
	})
	for _, fb := range f.backends {
		fb.mu.Lock()
		fb.down = true
		fb.mu.Unlock()
	}
	// Two shed sessions are enough to trip every breaker (EjectAfter=2,
	// each session dials all three candidates).
	for i := 0; i < 2; i++ {
		if _, err := runSession(t, f.gw, &testHint); err == nil {
			t.Fatal("session succeeded against a dead fleet")
		}
	}
	if n := f.gw.ring.Len(); n != 0 {
		t.Fatalf("ring still has %d members after the fleet died", n)
	}
	// Mid-cooldown the fleet is unroutable: sessions shed immediately.
	if _, err := runSession(t, f.gw, &testHint); err == nil {
		t.Fatal("session succeeded with every breaker open")
	}

	for _, fb := range f.backends {
		fb.mu.Lock()
		fb.down = false
		fb.mu.Unlock()
	}
	clock.Advance(cooldown + time.Second)
	out, err := runSession(t, f.gw, &testHint)
	if err != nil {
		t.Fatalf("trial session failed against a revived fleet: %v", err)
	}
	wantResult(t, out)
	f.drain()
	if got := f.totalServed(); got != 1 {
		t.Fatalf("fleet served %d sessions, want 1", got)
	}
	readmitted := 0
	for _, b := range f.gw.states {
		if b.breaker.Routable() {
			readmitted++
			if !f.gw.ring.Has(b.Addr) {
				t.Fatalf("readmitted backend %s missing from the ring", b.Addr)
			}
		}
	}
	if readmitted != 1 {
		t.Fatalf("%d backends readmitted by one trial session, want exactly 1", readmitted)
	}
}
