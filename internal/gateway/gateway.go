// Package gateway is the garbler fleet's front door: a session-granular
// router that pins each client session to the backend whose precompute
// pool is warm for the session's request shape.
//
// The protocol is server-first (the garbler speaks hello before the
// client sends anything), so a passive proxy cannot learn the shape
// from traffic it forwards. Instead, hinted clients open with a
// shape-hint preface frame (protocol.ShapeHint); the gateway peeks it
// under a short deadline, hashes the shape key onto a consistent-hash
// ring of healthy backends, and relays frames for the rest of the
// session. Unhinted (and legacy) clients send nothing first — the peek
// times out and the session routes to the least-loaded healthy
// backend instead.
//
// Failover is pre-handshake only, which makes it provably
// single-serve: a backend is abandoned only when dialing it fails or
// its first frame is a BUSY rejection — in both cases the client has
// not yet seen one byte from that backend and no request state exists
// anywhere, so trying the next ring replica can never double-serve a
// request. Once a backend's hello is forwarded the session is
// committed and any later fault surfaces to the client's own retry
// layer (internal/protocol/retry), which replays safely by the
// fresh-labels-per-garbling argument.
package gateway

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"maxelerator/internal/obs"
	"maxelerator/internal/protocol"
	"maxelerator/internal/resilience"
	"maxelerator/internal/wire"
)

// Config shapes one Gateway.
type Config struct {
	// Backends is the fleet (at least one).
	Backends []Backend
	// Vnodes is the ring's virtual-node count per backend
	// (DefaultVnodes if 0).
	Vnodes int
	// PeekTimeout bounds the wait for a client's optional shape-hint
	// preface; on expiry the session routes unhinted. Default 75ms.
	PeekTimeout time.Duration
	// HelloTimeout bounds the wait for a dialed backend's first frame
	// (its hello or a BUSY rejection). Default 3s.
	HelloTimeout time.Duration
	// DialTimeout bounds each backend dial. Default 2s.
	DialTimeout time.Duration
	// MaxFailovers caps how many additional backends a session tries
	// after its primary fails pre-handshake. Default 2.
	MaxFailovers int
	// LoadFactor is the bounded-load factor c: a backend already
	// carrying more than c times the fleet's mean in-flight load is
	// skipped on the first routing pass (consistent hashing with
	// bounded loads). Default 1.25; values <= 1 disable the bound.
	LoadFactor float64
	// ProbeInterval is the health-poll period. Default 2s.
	ProbeInterval time.Duration
	// EjectAfter is how many consecutive failures — probe verdicts and
	// routing-time handshake results feed the same counter — trip a
	// backend's circuit breaker open, removing it from the ring.
	// Default 3.
	EjectAfter int
	// BreakerCooldown is the base open-state dwell before the breaker's
	// half-open readmission trial; it doubles on every re-trip before a
	// full recovery (hysteresis against flapping). Default 5s.
	BreakerCooldown time.Duration
	// BreakerMaxCooldown caps the hysteresis doubling. Default
	// 8×BreakerCooldown.
	BreakerMaxCooldown time.Duration
	// OutlierK is the latency-ejection cutoff: a backend whose
	// handshake-latency EWMA exceeds K times the fleet median is
	// demoted to last-resort candidate. Default 3.
	OutlierK float64
	// OutlierMinSamples is how many latency samples a backend needs
	// before its EWMA is trusted for ejection. Default 5.
	OutlierMinSamples int
	// OutlierCooldown is how long a latency ejection lasts; on expiry
	// the backend re-enters on probation. Default 10s.
	OutlierCooldown time.Duration
	// RetryBudget is the sustained failover allowance as a fraction of
	// arriving sessions: beyond the burst, at most this fraction of
	// sessions may fail over to another backend before the gateway
	// sheds with BUSY instead. Default 0.2.
	RetryBudget float64
	// RetryBudgetMin is the burst allowance a cold gateway starts with
	// (failover attempts permitted before the ratio governs). Default
	// 10; negative means no burst.
	RetryBudgetMin float64
	// HintMissLogEvery rate-limits the "shape hint matches no
	// advertised backend" log line. Default 5s.
	HintMissLogEvery time.Duration
	// RetryAfter is the backoff hint sent with the gateway's own BUSY
	// rejection when every candidate failed. Default 200ms.
	RetryAfter time.Duration
	// Logf receives rate-limited operational log lines (breaker
	// transitions, hint misses). Nil silences them.
	Logf func(format string, args ...any)
	// Now is the clock behind the breakers, the latency ejector and
	// handshake timing; tests inject a fake. Default time.Now.
	Now func() time.Time
	// Obs receives the gateway's metrics and health; nil disables
	// observability (the repo-wide nil-Obs contract).
	Obs *obs.Obs
	// Dial opens a protocol connection to a backend Addr. Nil uses TCP
	// (net.DialTimeout wrapped in wire.NewStreamConn); tests inject
	// in-memory pipes.
	Dial func(addr string) (wire.Conn, error)
	// Probe asks a backend for health and advertised shapes. Nil uses
	// the HTTP prober against Backend.HealthURL.
	Probe ProbeFunc

	// onTransition, when set by tests, observes every breaker
	// transition (in delivery order, under the breaker's lock) so the
	// flapping tests can assert monotonicity without reaching into the
	// breakers.
	onTransition func(addr string, tr resilience.Transition)
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.PeekTimeout <= 0 {
		c.PeekTimeout = 75 * time.Millisecond
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 3 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.MaxFailovers <= 0 {
		c.MaxFailovers = 2
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 200 * time.Millisecond
	}
	if c.HintMissLogEvery <= 0 {
		c.HintMissLogEvery = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Dial == nil {
		dialTimeout := c.DialTimeout
		c.Dial = func(addr string) (wire.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, dialTimeout)
			if err != nil {
				return nil, err
			}
			return wire.NewStreamConn(nc), nil
		}
	}
	if c.Probe == nil {
		c.Probe = httpProbe(&http.Client{Timeout: c.HelloTimeout})
	}
	return c
}

// Gateway routes client sessions across a garbler fleet. Create with
// New, optionally Start the health prober, feed it connections via
// Serve or HandleConn, and Close to stop.
type Gateway struct {
	cfg     Config
	ring    *Ring
	states  []*backendState // config order; membership lives on the ring
	byAddr  map[string]*backendState
	reg     *obs.Registry
	ejector *resilience.Ejector
	budget  *resilience.Budget

	hintMu       sync.Mutex
	lastHintMiss time.Time

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup

	// Drain support: every relayed client connection is tracked so a
	// shutdown can first wait for sessions to finish on their own, then
	// escalate to closing them.
	connMu sync.Mutex
	conns  map[wire.Conn]struct{}
	sessWG sync.WaitGroup
}

// New builds a gateway over the configured fleet. Every backend starts
// healthy and on the ring (optimistic: the prober corrects within one
// interval, and a dead backend fails fast at dial time anyway).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:    cfg,
		ring:   NewRing(cfg.Vnodes),
		byAddr: make(map[string]*backendState, len(cfg.Backends)),
		reg:    cfg.Obs.Metrics(),
		stop:   make(chan struct{}),
		conns:  make(map[wire.Conn]struct{}),
		ejector: resilience.NewEjector(resilience.EjectorConfig{
			K:          cfg.OutlierK,
			MinSamples: cfg.OutlierMinSamples,
			Cooldown:   cfg.OutlierCooldown,
			Now:        cfg.Now,
		}),
		budget: resilience.NewBudget(resilience.BudgetConfig{
			Ratio:     cfg.RetryBudget,
			MinTokens: cfg.RetryBudgetMin,
		}),
	}
	for _, b := range cfg.Backends {
		if b.Addr == "" {
			return nil, fmt.Errorf("gateway: backend with empty address")
		}
		if _, dup := g.byAddr[b.Addr]; dup {
			return nil, fmt.Errorf("gateway: duplicate backend %q", b.Addr)
		}
		st := &backendState{Backend: b, healthy: true, status: obs.HealthOK}
		st.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold:   cfg.EjectAfter,
			Cooldown:    cfg.BreakerCooldown,
			MaxCooldown: cfg.BreakerMaxCooldown,
			Now:         cfg.Now,
			OnTransition: func(tr resilience.Transition) {
				g.onBreakerTransition(st, tr)
			},
		})
		g.states = append(g.states, st)
		g.byAddr[b.Addr] = st
		g.ring.Add(b.Addr)
		g.reg.BreakerState(b.Addr).Set(obs.BreakerStateClosed)
	}
	cfg.Obs.SetHealth(g.healthVerdict)
	g.publishRingState()
	g.publishBudget()
	return g, nil
}

// Start launches the background health prober.
func (g *Gateway) Start() {
	g.wg.Add(1)
	go g.probeLoop()
}

// Close stops the prober. In-flight sessions drain on their own
// connections; the caller closes its listener separately.
func (g *Gateway) Close() {
	g.stopped.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// Drain waits up to timeout for every in-flight relayed session to
// finish on its own, reporting whether the gateway emptied in time.
// The caller must have stopped feeding connections first (closed its
// listener). While waiting — and after an expired deadline — the
// gw_draining gauge reads 1, so fleet dashboards can tell a draining
// gateway from a serving one; it drops back to 0 once the gateway is
// empty. On expiry the caller escalates with KillSessions and calls
// Drain again for the hard-close grace period, mirroring maxd's
// drain/escalate shutdown.
func (g *Gateway) Drain(timeout time.Duration) bool {
	draining := g.reg.Gauge("gw_draining", "1 while the gateway is draining in-flight sessions")
	draining.Set(1)
	done := make(chan struct{})
	go func() {
		g.sessWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		draining.Set(0)
		return true
	case <-time.After(timeout):
		return false
	}
}

// KillSessions force-closes every tracked client connection. The relay
// pumps see the close as a terminal receive error and tear down their
// backend side, so a follow-up Drain observes the sessions unwind.
func (g *Gateway) KillSessions() {
	g.connMu.Lock()
	defer g.connMu.Unlock()
	for c := range g.conns {
		c.Close()
	}
}

// Serve accepts connections from l and routes each on its own
// goroutine, until Accept fails (closing the listener is the shutdown
// signal).
func (g *Gateway) Serve(l net.Listener) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		go g.HandleConn(wire.NewStreamConn(nc))
	}
}

// HandleConn routes one client session end to end: peek, pick, relay.
// It closes conn before returning. Exported so tests and single-binary
// deployments can feed in-memory pipes.
func (g *Gateway) HandleConn(conn wire.Conn) {
	defer conn.Close()
	g.sessWG.Add(1)
	defer g.sessWG.Done()
	g.connMu.Lock()
	g.conns[conn] = struct{}{}
	g.connMu.Unlock()
	defer func() {
		g.connMu.Lock()
		delete(g.conns, conn)
		g.connMu.Unlock()
	}()
	active := g.reg.Gauge("gw_sessions_active", "client sessions currently relayed")
	active.Add(1)
	defer active.Add(-1)

	pending, hint, hinted, err := g.peek(conn)
	if err != nil {
		// The client vanished before routing began; nothing to count
		// against any backend.
		g.reg.Counter("gw_peek_errors_total", "client connections lost during the routing peek").Inc()
		return
	}
	result := "none"
	if hinted {
		result = "hint"
	} else if pending != nil {
		result = "other"
	}
	g.reg.Counter("gw_peeks_total", "routing-peek outcomes", obs.L("result", result)).Inc()

	g.budget.Deposit()
	g.publishBudget()
	candidates := g.route(hint, hinted)
	if len(candidates) == 0 {
		g.shed(conn, nil)
		return
	}
	attempts := g.cfg.MaxFailovers + 1
	if attempts > len(candidates) {
		attempts = len(candidates)
	}
	var lastBusy *protocol.BusyError
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// Every attempt beyond the session's first candidate is a
			// failover and must be paid for: an empty budget means the
			// fleet is failing broadly, and the cheapest thing this
			// session can do is shed fast rather than add dials.
			if !g.budget.Withdraw() {
				g.reg.Counter(obs.MetricRetryBudgetExhausted, obs.HelpRetryBudgetExhausted).Inc()
				break
			}
			g.publishBudget()
		}
		b := candidates[i]
		start := g.cfg.Now()
		backendConn, first, busy, err := g.connect(b, pending)
		switch {
		case err != nil:
			b.breaker.Observe(false)
			reason := "dial"
			if wire.IsTimeout(err) {
				reason = "timeout"
			}
			g.reg.Counter("gw_failovers_total", "pre-handshake backend failovers",
				obs.L("reason", reason)).Inc()
			continue
		case busy != nil:
			// BUSY is an orderly rejection from a live backend: it feeds
			// the breaker as a success (the backend answered promptly)
			// and the ejector not at all (no session was served).
			b.breaker.Observe(true)
			lastBusy = busy
			g.reg.Counter("gw_failovers_total", "pre-handshake backend failovers",
				obs.L("reason", "busy")).Inc()
			continue
		}
		b.breaker.Observe(true)
		g.ejector.Observe(b.Addr, g.cfg.Now().Sub(start))
		g.relay(conn, backendConn, b, first)
		return
	}
	g.shed(conn, lastBusy)
}

// peek waits up to PeekTimeout for the client's optional first frame.
// It returns the consumed frame (to forward verbatim), the decoded
// hint when the frame was one, and a non-nil error only when the
// client is gone. A timeout is the normal unhinted case. Connections
// that cannot carry deadlines skip the peek entirely — blocking
// forever on a client that is itself waiting for the server hello
// would deadlock.
func (g *Gateway) peek(conn wire.Conn) (pending []byte, hint protocol.ShapeHint, hinted bool, err error) {
	dc, ok := wire.AsDeadline(conn)
	if !ok {
		return nil, protocol.ShapeHint{}, false, nil
	}
	dc.SetDeadline(time.Now().Add(g.cfg.PeekTimeout))
	frame, rerr := conn.RecvMsg()
	dc.SetDeadline(time.Time{})
	switch {
	case rerr == nil:
		hint, hinted = protocol.PeekShapeHint(frame)
		return frame, hint, hinted, nil
	case wire.IsTimeout(rerr):
		return nil, protocol.ShapeHint{}, false, nil
	default:
		return nil, protocol.ShapeHint{}, false, rerr
	}
}

// route orders the routable backends for one session. Hinted sessions
// get ring order for their shape key, advertised exact-shape matches
// first and over-bound backends last (consistent hashing with bounded
// loads: a backend above LoadFactor times the mean in-flight load
// yields to the next replica, trading a cold pool for tail latency).
// Unhinted sessions get least-loaded order. Two resilience demotions
// apply to both: latency-ejected backends sort behind everything
// routable, and breaker-open backends whose cooldown has expired are
// appended dead last — they are offered only so a handshake can serve
// as the half-open trial (the readmission path for backends with no
// health prober).
func (g *Gateway) route(hint protocol.ShapeHint, hinted bool) []*backendState {
	routable := make([]*backendState, 0, len(g.states))
	var trial []*backendState
	for _, b := range g.states {
		switch {
		case b.breaker.Routable():
			routable = append(routable, b)
		case b.breaker.TrialReady():
			trial = append(trial, b)
		}
	}
	if len(routable)+len(trial) == 0 {
		return nil
	}
	var ordered []*backendState
	if !hinted {
		ordered = routable
		sort.SliceStable(ordered, func(i, j int) bool {
			li, lj := ordered[i].active.Load(), ordered[j].active.Load()
			if li != lj {
				return li < lj
			}
			return ordered[i].Addr < ordered[j].Addr
		})
	} else {
		key := hint.Key()
		if !g.fleetAdvertises(key) {
			g.noteHintMiss(key)
		}
		ordered = make([]*backendState, 0, len(routable))
		for _, addr := range g.ring.Lookup(key, 0) {
			if b, ok := g.byAddr[addr]; ok {
				ordered = append(ordered, b)
			}
		}
		// Warm pools first: a backend advertising the exact shape beats
		// ring position (ring order breaks ties, so steady state stays
		// consistent — the ring primary is the one that learned the shape).
		sort.SliceStable(ordered, func(i, j int) bool {
			return ordered[i].advertises(key) && !ordered[j].advertises(key)
		})
		// Bounded load: push over-bound backends to the back rather than
		// dropping them — a hot backend is still better than shedding.
		if bound := g.loadBound(len(ordered)); bound > 0 {
			sort.SliceStable(ordered, func(i, j int) bool {
				return ordered[i].active.Load() <= bound && ordered[j].active.Load() > bound
			})
		}
	}
	// Latency demotion last so it dominates: an ejected backend is a
	// worse bet than a hot one, but still better than shedding.
	ejected := make(map[*backendState]bool, len(ordered))
	demoted := false
	for _, b := range ordered {
		if g.ejector.Ejected(b.Addr) {
			ejected[b] = true
			demoted = true
		}
	}
	if demoted {
		sort.SliceStable(ordered, func(i, j int) bool {
			return !ejected[ordered[i]] && ejected[ordered[j]]
		})
	}
	return append(ordered, trial...)
}

// loadBound computes the bounded-load ceiling: LoadFactor times the
// mean in-flight load over n healthy backends, rounded up. Zero means
// the bound is disabled.
func (g *Gateway) loadBound(n int) int64 {
	if g.cfg.LoadFactor <= 1 || n == 0 {
		return 0
	}
	var total int64
	for _, b := range g.states {
		total += b.active.Load()
	}
	mean := float64(total+1) / float64(n)
	return int64(g.cfg.LoadFactor * mean)
}

// connect dials one backend, forwards the client's pending preface
// frame (if any), and reads the backend's first frame. A BUSY first
// frame or any error abandons the backend with nothing committed —
// the failover-safe window.
func (g *Gateway) connect(b *backendState, pending []byte) (wire.Conn, []byte, *protocol.BusyError, error) {
	conn, err := g.cfg.Dial(b.Addr)
	if err != nil {
		return nil, nil, nil, err
	}
	if pending != nil {
		if err := conn.SendMsg(pending); err != nil {
			conn.Close()
			return nil, nil, nil, err
		}
	}
	if dc, ok := wire.AsDeadline(conn); ok {
		dc.SetDeadline(time.Now().Add(g.cfg.HelloTimeout))
		defer dc.SetDeadline(time.Time{})
	}
	first, err := conn.RecvMsg()
	if err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	if busy, ok := protocol.PeekBusy(first); ok {
		conn.Close()
		return nil, nil, busy, nil
	}
	return conn, first, nil, nil
}

// relay commits the session to backend b: deliver the backend's first
// frame to the client, then pump frames both directions until either
// side ends. From here on every fault belongs to the endpoints — the
// gateway never retries a committed session (see the package comment
// for why that is the single-serve guarantee).
func (g *Gateway) relay(client, backend wire.Conn, b *backendState, first []byte) {
	defer backend.Close()
	b.sessions.Add(1)
	b.active.Add(1)
	defer b.active.Add(-1)
	g.reg.Counter("gw_sessions_total", "client sessions committed to a backend",
		obs.L("backend", b.Addr)).Inc()
	perBackend := g.reg.Gauge("gw_backend_sessions", "sessions in flight per backend",
		obs.L("backend", b.Addr))
	perBackend.Add(1)
	defer perBackend.Add(-1)

	if err := client.SendMsg(first); err != nil {
		return
	}
	var wg sync.WaitGroup
	wg.Add(2)
	pump := func(dst, src wire.Conn) {
		defer wg.Done()
		for {
			msg, err := src.RecvMsg()
			if err != nil {
				// Session over (orderly close or fault): tear down both
				// sides so the peer pump unblocks too.
				client.Close()
				backend.Close()
				return
			}
			if err := dst.SendMsg(msg); err != nil {
				client.Close()
				backend.Close()
				return
			}
		}
	}
	go pump(client, backend)
	go pump(backend, client)
	wg.Wait()
}

// shed rejects the session the same way an overloaded backend would:
// a BUSY frame carrying a retry hint (the largest backend hint seen,
// floored at the configured RetryAfter), so hinted and unhinted
// clients alike land in their existing retry taxonomy.
func (g *Gateway) shed(conn wire.Conn, lastBusy *protocol.BusyError) {
	retryAfter := g.cfg.RetryAfter
	if lastBusy != nil && lastBusy.RetryAfter > retryAfter {
		retryAfter = lastBusy.RetryAfter
	}
	g.reg.Counter("gw_shed_total", "sessions rejected after exhausting candidates").Inc()
	protocol.SendBusy(conn, retryAfter)
}

// BackendStatus is one row of Snapshot: the operator view of a
// backend.
type BackendStatus struct {
	Addr     string   `json:"addr"`
	Healthy  bool     `json:"healthy"`
	Status   string   `json:"status"`
	Breaker  string   `json:"breaker"`
	Active   int64    `json:"active_sessions"`
	Sessions int64    `json:"sessions_total"`
	Shapes   []string `json:"advertised_shapes,omitempty"`
	// LatencyEWMAMs is the handshake-latency estimate behind outlier
	// ejection; zero until the first committed session.
	LatencyEWMAMs float64 `json:"latency_ewma_ms,omitempty"`
	// Ejected reports an active latency ejection (the backend is
	// demoted to last-resort, not removed).
	Ejected bool `json:"ejected,omitempty"`
}

// Snapshot reports the fleet state in config order — the payload of
// maxgw's /fleetz endpoint and maxtop's fleet panel.
func (g *Gateway) Snapshot() []BackendStatus {
	out := make([]BackendStatus, 0, len(g.states))
	for _, b := range g.states {
		// Breaker and ejector reads happen outside b.mu: the transition
		// hook takes b.mu while holding the breaker's lock, so the
		// reverse order would invert it.
		breakerState := b.breaker.State().String()
		ewma, _ := g.ejector.EWMA(b.Addr)
		ejected := g.ejector.Ejected(b.Addr)
		b.mu.Lock()
		shapes := make([]string, 0, len(b.shapes))
		for s := range b.shapes {
			shapes = append(shapes, s)
		}
		st := BackendStatus{
			Addr: b.Addr, Healthy: b.healthy, Status: b.status,
			Breaker: breakerState,
			Active:  b.active.Load(), Sessions: b.sessions.Load(),
			LatencyEWMAMs: float64(ewma) / float64(time.Millisecond),
			Ejected:       ejected,
		}
		b.mu.Unlock()
		sort.Strings(shapes)
		st.Shapes = shapes
		out = append(out, st)
	}
	return out
}
