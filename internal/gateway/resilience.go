package gateway

import (
	"maxelerator/internal/obs"
	"maxelerator/internal/resilience"
)

// This file wires the three resilience mechanisms (internal/resilience)
// into the gateway's routing machinery:
//
//   - every backend gets a circuit breaker fed by both probe verdicts
//     and routing-time handshake results; its transitions drive ring
//     membership, so a dead backend leaves the ring at dial speed and
//     a flapping one stays off it through the breaker's hysteresis;
//   - the ejector folds each committed session's dial→first-frame
//     latency into a per-backend EWMA; backends beyond K× the fleet
//     median are demoted to last-resort candidates (not removed — a
//     uniformly slow fleet still serves);
//   - the retry budget gates every failover attempt beyond a session's
//     first candidate, so a fleet-wide outage degrades to fast BUSY
//     rejections instead of each session marching the full replica
//     list.
//
// Lock discipline: breaker transition hooks run under the breaker's
// own lock and may take backendState.mu and the ring lock; nothing in
// the gateway calls a breaker method while holding backendState.mu,
// so the ordering breaker.mu → backendState.mu is acyclic.

// onBreakerTransition is every backend breaker's OnTransition hook:
// it mirrors the breaker's position into ring membership, the healthy
// flag, and the canonical metrics. Transitions are delivered under the
// breaker's lock in Seq order, which is what makes membership updates
// race-free — two probes (or a probe and a failed dial) cannot
// interleave an eject and a readmit for the same backend.
func (g *Gateway) onBreakerTransition(b *backendState, tr resilience.Transition) {
	g.reg.BreakerState(b.Addr).Set(obs.BreakerStateValue(tr.To.String()))
	if g.cfg.onTransition != nil {
		g.cfg.onTransition(b.Addr, tr)
	}
	switch {
	case tr.From == resilience.StateClosed && tr.To == resilience.StateOpen:
		b.mu.Lock()
		b.healthy = false
		b.mu.Unlock()
		g.ring.Remove(b.Addr)
		g.reg.Counter("gw_membership_changes_total",
			"backend ring ejections and readmissions",
			obs.L("backend", b.Addr), obs.L("change", "eject")).Inc()
		g.reg.Counter(obs.MetricEjections, obs.HelpEjections,
			obs.L("backend", b.Addr), obs.L("reason", "breaker")).Inc()
		g.logf("gateway: breaker opened for %s (consecutive failures)", b.Addr)
	case tr.To == resilience.StateClosed:
		b.mu.Lock()
		b.healthy = true
		b.mu.Unlock()
		g.ring.Add(b.Addr)
		g.reg.Counter("gw_membership_changes_total",
			"backend ring ejections and readmissions",
			obs.L("backend", b.Addr), obs.L("change", "readmit")).Inc()
		g.logf("gateway: breaker closed for %s (trial succeeded)", b.Addr)
	}
	// open→half-open and half-open→open keep the backend off the ring:
	// half-open admits exactly the trial observation, never sessions.
}

// publishBudget refreshes the retry-budget gauge after a deposit or
// withdrawal (millitokens: the registry's gauges are integers).
func (g *Gateway) publishBudget() {
	g.reg.Gauge(obs.MetricRetryBudgetTokens, obs.HelpRetryBudgetTokens).
		Set(int64(g.budget.Tokens() * 1000))
}

// noteHintMiss counts a hinted session whose shape matched no
// advertised backend pool and emits a rate-limited log line — one per
// HintMissLogEvery fleet-wide, because a shape nobody advertises tends
// to arrive in bursts and each miss says the same thing: the session
// is riding cold-pool routing.
func (g *Gateway) noteHintMiss(key string) {
	g.reg.Counter(obs.MetricHintMisses, obs.HelpHintMisses, obs.L("shape", key)).Inc()
	if g.cfg.Logf == nil {
		return
	}
	now := g.cfg.Now()
	g.hintMu.Lock()
	due := now.Sub(g.lastHintMiss) >= g.cfg.HintMissLogEvery
	if due {
		g.lastHintMiss = now
	}
	g.hintMu.Unlock()
	if due {
		g.cfg.Logf("gateway: shape hint %q matches no advertised backend pool; routing by ring position (cold pool)", key)
	}
}

// fleetAdvertises reports whether any configured backend advertises a
// warm pool for the shape key.
func (g *Gateway) fleetAdvertises(key string) bool {
	for _, b := range g.states {
		if b.advertises(key) {
			return true
		}
	}
	return false
}

// logf forwards to the configured logger, if any.
func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// RetryBudgetStats exposes the budget's lifetime counters — the
// numbers maxchaos checks the failover-bound invariant against.
func (g *Gateway) RetryBudgetStats() (deposits, withdrawals, denials uint64) {
	return g.budget.Stats()
}
