package core

import (
	"math"
	mrand "math/rand"
	"testing"

	"maxelerator/internal/fixed"
)

func accel(t *testing.T, cfg Config) *Accelerator {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Width: 9}); err == nil {
		t.Fatal("bad width accepted")
	}
	if _, err := New(Config{Width: 32, AccWidth: 80}); err == nil {
		t.Fatal("undecodable accumulator width accepted")
	}
}

func TestSecureDotProductSigned(t *testing.T) {
	a := accel(t, Config{Width: 8, AccWidth: 24, Signed: true})
	rng := mrand.New(mrand.NewSource(1))
	x := make([]int64, 10)
	y := make([]int64, 10)
	var want int64
	for i := range x {
		x[i] = int64(rng.Intn(256) - 128)
		y[i] = int64(rng.Intn(256) - 128)
		want += x[i] * y[i]
	}
	got, st, err := a.SecureDotProduct(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("dot = %d, want %d", got, want)
	}
	if st.MACs != 10 || st.Cycles == 0 || st.TableBytes == 0 {
		t.Fatalf("stats incomplete: %+v", st)
	}
}

func TestSecureDotProductLengthMismatch(t *testing.T) {
	a := accel(t, Config{Width: 8})
	if _, _, err := a.SecureDotProduct([]int64{1}, []int64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSecureMatVec(t *testing.T) {
	a := accel(t, Config{Width: 8, AccWidth: 24, Signed: true})
	A := [][]int64{{1, 2, 3}, {-4, 5, -6}, {7, 0, 9}}
	y := []int64{10, -20, 30}
	got, st, err := a.SecureMatVec(A, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10 - 40 + 90, -40 - 100 - 180, 70 + 270}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], want[i])
		}
	}
	if st.MACs != 9 {
		t.Fatalf("stats MACs = %d", st.MACs)
	}
	if st.ModeledTime <= 0 || st.Cycles == 0 {
		t.Fatalf("timing missing: %+v", st)
	}
}

func TestSecureMatVecValidation(t *testing.T) {
	a := accel(t, Config{Width: 8, Signed: true})
	if _, _, err := a.SecureMatVec(nil, []int64{1}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, _, err := a.SecureMatVec([][]int64{{1, 2}}, []int64{1}); err == nil {
		t.Fatal("ragged shapes accepted")
	}
}

func TestSecureDotProductFixed(t *testing.T) {
	a := accel(t, Config{Width: 16, AccWidth: 48, Signed: true})
	f := fixed.Format{Width: 16, Frac: 6}
	x := []float64{1.5, -2.25, 0.5}
	y := []float64{2.0, 1.0, -4.0}
	want := 1.5*2.0 - 2.25*1.0 + 0.5*-4.0
	got, _, err := a.SecureDotProductFixed(f, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("fixed dot = %v, want %v", got, want)
	}
}

func TestSecureDotProductFixedValidation(t *testing.T) {
	a := accel(t, Config{Width: 16, Signed: true})
	if _, _, err := a.SecureDotProductFixed(fixed.Format{Width: 8, Frac: 2}, []float64{1}, []float64{1}); err == nil {
		t.Fatal("format/width mismatch accepted")
	}
	u := accel(t, Config{Width: 16}) // unsigned datapath
	if _, _, err := u.SecureDotProductFixed(fixed.Format{Width: 16, Frac: 4}, []float64{1}, []float64{1}); err == nil {
		t.Fatal("fixed-point on unsigned datapath accepted")
	}
	if _, _, err := a.SecureDotProductFixed(fixed.Format{Width: 16, Frac: 20}, []float64{1}, []float64{1}); err == nil {
		t.Fatal("invalid format accepted")
	}
	if _, _, err := a.SecureDotProductFixed(fixed.Format{Width: 16, Frac: 4}, []float64{1e9}, []float64{1}); err == nil {
		t.Fatal("overflowing value accepted")
	}
}

func TestSecureQuadraticForm(t *testing.T) {
	a := accel(t, Config{Width: 16, AccWidth: 48, Signed: true})
	f := fixed.Format{Width: 16, Frac: 6}
	// cov = [[2, 0.5], [0.5, 1]], w = [0.5, 0.25]
	cov := [][]int64{
		{f.MustEncode(2), f.MustEncode(0.5)},
		{f.MustEncode(0.5), f.MustEncode(1)},
	}
	w := []int64{f.MustEncode(0.5), f.MustEncode(0.25)}
	got, st, err := a.SecureQuadraticForm(cov, w, f)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*0.5*2 + 2*0.5*0.25*0.5 + 0.25*0.25*1
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("quadratic form = %v, want %v", got, want)
	}
	if st.MACs != 6 { // 2×2 mat-vec (4 MACs) + final dot (2 MACs)
		t.Fatalf("stats MACs = %d, want 6", st.MACs)
	}
}

func TestTable2MetricsExposed(t *testing.T) {
	a := accel(t, Config{Width: 32})
	if got := a.Simulator().ThroughputPerCoreMACsPerSec(); got < 8.59e4 || got > 8.77e4 {
		t.Fatalf("b=32 per-core throughput = %v", got)
	}
	if a.Schedule().NumCores() != 24 {
		t.Fatalf("b=32 cores = %d", a.Schedule().NumCores())
	}
	if a.Config().Width != 32 {
		t.Fatal("config not echoed")
	}
}

func TestSecureMatMul(t *testing.T) {
	a := accel(t, Config{Width: 8, AccWidth: 24, Signed: true})
	A := [][]int64{{1, 2}, {3, -4}}
	B := [][]int64{{5, -6}, {7, 8}}
	got, st, err := a.SecureMatMul(A, B)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{5 + 14, -6 + 16}, {15 - 28, -18 - 32}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("Y[%d][%d] = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	if st.MACs != 8 { // 2×2 result × inner dimension 2
		t.Fatalf("MACs = %d", st.MACs)
	}
	if st.Cycles == 0 || st.ModeledTime <= 0 {
		t.Fatalf("timing missing: %+v", st)
	}
}

func TestSecureMatMulValidation(t *testing.T) {
	a := accel(t, Config{Width: 8, Signed: true})
	if _, _, err := a.SecureMatMul(nil, [][]int64{{1}}); err == nil {
		t.Fatal("empty A accepted")
	}
	if _, _, err := a.SecureMatMul([][]int64{{1, 2}}, [][]int64{{1}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, _, err := a.SecureMatMul([][]int64{{1}}, [][]int64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged B accepted")
	}
	if _, _, err := a.SecureMatMul([][]int64{{1}, {2, 3}}, [][]int64{{1}}); err == nil {
		t.Fatal("ragged A accepted")
	}
}

func TestSecureMatVecParallelMatchesSerial(t *testing.T) {
	a := accel(t, Config{Width: 8, AccWidth: 24, Signed: true, MACUnits: 4})
	rng := mrand.New(mrand.NewSource(8))
	A := make([][]int64, 9)
	y := make([]int64, 5)
	for j := range y {
		y[j] = int64(rng.Intn(256) - 128)
	}
	for i := range A {
		A[i] = make([]int64, 5)
		for j := range A[i] {
			A[i][j] = int64(rng.Intn(256) - 128)
		}
	}
	serial, _, err := a.SecureMatVec(A, y)
	if err != nil {
		t.Fatal(err)
	}
	parallel, st, err := a.SecureMatVecParallel(A, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d: serial %d parallel %d", i, serial[i], parallel[i])
		}
	}
	if st.MACs != 45 {
		t.Fatalf("parallel stats MACs = %d", st.MACs)
	}
}

func TestSecureMatVecParallelValidation(t *testing.T) {
	a := accel(t, Config{Width: 8, Signed: true})
	if _, _, err := a.SecureMatVecParallel(nil, []int64{1}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, _, err := a.SecureMatVecParallel([][]int64{{1, 2}}, []int64{1}); err == nil {
		t.Fatal("ragged shapes accepted")
	}
	if _, _, err := a.SecureMatVecParallel([][]int64{{500}}, []int64{1}); err == nil {
		t.Fatal("out-of-range element accepted")
	}
}
