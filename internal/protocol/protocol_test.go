package protocol

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"testing"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/wire"
)

// serveValues runs one request through the unified Serve API and
// splits the response the way the retired per-mode helpers used to.
func serveValues(srv *Server, conn wire.Conn, req Request) ([]int64, Stats, error) {
	resp, err := srv.Serve(conn, req)
	if err != nil {
		return nil, Stats{}, err
	}
	return resp.Values, resp.Stats, nil
}

// clientRun is the retired Client.Run convenience kept test-side: one
// Dial + Do + Close over a fresh connection.
func clientRun(c *Client, conn wire.Conn, y []int64) ([]int64, error) {
	cs, err := c.Dial(conn)
	if err != nil {
		return nil, err
	}
	out, err := cs.Do(y)
	if err != nil {
		return nil, err
	}
	if err := cs.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// clientRunSerial is clientRun specialized to a serial-mode session's
// one-row result.
func clientRunSerial(c *Client, conn wire.Conn, y []int64) (int64, error) {
	out, err := clientRun(c, conn, y)
	if err != nil {
		return 0, err
	}
	if len(out) != 1 {
		return 0, fmt.Errorf("protocol: serial session returned %d values, want 1", len(out))
	}
	return out[0], nil
}

// runSession wires a server and client over an in-memory pipe.
func runSession(t *testing.T, cfg maxsim.Config, A [][]int64, y []int64) (serverOut []int64, clientOut []int64, st Stats) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()

	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		serverOut, st, srvErr = serveValues(srv, a, Request{Matrix: A})
	}()
	clientOut, err = clientRun(cli, b, y)
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return serverOut, clientOut, st
}

func TestDotProductOverPipe(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	x := []int64{3, -5, 7, 11}
	y := []int64{2, 4, -6, 8}
	want := int64(3*2 - 5*4 - 7*6 + 11*8)
	serverOut, clientOut, st := runSession(t, cfg, [][]int64{x}, y)
	if clientOut[0] != want {
		t.Fatalf("client result = %d, want %d", clientOut[0], want)
	}
	if serverOut[0] != want {
		t.Fatalf("server-learned result = %d, want %d", serverOut[0], want)
	}
	if st.MACs != 4 || st.TableBytes == 0 {
		t.Fatalf("server stats incomplete: %+v", st)
	}
}

func TestMatVecOverPipe(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	A := [][]int64{{1, 2}, {-3, 4}, {5, -6}}
	y := []int64{7, -9}
	_, clientOut, _ := runSession(t, cfg, A, y)
	want := []int64{7 - 18, -21 - 36, 35 + 54}
	for i := range want {
		if clientOut[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, clientOut[i], want[i])
		}
	}
}

func TestUnsignedSession(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 20}
	_, clientOut, _ := runSession(t, cfg, [][]int64{{200, 100}}, []int64{250, 3})
	if clientOut[0] != 200*250+100*3 {
		t.Fatalf("unsigned result = %d", clientOut[0])
	}
}

func TestRandomisedSessionsAgainstPlaintext(t *testing.T) {
	rng := mrand.New(mrand.NewSource(42))
	cfg := maxsim.Config{Width: 8, AccWidth: 32, Signed: true}
	for trial := 0; trial < 3; trial++ {
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(5)
		A := make([][]int64, n)
		want := make([]int64, n)
		y := make([]int64, m)
		for j := range y {
			y[j] = int64(rng.Intn(256) - 128)
		}
		for i := range A {
			A[i] = make([]int64, m)
			for j := range A[i] {
				A[i][j] = int64(rng.Intn(256) - 128)
				want[i] += A[i][j] * y[j]
			}
		}
		_, clientOut, _ := runSession(t, cfg, A, y)
		for i := range want {
			if clientOut[i] != want[i] {
				t.Fatalf("trial %d row %d = %d, want %d", trial, i, clientOut[i], want[i])
			}
		}
	}
}

func TestSessionOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := []int64{12, -34}
	y := []int64{-5, 6}
	want := int64(12*-5 + -34*6)

	var wg sync.WaitGroup
	var srvOut int64
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ln.Accept()
		if err != nil {
			srvErr = err
			return
		}
		conn := wire.NewStreamConn(c)
		defer conn.Close()
		var vals []int64
		vals, _, srvErr = serveValues(srv, conn, Request{Matrix: [][]int64{x}})
		if srvErr == nil {
			srvOut = vals[0]
		}
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewStreamConn(nc)
	defer conn.Close()
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := clientRun(cli, conn, y)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	if got[0] != want || srvOut != want {
		t.Fatalf("TCP session: client %d server %d, want %d", got[0], srvOut, want)
	}
}

func TestVectorLengthMismatchRejected(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(a, Request{Matrix: [][]int64{{1, 2, 3}}})
	}()
	if _, err := clientRun(cli, b, []int64{1}); err == nil {
		t.Fatal("length mismatch accepted by client")
	}
	a.Close() // unblock server
	wg.Wait()
}

func TestClientRejectsOutOfRangeInput(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(a, Request{Matrix: [][]int64{{1}}})
	}()
	if _, err := clientRun(cli, b, []int64{500}); err == nil {
		t.Fatal("out-of-range client value accepted")
	}
	a.Close()
	wg.Wait()
}

func TestServerValidation(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := wire.Pipe()
	defer a.Close()
	if _, err := srv.Serve(a, Request{}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := srv.Serve(a, Request{Matrix: [][]int64{{1, 2}, {3}}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(nil); err == nil {
		t.Fatal("nil randomness accepted")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"half-gates", "grr3", "four-row"} {
		s, err := schemeByName(name)
		if err != nil || s.Name() != name {
			t.Fatalf("schemeByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := schemeByName("enigma"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestBatchedOTSession(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	A := [][]int64{{1, -2, 3}, {4, 5, -6}}
	y := []int64{7, 8, 9}
	want := []int64{7 - 16 + 27, 28 + 40 - 54}

	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var srvOut []int64
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		srvOut, _, srvErr = serveValues(srv, a, Request{Matrix: A, OT: OTBatched})
	}()
	got, err := clientRun(cli, b, y)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	for i := range want {
		if got[i] != want[i] || srvOut[i] != want[i] {
			t.Fatalf("row %d: client %d server %d, want %d", i, got[i], srvOut[i], want[i])
		}
	}
}

func TestBatchedOTUsesFewerMessages(t *testing.T) {
	// The §3 tradeoff: batching collapses the per-round OT exchanges
	// into one, at the cost of client label memory.
	run := func(mode OTMode) int64 {
		srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
		if err != nil {
			t.Fatal(err)
		}
		cli, err := NewClient(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		a, b := wire.Pipe()
		defer a.Close()
		defer b.Close()
		cb := wire.NewCounting(b)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Serve(a, Request{Matrix: [][]int64{{1, 2, 3, 4, 5, 6}}, OT: mode})
		}()
		if _, err := clientRun(cli, cb, []int64{1, 1, 1, 1, 1, 1}); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		_, _, sentMsgs, recvMsgs := cb.Totals()
		return sentMsgs + recvMsgs
	}
	perRound := run(OTPerRound)
	batched := run(OTBatched)
	if batched >= perRound {
		t.Fatalf("batched OT used %d messages, per-round %d", batched, perRound)
	}
}

func TestCorrelatedOTSession(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	A := [][]int64{{2, -3, 4}, {-5, 6, 7}}
	y := []int64{10, 11, -12}
	want := []int64{20 - 33 - 48, -50 + 66 - 84}

	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var srvOut []int64
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		srvOut, _, srvErr = serveValues(srv, a, Request{Matrix: A, OT: OTCorrelated})
	}()
	got, err := clientRun(cli, b, y)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	for i := range want {
		if got[i] != want[i] || srvOut[i] != want[i] {
			t.Fatalf("row %d: client %d server %d, want %d", i, got[i], srvOut[i], want[i])
		}
	}
}

func TestCorrelatedOTHalvesLabelTraffic(t *testing.T) {
	// One correction ciphertext per wire instead of two OT ciphertexts.
	run := func(mode OTMode) int64 {
		srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
		if err != nil {
			t.Fatal(err)
		}
		cli, err := NewClient(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		a, b := wire.Pipe()
		defer a.Close()
		defer b.Close()
		ca := wire.NewCounting(a)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Serve(ca, Request{Matrix: [][]int64{{1, 2, 3, 4, 5, 6, 7, 8}}, OT: mode})
		}()
		if _, err := clientRun(cli, b, []int64{1, 1, 1, 1, 1, 1, 1, 1}); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		sent, _, _, _ := ca.Totals()
		return sent
	}
	plain := run(OTPerRound)
	correlated := run(OTCorrelated)
	if correlated >= plain {
		t.Fatalf("correlated OT sent %d bytes, plain %d", correlated, plain)
	}
}

func TestUnknownOTModeRejected(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := wire.Pipe()
	defer a.Close()
	if _, err := srv.Serve(a, Request{Matrix: [][]int64{{1}}, OT: OTMode(99)}); err == nil {
		t.Fatal("unknown OT mode accepted")
	}
}

func TestConcurrentSessions(t *testing.T) {
	// The cloud server of Fig. 1 serves multiple clients at once; each
	// session garbles under its own fresh labels and must not interfere
	// with the others.
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 3
	var wg sync.WaitGroup
	errs := make(chan error, sessions*2)
	for s := 0; s < sessions; s++ {
		x := []int64{int64(s + 1), int64(2 * (s + 1))}
		y := []int64{3, -4}
		want := x[0]*3 + x[1]*-4
		ca, cb := wire.Pipe()
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer ca.Close()
			if _, err := srv.Serve(ca, Request{Matrix: [][]int64{x}}); err != nil {
				errs <- err
			}
		}()
		go func(want int64) {
			defer wg.Done()
			defer cb.Close()
			cli, err := NewClient(rand.Reader)
			if err != nil {
				errs <- err
				return
			}
			got, err := clientRun(cli, cb, y)
			if err != nil {
				errs <- err
				return
			}
			if got[0] != want {
				errs <- fmt.Errorf("session result %d, want %d", got[0], want)
			}
		}(want)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSerialModeSession(t *testing.T) {
	for _, signed := range []bool{false, true} {
		srv, err := NewServer(maxsim.Config{Width: 8, Signed: signed})
		if err != nil {
			t.Fatal(err)
		}
		cli, err := NewClient(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var x, y []int64
		var want int64
		if signed {
			x, y = []int64{-13, 7}, []int64{11, -5}
			want = -13*11 + 7*-5
		} else {
			x, y = []int64{13, 7}, []int64{11, 5}
			want = 13*11 + 7*5
		}
		a, b := wire.Pipe()
		var wg sync.WaitGroup
		var srvOut int64
		var srvErr error
		var st Stats
		wg.Add(1)
		go func() {
			defer wg.Done()
			var vals []int64
			vals, st, srvErr = serveValues(srv, a, Request{Matrix: [][]int64{x}, Mode: ModeSerial})
			if srvErr == nil {
				srvOut = vals[0]
			}
		}()
		got, err := clientRunSerial(cli, b, y)
		wg.Wait()
		a.Close()
		b.Close()
		if err != nil {
			t.Fatal(err)
		}
		if srvErr != nil {
			t.Fatal(srvErr)
		}
		if got != want || srvOut != want {
			t.Fatalf("signed=%v: client %d server %d, want %d", signed, got, srvOut, want)
		}
		// Stage accounting: (2b+2) stages per MAC.
		if st.Stages != uint64(len(x))*18 {
			t.Fatalf("signed=%v: %d stages", signed, st.Stages)
		}
	}
}

func TestSerialModeValidationErrors(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	if _, err := srv.Serve(a, Request{Matrix: [][]int64{nil}, Mode: ModeSerial}); err == nil {
		t.Fatal("empty vector accepted")
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(a, Request{Matrix: [][]int64{{1, 2}}, Mode: ModeSerial})
	}()
	if _, err := clientRunSerial(cli, b, []int64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	a.Close()
	wg.Wait()
}
