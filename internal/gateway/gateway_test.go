package gateway

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/protocol"
	"maxelerator/internal/protocol/retry"
	"maxelerator/internal/wire"
	"maxelerator/internal/wire/faultconn"
)

// fakeBackend is one in-process garbler daemon: every dialed
// connection gets a real protocol.Server session (or a scripted BUSY /
// dial refusal / injected fault), so gateway tests exercise the same
// frames production does.
type fakeBackend struct {
	name string
	srv  *protocol.Server

	mu     sync.Mutex
	served int // sessions that completed a real serve
	busy   int // connections to reject with BUSY before serving again
	down   bool
	fault  *faultconn.Options // wraps the gateway-side conn when set
	status string             // probe verdict
	shapes []string           // advertised pool shapes
	wg     sync.WaitGroup
}

var testMatrix = [][]int64{{2, 3}}

func newFakeBackend(t *testing.T, name string) *fakeBackend {
	t.Helper()
	srv, err := protocol.NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	return &fakeBackend{name: name, srv: srv, status: obs.HealthOK}
}

func (fb *fakeBackend) dial() (wire.Conn, error) {
	fb.mu.Lock()
	if fb.down {
		fb.mu.Unlock()
		return nil, fmt.Errorf("dial %s: %w", fb.name, wire.ErrClosed)
	}
	busy := fb.busy > 0
	if busy {
		fb.busy--
	}
	fault := fb.fault
	fb.mu.Unlock()
	gwSide, beSide := wire.Pipe()
	fb.wg.Add(1)
	go func() {
		defer fb.wg.Done()
		defer beSide.Close()
		if busy {
			protocol.SendBusy(beSide, 5*time.Millisecond)
			return
		}
		if _, err := fb.srv.Serve(beSide, protocol.Request{Matrix: testMatrix}); err == nil {
			fb.mu.Lock()
			fb.served++
			fb.mu.Unlock()
		}
	}()
	if fault != nil {
		return faultconn.New(gwSide, *fault), nil
	}
	return gwSide, nil
}

func (fb *fakeBackend) servedCount() int {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.served
}

// fleet wires N fake backends behind one gateway with injected dial
// and probe functions.
type fleet struct {
	backends map[string]*fakeBackend
	gw       *Gateway
	obs      *obs.Obs
}

func newFleet(t *testing.T, n int, mutate func(*Config)) *fleet {
	t.Helper()
	f := &fleet{backends: make(map[string]*fakeBackend), obs: obs.New(8)}
	var cfg Config
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("backend-%d", i)
		f.backends[name] = newFakeBackend(t, name)
		cfg.Backends = append(cfg.Backends, Backend{Addr: name, HealthURL: "probe://" + name})
	}
	cfg.Obs = f.obs
	cfg.PeekTimeout = 50 * time.Millisecond
	cfg.EjectAfter = 2
	cfg.RetryAfter = 10 * time.Millisecond
	cfg.Dial = func(addr string) (wire.Conn, error) {
		fb, ok := f.backends[addr]
		if !ok {
			return nil, fmt.Errorf("unknown backend %q", addr)
		}
		return fb.dial()
	}
	cfg.Probe = func(b Backend) (string, []string, error) {
		fb := f.backends[b.Addr]
		fb.mu.Lock()
		defer fb.mu.Unlock()
		if fb.down {
			return "", nil, fmt.Errorf("probe %s: unreachable", b.Addr)
		}
		return fb.status, fb.shapes, nil
	}
	if mutate != nil {
		mutate(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.gw = gw
	t.Cleanup(func() {
		gw.Close()
		for _, fb := range f.backends {
			fb.wg.Wait()
		}
	})
	return f
}

// drain waits out every backend goroutine, so served counters are
// final before assertions.
func (f *fleet) drain() {
	for _, fb := range f.backends {
		fb.wg.Wait()
	}
}

// totalServed sums completed serves across the fleet.
func (f *fleet) totalServed() int {
	total := 0
	for _, fb := range f.backends {
		total += fb.servedCount()
	}
	return total
}

var testHint = protocol.ShapeHint{Rows: 1, Cols: 2, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"}

// runSession dials the gateway with an optional shape hint and runs
// one request end to end, returning the Dial error verbatim (BUSY
// shedding surfaces there).
func runSession(t *testing.T, g *Gateway, hint *protocol.ShapeHint) ([]int64, error) {
	t.Helper()
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if hint != nil {
		cli.WithShapeHint(*hint)
	}
	gwSide, cliSide := wire.Pipe()
	defer cliSide.Close()
	go g.HandleConn(gwSide)
	cs, err := cli.Dial(cliSide)
	if err != nil {
		return nil, err
	}
	out, err := cs.Do([]int64{4, 5})
	if err != nil {
		return nil, err
	}
	if err := cs.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

func wantResult(t *testing.T, out []int64) {
	t.Helper()
	if len(out) != 1 || out[0] != 2*4+3*5 {
		t.Fatalf("result = %v, want [23]", out)
	}
}

// TestSameShapeSessionsPinToOneBackend is the affinity contract: every
// session hinting the same shape lands on the same backend — across
// reconnects — so that backend's precompute pool is the only one that
// has to learn the shape.
func TestSameShapeSessionsPinToOneBackend(t *testing.T) {
	f := newFleet(t, 3, nil)
	const sessions = 3
	for i := 0; i < sessions; i++ {
		out, err := runSession(t, f.gw, &testHint)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		wantResult(t, out)
	}
	f.drain()
	owner := f.gw.ring.Lookup(testHint.Key(), 1)[0]
	for name, fb := range f.backends {
		want := 0
		if name == owner {
			want = sessions
		}
		if got := fb.servedCount(); got != want {
			t.Fatalf("%s served %d sessions, want %d (ring owner %s)", name, got, want, owner)
		}
	}
	if got := f.obs.Metrics().Counter("gw_sessions_total", "", obs.L("backend", owner)).Value(); got != sessions {
		t.Fatalf("gw_sessions_total{%s} = %d", owner, got)
	}
}

// TestUnhintedSessionRoutesAndServes pins backward compatibility: a
// client that never sends the preface (every pre-gateway client) still
// gets served — the peek times out and the session routes by load.
func TestUnhintedSessionRoutesAndServes(t *testing.T) {
	f := newFleet(t, 2, nil)
	out, err := runSession(t, f.gw, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantResult(t, out)
	f.drain()
	if got := f.totalServed(); got != 1 {
		t.Fatalf("fleet served %d sessions, want 1", got)
	}
	if got := f.obs.Metrics().Counter("gw_peeks_total", "", obs.L("result", "none")).Value(); got != 1 {
		t.Fatalf("gw_peeks_total{none} = %d", got)
	}
}

// TestBusyFailoverNeverDoubleServes is the chaos test for the
// single-serve guarantee: the ring primary rejects with BUSY and the
// second replica's connection dies on its first frame (faultconn), yet
// the session lands exactly once — on the third replica — and the
// client sees one clean result.
func TestBusyFailoverNeverDoubleServes(t *testing.T) {
	f := newFleet(t, 3, nil)
	order := f.gw.ring.Lookup(testHint.Key(), 0)
	f.backends[order[0]].busy = 1
	f.backends[order[1]].fault = &faultconn.Options{ErrOnRecv: 1}

	out, err := runSession(t, f.gw, &testHint)
	if err != nil {
		t.Fatal(err)
	}
	wantResult(t, out)
	f.drain()
	if got := f.totalServed(); got != 1 {
		t.Fatalf("fleet served %d sessions, want exactly 1", got)
	}
	if got := f.backends[order[2]].servedCount(); got != 1 {
		t.Fatalf("third replica served %d, want 1", got)
	}
	reg := f.obs.Metrics()
	if got := reg.Counter("gw_failovers_total", "", obs.L("reason", "busy")).Value(); got != 1 {
		t.Fatalf("gw_failovers_total{busy} = %d", got)
	}
	if got := reg.Counter("gw_failovers_total", "", obs.L("reason", "dial")).Value(); got != 1 {
		t.Fatalf("gw_failovers_total{dial} = %d", got)
	}
}

// TestDeadBackendFailsOver covers the kill case: the primary's dial
// refuses outright and the session transparently lands on the next
// replica.
func TestDeadBackendFailsOver(t *testing.T) {
	f := newFleet(t, 2, nil)
	order := f.gw.ring.Lookup(testHint.Key(), 0)
	f.backends[order[0]].down = true

	out, err := runSession(t, f.gw, &testHint)
	if err != nil {
		t.Fatal(err)
	}
	wantResult(t, out)
	f.drain()
	if got := f.backends[order[1]].servedCount(); got != 1 {
		t.Fatalf("replica served %d, want 1", got)
	}
}

// TestAllBusySheds pins the exhaustion path: when every candidate
// rejects, the gateway sends its own BUSY so the client's existing
// retry taxonomy applies — the error must classify exactly like a
// single overloaded server's.
func TestAllBusySheds(t *testing.T) {
	f := newFleet(t, 3, nil)
	for _, fb := range f.backends {
		fb.busy = 10
	}
	_, err := runSession(t, f.gw, &testHint)
	var be *protocol.BusyError
	if !errors.As(err, &be) {
		t.Fatalf("expected BusyError, got %v", err)
	}
	if be.RetryAfter <= 0 {
		t.Fatalf("shed without a retry hint: %+v", be)
	}
	f.drain()
	if got := f.totalServed(); got != 0 {
		t.Fatalf("fleet served %d sessions while shedding", got)
	}
	if got := f.obs.Metrics().Counter("gw_shed_total", "").Value(); got != 1 {
		t.Fatalf("gw_shed_total = %d", got)
	}
}

// testClock is an injectable clock for breaker-cooldown tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1_700_000_000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestProbeEjectsAndReadmits drives the breaker-driven membership
// machine: consecutive failed probes trip the breaker and remove a
// backend from the ring (sessions reroute); a healthy probe readmits
// it only after the breaker's cooldown — a lucky probe mid-cooldown
// must not flap the ring.
func TestProbeEjectsAndReadmits(t *testing.T) {
	clock := newTestClock()
	const cooldown = 5 * time.Second
	f := newFleet(t, 3, func(cfg *Config) {
		cfg.Now = clock.Now
		cfg.BreakerCooldown = cooldown
	})
	order := f.gw.ring.Lookup(testHint.Key(), 0)
	primary := f.backends[order[0]]

	primary.mu.Lock()
	primary.status = obs.HealthOverloaded
	primary.mu.Unlock()
	f.gw.ProbeNow()
	if !f.gw.ring.Has(order[0]) {
		t.Fatal("one failed probe ejected the backend (EjectAfter is 2)")
	}
	f.gw.ProbeNow()
	if f.gw.ring.Has(order[0]) {
		t.Fatal("backend not ejected after EjectAfter consecutive failures")
	}
	if got := f.gw.healthVerdict(); got != obs.HealthDegraded {
		t.Fatalf("gateway health = %q with a partial fleet", got)
	}

	out, err := runSession(t, f.gw, &testHint)
	if err != nil {
		t.Fatal(err)
	}
	wantResult(t, out)
	f.drain()
	if got := primary.servedCount(); got != 0 {
		t.Fatalf("ejected backend served %d sessions", got)
	}

	// Hysteresis: healthy probes inside the cooldown are ignored.
	primary.mu.Lock()
	primary.status = obs.HealthOK
	primary.mu.Unlock()
	f.gw.ProbeNow()
	if f.gw.ring.Has(order[0]) {
		t.Fatal("healthy probe mid-cooldown readmitted the backend")
	}

	// Past the cooldown the next healthy probe is the half-open trial
	// and readmits.
	clock.Advance(cooldown + time.Second)
	f.gw.ProbeNow()
	if !f.gw.ring.Has(order[0]) {
		t.Fatal("healthy probe after the cooldown did not readmit the backend")
	}
	if got := f.gw.healthVerdict(); got != obs.HealthOK {
		t.Fatalf("gateway health = %q with a full fleet", got)
	}
}

// TestAdvertisedShapePreferred: a backend that announces a warm pool
// for the exact shape outranks ring position, so a fleet whose pools
// already learned the traffic keeps serving it warm.
func TestAdvertisedShapePreferred(t *testing.T) {
	f := newFleet(t, 3, nil)
	order := f.gw.ring.Lookup(testHint.Key(), 0)
	warm := f.backends[order[2]] // last in ring order
	warm.mu.Lock()
	warm.shapes = []string{testHint.Key()}
	warm.mu.Unlock()
	f.gw.ProbeNow()

	candidates := f.gw.route(testHint, true)
	if len(candidates) != 3 {
		t.Fatalf("%d candidates", len(candidates))
	}
	if candidates[0].Addr != order[2] {
		t.Fatalf("first candidate %s, want advertising backend %s", candidates[0].Addr, order[2])
	}
	snap := f.gw.Snapshot()
	var found bool
	for _, st := range snap {
		if st.Addr == order[2] {
			found = len(st.Shapes) == 1 && st.Shapes[0] == testHint.Key()
		}
	}
	if !found {
		t.Fatalf("snapshot does not show the advertised shape: %+v", snap)
	}
}

// TestUnhintedRouteIsLeastLoaded unit-tests the load ordering the
// unhinted path uses.
func TestUnhintedRouteIsLeastLoaded(t *testing.T) {
	f := newFleet(t, 3, nil)
	f.gw.byAddr["backend-0"].active.Store(5)
	f.gw.byAddr["backend-1"].active.Store(1)
	f.gw.byAddr["backend-2"].active.Store(3)
	got := f.gw.route(protocol.ShapeHint{}, false)
	want := []string{"backend-1", "backend-2", "backend-0"}
	for i := range want {
		if got[i].Addr != want[i] {
			t.Fatalf("position %d: %s, want %s", i, got[i].Addr, want[i])
		}
	}
}

// TestBoundedLoadYieldsHotPrimary: a primary far above the bounded-load
// ceiling yields to the next replica even for its own shapes.
func TestBoundedLoadYieldsHotPrimary(t *testing.T) {
	f := newFleet(t, 3, nil)
	order := f.gw.ring.Lookup(testHint.Key(), 0)
	f.gw.byAddr[order[0]].active.Store(100)
	got := f.gw.route(testHint, true)
	if got[0].Addr == order[0] {
		t.Fatalf("overloaded primary %s still first", order[0])
	}
	if got[len(got)-1].Addr != order[0] {
		t.Fatalf("overloaded primary not demoted to last: %s", got[len(got)-1].Addr)
	}
}

// TestClientGoneDuringPeek: a client that connects and immediately
// vanishes must not consume a backend.
func TestClientGoneDuringPeek(t *testing.T) {
	f := newFleet(t, 2, nil)
	gwSide, cliSide := wire.Pipe()
	cliSide.Close()
	f.gw.HandleConn(gwSide) // synchronous: returns once the peek fails
	f.drain()
	if got := f.totalServed(); got != 0 {
		t.Fatalf("fleet served %d sessions for a vanished client", got)
	}
	if got := f.obs.Metrics().Counter("gw_peek_errors_total", "").Value(); got != 1 {
		t.Fatalf("gw_peek_errors_total = %d", got)
	}
}

// TestRetryLayerRidesFailover: the client-side ReDialer composes with
// the gateway — a BUSY-shedding fleet that recovers between attempts
// is healed by the existing retry taxonomy without the client
// distinguishing gateway BUSY from backend BUSY.
func TestRetryLayerRidesFailover(t *testing.T) {
	f := newFleet(t, 2, nil)
	for _, fb := range f.backends {
		fb.busy = 2 // both replicas reject the first two session attempts
	}
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cli.WithShapeHint(testHint)
	rd, err := retry.NewReDialer(cli, func() (wire.Conn, error) {
		gwSide, cliSide := wire.Pipe()
		go f.gw.HandleConn(gwSide)
		return cliSide, nil
	}, retry.Policy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rd.Do([]int64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	wantResult(t, out)
	// Close before draining: the backend's Serve returns (and counts the
	// session) only after the end-of-session marker the Close sends.
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	f.drain()
	if got := f.totalServed(); got != 1 {
		t.Fatalf("fleet served %d sessions, want 1", got)
	}
}

// TestDrainCleanWhenSessionsFinish: with every relayed session already
// over, Drain reports clean within the deadline and the draining gauge
// ends at zero.
func TestDrainCleanWhenSessionsFinish(t *testing.T) {
	f := newFleet(t, 1, nil)
	out, err := runSession(t, f.gw, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantResult(t, out)
	if !f.gw.Drain(5 * time.Second) {
		t.Fatal("gateway did not drain after its only session finished")
	}
	reg := f.obs.Metrics()
	if got := reg.Gauge("gw_draining", "").Value(); got != 0 {
		t.Fatalf("gw_draining = %d after a clean drain, want 0", got)
	}
}

// TestDrainDeadlineEscalatesToClose mirrors maxd's shutdown sequence
// from the gateway side: an idle-but-open session holds the drain past
// its deadline (gauge at 1), KillSessions force-closes it, and the
// follow-up drain observes the relay unwind.
func TestDrainDeadlineEscalatesToClose(t *testing.T) {
	f := newFleet(t, 1, nil)
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	gwSide, cliSide := wire.Pipe()
	defer cliSide.Close()
	go f.gw.HandleConn(gwSide)
	// A completed Dial proves the session is committed and relaying;
	// the client then goes idle without closing, so it can never drain
	// on its own.
	if _, err := cli.Dial(cliSide); err != nil {
		t.Fatal(err)
	}

	if f.gw.Drain(50 * time.Millisecond) {
		t.Fatal("gateway drained with a session still open")
	}
	reg := f.obs.Metrics()
	if got := reg.Gauge("gw_draining", "").Value(); got != 1 {
		t.Fatalf("gw_draining = %d past the drain deadline, want 1", got)
	}

	f.gw.KillSessions()
	if !f.gw.Drain(5 * time.Second) {
		t.Fatal("hard close did not unwind the relayed session")
	}
	if got := reg.Gauge("gw_draining", "").Value(); got != 0 {
		t.Fatalf("gw_draining = %d after escalation drained, want 0", got)
	}
	if got := reg.Gauge("gw_sessions_active", "").Value(); got != 0 {
		t.Fatalf("gw_sessions_active = %d after escalation drained, want 0", got)
	}
}
