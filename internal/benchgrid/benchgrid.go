// Package benchgrid defines the repository's canonical benchmark
// artifact: a versioned JSON grid of online-path measurements over
// OT mode × matrix size × bit-width × precompute on/off, each cell
// carrying latency percentiles, garbling throughput and allocation
// cost. `maxbench -grid` emits it, one `BENCH_PR<k>.json` per
// perf-touching PR is committed at the repo root, and
// `maxbench -compare` (and the CI bench-gate job) diff two grids under
// explicit tolerances — so every "faster" claim in this repository is
// a diffable number, not a commit-message anecdote.
//
// The schema is environment-stamped (go version, CPU count,
// GOMAXPROCS) because latency cells are only comparable on like
// hardware; cross-machine gates should widen the latency tolerance or
// lean on the machine-independent cells (bytes/op, allocs/op).
package benchgrid

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
)

// SchemaVersion is the current grid schema. Readers reject grids
// written under a different version instead of mis-diffing them.
const SchemaVersion = 1

// Env stamps the machine a grid was measured on. Latency and
// throughput cells are only meaningfully comparable between grids with
// like environments.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentEnv stamps the running process's environment.
func CurrentEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Cell is one measured grid point: a fixed workload shape and serving
// mode, with its latency distribution and per-request cost.
type Cell struct {
	// OT is the label-transfer mode wire name ("per-round", "batched",
	// "correlated").
	OT string `json:"ot"`
	// Rows, Cols and Width fix the matvec workload shape.
	Rows  int `json:"rows"`
	Cols  int `json:"cols"`
	Width int `json:"width"`
	// Precompute marks the warm-pool (offline/online split) serving
	// mode; false is inline garbling.
	Precompute bool `json:"precompute"`
	// Requests is the sample count behind the percentiles.
	Requests int `json:"requests"`

	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// TablesPerSec is garbled-table streaming throughput over the
	// online (clocked) time of the pass.
	TablesPerSec float64 `json:"tables_per_sec"`
	// BytesPerOp and AllocsPerOp are runtime.MemStats deltas across the
	// clocked region divided by Requests — heap cost per request,
	// machine-independent to first order.
	BytesPerOp  uint64 `json:"bytes_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	// Degraded marks a cell whose measurement did not run under its
	// nominal serving mode — a precompute cell whose pool missed
	// mid-run and fell back to inline garbling. Its numbers describe a
	// mixed regime, so Compare skips the cell rather than gating on it.
	Degraded bool `json:"degraded,omitempty"`
}

// Key identifies a cell's grid point — the match key Compare joins on.
func (c Cell) Key() string {
	return fmt.Sprintf("ot=%s/%dx%d/b=%d/precompute=%t", c.OT, c.Rows, c.Cols, c.Width, c.Precompute)
}

// Grid is the full artifact.
type Grid struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedBy     string `json:"created_by,omitempty"`
	Env           Env    `json:"env"`
	Cells         []Cell `json:"cells"`
}

// New returns an empty grid stamped with the current schema version
// and environment.
func New(createdBy string) *Grid {
	return &Grid{SchemaVersion: SchemaVersion, CreatedBy: createdBy, Env: CurrentEnv()}
}

// Validate checks the structural invariants a written grid must hold:
// supported schema version, at least one cell, positive sample counts,
// no duplicate grid points, and ordered percentiles per cell.
func (g *Grid) Validate() error {
	if g == nil {
		return fmt.Errorf("benchgrid: nil grid")
	}
	if g.SchemaVersion != SchemaVersion {
		return fmt.Errorf("benchgrid: schema version %d, this reader understands %d", g.SchemaVersion, SchemaVersion)
	}
	if len(g.Cells) == 0 {
		return fmt.Errorf("benchgrid: grid has no cells")
	}
	seen := make(map[string]bool, len(g.Cells))
	for i, c := range g.Cells {
		k := c.Key()
		if seen[k] {
			return fmt.Errorf("benchgrid: duplicate cell %s", k)
		}
		seen[k] = true
		if c.Requests <= 0 {
			return fmt.Errorf("benchgrid: cell %d (%s) has %d requests", i, k, c.Requests)
		}
		if c.P50Ms > c.P95Ms || c.P95Ms > c.P99Ms {
			return fmt.Errorf("benchgrid: cell %s percentiles not ordered (p50=%g p95=%g p99=%g)",
				k, c.P50Ms, c.P95Ms, c.P99Ms)
		}
	}
	return nil
}

// Cell returns the cell with the given key.
func (g *Grid) Cell(key string) (Cell, bool) {
	if g == nil {
		return Cell{}, false
	}
	for _, c := range g.Cells {
		if c.Key() == key {
			return c, true
		}
	}
	return Cell{}, false
}

// Encode writes the grid as indented JSON.
func (g *Grid) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// Decode reads and validates a grid.
func Decode(r io.Reader) (*Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("benchgrid: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// Load reads and validates a grid file.
func Load(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchgrid: %w", err)
	}
	defer f.Close()
	g, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("benchgrid: %s: %w", path, err)
	}
	return g, nil
}

// Tolerances bound how much worse a new grid may measure before
// Compare flags a regression. Fractions are relative slack (0.25
// allows +25%); a negative fraction disables that metric family
// entirely (e.g. latency on cross-machine comparisons).
type Tolerances struct {
	// Latency is the allowed fractional increase on p50/p95/p99/mean.
	Latency float64 `json:"latency"`
	// LatencySlackMs is an absolute grace added on top of the
	// fractional latency bound, so sub-millisecond cells don't flap on
	// scheduler jitter.
	LatencySlackMs float64 `json:"latency_slack_ms"`
	// Throughput is the allowed fractional decrease on tables/sec.
	Throughput float64 `json:"throughput"`
	// Bytes and Allocs are the allowed fractional increases on
	// bytes/op and allocs/op.
	Bytes  float64 `json:"bytes"`
	Allocs float64 `json:"allocs"`
	// RequireAll makes a baseline cell missing from the new grid a
	// regression. Off by default so a reduced CI grid can be gated
	// against a full committed baseline.
	RequireAll bool `json:"require_all"`
}

// DefaultTolerances is the same-machine policy: 25% on timing-derived
// cells (they jitter), 10% on allocation cells (they barely do).
func DefaultTolerances() Tolerances {
	return Tolerances{Latency: 0.25, LatencySlackMs: 0.5, Throughput: 0.25, Bytes: 0.10, Allocs: 0.10}
}

// Regression is one tolerance breach: the metric of one cell that
// measured worse than the baseline allows.
type Regression struct {
	Key    string  `json:"key"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Limit is the worst value the tolerance permitted.
	Limit float64 `json:"limit"`
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: cell missing from new grid", r.Key)
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g (limit %.4g)", r.Key, r.Metric, r.Old, r.New, r.Limit)
}

// Compare diffs cur against base cell-by-cell (joined on Cell.Key) and
// returns every tolerance breach, ordered by cell key. Cells present
// only in cur are ignored (a grown grid is not a regression); cells
// present only in base are ignored unless tol.RequireAll. An empty
// result means the new grid is within tolerance everywhere.
func Compare(base, cur *Grid, tol Tolerances) []Regression {
	if base == nil || cur == nil {
		return nil
	}
	byKey := make(map[string]Cell, len(cur.Cells))
	for _, c := range cur.Cells {
		byKey[c.Key()] = c
	}
	keys := make([]string, 0, len(base.Cells))
	cells := make(map[string]Cell, len(base.Cells))
	for _, c := range base.Cells {
		keys = append(keys, c.Key())
		cells[c.Key()] = c
	}
	sort.Strings(keys)

	var regs []Regression
	for _, k := range keys {
		o := cells[k]
		n, ok := byKey[k]
		if !ok {
			if tol.RequireAll {
				regs = append(regs, Regression{Key: k, Metric: "missing"})
			}
			continue
		}
		// A degraded measurement (either side) describes a mixed serving
		// regime; diffing it against a clean one would flag phantom
		// regressions — or hide real ones.
		if o.Degraded || n.Degraded {
			continue
		}
		higher := func(metric string, oldV, newV, frac, slack float64) {
			if frac < 0 || oldV <= 0 {
				return
			}
			limit := oldV*(1+frac) + slack
			if newV > limit {
				regs = append(regs, Regression{Key: k, Metric: metric, Old: oldV, New: newV, Limit: limit})
			}
		}
		higher("p50_ms", o.P50Ms, n.P50Ms, tol.Latency, tol.LatencySlackMs)
		higher("p95_ms", o.P95Ms, n.P95Ms, tol.Latency, tol.LatencySlackMs)
		higher("p99_ms", o.P99Ms, n.P99Ms, tol.Latency, tol.LatencySlackMs)
		higher("mean_ms", o.MeanMs, n.MeanMs, tol.Latency, tol.LatencySlackMs)
		higher("bytes_per_op", float64(o.BytesPerOp), float64(n.BytesPerOp), tol.Bytes, 0)
		higher("allocs_per_op", float64(o.AllocsPerOp), float64(n.AllocsPerOp), tol.Allocs, 0)
		if tol.Throughput >= 0 && o.TablesPerSec > 0 {
			limit := o.TablesPerSec * (1 - tol.Throughput)
			if n.TablesPerSec < limit {
				regs = append(regs, Regression{Key: k, Metric: "tables_per_sec",
					Old: o.TablesPerSec, New: n.TablesPerSec, Limit: limit})
			}
		}
	}
	return regs
}
