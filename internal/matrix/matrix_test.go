package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewDenseValidation(t *testing.T) {
	for _, shape := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		if _, err := NewDense(shape[0], shape[1]); err == nil {
			t.Fatalf("shape %v accepted", shape)
		}
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At wrong")
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set wrong")
	}
	if got := m.Row(0); got[0] != 1 || got[1] != 2 {
		t.Fatal("Row wrong")
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty rows accepted")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %d×%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("transpose values wrong")
			}
		}
	}
}

func TestMatVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y, err := m.MatVec([]float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MatVec = %v", y)
		}
	}
	if _, err := m.MatVec([]float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestMulMatchesManual(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(MustDense(3, 3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMulAssociatesWithMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, _ := Random(4, 6, 1, rng)
	b, _ := Random(6, 1, 1, rng)
	ab, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 6)
	for i := range x {
		x[i] = b.At(i, 0)
	}
	mv, err := a.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mv {
		if math.Abs(mv[i]-ab.At(i, 0)) > 1e-12 {
			t.Fatalf("MatVec and Mul disagree at %d", i)
		}
	}
}

func TestDot(t *testing.T) {
	got, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestQuadraticForm(t *testing.T) {
	cov, _ := FromRows([][]float64{{2, 0.5}, {0.5, 1}})
	w := []float64{0.6, 0.4}
	got, err := QuadraticForm(w, cov)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.6*0.6*2 + 2*0.6*0.4*0.5 + 0.4*0.4*1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("QuadraticForm = %v, want %v", got, want)
	}
	if _, err := QuadraticForm(w, MustDense(2, 3)); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestGradientStepConverges(t *testing.T) {
	// Eq. 2 on a tiny well-conditioned least-squares problem must
	// reduce the residual toward the known solution.
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	trueX := []float64{2, -1}
	y, _ := a.MatVec(trueX)
	x := []float64{0, 0}
	var err error
	for i := 0; i < 200; i++ {
		x, err = GradientStep(a, x, y, 0.1)
		if err != nil {
			t.Fatal(err)
		}
	}
	d, err := MaxAbsDiff(x, trueX)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-6 {
		t.Fatalf("gradient descent residual %v after 200 iters", d)
	}
}

func TestGradientStepValidation(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0}})
	if _, err := GradientStep(a, []float64{1, 2}, []float64{1, 2}, 0.1); err == nil {
		t.Fatal("bad observation length accepted")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	d, err := MaxAbsDiff([]float64{1, 5}, []float64{1.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if _, err := MaxAbsDiff([]float64{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRandomBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := Random(10, 10, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Data {
		if v < -3 || v > 3 {
			t.Fatalf("random value %v outside scale", v)
		}
	}
	if _, err := Random(0, 1, 1, rng); err == nil {
		t.Fatal("bad shape accepted")
	}
}

func TestMustDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDense(0,0) did not panic")
		}
	}()
	MustDense(0, 0)
}
