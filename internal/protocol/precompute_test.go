package protocol

// Integration tests for the offline/online split: pool hits must serve
// correct results on the pure online path, pool misses must fall back
// to inline garbling with bit-identical wire output, and miss traffic
// must teach the engine its shape.

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"maxelerator/internal/label"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/precompute"
	"maxelerator/internal/wire"
)

func precomputeTestServer(t *testing.T, cfg maxsim.Config, o *obs.Obs, pool int) (*Server, *precompute.Engine, precompute.Shape) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	eng, err := precompute.New(precompute.Config{Sim: cfg, Metrics: o.Metrics(), PoolSize: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Stop)
	srv.WithPrecompute(eng)
	shape := precompute.Shape{Rows: 2, Cols: 3, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"}
	return srv, eng, shape
}

// serveOnce runs one request over a fresh pipe and returns the client's
// outputs.
func serveOnce(t *testing.T, srv *Server, req Request, y []int64) []int64 {
	t.Helper()
	ca, cb := wire.Pipe()
	defer ca.Close()
	defer cb.Close()
	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = srv.Serve(ca, req)
	}()
	cli, err := NewClient(label.MustSystemDRBG())
	if err != nil {
		t.Fatal(err)
	}
	out, err := clientRun(cli, cb, y)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return out
}

func TestPrecomputeHitServesOnlinePath(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	A := [][]int64{{1, -2, 3}, {4, 5, -6}}
	y := []int64{7, -8, 9}
	want := []int64{1*7 + -2*-8 + 3*9, 4*7 + 5*-8 + -6*9}

	for _, mode := range []OTMode{OTPerRound, OTBatched} {
		t.Run(mode.String(), func(t *testing.T) {
			o := obs.New(4)
			srv, eng, shape := precomputeTestServer(t, cfg, o, 2)
			shape.OT = mode.String()
			if err := eng.Prefill(shape, 1); err != nil {
				t.Fatal(err)
			}
			out := serveOnce(t, srv, Request{Matrix: A, OT: mode}, y)
			if out[0] != want[0] || out[1] != want[1] {
				t.Fatalf("pool-served result %v, want %v", out, want)
			}
			lbl := obs.L("shape", shape.String())
			if v := o.Metrics().Counter("precompute_hits_total", "", lbl).Value(); v != 1 {
				t.Fatalf("hits = %d, want 1", v)
			}
			if v := o.Metrics().Counter("precompute_misses_total", "", lbl).Value(); v != 0 {
				t.Fatalf("misses = %d, want 0", v)
			}
			if d := eng.Depth(shape); d != 0 {
				t.Fatalf("entry not consumed: depth %d", d)
			}
			snap := o.Traces().Recent(1)[0]
			if snap.Attrs["precompute"] != "hit" {
				t.Fatalf("trace precompute attr %q, want \"hit\"", snap.Attrs["precompute"])
			}
		})
	}
}

// TestPrecomputeMissFallsBackBitIdentical is the wire-compatibility
// guarantee: with identical randomness on both endpoints, a server with
// a cold precompute pool (miss → inline fallback) emits exactly the
// same bytes as a server with no engine at all.
func TestPrecomputeMissFallsBackBitIdentical(t *testing.T) {
	A := [][]int64{{1, -2, 3}, {4, 5, -6}}
	y := []int64{7, -8, 9}

	run := func(withEngine bool) ([][]byte, []int64, *obs.Obs) {
		cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
		drbg, err := label.NewDRBG([16]byte{11})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Rand = drbg
		o := obs.New(4)
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.WithObs(o)
		if withEngine {
			eng, err := precompute.New(precompute.Config{Sim: maxsim.Config{Width: 8, AccWidth: 24, Signed: true}, Metrics: o.Metrics()})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(eng.Stop)
			srv.WithPrecompute(eng) // never prefilled, never started: every Take misses
		}
		ca, cb := wire.Pipe()
		defer ca.Close()
		defer cb.Close()
		rec := &recordingConn{Conn: ca}
		var wg sync.WaitGroup
		var srvErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, srvErr = srv.Serve(rec, Request{Matrix: A})
		}()
		cdrbg, err := label.NewDRBG([16]byte{22})
		if err != nil {
			t.Fatal(err)
		}
		cli, err := NewClient(cdrbg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := clientRun(cli, cb, y)
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if srvErr != nil {
			t.Fatal(srvErr)
		}
		return rec.frames(), out, o
	}

	plain, outPlain, _ := run(false)
	missed, outMissed, o := run(true)
	if len(plain) != len(missed) {
		t.Fatalf("frame counts differ: plain %d, cold-pool %d", len(plain), len(missed))
	}
	for i := range plain {
		if !bytes.Equal(plain[i], missed[i]) {
			t.Fatalf("frame %d differs between plain and cold-pool serving", i)
		}
	}
	if outPlain[0] != outMissed[0] || outPlain[1] != outMissed[1] {
		t.Fatalf("results differ: %v vs %v", outPlain, outMissed)
	}
	shape := precompute.Shape{Rows: 2, Cols: 3, Width: 8, Signed: true, Mode: "matvec", OT: "per-round"}
	if v := o.Metrics().Counter("precompute_misses_total", "", obs.L("shape", shape.String())).Value(); v != 1 {
		t.Fatalf("misses = %d, want 1", v)
	}
	if snap := o.Traces().Recent(1)[0]; snap.Attrs["precompute"] != "miss" {
		t.Fatalf("trace precompute attr %q, want \"miss\"", snap.Attrs["precompute"])
	}
}

// TestPrecomputeLearnsShapeFromTraffic: the first request of an unknown
// shape misses; the miss admits the shape, the background workers fill
// it, and a later identical request hits.
func TestPrecomputeLearnsShapeFromTraffic(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	o := obs.New(4)
	srv, eng, shape := precomputeTestServer(t, cfg, o, 1)
	eng.Start()
	A := [][]int64{{1, -2, 3}, {4, 5, -6}}
	y := []int64{7, -8, 9}

	serveOnce(t, srv, Request{Matrix: A}, y) // miss: teaches the shape
	lbl := obs.L("shape", shape.String())
	if v := o.Metrics().Counter("precompute_misses_total", "", lbl).Value(); v != 1 {
		t.Fatalf("misses = %d, want 1", v)
	}
	waitForDepth(t, eng, shape, 1)
	serveOnce(t, srv, Request{Matrix: A}, y) // warm now: hit
	if v := o.Metrics().Counter("precompute_hits_total", "", lbl).Value(); v != 1 {
		t.Fatalf("hits = %d, want 1", v)
	}
}

// TestPrecomputeCorrelatedAndSerialBypassPool: the unpoolable datapaths
// must serve exactly as before, never touching the engine.
func TestPrecomputeCorrelatedAndSerialBypassPool(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	o := obs.New(4)
	srv, _, _ := precomputeTestServer(t, cfg, o, 1)
	x := []int64{5, -3, 2}
	y := []int64{-1, 4, 7}
	want := []int64{5*-1 + -3*4 + 2*7}

	if out := serveOnce(t, srv, Request{Matrix: [][]int64{x}, OT: OTCorrelated}, y); out[0] != want[0] {
		t.Fatalf("correlated result %v, want %v", out, want)
	}
	if out := serveOnce(t, srv, Request{Matrix: [][]int64{x}, Mode: ModeSerial}, y); out[0] != want[0] {
		t.Fatalf("serial result %v, want %v", out, want)
	}
	// Neither path may have consulted the pool.
	var sb bytes.Buffer
	if err := o.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sb.Bytes(), []byte("precompute_hits_total")) || bytes.Contains(sb.Bytes(), []byte("precompute_misses_total")) {
		t.Fatalf("correlated/serial serving touched the precompute pool:\n%s", sb.String())
	}
}

// waitForDepth polls the engine until the shape's pool holds at least n
// entries.
func waitForDepth(t *testing.T, eng *precompute.Engine, s precompute.Shape, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for eng.Depth(s) < n {
		if time.Now().After(deadline) {
			t.Fatalf("pool for %s never reached depth %d", s, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPrecomputeMultiplexedSession: pool hits across a multiplexed
// session — every request consumes its own entry (fresh labels per
// request), and a drained pool degrades to inline misses mid-session.
func TestPrecomputeMultiplexedSession(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	o := obs.New(4)
	srv, eng, shape := precomputeTestServer(t, cfg, o, 2)
	if err := eng.Prefill(shape, 2); err != nil {
		t.Fatal(err)
	}
	A := [][]int64{{1, -2, 3}, {4, 5, -6}}
	y := []int64{7, -8, 9}
	want := []int64{1*7 + -2*-8 + 3*9, 4*7 + 5*-8 + -6*9}

	ca, cb := wire.Pipe()
	defer ca.Close()
	defer cb.Close()
	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, err := srv.NewSession(ca, SessionConfig{})
		if err != nil {
			srvErr = err
			return
		}
		defer sess.Close()
		for {
			if _, err := sess.Serve(Request{Matrix: A}); err != nil {
				if !errors.Is(err, ErrSessionEnded) {
					srvErr = err
				}
				return
			}
		}
	}()
	cli, err := NewClient(label.MustSystemDRBG())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cli.Dial(cb)
	if err != nil {
		t.Fatal(err)
	}
	const requests = 3 // 2 hits drain the pool, then 1 inline miss
	for r := 0; r < requests; r++ {
		out, err := cs.Do(y)
		if err != nil {
			t.Fatalf("request %d: %v", r, err)
		}
		if out[0] != want[0] || out[1] != want[1] {
			t.Fatalf("request %d: got %v, want %v", r, out, want)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	lbl := obs.L("shape", shape.String())
	if v := o.Metrics().Counter("precompute_hits_total", "", lbl).Value(); v != 2 {
		t.Fatalf("hits = %d, want 2", v)
	}
	if v := o.Metrics().Counter("precompute_misses_total", "", lbl).Value(); v != 1 {
		t.Fatalf("misses = %d, want 1", v)
	}
}
