package paper

import (
	"math"
	"testing"
)

// The recorded tables must be internally consistent — these tests pin
// the transcription of the paper against arithmetic identities the
// paper's own numbers satisfy.

func TestWidthsCovered(t *testing.T) {
	for _, row := range []Table2Row{TinyGarble, Overlay, MAXelerator} {
		for _, b := range Widths {
			if _, ok := row.CyclesPerMAC[b]; !ok {
				t.Fatalf("%s missing cycles at b=%d", row.Framework, b)
			}
			if _, ok := row.TimePerMAC[b]; !ok {
				t.Fatalf("%s missing time at b=%d", row.Framework, b)
			}
			if _, ok := row.ThroughputMACs[b]; !ok {
				t.Fatalf("%s missing throughput at b=%d", row.Framework, b)
			}
			if row.Cores[b] <= 0 {
				t.Fatalf("%s missing cores at b=%d", row.Framework, b)
			}
		}
	}
}

func TestThroughputIsInverseOfTime(t *testing.T) {
	for _, row := range []Table2Row{TinyGarble, Overlay, MAXelerator} {
		for _, b := range Widths {
			want := 1 / row.TimePerMAC[b].Seconds()
			got := row.ThroughputMACs[b]
			if math.Abs(got-want)/want > 0.01 {
				t.Fatalf("%s b=%d: throughput %.4g vs 1/time %.4g", row.Framework, b, got, want)
			}
		}
	}
}

func TestPerCoreIsThroughputOverCores(t *testing.T) {
	for _, row := range []Table2Row{TinyGarble, Overlay, MAXelerator} {
		for _, b := range Widths {
			want := row.ThroughputMACs[b] / float64(row.Cores[b])
			got := row.PerCoreMACs[b]
			if math.Abs(got-want)/want > 0.02 {
				t.Fatalf("%s b=%d: per-core %.4g vs derived %.4g", row.Framework, b, got, want)
			}
		}
	}
}

func TestMAXeleratorCyclesAt200MHz(t *testing.T) {
	// time = cycles / 200 MHz for the FPGA rows.
	for _, row := range []Table2Row{Overlay, MAXelerator} {
		for _, b := range Widths {
			want := row.CyclesPerMAC[b] / 200e6
			got := row.TimePerMAC[b].Seconds()
			if math.Abs(got-want)/want > 0.01 {
				t.Fatalf("%s b=%d: time %.4g s vs cycles/200MHz %.4g s", row.Framework, b, got, want)
			}
		}
	}
}

func TestSpeedupRowsMatchRatios(t *testing.T) {
	for _, b := range Widths {
		ratio := MAXelerator.PerCoreMACs[b] / TinyGarble.PerCoreMACs[b]
		if math.Abs(ratio-SpeedupPerCoreVsTinyGarble[b])/SpeedupPerCoreVsTinyGarble[b] > 0.02 {
			t.Fatalf("b=%d: TinyGarble speedup row %.1f vs derived %.1f", b, SpeedupPerCoreVsTinyGarble[b], ratio)
		}
		ratio = MAXelerator.PerCoreMACs[b] / Overlay.PerCoreMACs[b]
		if math.Abs(ratio-SpeedupPerCoreVsOverlay[b])/SpeedupPerCoreVsOverlay[b] > 0.03 {
			t.Fatalf("b=%d: overlay speedup row %.1f vs derived %.1f", b, SpeedupPerCoreVsOverlay[b], ratio)
		}
	}
}

func TestTable1MonotoneInWidth(t *testing.T) {
	prev := struct{ LUT, LUTRAM, FF float64 }{}
	for _, b := range Widths {
		row := Table1[b]
		if row.LUT <= prev.LUT || row.LUTRAM <= prev.LUTRAM || row.FF <= prev.FF {
			t.Fatalf("Table 1 not monotone at b=%d", b)
		}
		prev = row
	}
}

func TestTable3ImprovementsConsistent(t *testing.T) {
	for _, ds := range Table3 {
		// The printed "Time (s) (Ours)" column is rounded to one
		// decimal, so the ratio check needs slack (forestFires:
		// 46/1.8 = 25.6 vs the printed 24.5×).
		derived := ds.BaselineSeconds / ds.OursSeconds
		if math.Abs(derived-ds.Improvement)/ds.Improvement > 0.08 {
			t.Fatalf("%s: improvement %.1f vs baseline/ours %.1f", ds.Name, ds.Improvement, derived)
		}
		if ds.N <= 0 || ds.D <= 0 {
			t.Fatalf("%s: missing shape", ds.Name)
		}
	}
}

func TestTable3SortedByImprovement(t *testing.T) {
	for i := 1; i < len(Table3); i++ {
		if Table3[i].Improvement > Table3[i-1].Improvement {
			t.Fatal("Table 3 rows not in the paper's descending order")
		}
	}
}

func TestCaseStudyConstants(t *testing.T) {
	if Recommendation.BaselineHoursPerIter != 2.9 || Recommendation.AcceleratedHoursPerIter != 1.0 {
		t.Fatal("recommendation constants wrong")
	}
	if Portfolio.Rounds != 252 || Portfolio.Size != 2 {
		t.Fatal("portfolio workload wrong")
	}
	if CaseStudyCores != 24 {
		t.Fatal("case study core count wrong")
	}
}
