package bristol

import (
	"bytes"
	"strings"
	"testing"

	"maxelerator/internal/circuit"
)

// FuzzUnmarshal exercises the parser against malformed and adversarial
// inputs: it must never panic, and anything it accepts must be a valid
// circuit that re-serialises.
func FuzzUnmarshal(f *testing.F) {
	f.Add("7 10\n2 2 1\n1 2\n\n2 1 0 2 3 XOR\n2 1 1 2 4 XOR\n2 1 3 4 5 AND\n2 1 5 2 6 XOR\n2 1 0 4 7 XOR\n1 1 7 8 EQW\n1 1 6 9 EQW\n")
	f.Add("1 4\n1 2\n1 1\n\n2 1 0 1 3 AND\n")
	f.Add("0 2\n1 2\n1 2\n\n")
	f.Add("1 3\n1 1\n1 1\n\n1 1 1 2 EQ\n")
	f.Add("x")
	f.Add("1 4\n1 2\n1 1\n\n2 1 0 1 3 NAND\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Unmarshal(strings.NewReader(src))
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted invalid circuit: %v", verr)
		}
		var buf bytes.Buffer
		if err := Marshal(&buf, c); err != nil {
			t.Fatalf("accepted circuit failed to re-serialise: %v", err)
		}
		back, err := Unmarshal(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if back.NGarbler != c.NGarbler || back.NEvaluator != c.NEvaluator || len(back.Outputs) != len(c.Outputs) {
			t.Fatal("round trip changed the interface")
		}
	})
}

// FuzzRoundTripEval generates small random circuits from the fuzz
// corpus bytes and checks Marshal→Unmarshal preserves semantics.
func FuzzRoundTripEval(f *testing.F) {
	f.Add([]byte{3, 2, 1, 0, 5, 9, 2, 2, 7}, uint8(3))
	f.Fuzz(func(t *testing.T, ops []byte, inputs uint8) {
		ng := int(inputs%4) + 1
		ne := int(inputs/4%4) + 1
		b := circuit.NewBuilder()
		g := b.GarblerInputs(ng)
		e := b.EvaluatorInputs(ne)
		wires := append(append(circuit.Word{}, g...), e...)
		for i := 0; i+2 < len(ops) && i < 60; i += 3 {
			a := wires[int(ops[i])%len(wires)]
			c := wires[int(ops[i+1])%len(wires)]
			if ops[i+2]%2 == 0 {
				wires = append(wires, b.XOR(a, c))
			} else {
				wires = append(wires, b.AND(a, c))
			}
		}
		b.Outputs(wires[len(wires)-1])
		c := b.MustBuild()

		var buf bytes.Buffer
		if err := Marshal(&buf, c); err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Compare on a handful of deterministic input patterns.
		for pattern := 0; pattern < 4; pattern++ {
			gBits := make([]bool, ng)
			eBits := make([]bool, ne)
			for i := range gBits {
				gBits[i] = (pattern+i)%2 == 0
			}
			for i := range eBits {
				eBits[i] = (pattern+i)%3 == 0
			}
			w1, err := c.Eval(gBits, eBits)
			if err != nil {
				t.Fatal(err)
			}
			w2, err := back.Eval(gBits, eBits)
			if err != nil {
				t.Fatal(err)
			}
			if w1[0] != w2[0] {
				t.Fatal("round trip changed semantics")
			}
		}
	})
}
