package retry

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"os"
	"syscall"
	"testing"
	"time"

	"maxelerator/internal/obs"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"version mismatch", fmt.Errorf("x: %w", protocol.ErrVersionMismatch), false},
		{"session closed", protocol.ErrSessionClosed, false},
		{"busy", &protocol.BusyError{RetryAfter: time.Second}, true},
		{"phase timeout", fmt.Errorf("x: %w", protocol.ErrPhaseTimeout), true},
		{"internal", fmt.Errorf("x: %w", protocol.ErrInternal), true},
		{"eof", io.EOF, true},
		{"wire closed", fmt.Errorf("x: %w", wire.ErrClosed), true},
		{"refused", fmt.Errorf("dial: %w", syscall.ECONNREFUSED), true},
		{"deadline", fmt.Errorf("x: %w", os.ErrDeadlineExceeded), true},
		{"unknown", errors.New("garbling scheme exploded"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestReasonBuckets(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "none"},
		{&protocol.BusyError{}, "busy"},
		{fmt.Errorf("x: %w", protocol.ErrInternal), "internal"},
		{fmt.Errorf("x: %w", protocol.ErrPhaseTimeout), "timeout"},
		{os.ErrDeadlineExceeded, "timeout"},
		{io.EOF, "disconnect"},
		{errors.New("weird"), "other"},
	}
	for _, tc := range cases {
		if got := Reason(tc.err); got != tc.want {
			t.Errorf("Reason(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.MaxAttempts != 4 {
		t.Errorf("MaxAttempts = %d, want 4", p.MaxAttempts)
	}
	if p.BaseBackoff != 100*time.Millisecond {
		t.Errorf("BaseBackoff = %v", p.BaseBackoff)
	}
	if p.MaxBackoff != 5*time.Second {
		t.Errorf("MaxBackoff = %v", p.MaxBackoff)
	}
	if p.Classify == nil || p.Sleep == nil {
		t.Error("Classify/Sleep not defaulted")
	}
}

func TestBackoffBounds(t *testing.T) {
	p := Policy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}.withDefaults()
	p.Rand = mrand.New(mrand.NewSource(7))
	for failures := 1; failures <= 10; failures++ {
		ceil := 100 * time.Millisecond << uint(failures-1)
		if ceil > time.Second {
			ceil = time.Second
		}
		for i := 0; i < 50; i++ {
			d := p.backoff(failures, io.EOF)
			if d < 0 || d >= ceil {
				t.Fatalf("backoff(%d) = %v, want in [0, %v)", failures, d, ceil)
			}
		}
	}
}

func TestBackoffBusyFloor(t *testing.T) {
	p := Policy{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}.withDefaults()
	p.Rand = mrand.New(mrand.NewSource(1))
	busy := &protocol.BusyError{RetryAfter: 3 * time.Second}
	if d := p.backoff(1, busy); d < 3*time.Second {
		t.Fatalf("backoff under a BUSY hint = %v, want >= %v (the server's floor)", d, busy.RetryAfter)
	}
}

func TestNewReDialerValidates(t *testing.T) {
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReDialer(nil, func() (wire.Conn, error) { return nil, nil }, Policy{}); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := NewReDialer(cli, nil, Policy{}); err == nil {
		t.Error("nil connect accepted")
	}
}

// TestDoConnectRetryExhausted: a connect that always fails with a
// transient error burns the whole attempt budget, sleeps between
// attempts, and counts every failed attempt under its reason label.
func TestDoConnectRetryExhausted(t *testing.T) {
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	dials := 0
	var sleeps []time.Duration
	p := Policy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
		Rand:        mrand.New(mrand.NewSource(1)),
	}
	rd, err := NewReDialer(cli, func() (wire.Conn, error) {
		dials++
		return nil, fmt.Errorf("dial: %w", syscall.ECONNREFUSED)
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rd.WithObs(reg)

	_, derr := rd.Do([]int64{1})
	if derr == nil {
		t.Fatal("Do succeeded with a dead connect")
	}
	if !errors.Is(derr, syscall.ECONNREFUSED) {
		t.Errorf("Do error = %v, want ECONNREFUSED in the chain", derr)
	}
	if dials != 3 {
		t.Errorf("connect called %d times, want 3", dials)
	}
	if len(sleeps) != 2 {
		t.Errorf("slept %d times between 3 attempts, want 2", len(sleeps))
	}
	if got := reg.Counter("retry_attempts_total", "", obs.L("reason", "disconnect")).Value(); got != 3 {
		t.Errorf("retry_attempts_total{disconnect} = %d, want 3", got)
	}
	if got := reg.Counter("reconnects_total", "").Value(); got != 0 {
		t.Errorf("reconnects_total = %d with no session ever established, want 0", got)
	}
}

// TestDoFatalErrorImmediate: an unclassified connect error is returned
// unchanged on the first attempt — no retries, no sleeps, no counts.
func TestDoFatalErrorImmediate(t *testing.T) {
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("certificate pinning failure")
	dials := 0
	var sleeps int
	rd, err := NewReDialer(cli, func() (wire.Conn, error) {
		dials++
		return nil, boom
	}, Policy{Sleep: func(time.Duration) { sleeps++ }})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rd.WithObs(reg)

	_, derr := rd.Do([]int64{1})
	if !errors.Is(derr, boom) {
		t.Fatalf("Do error = %v, want the fatal connect error", derr)
	}
	if dials != 1 || sleeps != 0 {
		t.Errorf("fatal error retried: %d dials, %d sleeps", dials, sleeps)
	}
	if got := reg.Counter("retry_attempts_total", "", obs.L("reason", "other")).Value(); got != 0 {
		t.Errorf("retry_attempts_total = %d for a fatal error, want 0", got)
	}
}

func TestDoAfterCloseReturnsSessionClosed(t *testing.T) {
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewReDialer(cli, func() (wire.Conn, error) {
		t.Fatal("connect called after Close")
		return nil, nil
	}, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err != nil {
		t.Fatalf("second Close = %v, want idempotent nil", err)
	}
	if _, err := rd.Do([]int64{1}); !errors.Is(err, protocol.ErrSessionClosed) {
		t.Fatalf("Do after Close = %v, want ErrSessionClosed", err)
	}
}
