package ot

import (
	"bytes"
	"crypto/rand"
	mrand "math/rand"
	"sync"
	"testing"

	"maxelerator/internal/label"
	"maxelerator/internal/wire"
)

func randomPairs(t *testing.T, n int) [][2]Message {
	t.Helper()
	pairs := make([][2]Message, n)
	for i := range pairs {
		if _, err := rand.Read(pairs[i][0][:]); err != nil {
			t.Fatal(err)
		}
		if _, err := rand.Read(pairs[i][1][:]); err != nil {
			t.Fatal(err)
		}
	}
	return pairs
}

func randomChoices(rng *mrand.Rand, n int) []bool {
	c := make([]bool, n)
	for i := range c {
		c[i] = rng.Intn(2) == 1
	}
	return c
}

func runBaseOT(t *testing.T, pairs [][2]Message, choices []bool) ([]Message, error) {
	t.Helper()
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- BaseSend(a, rand.Reader, pairs) }()
	got, err := BaseReceive(b, rand.Reader, choices)
	if serr := <-errc; serr != nil {
		t.Fatal(serr)
	}
	return got, err
}

func TestBaseOTDeliversChosenMessage(t *testing.T) {
	rng := mrand.New(mrand.NewSource(1))
	pairs := randomPairs(t, 16)
	choices := randomChoices(rng, 16)
	got, err := runBaseOT(t, pairs, choices)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range choices {
		want := pairs[i][0]
		if c {
			want = pairs[i][1]
		}
		if got[i] != want {
			t.Fatalf("transfer %d (choice %v): wrong message", i, c)
		}
		other := pairs[i][1]
		if c {
			other = pairs[i][0]
		}
		if got[i] == other {
			t.Fatalf("transfer %d: received the unchosen message", i)
		}
	}
}

func TestBaseOTAllZeroAndAllOneChoices(t *testing.T) {
	pairs := randomPairs(t, 8)
	for _, c := range []bool{false, true} {
		choices := make([]bool, 8)
		for i := range choices {
			choices[i] = c
		}
		got, err := runBaseOT(t, pairs, choices)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			idx := 0
			if c {
				idx = 1
			}
			if got[i] != pairs[i][idx] {
				t.Fatalf("uniform choice %v transfer %d wrong", c, i)
			}
		}
	}
}

func TestBaseOTEmptyBatch(t *testing.T) {
	got, err := runBaseOT(t, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty batch returned %d messages", len(got))
	}
}

func TestGroupElementValidation(t *testing.T) {
	if _, err := unmarshalElement(make([]byte, 3)); err == nil {
		t.Fatal("short element accepted")
	}
	zero := make([]byte, elementLen)
	if _, err := unmarshalElement(zero); err == nil {
		t.Fatal("zero element accepted")
	}
	one := make([]byte, elementLen)
	one[elementLen-1] = 1
	if _, err := unmarshalElement(one); err == nil {
		t.Fatal("identity element accepted")
	}
	pBytes := marshalElement(modpGroup.p)
	if _, err := unmarshalElement(pBytes); err == nil {
		t.Fatal("p itself accepted")
	}
	g := marshalElement(modpGroup.g)
	if _, err := unmarshalElement(g); err != nil {
		t.Fatalf("generator rejected: %v", err)
	}
}

// extSession builds a connected extension sender/receiver pair.
func extSession(t *testing.T) (*ExtensionSender, *ExtensionReceiver, func()) {
	t.Helper()
	a, b := wire.Pipe()
	var es *ExtensionSender
	var esErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		es, esErr = NewExtensionSender(a, rand.Reader)
	}()
	er, err := NewExtensionReceiver(b, rand.Reader)
	wg.Wait()
	if esErr != nil {
		t.Fatal(esErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return es, er, func() { a.Close(); b.Close() }
}

func TestExtensionSingleBatch(t *testing.T) {
	es, er, closeFn := extSession(t)
	defer closeFn()
	rng := mrand.New(mrand.NewSource(2))
	const m = 300 // deliberately not a multiple of 8
	pairs := randomPairs(t, m)
	choices := randomChoices(rng, m)
	var sendErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sendErr = es.Send(pairs)
	}()
	got, err := er.Receive(choices)
	wg.Wait()
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range choices {
		want := pairs[i][0]
		if c {
			want = pairs[i][1]
		}
		if got[i] != want {
			t.Fatalf("extension transfer %d (choice %v) wrong", i, c)
		}
	}
}

func TestExtensionMultipleBatches(t *testing.T) {
	// Sequential GC performs OT every round (§3); the session must
	// stay consistent across batches of different sizes.
	es, er, closeFn := extSession(t)
	defer closeFn()
	rng := mrand.New(mrand.NewSource(3))
	for _, m := range []int{1, 7, 64, 129} {
		pairs := randomPairs(t, m)
		choices := randomChoices(rng, m)
		var sendErr error
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			sendErr = es.Send(pairs)
		}()
		got, err := er.Receive(choices)
		wg.Wait()
		if sendErr != nil {
			t.Fatal(sendErr)
		}
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range choices {
			want := pairs[i][0]
			if c {
				want = pairs[i][1]
			}
			if got[i] != want {
				t.Fatalf("batch size %d transfer %d wrong", m, i)
			}
		}
	}
}

func TestExtensionEmptyBatch(t *testing.T) {
	es, er, closeFn := extSession(t)
	defer closeFn()
	if err := es.Send(nil); err != nil {
		t.Fatal(err)
	}
	got, err := er.Receive(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty batch returned messages")
	}
}

func TestExtensionLabelTransfer(t *testing.T) {
	es, er, closeFn := extSession(t)
	defer closeFn()
	d := label.MustNewDelta()
	const m = 32
	pairs := make([]label.Pair, m)
	for i := range pairs {
		pairs[i] = label.NewPair(label.MustRandom(), d)
	}
	rng := mrand.New(mrand.NewSource(4))
	choices := randomChoices(rng, m)
	var sendErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sendErr = SendLabels(es, pairs)
	}()
	got, err := ReceiveLabels(er, choices)
	wg.Wait()
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range choices {
		if got[i] != pairs[i].Get(c) {
			t.Fatalf("label transfer %d wrong", i)
		}
	}
}

func TestExtensionCommunicationIsSymmetricAfterBase(t *testing.T) {
	// After the base phase, per-transfer communication must be
	// O(κ + 2·16) bytes, with no public-key operations: check that two
	// same-size batches move identical byte counts.
	a, b := wire.Pipe()
	ca, cb := wire.NewCounting(a), wire.NewCounting(b)
	var es *ExtensionSender
	var esErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		es, esErr = NewExtensionSender(ca, rand.Reader)
	}()
	er, err := NewExtensionReceiver(cb, rand.Reader)
	wg.Wait()
	if esErr != nil || err != nil {
		t.Fatal(esErr, err)
	}
	defer a.Close()
	defer b.Close()

	measure := func() int64 {
		s0, r0, _, _ := ca.Totals()
		pairs := randomPairs(t, 64)
		choices := make([]bool, 64)
		wg.Add(1)
		go func() {
			defer wg.Done()
			esErr = es.Send(pairs)
		}()
		if _, err := er.Receive(choices); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if esErr != nil {
			t.Fatal(esErr)
		}
		s1, r1, _, _ := ca.Totals()
		return (s1 - s0) + (r1 - r0)
	}
	first := measure()
	second := measure()
	if first != second {
		t.Fatalf("batch traffic varies: %d vs %d bytes", first, second)
	}
	if first <= 0 || first > 1<<20 {
		t.Fatalf("implausible batch traffic %d bytes", first)
	}
}

func TestPRGStreamsDiverge(t *testing.T) {
	var s1, s2 Message
	s2[0] = 1
	p1, err := prgStream(s1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := prgStream(s2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(nextPad(p1, 32), nextPad(p2, 32)) {
		t.Fatal("different seeds produced identical pads")
	}
}

func TestRowHashDomainSeparation(t *testing.T) {
	var row Message
	if rowHash(1, row) == rowHash(2, row) {
		t.Fatal("row hash ignores index")
	}
	var row2 Message
	row2[5] = 9
	if rowHash(1, row) == rowHash(1, row2) {
		t.Fatal("row hash ignores row")
	}
}

func TestCorrelatedTransferConsistency(t *testing.T) {
	es, er, closeFn := extSession(t)
	defer closeFn()
	d := label.MustNewDelta()
	rng := mrand.New(mrand.NewSource(5))
	const m = 100
	choices := randomChoices(rng, m)

	var false0 []label.Label
	var sendErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		false0, sendErr = es.SendCorrelatedLabels(m, d)
	}()
	got, err := er.ReceiveCorrelatedLabels(choices)
	wg.Wait()
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range choices {
		want := false0[i]
		if c {
			want = d.Flip(false0[i])
		}
		if got[i] != want {
			t.Fatalf("transfer %d (choice %v): wrong label", i, c)
		}
	}
	// Sender-chosen FALSE labels must be pairwise distinct.
	seen := make(map[label.Label]bool)
	for _, l := range false0 {
		if seen[l] {
			t.Fatal("correlated OT repeated a FALSE label")
		}
		seen[l] = true
	}
}

func TestCorrelatedEmptyBatch(t *testing.T) {
	es, er, closeFn := extSession(t)
	defer closeFn()
	d := label.MustNewDelta()
	if ls, err := es.SendCorrelatedLabels(0, d); err != nil || len(ls) != 0 {
		t.Fatalf("empty correlated send: %v %v", ls, err)
	}
	if ls, err := er.ReceiveCorrelatedLabels(nil); err != nil || len(ls) != 0 {
		t.Fatalf("empty correlated receive: %v %v", ls, err)
	}
}

func TestCorrelatedAndPlainBatchesInterleave(t *testing.T) {
	// A session must support mixing plain and correlated batches: the
	// column streams and indices stay in lockstep.
	es, er, closeFn := extSession(t)
	defer closeFn()
	d := label.MustNewDelta()
	rng := mrand.New(mrand.NewSource(6))

	// Plain batch first.
	pairs := randomPairs(t, 16)
	choices := randomChoices(rng, 16)
	var wg sync.WaitGroup
	var sendErr error
	wg.Add(1)
	go func() { defer wg.Done(); sendErr = es.Send(pairs) }()
	got, err := er.Receive(choices)
	wg.Wait()
	if sendErr != nil || err != nil {
		t.Fatal(sendErr, err)
	}
	for i, c := range choices {
		want := pairs[i][0]
		if c {
			want = pairs[i][1]
		}
		if got[i] != want {
			t.Fatalf("plain batch transfer %d wrong", i)
		}
	}

	// Correlated batch second.
	cChoices := randomChoices(rng, 24)
	var false0 []label.Label
	wg.Add(1)
	go func() { defer wg.Done(); false0, sendErr = es.SendCorrelatedLabels(24, d) }()
	gotL, err := er.ReceiveCorrelatedLabels(cChoices)
	wg.Wait()
	if sendErr != nil || err != nil {
		t.Fatal(sendErr, err)
	}
	for i, c := range cChoices {
		want := false0[i]
		if c {
			want = d.Flip(false0[i])
		}
		if gotL[i] != want {
			t.Fatalf("correlated batch transfer %d wrong", i)
		}
	}
}
