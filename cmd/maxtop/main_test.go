package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"maxelerator/internal/gateway"
)

// exposition is a canned maxd /metrics scrape (the shapes maxtop must
// understand: bare counters, labelled families, histogram series).
const exposition = `# HELP macs_total MAC rounds garbled
# TYPE macs_total counter
macs_total 1200
# TYPE sessions_total counter
sessions_total{kind="matvec"} 3
sessions_total{kind="serial"} 1
# TYPE session_errors_total counter
session_errors_total{kind="matvec"} 1
# TYPE sessions_active gauge
sessions_active 2
connections_total 5
tables_garbled_total 4800
table_bytes_total 307200
trace_cycles_total 1000
stall_cycles_total 250
peak_memory_bytes 8192
pcie_drained_bytes_total 307200
wire_bytes_in_total 2048
wire_bytes_out_total 1048576
# TYPE ot_setup_seconds histogram
ot_setup_seconds_bucket{le="0.01"} 2
ot_setup_seconds_bucket{le="+Inf"} 4
ot_setup_seconds_sum 0.02
ot_setup_seconds_count 4
session_seconds_sum{kind="matvec"} 1.5
session_seconds_count{kind="matvec"} 3
core_tables_total{core="0"} 100
core_tables_total{core="1"} 90
core_tables_total{core="10"} 80
core_idle_slots_total{core="0"} 7
# TYPE precompute_hits_total counter
precompute_hits_total{shape="16x16/b16s/matvec/batched"} 9
precompute_misses_total{shape="16x16/b16s/matvec/batched"} 1
precompute_misses_total{shape="4x8/b16s/matvec/per-round"} 2
precompute_pool_depth{shape="16x16/b16s/matvec/batched"} 3
precompute_shapes 2
precompute_evictions_total 1
# TYPE runtime_goroutines gauge
runtime_goroutines 12
runtime_heap_inuse_bytes 3145728
runtime_heap_idle_bytes 1048576
runtime_gc_cycles_total 4
# TYPE runtime_gc_pause_seconds histogram
runtime_gc_pause_seconds_bucket{le="0.0001"} 8
runtime_gc_pause_seconds_bucket{le="0.001"} 10
runtime_gc_pause_seconds_bucket{le="+Inf"} 10
runtime_gc_pause_seconds_sum 0.0008
runtime_gc_pause_seconds_count 10
`

func TestParseMetrics(t *testing.T) {
	snap, err := parseMetrics(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	if v := snap.val("macs_total"); v != 1200 {
		t.Fatalf("macs_total = %v", v)
	}
	if v := snap.val("sessions_total", "kind", "serial"); v != 1 {
		t.Fatalf("serial sessions = %v", v)
	}
	if v := snap.val("ot_setup_seconds_bucket", "le", "+Inf"); v != 4 {
		t.Fatalf("+Inf bucket = %v", v)
	}
	if _, ok := snap.get("nonexistent"); ok {
		t.Fatal("phantom sample")
	}
	// Numeric core labels sort numerically: 0, 1, 10.
	cores := snap.sumBy("core_tables_total", "core")
	if len(cores) != 3 || cores[2].Label != "10" || cores[2].Value != 80 {
		t.Fatalf("cores = %+v", cores)
	}
}

func TestParseMetricsSkipsGarbage(t *testing.T) {
	snap, err := parseMetrics(strings.NewReader("not a metric\nx{ 1\nok_total 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v := snap.val("ok_total"); v != 7 {
		t.Fatalf("ok_total = %v (garbage lines must not abort the parse)", v)
	}
}

func TestSplitLabels(t *testing.T) {
	got := splitLabels(`a="x,y",b="z"`)
	if len(got) != 2 || got[0] != `a="x,y"` || got[1] != `b="z"` {
		t.Fatalf("splitLabels = %q", got)
	}
}

func TestRenderFrame(t *testing.T) {
	cur, err := parseMetrics(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	cur.when = time.Unix(1000, 0)
	var sb strings.Builder
	render(&sb, "http://x/metrics", nil, cur, nil)
	out := sb.String()
	for _, want := range []string{
		"sessions    total 4   active 2   errors 1   connections 5",
		"macs 1200",
		"table bytes 300.0 KiB",
		"stall 25.0%", // 250 / 1000 trace cycles
		"peak 8.0 KiB",
		"in 2.0 KiB   out 1.0 MiB",
		"ot_setup avg 5.00ms (n=4)",
		"session avg 500.00ms (n=3)",
		"precompute  hits 9   misses 3   hit ratio 75%   shapes 2   evictions 1",
		"runtime     goroutines 12   heap inuse 3.0 MiB   idle 1.0 MiB   gc cycles 4",
		"gc pause p99",
		"per-shape",
		"16x16/b16s/matvec/batched",
		"4x8/b16s/matvec/per-round",
		"per-core",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
	// The all-miss shape shows an empty depth and 0% hit ratio.
	if !strings.Contains(out, "0%") {
		t.Fatalf("per-shape hit ratio missing:\n%s", out)
	}
}

// TestRenderFrameWithoutPrecompute: a daemon running without
// -precompute (or without the runtime collector) must not grow
// phantom panels.
func TestRenderFrameWithoutPrecompute(t *testing.T) {
	cur, err := parseMetrics(strings.NewReader("macs_total 10\n"))
	if err != nil {
		t.Fatal(err)
	}
	cur.when = time.Unix(1000, 0)
	var sb strings.Builder
	render(&sb, "u", nil, cur, nil)
	if strings.Contains(sb.String(), "precompute") {
		t.Fatalf("precompute panel rendered with no precompute metrics:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "runtime") {
		t.Fatalf("runtime panel rendered with no runtime metrics:\n%s", sb.String())
	}
}

// TestHistQuantile pins the scraped-bucket quantile reconstruction the
// runtime panel's GC pause p99 uses.
func TestHistQuantile(t *testing.T) {
	snap, err := parseMetrics(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	// 8 of 10 samples under 0.1ms, all 10 under 1ms: p50 interpolates
	// inside the first bucket, p99 inside the second.
	p50, ok := histQuantile(snap, "runtime_gc_pause_seconds", 0.5)
	if !ok || p50 <= 0 || p50 > 0.0001 {
		t.Fatalf("p50 = %v, %v", p50, ok)
	}
	p99, ok := histQuantile(snap, "runtime_gc_pause_seconds", 0.99)
	if !ok || p99 <= 0.0001 || p99 > 0.001 {
		t.Fatalf("p99 = %v, %v", p99, ok)
	}
	if _, ok := histQuantile(snap, "absent_seconds", 0.5); ok {
		t.Fatal("absent histogram produced a quantile")
	}
	empty, err := parseMetrics(strings.NewReader("e_bucket{le=\"+Inf\"} 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := histQuantile(empty, "e", 0.5); ok {
		t.Fatal("empty histogram produced a quantile")
	}
	// All mass above the last finite bound: the reconstruction can only
	// clamp, which is a floor rather than an estimate — must report !ok.
	overflow, err := parseMetrics(strings.NewReader(
		"o_bucket{le=\"0.001\"} 0\no_bucket{le=\"+Inf\"} 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := histQuantile(overflow, "o", 0.99); ok {
		t.Fatalf("+Inf-winner histogram produced a quantile (%v)", v)
	}
}

// TestRenderRuntimePanelEmptyPauses: a daemon that has never GCed
// still renders the panel, with the pause quantile dashed out.
func TestRenderRuntimePanelEmptyPauses(t *testing.T) {
	cur, err := parseMetrics(strings.NewReader(
		"runtime_goroutines 5\nruntime_gc_pause_seconds_bucket{le=\"+Inf\"} 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	cur.when = time.Unix(1000, 0)
	var sb strings.Builder
	render(&sb, "u", nil, cur, nil)
	if !strings.Contains(sb.String(), "gc pause p99 —") {
		t.Fatalf("empty pause histogram not dashed:\n%s", sb.String())
	}
}

// TestRenderRuntimePanelOverflowPauses: every recorded pause landed in
// the +Inf bucket, so no finite p99 exists — the panel must dash the
// quantile rather than render the clamped finite bound as if it were a
// measured pause.
func TestRenderRuntimePanelOverflowPauses(t *testing.T) {
	cur, err := parseMetrics(strings.NewReader(
		"runtime_goroutines 5\n" +
			"runtime_gc_pause_seconds_bucket{le=\"0.0001\"} 0\n" +
			"runtime_gc_pause_seconds_bucket{le=\"+Inf\"} 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	cur.when = time.Unix(1000, 0)
	var sb strings.Builder
	render(&sb, "u", nil, cur, nil)
	if !strings.Contains(sb.String(), "gc pause p99 —") {
		t.Fatalf("+Inf-winner pause histogram not dashed:\n%s", sb.String())
	}
}

func TestRenderRates(t *testing.T) {
	prev, _ := parseMetrics(strings.NewReader("macs_total 1000\nwire_bytes_out_total 0\n"))
	cur, _ := parseMetrics(strings.NewReader("macs_total 1200\nwire_bytes_out_total 2048\n"))
	prev.when = time.Unix(1000, 0)
	cur.when = time.Unix(1002, 0)
	var sb strings.Builder
	render(&sb, "u", prev, cur, nil)
	out := sb.String()
	if !strings.Contains(out, "rate 100.0 MAC/s") {
		t.Fatalf("MAC rate missing:\n%s", out)
	}
	if !strings.Contains(out, "rate 1.0 KiB/s out") {
		t.Fatalf("wire rate missing:\n%s", out)
	}
}

func TestWatchAgainstFakeDaemon(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(exposition))
	}))
	defer srv.Close()
	var sb strings.Builder
	if err := watch(&sb, srv.URL, time.Millisecond, 2, false); err != nil {
		t.Fatal(err)
	}
	// Two frames, second with rates (zero delta → 0.0 MAC/s).
	if got := strings.Count(sb.String(), "maxtop —"); got != 2 {
		t.Fatalf("%d frames rendered", got)
	}
	if !strings.Contains(sb.String(), "rate 0.0 MAC/s") {
		t.Fatalf("second frame lacks rate:\n%s", sb.String())
	}
}

// gwExposition is a canned maxgw scrape: the fleet panel's families.
const gwExposition = `gw_backends_total 3
gw_backends_healthy 2
gw_sessions_active 1
gw_sessions_total{backend="10.0.0.1:7700"} 5
gw_sessions_total{backend="10.0.0.2:7700"} 2
gw_failovers_total{reason="busy"} 2
gw_failovers_total{reason="dial"} 1
gw_shed_total 1
gw_peeks_total{result="hint"} 6
gw_peeks_total{result="none"} 1
gw_peek_errors_total 0
gw_membership_changes_total{backend="10.0.0.3:7700",change="eject"} 1
`

func TestRenderFleetPanel(t *testing.T) {
	cur, err := parseMetrics(strings.NewReader(gwExposition))
	if err != nil {
		t.Fatal(err)
	}
	cur.when = time.Unix(1000, 0)
	fleet := []gateway.BackendStatus{
		{Addr: "10.0.0.1:7700", Healthy: true, Status: "ok", Active: 1, Sessions: 5,
			Shapes: []string{"4x4/b16s/matvec/per-round"}},
		{Addr: "10.0.0.2:7700", Healthy: true, Status: "ok", Sessions: 2},
		{Addr: "10.0.0.3:7700", Healthy: false, Status: "unreachable"},
	}
	var sb strings.Builder
	render(&sb, "u", nil, cur, fleet)
	out := sb.String()
	for _, want := range []string{
		"fleet       backends 2/3 healthy   active 1   failovers 3   shed 1 (busy 2, dial 1)",
		"routing     hinted 6   unhinted 1   peek errors 0   membership changes 1",
		"per-backend",
		"4x4/b16s/matvec/per-round",
		"unreachable (ejected)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet frame missing %q:\n%s", want, out)
		}
	}
}

// gwResilienceExposition extends the gateway scrape with the
// resilience families a post-breaker maxgw exports.
const gwResilienceExposition = gwExposition + `gw_retry_budget_tokens_milli 8500
gw_retry_budget_exhausted_total 2
gw_hint_misses_total{shape="9x9/b8s/matvec/per-round"} 4
gw_breaker_state{backend="10.0.0.3:7700"} 1
`

// TestRenderFleetPanelAggregates: the resilience columns and the
// summed fleet row. The aggregate latency is load-weighted: backend .1
// carries 3 of the 4 in-flight sessions at 10ms, backend .2 one at
// 50ms → (3·10+1·50)/4 = 20ms, not the 30ms plain mean.
func TestRenderFleetPanelAggregates(t *testing.T) {
	cur, err := parseMetrics(strings.NewReader(gwResilienceExposition))
	if err != nil {
		t.Fatal(err)
	}
	cur.when = time.Unix(1000, 0)
	fleet := []gateway.BackendStatus{
		{Addr: "10.0.0.1:7700", Healthy: true, Status: "ok", Breaker: "closed",
			Active: 3, LatencyEWMAMs: 10},
		{Addr: "10.0.0.2:7700", Healthy: true, Status: "ok", Breaker: "closed",
			Active: 1, LatencyEWMAMs: 50, Ejected: true},
		{Addr: "10.0.0.3:7700", Healthy: false, Status: "unreachable", Breaker: "open"},
	}
	var sb strings.Builder
	render(&sb, "u", nil, cur, fleet)
	out := sb.String()
	for _, want := range []string{
		"budget 8.5 tokens (2 denied)",
		"hint misses 4",
		"breaker",
		"open",
		"50.0ms (slow)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet frame missing %q:\n%s", want, out)
		}
	}
	// The aggregate row: 2/3 up, 4 active, 7 sessions (5+2 scraped),
	// load-weighted 20ms.
	var all string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "ALL") {
			all = line
		}
	}
	if all == "" {
		t.Fatalf("aggregate ALL row missing:\n%s", out)
	}
	for _, want := range []string{"2/3 up", "4", "7", "20.0ms"} {
		if !strings.Contains(all, want) {
			t.Fatalf("aggregate row missing %q: %q", want, all)
		}
	}
}

// TestRenderFleetPanelOldGateway: a pre-resilience gateway (no budget
// or breaker families, no breaker fields on /fleetz) renders dashes,
// not zeros, and no budget figure.
func TestRenderFleetPanelOldGateway(t *testing.T) {
	cur, err := parseMetrics(strings.NewReader(gwExposition))
	if err != nil {
		t.Fatal(err)
	}
	cur.when = time.Unix(1000, 0)
	fleet := []gateway.BackendStatus{{Addr: "10.0.0.1:7700", Healthy: true, Status: "ok"}}
	var sb strings.Builder
	render(&sb, "u", nil, cur, fleet)
	if strings.Contains(sb.String(), "budget") {
		t.Fatalf("budget figure rendered without the metric:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "hint misses") {
		t.Fatalf("hint misses rendered without the metric:\n%s", sb.String())
	}
}

// TestRenderNoFleetPanel: a plain maxd scrape must not grow the fleet
// panel.
func TestRenderNoFleetPanel(t *testing.T) {
	cur, err := parseMetrics(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	cur.when = time.Unix(1000, 0)
	var sb strings.Builder
	render(&sb, "u", nil, cur, nil)
	if strings.Contains(sb.String(), "fleet") {
		t.Fatalf("fleet panel rendered from a maxd scrape:\n%s", sb.String())
	}
}

// TestWatchFetchesFleetz: a maxgw-shaped daemon gets its /fleetz
// scraped and the backend table rendered.
func TestWatchFetchesFleetz(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(gwExposition))
	})
	mux.HandleFunc("/fleetz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"backends":[{"addr":"10.0.0.1:7700","healthy":true,"status":"ok","sessions_total":5}]}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	var sb strings.Builder
	if err := watch(&sb, srv.URL+"/metrics", time.Millisecond, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "per-backend") {
		t.Fatalf("fleet table missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "10.0.0.1:7700") {
		t.Fatalf("backend row missing:\n%s", sb.String())
	}
}

func TestWatchScrapeError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	if err := watch(&strings.Builder{}, srv.URL, time.Millisecond, 1, false); err == nil {
		t.Fatal("unhealthy endpoint accepted")
	}
}
