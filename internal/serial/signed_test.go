package serial

import (
	"crypto/rand"
	mrand "math/rand"
	"testing"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
	"maxelerator/internal/seqgc"
)

func TestMACSignedValidation(t *testing.T) {
	for _, b := range []int{0, 2, 6, 10} {
		if _, _, err := MACSigned(b); err == nil {
			t.Fatalf("width %d accepted", b)
		}
	}
}

func TestSignedCostsOneExtraAND(t *testing.T) {
	// Baugh–Wooley sign support: two extra AND tables per stage over
	// the unsigned datapath (one correction adder, one carry gate) —
	// 2b+2 total versus the eight mux/negate slots the paper budgets.
	for _, b := range []int{4, 8, 16} {
		_, unsigned := MustMAC(b)
		_, signed := MustMACSigned(b)
		if signed.ANDsPerStage != unsigned.ANDsPerStage+2 {
			t.Fatalf("b=%d: signed %d ANDs vs unsigned %d", b, signed.ANDsPerStage, unsigned.ANDsPerStage)
		}
		if signed.ANDsPerStage != 2*b+2 {
			t.Fatalf("b=%d: signed ANDs/stage = %d, want %d", b, signed.ANDsPerStage, 2*b+2)
		}
	}
}

func TestSignedSingleMACExhaustive4(t *testing.T) {
	ckt, l := MustMACSigned(4)
	for x := int64(-8); x < 8; x++ {
		for a := int64(-8); a < 8; a++ {
			got, err := RunPlainSigned(ckt, l, []int64{x}, []int64{a})
			if err != nil {
				t.Fatal(err)
			}
			if got != x*a {
				t.Fatalf("signed serial 4-bit %d·%d = %d, want %d", x, a, got, x*a)
			}
		}
	}
}

func TestSignedSingleMACRandom8(t *testing.T) {
	ckt, l := MustMACSigned(8)
	rng := mrand.New(mrand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		x := int64(rng.Intn(256) - 128)
		a := int64(rng.Intn(256) - 128)
		got, err := RunPlainSigned(ckt, l, []int64{x}, []int64{a})
		if err != nil {
			t.Fatal(err)
		}
		if got != x*a {
			t.Fatalf("signed serial 8-bit %d·%d = %d, want %d", x, a, got, x*a)
		}
	}
}

func TestSignedEdgeOperands(t *testing.T) {
	ckt, l := MustMACSigned(8)
	for _, c := range [][2]int64{{-128, -128}, {-128, 127}, {127, -128}, {-1, -1}, {-1, 127}, {0, -128}, {127, 127}} {
		got, err := RunPlainSigned(ckt, l, []int64{c[0]}, []int64{c[1]})
		if err != nil {
			t.Fatal(err)
		}
		want := c[0] * c[1]
		// Accumulation is exact mod 2^{2b}; single products of 8-bit
		// operands always fit in 16 bits two's complement except
		// (-128)² = 16384 which fits too.
		if got != want {
			t.Fatalf("signed %d·%d = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestSignedAccumulationAcrossRounds(t *testing.T) {
	ckt, l := MustMACSigned(8)
	rng := mrand.New(mrand.NewSource(4))
	const rounds = 7
	xs := make([]int64, rounds)
	as := make([]int64, rounds)
	var want int64
	for i := range xs {
		xs[i] = int64(rng.Intn(256) - 128)
		as[i] = int64(rng.Intn(256) - 128)
		want += xs[i] * as[i]
	}
	got, err := RunPlainSigned(ckt, l, xs, as)
	if err != nil {
		t.Fatal(err)
	}
	mask := int64(1)<<16 - 1
	if got&mask != want&mask {
		t.Fatalf("signed dot product = %d, want %d (mod 2^16)", got, want)
	}
}

func TestSignedRunPlainValidation(t *testing.T) {
	ckt, l := MustMACSigned(4)
	if _, err := RunPlainSigned(ckt, l, []int64{1}, []int64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RunPlainSigned(ckt, l, []int64{8}, []int64{1}); err == nil {
		t.Fatal("out-of-range operand accepted")
	}
}

func TestSignedStageInputs(t *testing.T) {
	_, l := MustMACSigned(8)
	for n := 0; n < l.StagesPerMAC; n++ {
		isLast, vj, corr, notFirst := l.SignedStageInputs(n)
		if (isLast) != (n == 7) {
			t.Fatalf("stage %d isLast=%v", n, isLast)
		}
		if vj != (n >= 1 && n <= 7) {
			t.Fatalf("stage %d vj=%v", n, vj)
		}
		if corr != (n == 8 || n == 15) {
			t.Fatalf("stage %d corr=%v", n, corr)
		}
		if notFirst != (n != 0) {
			t.Fatalf("stage %d notFirst=%v", n, notFirst)
		}
	}
}

func TestGarbledSignedSerialMAC(t *testing.T) {
	// Full garbled run of the signed datapath: stage-by-stage
	// sequential GC with the flags as garbler inputs.
	ckt, l := MustMACSigned(4)
	p := gc.DefaultParams()
	gs, err := seqgc.NewGarblerSession(p, rand.Reader, ckt)
	if err != nil {
		t.Fatal(err)
	}
	es, err := seqgc.NewEvaluatorSession(p, ckt)
	if err != nil {
		t.Fatal(err)
	}
	xs := []int64{-3, 7}
	as := []int64{5, -6}
	want := int64(-3*5 + 7*-6)

	var lastRound []bool
	for r := range xs {
		xBits := circuit.Int64ToBits(xs[r], l.Width)
		lastRound = lastRound[:0]
		for n := 0; n < l.StagesPerMAC; n++ {
			isLast, vj, corr, notFirst := l.SignedStageInputs(n)
			g := append(append([]bool{}, xBits...), isLast, vj, corr, notFirst)
			gb, err := gs.NextRound(g)
			if err != nil {
				t.Fatal(err)
			}
			aBits := l.StageInputs(uint64(as[r])&(1<<uint(l.Width)-1), n)
			active := make([]label.Label, len(aBits))
			for i, v := range aBits {
				active[i] = gb.EvalPairs[i].Get(v)
			}
			res, err := es.NextRound(&gb.Material, active)
			if err != nil {
				t.Fatal(err)
			}
			lastRound = append(lastRound, res.Outputs[0])
		}
	}
	if got := circuit.BitsToInt64(lastRound[:2*l.Width]); got != want {
		t.Fatalf("garbled signed serial dot product = %d, want %d", got, want)
	}
}
