package gc

import (
	"crypto/rand"
	"testing"

	"maxelerator/internal/circuit"
	"maxelerator/internal/label"
)

// Statistical sanity checks on the garbled material the evaluator
// sees. These are not proofs — the constructions carry their own — but
// they catch implementation mistakes that leak structure: biased
// select bits, non-uniform ciphertext bytes, or correlations between
// a wire's label and its truth value.

func andCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder()
	x := b.GarblerInputs(1)
	y := b.EvaluatorInputs(1)
	b.Outputs(b.AND(x[0], y[0]))
	return b.MustBuild()
}

func TestSelectBitsOfActiveLabelsAreBalanced(t *testing.T) {
	// Over many garblings, the select bit of the garbler's active input
	// label must be ≈50/50 regardless of the plaintext value; a skew
	// would let the evaluator guess inputs from lsb(label).
	c := andCircuit(t)
	g, err := NewGarbler(DefaultParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 2000
	for _, input := range []bool{false, true} {
		ones := 0
		for i := 0; i < trials; i++ {
			gb, err := g.Garble(c, GarbleOptions{GarblerInputs: []bool{input}})
			if err != nil {
				t.Fatal(err)
			}
			if gb.Material.GarblerActive[0].LSB() {
				ones++
			}
		}
		// 6σ band for Binomial(2000, 0.5): 1000 ± 134.
		if ones < 866 || ones > 1134 {
			t.Fatalf("input=%v: %d/%d active labels had select bit 1", input, ones, trials)
		}
	}
}

func TestOutputPermuteBitsAreBalanced(t *testing.T) {
	c := andCircuit(t)
	g, err := NewGarbler(DefaultParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 2000
	ones := 0
	for i := 0; i < trials; i++ {
		gb, err := g.Garble(c, GarbleOptions{GarblerInputs: []bool{true}})
		if err != nil {
			t.Fatal(err)
		}
		if gb.Material.OutputPerm[0] {
			ones++
		}
	}
	if ones < 866 || ones > 1134 {
		t.Fatalf("%d/%d output permute bits set", ones, trials)
	}
}

func TestCiphertextBytesLookUniform(t *testing.T) {
	// Garbled-table bytes are AES outputs XOR-ed with labels; every
	// byte position must take many values over repeated garblings.
	c := andCircuit(t)
	g, err := NewGarbler(DefaultParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var seen [2][label.Size]map[byte]bool
	for r := range seen {
		for i := range seen[r] {
			seen[r][i] = make(map[byte]bool)
		}
	}
	for i := 0; i < 512; i++ {
		gb, err := g.Garble(c, GarbleOptions{GarblerInputs: []bool{i%2 == 0}})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 2; r++ {
			for j, by := range gb.Material.Tables[0][r] {
				seen[r][j][by] = true
			}
		}
	}
	for r := range seen {
		for j := range seen[r] {
			if len(seen[r][j]) < 64 {
				t.Fatalf("table row %d byte %d took only %d values over 512 garblings", r, j, len(seen[r][j]))
			}
		}
	}
}

func TestEvaluatorCannotDistinguishGarblerInputValue(t *testing.T) {
	// The material for input 0 and input 1 must be identically
	// structured: same sizes, same field shapes. (Indistinguishability
	// of the *contents* is the cipher's job; this guards the metadata.)
	c := andCircuit(t)
	g, err := NewGarbler(DefaultParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	gb0, err := g.Garble(c, GarbleOptions{GarblerInputs: []bool{false}})
	if err != nil {
		t.Fatal(err)
	}
	gb1, err := g.Garble(c, GarbleOptions{GarblerInputs: []bool{true}})
	if err != nil {
		t.Fatal(err)
	}
	if gb0.Material.CiphertextBytes() != gb1.Material.CiphertextBytes() {
		t.Fatal("material size depends on the garbler's input value")
	}
	if len(gb0.Material.GarblerActive) != len(gb1.Material.GarblerActive) {
		t.Fatal("label count depends on the garbler's input value")
	}
}

func TestWrongChoiceLabelYieldsGarbage(t *testing.T) {
	// An evaluator who somehow uses the label for the wrong input value
	// must still compute *some* label, but the result decodes to the
	// wrong-value output — there is no partial leak of both rows.
	c := andCircuit(t)
	p := DefaultParams()
	g, err := NewGarbler(p, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := g.Garble(c, GarbleOptions{GarblerInputs: []bool{true}})
	if err != nil {
		t.Fatal(err)
	}
	resTrue, err := Evaluate(p, c, &gb.Material, []label.Label{gb.EvalPairs[0].True}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resFalse, err := Evaluate(p, c, &gb.Material, []label.Label{gb.EvalPairs[0].False}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resTrue.Outputs[0] != true || resFalse.Outputs[0] != false {
		t.Fatalf("AND(1,·) decoded to %v/%v", resTrue.Outputs[0], resFalse.Outputs[0])
	}
	if resTrue.OutputLabels[0] == resFalse.OutputLabels[0] {
		t.Fatal("both input labels produced the same output label")
	}
}

func TestTweakReuseProducesIdenticalTables(t *testing.T) {
	// Documentation of *why* tweak discipline matters: garbling the
	// same wires under the same tweak yields identical ciphertexts, so
	// reuse across rounds would leak equality of label pairs. The
	// sequential sessions always advance tweaks; this test pins the
	// underlying behaviour the discipline protects against.
	h := DefaultParams().Hash
	d := label.MustNewDelta()
	a0 := label.MustRandom()
	b0 := label.MustRandom()
	_, t1 := HalfGates{}.GarbleAND(h, d, a0, b0, 42)
	_, t2 := HalfGates{}.GarbleAND(h, d, a0, b0, 42)
	if t1[0] != t2[0] || t1[1] != t2[1] {
		t.Fatal("same inputs and tweak produced different tables (non-determinism where none expected)")
	}
	_, t3 := HalfGates{}.GarbleAND(h, d, a0, b0, 44)
	if t1[0] == t3[0] {
		t.Fatal("different tweaks produced identical generator rows")
	}
}
