package circuit

import "fmt"

// This file holds the generators for the MAC unit — the paper's unit
// of computation — in the variants the evaluation exercises:
//
//   - MAC: the sequential signed multiply-accumulate garbled once per
//     matrix element (the outer loop of §4), with the accumulator held
//     in state wires exactly as TinyGarble holds DFF state.
//   - MACCombinational: a one-shot MAC with the accumulator exposed as
//     a third input word, used by unit tests and by the baseline
//     frameworks that re-garble a full netlist each round.
//   - DotProduct: a fully unrolled combinational dot product, the
//     worst-case netlist the paper's sequential approach avoids.

// MACConfig parameterises a MAC netlist.
type MACConfig struct {
	// Width is the operand bit-width b (8, 16 or 32 in the paper).
	Width int
	// AccWidth is the accumulator bit-width; it must be at least
	// 2*Width to hold a full product. The paper's 32-bit fixed point
	// case studies accumulate into 2b bits with the tree multiplier
	// producing the full product.
	AccWidth int
	// Signed selects the signed datapath of §4.3 (multiplexer +
	// 2's-complement conditioning at multiplier input and output).
	Signed bool
	// SerialMultiplier selects the TinyGarble-style serial multiplier
	// instead of the paper's tree multiplier. The netlists compute the
	// same function; only the dependency structure differs.
	SerialMultiplier bool
}

func (cfg MACConfig) validate() error {
	if cfg.Width <= 0 {
		return fmt.Errorf("circuit: MAC width %d must be positive", cfg.Width)
	}
	if cfg.AccWidth < 2*cfg.Width {
		return fmt.Errorf("circuit: accumulator width %d below full product width %d", cfg.AccWidth, 2*cfg.Width)
	}
	return nil
}

// mulAndExtend multiplies x by a and widens the product to the
// accumulator width according to the config's signedness.
func (cfg MACConfig) mulAndExtend(b *Builder, x, a Word) Word {
	var p Word
	switch {
	case cfg.Signed:
		p = b.MulTreeSigned(x, a)
	case cfg.SerialMultiplier:
		p = b.MulSerialUnsigned(x, a)
	default:
		p = b.MulTreeUnsigned(x, a)
	}
	if cfg.Signed {
		return b.SignExtend(p, cfg.AccWidth)
	}
	return b.ZeroExtend(p, cfg.AccWidth)
}

// MAC builds the sequential MAC unit: garbler input x (the model
// element), evaluator input a (the client element), and an AccWidth
// accumulator in state. Each round computes acc ← acc + x·a and
// outputs the new accumulator value.
func MAC(cfg MACConfig) (*Circuit, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := NewBuilder()
	x := b.GarblerInputs(cfg.Width)
	a := b.EvaluatorInputs(cfg.Width)
	acc := b.StateInputs(cfg.AccWidth)
	prod := cfg.mulAndExtend(b, x, a)
	next := b.Add(acc, prod)
	b.StateOuts(next...)
	b.OutputWord(next)
	return b.Build()
}

// MustMAC builds the sequential MAC and panics on configuration error.
func MustMAC(cfg MACConfig) *Circuit {
	c, err := MAC(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// MACCombinational builds a one-shot MAC with the accumulator supplied
// as an extra garbler input word: out = accIn + x·a.
func MACCombinational(cfg MACConfig) (*Circuit, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := NewBuilder()
	x := b.GarblerInputs(cfg.Width)
	accIn := b.GarblerInputs(cfg.AccWidth)
	a := b.EvaluatorInputs(cfg.Width)
	prod := cfg.mulAndExtend(b, x, a)
	out := b.Add(accIn, prod)
	b.OutputWord(out)
	return b.Build()
}

// DotProduct builds a fully unrolled combinational dot product of two
// n-element vectors of the given element width: the garbler holds one
// vector, the evaluator the other. It is the monolithic netlist whose
// size the sequential approach amortises away.
func DotProduct(cfg MACConfig, n int) (*Circuit, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("circuit: dot product length %d must be positive", n)
	}
	b := NewBuilder()
	xs := make([]Word, n)
	for i := range xs {
		xs[i] = b.GarblerInputs(cfg.Width)
	}
	as := make([]Word, n)
	for i := range as {
		as[i] = b.EvaluatorInputs(cfg.Width)
	}
	acc := b.ConstWord(0, cfg.AccWidth)
	for i := 0; i < n; i++ {
		acc = b.Add(acc, cfg.mulAndExtend(b, xs[i], as[i]))
	}
	b.OutputWord(acc)
	return b.Build()
}

// Uint64ToBits encodes the low width bits of v little-endian.
func Uint64ToBits(v uint64, width int) []bool {
	bits := make([]bool, width)
	for i := range bits {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}

// Int64ToBits encodes v as width-bit 2's complement, little-endian.
func Int64ToBits(v int64, width int) []bool {
	return Uint64ToBits(uint64(v), width)
}

// BitsToUint64 decodes up to 64 little-endian bits as unsigned.
func BitsToUint64(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b && i < 64 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// BitsToInt64 decodes little-endian bits as 2's complement.
func BitsToInt64(bits []bool) int64 {
	v := BitsToUint64(bits)
	if len(bits) < 64 && len(bits) > 0 && bits[len(bits)-1] {
		v |= ^uint64(0) << uint(len(bits))
	}
	return int64(v)
}
