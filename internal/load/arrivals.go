// Package load is the open-loop traffic generator of the capacity
// toolchain: seeded arrival processes (Poisson, uniform, burst) over a
// weighted shape mix, driven against a real maxd or maxgw fleet by the
// generator in load.go, and — critically — precomputed as an explicit
// arrival schedule that the capacity simulator (internal/capmodel)
// replays verbatim. Generator and simulator seeing the *same* arrival
// instants and shape choices is what makes their reports comparable:
// any disagreement is model error, never schedule noise.
package load

import (
	"fmt"
	"math/rand"
)

// ShapeWeight is one entry of the scenario's shape mix: a request
// shape plus its relative weight in the traffic.
type ShapeWeight struct {
	// Rows, Cols, Width shape the request (and the hint sent to a
	// shape-aware gateway).
	Rows  int `json:"rows"`
	Cols  int `json:"cols"`
	Width int `json:"width"`
	// OT is the per-request OT mode: "per-round" (default) or "batched".
	OT string `json:"ot,omitempty"`
	// Weight is the relative share of arrivals drawing this shape;
	// weights need not sum to 1.
	Weight float64 `json:"weight"`
}

// Key renders the shape as the pool key used across reports and the
// simulator: "4x4/b=8/ot=per-round".
func (s ShapeWeight) Key() string {
	ot := s.OT
	if ot == "" {
		ot = "per-round"
	}
	return fmt.Sprintf("%dx%d/b=%d/ot=%s", s.Rows, s.Cols, s.Width, ot)
}

// Arrival processes.
const (
	// Poisson draws exponential inter-arrival gaps at the scenario
	// rate — the memoryless open-loop baseline.
	Poisson = "poisson"
	// Uniform spaces arrivals exactly 1/rate apart — a metronome, for
	// isolating queueing effects from arrival variance.
	Uniform = "uniform"
	// Burst releases BurstSize arrivals back-to-back every
	// BurstSize/rate seconds: same offered rate, maximally clumped —
	// the admission queue's worst case.
	Burst = "burst"
)

// Scenario describes one open-loop load run. The same value drives the
// live generator and the simulator.
type Scenario struct {
	// Rate is the offered arrival rate in sessions/second.
	Rate float64 `json:"rate"`
	// Process is the arrival process: Poisson, Uniform or Burst.
	Process string `json:"process"`
	// BurstSize is the clump size under Burst (default 8; ignored
	// otherwise).
	BurstSize int `json:"burst_size,omitempty"`
	// DurationSec is the arrival window in seconds; sessions started
	// inside the window are allowed to finish after it.
	DurationSec float64 `json:"duration_sec"`
	// Seed makes the schedule deterministic: same seed, same arrival
	// instants and shape draws.
	Seed int64 `json:"seed"`
	// MaxInflight caps concurrent sessions on the client side;
	// arrivals past the cap are counted skipped, never blocked on
	// (open-loop). 0 = unlimited.
	MaxInflight int `json:"max_inflight,omitempty"`
	// Shapes is the weighted shape mix; at least one entry.
	Shapes []ShapeWeight `json:"shapes"`
}

// Validate rejects scenarios the generator and simulator cannot agree
// on.
func (s Scenario) Validate() error {
	if s.Rate <= 0 {
		return fmt.Errorf("load: rate %v must be positive", s.Rate)
	}
	if s.DurationSec <= 0 {
		return fmt.Errorf("load: duration %vs must be positive", s.DurationSec)
	}
	switch s.Process {
	case Poisson, Uniform, Burst:
	case "":
		return fmt.Errorf("load: arrival process is required (poisson, uniform or burst)")
	default:
		return fmt.Errorf("load: unknown arrival process %q", s.Process)
	}
	if len(s.Shapes) == 0 {
		return fmt.Errorf("load: scenario needs at least one shape")
	}
	total := 0.0
	for i, sw := range s.Shapes {
		if sw.Rows <= 0 || sw.Cols <= 0 || sw.Width <= 0 {
			return fmt.Errorf("load: shape %d (%s) has a non-positive dimension", i, sw.Key())
		}
		if sw.Weight < 0 {
			return fmt.Errorf("load: shape %d (%s) has negative weight", i, sw.Key())
		}
		total += sw.Weight
	}
	if total <= 0 {
		return fmt.Errorf("load: shape weights sum to zero")
	}
	return nil
}

// Arrival is one scheduled session start.
type Arrival struct {
	// At is the arrival instant in seconds from the run start.
	At float64
	// Shape is the drawn request shape.
	Shape ShapeWeight
}

// ArrivalTimes expands the scenario into its full arrival schedule.
// Two independent seeded streams — one for inter-arrival gaps, one for
// shape draws — keep the shape sequence identical across arrival
// processes at the same seed.
func ArrivalTimes(s Scenario) ([]Arrival, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	gaps := rand.New(rand.NewSource(s.Seed))
	shapes := rand.New(rand.NewSource(s.Seed ^ 0x5d3c_9d1a_2b77_f0e1))
	burst := s.BurstSize
	if burst <= 0 {
		burst = 8
	}
	var out []Arrival
	t := 0.0
	emit := func(at float64) {
		out = append(out, Arrival{At: at, Shape: drawShape(shapes, s.Shapes)})
	}
	switch s.Process {
	case Poisson:
		for {
			t += gaps.ExpFloat64() / s.Rate
			if t >= s.DurationSec {
				break
			}
			emit(t)
		}
	case Uniform:
		gap := 1 / s.Rate
		for t = gap; t < s.DurationSec; t += gap {
			emit(t)
		}
	case Burst:
		period := float64(burst) / s.Rate
		for t = period; t < s.DurationSec; t += period {
			for k := 0; k < burst; k++ {
				emit(t)
			}
		}
	}
	return out, nil
}

// drawShape is a weighted pick over the mix.
func drawShape(rng *rand.Rand, mix []ShapeWeight) ShapeWeight {
	total := 0.0
	for _, sw := range mix {
		total += sw.Weight
	}
	u := rng.Float64() * total
	for _, sw := range mix {
		u -= sw.Weight
		if u < 0 {
			return sw
		}
	}
	return mix[len(mix)-1]
}
