package gateway

import (
	"fmt"
	"testing"
)

// TestRingDistributionBalance pins the load-spreading property the
// vnode count was chosen for: hashing many distinct shape keys onto
// fleets of 3, 5 and 8 backends lands every backend within a factor of
// two of its fair share.
func TestRingDistributionBalance(t *testing.T) {
	const keys = 10000
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("%d-backends", n), func(t *testing.T) {
			r := NewRing(0)
			for i := 0; i < n; i++ {
				r.Add(fmt.Sprintf("backend-%d", i))
			}
			counts := make(map[string]int, n)
			for i := 0; i < keys; i++ {
				got := r.Lookup(fmt.Sprintf("%dx%d/b8s/matvec/per-round", i%97+1, i), 1)
				if len(got) != 1 {
					t.Fatalf("Lookup returned %d members", len(got))
				}
				counts[got[0]]++
			}
			fair := keys / n
			for b, c := range counts {
				if c < fair/2 || c > fair*2 {
					t.Fatalf("%s holds %d of %d keys (fair share %d): ring unbalanced %v", b, c, keys, fair, counts)
				}
			}
			if len(counts) != n {
				t.Fatalf("only %d of %d backends received keys: %v", len(counts), n, counts)
			}
		})
	}
}

// TestRingLookupOrderedDistinct pins the failover-candidate contract:
// Lookup(key, 0) walks every member exactly once, and a shorter lookup
// is a strict prefix of the full walk — so "try the next replica"
// agrees between callers asking for different counts.
func TestRingLookupOrderedDistinct(t *testing.T) {
	r := NewRing(0)
	members := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	for _, m := range members {
		r.Add(m)
	}
	full := r.Lookup("2x3/b8s/matvec/batched", 0)
	if len(full) != len(members) {
		t.Fatalf("full lookup returned %d members, want %d", len(full), len(members))
	}
	seen := map[string]bool{}
	for _, m := range full {
		if seen[m] {
			t.Fatalf("duplicate member %s in %v", m, full)
		}
		seen[m] = true
	}
	for n := 1; n < len(members); n++ {
		got := r.Lookup("2x3/b8s/matvec/batched", n)
		if len(got) != n {
			t.Fatalf("Lookup(n=%d) returned %d members", n, len(got))
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("Lookup(n=%d) = %v is not a prefix of %v", n, got, full)
			}
		}
	}
}

// TestRingDeterministicAcrossRebuilds pins the cross-process routing
// agreement: two independently built rings over the same members order
// every key identically (a restarted gateway must keep pinning shapes
// where the old one did).
func TestRingDeterministicAcrossRebuilds(t *testing.T) {
	build := func(order []string) *Ring {
		r := NewRing(0)
		for _, m := range order {
			r.Add(m)
		}
		return r
	}
	r1 := build([]string{"x:1", "y:2", "z:3"})
	r2 := build([]string{"z:3", "x:1", "y:2"}) // insertion order must not matter
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("%dx8/b16u/matvec/per-round", i+1)
		a, b := r1.Lookup(key, 0), r2.Lookup(key, 0)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("key %s: ring orders diverge: %v vs %v", key, a, b)
		}
	}
}

// TestRingRemovalOnlyRemapsOrphans pins the consistency property that
// justifies the ring at all: ejecting one member leaves every key it
// did not own on its original backend.
func TestRingRemovalOnlyRemapsOrphans(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"a:1", "b:2", "c:3", "d:4"} {
		r.Add(m)
	}
	before := map[string]string{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before[key] = r.Lookup(key, 1)[0]
	}
	r.Remove("b:2")
	for key, owner := range before {
		got := r.Lookup(key, 1)[0]
		if owner != "b:2" && got != owner {
			t.Fatalf("key %s moved %s -> %s though its owner stayed", key, owner, got)
		}
		if owner == "b:2" && got == "b:2" {
			t.Fatalf("key %s still routed to the removed member", key)
		}
	}
	// Readmission restores the original assignment exactly.
	r.Add("b:2")
	for key, owner := range before {
		if got := r.Lookup(key, 1)[0]; got != owner {
			t.Fatalf("key %s not restored after readmit: %s != %s", key, got, owner)
		}
	}
}
