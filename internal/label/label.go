// Package label implements the 128-bit wire labels that carry encrypted
// truth values through a garbled circuit, together with the free-XOR
// global offset Δ (Kolesnikov–Schneider) and the point-and-permute
// select bits (Beaver–Micali–Rogaway).
//
// Every wire w in a garbled circuit is assigned two labels: X⁰ encoding
// FALSE and X¹ encoding TRUE. Under the free-XOR convention the pair is
// correlated as X¹ = X⁰ ⊕ Δ where Δ is a garbler-global secret with its
// least significant bit forced to 1, so that the select (permute) bits
// of the two labels always differ and the evaluator can use lsb(X) as a
// row index without learning the truth value.
package label

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
)

// Size is the byte length of a wire label. The paper uses the standard
// security parameter k = 128 bits.
const Size = 16

// Bits is the bit length of a wire label.
const Bits = Size * 8

// Label is a k-bit wire label. The zero value is the all-zero label,
// which free-XOR garbling uses as the fixed FALSE constant.
type Label [Size]byte

// Zero is the all-zero label.
var Zero Label

// Xor returns l ⊕ m.
func (l Label) Xor(m Label) Label {
	var out Label
	for i := range l {
		out[i] = l[i] ^ m[i]
	}
	return out
}

// XorInto stores l ⊕ m into dst. It is the allocation-free form of Xor
// used on the garbling hot path.
func (l *Label) XorInto(m, dst *Label) {
	a := binary.LittleEndian.Uint64(l[0:8])
	b := binary.LittleEndian.Uint64(l[8:16])
	c := binary.LittleEndian.Uint64(m[0:8])
	d := binary.LittleEndian.Uint64(m[8:16])
	binary.LittleEndian.PutUint64(dst[0:8], a^c)
	binary.LittleEndian.PutUint64(dst[8:16], b^d)
}

// LSB reports the point-and-permute select bit of the label.
func (l Label) LSB() bool { return l[0]&1 == 1 }

// SelectBit returns the select bit as 0 or 1.
func (l Label) SelectBit() byte { return l[0] & 1 }

// IsZero reports whether the label is all zeros.
func (l Label) IsZero() bool { return l == Zero }

// Double returns the doubling 2·l of the label in GF(2^128) with the
// standard reduction polynomial x^128 + x^7 + x^2 + x + 1. Doubling is
// used by the fixed-key garbling hash of Bellare et al. to separate the
// two hash inputs of a half gate.
func (l Label) Double() Label {
	hi := binary.BigEndian.Uint64(l[0:8])
	lo := binary.BigEndian.Uint64(l[8:16])
	carry := hi >> 63
	hi = hi<<1 | lo>>63
	lo <<= 1
	if carry == 1 {
		lo ^= 0x87
	}
	var out Label
	binary.BigEndian.PutUint64(out[0:8], hi)
	binary.BigEndian.PutUint64(out[8:16], lo)
	return out
}

// Quadruple returns 4·l in GF(2^128).
func (l Label) Quadruple() Label { return l.Double().Double() }

// String renders the label as lowercase hex.
func (l Label) String() string { return hex.EncodeToString(l[:]) }

// Random draws a uniformly random label from r.
func Random(r io.Reader) (Label, error) {
	var l Label
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return Zero, fmt.Errorf("label: drawing random label: %w", err)
	}
	return l, nil
}

// MustRandom draws a uniformly random label from crypto/rand and panics
// on failure. It is intended for tests and examples.
func MustRandom() Label {
	l, err := Random(rand.Reader)
	if err != nil {
		panic(err)
	}
	return l
}

// Delta is the free-XOR global offset R∥1: a random k-bit value whose
// least significant bit is forced to 1 so that paired labels have
// complementary select bits.
type Delta struct {
	l Label
}

// NewDelta draws a fresh global offset from r.
func NewDelta(r io.Reader) (Delta, error) {
	l, err := Random(r)
	if err != nil {
		return Delta{}, err
	}
	l[0] |= 1
	return Delta{l: l}, nil
}

// MustNewDelta draws a fresh global offset from crypto/rand and panics
// on failure. It is intended for tests and examples.
func MustNewDelta() Delta {
	d, err := NewDelta(rand.Reader)
	if err != nil {
		panic(err)
	}
	return d
}

// DeltaFromLabel builds a Delta from an existing label, forcing the
// select bit to 1.
func DeltaFromLabel(l Label) Delta {
	l[0] |= 1
	return Delta{l: l}
}

// Label returns the raw offset value.
func (d Delta) Label() Label { return d.l }

// Flip returns l ⊕ Δ, i.e. the complementary label of the pair.
func (d Delta) Flip(l Label) Label { return l.Xor(d.l) }

// Pair bundles the two labels of one wire.
type Pair struct {
	// False is X⁰, the label encoding logical 0.
	False Label
	// True is X¹ = X⁰ ⊕ Δ, the label encoding logical 1.
	True Label
}

// NewPair derives the free-XOR-correlated pair from the FALSE label.
func NewPair(false0 Label, d Delta) Pair {
	return Pair{False: false0, True: d.Flip(false0)}
}

// RandomPair draws a fresh FALSE label from r and derives the pair.
func RandomPair(r io.Reader, d Delta) (Pair, error) {
	l, err := Random(r)
	if err != nil {
		return Pair{}, err
	}
	return NewPair(l, d), nil
}

// Get returns the label encoding the truth value v.
func (p Pair) Get(v bool) Label {
	if v {
		return p.True
	}
	return p.False
}

// Consistent reports whether the pair honours the free-XOR correlation
// under d.
func (p Pair) Consistent(d Delta) bool {
	return p.False.Xor(p.True) == d.Label()
}
