// Package obs is the repository's dependency-free observability layer:
// atomic metrics (counters, gauges, fixed-bucket histograms) with
// Prometheus text exposition, and span-based protocol-phase traces
// with monotonic timing.
//
// The package exists because the paper's headline claims are all
// quantitative — per-clock-cycle core utilization ("at most 2 idle
// cores", §4), 57× throughput per core (Table 2), and the closing §5.1
// caveat that the host link "may become the bottleneck" — and a
// long-running server needs those numbers continuously queryable, not
// reconstructed post-hoc from log lines.
//
// Every type is nil-safe: methods on a nil *Registry, *Counter,
// *Gauge, *Histogram, *Tracer, *SessionTrace or *Span are no-ops, so
// instrumented packages thread a possibly-nil registry through hot
// paths without guards.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" metric dimension (e.g. core="3").
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger (high-water marks like
// peak memory occupancy).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: counts per upper bound plus an implicit +Inf bucket, a sum,
// and a total count.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// DurationBuckets is the default bound set for protocol-phase
// latencies, spanning 100µs to 30s.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Find the first bound >= v; samples above every bound land only
	// in the implicit +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count is the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation within the winning bucket, the
// same estimate Prometheus's histogram_quantile computes server-side.
// Samples beyond the last finite bound live in the implicit +Inf
// bucket, so when the quantile lands there the estimate clamps to the
// highest finite bound. Returns 0 on an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	uppers := make([]float64, 0, len(h.bounds)+1)
	cum := make([]uint64, 0, len(h.bounds)+1)
	var run uint64
	for i, b := range h.bounds {
		run += h.buckets[i].Load()
		uppers = append(uppers, b)
		cum = append(cum, run)
	}
	uppers = append(uppers, math.Inf(1))
	cum = append(cum, h.Count())
	return BucketQuantile(uppers, cum, q)
}

// BucketQuantile estimates the q-th quantile from cumulative histogram
// buckets: uppers are ascending bucket upper bounds (the last may be
// +Inf), cum the cumulative sample counts per bound (Prometheus
// `le`-style, so cum[len-1] is the total). It is the shared math behind
// Histogram.Quantile and consumers of a scraped text exposition,
// interpolating linearly inside the winning bucket and clamping a +Inf
// winner to the highest finite bound.
func BucketQuantile(uppers []float64, cum []uint64, q float64) float64 {
	v, _ := BucketQuantileOK(uppers, cum, q)
	return v
}

// BucketQuantileOK is BucketQuantile with an honesty bit: ok is false
// when the buckets support no estimate at all — an empty histogram, or
// a quantile that lands in the +Inf bucket, where the returned clamp
// (the highest finite bound, 0 if there is none) is a floor rather
// than an estimate. Renderers that would otherwise print the clamp as
// if it were measured (maxtop's GC pause p99 once showed a fabricated
// finite pause this way) should show a dash when ok is false.
func BucketQuantileOK(uppers []float64, cum []uint64, q float64) (v float64, ok bool) {
	if len(uppers) == 0 || len(uppers) != len(cum) {
		return 0, false
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return 0, false
	}
	q = math.Max(0, math.Min(1, q))
	rank := q * float64(total)
	for i, ub := range uppers {
		if float64(cum[i]) < rank {
			continue
		}
		lower, prev := 0.0, uint64(0)
		if i > 0 {
			lower, prev = uppers[i-1], cum[i-1]
		}
		if math.IsInf(ub, 1) {
			// The quantile lives above every finite bound; the clamp is
			// the best floor the buckets support, but it is not an
			// estimate — report it as such.
			return lower, false
		}
		inBucket := cum[i] - prev
		if inBucket == 0 {
			return ub, true
		}
		return lower + (ub-lower)*(rank-float64(prev))/float64(inBucket), true
	}
	return uppers[len(uppers)-1], true
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labelled instance within a family.
type child struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every labelled instance of one metric name.
type family struct {
	name     string
	help     string
	kind     metricKind
	children map[string]*child
	order    []string // insertion order of label signatures
}

// Registry holds named metric families. The zero value is not usable;
// call NewRegistry. A nil *Registry is a universal no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('\x00')
		sb.WriteString(l.Value)
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// getOrCreate returns the family's child for the label set, creating
// family and child as needed. It panics if the name is reused with a
// different metric kind — that is a programming error, deterministic
// on first use.
func (r *Registry) getOrCreate(name, help string, kind metricKind, labels []Label, mk func() *child) *child {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q redeclared as %s (was %s)", name, kind, f.kind))
	}
	sig := labelSignature(labels)
	ch, ok := f.children[sig]
	if !ok {
		ch = mk()
		ch.labels = append([]Label(nil), labels...)
		f.children[sig] = ch
		f.order = append(f.order, sig)
	}
	return ch
}

// Counter returns (creating on first use) the counter with the given
// name and label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindCounter, labels, func() *child { return &child{c: &Counter{}} }).c
}

// Gauge returns (creating on first use) the gauge with the given name
// and label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindGauge, labels, func() *child { return &child{g: &Gauge{}} }).g
}

// PhaseTimeouts returns the counter of wire operations that exceeded
// their protocol-phase deadline, labelled by phase. It lives here so
// the protocol layer and the daemons register the family under one
// name and help string; like every metric, it is nil-safe.
func (r *Registry) PhaseTimeouts(phase string) *Counter {
	return r.Counter("phase_timeouts_total",
		"wire operations that exceeded their protocol-phase deadline",
		L("phase", phase))
}

// Histogram returns (creating on first use) the histogram with the
// given name, label set and bucket upper bounds. Bounds are fixed by
// the first call; nil bounds default to DurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	return r.getOrCreate(name, help, kindHistogram, labels, func() *child {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		return &child{h: &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b))}}
	}).h
}

func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, sig := range f.order {
			ch := f.children[sig]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, formatLabels(ch.labels), ch.c.Value())
			case kindGauge:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, formatLabels(ch.labels), ch.g.Value())
			case kindHistogram:
				h := ch.h
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.buckets[i].Load()
					fmt.Fprintf(&sb, "%s_bucket%s %d\n",
						f.name, formatLabels(ch.labels, L("le", formatFloat(bound))), cum)
				}
				fmt.Fprintf(&sb, "%s_bucket%s %d\n",
					f.name, formatLabels(ch.labels, L("le", "+Inf")), h.Count())
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, formatLabels(ch.labels), formatFloat(h.Sum()))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, formatLabels(ch.labels), h.Count())
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
