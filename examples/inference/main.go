// Privacy-preserving neural inference: the deep-learning scenario the
// paper's introduction motivates (§1, §2.1). The cloud holds a small
// trained two-layer network; the client holds a feature vector. The
// matrix products — the computation MAXelerator accelerates — run as
// sequential MACs on the simulator, and the non-linearities (ReLU and
// the final argmax) run as garbled circuits, so the client learns only
// the predicted class.
//
//	go run ./examples/inference
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"maxelerator/internal/circuit"
	"maxelerator/internal/core"
	"maxelerator/internal/fixed"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
	"maxelerator/internal/report"
)

const (
	inputs  = 4
	hidden  = 5
	classes = 3
)

func main() {
	f := fixed.Format{Width: 16, Frac: 8}
	acc, err := core.New(core.Config{Width: 16, AccWidth: 48, Signed: true})
	if err != nil {
		log.Fatal(err)
	}

	// The server's model: weights of a tiny trained network (chosen by
	// hand so class 1 wins for the demo input).
	w1 := [][]float64{
		{0.9, -0.3, 0.2, 0.1},
		{-0.4, 0.8, -0.1, 0.3},
		{0.2, 0.2, 0.7, -0.6},
		{0.1, -0.5, 0.4, 0.8},
		{-0.2, 0.6, -0.3, 0.2},
	}
	w2 := [][]float64{
		{0.5, -0.2, 0.3, 0.1, -0.4},
		{0.7, 0.6, -0.1, 0.2, 0.5},
		{-0.3, 0.1, 0.4, -0.2, 0.1},
	}
	// The client's private features.
	features := []float64{1.25, 0.75, -0.5, 0.25}

	// Layer 1: secure mat-vec on the accelerator.
	w1Raw := encodeMatrix(f, w1)
	xRaw, err := f.EncodeVector(features)
	if err != nil {
		log.Fatal(err)
	}
	h, st1, err := acc.SecureMatVec(w1Raw, xRaw)
	if err != nil {
		log.Fatal(err)
	}

	// ReLU under GC: server garbles, client evaluates. The activations
	// stay secret; only labels move.
	hRelu := make([]int64, hidden)
	for i, v := range h {
		hRelu[i] = secureReLU(f, v)
	}

	// Layer 2: secure mat-vec over the hidden activations.
	w2Raw := encodeMatrix(f, w2)
	logits, st2, err := acc.SecureMatVec(w2Raw, hRelu)
	if err != nil {
		log.Fatal(err)
	}

	// Final argmax under GC: only the class index is decoded.
	class := secureArgMax(f, logits)

	// Plaintext reference.
	wantClass, plainLogits := plainForward(w1, w2, features)

	fmt.Println("Privacy-preserving two-layer inference")
	fmt.Printf("  client features : %v (private)\n", features)
	fmt.Printf("  secure logits   : %v\n", decodeLogits(f, logits))
	fmt.Printf("  plain logits    : %v\n", round4(plainLogits))
	fmt.Printf("  predicted class : %d (plaintext %d)\n", class, wantClass)
	fmt.Printf("  accelerator     : %d MACs, %s modelled FPGA time\n",
		st1.MACs+st2.MACs, report.Dur(st1.ModeledTime+st2.ModeledTime))
	if int(class) != wantClass {
		log.Fatal("MISMATCH against plaintext inference")
	}
	fmt.Println("\nsecure prediction matches plaintext ✓")
}

// secureReLU garbles max(v, 0) on the server and evaluates it as the
// client, returning the rescaled activation.
func secureReLU(f fixed.Format, raw int64) int64 {
	// First-layer products carry 2·Frac fraction bits; rescale to Frac
	// before re-entering the 16-bit datapath.
	v := raw >> uint(f.Frac)
	b := circuit.NewBuilder()
	x := b.GarblerInputs(f.Width)
	b.EvaluatorInputs(0)
	b.OutputWord(b.ReLU(x))
	ckt := b.MustBuild()
	out := garbleAndEvaluate(ckt, circuit.Int64ToBits(v, f.Width), nil)
	return circuit.BitsToInt64(out)
}

// secureArgMax garbles the classifier head: candidates in, index out.
func secureArgMax(f fixed.Format, logits []int64) uint64 {
	b := circuit.NewBuilder()
	cands := make([]circuit.Word, len(logits))
	var gIn []bool
	for i, v := range logits {
		cands[i] = b.GarblerInputs(f.Width)
		gIn = append(gIn, circuit.Int64ToBits(v>>uint(f.Frac), f.Width)...)
	}
	b.EvaluatorInputs(0)
	b.OutputWord(b.ArgMax(cands))
	ckt := b.MustBuild()
	return circuit.BitsToUint64(garbleAndEvaluate(ckt, gIn, nil))
}

func garbleAndEvaluate(ckt *circuit.Circuit, gIn, eIn []bool) []bool {
	p := gc.DefaultParams()
	g, err := gc.NewGarbler(p, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	gb, err := g.Garble(ckt, gc.GarbleOptions{GarblerInputs: gIn})
	if err != nil {
		log.Fatal(err)
	}
	active := make([]label.Label, len(eIn))
	for i, v := range eIn {
		active[i] = gb.EvalPairs[i].Get(v)
	}
	res, err := gc.Evaluate(p, ckt, &gb.Material, active, nil)
	if err != nil {
		log.Fatal(err)
	}
	return res.Outputs
}

func encodeMatrix(f fixed.Format, m [][]float64) [][]int64 {
	out := make([][]int64, len(m))
	for i, row := range m {
		r, err := f.EncodeVector(row)
		if err != nil {
			log.Fatal(err)
		}
		out[i] = r
	}
	return out
}

func decodeLogits(f fixed.Format, raw []int64) []float64 {
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = f.DecodeProduct(v)
	}
	return round4(out)
}

func round4(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int64(x*1e4+0.5*sign(x))) / 1e4
	}
	return out
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

func plainForward(w1, w2 [][]float64, x []float64) (int, []float64) {
	h := make([]float64, hidden)
	for i := range w1 {
		for j := range x {
			h[i] += w1[i][j] * x[j]
		}
		if h[i] < 0 {
			h[i] = 0
		}
	}
	logits := make([]float64, classes)
	best := 0
	for i := range w2 {
		for j := range h {
			logits[i] += w2[i][j] * h[j]
		}
		if logits[i] > logits[best] {
			best = i
		}
	}
	return best, logits
}
