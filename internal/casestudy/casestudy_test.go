package casestudy

import (
	"math"
	"testing"
	"time"

	"maxelerator/internal/paper"
)

func TestPaperSpeedup32Factor(t *testing.T) {
	// 657.65 µs / 0.48 µs ≈ 1370×.
	f := PaperSpeedup32().Factor()
	if f < 1300 || f > 1400 {
		t.Fatalf("b=32 per-MAC speedup = %v", f)
	}
}

func TestAmdahl(t *testing.T) {
	base := 100 * time.Second
	if got := Amdahl(base, 0, 10); got != base {
		t.Fatalf("zero share changed runtime: %v", got)
	}
	got := Amdahl(base, 0.5, math.Inf(1))
	if got != 50*time.Second {
		t.Fatalf("infinite speedup on half = %v", got)
	}
	if got := Amdahl(base, 1, 4); got != 25*time.Second {
		t.Fatalf("full share ÷4 = %v", got)
	}
	if got := Amdahl(base, 0.5, 0); got != base {
		t.Fatalf("degenerate factor = %v", got)
	}
}

func TestRecommendationReproducesPaper(t *testing.T) {
	// §6: 2.9 h → ≈1 h per iteration, "decreasing the total runtime
	// per iteration from 2.9hr to 1hr (69% improvement)".
	res, err := Recommendation(PaperSpeedup32().Factor())
	if err != nil {
		t.Fatal(err)
	}
	hours := res.AcceleratedPerIter.Hours()
	if hours < 0.9 || hours > 1.1 {
		t.Fatalf("accelerated iteration = %.3f h, want ≈1 h", hours)
	}
	if res.ImprovementPct < 60 || res.ImprovementPct > 72 {
		t.Fatalf("improvement = %.1f%%, want ≈65–69%%", res.ImprovementPct)
	}
	if res.BaselinePerIter.Hours() != 2.9 {
		t.Fatalf("baseline = %v", res.BaselinePerIter)
	}
}

func TestRecommendationValidation(t *testing.T) {
	if _, err := Recommendation(0); err == nil {
		t.Fatal("zero speedup accepted")
	}
}

func TestRidgeReproducesTable3(t *testing.T) {
	// Under the paper's own speedup the calibrated model must return
	// the published "Time (s) (Ours)" and improvement for every row.
	rows, err := Ridge(PaperSpeedup32().Factor())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(paper.Table3) {
		t.Fatalf("%d rows, want %d", len(rows), len(paper.Table3))
	}
	for _, r := range rows {
		if math.Abs(r.ModeledImprovement-r.Dataset.Improvement)/r.Dataset.Improvement > 0.02 {
			t.Fatalf("%s: modeled improvement %.1f×, published %.1f×",
				r.Dataset.Name, r.ModeledImprovement, r.Dataset.Improvement)
		}
		if math.Abs(r.ModeledSeconds-r.Dataset.OursSeconds)/r.Dataset.OursSeconds > 0.07 {
			t.Fatalf("%s: modeled %.2f s, published %.2f s",
				r.Dataset.Name, r.ModeledSeconds, r.Dataset.OursSeconds)
		}
		if r.MACShare <= 0.9 || r.MACShare >= 1 {
			t.Fatalf("%s: implausible MAC share %.3f", r.Dataset.Name, r.MACShare)
		}
	}
}

func TestRidgeMACShareGrowsWithDimension(t *testing.T) {
	// O(d³) MAC counts: higher-dimensional datasets spend a larger
	// fraction in MACs, hence larger published improvements.
	rows, err := Ridge(PaperSpeedup32().Factor())
	if err != nil {
		t.Fatal(err)
	}
	// Table 3 is sorted by improvement descending and (weakly) by d.
	for i := 1; i < len(rows); i++ {
		if rows[i].MACShare > rows[i-1].MACShare {
			t.Fatalf("MAC share not decreasing down Table 3: %s %.4f > %s %.4f",
				rows[i].Dataset.Name, rows[i].MACShare, rows[i-1].Dataset.Name, rows[i-1].MACShare)
		}
	}
}

func TestRidgeValidation(t *testing.T) {
	if _, err := Ridge(-1); err == nil {
		t.Fatal("negative speedup accepted")
	}
}

func TestPortfolioModelMatchesPaperShape(t *testing.T) {
	m, err := Portfolio(PaperSpeedup32())
	if err != nil {
		t.Fatal(err)
	}
	if m.MACsPerRound != 8 {
		t.Fatalf("MACs per round = %d, want 8 (2d² at d=2)", m.MACsPerRound)
	}
	// The published TinyGarble figure is 2d²·rounds·timePerMAC:
	// 8 · 252 · 657.65 µs = 1.326 s ≈ 1.33 s.
	if d := math.Abs(m.SoftwareTime.Seconds() - m.PaperSoftware.Seconds()); d > 0.02 {
		t.Fatalf("modeled software %.4f s vs published %.2f s", m.SoftwareTime.Seconds(), m.PaperSoftware.Seconds())
	}
	// The accelerated figure must land within the published order of
	// magnitude (the paper's 15.23 ms includes unspecified host
	// overhead; our streaming model gives ~1 ms).
	if m.AcceleratedTime <= 0 || m.AcceleratedTime > m.PaperAccelerated*10 {
		t.Fatalf("modeled accelerated %v implausible vs published %v", m.AcceleratedTime, m.PaperAccelerated)
	}
	// The headline: orders-of-magnitude win for the accelerator.
	if ratio := m.SoftwareTime.Seconds() / m.AcceleratedTime.Seconds(); ratio < 100 {
		t.Fatalf("portfolio speedup only %.1f×", ratio)
	}
}

func TestPortfolioValidation(t *testing.T) {
	if _, err := Portfolio(MACSpeedup{Width: 32}); err == nil {
		t.Fatal("zero latencies accepted")
	}
}

func TestMACSpeedupFactorZeroSafe(t *testing.T) {
	if (MACSpeedup{}).Factor() != 0 {
		t.Fatal("zero speedup factor not zero")
	}
}

func TestGradientDescentModel(t *testing.T) {
	m, err := GradientDescent(1000, 50, 100, PaperSpeedup32())
	if err != nil {
		t.Fatal(err)
	}
	if m.MACsPerIteration != 2500 || m.TotalMACs != 250000 {
		t.Fatalf("MAC counts: %+v", m)
	}
	if m.Speedup < 1300 || m.Speedup > 1400 {
		t.Fatalf("Eq.2 speedup = %v, want the per-MAC ratio", m.Speedup)
	}
	if m.AcceleratedTime >= m.SoftwareTime {
		t.Fatal("no acceleration")
	}
}

func TestGradientDescentValidation(t *testing.T) {
	if _, err := GradientDescent(0, 5, 1, PaperSpeedup32()); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := GradientDescent(10, 5, 1, MACSpeedup{}); err == nil {
		t.Fatal("zero latencies accepted")
	}
}
