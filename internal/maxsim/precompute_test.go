package maxsim

import (
	"bytes"
	"testing"

	"maxelerator/internal/gc"
	"maxelerator/internal/label"
)

func seededSim(t *testing.T, seed byte) *Simulator {
	t.Helper()
	var s [16]byte
	s[0] = seed
	drbg, err := label.NewDRBG(s)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{Width: 8, AccWidth: 24, Signed: true, Rand: drbg})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestPreGarbleMatchesInline is the determinism invariant the
// offline/online split rests on: under the same randomness stream, a
// pre-garbled-then-bound run is byte-identical to an inline garbling of
// the same vector — tables, active labels, eval pairs, everything the
// wire or the OT would carry.
func TestPreGarbleMatchesInline(t *testing.T) {
	x := []int64{3, -7, 0, 127, -128}

	inline, err := seededSim(t, 9).GarbleDotProduct(x)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := seededSim(t, 9).PreGarbleDotProduct(len(x))
	if err != nil {
		t.Fatal(err)
	}
	bound, err := pre.Bind(x)
	if err != nil {
		t.Fatal(err)
	}

	if len(bound.Rounds) != len(inline.Rounds) {
		t.Fatalf("rounds %d != %d", len(bound.Rounds), len(inline.Rounds))
	}
	for r := range inline.Rounds {
		wantM, err := gc.MarshalMaterial(&inline.Rounds[r].Material)
		if err != nil {
			t.Fatal(err)
		}
		gotM, err := gc.MarshalMaterial(&bound.Rounds[r].Material)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantM, gotM) {
			t.Fatalf("round %d: bound material differs from inline garbling", r)
		}
		for i := range inline.Rounds[r].EvalPairs {
			if bound.Rounds[r].EvalPairs[i] != inline.Rounds[r].EvalPairs[i] {
				t.Fatalf("round %d: eval pair %d differs", r, i)
			}
		}
	}
	for i := range inline.OutputPairs {
		if bound.OutputPairs[i] != inline.OutputPairs[i] {
			t.Fatalf("output pair %d differs", i)
		}
	}
	if bound.Stats != inline.Stats {
		t.Fatalf("stats differ: bound %+v inline %+v", bound.Stats, inline.Stats)
	}
}

// TestPreGarbleEvaluates closes the loop functionally: a bound run
// evaluates to the true dot product.
func TestPreGarbleEvaluates(t *testing.T) {
	sim := seededSim(t, 4)
	x := []int64{5, -3, 2}
	a := []int64{-1, 4, 7}
	pre, err := sim.PreGarbleDotProduct(len(x))
	if err != nil {
		t.Fatal(err)
	}
	if pre.Cols() != len(x) {
		t.Fatalf("cols = %d, want %d", pre.Cols(), len(x))
	}
	run, err := pre.Bind(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateDotProduct(sim.Config().Params, sim.Circuit(), run, a, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(5*-1 + -3*4 + 2*7)
	if got != want {
		t.Fatalf("dot product = %d, want %d", got, want)
	}
}

func TestPreRunBindOnce(t *testing.T) {
	pre, err := seededSim(t, 1).PreGarbleDotProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pre.Bind([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := pre.Bind([]int64{1, 2}); err == nil {
		t.Fatal("second Bind succeeded; pre-garbled labels must be single-use")
	}
}

func TestPreRunBindValidates(t *testing.T) {
	pre, err := seededSim(t, 2).PreGarbleDotProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pre.Bind([]int64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := pre.Bind([]int64{1, 1 << 20}); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	// Failed binds must not consume the run.
	if _, err := pre.Bind([]int64{1, 2}); err != nil {
		t.Fatalf("valid bind after rejected binds: %v", err)
	}
	if _, err := seededSim(t, 3).PreGarbleDotProduct(0); err == nil {
		t.Fatal("zero-round pre-garble accepted")
	}
}
