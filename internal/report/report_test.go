package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "a", "long-header", "c")
	tb.AddRow("1", "2")
	tb.AddRow("xxx", "y", "z")
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "long-header") {
		t.Fatalf("render missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if Sci(23600) != "2.36E+04" {
		t.Fatalf("Sci = %q", Sci(23600))
	}
	if Dur(120*time.Nanosecond) != "120ns" {
		t.Fatalf("Dur ns = %q", Dur(120*time.Nanosecond))
	}
	if Dur(42*time.Microsecond+290*time.Nanosecond) != "42.29µs" {
		t.Fatalf("Dur µs = %q", Dur(42290*time.Nanosecond))
	}
	if Dur(15230*time.Microsecond) != "15.23ms" {
		t.Fatalf("Dur ms = %q", Dur(15230*time.Microsecond))
	}
	if Dur(2900*time.Millisecond) != "2.90s" {
		t.Fatalf("Dur s = %q", Dur(2900*time.Millisecond))
	}
	if Dur(time.Duration(2.9*float64(time.Hour))) != "2.90h" {
		t.Fatalf("Dur h = %q", Dur(time.Duration(2.9*float64(time.Hour))))
	}
	if Ratio(56.96) != "57.0×" {
		t.Fatalf("Ratio = %q", Ratio(56.96))
	}
}

func TestTable1Contents(t *testing.T) {
	tb, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"2.95E+04", "1.11E+05", "6.40E+02", "8.40E+04"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Contents(t *testing.T) {
	tb, err := Table2(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"TinyGarble", "Overlay", "MAXelerator", "57.0×", "985.0×", "120ns", "8.33E+06"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2WithMeasurement(t *testing.T) {
	m := []SoftwareMeasurement{{Width: 8, TimePerMAC: 50 * time.Microsecond}}
	tb, err := Table2(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "this host") {
		t.Fatal("measured row missing")
	}
}

func TestMeasureSoftwareRuns(t *testing.T) {
	ms, err := MeasureSoftware(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("%d measurements", len(ms))
	}
	for _, m := range ms {
		if m.TimePerMAC <= 0 {
			t.Fatalf("width %d: no time measured", m.Width)
		}
	}
}

func TestTable3Contents(t *testing.T) {
	tb, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"communities11.IV", "winequality-red", "39.8×", "16.8×"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestCaseStudyTables(t *testing.T) {
	rec, err := CaseRecommendation()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.String(), "2.90h") {
		t.Fatalf("recommendation table:\n%s", rec)
	}
	pf, err := CasePortfolio()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pf.String(), "15.23ms") {
		t.Fatalf("portfolio table:\n%s", pf)
	}
}

func TestFigures(t *testing.T) {
	f2, err := Fig2(8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2, "Fig. 2") {
		t.Fatal("Fig2 rendering wrong")
	}
	f3, err := Fig3(8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3, "MUX_ADD") {
		t.Fatal("Fig3 rendering wrong")
	}
	if _, err := Fig2(3); err == nil {
		t.Fatal("bad width accepted")
	}
	if _, err := Fig3(3); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestPerformanceSweep(t *testing.T) {
	tb, err := PerformanceSweep([]int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "24") || !strings.Contains(out, "48") {
		t.Fatalf("sweep missing cycle counts:\n%s", out)
	}
	if _, err := PerformanceSweep([]int{5}); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestAllReport(t *testing.T) {
	out, err := All(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "recommendation", "portfolio", "Fig. 2", "MUX_ADD", "§4.3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("full report missing %q", want)
		}
	}
}

func TestTable3Ops(t *testing.T) {
	tb, err := Table3Ops()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"MAC share", "20", "8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ops table missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineReport(t *testing.T) {
	out, err := Timeline(8, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MUX_ADD") {
		t.Fatalf("timeline missing region rows:\n%s", out)
	}
	if _, err := Timeline(7, 4, 30); err == nil {
		t.Fatal("bad width accepted")
	}
	if _, err := Timeline(8, 0, 30); err == nil {
		t.Fatal("zero MACs accepted")
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{1023, "1023 B"},
		{1024, "1.0 KiB"},
		{1536, "1.5 KiB"},
		{1 << 20, "1.0 MiB"},
		{5<<20 + 1<<19, "5.5 MiB"},
		{1 << 30, "1.0 GiB"},
		{3 << 30, "3.0 GiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.n); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
