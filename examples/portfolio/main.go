// Portfolio analysis (§6): the client holds a stock-weight vector w,
// the financial institution holds the covariance matrix cov from its
// market research, and the risk-to-return ratio is the quadratic form
// w·cov·wᵀ — computed here under the GC protocol so that neither party
// reveals its data, exactly the scenario of the paper's third case
// study.
//
//	go run ./examples/portfolio
package main

import (
	"fmt"
	"log"

	"maxelerator/internal/casestudy"
	"maxelerator/internal/core"
	"maxelerator/internal/fixed"
	"maxelerator/internal/matrix"
	"maxelerator/internal/report"
)

func main() {
	// Fixed point: 16 bits with 8 fraction bits keeps this demo's
	// accumulators within the decodable range; the paper's full system
	// uses 32-bit fixed point.
	f := fixed.Format{Width: 16, Frac: 8}
	acc, err := core.New(core.Config{Width: 16, AccWidth: 48, Signed: true})
	if err != nil {
		log.Fatal(err)
	}

	// Institution's research: a 4-stock covariance matrix (annualised).
	cov := [][]float64{
		{0.040, 0.012, 0.008, 0.004},
		{0.012, 0.090, 0.015, 0.010},
		{0.008, 0.015, 0.060, 0.006},
		{0.004, 0.010, 0.006, 0.020},
	}
	// Investor's portfolio weights.
	w := []float64{0.40, 0.20, 0.25, 0.15}

	covRaw := make([][]int64, len(cov))
	for i, row := range cov {
		r, err := f.EncodeVector(row)
		if err != nil {
			log.Fatal(err)
		}
		covRaw[i] = r
	}
	wRaw, err := f.EncodeVector(w)
	if err != nil {
		log.Fatal(err)
	}

	risk, stats, err := acc.SecureQuadraticForm(covRaw, wRaw, f)
	if err != nil {
		log.Fatal(err)
	}

	covM, err := matrix.FromRows(cov)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := matrix.QuadraticForm(w, covM)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Privacy-preserving portfolio risk analysis (w·cov·wᵀ)")
	fmt.Printf("  portfolio size      : %d stocks\n", len(w))
	fmt.Printf("  secure risk         : %.6f\n", risk)
	fmt.Printf("  plaintext reference : %.6f\n", plain)
	fmt.Printf("  quantisation error  : %.2e (fixed point Q%d.%d)\n", risk-plain, f.Width-f.Frac-1, f.Frac)
	fmt.Printf("  accelerator cost    : %d MACs, %s modelled FPGA time\n", stats.MACs, report.Dur(stats.ModeledTime))
	fmt.Println()

	// The paper's workload model: 252 evaluations (one per trading
	// day) for a size-2 portfolio.
	model, err := casestudy.Portfolio(casestudy.PaperSpeedup32())
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("§6 workload model: 252 rounds, size-2 portfolio (b=32)", "framework", "total time")
	t.AddRow("TinyGarble (model)", report.Dur(model.SoftwareTime))
	t.AddRow("TinyGarble (paper)", report.Dur(model.PaperSoftware))
	t.AddRow("MAXelerator (model)", report.Dur(model.AcceleratedTime))
	t.AddRow("MAXelerator (paper)", report.Dur(model.PaperAccelerated))
	fmt.Println(t)
}
