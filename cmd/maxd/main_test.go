package main

import (
	"crypto/rand"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"maxelerator/internal/fixed"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

func TestLoadModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, []byte("[[1, 2], [3, 4]]"), 0o600); err != nil {
		t.Fatal(err)
	}
	m, err := loadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[1][0] != 3 {
		t.Fatalf("model = %v", m)
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := loadModel("/nonexistent.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte("[]"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadModel(path); err == nil {
		t.Fatal("empty model accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("nope"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadModel(bad); err == nil {
		t.Fatal("malformed model accepted")
	}
}

func TestDemoModelShapeAndRange(t *testing.T) {
	f := fixed.Format{Width: 16, Frac: 6}
	m := demoModel(3, 5, 42, f)
	if len(m) != 3 || len(m[0]) != 5 {
		t.Fatalf("shape %dx%d", len(m), len(m[0]))
	}
	for _, row := range m {
		for _, v := range row {
			if math.Abs(v) > f.Max()/8 {
				t.Fatalf("demo value %v outside scale", v)
			}
		}
	}
	// Deterministic per seed.
	if demoModel(3, 5, 42, f)[0][0] != m[0][0] {
		t.Fatal("demo model not reproducible")
	}
}

func TestFmtBytes(t *testing.T) {
	if fmtBytes(12) != "12 B" {
		t.Fatalf("got %q", fmtBytes(12))
	}
	if got := fmtBytes(4 << 10); !strings.Contains(got, "KiB") {
		t.Fatalf("got %q", got)
	}
	if got := fmtBytes(5 << 20); !strings.Contains(got, "MiB") {
		t.Fatalf("got %q", got)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("127.0.0.1:0", "", 16, 40, 0, 2, 1, true); err == nil {
		t.Fatal("bad fixed-point format accepted")
	}
	if err := run("127.0.0.1:0", "", 16, 6, 0, 2, 1, true); err == nil {
		t.Fatal("missing model accepted")
	}
	if err := run("256.0.0.1:99999", "", 16, 6, 2, 2, 1, true); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestServeOneSessionEndToEnd(t *testing.T) {
	// Boot maxd on an ephemeral port in -once mode and run a real
	// client against it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port for maxd

	done := make(chan error, 1)
	go func() {
		done <- run(addr, "", 8, 3, 2, 2, 7, true)
	}()

	f := fixed.Format{Width: 8, Frac: 3}
	raw, err := f.EncodeVector([]float64{1.0, -1.5})
	if err != nil {
		t.Fatal(err)
	}
	var conn wire.Conn
	for i := 0; i < 100; i++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			conn = wire.NewStreamConn(c)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if conn == nil {
		t.Fatal("maxd did not come up")
	}
	defer conn.Close()
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cli.Run(conn, raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d outputs", len(out))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
