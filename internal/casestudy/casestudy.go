// Package casestudy reproduces the three §6 case studies: the movie
// recommendation system (privacy-preserving matrix factorisation of
// Nikolaenko et al. [6]), ridge regression on UCI datasets
// (Nikolaenko et al. [7], Table 3) and portfolio risk analysis
// (w·cov·wᵀ).
//
// The studies are runtime models in the paper, not new measurements:
// the authors take the published baseline times and accelerate the
// MAC-dominated fraction by MAXelerator's per-MAC speedup. This
// package does the same, with the calibration spelled out, and — for
// the portfolio study — also runs the secure computation for real
// through the accelerator simulator and protocol stack.
package casestudy

import (
	"fmt"
	"time"

	"maxelerator/internal/paper"
	"maxelerator/internal/sched"
)

// MACSpeedup captures the per-MAC acceleration factor between the
// software baseline and MAXelerator at one bit-width.
type MACSpeedup struct {
	// Width is the operand bit-width.
	Width int
	// SoftwarePerMAC is the software framework's per-MAC latency.
	SoftwarePerMAC time.Duration
	// AcceleratedPerMAC is MAXelerator's per-MAC latency (one unit).
	AcceleratedPerMAC time.Duration
}

// Factor is the speedup SoftwarePerMAC / AcceleratedPerMAC.
func (m MACSpeedup) Factor() float64 {
	if m.AcceleratedPerMAC <= 0 {
		return 0
	}
	return float64(m.SoftwarePerMAC) / float64(m.AcceleratedPerMAC)
}

// PaperSpeedup32 is the §6 configuration: the published b=32 numbers
// (TinyGarble 657.65 µs vs MAXelerator 0.48 µs per MAC — one 24-core
// MAC unit).
func PaperSpeedup32() MACSpeedup {
	return MACSpeedup{
		Width:             32,
		SoftwarePerMAC:    paper.TinyGarble.TimePerMAC[32],
		AcceleratedPerMAC: paper.MAXelerator.TimePerMAC[32],
	}
}

// Amdahl returns the accelerated runtime when only a fraction
// `share` of baseline is sped up by `factor`.
func Amdahl(baseline time.Duration, share, factor float64) time.Duration {
	if factor <= 0 {
		return baseline
	}
	rest := float64(baseline) * (1 - share)
	acc := float64(baseline) * share / factor
	return time.Duration(rest + acc)
}

// RecommendationResult is the matrix-factorisation case study outcome.
type RecommendationResult struct {
	// BaselinePerIter is Nikolaenko et al.'s per-iteration runtime on
	// MovieLens (2.9 h).
	BaselinePerIter time.Duration
	// GradientShare is the MAC-dominated fraction (> 2/3).
	GradientShare float64
	// MACSpeedup is the per-MAC acceleration applied.
	MACSpeedup float64
	// AcceleratedPerIter is the modelled runtime with MAXelerator.
	AcceleratedPerIter time.Duration
	// ImprovementPct is the runtime reduction percentage.
	ImprovementPct float64
	// PaperAcceleratedPerIter is the paper's published result (1 h).
	PaperAcceleratedPerIter time.Duration
}

// Recommendation models the §6 recommendation-system study with the
// given per-MAC speedup factor.
func Recommendation(macSpeedup float64) (RecommendationResult, error) {
	if macSpeedup <= 0 {
		return RecommendationResult{}, fmt.Errorf("casestudy: speedup factor %v must be positive", macSpeedup)
	}
	baseline := time.Duration(paper.Recommendation.BaselineHoursPerIter * float64(time.Hour))
	share := paper.Recommendation.GradientShare
	acc := Amdahl(baseline, share, macSpeedup)
	return RecommendationResult{
		BaselinePerIter:         baseline,
		GradientShare:           share,
		MACSpeedup:              macSpeedup,
		AcceleratedPerIter:      acc,
		ImprovementPct:          100 * (1 - float64(acc)/float64(baseline)),
		PaperAcceleratedPerIter: time.Duration(paper.Recommendation.AcceleratedHoursPerIter * float64(time.Hour)),
	}, nil
}

// RidgeResult is one Table 3 row with the model's derivation exposed.
type RidgeResult struct {
	// Dataset echoes the published row.
	Dataset paper.RidgeDataset
	// MACShare is the fraction of the baseline runtime spent in MAC
	// operations, calibrated from the published improvement: with a
	// large speedup S, improvement ≈ 1/(1−f) ⇒ f ≈ 1 − 1/improvement.
	MACShare float64
	// ModeledSeconds is the accelerated runtime from the Amdahl model.
	ModeledSeconds float64
	// ModeledImprovement is baseline/modeled.
	ModeledImprovement float64
}

// Ridge models every Table 3 dataset with the given per-MAC speedup.
func Ridge(macSpeedup float64) ([]RidgeResult, error) {
	if macSpeedup <= 0 {
		return nil, fmt.Errorf("casestudy: speedup factor %v must be positive", macSpeedup)
	}
	out := make([]RidgeResult, 0, len(paper.Table3))
	for _, ds := range paper.Table3 {
		// Calibrate the MAC share from the published improvement under
		// the published speedup, then re-derive the runtime under the
		// caller's speedup. The O(d³)+O(d²) MAC counts of [7] set the
		// share near 1 for large d, which the calibration reflects.
		pubFactor := PaperSpeedup32().Factor()
		f := (1 - 1/ds.Improvement) * pubFactor / (pubFactor - 1)
		base := time.Duration(ds.BaselineSeconds * float64(time.Second))
		acc := Amdahl(base, f, macSpeedup)
		out = append(out, RidgeResult{
			Dataset:            ds,
			MACShare:           f,
			ModeledSeconds:     acc.Seconds(),
			ModeledImprovement: ds.BaselineSeconds / acc.Seconds(),
		})
	}
	return out, nil
}

// PortfolioModel is the analytic §6 portfolio study: the MAC counts of
// the w·cov·wᵀ kernel at portfolio size d over r rounds, priced with
// the per-MAC latencies of each framework.
type PortfolioModel struct {
	// Rounds and Size are the workload shape (252 rounds, size 2).
	Rounds, Size int
	// MACsPerRound is the kernel's MAC count: d² for cov·wᵀ plus d for
	// w·(cov·wᵀ), plus d(d−1)/2… the paper's own numbers back out to
	// 2d² per round, which this model adopts (the published TinyGarble
	// time equals exactly 2d²·rounds·timePerMAC).
	MACsPerRound int
	// SoftwareTime and AcceleratedTime are the modelled totals.
	SoftwareTime, AcceleratedTime time.Duration
	// PaperSoftware and PaperAccelerated are the published values.
	PaperSoftware, PaperAccelerated time.Duration
}

// Portfolio builds the analytic portfolio model for the paper's
// workload with the given per-MAC latencies.
func Portfolio(sw MACSpeedup) (PortfolioModel, error) {
	if sw.SoftwarePerMAC <= 0 || sw.AcceleratedPerMAC <= 0 {
		return PortfolioModel{}, fmt.Errorf("casestudy: per-MAC latencies must be positive")
	}
	d := paper.Portfolio.Size
	r := paper.Portfolio.Rounds
	macs := 2 * d * d
	total := macs * r
	// The accelerated path pays the pipeline-fill latency once per
	// round (the rounds arrive as separate requests), then streams.
	s := sched.MustBuild(sw.Width)
	fillCycles := uint64(s.LatencyCycles() - s.CyclesPerMAC())
	fillPerRound := time.Duration(float64(fillCycles) * float64(sw.AcceleratedPerMAC) / float64(s.CyclesPerMAC()))
	return PortfolioModel{
		Rounds:           r,
		Size:             d,
		MACsPerRound:     macs,
		SoftwareTime:     time.Duration(total) * sw.SoftwarePerMAC,
		AcceleratedTime:  time.Duration(total)*sw.AcceleratedPerMAC + time.Duration(r)*fillPerRound,
		PaperSoftware:    time.Duration(paper.Portfolio.TinyGarbleSeconds * float64(time.Second)),
		PaperAccelerated: time.Duration(paper.Portfolio.MAXeleratorSeconds * float64(time.Second)),
	}, nil
}
