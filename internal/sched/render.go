package sched

import (
	"fmt"
	"strings"
)

// RenderStageGrid renders the steady-state stage as a core × cycle
// table — the textual counterpart of Fig. 3's core grid.
func (s *Schedule) RenderStageGrid() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "MAXelerator MAC unit schedule, b=%d: %d cores (%d MUX_ADD + %d TREE), %d tables/stage, %d idle slots\n",
		s.Width, s.NumCores(), s.SegmentCores(MuxAdd), s.SegmentCores(Tree), s.TablesPerStage(), s.IdleSlotsPerStage())
	fmt.Fprintf(&sb, "%-6s %-8s %-26s %-26s %-26s\n", "core", "segment", "cycle 0", "cycle 1", "cycle 2")
	for _, c := range s.Cores {
		fmt.Fprintf(&sb, "%-6d %-8s %-26s %-26s %-26s\n",
			c.ID, c.Segment, c.Slots[0].Detail, c.Slots[1].Detail, c.Slots[2].Detail)
	}
	return sb.String()
}

// RenderTree renders the Fig. 2 dataflow: the per-core partial-product
// streams and the delay-aligned tree combining them.
func (s *Schedule) RenderTree() string {
	var sb strings.Builder
	b := s.Width
	fmt.Fprintf(&sb, "Tree-based multiplication dataflow, b=%d (Fig. 2)\n", b)
	fmt.Fprintf(&sb, "x constant, a streamed one bit per stage (LSB first)\n\n")
	for m := 0; m < b/2; m++ {
		fmt.Fprintf(&sb, "core %-2d: s%-2d = (x[%d] + 2·x[%d])·a   (serial, weight 4^%d → delay %d stages)\n",
			m, m, 2*m, 2*m+1, m, 2*m)
	}
	sb.WriteString("\ntree levels:\n")
	level := 0
	streams := make([]string, b/2)
	for m := range streams {
		streams[m] = fmt.Sprintf("s%d", m)
	}
	for len(streams) > 1 {
		var next []string
		var row []string
		for i := 0; i+1 < len(streams); i += 2 {
			sum := fmt.Sprintf("(%s+%s)", streams[i], streams[i+1])
			row = append(row, sum)
			next = append(next, sum)
		}
		if len(streams)%2 == 1 {
			next = append(next, streams[len(streams)-1])
		}
		fmt.Fprintf(&sb, "  level %d: %s\n", level, strings.Join(row, "  "))
		streams = next
		level++
	}
	fmt.Fprintf(&sb, "\nproduct  → sign conditioning (mux/2's-complement pairs) → accumulator\n")
	fmt.Fprintf(&sb, "latency %d stages (%d cycles), throughput 1 MAC / %d stages (%d cycles)\n",
		s.LatencyStages(), s.LatencyCycles(), s.StagesPerMAC(), s.CyclesPerMAC())
	return sb.String()
}

// OpCounts tallies slot kinds over one steady-state stage.
func (s *Schedule) OpCounts() map[OpKind]int {
	counts := make(map[OpKind]int)
	for _, c := range s.Cores {
		for _, sl := range c.Slots {
			counts[sl.Kind]++
		}
	}
	return counts
}
